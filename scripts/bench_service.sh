#!/bin/sh
# bench_service.sh — end-to-end service benchmark: build selestd and
# selestload, boot the daemon on ephemeral HTTP and wire ports with a
# snapshot file, drive mixed read/ingest load over BOTH protocols from
# one selestload run, and write the latency/throughput records
# (p50/p99/p999 per protocol, retry/shed/failure counts, and the
# JSON-vs-wire req/s comparison) to BENCH_service.json. The daemon is
# shut down with SIGTERM at the end, so the run also exercises the
# graceful drain + final-snapshot path on both listeners.
#
# Knobs (env): DURATION (default 10s, per protocol), WORKERS (32),
# CONNS (defaults to WORKERS, so neither protocol is handicapped by
# connection churn), READ_FRAC (0.8), SEED_VALUES (4096), PROTO (both),
# OUT (BENCH_service.json). `make bench-service-quick` sets a short
# duration and discards the output — smoke, not evidence.
set -e

GO=${GO:-go}
DURATION=${DURATION:-10s}
WORKERS=${WORKERS:-32}
CONNS=${CONNS:-$WORKERS}
READ_FRAC=${READ_FRAC:-0.8}
SEED_VALUES=${SEED_VALUES:-4096}
PROTO=${PROTO:-both}
OUT=${OUT:-BENCH_service.json}

TMP=$(mktemp -d)
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill "$DPID" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

$GO build -o "$TMP/selestd" ./cmd/selestd
$GO build -o "$TMP/selestload" ./cmd/selestload

"$TMP/selestd" -addr 127.0.0.1:0 -wire-addr 127.0.0.1:0 \
    -snapshot "$TMP/snap.selest" \
    > "$TMP/selestd.log" 2>&1 &
DPID=$!

# The daemon prints each bound address once its listener is up.
ADDR=""
WIRE_ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/^selestd listening on //p' "$TMP/selestd.log" | head -n 1)
    WIRE_ADDR=$(sed -n 's/^selestd wire listening on //p' "$TMP/selestd.log" | head -n 1)
    [ -n "$ADDR" ] && [ -n "$WIRE_ADDR" ] && break
    if ! kill -0 "$DPID" 2>/dev/null; then
        echo "selestd died during startup:" >&2
        cat "$TMP/selestd.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ] || [ -z "$WIRE_ADDR" ]; then
    echo "selestd never reported its listen addresses" >&2
    cat "$TMP/selestd.log" >&2
    exit 1
fi

"$TMP/selestload" -addr "$ADDR" -wire-addr "$WIRE_ADDR" -proto "$PROTO" \
    -duration "$DURATION" -workers "$WORKERS" -conns "$CONNS" \
    -read-frac "$READ_FRAC" -seed-values "$SEED_VALUES" -out "$OUT"

# Graceful shutdown: drain both listeners, flush, final snapshot. A
# non-zero exit or a missing snapshot fails the bench.
kill -TERM "$DPID"
wait "$DPID"
DPID=""
[ -s "$TMP/snap.selest" ] || { echo "no shutdown snapshot written" >&2; exit 1; }
