#!/bin/sh
# bench2json.sh — convert `go test -bench` output on stdin into a JSON
# array of benchmark records on stdout. Used by the `make bench*` targets
# to commit benchmark evidence (BENCH_telemetry.json, BENCH_query.json,
# BENCH_fit.json, BENCH_serve.json).
#
# Each "BenchmarkName-P   N   X ns/op   Y B/op   Z allocs/op ..." line
# becomes
#   {"name": "Name", "gomaxprocs": P, "runs": N, "ns_per_op": X,
#    "bytes_per_op": Y, "allocs_per_op": Z}
# (memory fields are omitted when -benchmem was not passed). The -P
# suffix is kept as a field so `-cpu 1,8` sweeps stay distinguishable.
# Custom metrics from b.ReportMetric — e.g. the serve suite's "p99-ns"
# latency percentiles — are carried through with '/' and '-' mapped to
# '_' ("p99-ns" -> "p99_ns"), so every reported unit lands in the JSON.
# When the REPLICAS env var is a number, every record gains a
# "replicas" field — used by cluster sweeps so single-process and fleet
# records stay distinguishable in one file.
exec awk '
BEGIN {
    replicas = ENVIRON["REPLICAS"]
    if (replicas !~ /^[0-9]+$/) replicas = ""
}
/^Benchmark/ {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1, RLENGTH - 1)
        sub(/-[0-9]+$/, "", name)
    }
    sub(/^Benchmark/, "", name)
    rec = sprintf("{\"name\": \"%s\", \"gomaxprocs\": %s, \"runs\": %s", name, procs, $2)
    for (i = 3; i < NF; i += 2) {
        val = $i
        unit = $(i + 1)
        if (val !~ /^[0-9.eE+-]+$/) continue
        if (unit == "ns/op")          key = "ns_per_op"
        else if (unit == "B/op")      key = "bytes_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else if (unit == "MB/s")      key = "mb_per_s"
        else if (unit ~ /^[A-Za-z][A-Za-z0-9_.\/-]*$/) {
            key = unit
            gsub(/[\/-]/, "_", key)
        } else continue
        rec = rec sprintf(", \"%s\": %s", key, val)
    }
    if (replicas != "") rec = rec sprintf(", \"replicas\": %s", replicas)
    rec = rec "}"
    recs[n++] = rec
}
END {
    print "["
    for (i = 0; i < n; i++) printf "  %s%s\n", recs[i], (i < n - 1 ? "," : "")
    print "]"
}
'
