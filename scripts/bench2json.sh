#!/bin/sh
# bench2json.sh — convert `go test -bench` output on stdin into a JSON
# array of benchmark records on stdout. Used by `make bench` to commit
# the telemetry-overhead evidence as BENCH_telemetry.json.
#
# Each "BenchmarkName-P   N   X ns/op   Y B/op   Z allocs/op" line becomes
#   {"name": "Name", "runs": N, "ns_per_op": X, "bytes_per_op": Y, "allocs_per_op": Z}
# (memory fields are omitted when -benchmem was not passed).
exec awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    rec = sprintf("{\"name\": \"%s\", \"runs\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i + 1) == "B/op")      rec = rec sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i + 1) == "allocs/op") rec = rec sprintf(", \"allocs_per_op\": %s", $i)
    }
    rec = rec "}"
    recs[n++] = rec
}
END {
    print "["
    for (i = 0; i < n; i++) printf "  %s%s\n", recs[i], (i < n - 1 ? "," : "")
    print "]"
}
'
