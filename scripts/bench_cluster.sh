#!/bin/sh
# bench_cluster.sh — horizontal-scaling benchmark: boot fleets of 1, 2,
# and 4 selestd replicas (each pinned to GOMAXPROCS=1 and capped at
# -global-rate requests/second), drive mixed read/ingest load through
# the cluster client's rendezvous routing with `selestload -replicas`,
# and record aggregate req/s per fleet size plus the speedup ratios in
# BENCH_cluster.json (human summary in BENCH_cluster.txt).
#
# What the numbers mean: each replica's capacity is pinned by the
# admission cap, far below one core's ~20k req/s saturation point, so
# several single-core daemons and the load generator fit on one host
# without contending for CPU. The measured scaling is therefore the
# routing layer's ability to aggregate replica capacity — near-linear
# speedup shows tenant sharding spreads load evenly and the client adds
# no serialisation — not a claim about this host's cores. On a
# multi-core machine, drop RATE to 0 (uncapped) and give each daemon
# its own core to measure raw scaling; the JSON records carry the cap
# and host CPU count so the two setups cannot be confused.
#
# The run fails if any request fails (the retry budget is deep enough
# that throttle refusals pace the closed loop instead of erroring), and
# the 1-replica round doubles as the `-join` smoke: a joiner daemon
# warm-boots from the loaded replica's shipped snapshot and must log
# "warm start: joined".
#
# WORKERS is per replica: a fleet of R runs R×WORKERS closed-loop
# workers, so the offered load scales with fleet capacity and the
# client never becomes the bottleneck the benchmark is blamed for —
# per-replica conditions are identical at every fleet size, which is
# what makes the speedup ratios meaningful.
#
# Knobs (env): DURATION (default 6s per fleet), WORKERS (16 per
# replica), TENANTS (256 — rendezvous placement is balanced only in
# expectation, so scaling efficiency needs enough tenants per replica
# to smooth the shares; 64 tenants over 4 replicas leaves ~25% share
# imbalance and visibly ragged speedups), SEED_VALUES (1024), RATE
# (800 req/s per
# replica), BURST (RATE/10), RETRIES (256), REPLICATION (1), SET
# ("1 2 4"), OUT (BENCH_cluster.json), TXT (BENCH_cluster.txt, "-" to
# skip).
#
# RATE=0 is the uncapped mode for multi-core hosts: daemons run with no
# admission cap (still GOMAXPROCS=1 each), so with cores >= replicas the
# 1-CPU caveat above is lifted and the speedups measure raw scaling, a
# core per daemon. On a host with fewer cores than replicas the fleet
# timeshares and the numbers mean nothing — the recorded host_cpus and
# rate_cap_rps=0 keep such a run from being mistaken for a capped one.
set -e

GO=${GO:-go}
DURATION=${DURATION:-6s}
WORKERS=${WORKERS:-16}
TENANTS=${TENANTS:-256}
SEED_VALUES=${SEED_VALUES:-1024}
RATE=${RATE:-800}
if [ "$RATE" = "0" ]; then
    # Uncapped: -global-rate 0 disables the box-wide bucket entirely
    # (burst is ignored but must not divide by zero below).
    BURST=${BURST:-0}
else
    # A tight burst keeps the cap crisp over short runs (the default
    # burst of one full second at RATE would inflate a 6s measurement
    # by ~17%).
    BURST=${BURST:-$((RATE / 10))}
fi
# Deep retry budget: at full contention an attempt's success odds are
# roughly cap/poll-rate, so a worker occasionally strings dozens of
# refusals together; the budget must make that streak's failure odds
# negligible, because one failed request fails the bench.
RETRIES=${RETRIES:-256}
REPLICATION=${REPLICATION:-1}
SET=${SET:-1 2 4}
OUT=${OUT:-BENCH_cluster.json}
TXT=${TXT:-BENCH_cluster.txt}

TMP=$(mktemp -d)
DPIDS=""
cleanup() {
    if [ -n "$DPIDS" ]; then
        kill $DPIDS 2>/dev/null
        sleep 0.5
    fi
    rm -rf "$TMP" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

$GO build -o "$TMP/selestd" ./cmd/selestd
$GO build -o "$TMP/selestload" ./cmd/selestload

HOST_CPUS=$(nproc 2>/dev/null || echo 1)

# wait_log FILE PATTERN PID — poll FILE for PATTERN while PID lives.
# (Counter deliberately not named i: POSIX sh variables are global and
# the fleet loop's counter must survive the call.)
wait_log() {
    wl=0
    while [ $wl -lt 100 ]; do
        grep -q "$2" "$1" 2>/dev/null && return 0
        if ! kill -0 "$3" 2>/dev/null; then
            echo "daemon died during startup:" >&2
            cat "$1" >&2
            return 1
        fi
        sleep 0.1
        wl=$((wl + 1))
    done
    echo "timed out waiting for '$2' in $1" >&2
    cat "$1" >&2
    return 1
}

SUMMARY="$TMP/summary.txt"
: > "$SUMMARY"

for R in $SET; do
    # Boot the fleet: R single-core daemons, each capacity-pinned.
    ADDRS=""
    PIDS=""
    i=0
    while [ $i -lt "$R" ]; do
        LOG="$TMP/selestd-$R-$i.log"
        GOMAXPROCS=1 "$TMP/selestd" -addr 127.0.0.1:0 -wire-addr 127.0.0.1:0 \
            -snapshot "$TMP/snap-$R-$i.selest" -global-rate "$RATE" -global-burst "$BURST" \
            > "$LOG" 2>&1 &
        PID=$!
        PIDS="$PIDS $PID"
        DPIDS="$DPIDS $PID"
        wait_log "$LOG" "^selestd wire listening on " "$PID"
        WADDR=$(sed -n 's/^selestd wire listening on //p' "$LOG" | head -n 1)
        ADDRS="$ADDRS,$WADDR"
        i=$((i + 1))
    done
    ADDRS=${ADDRS#,}

    # Tight backoff: against a capped server the closed loop must poll
    # faster than tokens arrive or utilisation, not the cap, is what the
    # bench measures.
    "$TMP/selestload" -replicas "$ADDRS" -replication "$REPLICATION" \
        -duration "$DURATION" -workers $((WORKERS * R)) -tenants "$TENANTS" \
        -seed-values "$SEED_VALUES" -retries "$RETRIES" \
        -retry-base 1ms -retry-max 10ms \
        -out "$TMP/run-$R.json"

    TOTALS=$(grep '"name":"ServiceMixedTotals"' "$TMP/run-$R.json")
    RPS=$(echo "$TOTALS" | sed 's/.*"rps":\([0-9][0-9.eE+-]*\).*/\1/')
    FAILS=$(echo "$TOTALS" | sed 's/.*"failures":\([0-9]*\).*/\1/')
    if [ "$FAILS" != "0" ]; then
        echo "fleet of $R: $FAILS failed requests (want 0)" >&2
        exit 1
    fi
    eval "RPS_$R=\$RPS"
    if [ "$RATE" = "0" ]; then
        CAP_DESC="uncapped (host_cpus=$HOST_CPUS)"
    else
        CAP_DESC="$RATE/replica"
    fi
    printf 'replicas=%s  rate_cap=%s  aggregate_rps=%.0f  failures=%s\n' \
        "$R" "$CAP_DESC" "$RPS" "$FAILS" >> "$SUMMARY"

    if [ "$R" = "1" ]; then
        # Join smoke: a fresh daemon warm-boots from the loaded replica's
        # shipped snapshot and must say so.
        JLOG="$TMP/join.log"
        GOMAXPROCS=1 "$TMP/selestd" -addr 127.0.0.1:0 -wire-addr 127.0.0.1:0 \
            -snapshot "$TMP/join.selest" -join "$ADDRS" -require-snapshot \
            > "$JLOG" 2>&1 &
        JPID=$!
        DPIDS="$DPIDS $JPID"
        wait_log "$JLOG" "warm start: joined from" "$JPID"
        [ -s "$TMP/join.selest" ] || { echo "joiner persisted no snapshot" >&2; exit 1; }
        kill -TERM "$JPID" 2>/dev/null
        wait "$JPID" 2>/dev/null || true
        echo "join smoke: warm boot from peer snapshot OK" >> "$SUMMARY"
    fi

    # Graceful fleet shutdown before the next size boots.
    kill -TERM $PIDS 2>/dev/null
    for PID in $PIDS; do
        wait "$PID" 2>/dev/null || true
    done
    DPIDS=""
done

# The scaling record: per-size aggregate throughput and speedups vs the
# 1-replica baseline, tagged with the capacity model so the numbers
# cannot be read as raw-CPU scaling.
SCALE="{\"name\": \"ClusterScaling\", \"host_cpus\": $HOST_CPUS, \"rate_cap_rps\": $RATE, \"replication\": $REPLICATION, \"workers\": $WORKERS, \"tenants\": $TENANTS, \"duration_s\": \"$DURATION\""
BASE=""
for R in $SET; do
    eval "RPS=\$RPS_$R"
    SCALE="$SCALE, \"rps_$R\": $RPS"
    [ -z "$BASE" ] && BASE=$RPS
done
for R in $SET; do
    [ "$R" = "1" ] && continue
    eval "RPS=\$RPS_$R"
    SPEEDUP=$(awk "BEGIN { printf \"%.3f\", $RPS / $BASE }")
    SCALE="$SCALE, \"speedup_$R\": $SPEEDUP"
    printf 'speedup at %s replicas: %sx\n' "$R" "$SPEEDUP" >> "$SUMMARY"
done
SCALE="$SCALE}"

{
    for R in $SET; do
        sed -n 's/^  \({.*}\),\{0,1\}$/\1/p' "$TMP/run-$R.json"
    done
    printf '%s\n' "$SCALE"
} | awk '
{ recs[n++] = $0 }
END {
    print "["
    for (i = 0; i < n; i++) printf "  %s%s\n", recs[i], (i < n - 1 ? "," : "")
    print "]"
}' > "$OUT"

if [ "$TXT" != "-" ]; then
    cp "$SUMMARY" "$TXT"
fi
cat "$SUMMARY"
echo "wrote $OUT"
