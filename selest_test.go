package selest_test

import (
	"math"
	"testing"

	"selest"
	"selest/internal/xrand"
)

func TestFacadeQuickstart(t *testing.T) {
	r := xrand.New(1)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = math.Floor(r.Float64() * (1 << 20))
	}
	est, err := selest.Build(samples, selest.Options{
		Method:   selest.Kernel,
		Boundary: selest.BoundaryKernels,
		DomainLo: 0,
		DomainHi: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10% interior query on uniform data.
	lo, hi := 0.45*(1<<20), 0.55*(1<<20)
	if got := est.Selectivity(lo, hi); math.Abs(got-0.1) > 0.03 {
		t.Fatalf("σ̂ = %v, want ~0.1", got)
	}
}

func TestFacadeAllMethodsExposed(t *testing.T) {
	want := []selest.Method{
		selest.Sampling, selest.Uniform, selest.EquiWidth, selest.EquiDepth,
		selest.MaxDiff, selest.VOptimal, selest.EndBiased, selest.Wavelet, selest.ASH, selest.FrequencyPolygon, selest.Kernel, selest.VariableKernel, selest.Hybrid,
	}
	got := selest.Methods()
	if len(got) != len(want) {
		t.Fatalf("Methods() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Methods()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFacadeRulesAndBoundaries(t *testing.T) {
	r := xrand.New(2)
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = r.NormalMeanStd(500, 100)
	}
	for i, v := range samples {
		if v < 0 {
			samples[i] = 0
		} else if v > 1000 {
			samples[i] = 1000
		}
	}
	for _, rule := range []selest.BandwidthRule{selest.NormalScale, selest.DPI, selest.LSCV} {
		for _, b := range []selest.BoundaryMode{selest.BoundaryNone, selest.BoundaryReflect, selest.BoundaryKernels} {
			est, err := selest.Build(samples, selest.Options{
				Method: selest.Kernel, Rule: rule, Boundary: b,
				DomainLo: 0, DomainHi: 1000,
			})
			if err != nil {
				t.Fatalf("rule=%s boundary=%s: %v", rule, b, err)
			}
			if s := est.Selectivity(400, 600); s < 0.4 || s > 0.9 {
				t.Fatalf("rule=%s boundary=%s: ±1σ σ̂ = %v", rule, b, s)
			}
		}
	}
}
