package selest_test

import (
	"math"
	"testing"

	"selest"
	"selest/internal/xrand"
)

func TestFacadeQuickstart(t *testing.T) {
	r := xrand.New(1)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = math.Floor(r.Float64() * (1 << 20))
	}
	est, err := selest.Build(samples, selest.Options{
		Method:   selest.Kernel,
		Boundary: selest.BoundaryKernels,
		DomainLo: 0,
		DomainHi: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10% interior query on uniform data.
	lo, hi := 0.45*(1<<20), 0.55*(1<<20)
	if got := est.Selectivity(lo, hi); math.Abs(got-0.1) > 0.03 {
		t.Fatalf("σ̂ = %v, want ~0.1", got)
	}
}

func TestFacadeAllMethodsExposed(t *testing.T) {
	want := []selest.Method{
		selest.Sampling, selest.Uniform, selest.EquiWidth, selest.EquiDepth,
		selest.MaxDiff, selest.VOptimal, selest.EndBiased, selest.Wavelet, selest.ASH, selest.FrequencyPolygon, selest.Kernel, selest.BetaKernel, selest.VariableKernel, selest.Hybrid,
	}
	got := selest.Methods()
	if len(got) != len(want) {
		t.Fatalf("Methods() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Methods()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFacadeRulesAndBoundaries(t *testing.T) {
	r := xrand.New(2)
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = r.NormalMeanStd(500, 100)
	}
	for i, v := range samples {
		if v < 0 {
			samples[i] = 0
		} else if v > 1000 {
			samples[i] = 1000
		}
	}
	for _, rule := range []selest.BandwidthRule{selest.NormalScale, selest.DPI, selest.LSCV} {
		for _, b := range []selest.BoundaryMode{selest.BoundaryNone, selest.BoundaryReflect, selest.BoundaryKernels} {
			est, err := selest.Build(samples, selest.Options{
				Method: selest.Kernel, Rule: rule, Boundary: b,
				DomainLo: 0, DomainHi: 1000,
			})
			if err != nil {
				t.Fatalf("rule=%s boundary=%s: %v", rule, b, err)
			}
			if s := est.Selectivity(400, 600); s < 0.4 || s > 0.9 {
				t.Fatalf("rule=%s boundary=%s: ±1σ σ̂ = %v", rule, b, s)
			}
		}
	}
}

func TestBuildRobustDegradesAndReports(t *testing.T) {
	samples := []float64{math.NaN(), math.Inf(1), 5, 5, 5, 5} // constant after scrubbing
	est, rep, err := selest.BuildRobust(samples, selest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sanitize.Dropped != 2 || !rep.Sanitize.Constant {
		t.Fatalf("sanitize report = %+v", rep.Sanitize)
	}
	if s := est.Selectivity(4, 6); s != 1 {
		t.Fatalf("point mass covering query = %v, want 1", s)
	}
}

func TestOptionsRobustRoutesThroughLadder(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i % 10) // heavy duplicates, still non-constant
	}
	est, err := selest.Build(samples, selest.Options{Robust: true, DomainLo: 0, DomainHi: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Inverted and NaN queries are normalized by the robust guard.
	if a, b := est.Selectivity(2, 7), est.Selectivity(7, 2); a != b {
		t.Fatalf("inverted query %v != forward %v", b, a)
	}
	if s := est.Selectivity(math.NaN(), 5); s != 0 {
		t.Fatalf("NaN query = %v, want 0", s)
	}
}
