package selest_test

import (
	"fmt"
	"math"

	"selest"
	"selest/internal/xrand"
)

// deterministicSample builds a reproducible integer-valued sample on
// [0, 1000) for the examples.
func deterministicSample(n int) []float64 {
	r := xrand.New(42)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Floor(r.Float64() * 1000)
	}
	return out
}

// Build a kernel estimator from a sample and estimate a range predicate's
// selectivity.
func ExampleBuild() {
	samples := deterministicSample(2000)
	est, err := selest.Build(samples, selest.Options{
		Method:   selest.Kernel,
		Boundary: selest.BoundaryKernels,
		DomainLo: 0,
		DomainHi: 1000,
	})
	if err != nil {
		panic(err)
	}
	// Uniform data: a 10%-wide range holds ~10% of the records.
	sel := est.Selectivity(450, 550)
	fmt.Printf("selectivity within 0.02 of 0.1: %v\n", math.Abs(sel-0.1) < 0.02)
	// Output:
	// selectivity within 0.02 of 0.1: true
}

// Compare every method on the same query.
func ExampleMethods() {
	samples := deterministicSample(2000)
	for _, m := range selest.Methods() {
		est, err := selest.Build(samples, selest.Options{
			Method: m, DomainLo: 0, DomainHi: 1000,
		})
		if err != nil {
			panic(err)
		}
		sel := est.Selectivity(100, 300)
		fmt.Printf("%-16s within 0.05 of 0.2: %v\n", m, math.Abs(sel-0.2) < 0.05)
	}
	// Output:
	// sampling         within 0.05 of 0.2: true
	// uniform          within 0.05 of 0.2: true
	// equi-width       within 0.05 of 0.2: true
	// equi-depth       within 0.05 of 0.2: true
	// max-diff         within 0.05 of 0.2: true
	// v-optimal        within 0.05 of 0.2: true
	// end-biased       within 0.05 of 0.2: true
	// wavelet          within 0.05 of 0.2: true
	// ash              within 0.05 of 0.2: true
	// frequency-polygon within 0.05 of 0.2: true
	// kernel           within 0.05 of 0.2: true
	// beta-kernel      within 0.05 of 0.2: true
	// variable-kernel  within 0.05 of 0.2: true
	// hybrid           within 0.05 of 0.2: true
}

// Adapt an estimator with query feedback.
func ExampleNewAdaptive() {
	samples := deterministicSample(1000)
	base, err := selest.Build(samples, selest.Options{
		Method: selest.Kernel, Boundary: selest.BoundaryKernels,
		DomainLo: 0, DomainHi: 1000,
	})
	if err != nil {
		panic(err)
	}
	ad, err := selest.NewAdaptive(base, 0, 1000, selest.AdaptiveConfig{})
	if err != nil {
		panic(err)
	}
	// Executed queries revealed that [100, 200] really holds 25% of rows.
	for i := 0; i < 50; i++ {
		ad.Observe(100, 200, 0.25)
	}
	fmt.Printf("learned: %v\n", math.Abs(ad.Selectivity(100, 200)-0.25) < 0.03)
	// Output:
	// learned: true
}

// Maintain an estimator over a stream.
func ExampleNewOnline() {
	on, err := selest.NewOnline(selest.Options{
		Method: selest.Kernel, Boundary: selest.BoundaryKernels,
		DomainLo: 0, DomainHi: 1000,
	}, selest.OnlineConfig{ReservoirSize: 500, Seed: 7})
	if err != nil {
		panic(err)
	}
	r := xrand.New(8)
	for i := 0; i < 5000; i++ {
		if err := on.Insert(r.Float64() * 1000); err != nil {
			panic(err)
		}
	}
	fmt.Printf("fitted after %d inserts with %d refits: %v\n",
		on.Inserts(), on.Refits(), math.Abs(on.Selectivity(0, 500)-0.5) < 0.1)
	// Output:
	// fitted after 5000 inserts with 1 refits: true
}

// Persist statistics like a database catalog.
func ExampleNewCatalog() {
	c := selest.NewCatalog()
	err := c.Put(&selest.CatalogEntry{
		Table: "orders", Column: "amount",
		Samples:  deterministicSample(500),
		DomainLo: 0, DomainHi: 1000,
		Method:   selest.EquiWidth,
		RowCount: 1_000_000,
	})
	if err != nil {
		panic(err)
	}
	rows, err := c.EstimateRows("orders", "amount", 0, 500)
	if err != nil {
		panic(err)
	}
	fmt.Printf("about half a million rows: %v\n", math.Abs(rows-500000) < 50000)
	// Output:
	// about half a million rows: true
}
