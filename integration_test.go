package selest_test

// Integration tests: the full pipeline — data file generation, sampling,
// estimator construction for every method, workload evaluation, catalog
// persistence — exercised together the way cmd/experiments composes it.

import (
	"math"
	"testing"

	"selest"
	"selest/internal/dataset"
	"selest/internal/errmetrics"
	"selest/internal/query"
	"selest/internal/sample"
	"selest/internal/xrand"
)

// pipeline builds a file, a sample, and a workload once for all
// integration tests.
type pipeline struct {
	file    *dataset.File
	samples []float64
	w       *query.Workload
	lo, hi  float64
}

func buildPipeline(t *testing.T, name string) *pipeline {
	t.Helper()
	f, err := dataset.ByName(name, dataset.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.Domain()
	smp, err := sample.WithoutReplacement(xrand.New(1), f.Records, 2000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.GenerateAligned(f.Records, lo, hi, 0.01, 300, xrand.New(2), true)
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{file: f, samples: smp, w: w, lo: lo, hi: hi}
}

// TestIntegrationAllMethodsOnRealPipeline runs every estimation method on
// an n(20)-style file and checks the MRE stays within a sane envelope —
// the end-to-end contract of the library.
func TestIntegrationAllMethodsOnRealPipeline(t *testing.T) {
	p := buildPipeline(t, "n(20)")
	// Loose per-method MRE ceilings for 1% queries at 2,000 samples;
	// values far beyond these indicate an estimator wired up wrongly
	// (e.g. mis-scaled selectivities), not statistical noise.
	ceilings := map[selest.Method]float64{
		selest.Sampling:         0.40,
		selest.Uniform:          20.0, // uniform is known-terrible on normal data
		selest.EquiWidth:        0.30,
		selest.EquiDepth:        0.40,
		selest.MaxDiff:          0.40,
		selest.VOptimal:         0.60,
		selest.EndBiased:        0.40,
		selest.Wavelet:          0.60,
		selest.FrequencyPolygon: 0.30,
		selest.ASH:              0.30,
		selest.Kernel:           0.20,
		selest.BetaKernel:       0.20,
		selest.VariableKernel:   0.30,
		selest.Hybrid:           0.30,
	}
	for _, m := range selest.Methods() {
		est, err := selest.Build(p.samples, selest.Options{
			Method: m, Boundary: selest.BoundaryReflect,
			DomainLo: p.lo, DomainHi: p.hi,
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		mre, skipped := errmetrics.MRE(est, p.w)
		if math.IsNaN(mre) {
			t.Fatalf("%s: MRE is NaN (skipped %d)", m, skipped)
		}
		if mre > ceilings[m] {
			t.Fatalf("%s: MRE %v exceeds envelope %v", m, mre, ceilings[m])
		}
	}
}

// TestIntegrationEstimatorRanking verifies the paper's headline ranking
// end-to-end on smooth data: kernel < tuned histogram < sampling.
func TestIntegrationEstimatorRanking(t *testing.T) {
	p := buildPipeline(t, "e(20)")
	mreFor := func(m selest.Method, b selest.BoundaryMode) float64 {
		est, err := selest.Build(p.samples, selest.Options{
			Method: m, Boundary: b, DomainLo: p.lo, DomainHi: p.hi,
		})
		if err != nil {
			t.Fatal(err)
		}
		mre, _ := errmetrics.MRE(est, p.w)
		return mre
	}
	kernel := mreFor(selest.Kernel, selest.BoundaryKernels)
	ewh := mreFor(selest.EquiWidth, selest.BoundaryNone)
	sampling := mreFor(selest.Sampling, selest.BoundaryNone)
	if !(kernel < ewh && ewh < sampling) {
		t.Fatalf("ranking broken: kernel %v, EWH %v, sampling %v", kernel, ewh, sampling)
	}
}

// TestIntegrationCatalogAllMethods persists one entry per method and
// confirms every estimator rebuilds and answers after a disk round trip.
func TestIntegrationCatalogAllMethods(t *testing.T) {
	p := buildPipeline(t, "u(20)")
	c := selest.NewCatalog()
	for _, m := range selest.Methods() {
		err := c.Put(&selest.CatalogEntry{
			Table: "t", Column: string(m),
			Samples:  p.samples,
			DomainLo: p.lo, DomainHi: p.hi,
			Method:   m,
			Boundary: selest.BoundaryReflect,
			RowCount: int64(p.file.Len()),
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	path := t.TempDir() + "/all.selc"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := selest.LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != len(selest.Methods()) {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
	// A 10%-of-domain query on uniform data: every rebuilt estimator must
	// predict ~10% of the rows.
	a := p.lo + 0.45*(p.hi-p.lo)
	b := p.lo + 0.55*(p.hi-p.lo)
	for _, m := range selest.Methods() {
		rows, err := loaded.EstimateRows("t", string(m), a, b)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		want := 0.1 * float64(p.file.Len())
		if math.Abs(rows-want)/want > 0.2 {
			t.Fatalf("%s: rebuilt estimate %v, want ~%v", m, rows, want)
		}
	}
}

// TestIntegrationDeterminism re-runs the pipeline from the same seeds and
// expects byte-identical estimates — the property EXPERIMENTS.md depends
// on.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() []float64 {
		p := buildPipeline(t, "arap2")
		est, err := selest.Build(p.samples, selest.Options{
			Method: selest.Hybrid, DomainLo: p.lo, DomainHi: p.hi,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 20)
		for i := 0; i < 20; i++ {
			a := p.lo + float64(i)/20*(p.hi-p.lo)*0.9
			out = append(out, est.Selectivity(a, a+0.01*(p.hi-p.lo)))
		}
		return out
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("estimate %d not deterministic: %v vs %v", i, r1[i], r2[i])
		}
	}
}

// TestIntegrationWorkloadFileRoundTrip saves a generated workload, reloads
// it, and confirms MRE evaluation is identical — workloads are shareable
// artifacts.
func TestIntegrationWorkloadFileRoundTrip(t *testing.T) {
	p := buildPipeline(t, "e(15)")
	path := t.TempDir() + "/wl.selq"
	if err := p.w.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := query.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	est, err := selest.Build(p.samples, selest.Options{
		Method: selest.Kernel, Boundary: selest.BoundaryKernels,
		DomainLo: p.lo, DomainHi: p.hi,
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := errmetrics.MRE(est, p.w)
	m2, _ := errmetrics.MRE(est, loaded)
	if m1 != m2 {
		t.Fatalf("MRE changed across round trip: %v vs %v", m1, m2)
	}
}
