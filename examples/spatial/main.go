// Spatial: selectivity estimation on TIGER/Line-style coordinate data —
// the workload the paper's evaluation is built around — including the
// two-dimensional product-kernel extension (paper §6 future work) for
// rectangular window queries.
//
// Run with:
//
//	go run ./examples/spatial
package main

import (
	"fmt"
	"log"
	"math"

	"selest"
	"selest/internal/dataset"
	"selest/internal/kde"
	"selest/internal/sample"
	"selest/internal/table"
	"selest/internal/xrand"
)

func main() {
	// Regenerate the paper's Arapahoe county stand-in (52,120 line
	// endpoints) for both coordinate dimensions.
	fx := dataset.ArapFile(1, dataset.DefaultSeed+8)
	fy := dataset.ArapFile(2, dataset.DefaultSeed+9)
	n := fx.Len()
	if fy.Len() < n {
		n = fy.Len()
	}
	rel, err := table.NewRelation("arapahoe", map[string][]float64{
		"x": fx.Records[:n],
		"y": fy.Records[:n],
	})
	if err != nil {
		log.Fatal(err)
	}
	loX, hiX := fx.Domain()
	loY, hiY := fy.Domain()

	rng := xrand.New(99)
	sx, err := sample.WithoutReplacement(rng, fx.Records[:n], 2000)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1-D: the paper's headline finding on spatial data. ---
	// On clustered coordinate data the hybrid estimator beats the plain
	// kernel estimator (Fig. 12); show both.
	kern, err := selest.Build(sx, selest.Options{
		Method: selest.Kernel, Boundary: selest.BoundaryKernels, Rule: selest.DPI,
		DomainLo: loX, DomainHi: hiX,
	})
	if err != nil {
		log.Fatal(err)
	}
	hyb, err := selest.Build(sx, selest.Options{
		Method:   selest.Hybrid,
		DomainLo: loX, DomainHi: hiX,
	})
	if err != nil {
		log.Fatal(err)
	}
	colX, _ := rel.Column("x")

	fmt.Println("1-D range queries on the x coordinate (1% of the domain):")
	fmt.Printf("%-14s %10s %12s %12s\n", "position", "exact", "kernel", "hybrid")
	width := 0.01 * (hiX - loX)
	for _, frac := range []float64{0.12, 0.3, 0.5, 0.7, 0.88} {
		a := loX + frac*(hiX-loX-width)
		b := a + width
		exact := colX.RangeCount(a, b)
		fmt.Printf("%13.0f %10d %12.0f %12.0f\n",
			a, exact,
			kern.Selectivity(a, b)*float64(n),
			hyb.Selectivity(a, b)*float64(n))
	}

	// --- 2-D: window queries with the product-kernel extension. ---
	sy, err := sample.WithoutReplacement(xrand.New(100), fy.Records[:n], 2000)
	if err != nil {
		log.Fatal(err)
	}
	// Pair the coordinate samples positionally (a real system samples
	// whole records; the stand-in files are independent per dimension, so
	// this demonstrates the machinery rather than real correlation).
	est2d, err := kde.New2D(sx, sy, kde.Config2D{
		BandwidthX: 0.02 * (hiX - loX),
		BandwidthY: 0.02 * (hiY - loY),
		Reflect:    true,
		LoX:        loX, HiX: hiX, LoY: loY, HiY: hiY,
	})
	if err != nil {
		log.Fatal(err)
	}
	rel2, err := table.NewRelation("paired", map[string][]float64{"x": sx, "y": sy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2-D window queries (10% × 10% of each domain), against the paired sample itself:")
	fmt.Printf("%-28s %10s %12s\n", "window", "exact", "kernel2d")
	for _, frac := range []float64{0.2, 0.45, 0.7} {
		ax := loX + frac*(hiX-loX)*0.9
		bx := ax + 0.1*(hiX-loX)
		ay := loY + frac*(hiY-loY)*0.9
		by := ay + 0.1*(hiY-loY)
		exact, err := rel2.RangeCount2D("x", "y", ax, bx, ay, by)
		if err != nil {
			log.Fatal(err)
		}
		estCount := est2d.Selectivity(ax, bx, ay, by) * float64(est2d.SampleSize())
		fmt.Printf("[%6.0fk,%6.0fk]×[%5.0fk,%5.0fk] %8d %12.1f\n",
			math.Round(ax/1000), math.Round(bx/1000), math.Round(ay/1000), math.Round(by/1000),
			exact, estCount)
	}
}
