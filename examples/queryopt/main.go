// Queryopt: the paper's motivating scenario — a query optimiser choosing
// between an index scan and a full table scan based on estimated
// selectivity. A bad estimate flips the decision and costs real I/O; this
// example counts how often each estimator picks the wrong plan.
//
// Run with:
//
//	go run ./examples/queryopt
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"selest"
	"selest/internal/sample"
	"selest/internal/xrand"
)

// The classic rule of thumb: below this selectivity an index scan wins,
// above it a sequential scan is cheaper.
const indexScanThreshold = 0.05

func main() {
	// An exponential-ish attribute (order quantities): most predicates hit
	// either very little or a lot, and the interesting queries straddle
	// the plan threshold.
	rng := xrand.New(3)
	const tableSize = 200000
	values := make([]float64, tableSize)
	for i := range values {
		values[i] = math.Round(rng.Exponential(1.0 / 3000))
	}
	sort.Float64s(values)
	lo, hi := values[0], values[len(values)-1]

	smp, err := sample.WithoutReplacement(rng, values, 2000)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate estimators an optimiser might ship.
	type candidate struct {
		name string
		opts selest.Options
	}
	candidates := []candidate{
		{"uniform (System R)", selest.Options{Method: selest.Uniform}},
		{"equi-width (h-NS)", selest.Options{Method: selest.EquiWidth}},
		{"sampling", selest.Options{Method: selest.Sampling}},
		{"kernel (paper)", selest.Options{Method: selest.Kernel, Boundary: selest.BoundaryKernels, Rule: selest.DPI}},
		{"hybrid (paper)", selest.Options{Method: selest.Hybrid}},
	}

	// A workload of range predicates whose true selectivities cluster
	// around the plan threshold, where estimation errors hurt most.
	qrng := xrand.New(17)
	type pred struct{ a, b float64 }
	var preds []pred
	for len(preds) < 2000 {
		a := qrng.Float64() * hi * 0.4
		width := qrng.Float64() * hi * 0.06
		preds = append(preds, pred{a, a + width})
	}

	fmt.Printf("table: %d records; plan rule: index scan iff selectivity < %.0f%%\n\n", tableSize, indexScanThreshold*100)
	fmt.Printf("%-20s %12s %14s %16s\n", "estimator", "MRE", "wrong plans", "avg sel. error")
	for _, c := range candidates {
		o := c.opts
		o.DomainLo, o.DomainHi = lo, hi
		est, err := selest.Build(smp, o)
		if err != nil {
			log.Fatal(err)
		}
		var wrong int
		var mreSum, absSum float64
		var mreN int
		for _, p := range preds {
			trueSel := float64(count(values, p.a, p.b)) / tableSize
			estSel := est.Selectivity(p.a, p.b)
			if (trueSel < indexScanThreshold) != (estSel < indexScanThreshold) {
				wrong++
			}
			absSum += math.Abs(estSel - trueSel)
			if trueSel > 0 {
				mreSum += math.Abs(estSel-trueSel) / trueSel
				mreN++
			}
		}
		fmt.Printf("%-20s %11.1f%% %9d/%d %15.5f\n",
			c.name, 100*mreSum/float64(mreN), wrong, len(preds), absSum/float64(len(preds)))
	}
	fmt.Println("\nA wrong plan on a 200k-row table means a full scan where an index probe")
	fmt.Println("sufficed (or vice versa) — the paper's case for better estimators.")
}

func count(sorted []float64, a, b float64) int {
	lo := sort.SearchFloat64s(sorted, a)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b })
	return hi - lo
}
