// Streaming: online selectivity estimation over a data stream — the
// paper's second future-work item (applying kernel estimators to online
// aggregate processing). A reservoir sample tracks the stream; the kernel
// estimator is re-fit periodically and its estimate of a fixed range
// predicate converges while the stream's distribution drifts.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"

	"selest"
	"selest/internal/sample"
	"selest/internal/xrand"
)

func main() {
	const (
		domainLo, domainHi = 0, 100000
		reservoirSize      = 2000
		streamLen          = 500000
		refitEvery         = 50000
	)
	rng := xrand.New(11)
	res := sample.NewReservoir(xrand.New(12), reservoirSize)

	// The monitored predicate: a 5%-wide range in the middle of the domain.
	qa, qb := 45000.0, 50000.0

	// Exact running counts for comparison.
	var inRange, total int

	fmt.Printf("stream of %d records; monitoring  SELECT count(*) WHERE v BETWEEN %g AND %g\n\n", streamLen, qa, qb)
	fmt.Printf("%12s %12s %12s %12s %10s\n", "seen", "true sel.", "kernel est.", "sampling est.", "drift")

	for i := 1; i <= streamLen; i++ {
		// The stream drifts: the source distribution's mean wanders from
		// 30k to 70k over the stream's life, so the answer keeps changing
		// and stale statistics would be badly wrong.
		drift := float64(i) / streamLen
		mean := 30000 + 40000*drift
		v := math.Round(rng.NormalMeanStd(mean, 15000))
		if v < domainLo {
			v = domainLo
		} else if v > domainHi {
			v = domainHi
		}
		res.Add(v)
		total++
		if v >= qa && v <= qb {
			inRange++
		}

		if i%refitEvery == 0 {
			smp := res.Sample()
			est, err := selest.Build(smp, selest.Options{
				Method:   selest.Kernel,
				Boundary: selest.BoundaryKernels,
				DomainLo: domainLo,
				DomainHi: domainHi,
			})
			if err != nil {
				log.Fatal(err)
			}
			pure, err := selest.Build(smp, selest.Options{
				Method:   selest.Sampling,
				DomainLo: domainLo,
				DomainHi: domainHi,
			})
			if err != nil {
				log.Fatal(err)
			}
			trueSel := float64(inRange) / float64(total)
			fmt.Printf("%12d %12.5f %12.5f %12.5f %9.0f%%\n",
				i, trueSel, est.Selectivity(qa, qb), pure.Selectivity(qa, qb), 100*drift)
		}
	}

	fmt.Println("\nThe reservoir keeps a uniform sample of the whole stream, so both")
	fmt.Println("estimators track the cumulative selectivity; the kernel estimate is")
	fmt.Println("the smoother of the two at equal sample size (paper §2: higher")
	fmt.Println("convergence rate than pure sampling).")
}
