// Adaptive: selectivity estimation with query feedback. The optimiser's
// estimator starts out systematically wrong on clustered data (the normal
// scale rule oversmooths); as queries execute, their true result sizes
// flow back via Observe and the estimates in the hot region converge —
// the paper's future-work item #3 in action.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"selest"
	"selest/internal/dataset"
	"selest/internal/sample"
	"selest/internal/xrand"
)

func main() {
	// The clustered Arapahoe stand-in: the hardest case for rule-based
	// bandwidths (paper Fig. 11).
	f := dataset.ArapFile(1, dataset.DefaultSeed+8)
	records := append([]float64(nil), f.Records...)
	sort.Float64s(records)
	lo, hi := f.Domain()

	smp, err := sample.WithoutReplacement(xrand.New(1), records, 2000)
	if err != nil {
		log.Fatal(err)
	}
	base, err := selest.Build(smp, selest.Options{
		Method:   selest.Kernel,
		Boundary: selest.BoundaryKernels,
		DomainLo: lo,
		DomainHi: hi,
	})
	if err != nil {
		log.Fatal(err)
	}
	ad, err := selest.NewAdaptive(base, lo, hi, selest.AdaptiveConfig{Buckets: 256})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a production query stream: 1%-of-domain ranges positioned
	// where the data lives. After each "execution" the true count feeds
	// back. Report the rolling MRE in windows of 200 queries.
	qrng := xrand.New(2)
	width := 0.01 * (hi - lo)
	const total = 2000
	const window = 200
	fmt.Printf("adaptive estimation on %s (%d records): rolling MRE per %d-query window\n\n",
		f.Name, f.Len(), window)
	fmt.Printf("%10s %14s %14s\n", "queries", "base MRE", "adaptive MRE")

	var baseSum, adSum float64
	counted := 0
	for q := 1; q <= total; q++ {
		centre := records[qrng.Intn(len(records))]
		a := math.Max(lo, centre-width/2)
		b := math.Min(hi, a+width)
		trueCount := countRange(records, a, b)
		if trueCount > 0 {
			truth := float64(trueCount) / float64(len(records))
			baseSum += math.Abs(base.Selectivity(a, b)-truth) / truth
			adSum += math.Abs(ad.Selectivity(a, b)-truth) / truth
			counted++
		}
		// The query has now "executed": feed the truth back.
		ad.Observe(a, b, float64(trueCount)/float64(len(records)))

		if q%window == 0 {
			fmt.Printf("%10d %13.1f%% %13.1f%%\n", q, 100*baseSum/float64(counted), 100*adSum/float64(counted))
			baseSum, adSum, counted = 0, 0, 0
		}
	}
	fmt.Println("\nThe base estimator's error is static; the adaptive wrapper's falls as")
	fmt.Println("feedback accumulates over the workload's hot regions.")
}

func countRange(sorted []float64, a, b float64) int {
	lo := sort.SearchFloat64s(sorted, a)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b })
	return hi - lo
}
