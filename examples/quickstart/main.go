// Quickstart: build a kernel selectivity estimator from a 2,000-record
// sample of a 100,000-record table and compare its range-query estimates
// against the exact answers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"selest"
	"selest/internal/sample"
	"selest/internal/xrand"
)

func main() {
	// A synthetic "order value" attribute: log-normal-ish, as real money
	// columns tend to be. In a database this would be one attribute of a
	// large relation.
	rng := xrand.New(7)
	const tableSize = 100000
	values := make([]float64, tableSize)
	for i := range values {
		values[i] = math.Round(math.Exp(rng.NormalMeanStd(4, 0.8)))
	}
	sort.Float64s(values)
	lo, hi := values[0], values[len(values)-1]

	// The optimiser only ever sees a small sample.
	smp, err := sample.WithoutReplacement(rng, values, 2000)
	if err != nil {
		log.Fatal(err)
	}

	// Build the paper's best general-purpose configuration: Epanechnikov
	// kernel, Simonoff–Dong boundary kernels, normal scale bandwidth.
	est, err := selest.Build(smp, selest.Options{
		Method:   selest.Kernel,
		Boundary: selest.BoundaryKernels,
		DomainLo: lo,
		DomainHi: hi,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("table: %d records over [%g, %g]; estimator: %s from %d samples\n\n",
		tableSize, lo, hi, est.Name(), len(smp))
	fmt.Printf("%-22s %10s %10s %8s\n", "range predicate", "exact", "estimate", "rel.err")
	for _, q := range [][2]float64{{20, 60}, {50, 100}, {100, 250}, {250, 1000}, {1, 15}} {
		exact := count(values, q[0], q[1])
		estRows := est.Selectivity(q[0], q[1]) * tableSize
		fmt.Printf("value BETWEEN %-4g AND %-4g %8d %10.0f %7.1f%%\n",
			q[0], q[1], exact, estRows, 100*math.Abs(estRows-float64(exact))/float64(exact))
	}
}

// count returns the exact result size on the sorted values.
func count(sorted []float64, a, b float64) int {
	lo := sort.SearchFloat64s(sorted, a)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b })
	return hi - lo
}
