// Analyze: the statistics lifecycle of a database system, end to end —
// ANALYZE samples the table's columns and stores per-column estimators in
// a catalog; the catalog persists to disk; a later "optimiser process"
// reloads it and estimates predicate result sizes without touching the
// table again.
//
// Run with:
//
//	go run ./examples/analyze
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"selest"
	"selest/internal/catalog"
	"selest/internal/table"
	"selest/internal/xrand"
)

func main() {
	// An "orders" table with three metric columns of different characters:
	// uniform ids, log-normal amounts, exponential-ish delivery days.
	rng := xrand.New(42)
	const rows = 150000
	ids := make([]float64, rows)
	amounts := make([]float64, rows)
	days := make([]float64, rows)
	for i := range ids {
		ids[i] = float64(i)
		amounts[i] = math.Round(math.Exp(rng.NormalMeanStd(4.5, 0.9)))
		days[i] = math.Round(rng.Exponential(1.0 / 3.5))
	}
	rel, err := table.NewRelation("orders", map[string][]float64{
		"id": ids, "amount": amounts, "days": days,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- ANALYZE: sample each column, store statistics. ---
	cat := catalog.New()
	configs := map[string]catalog.AnalyzeOptions{
		"id":     {Method: selest.Uniform},                                  // sequential ids: uniform is exact
		"amount": {Method: selest.Kernel, Boundary: selest.BoundaryKernels}, // smooth skewed
		"days":   {Method: selest.Hybrid},                                   // spiky discrete-ish
	}
	for column, opts := range configs {
		opts.Seed = 7
		if err := cat.Analyze(rel, column, opts); err != nil {
			log.Fatalf("analyze %s: %v", column, err)
		}
	}
	fmt.Printf("analyzed %d columns of orders (%d rows)\n", cat.Len(), rel.Len())

	// --- Persist, then reload as the "optimiser" would. ---
	dir, err := os.MkdirTemp("", "selest-analyze")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pg_statistic.selc")
	if err := cat.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("catalog persisted: %s (%d bytes)\n\n", filepath.Base(path), info.Size())

	loaded, err := catalog.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}

	// --- Plan-time estimation from the reloaded catalog. ---
	type predicate struct {
		column string
		a, b   float64
		sql    string
	}
	preds := []predicate{
		{"id", 10000, 20000, "id BETWEEN 10000 AND 20000"},
		{"amount", 50, 150, "amount BETWEEN 50 AND 150"},
		{"amount", 500, 10000, "amount BETWEEN 500 AND 10000"},
		{"days", 0, 2, "days <= 2"},
		{"days", 10, 30, "days BETWEEN 10 AND 30"},
	}
	fmt.Printf("%-34s %10s %12s %8s\n", "predicate", "exact", "estimate", "rel.err")
	for _, p := range preds {
		col, _ := rel.Column(p.column)
		exact := col.RangeCount(p.a, p.b)
		est, err := loaded.EstimateRows("orders", p.column, p.a, p.b)
		if err != nil {
			log.Fatal(err)
		}
		relErr := math.Abs(est-float64(exact)) / math.Max(float64(exact), 1)
		fmt.Printf("%-34s %10d %12.0f %7.1f%%\n", p.sql, exact, est, 100*relErr)
	}
	fmt.Println("\nThe estimates come from 2,000-record samples persisted at ANALYZE")
	fmt.Println("time; the optimiser never rescans the table.")
}
