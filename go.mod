module selest

go 1.22
