package selest

import (
	"io"
	"net"
	"net/http"

	"selest/internal/telemetry"
)

// Observability surface. Every layer of the library — fits in core,
// smoothing rules, kernel query paths, the robust ladder, online
// maintenance — records into one process-wide registry of counters,
// gauges, and latency histograms. This file is the public face of that
// registry: snapshot it, render it in Prometheus text format, wrap an
// estimator so its queries are counted and timed, or switch the hot-path
// hooks off entirely.

// MetricsSnapshot is a point-in-time copy of every metric the library
// has recorded: counters, gauges, and histogram summaries keyed by
// metric name (with any {label="value"} suffix included in the key).
type MetricsSnapshot = telemetry.Snapshot

// InstrumentedEstimator wraps an Estimator so every Selectivity call
// increments a per-estimator query counter and feeds a latency
// histogram. It is returned by Instrument.
type InstrumentedEstimator = telemetry.Instrumented

// Metrics returns a consistent snapshot of the metric registry.
func Metrics() MetricsSnapshot { return telemetry.Default.Snapshot() }

// ResetMetrics zeroes every registered metric in place. Estimators
// already instrumented keep recording into the same (now zeroed) series.
func ResetMetrics() { telemetry.Default.Reset() }

// Instrument wraps est so its queries appear in the registry as
// selest_queries_total{estimator="<name>"} and
// selest_query_nanos{estimator="<name>"}. Wrapping an already
// instrumented estimator returns it unchanged.
func Instrument(est Estimator) *InstrumentedEstimator { return telemetry.Instrument(est) }

// WriteMetricsText renders the registry in Prometheus text exposition
// format (version 0.0.4), suitable for a scrape endpoint or a debug
// dump.
func WriteMetricsText(w io.Writer) error { return telemetry.Default.WritePrometheus(w) }

// MetricsHandler returns an http.Handler serving WriteMetricsText — a
// /metrics endpoint for an existing server.
func MetricsHandler() http.Handler { return telemetry.Handler() }

// StartMetricsServer begins serving /metrics (Prometheus text) and
// /debug/vars (expvar, with the full snapshot published under the
// "selest" key) on addr. It returns the bound listener so callers can
// discover the port and shut the server down by closing it.
func StartMetricsServer(addr string) (net.Listener, error) { return telemetry.StartServer(addr) }

// EnableTelemetry switches the hot-path hooks (per-query counters in the
// kernel and online insert paths) back on. Telemetry starts enabled.
func EnableTelemetry() { telemetry.Enable() }

// DisableTelemetry switches the hot-path hooks off; cold-path metrics
// (fits, refits, robust builds) keep recording. Use this to shave the
// last few atomic operations off latency-critical query loops.
func DisableTelemetry() { telemetry.Disable() }

// TelemetryEnabled reports whether the hot-path hooks are on.
func TelemetryEnabled() bool { return telemetry.Enabled() }
