package selest_test

import (
	"math"
	"testing"

	"selest"
	"selest/internal/xrand"
)

func uniformSample(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Floor(r.Float64() * 1000)
	}
	return out
}

func TestFacadeAdaptive(t *testing.T) {
	base, err := selest.Build(uniformSample(1000, 1), selest.Options{
		Method: selest.Kernel, Boundary: selest.BoundaryKernels,
		DomainLo: 0, DomainHi: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := selest.NewAdaptive(base, 0, 1000, selest.AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Claim the region [100, 200] actually holds 30% of the records.
	for i := 0; i < 100; i++ {
		ad.Observe(100, 200, 0.3)
	}
	if got := ad.Selectivity(100, 200); math.Abs(got-0.3) > 0.05 {
		t.Fatalf("adaptive estimate %v, want ~0.3 after feedback", got)
	}
}

func TestFacadeOnline(t *testing.T) {
	on, err := selest.NewOnline(selest.Options{
		Method: selest.Kernel, Boundary: selest.BoundaryKernels,
		DomainLo: 0, DomainHi: 1000,
	}, selest.OnlineConfig{ReservoirSize: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	for i := 0; i < 2000; i++ {
		if err := on.Insert(r.Float64() * 1000); err != nil {
			t.Fatal(err)
		}
	}
	if got := on.Selectivity(0, 500); math.Abs(got-0.5) > 0.1 {
		t.Fatalf("online σ̂(0,500) = %v, want ~0.5", got)
	}
}

func TestFacadeCatalog(t *testing.T) {
	c := selest.NewCatalog()
	err := c.Put(&selest.CatalogEntry{
		Table: "orders", Column: "amount",
		Samples:  uniformSample(500, 4),
		DomainLo: 0, DomainHi: 1000,
		Method:   selest.EquiWidth,
		RowCount: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.EstimateRows("orders", "amount", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rows-1000) > 300 {
		t.Fatalf("EstimateRows = %v, want ~1000", rows)
	}
	path := t.TempDir() + "/stats.selc"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := selest.LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatal("catalog round trip lost entries")
	}
}
