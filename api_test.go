package selest_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"selest"
)

// The redesigned error surface: callers branch on typed sentinels with
// errors.Is, through both build paths.

func TestBuildSentinelErrors(t *testing.T) {
	opts := selest.Options{DomainLo: 0, DomainHi: 1000}

	if _, err := selest.Build(nil, opts); !errors.Is(err, selest.ErrEmptySample) {
		t.Fatalf("Build(nil sample) = %v, want ErrEmptySample", err)
	}
	if _, err := selest.Build([]float64{1, 2}, selest.Options{DomainLo: 9, DomainHi: 3}); !errors.Is(err, selest.ErrInvalidDomain) {
		t.Fatalf("Build(inverted domain) = %v, want ErrInvalidDomain", err)
	}
	bad := opts
	bad.Bins = -4
	if _, err := selest.Build([]float64{1, 2}, bad); !errors.Is(err, selest.ErrBadOption) {
		t.Fatalf("Build(negative bins) = %v, want ErrBadOption", err)
	}
}

func TestBuildRobustSentinelErrors(t *testing.T) {
	if _, _, err := selest.BuildRobust([]float64{1, 2, 3}, selest.Options{DomainLo: 9, DomainHi: 3}); !errors.Is(err, selest.ErrInvalidDomain) {
		t.Fatalf("BuildRobust(inverted domain) = %v, want ErrInvalidDomain", err)
	}
	if _, _, err := selest.BuildRobust([]float64{1, 2, 3}, selest.Options{DomainLo: math.NaN(), DomainHi: 1}); !errors.Is(err, selest.ErrInvalidDomain) {
		t.Fatalf("BuildRobust(NaN domain) = %v, want ErrInvalidDomain", err)
	}
	if _, _, err := selest.BuildRobust([]float64{math.NaN(), math.Inf(1)}, selest.Options{}); !errors.Is(err, selest.ErrEmptySample) {
		t.Fatalf("BuildRobust(no finite samples) = %v, want ErrEmptySample", err)
	}
	// Robust mode through the Build front door reports the same sentinel.
	if _, err := selest.Build(nil, selest.Options{Robust: true}); !errors.Is(err, selest.ErrEmptySample) {
		t.Fatalf("Build(robust, nil sample) = %v, want ErrEmptySample", err)
	}
}

func TestParseMethodSurface(t *testing.T) {
	m, err := selest.ParseMethod(" Kernel ")
	if err != nil || m != selest.Kernel {
		t.Fatalf("ParseMethod(\" Kernel \") = %v, %v; want Kernel", m, err)
	}
	_, err = selest.ParseMethod("nope")
	if !errors.Is(err, selest.ErrBadOption) {
		t.Fatalf("ParseMethod(unknown) = %v, want ErrBadOption", err)
	}
	for _, m := range selest.Methods() {
		if !strings.Contains(err.Error(), string(m)) {
			t.Fatalf("ParseMethod error %q does not list %q", err, m)
		}
	}

	r, err := selest.ParseBandwidthRule("DPI")
	if err != nil || r != selest.DPI {
		t.Fatalf("ParseBandwidthRule(\"DPI\") = %v, %v; want DPI", r, err)
	}
	if _, err := selest.ParseBandwidthRule("nope"); !errors.Is(err, selest.ErrBadOption) {
		t.Fatalf("ParseBandwidthRule(unknown) = %v, want ErrBadOption", err)
	}

	bm, err := selest.ParseBoundaryMode("kernels")
	if err != nil || bm != selest.BoundaryKernels {
		t.Fatalf("ParseBoundaryMode(\"kernels\") = %v, %v; want BoundaryKernels", bm, err)
	}
	if _, err := selest.ParseBoundaryMode("mirror"); err == nil {
		t.Fatal("ParseBoundaryMode(unknown) = nil error")
	}
}

// The telemetry surface: fits and instrumented queries land in the
// registry, snapshots read them back, and the text exposition renders.
func TestMetricsSurface(t *testing.T) {
	selest.ResetMetrics()

	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = float64(i * 5)
	}
	est, err := selest.Build(samples, selest.Options{
		Method: selest.Kernel, Boundary: selest.BoundaryKernels, DomainLo: 0, DomainHi: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := selest.Metrics()
	if got := snap.Counters[`selest_fit_total{method="kernel"}`]; got != 1 {
		t.Fatalf("fit counter = %d, want 1", got)
	}

	wrapped := selest.Instrument(est)
	if again := selest.Instrument(wrapped); again != wrapped {
		t.Fatal("Instrument(Instrument(est)) re-wrapped")
	}
	for i := 0; i < 7; i++ {
		wrapped.Selectivity(100, 200)
	}
	if got := wrapped.Queries(); got != 7 {
		t.Fatalf("Queries() = %d, want 7", got)
	}
	querySeries := `selest_queries_total{estimator="` + est.Name() + `"}`
	snap = selest.Metrics()
	if got := snap.Counters[querySeries]; got != 7 {
		t.Fatalf("%s = %d, want 7", querySeries, got)
	}
	if snap.Counters["selest_kde_queries_total"] == 0 {
		t.Fatal("kde query counter did not move")
	}

	var sb strings.Builder
	if err := selest.WriteMetricsText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), querySeries+" 7") {
		t.Fatalf("exposition missing %s:\n%s", querySeries, sb.String())
	}

	// Disabled telemetry silences the hot path but leaves cold fits on.
	selest.DisableTelemetry()
	defer selest.EnableTelemetry()
	if selest.TelemetryEnabled() {
		t.Fatal("TelemetryEnabled() after Disable")
	}
	before := selest.Metrics().Counters[querySeries]
	wrapped.Selectivity(100, 200)
	if after := selest.Metrics().Counters[querySeries]; after != before {
		t.Fatalf("disabled hot path still counted: %d -> %d", before, after)
	}

	selest.ResetMetrics()
	if got := selest.Metrics().Counters[querySeries]; got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
}

// Robust builds feed the same registry the Report feeds the caller.
func TestRobustBuildFeedsMetrics(t *testing.T) {
	selest.ResetMetrics()
	samples := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	_, rep, err := selest.BuildRobust(samples, selest.Options{DomainLo: 0, DomainHi: 11})
	if err != nil {
		t.Fatal(err)
	}
	snap := selest.Metrics()
	if got := snap.Counters["selest_robust_builds_total"]; got != 1 {
		t.Fatalf("robust build counter = %d, want 1", got)
	}
	rungSeries := `selest_robust_rung_total{rung="` + string(rep.Rung) + `"}`
	if got := snap.Counters[rungSeries]; got != 1 {
		t.Fatalf("%s = %d, want 1", rungSeries, got)
	}
}
