package selest

import (
	"selest/internal/catalog"
	"selest/internal/feedback"
	"selest/internal/online"
)

// This file exposes the library's extensions beyond the paper's core
// comparison: query-feedback adaptation, online (streaming) maintenance,
// and the persistent statistics catalog.

// Adaptive wraps a base estimator with a correction function learned from
// query feedback (the paper's future-work item #3): call Observe with the
// true selectivity of each executed query and subsequent estimates in the
// touched region improve.
type Adaptive = feedback.Adaptive

// AdaptiveConfig tunes the feedback wrapper (correction-grid resolution,
// learning rate, correction bound). The zero value applies sane defaults.
type AdaptiveConfig = feedback.Config

// NewAdaptive wraps base with a feedback corrector over [lo, hi].
func NewAdaptive(base Estimator, lo, hi float64, cfg AdaptiveConfig) (*Adaptive, error) {
	return feedback.New(base, lo, hi, cfg)
}

// Online is a self-maintaining estimator over a record stream: it owns a
// reservoir sample and refits on a cadence and/or when a
// Kolmogorov–Smirnov drift test fires (the paper's future-work item #2).
type Online = online.Estimator

// OnlineConfig tunes the online estimator (reservoir size, refit cadence,
// drift detection). The zero value applies the paper's 2,000-record
// sample size.
type OnlineConfig = online.Config

// NewOnline returns an online estimator that refits by calling Build with
// the given options over the current reservoir sample.
func NewOnline(opts Options, cfg OnlineConfig) (*Online, error) {
	return online.New(func(samples []float64) (online.Fitted, error) {
		return Build(samples, opts)
	}, cfg)
}

// Catalog is a persistent statistics catalog: per-(table, column) sample
// sets plus estimator configuration, with binary save/load — the form in
// which a database system would keep these estimators between ANALYZE
// runs.
type Catalog = catalog.Catalog

// CatalogEntry is one column's persisted statistics.
type CatalogEntry = catalog.Entry

// NewCatalog returns an empty statistics catalog.
func NewCatalog() *Catalog { return catalog.New() }

// LoadCatalog reads a catalog from disk and rebuilds its estimators.
func LoadCatalog(path string) (*Catalog, error) { return catalog.LoadFile(path) }
