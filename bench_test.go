// Benchmarks regenerating every table and figure of the paper's evaluation
// (one bench per experiment, reporting the headline error metrics via
// b.ReportMetric) plus the ablation benches DESIGN.md §5 calls out.
//
// Run with:
//
//	go test -bench=. -benchmem
package selest_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"selest/internal/bandwidth"
	"selest/internal/core"
	"selest/internal/errmetrics"
	"selest/internal/experiments"
	"selest/internal/histogram"
	"selest/internal/hybrid"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/query"
	"selest/internal/stats"
	"selest/internal/xrand"
)

// benchEnv is shared across benches so data files and workloads generate
// once; 200 queries per workload keeps full -bench runs in tens of
// seconds while preserving every figure's shape.
var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
)

func benchEnv() *experiments.Env {
	benchEnvOnce.Do(func() {
		benchEnvVal = experiments.NewEnv(experiments.Config{QueryCount: 200})
	})
	return benchEnvVal
}

// runDriver runs one experiment driver per iteration and returns the last
// report for metric extraction.
func runDriver(b *testing.B, id string) *experiments.Report {
	b.Helper()
	env := benchEnv()
	d, ok := experiments.DriverByID(id)
	if !ok {
		b.Fatalf("no driver %s", id)
	}
	// Warm the caches outside the timed region.
	if _, err := d.Run(env); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = d.Run(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// tableMetric reports table cells as bench metrics named row/col.
func tableMetric(b *testing.B, rep *experiments.Report, rowLabel, colName, metric string) {
	b.Helper()
	ci := -1
	for i, c := range rep.Table.Columns {
		if c == colName {
			ci = i
		}
	}
	if ci < 0 {
		b.Fatalf("no column %s", colName)
	}
	for _, r := range rep.Table.Rows {
		if r.Label == rowLabel {
			b.ReportMetric(r.Values[ci], metric)
			return
		}
	}
	b.Fatalf("no row %s", rowLabel)
}

// BenchmarkTable2DataFiles regenerates the Table 2 inventory.
func BenchmarkTable2DataFiles(b *testing.B) {
	rep := runDriver(b, "table2")
	b.ReportMetric(float64(len(rep.Table.Rows)), "files")
}

// BenchmarkFig3BoundaryError regenerates figure 3 and reports the maximum
// boundary error in records (paper: ~500).
func BenchmarkFig3BoundaryError(b *testing.B) {
	rep := runDriver(b, "fig3")
	s := rep.Series[0]
	b.ReportMetric(math.Max(math.Abs(s.Y[0]), math.Abs(s.Y[len(s.Y)-1])), "edge-records")
}

// BenchmarkFig4BinsCurve regenerates figure 4 and reports the optimal-bin
// MRE and the sampling MRE (paper: 7% vs 17.5%).
func BenchmarkFig4BinsCurve(b *testing.B) {
	rep := runDriver(b, "fig4")
	curve, flat := rep.Series[0], rep.Series[1]
	best := math.Inf(1)
	for _, y := range curve.Y {
		best = math.Min(best, y)
	}
	b.ReportMetric(best, "MRE-opt")
	b.ReportMetric(flat.Y[0], "MRE-sampling")
}

// BenchmarkFig5Cardinality regenerates figure 5 and reports the
// curve-average MRE per domain cardinality.
func BenchmarkFig5Cardinality(b *testing.B) {
	rep := runDriver(b, "fig5")
	for i, name := range []string{"MRE-n10", "MRE-n15", "MRE-n20"} {
		sum := 0.0
		for _, y := range rep.Series[i].Y {
			sum += y
		}
		b.ReportMetric(sum/float64(len(rep.Series[i].Y)), name)
	}
}

// BenchmarkFig6SampleSize regenerates figure 6 and reports each method's
// MRE at the paper's 2,000-sample point.
func BenchmarkFig6SampleSize(b *testing.B) {
	rep := runDriver(b, "fig6")
	names := []string{"MRE-sampling", "MRE-ewh", "MRE-kernel"}
	for i, s := range rep.Series {
		b.ReportMetric(s.Y[3], names[i])
	}
}

// BenchmarkFig7QuerySize regenerates figure 7 and reports arap2's MRE at
// 1% and 10% (paper: 17.5% vs 4.5%).
func BenchmarkFig7QuerySize(b *testing.B) {
	rep := runDriver(b, "fig7")
	tableMetric(b, rep, "arap2", "1%", "MRE-1pct")
	tableMetric(b, rep, "arap2", "10%", "MRE-10pct")
}

// BenchmarkFig8Histograms regenerates figure 8 and reports the n(20)
// results (paper: uniform loses by orders of magnitude).
func BenchmarkFig8Histograms(b *testing.B) {
	rep := runDriver(b, "fig8")
	tableMetric(b, rep, "n(20)", "EWH", "MRE-ewh")
	tableMetric(b, rep, "n(20)", "EDH", "MRE-edh")
	tableMetric(b, rep, "n(20)", "uniform", "MRE-uniform")
}

// BenchmarkFig9BinRules regenerates figure 9 and reports h-opt vs h-NS on
// n(20) (paper: within a few points).
func BenchmarkFig9BinRules(b *testing.B) {
	rep := runDriver(b, "fig9")
	tableMetric(b, rep, "n(20)", "MRE h-opt", "MRE-hopt")
	tableMetric(b, rep, "n(20)", "MRE h-NS", "MRE-hNS")
}

// BenchmarkFig10Boundary regenerates figure 10 and reports the worst
// boundary relative error per treatment.
func BenchmarkFig10Boundary(b *testing.B) {
	rep := runDriver(b, "fig10")
	names := []string{"edge-none", "edge-reflect", "edge-bkernels"}
	for i, s := range rep.Series {
		b.ReportMetric(math.Max(s.Y[0], s.Y[len(s.Y)-1]), names[i])
	}
}

// BenchmarkFig11Bandwidth regenerates figure 11 and reports the rules on
// the clustered arap1 stand-in (paper: DPI ≪ NS on real data).
func BenchmarkFig11Bandwidth(b *testing.B) {
	rep := runDriver(b, "fig11")
	tableMetric(b, rep, "arap1", "h-opt", "MRE-hopt")
	tableMetric(b, rep, "arap1", "h-NS", "MRE-hNS")
	tableMetric(b, rep, "arap1", "h-DPI2", "MRE-hDPI2")
}

// BenchmarkFig12Promising regenerates figure 12 and reports kernel vs
// hybrid on a synthetic and a clustered file (paper: kernel wins smooth,
// hybrid wins clustered).
func BenchmarkFig12Promising(b *testing.B) {
	rep := runDriver(b, "fig12")
	tableMetric(b, rep, "n(20)", "Kernel", "MRE-kernel-n20")
	tableMetric(b, rep, "arap1", "Kernel", "MRE-kernel-arap1")
	tableMetric(b, rep, "arap1", "Hybrid", "MRE-hybrid-arap1")
}

// --- micro-benchmarks of the estimator hot paths ---

func benchSamples(n int) []float64 {
	r := xrand.New(123)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 1e6
	}
	return out
}

// BenchmarkKernelSelectivityFastPath measures one σ̂(a,b) evaluation via
// the O(log n + k) sorted path.
func BenchmarkKernelSelectivityFastPath(b *testing.B) {
	est, err := kde.New(benchSamples(2000), kde.Config{Bandwidth: 1e4, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1e6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Selectivity(4e5, 4.1e5)
	}
}

// BenchmarkHistogramSelectivity measures one equi-width σ̂(a,b).
func BenchmarkHistogramSelectivity(b *testing.B) {
	h, err := histogram.BuildEquiWidth(benchSamples(2000), 50, 0, 1e6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Selectivity(4e5, 4.1e5)
	}
}

// BenchmarkHybridBuild measures hybrid-estimator construction (pilot KDE,
// change-point scan, per-bin fit).
func BenchmarkHybridBuild(b *testing.B) {
	samples := benchSamples(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.New(samples, 0, 1e6, hybrid.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPIBandwidth measures the 2-step direct plug-in rule.
func BenchmarkDPIBandwidth(b *testing.B) {
	samples := benchSamples(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bandwidth.DPIBandwidth(samples, kernel.Epanechnikov{}, 2, 0, 1e6); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md §5) ---

// ablationWorkload builds a shared n(20) sample + 1%-query workload.
func ablationWorkload(b *testing.B) ([]float64, *query.Workload, float64, float64) {
	b.Helper()
	env := benchEnv()
	f, err := env.File("n(20)")
	if err != nil {
		b.Fatal(err)
	}
	samples, err := env.DefaultSample("n(20)")
	if err != nil {
		b.Fatal(err)
	}
	w, err := env.Workload("n(20)", 0.01)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := f.Domain()
	return samples, w, lo, hi
}

// BenchmarkAblationKernelChoice compares kernels at equal (normal scale)
// bandwidths — the paper's claim that the kernel choice barely matters.
func BenchmarkAblationKernelChoice(b *testing.B) {
	samples, w, lo, hi := ablationWorkload(b)
	for _, k := range kernel.All() {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			h, err := bandwidth.NormalScaleBandwidth(samples, k)
			if err != nil {
				b.Fatal(err)
			}
			mode := kde.BoundaryReflect
			var mre float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est, err := kde.New(samples, kde.Config{Kernel: k, Bandwidth: h, Boundary: mode, DomainLo: lo, DomainHi: hi})
				if err != nil {
					b.Fatal(err)
				}
				mre, _ = errmetrics.MRE(est, w)
			}
			b.ReportMetric(mre, "MRE")
		})
	}
}

// BenchmarkAblationScaleEstimate compares the three scale estimates the
// paper discusses for the normal scale rule: stddev, IQR/1.348, and their
// minimum (the paper's choice).
func BenchmarkAblationScaleEstimate(b *testing.B) {
	samples, w, lo, hi := ablationWorkload(b)
	sd := stats.StdDev(samples)
	iqr := stats.IQR(samples) / 1.348
	variants := []struct {
		name  string
		scale float64
	}{
		{"stddev", sd},
		{"iqr", iqr},
		{"min", math.Min(sd, iqr)},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			h := 2.345 * v.scale * math.Pow(float64(len(samples)), -0.2)
			var mre float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est, err := kde.New(samples, kde.Config{Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
				if err != nil {
					b.Fatal(err)
				}
				mre, _ = errmetrics.MRE(est, w)
			}
			b.ReportMetric(mre, "MRE")
		})
	}
}

// BenchmarkAblationEvalPath compares the sorted fast path against the
// paper's printed Θ(n) Algorithm 1.
func BenchmarkAblationEvalPath(b *testing.B) {
	est, err := kde.New(benchSamples(2000), kde.Config{Bandwidth: 1e4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = est.Selectivity(4e5, 4.1e5)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = est.SelectivityLinear(4e5, 4.1e5)
		}
	})
}

// BenchmarkAblationASHShifts varies the number of ASH shifts.
func BenchmarkAblationASHShifts(b *testing.B) {
	samples, w, lo, hi := ablationWorkload(b)
	k, err := bandwidth.NormalScaleBins(samples, lo, hi, 8192)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{1, 2, 5, 10, 20} {
		m := m
		b.Run(fmt.Sprintf("m=%02d", m), func(b *testing.B) {
			var mre float64
			for i := 0; i < b.N; i++ {
				a, err := histogram.BuildASH(samples, k, m, lo, hi)
				if err != nil {
					b.Fatal(err)
				}
				mre, _ = errmetrics.MRE(a, w)
			}
			b.ReportMetric(mre, "MRE")
		})
	}
}

// BenchmarkAblationDPISteps varies the DPI iteration count (paper: "two
// or three iteration steps are sufficient").
func BenchmarkAblationDPISteps(b *testing.B) {
	samples, w, lo, hi := ablationWorkload(b)
	for _, steps := range []int{0, 1, 2, 3, 4} {
		steps := steps
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			var mre float64
			for i := 0; i < b.N; i++ {
				h, err := bandwidth.DPIBandwidth(samples, kernel.Epanechnikov{}, steps, lo, hi)
				if err != nil {
					b.Fatal(err)
				}
				est, err := kde.New(samples, kde.Config{Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
				if err != nil {
					b.Fatal(err)
				}
				mre, _ = errmetrics.MRE(est, w)
			}
			b.ReportMetric(mre, "MRE")
		})
	}
}

// BenchmarkAblationHybridSplits varies the hybrid's change-point budget on
// the clustered arap1 stand-in.
func BenchmarkAblationHybridSplits(b *testing.B) {
	env := benchEnv()
	f, err := env.File("arap1")
	if err != nil {
		b.Fatal(err)
	}
	samples, err := env.DefaultSample("arap1")
	if err != nil {
		b.Fatal(err)
	}
	w, err := env.Workload("arap1", 0.01)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := f.Domain()
	for _, cp := range []int{1, 3, 7, 15, 31} {
		cp := cp
		b.Run(fmt.Sprintf("cp=%02d", cp), func(b *testing.B) {
			var mre float64
			for i := 0; i < b.N; i++ {
				est, err := hybrid.New(samples, lo, hi, hybrid.Config{MaxChangePoints: cp})
				if err != nil {
					b.Fatal(err)
				}
				mre, _ = errmetrics.MRE(est, w)
			}
			b.ReportMetric(mre, "MRE")
		})
	}
}

// BenchmarkAblationAdaptiveBandwidth compares fixed-bandwidth, variable-
// bandwidth (Abramson) and hybrid estimation on the clustered arap1
// stand-in — three answers to the same non-smoothness problem.
func BenchmarkAblationAdaptiveBandwidth(b *testing.B) {
	env := benchEnv()
	f, err := env.File("arap1")
	if err != nil {
		b.Fatal(err)
	}
	samples, err := env.DefaultSample("arap1")
	if err != nil {
		b.Fatal(err)
	}
	w, err := env.Workload("arap1", 0.01)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := f.Domain()
	variants := []struct {
		name string
		opts core.Options
	}{
		{"fixed", core.Options{Method: core.Kernel, Boundary: kde.BoundaryKernels}},
		{"variable", core.Options{Method: core.VariableKernel, Boundary: kde.BoundaryReflect}},
		{"hybrid", core.Options{Method: core.Hybrid}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			o := v.opts
			o.DomainLo, o.DomainHi = lo, hi
			var mre float64
			for i := 0; i < b.N; i++ {
				est, err := core.Build(samples, o)
				if err != nil {
					b.Fatal(err)
				}
				mre, _ = errmetrics.MRE(est, w)
			}
			b.ReportMetric(mre, "MRE")
		})
	}
}

// --- extension-experiment benches ---

// BenchmarkExtRates regenerates the MISE convergence-rate check and
// reports the fitted slopes (theory: −0.8 kernel, −0.667 histogram).
func BenchmarkExtRates(b *testing.B) {
	rep := runDriver(b, "ext-rates")
	// Slopes are recomputed from the series to avoid exporting internals.
	slope := func(s experiments.Series) float64 {
		n := float64(len(s.X))
		var sx, sy, sxx, sxy float64
		for i := range s.X {
			x, y := math.Log(s.X[i]), math.Log(s.Y[i])
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		return (n*sxy - sx*sy) / (n*sxx - sx*sx)
	}
	b.ReportMetric(slope(rep.Series[0]), "slope-kernel")
	b.ReportMetric(slope(rep.Series[1]), "slope-ewh")
}

// BenchmarkExtFeedback regenerates the feedback experiment and reports
// base vs adaptive held-out MRE.
func BenchmarkExtFeedback(b *testing.B) {
	rep := runDriver(b, "ext-feedback")
	tableMetric(b, rep, "arap1", "MRE base", "MRE-base")
	tableMetric(b, rep, "arap1", "MRE adaptive", "MRE-adaptive")
}

// BenchmarkExt2D regenerates the 2-D comparison.
func BenchmarkExt2D(b *testing.B) {
	rep := runDriver(b, "ext-2d")
	tableMetric(b, rep, "corr(x,y)", "MRE 2-D kernel", "MRE-kernel2d")
	tableMetric(b, rep, "corr(x,y)", "MRE 2-D grid", "MRE-grid2d")
	tableMetric(b, rep, "corr(x,y)", "MRE independence", "MRE-indep")
}

// BenchmarkExtSketch regenerates the sketch comparison on n(20).
func BenchmarkExtSketch(b *testing.B) {
	rep := runDriver(b, "ext-sketch")
	tableMetric(b, rep, "n(20)", "MRE exact", "MRE-exact")
	tableMetric(b, rep, "n(20)", "MRE sketch", "MRE-sketch")
}

// BenchmarkExtJoin regenerates the join-size estimation experiment.
func BenchmarkExtJoin(b *testing.B) {
	rep := runDriver(b, "ext-join")
	tableMetric(b, rep, "equi-join", "rel err", "relerr-equi")
	tableMetric(b, rep, "band-join", "rel err", "relerr-band")
}

// BenchmarkExtAll regenerates the grand comparison and reports the
// kernel/hybrid headline cells.
func BenchmarkExtAll(b *testing.B) {
	rep := runDriver(b, "ext-all")
	tableMetric(b, rep, "n(20)", "kernel", "MRE-kernel-n20")
	tableMetric(b, rep, "arap1", "hybrid", "MRE-hybrid-arap1")
}
