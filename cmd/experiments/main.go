// Command experiments regenerates the paper's evaluation: every figure and
// table of Blohsfeld/Korus/Seeger (SIGMOD 1999) as data series printed to
// stdout.
//
// Usage:
//
//	experiments [-run all|table2,fig3,...] [-queries N] [-samples N] [-seed S] [-parallel N]
//
// With the defaults (1,000 queries per workload, 2,000 samples — the
// paper's configuration) a full run takes a few tens of seconds.
// -parallel fans the drivers (and the per-file/per-method cells inside
// them) across N workers; the output is identical at every setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"selest"
	"selest/internal/experiments"
)

func main() {
	var (
		run         = flag.String("run", "all", "comma-separated experiment ids to run, or 'all' (ids: "+strings.Join(experiments.IDs(), ", ")+")")
		queries     = flag.Int("queries", 1000, "queries per workload (paper: 1000)")
		samples     = flag.Int("samples", 2000, "sample-set size (paper: 2000)")
		seed        = flag.Uint64("seed", 0, "RNG seed (0 = the default catalog seed)")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		raw         = flag.Bool("raw", false, "also print every series point (the raw figure data)")
		methods     = flag.String("methods", "", "comma-separated method subset for the method-sweep drivers (default: every method)")
		metrics     = flag.Bool("metrics", false, "dump telemetry (Prometheus text format) to stderr before exiting")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/vars on this address while running")
		parallel    = flag.Int("parallel", 0, "worker count for drivers and their cells (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.AllDrivers() {
			fmt.Printf("%-8s %s\n", d.ID, d.Title)
		}
		return
	}

	var methodSet []selest.Method
	if *methods != "" {
		for _, name := range strings.Split(*methods, ",") {
			m, err := selest.ParseMethod(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			methodSet = append(methodSet, m)
		}
	}

	if *metricsAddr != "" {
		ln, err := selest.StartMetricsServer(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "experiments: metrics on http://%s/metrics\n", ln.Addr())
	}
	if *metrics {
		defer func() {
			if err := selest.WriteMetricsText(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: metrics dump: %v\n", err)
			}
		}()
	}

	env := experiments.NewEnv(experiments.Config{
		Seed:       *seed,
		SampleSize: *samples,
		QueryCount: *queries,
		Methods:    methodSet,
		Parallel:   *parallel,
	})

	var drivers []experiments.Driver
	if *run == "all" {
		drivers = experiments.AllDrivers()
	} else {
		for _, id := range strings.Split(*run, ",") {
			d, ok := experiments.DriverByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
			drivers = append(drivers, d)
		}
	}

	start := time.Now()
	results := experiments.RunDrivers(env, drivers)
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", res.Driver.ID, res.Err)
			os.Exit(1)
		}
		if *raw {
			res.Report.RenderRaw(os.Stdout)
		} else {
			res.Report.Render(os.Stdout)
		}
	}
	fmt.Printf("(%d experiments finished in %v)\n", len(results), time.Since(start).Round(time.Millisecond))
}
