// Command selestload drives mixed read/ingest traffic at a running
// selestd through the native client package and reports exact latency
// percentiles — the committed evidence behind BENCH_service.json.
//
// It speaks both transports: -proto wire uses the selestwire binary
// protocol (pipelined persistent connections), -proto json the HTTP
// transport, and -proto both measures each in turn against the same
// daemon in one process — the JSON-vs-wire comparison the protocol
// exists to win. Each worker loops over a -read-frac coin: reads are
// single estimates (a -batch-frac slice of them batched to amortise
// transport), writes are -ingest-batch values of uniform noise. The
// client package supplies the production behaviour: per-request -timeout
// budgets announced to the server, bounded retries with full-jitter
// backoff honouring throttle hints, and typed errors.
//
// Latencies are recorded per successful call (a call's internal retries
// burn its own clock), merged across workers, and reported as
// p50/p99/p999 alongside throughput, retry, shed, and error counts, as a
// JSON array in the same record shape the other BENCH_*.json files use;
// -proto both appends a ServiceProtocolComparison record with the
// req/s ratio.
//
// With -replicas a,b,c the same workload drives a fleet through the
// cluster client: tenants shard over the replicas by rendezvous hash
// (-replication ring copies each), and the records carry the fleet size
// — the harness behind scripts/bench_cluster.sh and BENCH_cluster.json.
//
// Example:
//
//	selestload -addr 127.0.0.1:8765 -wire-addr 127.0.0.1:8766 \
//	    -proto both -duration 10s -workers 32 -out BENCH_service.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"selest/client"
)

type options struct {
	addr        string
	wireAddr    string
	replicas    string
	replication int
	proto       string
	duration    time.Duration
	workers     int
	conns       int
	tenants     int
	attrs       int
	readFrac    float64
	batchFrac   float64
	batchSize   int
	ingestBatch int
	freshFrac   float64
	timeout     time.Duration
	retries     int
	retryBase   time.Duration
	retryMax    time.Duration
	seedValues  int
	out         string
	seed        int64
}

// result is one worker's tally; workers never share state while the
// clock runs.
type result struct {
	readNs   []int64
	ingestNs []int64
	failures int64
	shed     int64
	queued   int64
}

// runTotals is one protocol's merged outcome, kept for the comparison
// record.
type runTotals struct {
	proto   client.Protocol
	rps     float64
	records []map[string]any
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8765", "selestd HTTP address")
	flag.StringVar(&o.wireAddr, "wire-addr", "", "selestd wire-protocol address (required for -proto wire/both)")
	flag.StringVar(&o.replicas, "replicas", "", "comma-separated wire addresses of a replica fleet; traffic routes by tenant hash through the cluster client (implies -proto wire)")
	flag.IntVar(&o.replication, "replication", 1, "ring replicas per tenant when -replicas is set")
	flag.StringVar(&o.proto, "proto", "both", "transport to bench: json, wire, or both")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "measured load duration (per protocol)")
	flag.IntVar(&o.workers, "workers", 32, "concurrent client workers")
	flag.IntVar(&o.conns, "conns", 4, "wire-protocol connection-pool size")
	flag.IntVar(&o.tenants, "tenants", 4, "tenants to spread traffic over")
	flag.IntVar(&o.attrs, "attrs", 2, "attributes per tenant")
	flag.Float64Var(&o.readFrac, "read-frac", 0.8, "fraction of requests that are estimates")
	flag.Float64Var(&o.batchFrac, "batch-frac", 0.2, "fraction of reads sent as batch requests")
	flag.IntVar(&o.batchSize, "batch", 16, "queries per batch request")
	flag.IntVar(&o.ingestBatch, "ingest-batch", 64, "values per ingest request")
	flag.Float64Var(&o.freshFrac, "fresh-frac", 0.01, "fraction of estimates demanding a fresh fit")
	flag.DurationVar(&o.timeout, "timeout", time.Second, "per-request client timeout")
	flag.IntVar(&o.retries, "retries", 3, "max retries per request (full-jitter backoff, throttle hints honoured)")
	flag.DurationVar(&o.retryBase, "retry-base", 0, "retry backoff base delay (0 = client default 10ms); keep small against admission-capped servers so the closed loop paces on throttle hints")
	flag.DurationVar(&o.retryMax, "retry-max", 0, "retry backoff delay cap (0 = client default 2s)")
	flag.IntVar(&o.seedValues, "seed-values", 4096, "values ingested per attribute before the clock starts")
	flag.StringVar(&o.out, "out", "BENCH_service.json", "output file ('-' for stdout)")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.Parse()
	log.SetPrefix("selestload: ")
	log.SetFlags(0)

	var protos []client.Protocol
	if o.replicas != "" {
		// Cluster routing rides the wire protocol; a fleet bench measures
		// the routing layer, not the JSON-vs-wire comparison.
		o.proto = "wire"
	}
	switch o.proto {
	case "json":
		protos = []client.Protocol{client.ProtoJSON}
	case "wire":
		protos = []client.Protocol{client.ProtoWire}
	case "both":
		protos = []client.Protocol{client.ProtoJSON, client.ProtoWire}
	default:
		log.Fatalf("unknown -proto %q (valid: json, wire, both)", o.proto)
	}

	var records []map[string]any
	totals := make([]runTotals, 0, len(protos))
	for _, proto := range protos {
		rt, err := run(proto, &o)
		if err != nil {
			log.Fatalf("%s: %v", proto, err)
		}
		records = append(records, rt.records...)
		totals = append(totals, rt)
	}
	if len(totals) == 2 {
		cmp := map[string]any{
			"name":       "ServiceProtocolComparison",
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"host_cpus":  runtime.NumCPU(),
			"workers":    o.workers,
			"duration_s": o.duration.Seconds(),
		}
		for _, rt := range totals {
			cmp[string(rt.proto)+"_rps"] = rt.rps
		}
		if totals[0].rps > 0 {
			cmp["wire_vs_json"] = totals[1].rps / totals[0].rps
		}
		records = append(records, cmp)
	}

	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, r := range records {
		buf.WriteString("  ")
		b, err := json.Marshal(r)
		if err != nil {
			log.Fatal(err)
		}
		buf.Write(b)
		if i < len(records)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("]\n")
	if o.out == "-" {
		os.Stdout.Write(buf.Bytes())
	} else {
		if err := os.WriteFile(o.out, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("wrote %s", o.out)
}

// run measures one protocol: build a client, create and seed the
// attributes, drive the closed-loop workers for the duration, and render
// the records.
func run(proto client.Protocol, o *options) (runTotals, error) {
	copts := client.Options{
		Protocol:       proto,
		Conns:          o.conns,
		RequestTimeout: o.timeout,
		MaxRetries:     o.retries,
		RetryBaseDelay: o.retryBase,
		RetryMaxDelay:  o.retryMax,
	}
	if o.replicas != "" {
		copts.Addrs = strings.Split(o.replicas, ",")
		copts.Replication = o.replication
	} else if proto == client.ProtoWire {
		if o.wireAddr == "" {
			return runTotals{}, errors.New("-wire-addr is required for the wire protocol")
		}
		copts.Addr = o.wireAddr
	} else {
		copts.Addr = o.addr
	}
	c, err := client.New(copts)
	if err != nil {
		return runTotals{}, err
	}
	defer c.Close()

	if err := setup(c, o); err != nil {
		return runTotals{}, fmt.Errorf("setup: %w", err)
	}

	results := make([]result, o.workers)
	start := time.Now()
	deadline := start.Add(o.duration)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = worker(w, c, o, deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := merge(results)
	stats := c.Stats()
	rt := runTotals{proto: proto}
	rt.rps = float64(len(merged.readNs)+len(merged.ingestNs)) / elapsed.Seconds()
	rt.records = report(proto, o, merged, stats, elapsed)
	log.Printf("%s: %d reads, %d ingests, %.0f req/s, %d retries, %d failures, %d shed",
		proto, len(merged.readNs), len(merged.ingestNs), rt.rps, stats.Retries, merged.failures, merged.shed)
	return rt, nil
}

func tenantName(i int) string { return fmt.Sprintf("tenant-%02d", i) }
func attrName(i int) string   { return fmt.Sprintf("attr-%02d", i) }

// setup creates every attribute and pre-fills it so measured reads
// answer from real fits, not from cold uniform rungs. Attribute creation
// is idempotent, so back-to-back runs against one daemon share state.
func setup(c *client.Client, o *options) error {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(o.seed))
	cfg := client.AttrConfig{DomainLo: 0, DomainHi: 1, ReservoirSize: 2000, Seed: 7}
	for t := 0; t < o.tenants; t++ {
		for a := 0; a < o.attrs; a++ {
			tenant, attr := tenantName(t), attrName(a)
			if err := c.CreateAttr(ctx, tenant, attr, cfg, client.WithMaxRetries(5)); err != nil {
				return fmt.Errorf("create %s/%s: %w", tenant, attr, err)
			}
			for sent := 0; sent < o.seedValues; sent += 512 {
				n := o.seedValues - sent
				if n > 512 {
					n = 512
				}
				values := make([]float64, n)
				for i := range values {
					values[i] = rng.Float64()
				}
				if _, err := c.Ingest(ctx, tenant, attr, values, client.WithMaxRetries(5)); err != nil {
					return fmt.Errorf("seed ingest: %w", err)
				}
			}
			if _, err := c.Estimate(ctx, tenant, attr, 0, 1,
				client.WithFresh(), client.WithMaxRetries(5), client.WithTimeout(10*time.Second)); err != nil {
				return fmt.Errorf("priming fit: %w", err)
			}
		}
	}
	return nil
}

// worker is one closed-loop client: it fires requests back to back until
// the deadline, classifying each as read or ingest and recording the
// latency of every successful call (the client's bounded retries run
// inside it).
func worker(id int, c *client.Client, o *options, deadline time.Time) result {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(o.seed + int64(id)*7919))
	var res result
	ingestValues := make([]float64, o.ingestBatch)
	queries := make([]client.Range, o.batchSize)
	for time.Now().Before(deadline) {
		tenant := tenantName(rng.Intn(o.tenants))
		attr := attrName(rng.Intn(o.attrs))
		isRead := rng.Float64() < o.readFrac
		start := time.Now()
		var err error
		var ir client.IngestResult
		switch {
		case isRead && rng.Float64() < o.batchFrac:
			for i := range queries {
				lo := rng.Float64()
				queries[i] = client.Range{Lo: lo, Hi: lo + rng.Float64()*(1-lo)}
			}
			_, err = c.EstimateBatch(ctx, tenant, attr, queries)
		case isRead:
			lo := rng.Float64()
			hi := lo + rng.Float64()*(1-lo)
			if rng.Float64() < o.freshFrac {
				_, err = c.Estimate(ctx, tenant, attr, lo, hi, client.WithFresh())
			} else {
				_, err = c.Estimate(ctx, tenant, attr, lo, hi)
			}
		default:
			for i := range ingestValues {
				ingestValues[i] = rng.Float64()
			}
			ir, err = c.Ingest(ctx, tenant, attr, ingestValues)
		}
		if err != nil {
			res.failures++
			continue
		}
		ns := time.Since(start).Nanoseconds()
		if isRead {
			res.readNs = append(res.readNs, ns)
		} else {
			res.ingestNs = append(res.ingestNs, ns)
			res.shed += int64(ir.Shed)
			res.queued += int64(ir.Queued)
		}
	}
	return res
}

func merge(results []result) result {
	var out result
	for _, r := range results {
		out.readNs = append(out.readNs, r.readNs...)
		out.ingestNs = append(out.ingestNs, r.ingestNs...)
		out.failures += r.failures
		out.shed += r.shed
		out.queued += r.queued
	}
	return out
}

func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// replicaCount is the fleet size driven: 1 without -replicas.
func (o *options) replicaCount() int {
	if o.replicas == "" {
		return 1
	}
	return len(strings.Split(o.replicas, ","))
}

// report renders the merged tallies in the BENCH_*.json record shape,
// tagged with the protocol they were measured over.
func report(proto client.Protocol, o *options, m result, stats client.Stats, elapsed time.Duration) []map[string]any {
	mk := func(name string, ns []int64) map[string]any {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		var sum int64
		for _, v := range ns {
			sum += v
		}
		rec := map[string]any{
			"name":        name,
			"proto":       string(proto),
			"gomaxprocs":  runtime.GOMAXPROCS(0),
			"host_cpus":   runtime.NumCPU(),
			"runs":        len(ns),
			"workers":     o.workers,
			"replicas":    o.replicaCount(),
			"replication": o.replication,
		}
		if len(ns) > 0 {
			rec["ns_per_op"] = sum / int64(len(ns))
			rec["p50_ns"] = quantile(ns, 0.50)
			rec["p99_ns"] = quantile(ns, 0.99)
			rec["p999_ns"] = quantile(ns, 0.999)
		}
		return rec
	}
	total := len(m.readNs) + len(m.ingestNs)
	totals := map[string]any{
		"name":        "ServiceMixedTotals",
		"proto":       string(proto),
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"host_cpus":   runtime.NumCPU(),
		"runs":        total,
		"workers":     o.workers,
		"replicas":    o.replicaCount(),
		"replication": o.replication,
		"duration_s":  elapsed.Seconds(),
		"rps":         float64(total) / elapsed.Seconds(),
		"read_frac":   o.readFrac,
		"retries":     stats.Retries,
		"failovers":   stats.Failovers,
		"failures":    m.failures,
		"queued":      m.queued,
		"shed":        m.shed,
	}
	return []map[string]any{
		mk("ServiceMixedRead", m.readNs),
		mk("ServiceMixedIngest", m.ingestNs),
		totals,
	}
}
