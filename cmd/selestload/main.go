// Command selestload drives mixed read/ingest traffic at a running
// selestd and reports exact latency percentiles — the committed evidence
// behind BENCH_service.json.
//
// Each worker loops over a -read-frac coin: reads are single estimates
// (a -batch-frac slice of them batched to amortise transport), writes are
// -ingest-batch values of uniform noise. The client is a production
// citizen: every request carries a -timeout budget, and failures retry up
// to -retries times with exponential backoff plus full jitter, honouring
// the server's Retry-After on a 429 and announcing the retry via the
// X-Selest-Retry header so the daemon's retried counter sees it.
//
// Latencies are recorded per successful attempt (retries burn their own
// clock), merged across workers, and reported as p50/p99/p999 alongside
// throughput, retry, shed, and error counts, as a JSON array in the same
// record shape the other BENCH_*.json files use.
//
// Example:
//
//	selestload -addr 127.0.0.1:8765 -duration 10s -workers 32 -out BENCH_service.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

type options struct {
	addr        string
	duration    time.Duration
	workers     int
	tenants     int
	attrs       int
	readFrac    float64
	batchFrac   float64
	batchSize   int
	ingestBatch int
	freshFrac   float64
	timeout     time.Duration
	retries     int
	seedValues  int
	out         string
	seed        int64
}

// result is one worker's tally; workers never share state while the
// clock runs.
type result struct {
	readNs   []int64
	ingestNs []int64
	retries  int64
	failures int64
	shed     int64
	queued   int64
	statuses map[int]int64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8765", "selestd address")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "measured load duration")
	flag.IntVar(&o.workers, "workers", 32, "concurrent client workers")
	flag.IntVar(&o.tenants, "tenants", 4, "tenants to spread traffic over")
	flag.IntVar(&o.attrs, "attrs", 2, "attributes per tenant")
	flag.Float64Var(&o.readFrac, "read-frac", 0.8, "fraction of requests that are estimates")
	flag.Float64Var(&o.batchFrac, "batch-frac", 0.2, "fraction of reads sent as batch requests")
	flag.IntVar(&o.batchSize, "batch", 16, "queries per batch request")
	flag.IntVar(&o.ingestBatch, "ingest-batch", 64, "values per ingest request")
	flag.Float64Var(&o.freshFrac, "fresh-frac", 0.01, "fraction of estimates demanding a fresh fit")
	flag.DurationVar(&o.timeout, "timeout", time.Second, "per-request client timeout")
	flag.IntVar(&o.retries, "retries", 3, "max retries per request (exponential backoff with jitter)")
	flag.IntVar(&o.seedValues, "seed-values", 4096, "values ingested per attribute before the clock starts")
	flag.StringVar(&o.out, "out", "BENCH_service.json", "output file ('-' for stdout)")
	flag.Int64Var(&o.seed, "seed", 1, "workload RNG seed")
	flag.Parse()
	log.SetPrefix("selestload: ")
	log.SetFlags(0)

	base := "http://" + o.addr
	client := &http.Client{Timeout: o.timeout}

	if err := setup(client, base, &o); err != nil {
		log.Fatalf("setup: %v", err)
	}

	results := make([]result, o.workers)
	deadline := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = worker(w, client, base, &o, deadline)
		}(w)
	}
	wg.Wait()

	merged := merge(results)
	records := report(&o, merged)
	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, r := range records {
		buf.WriteString("  ")
		b, err := json.Marshal(r)
		if err != nil {
			log.Fatal(err)
		}
		buf.Write(b)
		if i < len(records)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("]\n")
	if o.out == "-" {
		os.Stdout.Write(buf.Bytes())
	} else {
		if err := os.WriteFile(o.out, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("done: %d reads, %d ingests, %d retries, %d failures, %d shed → %s",
		len(merged.readNs), len(merged.ingestNs), merged.retries, merged.failures, merged.shed, o.out)
}

func tenantName(i int) string { return fmt.Sprintf("tenant-%02d", i) }
func attrName(i int) string   { return fmt.Sprintf("attr-%02d", i) }

// setup creates every attribute and pre-fills it so measured reads
// answer from real fits, not from cold uniform rungs.
func setup(client *http.Client, base string, o *options) error {
	rng := rand.New(rand.NewSource(o.seed))
	for t := 0; t < o.tenants; t++ {
		for a := 0; a < o.attrs; a++ {
			create := map[string]any{
				"tenant": tenantName(t),
				"attr":   attrName(a),
				"config": map[string]any{
					"domain_lo": 0.0, "domain_hi": 1.0,
					"reservoir_size": 2000, "seed": 7,
				},
			}
			if err := postOK(client, base+"/v1/attrs", create); err != nil {
				return fmt.Errorf("create %s/%s: %w", tenantName(t), attrName(a), err)
			}
			for sent := 0; sent < o.seedValues; sent += 512 {
				n := o.seedValues - sent
				if n > 512 {
					n = 512
				}
				values := make([]float64, n)
				for i := range values {
					values[i] = rng.Float64()
				}
				if err := postOK(client, base+"/v1/ingest", map[string]any{
					"tenant": tenantName(t), "attr": attrName(a), "values": values,
				}); err != nil {
					return fmt.Errorf("seed ingest: %w", err)
				}
			}
			if err := postOK(client, base+"/v1/estimate", map[string]any{
				"tenant": tenantName(t), "attr": attrName(a),
				"lo": 0.0, "hi": 1.0, "fresh": true,
			}); err != nil {
				return fmt.Errorf("priming fit: %w", err)
			}
		}
	}
	return nil
}

func postOK(client *http.Client, url string, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			if attempt >= 5 {
				return fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
		} else if attempt >= 5 {
			return err
		}
		time.Sleep(time.Duration(50*(attempt+1)) * time.Millisecond)
	}
}

// worker is one closed-loop client: it fires requests back to back until
// the deadline, classifying each as read or ingest and recording the
// latency of every successful attempt.
func worker(id int, client *http.Client, base string, o *options, deadline time.Time) result {
	rng := rand.New(rand.NewSource(o.seed + int64(id)*7919))
	res := result{statuses: make(map[int]int64)}
	ingestValues := make([]float64, o.ingestBatch)
	for time.Now().Before(deadline) {
		tenant := tenantName(rng.Intn(o.tenants))
		attr := attrName(rng.Intn(o.attrs))
		var url string
		var payload any
		isRead := rng.Float64() < o.readFrac
		switch {
		case isRead && rng.Float64() < o.batchFrac:
			queries := make([]map[string]float64, o.batchSize)
			for i := range queries {
				lo := rng.Float64()
				queries[i] = map[string]float64{"lo": lo, "hi": lo + rng.Float64()*(1-lo)}
			}
			url = base + "/v1/estimate/batch"
			payload = map[string]any{"tenant": tenant, "attr": attr, "queries": queries}
		case isRead:
			lo := rng.Float64()
			url = base + "/v1/estimate"
			payload = map[string]any{
				"tenant": tenant, "attr": attr,
				"lo": lo, "hi": lo + rng.Float64()*(1-lo),
				"fresh": rng.Float64() < o.freshFrac,
			}
		default:
			for i := range ingestValues {
				ingestValues[i] = rng.Float64()
			}
			url = base + "/v1/ingest"
			payload = map[string]any{"tenant": tenant, "attr": attr, "values": ingestValues}
		}
		ns, ir, ok := request(client, rng, url, payload, o, &res)
		if !ok {
			res.failures++
			continue
		}
		if isRead {
			res.readNs = append(res.readNs, ns)
		} else {
			res.ingestNs = append(res.ingestNs, ns)
			res.shed += int64(ir.Shed)
			res.queued += int64(ir.Queued)
		}
	}
	return res
}

type ingestReply struct {
	Queued int `json:"queued"`
	Shed   int `json:"shed"`
}

// request sends one payload with the client-side robustness loop:
// per-attempt timeout (the http.Client's), Retry-After-honouring 429
// handling, and exponential backoff with full jitter on transport errors
// and 5xx. The latency recorded is the successful attempt's alone.
func request(client *http.Client, rng *rand.Rand, url string, payload any, o *options, res *result) (int64, ingestReply, bool) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, ingestReply{}, false
	}
	for attempt := 0; attempt <= o.retries; attempt++ {
		req, err := http.NewRequest("POST", url, bytes.NewReader(body))
		if err != nil {
			return 0, ingestReply{}, false
		}
		req.Header.Set("Content-Type", "application/json")
		if attempt > 0 {
			req.Header.Set("X-Selest-Retry", strconv.Itoa(attempt))
			res.retries++
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			// Transport error or client timeout: back off and retry.
			sleepBackoff(rng, attempt)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		res.statuses[resp.StatusCode]++
		switch {
		case resp.StatusCode == http.StatusOK:
			var ir ingestReply
			_ = json.Unmarshal(b, &ir)
			return time.Since(start).Nanoseconds(), ir, true
		case resp.StatusCode == http.StatusTooManyRequests:
			// The server says exactly when the budget refills; honour it
			// (bounded), jittered so a herd of workers does not re-arrive
			// in step.
			wait := time.Duration(500+rng.Intn(500)) * time.Millisecond
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				w := time.Duration(secs) * time.Second
				if w < wait {
					wait = w
				}
			}
			time.Sleep(wait)
		case resp.StatusCode >= 500:
			sleepBackoff(rng, attempt)
		default:
			// 4xx other than 429 is a caller bug: retrying cannot help.
			return 0, ingestReply{}, false
		}
	}
	return 0, ingestReply{}, false
}

// sleepBackoff is exponential backoff with full jitter: U(0, 10ms·2^n).
func sleepBackoff(rng *rand.Rand, attempt int) {
	ceil := 10 * time.Millisecond << uint(attempt)
	if ceil > 2*time.Second {
		ceil = 2 * time.Second
	}
	time.Sleep(time.Duration(rng.Int63n(int64(ceil))))
}

func merge(results []result) result {
	out := result{statuses: make(map[int]int64)}
	for _, r := range results {
		out.readNs = append(out.readNs, r.readNs...)
		out.ingestNs = append(out.ingestNs, r.ingestNs...)
		out.retries += r.retries
		out.failures += r.failures
		out.shed += r.shed
		out.queued += r.queued
		for k, v := range r.statuses {
			out.statuses[k] += v
		}
	}
	return out
}

func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// report renders the merged tallies in the BENCH_*.json record shape.
func report(o *options, m result) []map[string]any {
	mk := func(name string, ns []int64) map[string]any {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		var sum int64
		for _, v := range ns {
			sum += v
		}
		rec := map[string]any{
			"name":       name,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"runs":       len(ns),
			"workers":    o.workers,
		}
		if len(ns) > 0 {
			rec["ns_per_op"] = sum / int64(len(ns))
			rec["p50_ns"] = quantile(ns, 0.50)
			rec["p99_ns"] = quantile(ns, 0.99)
			rec["p999_ns"] = quantile(ns, 0.999)
		}
		return rec
	}
	total := len(m.readNs) + len(m.ingestNs)
	totals := map[string]any{
		"name":       "ServiceMixedTotals",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"runs":       total,
		"workers":    o.workers,
		"duration_s": o.duration.Seconds(),
		"rps":        float64(total) / o.duration.Seconds(),
		"read_frac":  o.readFrac,
		"retries":    m.retries,
		"failures":   m.failures,
		"queued":     m.queued,
		"shed":       m.shed,
	}
	return []map[string]any{
		mk("ServiceMixedRead", m.readNs),
		mk("ServiceMixedIngest", m.ingestNs),
		totals,
	}
}
