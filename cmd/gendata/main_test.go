package main

import "testing"

func TestFlattenName(t *testing.T) {
	cases := map[string]string{
		"u(15)":   "u_15",
		"rr1(22)": "rr1_22",
		"iw":      "iw",
		"arap1":   "arap1",
	}
	for in, want := range cases {
		if got := flattenName(in); got != want {
			t.Errorf("flattenName(%q) = %q, want %q", in, got, want)
		}
	}
}
