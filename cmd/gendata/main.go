// Command gendata regenerates the evaluation's data files (paper Table 2)
// and, optionally, the size-separated query workloads with ground truth,
// writing both to disk in the selest binary formats and printing the
// inventory as it goes.
//
// Usage:
//
//	gendata [-out DIR] [-seed S] [-only name1,name2] [-queries N]
//
// With -queries N, four workload files (1%, 2%, 5%, 10% — the paper's
// sizes) are written next to each data file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"selest/internal/dataset"
	"selest/internal/query"
	"selest/internal/xrand"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		seed    = flag.Uint64("seed", dataset.DefaultSeed, "RNG seed")
		only    = flag.String("only", "", "comma-separated file names to generate (default: all)")
		queries = flag.Int("queries", 0, "also write query workloads with this many queries per size (0 = none)")
	)
	flag.Parse()

	names := dataset.Names()
	if *only != "" {
		names = nil
		for _, n := range strings.Split(*only, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	for _, name := range names {
		f, err := dataset.ByName(name, *seed)
		if err != nil {
			fail(err)
		}
		base := flattenName(name)
		path := filepath.Join(*out, base+".seld")
		if err := f.SaveFile(path); err != nil {
			fail(err)
		}
		fmt.Printf("%s  ->  %s\n", f, path)

		if *queries > 0 {
			lo, hi := f.Domain()
			for _, size := range query.StandardSizes {
				rng := xrand.New(*seed ^ uint64(size*1e6))
				w, err := query.GenerateAligned(f.Records, lo, hi, size, *queries, rng, true)
				if err != nil {
					fail(fmt.Errorf("%s size %v: %w", name, size, err))
				}
				qpath := filepath.Join(*out, fmt.Sprintf("%s_q%02.0f.selq", base, size*100))
				if err := w.SaveFile(qpath); err != nil {
					fail(err)
				}
				fmt.Printf("  %4d queries of %2.0f%%  ->  %s\n", len(w.Queries), size*100, qpath)
			}
		}
	}
}

// flattenName maps paper file names like "rr1(22)" onto filesystem-safe
// base names like "rr1_22".
func flattenName(name string) string {
	return strings.NewReplacer("(", "_", ")", "").Replace(name)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
	os.Exit(1)
}
