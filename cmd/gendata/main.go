// Command gendata regenerates the evaluation's data files (paper Table 2)
// and, optionally, the size-separated query workloads with ground truth,
// writing both to disk in the selest binary formats and printing the
// inventory as it goes.
//
// Usage:
//
//	gendata [-out DIR] [-seed S] [-only name1,name2] [-queries N]
//
// With -queries N, four workload files (1%, 2%, 5%, 10% — the paper's
// sizes) are written next to each data file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"selest"
	"selest/internal/dataset"
	"selest/internal/query"
	"selest/internal/sample"
	"selest/internal/xrand"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		seed    = flag.Uint64("seed", dataset.DefaultSeed, "RNG seed")
		only    = flag.String("only", "", "comma-separated file names to generate (default: all)")
		queries = flag.Int("queries", 0, "also write query workloads with this many queries per size (0 = none)")
		verify  = flag.String("verify", "", "after generating each file, smoke-check it by fitting this estimation method to a sample")
	)
	flag.Parse()

	var verifyMethod selest.Method
	if *verify != "" {
		m, err := selest.ParseMethod(*verify)
		if err != nil {
			fail(err)
		}
		verifyMethod = m
	}

	names := dataset.Names()
	if *only != "" {
		names = nil
		for _, n := range strings.Split(*only, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	for _, name := range names {
		f, err := dataset.ByName(name, *seed)
		if err != nil {
			fail(err)
		}
		base := flattenName(name)
		path := filepath.Join(*out, base+".seld")
		if err := f.SaveFile(path); err != nil {
			fail(err)
		}
		fmt.Printf("%s  ->  %s\n", f, path)

		if verifyMethod != "" {
			if err := verifyFile(f, verifyMethod, *seed); err != nil {
				fail(fmt.Errorf("verify %s: %w", name, err))
			}
			fmt.Printf("  verified: %s fits and answers\n", verifyMethod)
		}

		if *queries > 0 {
			lo, hi := f.Domain()
			for _, size := range query.StandardSizes {
				rng := xrand.New(*seed ^ uint64(size*1e6))
				w, err := query.GenerateAligned(f.Records, lo, hi, size, *queries, rng, true)
				if err != nil {
					fail(fmt.Errorf("%s size %v: %w", name, size, err))
				}
				qpath := filepath.Join(*out, fmt.Sprintf("%s_q%02.0f.selq", base, size*100))
				if err := w.SaveFile(qpath); err != nil {
					fail(err)
				}
				fmt.Printf("  %4d queries of %2.0f%%  ->  %s\n", len(w.Queries), size*100, qpath)
			}
		}
	}
}

// flattenName maps paper file names like "rr1(22)" onto filesystem-safe
// base names like "rr1_22".
func flattenName(name string) string {
	return strings.NewReplacer("(", "_", ")", "").Replace(name)
}

// verifyFile smoke-checks a freshly generated file: draw the paper's
// sample size, fit the requested method over the file's domain, and
// require a finite full-domain selectivity near 1. It catches a broken
// generator (or a method that cannot fit its output) at generation time
// rather than deep inside an experiment run.
func verifyFile(f *dataset.File, method selest.Method, seed uint64) error {
	n := 2000
	if n > len(f.Records) {
		n = len(f.Records)
	}
	smp, err := sample.WithoutReplacement(xrand.New(seed), f.Records, n)
	if err != nil {
		return err
	}
	lo, hi := f.Domain()
	est, err := selest.Build(smp, selest.Options{Method: method, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return err
	}
	if s := est.Selectivity(lo, hi); s < 0.5 || s > 1 {
		return fmt.Errorf("full-domain selectivity %v, want ~1", s)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
	os.Exit(1)
}
