package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selest"
	"selest/internal/dataset"
	"selest/internal/xrand"
)

func TestParseQueries(t *testing.T) {
	qs, err := parseQueries([]string{"1:2", "-5:10", "3.5:3.5"})
	if err != nil {
		t.Fatal(err)
	}
	want := []rangeQuery{{1, 2}, {-5, 10}, {3.5, 3.5}}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("query %d = %+v, want %+v", i, qs[i], want[i])
		}
	}
}

func TestParseQueriesErrors(t *testing.T) {
	for _, bad := range []string{"12", "a:b", "1:", ":2", "5:1"} {
		if _, err := parseQueries([]string{bad}); err == nil {
			t.Fatalf("query %q should fail", bad)
		}
	}
}

func TestReadValuesText(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vals.txt")
	content := "1.5\n\n# comment line\n2\n  3.25  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readValues(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3.25}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadValuesBadLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("1\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readValues(path); err == nil {
		t.Fatal("bad line should fail")
	}
}

func TestReadValuesMissingFile(t *testing.T) {
	if _, err := readValues(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestReadValuesSeld(t *testing.T) {
	f := dataset.UniformFile(10, 100, 1)
	path := filepath.Join(t.TempDir(), "u.seld")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := readValues(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("loaded %d values", len(got))
	}
}

func TestExactCount(t *testing.T) {
	values := []float64{1, 2, 2, 3, 10}
	if got := exactCount(values, 2, 3); got != 3 {
		t.Fatalf("exactCount = %d, want 3", got)
	}
	if got := exactCount(values, 4, 9); got != 0 {
		t.Fatalf("exactCount = %d, want 0", got)
	}
}

func TestMethodList(t *testing.T) {
	s := methodList()
	if s == "" || len(s) < 20 {
		t.Fatalf("methodList = %q", s)
	}
}

func TestReadValuesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vals.csv")
	if err := os.WriteFile(path, []byte("amount\n1.5\n2.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readValuesOpts(path, "amount", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestBuildEstimatorStrictVsRobust(t *testing.T) {
	smp := make([]float64, 200)
	for i := range smp {
		smp[i] = float64(i)
	}
	opts := selest.Options{Method: selest.Kernel, Boundary: selest.BoundaryKernels, DomainLo: 0, DomainHi: 199}
	for _, robustMode := range []bool{false, true} {
		est, err := buildEstimator(smp, opts, robustMode)
		if err != nil {
			t.Fatalf("robust=%v: %v", robustMode, err)
		}
		if s := est.Selectivity(0, 100); s <= 0 || s > 1 {
			t.Fatalf("robust=%v: Selectivity = %v", robustMode, s)
		}
	}
}

// TestBuildEstimatorAllEqualData is the regression for the CLI's former
// hard failure on degenerate data: all-equal values must build a serving
// point-mass estimator through the robust ladder.
func TestBuildEstimatorAllEqualData(t *testing.T) {
	smp := []float64{42, 42, 42, 42, 42}
	opts := selest.Options{Method: selest.Kernel, DomainLo: 42, DomainHi: 42}
	if _, err := buildEstimator(smp, opts, false); err == nil {
		t.Fatal("strict build should fail on an empty domain")
	}
	est, err := buildEstimator(smp, opts, true)
	if err != nil {
		t.Fatalf("robust build on all-equal data: %v", err)
	}
	if s := est.Selectivity(40, 45); s != 1 {
		t.Fatalf("covering query = %v, want 1", s)
	}
	if s := est.Selectivity(43, 45); s != 0 {
		t.Fatalf("disjoint query = %v, want 0", s)
	}
}

// TestRunOnline streams a uniform column through the serving engine and
// checks the served estimate against the exact selectivity, the header
// stats, and that cadence refits actually happened before the flush.
func TestRunOnline(t *testing.T) {
	r := xrand.New(5)
	values := make([]float64, 5000)
	for i := range values {
		values[i] = r.Float64() * 1000
	}
	opts := selest.Options{Method: selest.Kernel, Boundary: selest.BoundaryKernels, DomainLo: 0, DomainHi: 1000}
	var out strings.Builder
	err := runOnline(&out, values, []rangeQuery{{100, 300}}, opts, 500, 1000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "online: 5000 records streamed") {
		t.Fatalf("missing stream header:\n%s", text)
	}
	if strings.Contains(text, "no fit published") {
		t.Fatalf("flush should have published a fit:\n%s", text)
	}
	// 5000 inserts at RefitEvery=1000 after the 500-record fill refit,
	// plus the final flush: several generations, never zero.
	var sel float64
	if _, err := fmt.Sscanf(text[strings.Index(text, "σ̂ = "):], "σ̂ = %f", &sel); err != nil {
		t.Fatalf("no estimate in output:\n%s", text)
	}
	if sel < 0.1 || sel > 0.3 {
		t.Fatalf("served selectivity %v implausible for uniform data on [100,300]", sel)
	}
}

// TestRunOnlineNoFit pins the SelectivityOK path: an estimator that never
// fits must say "no fit published", not serve a silent zero — runOnline
// surfaces the flush error instead.
func TestRunOnlineNoFit(t *testing.T) {
	opts := selest.Options{Method: selest.Kernel, DomainLo: 0, DomainHi: 1}
	var out strings.Builder
	err := runOnline(&out, nil, []rangeQuery{{0, 1}}, opts, 100, 0, 1, 1)
	if err == nil {
		t.Fatal("empty stream should fail the final flush")
	}
}
