package main

import (
	"os"
	"path/filepath"
	"testing"

	"selest"
	"selest/internal/dataset"
)

func TestParseQueries(t *testing.T) {
	qs, err := parseQueries([]string{"1:2", "-5:10", "3.5:3.5"})
	if err != nil {
		t.Fatal(err)
	}
	want := []rangeQuery{{1, 2}, {-5, 10}, {3.5, 3.5}}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("query %d = %+v, want %+v", i, qs[i], want[i])
		}
	}
}

func TestParseQueriesErrors(t *testing.T) {
	for _, bad := range []string{"12", "a:b", "1:", ":2", "5:1"} {
		if _, err := parseQueries([]string{bad}); err == nil {
			t.Fatalf("query %q should fail", bad)
		}
	}
}

func TestReadValuesText(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vals.txt")
	content := "1.5\n\n# comment line\n2\n  3.25  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readValues(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3.25}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadValuesBadLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("1\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readValues(path); err == nil {
		t.Fatal("bad line should fail")
	}
}

func TestReadValuesMissingFile(t *testing.T) {
	if _, err := readValues(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestReadValuesSeld(t *testing.T) {
	f := dataset.UniformFile(10, 100, 1)
	path := filepath.Join(t.TempDir(), "u.seld")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := readValues(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("loaded %d values", len(got))
	}
}

func TestExactCount(t *testing.T) {
	values := []float64{1, 2, 2, 3, 10}
	if got := exactCount(values, 2, 3); got != 3 {
		t.Fatalf("exactCount = %d, want 3", got)
	}
	if got := exactCount(values, 4, 9); got != 0 {
		t.Fatalf("exactCount = %d, want 0", got)
	}
}

func TestMethodList(t *testing.T) {
	s := methodList()
	if s == "" || len(s) < 20 {
		t.Fatalf("methodList = %q", s)
	}
}

func TestReadValuesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vals.csv")
	if err := os.WriteFile(path, []byte("amount\n1.5\n2.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readValuesOpts(path, "amount", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestBuildEstimatorStrictVsRobust(t *testing.T) {
	smp := make([]float64, 200)
	for i := range smp {
		smp[i] = float64(i)
	}
	opts := selest.Options{Method: selest.Kernel, Boundary: selest.BoundaryKernels, DomainLo: 0, DomainHi: 199}
	for _, robustMode := range []bool{false, true} {
		est, err := buildEstimator(smp, opts, robustMode)
		if err != nil {
			t.Fatalf("robust=%v: %v", robustMode, err)
		}
		if s := est.Selectivity(0, 100); s <= 0 || s > 1 {
			t.Fatalf("robust=%v: Selectivity = %v", robustMode, s)
		}
	}
}

// TestBuildEstimatorAllEqualData is the regression for the CLI's former
// hard failure on degenerate data: all-equal values must build a serving
// point-mass estimator through the robust ladder.
func TestBuildEstimatorAllEqualData(t *testing.T) {
	smp := []float64{42, 42, 42, 42, 42}
	opts := selest.Options{Method: selest.Kernel, DomainLo: 42, DomainHi: 42}
	if _, err := buildEstimator(smp, opts, false); err == nil {
		t.Fatal("strict build should fail on an empty domain")
	}
	est, err := buildEstimator(smp, opts, true)
	if err != nil {
		t.Fatalf("robust build on all-equal data: %v", err)
	}
	if s := est.Selectivity(40, 45); s != 1 {
		t.Fatalf("covering query = %v, want 1", s)
	}
	if s := est.Selectivity(43, 45); s != 0 {
		t.Fatalf("disjoint query = %v, want 0", s)
	}
}
