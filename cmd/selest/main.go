// Command selest builds a selectivity estimator over a column of numbers
// and answers range queries with it — the library's public API on the
// command line.
//
// Input is a text file with one numeric attribute value per line (use "-"
// for stdin), a CSV file (-column selects the field, -header skips the
// first row), or a binary .seld file produced by gendata. Queries are
// given as "a:b" pairs on the command line; with -compare the estimate of
// every method is printed next to the exact answer. -robust builds
// through the graceful-degradation ladder (sanitized input, fallback
// methods on fit failure, guarded estimates); degenerate all-equal data
// always takes that path, serving a point-mass estimator with a warning
// instead of exiting. -online streams the data through the serving
// engine instead — sharded reservoir ingest, refits on the -refit-every
// cadence, one final flush — and answers queries from the last published
// snapshot, reporting "no fit published" rather than a silent zero when
// no snapshot exists.
//
// Examples:
//
//	selest -data values.txt -method kernel -boundary kernels 100:200 5:30
//	selest -data data/n_20.seld -samples 2000 -compare 400000:500000
//	selest -data data/n_20.seld -online -refit-every 100000 400000:500000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"selest"
	"selest/internal/dataset"
	"selest/internal/errmetrics"
	"selest/internal/query"
	"selest/internal/sample"
	"selest/internal/stats"
	"selest/internal/xrand"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "input: text file of numbers, .seld file, or '-' for stdin")
		method      = flag.String("method", "kernel", "estimation method: "+methodList())
		bins        = flag.Int("bins", 0, "histogram bins (0 = normal scale rule)")
		bandwidth   = flag.Float64("bandwidth", 0, "kernel bandwidth (0 = rule)")
		rule        = flag.String("rule", "normal-scale", "smoothing rule: normal-scale | dpi | lscv | beta-closed-form | exact-mise")
		boundary    = flag.String("boundary", "kernels", "kernel boundary treatment: none | reflect | kernels")
		samples     = flag.Int("samples", 2000, "sample-set size drawn from the data")
		seed        = flag.Uint64("seed", 1, "sampling seed")
		compare     = flag.Bool("compare", false, "print every method's estimate next to the exact answer")
		robust      = flag.Bool("robust", false, "build through the graceful-degradation ladder: sanitize input, fall back to simpler methods on fit failure, guard every estimate")
		onlineMode  = flag.Bool("online", false, "stream the data through the online serving engine (reservoir ingest + refits) instead of a one-shot fit")
		refitEvery  = flag.Int("refit-every", 0, "online mode: refit after this many inserts (0 = fill once, flush at end of stream)")
		shards      = flag.Int("shards", 1, "online mode: reservoir ingest shards")
		column      = flag.String("column", "", "CSV input: column name or 0-based index (default: first field)")
		header      = flag.Bool("header", false, "CSV input: first row is a header")
		evaluate    = flag.String("evaluate", "", "evaluate against a .selq workload file instead of answering ad-hoc queries")
		metrics     = flag.Bool("metrics", false, "dump telemetry (Prometheus text format) to stderr before exiting")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/vars on this address (e.g. :9090) while running")
	)
	flag.Parse()

	if *dataPath == "" || (flag.NArg() == 0 && *evaluate == "") {
		fmt.Fprintln(os.Stderr, "usage: selest -data FILE [flags] a:b [a:b ...]")
		fmt.Fprintln(os.Stderr, "       selest -data FILE [flags] -evaluate workload.selq")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *metricsAddr != "" {
		ln, err := selest.StartMetricsServer(*metricsAddr)
		if err != nil {
			fail(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "selest: metrics on http://%s/metrics\n", ln.Addr())
	}
	if *metrics {
		defer func() {
			if err := selest.WriteMetricsText(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "selest: metrics dump: %v\n", err)
			}
		}()
	}

	values, err := readValuesOpts(*dataPath, *column, *header)
	if err != nil {
		fail(err)
	}
	if len(values) == 0 {
		fail(fmt.Errorf("no values in %s", *dataPath))
	}
	queries, err := parseQueries(flag.Args())
	if err != nil {
		fail(err)
	}

	lo, hi := stats.Min(values), stats.Max(values)
	robustMode := *robust
	if lo == hi {
		// All values equal: no interval structure for a strict fit. The
		// robust ladder's point-mass estimator still answers correctly.
		fmt.Fprintf(os.Stderr, "selest: warning: degenerate data: all values equal %v; serving a point-mass estimator\n", lo)
		robustMode = true
	}
	n := *samples
	if n > len(values) {
		n = len(values)
	}
	smp, err := sample.WithoutReplacement(xrand.New(*seed), values, n)
	if err != nil {
		fail(err)
	}

	m, err := selest.ParseMethod(*method)
	if err != nil {
		fail(err)
	}
	r, err := selest.ParseBandwidthRule(*rule)
	if err != nil {
		fail(err)
	}
	bmode, err := selest.ParseBoundaryMode(*boundary)
	if err != nil {
		fail(err)
	}

	opts := selest.Options{
		Method:    m,
		DomainLo:  lo,
		DomainHi:  hi,
		Bins:      *bins,
		Bandwidth: *bandwidth,
		Rule:      r,
		Boundary:  bmode,
	}

	methods := []selest.Method{opts.Method}
	if *compare {
		methods = selest.Methods()
	}

	if *onlineMode {
		if *evaluate != "" || *compare {
			fail(fmt.Errorf("-online answers ad-hoc queries with one method; drop -evaluate/-compare"))
		}
		if err := runOnline(os.Stdout, values, queries, opts, *samples, *refitEvery, *shards, *seed); err != nil {
			fail(err)
		}
		return
	}

	if *evaluate != "" {
		if err := evaluateWorkload(*evaluate, smp, opts, methods, len(values), robustMode); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("data: %d records, domain [%g, %g], sample %d\n\n", len(values), lo, hi, n)
	for _, q := range queries {
		exact := exactCount(values, q.a, q.b)
		fmt.Printf("Q(%g, %g): exact %d records (selectivity %.6f)\n", q.a, q.b, exact, float64(exact)/float64(len(values)))
		for _, m := range methods {
			o := opts
			o.Method = m
			est, err := buildEstimator(smp, o, robustMode)
			if err != nil {
				fmt.Printf("  %-12s error: %v\n", m, err)
				continue
			}
			sel := est.Selectivity(q.a, q.b)
			fmt.Printf("  %-12s σ̂ = %.6f  ≈ %.0f records\n", m, sel, sel*float64(len(values)))
		}
		fmt.Println()
	}
}

// runOnline streams the data through the serving engine — sharded
// reservoir ingest, refits on the -refit-every cadence, one final Flush
// at end of stream — then answers the queries from the last published
// snapshot. SelectivityOK distinguishes "no fit published" from a
// genuine zero-selectivity answer.
func runOnline(w io.Writer, values []float64, queries []rangeQuery, opts selest.Options, reservoir, refitEvery, shards int, seed uint64) error {
	est, err := selest.NewOnline(opts, selest.OnlineConfig{
		ReservoirSize: reservoir,
		RefitEvery:    refitEvery,
		Shards:        shards,
		Seed:          seed,
	})
	if err != nil {
		return err
	}
	if err := est.InsertBatch(values); err != nil {
		fmt.Fprintf(os.Stderr, "selest: warning: online refit during ingest: %v\n", err)
	}
	if err := est.Flush(); err != nil {
		return fmt.Errorf("online flush: %w", err)
	}
	fmt.Fprintf(w, "online: %d records streamed, %d refits (%d failed), generation %d, %d ingest shards\n\n",
		est.Inserts(), est.Refits(), est.FailedRefits(), est.Generation(), shards)
	for _, q := range queries {
		exact := exactCount(values, q.a, q.b)
		fmt.Fprintf(w, "Q(%g, %g): exact %d records (selectivity %.6f)\n", q.a, q.b, exact, float64(exact)/float64(len(values)))
		sel, ok := est.SelectivityOK(q.a, q.b)
		if !ok {
			fmt.Fprintf(w, "  %-12s no fit published\n", est.Name())
			continue
		}
		fmt.Fprintf(w, "  %-12s σ̂ = %.6f  ≈ %.0f records\n", est.Name(), sel, sel*float64(len(values)))
	}
	return nil
}

// buildEstimator builds one method's estimator, strictly or through the
// robust ladder. In robust mode a degraded or sanitized build prints its
// report to stderr so the served answer's provenance is visible.
func buildEstimator(smp []float64, o selest.Options, robustMode bool) (selest.Estimator, error) {
	if !robustMode {
		return selest.Build(smp, o)
	}
	est, rep, err := selest.BuildRobust(smp, o)
	if err != nil {
		return nil, err
	}
	if rep.Degraded || rep.Sanitize.Dropped > 0 || rep.Sanitize.Clamped > 0 {
		fmt.Fprintf(os.Stderr, "selest: warning: robust build: %s\n", rep)
	}
	return est, nil
}

type rangeQuery struct{ a, b float64 }

func parseQueries(args []string) ([]rangeQuery, error) {
	out := make([]rangeQuery, 0, len(args))
	for _, arg := range args {
		parts := strings.SplitN(arg, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("query %q: want a:b", arg)
		}
		a, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", arg, err)
		}
		b, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", arg, err)
		}
		if b < a {
			return nil, fmt.Errorf("query %q: inverted range", arg)
		}
		out = append(out, rangeQuery{a, b})
	}
	return out, nil
}

func readValues(path string) ([]float64, error) {
	return readValuesOpts(path, "", false)
}

func readValuesOpts(path, column string, header bool) ([]float64, error) {
	if strings.HasSuffix(path, ".csv") {
		f, err := dataset.LoadCSVFile(path, column, header)
		if err != nil {
			return nil, err
		}
		return f.Records, nil
	}
	if strings.HasSuffix(path, ".seld") {
		f, err := dataset.LoadFile(path)
		if err != nil {
			return nil, err
		}
		return f.Records, nil
	}
	var in *os.File
	if path == "-" {
		in = os.Stdin
	} else {
		var err error
		in, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		defer in.Close()
	}
	var values []float64
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		values = append(values, v)
	}
	return values, sc.Err()
}

func exactCount(values []float64, a, b float64) int {
	n := 0
	for _, v := range values {
		if v >= a && v <= b {
			n++
		}
	}
	return n
}

func methodList() string {
	ms := selest.Methods()
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = string(m)
	}
	return strings.Join(parts, " | ")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "selest: %v\n", err)
	os.Exit(1)
}

// evaluateWorkload loads a .selq workload and prints each method's MRE
// and q-error summary against its stored ground truth.
func evaluateWorkload(path string, smp []float64, opts selest.Options, methods []selest.Method, records int, robustMode bool) error {
	w, err := query.LoadFile(path)
	if err != nil {
		return err
	}
	if w.N != records {
		fmt.Printf("warning: workload was generated for %d records, data has %d\n", w.N, records)
	}
	fmt.Printf("workload: %d queries of %.0f%% of the domain\n\n", len(w.Queries), w.SizeFrac*100)
	fmt.Printf("%-16s %10s %12s %12s %12s\n", "method", "MRE", "q-err p50", "q-err p99", "q-err max")
	for _, m := range methods {
		o := opts
		o.Method = m
		est, err := buildEstimator(smp, o, robustMode)
		if err != nil {
			fmt.Printf("%-16s error: %v\n", m, err)
			continue
		}
		mre, _ := errmetrics.MRE(est, w)
		qe := errmetrics.QErrors(est, w)
		fmt.Printf("%-16s %9.2f%% %12.2f %12.2f %12.2f\n", m, 100*mre, qe.Median, qe.P99, qe.Max)
	}
	return nil
}
