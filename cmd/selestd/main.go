// Command selestd is the fault-tolerant multi-tenant estimator daemon: an
// HTTP/JSON front and a selestwire binary-protocol front over the
// lock-free serving engine, with per-tenant admission control,
// backpressured ingest, a per-request degradation ladder, and crash-safe
// snapshot persistence (see internal/server, DESIGN.md §12–§13). Both
// listeners share one Server core, so a tenant's quota, an attribute's
// queue, and the drain gate are identical whichever protocol a request
// arrives on.
//
// Lifecycle: on boot the daemon warm-starts from -snapshot when the file
// exists (a torn snapshot is logged and served cold unless
// -require-snapshot makes it fatal); with no usable local snapshot,
// -join fetches a peer replica's snapshot over the wire protocol
// (opcode snapshot_fetch) and boots from that — the CRC-verified SELS
// envelope means a torn transfer refuses rather than serving a partial
// catalog. It then listens on -addr (HTTP) and, when -wire-addr is set,
// on the binary listener, printing each bound address — pass :0 to let
// the kernel pick ports. While serving it
// persists a crash-safe snapshot every -snapshot-every. On SIGINT/SIGTERM
// it shuts down gracefully: stop accepting work, drain every accepted
// request and queued value (bounded by -drain-timeout), flush refits, and
// write a final snapshot — so the next boot recovers exactly what the
// last one accepted.
//
// HTTP endpoints (all request/response bodies JSON; errors are typed
// bodies):
//
//	POST /v1/attrs          — create an attribute (idempotent)
//	POST /v1/estimate       — one range query
//	POST /v1/estimate/batch — many range queries, one attribute
//	POST /v1/ingest         — enqueue stream values (backpressured)
//	GET  /healthz           — liveness + drain state
//	GET  /metrics           — Prometheus text exposition
//
// The wire listener speaks the same five operations as selestwire frames
// (see internal/wire and the selest/client package).
//
// Example:
//
//	selestd -addr 127.0.0.1:8765 -wire-addr 127.0.0.1:8766 \
//	    -snapshot /var/lib/selest/snap.selest
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"selest/client"
	"selest/internal/catalog"
	"selest/internal/server"
	"selest/internal/telemetry"
)

// joinFrom warm-boots srv from a peer replica: fetch its snapshot over
// the wire protocol, recover from the byte stream (self-verifying — a
// torn transfer is refused), and persist a local copy when -snapshot is
// set so the next boot does not need the peer. The envelope is
// deterministic, so the local copy is byte-identical to the peer's own
// snapshot file.
func joinFrom(srv *server.Server, peer, snapshotPath string, timeout time.Duration) error {
	c, err := client.New(client.Options{Addr: peer, RequestTimeout: timeout, HealthCheckEvery: -1})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	snap, err := c.FetchSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	if err := srv.RecoverReader(bytes.NewReader(snap)); err != nil {
		return fmt.Errorf("recover fetched snapshot: %w", err)
	}
	if snapshotPath != "" {
		if err := srv.SaveSnapshot(snapshotPath); err != nil {
			return fmt.Errorf("persist fetched snapshot: %w", err)
		}
	}
	return nil
}

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8765", "HTTP listen address (use :0 for an ephemeral port)")
		wireAddr        = flag.String("wire-addr", "", "selestwire binary-protocol listen address (empty = disabled; use :0 for an ephemeral port)")
		snapshotPath    = flag.String("snapshot", "", "snapshot file: recovered on boot, written on shutdown and every -snapshot-every")
		snapshotEvery   = flag.Duration("snapshot-every", 0, "periodic crash-safe snapshot interval (0 = only at shutdown)")
		requireSnapshot = flag.Bool("require-snapshot", false, "refuse to start when -snapshot exists but cannot be recovered (default: log and serve cold)")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget: drain, flush, and snapshot within this")
		quotaRate       = flag.Float64("quota-rate", 0, "per-tenant admission rate in tokens/second (0 = unlimited); estimates cost 1, batches and ingests their size")
		quotaBurst      = flag.Float64("quota-burst", 0, "per-tenant token-bucket burst")
		queueCap        = flag.Int("queue-cap", 0, "per-attribute ingest queue bound; overflow sheds oldest (0 = 8192)")
		maxInflight     = flag.Int64("max-inflight", 0, "inflight-request threshold beyond which fresh estimates degrade to the snapshot rung (0 = 1024)")
		maxBatch        = flag.Int("max-batch", 0, "max queries per batch / values per ingest (0 = 4096)")
		defaultTimeout  = flag.Duration("default-timeout", 0, "deadline applied to requests without a budget of their own (0 = 5s)")
		degradeDeadline = flag.Duration("degrade-deadline", 0, "remaining-deadline threshold below which fresh estimates skip their flush (0 = 25ms)")
		join            = flag.String("join", "", "peer replica's wire address to fetch a boot snapshot from when the local -snapshot is absent or torn")
		joinTimeout     = flag.Duration("join-timeout", 30*time.Second, "budget for the -join snapshot fetch and recovery")
		globalRate      = flag.Float64("global-rate", 0, "box-wide admission cap in requests/second across all tenants (0 = unlimited); used to pin per-replica capacity in cluster benchmarks")
		globalBurst     = flag.Float64("global-burst", 0, "box-wide token-bucket burst (0 = one second at -global-rate)")
		pprofAddr       = flag.String("pprof-addr", "", "net/http/pprof listen address (empty = disabled); see README \"Profiling\" for the recipe")
	)
	flag.Parse()
	log.SetPrefix("selestd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	telemetry.Enable()
	srv, err := server.NewServer(server.Options{
		QuotaRate:       *quotaRate,
		QuotaBurst:      *quotaBurst,
		QueueCap:        *queueCap,
		DefaultTimeout:  *defaultTimeout,
		DegradeDeadline: *degradeDeadline,
		MaxInflight:     *maxInflight,
		MaxBatch:        *maxBatch,
		GlobalRate:      *globalRate,
		GlobalBurst:     *globalBurst,
		SnapshotPath:    *snapshotPath,
		HTTPAddr:        *addr,
		WireAddr:        *wireAddr,
	})
	if err != nil {
		log.Fatalf("configuration: %v", err)
	}

	warm := false
	if *snapshotPath != "" {
		switch err := srv.Recover(*snapshotPath); {
		case err == nil:
			log.Printf("warm start: recovered %s", *snapshotPath)
			warm = true
		case errors.Is(err, os.ErrNotExist):
			log.Printf("cold start: no snapshot at %s", *snapshotPath)
		case errors.Is(err, catalog.ErrTornSnapshot) && !*requireSnapshot:
			log.Printf("cold start: snapshot %s is torn (%v); serving cold", *snapshotPath, err)
		default:
			log.Fatalf("recovering %s: %v", *snapshotPath, err)
		}
	}
	if !warm && *join != "" {
		switch err := joinFrom(srv, *join, *snapshotPath, *joinTimeout); {
		case err == nil:
			log.Printf("warm start: joined from %s", *join)
		case *requireSnapshot:
			log.Fatalf("joining %s: %v", *join, err)
		default:
			log.Printf("cold start: join %s failed (%v); serving cold", *join, err)
		}
	}

	// The profiling listener gets its own mux (never the service mux, and
	// not http.DefaultServeMux): the pprof endpoints stay off every
	// serving address unless an operator binds them explicitly.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("listen pprof %s: %v", *pprofAddr, err)
		}
		fmt.Printf("selestd pprof listening on %s\n", pln.Addr())
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	// The bound addresses on stdout are the machine-readable contract the
	// bench harness waits for.
	fmt.Printf("selestd listening on %s\n", ln.Addr())

	var wireSrv *server.WireServer
	serveErr := make(chan error, 2)
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("listen wire %s: %v", *wireAddr, err)
		}
		fmt.Printf("selestd wire listening on %s\n", wln.Addr())
		wireSrv = srv.NewWireServer()
		go func() {
			if err := wireSrv.Serve(wln); err != nil {
				serveErr <- fmt.Errorf("wire serve: %w", err)
			}
		}()
	}
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- fmt.Errorf("serve: %w", err)
		}
	}()

	stopSnapshots := make(chan struct{})
	if *snapshotPath != "" && *snapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(*snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopSnapshots:
					return
				case <-tick.C:
					if err := srv.SaveSnapshot(*snapshotPath); err != nil {
						log.Printf("periodic snapshot: %v", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v; draining (budget %v)", s, *drainTimeout)
	case err := <-serveErr:
		log.Fatal(err)
	}
	close(stopSnapshots)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections and wait for in-flight handlers on both
	// transports first, then drain queues, flush refits, and persist.
	var shut sync.WaitGroup
	shut.Add(1)
	go func() {
		defer shut.Done()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()
	if wireSrv != nil {
		shut.Add(1)
		go func() {
			defer shut.Done()
			if err := wireSrv.Shutdown(ctx); err != nil {
				log.Printf("wire shutdown: %v", err)
			}
		}()
	}
	shut.Wait()
	if err := srv.Close(ctx, *snapshotPath); err != nil {
		log.Printf("drain: %v", err)
		os.Exit(1)
	}
	if *snapshotPath != "" {
		log.Printf("shutdown complete; snapshot at %s", *snapshotPath)
	} else {
		log.Printf("shutdown complete")
	}
}
