// Package selest is a library of selectivity estimators for range queries
// on metric attributes, reproducing Blohsfeld, Korus & Seeger, "A
// Comparison of Selectivity Estimators for Range Queries on Metric
// Attributes" (SIGMOD 1999).
//
// Given a small random sample of a relation's attribute values, the
// library estimates the selectivity of range queries Q(a,b) — the fraction
// of records with a <= value <= b — using any of the paper's nonparametric
// methods:
//
//   - kernel estimators (the paper's contribution): Epanechnikov-kernel
//     density estimation integrated over the query range, with reflection
//     or Simonoff–Dong boundary kernels repairing the domain boundaries;
//   - histograms: equi-width, equi-depth, max-diff, average shifted, the
//     one-bin uniform assumption, and a v-optimal extension;
//   - the paper's hybrid estimator: change-point-partitioned bins with a
//     local kernel estimator per bin;
//   - pure sampling as the baseline.
//
// Smoothing parameters (bin counts, bandwidths) default to the paper's
// normal scale rules and can instead use the direct plug-in rule or
// least-squares cross-validation.
//
// # Quick start
//
//	est, err := selest.Build(sampleValues, selest.Options{
//		Method:   selest.Kernel,
//		Boundary: selest.BoundaryKernels,
//		DomainLo: 0,
//		DomainHi: 1 << 20,
//	})
//	if err != nil { ... }
//	sel := est.Selectivity(1000, 5000) // estimated fraction of records
//	rows := sel * float64(tableSize)   // estimated result size
//
// See the examples directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the paper-reproduction harness.
package selest

import (
	"selest/internal/core"
	"selest/internal/kde"
	"selest/internal/robust"
)

// Estimator is a range-selectivity estimator. Selectivity returns the
// estimated fraction of records in [a, b], always within [0, 1].
type Estimator = core.Estimator

// Method selects an estimation technique; see the Method constants.
type Method = core.Method

// The estimation methods of the paper's comparison.
const (
	// Sampling estimates selectivity as the in-range fraction of the
	// sample — the consistent O(n^{-1/2}) baseline.
	Sampling = core.Sampling
	// Uniform is the one-bin uniform-assumption estimator (System R).
	Uniform = core.Uniform
	// EquiWidth is the equi-width histogram.
	EquiWidth = core.EquiWidth
	// EquiDepth is the equi-depth histogram.
	EquiDepth = core.EquiDepth
	// MaxDiff is the max-diff histogram of Poosala et al.
	MaxDiff = core.MaxDiff
	// VOptimal is the v-optimal histogram (extension baseline).
	VOptimal = core.VOptimal
	// EndBiased is the end-biased histogram (extension): exact buckets
	// for the most frequent values plus an equi-width rest.
	EndBiased = core.EndBiased
	// Wavelet is the Haar-wavelet synopsis estimator (extension, after
	// Matias/Vitter/Wang SIGMOD'98 — the paper's reference [4]).
	Wavelet = core.Wavelet
	// ASH is the average shifted histogram.
	ASH = core.ASH
	// FrequencyPolygon linearly interpolates an equi-width histogram's
	// bin densities (extension): no jump points, kernel-class convergence.
	FrequencyPolygon = core.FrequencyPolygon
	// Kernel is kernel selectivity estimation — the paper's contribution.
	Kernel = core.Kernel
	// BetaKernel is the renormalized Epanechnikov estimator on the bounded
	// domain (extension): closed-form bandwidth rules make its refits
	// sort-dominated.
	BetaKernel = core.BetaKernel
	// VariableKernel is sample-point adaptive kernel estimation
	// (extension): per-sample bandwidths shrink in dense regions and grow
	// in sparse ones.
	VariableKernel = core.VariableKernel
	// Hybrid is the paper's histogram/kernel hybrid estimator.
	Hybrid = core.Hybrid
)

// BandwidthRule selects how smoothing parameters are derived when not
// fixed explicitly.
type BandwidthRule = core.BandwidthRule

// The smoothing-parameter rules of paper §4.
const (
	// NormalScale approximates the optimal parameter via the Normal
	// reference distribution (the default).
	NormalScale = core.NormalScale
	// DPI is the iterative direct plug-in rule.
	DPI = core.DPI
	// LSCV is least-squares cross-validation (kernel bandwidths only).
	LSCV = core.LSCV
	// BetaClosedForm is the O(1) beta-reference plug-in (kernel bandwidths
	// only): no pilot cascade, no grid search.
	BetaClosedForm = core.BetaClosedForm
	// ExactMISE is the O(1) CDF-targeted closed-form selector (kernel
	// bandwidths only).
	ExactMISE = core.ExactMISE
)

// BoundaryMode selects the kernel boundary treatment.
type BoundaryMode = kde.BoundaryMode

// The kernel boundary treatments of paper §3.2.1.
const (
	// BoundaryNone applies no repair (high error near the boundaries).
	BoundaryNone = kde.BoundaryNone
	// BoundaryReflect mirrors boundary-adjacent samples into the domain.
	BoundaryReflect = kde.BoundaryReflect
	// BoundaryKernels uses the Simonoff–Dong boundary kernel family — the
	// paper's most accurate treatment.
	BoundaryKernels = kde.BoundaryKernels
)

// Options configures Build; see the field documentation in
// internal/core. The zero value plus a domain builds a kernel estimator
// with the normal scale rule.
type Options = core.Options

// Build constructs an estimator from a sample set of attribute values.
// Samples are copied; the estimator is immutable and safe for concurrent
// use.
//
// With Options.Robust set, construction routes through the
// graceful-degradation ladder (see BuildRobust): the sample set is
// sanitized, fit failures step down to simpler methods, and the returned
// estimator never panics or answers outside [0, 1].
func Build(samples []float64, opts Options) (Estimator, error) {
	if opts.Robust {
		est, _, err := robust.Build(samples, opts)
		if err != nil {
			return nil, err
		}
		return est, nil
	}
	return core.Build(samples, opts)
}

// RobustReport describes how a robust build arrived at its estimator:
// the rung of the degradation ladder that serves, the failed attempts
// above it, and what input sanitization scrubbed.
type RobustReport = robust.Report

// RobustEstimator is the panic-safe serving wrapper returned by
// BuildRobust, exposing the build Report and a count of recovered
// query-time panics.
type RobustEstimator = robust.Estimator

// BuildRobust constructs an estimator through the graceful-degradation
// ladder: NaN/Inf samples are scrubbed, out-of-domain values clamped, a
// constant sample yields a point-mass estimator, and a fit failure in
// the requested method steps down Kernel(boundary kernels) → EquiDepth →
// Sampling → Uniform. The report records the rung used and every failed
// attempt. It fails only when the sample set has no finite values.
func BuildRobust(samples []float64, opts Options) (*RobustEstimator, *RobustReport, error) {
	return robust.Build(samples, opts)
}

// Methods lists every method Build accepts, in the paper's comparison
// order.
func Methods() []Method { return core.Methods() }
