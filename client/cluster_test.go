// Cluster-client pins: tenant sharding over a replica fleet, write
// fan-out, read failover past a dead replica, snapshot fetching over
// both transports, and the chaos suite — a replica killed and restarted
// under live mixed load with zero client-visible failures. Run with
// -race (make race-cluster) to sweep the routing layer's concurrency.
package client_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selest/client"
	"selest/internal/cluster"
	"selest/internal/server"
)

// fleet is n independent in-process daemons with wire listeners, each
// killable and restartable on its original address.
type fleet struct {
	t     *testing.T
	srvs  []*server.Server
	addrs []string

	mu  sync.Mutex
	wss []*server.WireServer
	lns []net.Listener
}

func startFleet(t *testing.T, n int) *fleet {
	t.Helper()
	f := &fleet{
		t:    t,
		srvs: make([]*server.Server, n),
		wss:  make([]*server.WireServer, n),
		lns:  make([]net.Listener, n),
	}
	for i := 0; i < n; i++ {
		srv, err := server.NewServer(server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ws := srv.NewWireServer()
		go func() { _ = ws.Serve(ln) }()
		f.srvs[i] = srv
		f.lns[i] = ln
		f.wss[i] = ws
		f.addrs = append(f.addrs, ln.Addr().String())
	}
	t.Cleanup(func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		for i := range f.srvs {
			if f.lns[i] != nil {
				_ = f.lns[i].Close()
			}
			f.wss[i].CloseConns()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = f.srvs[i].Close(ctx, "")
			cancel()
		}
	})
	return f
}

// kill simulates a crash of replica i: the listener closes (new dials
// refused) and every live connection is severed, with no draining.
func (f *fleet) kill(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	_ = f.lns[i].Close()
	f.lns[i] = nil
	f.wss[i].CloseConns()
}

// restart brings replica i back on its original address, state intact
// (a crash loses only connections here; durability is the snapshot
// story, tested separately).
func (f *fleet) restart(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var ln net.Listener
	var err error
	// The freed port can straggle briefly; retry the bind.
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", f.addrs[i])
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		f.t.Errorf("restart replica %d on %s: %v", i, f.addrs[i], err)
		return
	}
	ws := f.srvs[i].NewWireServer()
	go func() { _ = ws.Serve(ln) }()
	f.lns[i] = ln
	f.wss[i] = ws
}

func (f *fleet) client(t *testing.T, rf int, mutate ...func(*client.Options)) *client.Client {
	t.Helper()
	opts := client.Options{
		Addrs:            append([]string(nil), f.addrs...),
		Replication:      rf,
		HealthCheckEvery: -1,
	}
	for _, m := range mutate {
		m(&opts)
	}
	c, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestClientClusterSharding pins that with Replication 1 each tenant's
// traffic lands on exactly the replica the rendezvous ring names — the
// server-side ground truth, not just client bookkeeping.
func TestClientClusterSharding(t *testing.T) {
	f := startFleet(t, 3)
	c := f.client(t, 1)
	ctx := context.Background()

	ring, err := cluster.New(f.addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	byAddr := map[string]*server.Server{}
	for i, a := range f.addrs {
		byAddr[a] = f.srvs[i]
	}

	for i := 0; i < 12; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if err := c.CreateAttr(ctx, tenant, "v", testCfg()); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Ingest(ctx, tenant, "v", []float64{0.2, 0.4, 0.6}); err != nil {
			t.Fatal(err)
		}
		home := ring.Primary(tenant)
		for addr, srv := range byAddr {
			_, err := srv.Estimate(ctx, tenant, "v", 0, 1, false)
			if addr == home && err != nil {
				t.Fatalf("tenant %s missing from its home replica %s: %v", tenant, addr, err)
			}
			if addr != home && !errors.Is(err, server.ErrNotFound) {
				t.Fatalf("tenant %s leaked to replica %s (err=%v)", tenant, addr, err)
			}
		}
	}
}

// TestClientClusterWriteFanout pins that with Replication 2 a write
// lands on both ring replicas, and that their independently-fed
// estimators answer identically (same values, same seed — the
// determinism the fan-out contract leans on).
func TestClientClusterWriteFanout(t *testing.T) {
	f := startFleet(t, 2)
	c := f.client(t, 2)
	ctx := context.Background()

	if err := c.CreateAttr(ctx, "acme", "v", testCfg()); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = (float64(i) + 0.5) / 256
	}
	if _, err := c.Ingest(ctx, "acme", "v", vals); err != nil {
		t.Fatal(err)
	}
	var answers []server.EstimateResult
	for _, srv := range f.srvs {
		res, err := srv.Estimate(ctx, "acme", "v", 0.25, 0.75, true)
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, res)
	}
	if answers[0] != answers[1] {
		t.Fatalf("replicas disagree after fan-out: %+v vs %+v", answers[0], answers[1])
	}
}

// TestClientClusterFailover kills a tenant's primary and pins that
// reads fail over to the secondary inside the normal retry budget, with
// the failover visible in Stats.
func TestClientClusterFailover(t *testing.T) {
	f := startFleet(t, 2)
	c := f.client(t, 2, func(o *client.Options) {
		o.RetryBaseDelay = time.Millisecond
		o.RetryMaxDelay = 10 * time.Millisecond
		o.MaxRetries = 5
	})
	ctx := context.Background()

	if err := c.CreateAttr(ctx, "acme", "v", testCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ctx, "acme", "v", []float64{0.1, 0.5, 0.9}); err != nil {
		t.Fatal(err)
	}

	ring, err := cluster.New(f.addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range f.addrs {
		if a == ring.Primary("acme") {
			f.kill(i)
		}
	}

	res, err := c.Estimate(ctx, "acme", "v", 0, 1, client.WithFresh())
	if err != nil {
		t.Fatalf("estimate with primary dead: %v", err)
	}
	if res.Selectivity <= 0 {
		t.Fatalf("estimate result: %+v", res)
	}
	if s := c.Stats(); s.Failovers == 0 {
		t.Fatalf("no failover recorded: %+v", s)
	}
	// Writes keep landing on the surviving replica.
	if _, err := c.Ingest(ctx, "acme", "v", []float64{0.3}); err != nil {
		t.Fatalf("ingest with primary dead: %v", err)
	}
}

// TestClientClusterHealthEjection pins the health loop's both
// directions: a dead replica is ejected (routing stops paying its dial
// timeout) and a recovered one is re-admitted.
func TestClientClusterHealthEjection(t *testing.T) {
	f := startFleet(t, 2)
	c := f.client(t, 2, func(o *client.Options) {
		o.HealthCheckEvery = 20 * time.Millisecond
		o.DialTimeout = 200 * time.Millisecond
		o.RetryBaseDelay = time.Millisecond
		o.RetryMaxDelay = 10 * time.Millisecond
	})
	ctx := context.Background()
	if err := c.CreateAttr(ctx, "acme", "v", testCfg()); err != nil {
		t.Fatal(err)
	}

	f.kill(0)
	waitFor(t, "replica ejection", func() bool { return c.Stats().Ejected >= 1 })

	f.restart(0)
	// Re-admission is observable as calls succeeding without growing the
	// failover count: once the down bit clears, routing goes straight to
	// the preferred replica again.
	waitFor(t, "replica re-admission", func() bool {
		before := c.Stats().Failovers
		if _, err := c.Estimate(ctx, "acme", "v", 0, 1); err != nil {
			return false
		}
		return c.Stats().Failovers == before
	})
}

// TestClientClusterChaos is the -race suite's centerpiece: mixed
// estimate/ingest load over a 3-replica fleet with Replication 2 while
// one replica is crashed and later restarted mid-flight. The retry and
// failover machinery must absorb the crash completely: zero
// client-visible errors.
func TestClientClusterChaos(t *testing.T) {
	f := startFleet(t, 3)
	c := f.client(t, 2, func(o *client.Options) {
		o.HealthCheckEvery = 25 * time.Millisecond
		o.MaxRetries = 8
		o.RetryBaseDelay = time.Millisecond
		o.RetryMaxDelay = 25 * time.Millisecond
		o.RequestTimeout = 5 * time.Second
	})
	ctx := context.Background()

	const tenants = 6
	for i := 0; i < tenants; i++ {
		if err := c.CreateAttr(ctx, fmt.Sprintf("t%d", i), "v", testCfg()); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Ingest(ctx, fmt.Sprintf("t%d", i), "v", []float64{0.2, 0.5, 0.8}); err != nil {
			t.Fatal(err)
		}
	}

	var failed atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tenant := fmt.Sprintf("t%d", (w+i)%tenants)
				var err error
				if i%4 == 3 {
					_, err = c.Ingest(ctx, tenant, "v", []float64{float64(i%97) / 97})
				} else {
					_, err = c.Estimate(ctx, tenant, "v", 0.1, 0.9)
				}
				if err != nil {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond)
	f.kill(1)
	time.Sleep(300 * time.Millisecond)
	f.restart(1)
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d client-visible failures during chaos; first: %v", n, firstErr.Load())
	}
	if s := c.Stats(); s.Requests < 100 {
		t.Fatalf("chaos load barely ran: %+v", s)
	}
}

// TestClientFetchSnapshotParity pins that both transports download the
// identical SELS envelope, and that it boots a replica that answers
// immediately — the client half of `selestd -join`.
func TestClientFetchSnapshotParity(t *testing.T) {
	ts := startService(t, server.Options{})
	ctx := context.Background()

	cw := ts.client(t, client.ProtoWire)
	if err := cw.CreateAttr(ctx, "acme", "v", testCfg()); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 128)
	for i := range vals {
		vals[i] = (float64(i) + 0.5) / 128
	}
	if _, err := cw.Ingest(ctx, "acme", "v", vals); err != nil {
		t.Fatal(err)
	}
	// A fresh estimate forces the pending queue into a fitted snapshot so
	// the fetched envelope is non-trivial.
	if _, err := cw.Estimate(ctx, "acme", "v", 0.2, 0.8, client.WithFresh()); err != nil {
		t.Fatal(err)
	}

	viaWire, err := cw.FetchSnapshot(ctx)
	if err != nil {
		t.Fatalf("wire fetch: %v", err)
	}
	viaJSON, err := ts.client(t, client.ProtoJSON).FetchSnapshot(ctx)
	if err != nil {
		t.Fatalf("json fetch: %v", err)
	}
	if len(viaWire) == 0 || !bytes.Equal(viaWire, viaJSON) {
		t.Fatalf("transport snapshot mismatch: wire %d bytes, json %d bytes", len(viaWire), len(viaJSON))
	}

	joined, err := server.NewServer(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := joined.RecoverReader(bytes.NewReader(viaWire)); err != nil {
		t.Fatal(err)
	}
	res, err := joined.Estimate(ctx, "acme", "v", 0.2, 0.8, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "snapshot" || res.Generation == 0 {
		t.Fatalf("joined replica answered rung %q gen %d; want snapshot rung", res.Rung, res.Generation)
	}
}
