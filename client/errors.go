// The client's error surface: the same stable codes and sentinels the
// server classifies with (internal/errcode), re-exported so callers can
// `errors.Is(err, client.ErrOverQuota)` without importing an internal
// package — and get the identical answer whether the call travelled as
// JSON or selestwire.
package client

import (
	"fmt"
	"time"

	"selest/internal/errcode"
)

// Code is the stable numeric error identifier shared by both transports
// (wire error frames carry it raw; JSON bodies carry its string form).
type Code = errcode.Code

// The registry's codes, re-exported for switch statements on
// APIError.Code.
const (
	CodeInternal   = errcode.CodeInternal
	CodeBadRequest = errcode.CodeBadRequest
	CodeNotFound   = errcode.CodeNotFound
	CodeOverQuota  = errcode.CodeOverQuota
	CodeDraining   = errcode.CodeDraining
	CodeConflict   = errcode.CodeConflict
	CodeTimeout    = errcode.CodeTimeout
)

// Typed sentinels, re-exported so errors.Is works identically on both
// transports: every server-reported failure unwraps to exactly one of
// these.
var (
	// ErrBadRequest reports malformed input (NaN/inverted ranges, empty
	// payloads, invalid attribute options).
	ErrBadRequest = errcode.ErrBadRequest
	// ErrNotFound reports an unknown tenant or attribute.
	ErrNotFound = errcode.ErrNotFound
	// ErrOverQuota reports admission refusal; the APIError in the chain
	// carries the server's retry-after hint.
	ErrOverQuota = errcode.ErrOverQuota
	// ErrDraining reports a server refusing new work during graceful
	// shutdown.
	ErrDraining = errcode.ErrDraining
	// ErrConflict reports an attribute that exists with a different
	// configuration.
	ErrConflict = errcode.ErrConflict
	// ErrTimeout reports an exhausted deadline budget.
	ErrTimeout = errcode.ErrTimeout
	// ErrInternal reports a server-side contained panic or unclassified
	// failure.
	ErrInternal = errcode.ErrInternal
)

// APIError is a failure the server reported (as opposed to a transport
// failure reaching it). It unwraps to its code's sentinel, so
// errors.Is(err, client.ErrOverQuota) matches regardless of transport.
type APIError struct {
	// Code is the stable numeric code from the shared registry.
	Code Code
	// Message is the server's human-readable detail, identical across
	// transports for the same failure.
	Message string
	// RetryAfter is the server's throttle hint for over-quota refusals
	// (Retry-After header on JSON, RetryAfterMs field on the wire);
	// zero means none. The client's retry loop honours it.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("selest: %s (%s)", e.Message, e.Code)
}

// Unwrap links the error to its code's sentinel for errors.Is.
func (e *APIError) Unwrap() error { return e.Code.Sentinel() }
