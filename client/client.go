// Package client is the native Go client for the selest estimator
// service. One typed API rides two transports — the selestwire binary
// protocol (pipelined persistent TCP, the default) and HTTP/JSON — with
// identical semantics: the same request options, the same typed errors
// (errors.Is against the re-exported sentinels works on either), and the
// same deadline budget announced to the server so its degradation ladder
// sees what the client will actually wait for.
//
// Every call runs a bounded retry loop with full-jitter exponential
// backoff. Server throttle hints (Retry-After / RetryAfterMs) stretch
// the backoff; non-retryable failures (bad request, not found, conflict)
// return immediately.
//
//	c, err := client.New(client.Options{Addr: "127.0.0.1:7654"})
//	...
//	res, err := c.Estimate(ctx, "tenant", "latency", 0.1, 0.9,
//	    client.WithTimeout(50*time.Millisecond))
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"selest/internal/cluster"
	"selest/internal/wire"
)

// transport is the seam between the typed API and a wire format. Both
// implementations speak in the client's public types; meta carries the
// per-attempt deadline and retry number to the server.
type transport interface {
	estimate(ctx context.Context, meta wire.Meta, tenant, attr string, lo, hi float64, fresh bool) (Result, error)
	estimateBatch(ctx context.Context, meta wire.Meta, tenant, attr string, queries []Range, fresh bool) ([]Result, error)
	ingest(ctx context.Context, meta wire.Meta, tenant, attr string, values []float64) (IngestResult, error)
	createAttr(ctx context.Context, meta wire.Meta, tenant, attr string, cfgJSON []byte) error
	ping(ctx context.Context, meta wire.Meta) error
	snapshotFetch(ctx context.Context, meta wire.Meta) ([]byte, error)
	healthCheck(ctx context.Context) error
	close() error
}

// Client is a selest service client. It is safe for concurrent use; one
// Client per target fleet is the intended shape (each replica's wire
// transport multiplexes all goroutines over its own connection pool).
// With a single address the routing layer collapses to a no-op; with
// Options.Addrs the client shards tenants over the fleet and fails reads
// over down each tenant's preference list (see router.go).
type Client struct {
	opts   Options
	ring   *cluster.Ring
	reps   []*replica
	byAddr map[string]*replica

	requests  atomic.Uint64
	retries   atomic.Uint64
	failovers atomic.Uint64
	ejected   atomic.Uint64

	closed atomic.Bool
	stop   chan struct{}
	done   chan struct{}
}

// Stats is a point-in-time snapshot of client-side counters.
type Stats struct {
	// Requests counts API calls (not attempts).
	Requests uint64 `json:"requests"`
	// Retries counts re-attempts after a retryable failure.
	Retries uint64 `json:"retries"`
	// Dials counts connections established (wire transport only),
	// summed over every replica's pool.
	Dials uint64 `json:"dials"`
	// Failovers counts attempts re-routed to the next ring replica after
	// a connection- or 5xx-class failure (multi-replica clients only).
	Failovers uint64 `json:"failovers"`
	// Ejected counts replica down-markings (a replica bouncing counts
	// once per ejection, not once per failed call).
	Ejected uint64 `json:"ejected"`
}

// New validates opts and builds a client. No connection is made until
// the first call (the wire pools dial lazily), so New succeeds even if
// the servers are not up yet.
func New(opts Options) (*Client, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	ring, err := newRing(opts)
	if err != nil {
		return nil, err
	}
	c := &Client{
		opts:   opts,
		ring:   ring,
		byAddr: make(map[string]*replica, ring.Len()),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, addr := range ring.Members() {
		ro := opts
		ro.Addr = addr
		var tr transport
		switch opts.Protocol {
		case ProtoWire:
			tr = newWireTransport(ro)
		case ProtoJSON:
			tr = newJSONTransport(ro)
		}
		rep := &replica{addr: addr, t: tr}
		c.reps = append(c.reps, rep)
		c.byAddr[addr] = rep
	}
	if opts.HealthCheckEvery > 0 {
		go c.healthLoop()
	} else {
		close(c.done)
	}
	return c, nil
}

// Close stops the health checker and releases every replica's
// connections. In-flight calls fail.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.stop)
	<-c.done
	var first error
	for _, rep := range c.reps {
		if err := rep.t.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats reports the client's counters.
func (c *Client) Stats() Stats {
	s := Stats{
		Requests:  c.requests.Load(),
		Retries:   c.retries.Load(),
		Failovers: c.failovers.Load(),
		Ejected:   c.ejected.Load(),
	}
	for _, rep := range c.reps {
		if wt, ok := rep.t.(*wireTransport); ok {
			s.Dials += wt.dials.Load()
		}
	}
	return s
}

// Estimate answers one range query [lo, hi] on tenant's attr.
func (c *Client) Estimate(ctx context.Context, tenant, attr string, lo, hi float64, opts ...CallOption) (Result, error) {
	co := c.callOpts(opts)
	var out Result
	err := c.do(ctx, co, tenant, func(ctx context.Context, meta wire.Meta, t transport) error {
		res, err := t.estimate(ctx, meta, tenant, attr, lo, hi, co.fresh)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// EstimateBatch answers many queries against one attribute in a single
// round trip.
func (c *Client) EstimateBatch(ctx context.Context, tenant, attr string, queries []Range, opts ...CallOption) ([]Result, error) {
	co := c.callOpts(opts)
	var out []Result
	err := c.do(ctx, co, tenant, func(ctx context.Context, meta wire.Meta, t transport) error {
		res, err := t.estimateBatch(ctx, meta, tenant, attr, queries, co.fresh)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// Ingest enqueues stream values on tenant's attr. The result reports
// how many were queued and how many the server shed under pressure
// (with Replication > 1, from the first replica that accepted). Note an
// ingest retry after an ambiguous transport failure can deliver values
// twice; the estimator tolerates duplicates statistically, but
// exactly-once is not promised.
func (c *Client) Ingest(ctx context.Context, tenant, attr string, values []float64, opts ...CallOption) (IngestResult, error) {
	co := c.callOpts(opts)
	var out IngestResult
	var once sync.Once
	err := c.doAll(ctx, co, tenant, func(ctx context.Context, meta wire.Meta, t transport) error {
		res, err := t.ingest(ctx, meta, tenant, attr, values)
		if err == nil {
			once.Do(func() { out = res })
		}
		return err
	})
	return out, err
}

// CreateAttr registers an attribute (idempotent: re-creating with the
// same configuration succeeds; a different configuration is
// ErrConflict). With Replication > 1 the registration fans out to the
// tenant's whole replica set.
func (c *Client) CreateAttr(ctx context.Context, tenant, attr string, cfg AttrConfig, opts ...CallOption) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("client: encode attr config: %w", err)
	}
	co := c.callOpts(opts)
	return c.doAll(ctx, co, tenant, func(ctx context.Context, meta wire.Meta, t transport) error {
		return t.createAttr(ctx, meta, tenant, attr, cfgJSON)
	})
}

// Ping round-trips the transport (wire: an OpPing frame; JSON: the
// health endpoint). A nil return means a server answered — with a
// fleet, the replica the empty routing key hashes to, failing over like
// any read.
func (c *Client) Ping(ctx context.Context, opts ...CallOption) error {
	co := c.callOpts(opts)
	return c.do(ctx, co, "", func(ctx context.Context, meta wire.Meta, t transport) error {
		return t.ping(ctx, meta)
	})
}

// FetchSnapshot retrieves the serving replica's full catalog snapshot —
// the deterministic SELS envelope SaveSnapshot writes, byte-identical
// to the server's own save. It is the transfer half of `selestd -join`:
// a booting replica fetches a peer's snapshot and recovers from it
// before accepting traffic. The envelope self-verifies (CRC32 manifest
// + per-entry checks), so a torn transfer fails recovery rather than
// booting a partial replica.
func (c *Client) FetchSnapshot(ctx context.Context, opts ...CallOption) ([]byte, error) {
	co := c.callOpts(opts)
	var out []byte
	err := c.do(ctx, co, "", func(ctx context.Context, meta wire.Meta, t transport) error {
		b, err := t.snapshotFetch(ctx, meta)
		if err == nil {
			out = b
		}
		return err
	})
	return out, err
}

func (c *Client) callOpts(opts []CallOption) callOptions {
	co := callOptions{maxRetries: -1}
	for _, o := range opts {
		o(&co)
	}
	return co
}

// resolve folds per-call overrides into the attempt budget, retry cap,
// and the wire metadata announced to the server.
func (c *Client) resolve(co callOptions) (time.Duration, int, wire.Meta) {
	budget := co.timeout
	if budget <= 0 {
		budget = c.opts.RequestTimeout
	}
	maxRetries := co.maxRetries
	if maxRetries < 0 {
		maxRetries = c.opts.MaxRetries
	}
	return budget, maxRetries, wire.Meta{TimeoutMs: uint32(budget / time.Millisecond)}
}

func retryMeta(meta wire.Meta, n int) wire.Meta {
	if n > 255 {
		meta.Retry = 255
	} else {
		meta.Retry = uint8(n)
	}
	return meta
}

// do is the read-path retry loop: per-attempt deadline, typed-error
// classification, full-jitter backoff stretched by server throttle
// hints, all bounded by the caller's context. Attempts route over
// tenant's replica preference list: a connection- or 5xx-class failure
// advances to the next ring replica (and a connection failure marks the
// replica down for everyone); an over-quota refusal stays put so the
// server's Retry-After hint is honored where the tenant's bucket lives.
func (c *Client) do(ctx context.Context, co callOptions, tenant string, attempt func(ctx context.Context, meta wire.Meta, t transport) error) error {
	c.requests.Add(1)
	budget, maxRetries, meta := c.resolve(co)
	pref := c.routeFor(tenant)
	fo := 0
	for n := 0; ; n++ {
		if n > 0 {
			c.retries.Add(1)
			meta = retryMeta(meta, n)
		}
		rep := pick(pref, fo)
		actx, cancel := context.WithTimeout(ctx, budget)
		err := attempt(actx, meta, rep.t)
		cancel()
		if err == nil {
			rep.markUp()
			return nil
		}
		if connErr(err) {
			if !rep.down.Swap(true) {
				c.ejected.Add(1)
			}
		}
		if len(pref) > 1 && failsOver(err) {
			fo++
			c.failovers.Add(1)
		}
		if n >= maxRetries || !retryable(err) {
			return err
		}
		// The parent context ending is final even when the attempt error
		// itself looks retryable.
		if ctx.Err() != nil {
			return err
		}
		if serr := c.sleepBackoff(ctx, n, err); serr != nil {
			return err
		}
	}
}

// doAll is the write-path loop: the attempt fans out to every replica
// in tenant's preference list, and the call succeeds when at least one
// accepts (best-effort replication — DESIGN.md §15 spells out why a
// missed secondary is acceptable: replicas are statistical estimators,
// and a rejoining replica resyncs wholesale by snapshot). Down replicas
// are skipped when the write can land elsewhere; with nothing accepted
// yet, retryable failures burn the shared retry budget round by round.
func (c *Client) doAll(ctx context.Context, co callOptions, tenant string, attempt func(ctx context.Context, meta wire.Meta, t transport) error) error {
	c.requests.Add(1)
	budget, maxRetries, meta := c.resolve(co)
	pending := append([]*replica(nil), c.routeFor(tenant)...)
	accepted := 0
	var lastErr error
	for n := 0; ; n++ {
		if n > 0 {
			c.retries.Add(1)
			meta = retryMeta(meta, n)
		}
		anyUp := false
		for _, rep := range pending {
			if !rep.down.Load() {
				anyUp = true
				break
			}
		}
		var still []*replica
		for _, rep := range pending {
			if rep.down.Load() && (accepted > 0 || anyUp) {
				// A dead replica with the write landed (or landable)
				// elsewhere is not worth an attempt's latency.
				continue
			}
			actx, cancel := context.WithTimeout(ctx, budget)
			err := attempt(actx, meta, rep.t)
			cancel()
			if err == nil {
				accepted++
				rep.markUp()
				continue
			}
			if connErr(err) {
				if !rep.down.Swap(true) {
					c.ejected.Add(1)
				}
			}
			lastErr = err
			if retryable(err) {
				still = append(still, rep)
			}
		}
		if accepted > 0 {
			return nil
		}
		if len(still) == 0 || n >= maxRetries || ctx.Err() != nil {
			return lastErr
		}
		pending = still
		if serr := c.sleepBackoff(ctx, n, lastErr); serr != nil {
			return lastErr
		}
	}
}

// retryable classifies one attempt's failure. Server-reported errors
// retry only when the server might answer differently next time
// (throttled, draining, timed out, internal); caller mistakes never do.
// Anything else is a transport-level failure — the connection is torn
// down, so a retry dials fresh.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case CodeOverQuota, CodeDraining, CodeTimeout, CodeInternal:
			return true
		}
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// sleepBackoff waits the full-jitter exponential delay for retry n:
// U(0, base·2ⁿ) capped at RetryMaxDelay, raised to the server's
// throttle hint when one came back (retrying before the hint would just
// be refused again).
func (c *Client) sleepBackoff(ctx context.Context, n int, err error) error {
	ceil := c.opts.RetryBaseDelay << uint(n)
	if ceil > c.opts.RetryMaxDelay || ceil <= 0 {
		ceil = c.opts.RetryMaxDelay
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		hint := ae.RetryAfter
		if hint > c.opts.RetryMaxDelay {
			hint = c.opts.RetryMaxDelay
		}
		if hint > d {
			d = hint
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
