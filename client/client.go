// Package client is the native Go client for the selest estimator
// service. One typed API rides two transports — the selestwire binary
// protocol (pipelined persistent TCP, the default) and HTTP/JSON — with
// identical semantics: the same request options, the same typed errors
// (errors.Is against the re-exported sentinels works on either), and the
// same deadline budget announced to the server so its degradation ladder
// sees what the client will actually wait for.
//
// Every call runs a bounded retry loop with full-jitter exponential
// backoff. Server throttle hints (Retry-After / RetryAfterMs) stretch
// the backoff; non-retryable failures (bad request, not found, conflict)
// return immediately.
//
//	c, err := client.New(client.Options{Addr: "127.0.0.1:7654"})
//	...
//	res, err := c.Estimate(ctx, "tenant", "latency", 0.1, 0.9,
//	    client.WithTimeout(50*time.Millisecond))
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"selest/internal/wire"
)

// transport is the seam between the typed API and a wire format. Both
// implementations speak in the client's public types; meta carries the
// per-attempt deadline and retry number to the server.
type transport interface {
	estimate(ctx context.Context, meta wire.Meta, tenant, attr string, lo, hi float64, fresh bool) (Result, error)
	estimateBatch(ctx context.Context, meta wire.Meta, tenant, attr string, queries []Range, fresh bool) ([]Result, error)
	ingest(ctx context.Context, meta wire.Meta, tenant, attr string, values []float64) (IngestResult, error)
	createAttr(ctx context.Context, meta wire.Meta, tenant, attr string, cfgJSON []byte) error
	ping(ctx context.Context, meta wire.Meta) error
	close() error
}

// Client is a selest service client. It is safe for concurrent use; one
// Client per target service is the intended shape (the wire transport
// multiplexes all goroutines over its connection pool).
type Client struct {
	opts Options
	t    transport

	requests atomic.Uint64
	retries  atomic.Uint64
}

// Stats is a point-in-time snapshot of client-side counters.
type Stats struct {
	// Requests counts API calls (not attempts).
	Requests uint64 `json:"requests"`
	// Retries counts re-attempts after a retryable failure.
	Retries uint64 `json:"retries"`
	// Dials counts connections established (wire transport only).
	Dials uint64 `json:"dials"`
}

// New validates opts and builds a client. No connection is made until
// the first call (the wire pool dials lazily), so New succeeds even if
// the server is not up yet.
func New(opts Options) (*Client, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	c := &Client{opts: opts}
	switch opts.Protocol {
	case ProtoWire:
		c.t = newWireTransport(opts)
	case ProtoJSON:
		c.t = newJSONTransport(opts)
	}
	return c, nil
}

// Close releases the client's connections. In-flight calls fail.
func (c *Client) Close() error { return c.t.close() }

// Stats reports the client's counters.
func (c *Client) Stats() Stats {
	s := Stats{Requests: c.requests.Load(), Retries: c.retries.Load()}
	if wt, ok := c.t.(*wireTransport); ok {
		s.Dials = wt.dials.Load()
	}
	return s
}

// Estimate answers one range query [lo, hi] on tenant's attr.
func (c *Client) Estimate(ctx context.Context, tenant, attr string, lo, hi float64, opts ...CallOption) (Result, error) {
	co := c.callOpts(opts)
	var out Result
	err := c.do(ctx, co, func(ctx context.Context, meta wire.Meta) error {
		res, err := c.t.estimate(ctx, meta, tenant, attr, lo, hi, co.fresh)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// EstimateBatch answers many queries against one attribute in a single
// round trip.
func (c *Client) EstimateBatch(ctx context.Context, tenant, attr string, queries []Range, opts ...CallOption) ([]Result, error) {
	co := c.callOpts(opts)
	var out []Result
	err := c.do(ctx, co, func(ctx context.Context, meta wire.Meta) error {
		res, err := c.t.estimateBatch(ctx, meta, tenant, attr, queries, co.fresh)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// Ingest enqueues stream values on tenant's attr. The result reports
// how many were queued and how many the server shed under pressure.
// Note an ingest retry after an ambiguous transport failure can deliver
// values twice; the estimator tolerates duplicates statistically, but
// exactly-once is not promised.
func (c *Client) Ingest(ctx context.Context, tenant, attr string, values []float64, opts ...CallOption) (IngestResult, error) {
	co := c.callOpts(opts)
	var out IngestResult
	err := c.do(ctx, co, func(ctx context.Context, meta wire.Meta) error {
		res, err := c.t.ingest(ctx, meta, tenant, attr, values)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// CreateAttr registers an attribute (idempotent: re-creating with the
// same configuration succeeds; a different configuration is
// ErrConflict).
func (c *Client) CreateAttr(ctx context.Context, tenant, attr string, cfg AttrConfig, opts ...CallOption) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("client: encode attr config: %w", err)
	}
	co := c.callOpts(opts)
	return c.do(ctx, co, func(ctx context.Context, meta wire.Meta) error {
		return c.t.createAttr(ctx, meta, tenant, attr, cfgJSON)
	})
}

// Ping round-trips the transport (wire: an OpPing frame; JSON: the
// health endpoint). A nil return means the server answered.
func (c *Client) Ping(ctx context.Context, opts ...CallOption) error {
	co := c.callOpts(opts)
	return c.do(ctx, co, func(ctx context.Context, meta wire.Meta) error {
		return c.t.ping(ctx, meta)
	})
}

func (c *Client) callOpts(opts []CallOption) callOptions {
	co := callOptions{maxRetries: -1}
	for _, o := range opts {
		o(&co)
	}
	return co
}

// do is the shared retry loop: per-attempt deadline, typed-error
// classification, full-jitter backoff stretched by server throttle
// hints, all bounded by the caller's context.
func (c *Client) do(ctx context.Context, co callOptions, attempt func(ctx context.Context, meta wire.Meta) error) error {
	c.requests.Add(1)
	budget := co.timeout
	if budget <= 0 {
		budget = c.opts.RequestTimeout
	}
	maxRetries := co.maxRetries
	if maxRetries < 0 {
		maxRetries = c.opts.MaxRetries
	}
	meta := wire.Meta{TimeoutMs: uint32(budget / time.Millisecond)}
	for n := 0; ; n++ {
		if n > 0 {
			c.retries.Add(1)
			if n > 255 {
				meta.Retry = 255
			} else {
				meta.Retry = uint8(n)
			}
		}
		actx, cancel := context.WithTimeout(ctx, budget)
		err := attempt(actx, meta)
		cancel()
		if err == nil {
			return nil
		}
		if n >= maxRetries || !retryable(err) {
			return err
		}
		// The parent context ending is final even when the attempt error
		// itself looks retryable.
		if ctx.Err() != nil {
			return err
		}
		if serr := c.sleepBackoff(ctx, n, err); serr != nil {
			return err
		}
	}
}

// retryable classifies one attempt's failure. Server-reported errors
// retry only when the server might answer differently next time
// (throttled, draining, timed out, internal); caller mistakes never do.
// Anything else is a transport-level failure — the connection is torn
// down, so a retry dials fresh.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case CodeOverQuota, CodeDraining, CodeTimeout, CodeInternal:
			return true
		}
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// sleepBackoff waits the full-jitter exponential delay for retry n:
// U(0, base·2ⁿ) capped at RetryMaxDelay, raised to the server's
// throttle hint when one came back (retrying before the hint would just
// be refused again).
func (c *Client) sleepBackoff(ctx context.Context, n int, err error) error {
	ceil := c.opts.RetryBaseDelay << uint(n)
	if ceil > c.opts.RetryMaxDelay || ceil <= 0 {
		ceil = c.opts.RetryMaxDelay
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		hint := ae.RetryAfter
		if hint > c.opts.RetryMaxDelay {
			hint = c.opts.RetryMaxDelay
		}
		if hint > d {
			d = hint
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
