package client_test

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selest/client"
	"selest/internal/server"
	"selest/internal/wire"
)

// testService boots one in-process server with both listeners and
// returns a client factory, so every test runs the same assertions over
// both transports.
type testService struct {
	srv      *server.Server
	wireAddr string
	jsonAddr string
	ws       *server.WireServer
	hs       *httptest.Server
}

func startService(t *testing.T, opts server.Options) *testService {
	t.Helper()
	srv, err := server.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := srv.NewWireServer()
	go func() { _ = ws.Serve(ln) }()
	hs := httptest.NewServer(srv.Handler())
	ts := &testService{srv: srv, wireAddr: ln.Addr().String(), jsonAddr: hs.Listener.Addr().String(), ws: ws, hs: hs}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ts.ws.Shutdown(ctx)
		ts.hs.Close()
		_ = ts.srv.Close(ctx, "")
	})
	return ts
}

func (ts *testService) client(t *testing.T, proto client.Protocol, mutate ...func(*client.Options)) *client.Client {
	t.Helper()
	opts := client.Options{Protocol: proto, HealthCheckEvery: -1}
	switch proto {
	case client.ProtoWire:
		opts.Addr = ts.wireAddr
	case client.ProtoJSON:
		opts.Addr = ts.jsonAddr
	}
	for _, m := range mutate {
		m(&opts)
	}
	c, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func protocols() []client.Protocol {
	return []client.Protocol{client.ProtoWire, client.ProtoJSON}
}

func testCfg() client.AttrConfig {
	return client.AttrConfig{DomainLo: 0, DomainHi: 1, ReservoirSize: 64, RefitEvery: 64, Shards: 1, Seed: 7}
}

// TestClientParity runs the full API surface over both transports and
// pins that results and typed errors are identical — the unified error
// surface the redesign promises.
func TestClientParity(t *testing.T) {
	ts := startService(t, server.Options{})
	ctx := context.Background()

	type answer struct {
		res   client.Result
		batch []client.Result
	}
	answers := map[client.Protocol]answer{}

	for _, proto := range protocols() {
		t.Run(string(proto), func(t *testing.T) {
			c := ts.client(t, proto)
			tenant := "acme-" + string(proto)

			if err := c.Ping(ctx); err != nil {
				t.Fatalf("ping: %v", err)
			}
			if err := c.CreateAttr(ctx, tenant, "price", testCfg()); err != nil {
				t.Fatalf("create: %v", err)
			}
			// Idempotent re-create succeeds; a different config conflicts.
			if err := c.CreateAttr(ctx, tenant, "price", testCfg()); err != nil {
				t.Fatalf("re-create: %v", err)
			}
			other := testCfg()
			other.DomainHi = 2
			if err := c.CreateAttr(ctx, tenant, "price", other); !errors.Is(err, client.ErrConflict) {
				t.Fatalf("conflict: got %v", err)
			}

			vals := make([]float64, 256)
			for i := range vals {
				vals[i] = (float64(i) + 0.5) / 256
			}
			ing, err := c.Ingest(ctx, tenant, "price", vals)
			if err != nil {
				t.Fatalf("ingest: %v", err)
			}
			if ing.Queued != 256 || ing.Shed != 0 {
				t.Fatalf("ingest result: %+v", ing)
			}

			// fresh flushes the queue into a refit, so the answer is
			// deterministic without polling.
			res, err := c.Estimate(ctx, tenant, "price", 0.25, 0.75, client.WithFresh())
			if err != nil {
				t.Fatalf("estimate: %v", err)
			}
			if res.Selectivity <= 0 || res.Selectivity > 1 || res.Rung == "" {
				t.Fatalf("estimate result: %+v", res)
			}

			batch, err := c.EstimateBatch(ctx, tenant, "price", []client.Range{{Lo: 0, Hi: 0.5}, {Lo: 0.5, Hi: 1}})
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			if len(batch) != 2 {
				t.Fatalf("batch results: %+v", batch)
			}

			// Typed errors: unknown attribute, malformed range.
			if _, err := c.Estimate(ctx, tenant, "nope", 0, 1); !errors.Is(err, client.ErrNotFound) {
				t.Fatalf("not found: got %v", err)
			}
			var ae *client.APIError
			if _, err := c.Estimate(ctx, tenant, "nope", 0, 1); !errors.As(err, &ae) || ae.Code != client.CodeNotFound {
				t.Fatalf("not found APIError: got %v", err)
			}
			if _, err := c.Estimate(ctx, tenant, "price", 0.9, 0.1); !errors.Is(err, client.ErrBadRequest) {
				t.Fatalf("bad range: got %v", err)
			}
			if _, err := c.Ingest(ctx, tenant, "price", nil); !errors.Is(err, client.ErrBadRequest) {
				t.Fatalf("empty ingest: got %v", err)
			}

			answers[proto] = answer{res: res, batch: batch}
		})
	}

	// Both transports ingested the same 256 values into per-tenant
	// attributes with the same seed: the answers must agree bit-for-bit.
	w, j := answers[client.ProtoWire], answers[client.ProtoJSON]
	if w.res != j.res {
		t.Errorf("estimate parity: wire %+v json %+v", w.res, j.res)
	}
	for i := range w.batch {
		if w.batch[i] != j.batch[i] {
			t.Errorf("batch[%d] parity: wire %+v json %+v", i, w.batch[i], j.batch[i])
		}
	}
}

// TestClientOverQuota pins the throttle path on both transports: the
// refusal is ErrOverQuota, the APIError carries the server's hint, and
// WithMaxRetries(0) surfaces it without burning the retry budget.
func TestClientOverQuota(t *testing.T) {
	ts := startService(t, server.Options{QuotaRate: 0.001, QuotaBurst: 1})
	ctx := context.Background()
	for _, proto := range protocols() {
		t.Run(string(proto), func(t *testing.T) {
			c := ts.client(t, proto)
			tenant := "quota-" + string(proto)
			// Creating the tenant is admitted free (the tenant does not
			// exist yet); the burst of 1 is then spent by one estimate and
			// the next call must be refused with a hint.
			if err := c.CreateAttr(ctx, tenant, "a", testCfg(), client.WithMaxRetries(0)); err != nil {
				t.Fatalf("create: %v", err)
			}
			_, _ = c.Estimate(ctx, tenant, "a", 0, 1, client.WithMaxRetries(0))
			var ae *client.APIError
			_, err := c.Estimate(ctx, tenant, "a", 0, 1, client.WithMaxRetries(0))
			if !errors.Is(err, client.ErrOverQuota) {
				t.Fatalf("over quota: got %v", err)
			}
			if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
				t.Fatalf("expected retry-after hint, got %v", err)
			}
		})
	}
}

// TestClientRetriesDraining pins the bounded retry loop: a draining
// server is a retryable refusal, so a capped retry budget is spent and
// the typed error still comes back.
func TestClientRetriesDraining(t *testing.T) {
	ts := startService(t, server.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	closeCtx, closeCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer closeCancel()
	_ = ts.srv.Close(closeCtx, "")

	for _, proto := range protocols() {
		t.Run(string(proto), func(t *testing.T) {
			c := ts.client(t, proto, func(o *client.Options) {
				o.MaxRetries = 2
				o.RetryBaseDelay = time.Millisecond
				o.RetryMaxDelay = 2 * time.Millisecond
			})
			before := c.Stats()
			_, err := c.Estimate(ctx, "t", "a", 0, 1)
			if !errors.Is(err, client.ErrDraining) {
				t.Fatalf("draining: got %v", err)
			}
			after := c.Stats()
			if got := after.Retries - before.Retries; got != 2 {
				t.Fatalf("retries spent: got %d want 2", got)
			}
		})
	}
}

// TestClientPipelining drives many concurrent calls through a 1-conn
// wire pool: every call multiplexes onto the same socket and every
// response finds its caller by request id.
func TestClientPipelining(t *testing.T) {
	ts := startService(t, server.Options{})
	ctx := context.Background()
	c := ts.client(t, client.ProtoWire, func(o *client.Options) { o.Conns = 1 })
	if err := c.CreateAttr(ctx, "t", "a", testCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ctx, "t", "a", []float64{0.1, 0.5, 0.9}); err != nil {
		t.Fatal(err)
	}

	const workers, calls = 8, 50
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := c.Estimate(ctx, "t", "a", 0.2, 0.8); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if d := c.Stats().Dials; d != 1 {
		t.Fatalf("dials: got %d want 1 (pipelined pool)", d)
	}
}

// TestClientRedialsDeadConn kills the server side of a live connection
// and pins that the retry loop dials a fresh one instead of failing the
// caller.
func TestClientRedialsDeadConn(t *testing.T) {
	ts := startService(t, server.Options{})
	ctx := context.Background()
	c := ts.client(t, client.ProtoWire, func(o *client.Options) {
		o.Conns = 1
		o.RetryBaseDelay = time.Millisecond
	})
	if err := c.CreateAttr(ctx, "t", "a", testCfg()); err != nil {
		t.Fatal(err)
	}
	if d := c.Stats().Dials; d != 1 {
		t.Fatalf("dials before: %d", d)
	}
	// Tear down every server-side connection; the client's next call
	// sees a broken socket, retries, and redials.
	ts.ws.CloseConns()
	if _, err := c.Estimate(ctx, "t", "a", 0, 1); err != nil {
		t.Fatalf("estimate after conn kill: %v", err)
	}
	if d := c.Stats().Dials; d != 2 {
		t.Fatalf("dials after: got %d want 2", d)
	}
}

// TestClientHealthCheck pins the background checker against a peer that
// goes silent without closing the socket — the one failure mode the
// read loop cannot see. The checker's ping must time out, tear the
// connection down, and let the next call dial fresh.
func TestClientHealthCheck(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var pings atomic.Int64
	var respond atomic.Bool
	respond.Store(true)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var buf []byte
				for {
					var f wire.Frame
					f, buf, err = wire.ReadFrame(c, wire.MaxPayload, buf)
					if err != nil {
						return
					}
					if f.Op == wire.OpPing {
						pings.Add(1)
						if respond.Load() {
							_ = wire.WriteFrame(c, wire.Frame{Op: f.Op | wire.RespFlag, ID: f.ID})
						}
					}
				}
			}(c)
		}
	}()

	ctx := context.Background()
	c, err := client.New(client.Options{
		Addr:             ln.Addr().String(),
		Conns:            1,
		HealthCheckEvery: 20 * time.Millisecond,
		DialTimeout:      100 * time.Millisecond,
		RequestTimeout:   100 * time.Millisecond,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	// The checker pings the idle connection on its own cadence.
	waitFor(t, "background pings", func() bool { return pings.Load() >= 3 })

	// Peer goes silent: the checker's ping times out, the connection is
	// torn down, and the next call succeeds over a fresh dial.
	respond.Store(false)
	unanswered := pings.Load()
	waitFor(t, "an unanswered health ping", func() bool { return pings.Load() > unanswered })
	respond.Store(true)
	waitFor(t, "redial after silent peer", func() bool {
		return c.Ping(ctx) == nil && c.Stats().Dials >= 2
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientOptionValidation pins typed construction failures.
func TestClientOptionValidation(t *testing.T) {
	if _, err := client.New(client.Options{}); err == nil {
		t.Fatal("missing Addr accepted")
	}
	if _, err := client.New(client.Options{Addr: "x", Protocol: "grpc"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := client.New(client.Options{Addr: "x", Conns: -1}); err == nil {
		t.Fatal("negative Conns accepted")
	}
	if _, err := client.ParseProtocol("wire"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ParseProtocol("carrier-pigeon"); err == nil {
		t.Fatal("bad protocol name accepted")
	}
}
