// The selestwire transport: a pool of persistent TCP connections, each
// pipelining many in-flight requests matched to responses by request id.
// Connections dial lazily and die loudly (a read error fails every
// pending call on that connection so the retry loop redials fresh). The
// client's health loop calls healthCheck each cycle, which pings idle
// connections so a silently dead socket is discovered before a caller
// inherits it.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selest/internal/wire"
)

type wireTransport struct {
	opts  Options
	slots []wireSlot
	next  atomic.Uint64
	dials atomic.Uint64

	closed atomic.Bool
}

// wireSlot is one pool position: a lazily-dialed connection plus the
// mutex that serialises redials (so a thundering herd after a failure
// makes one dial, not Conns×callers).
type wireSlot struct {
	mu   sync.Mutex
	conn atomic.Pointer[wireConn]
}

func newWireTransport(opts Options) *wireTransport {
	return &wireTransport{
		opts:  opts,
		slots: make([]wireSlot, opts.Conns),
	}
}

func (t *wireTransport) close() error {
	if t.closed.Swap(true) {
		return nil
	}
	for i := range t.slots {
		if wc := t.slots[i].conn.Load(); wc != nil {
			wc.fail(errClosed)
		}
	}
	return nil
}

var errClosed = fmt.Errorf("client: closed")

// payloadPool recycles request-encode and response-copy buffers across
// calls — the client-side half of the wire fast path's zero-alloc frame
// lifecycle. Buffers travel as *[]byte so Get/Put do not box a slice
// header per call; every success path releases its buffer right after
// decoding (decoded messages copy what they keep, so nothing aliases a
// returned buffer).
var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

func getPayloadBuf() *[]byte { return payloadPool.Get().(*[]byte) }

func putPayloadBuf(b *[]byte) {
	if b != nil {
		payloadPool.Put(b)
	}
}

// wireResp is a routed response frame: the opcode plus its payload in a
// pooled buffer the waiter releases after decoding.
type wireResp struct {
	op  wire.Op
	buf *[]byte
}

// conn returns a live connection from the pool, dialing the slot if its
// connection is nil or dead.
func (t *wireTransport) conn(ctx context.Context) (*wireConn, error) {
	if t.closed.Load() {
		return nil, errClosed
	}
	s := &t.slots[t.next.Add(1)%uint64(len(t.slots))]
	if wc := s.conn.Load(); wc != nil && !wc.dead.Load() {
		return wc, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if wc := s.conn.Load(); wc != nil && !wc.dead.Load() {
		return wc, nil
	}
	if t.closed.Load() {
		return nil, errClosed
	}
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", t.opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", t.opts.Addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	t.dials.Add(1)
	wc := &wireConn{
		c:          nc,
		bw:         bufio.NewWriterSize(nc, 64<<10),
		pending:    map[uint64]chan wireResp{},
		maxPayload: uint32(t.opts.MaxPayload),
	}
	wc.touch()
	go wc.readLoop()
	s.conn.Store(wc)
	return wc, nil
}

// healthCheck is one probe cycle, driven by the client's health loop.
// Pooled connections idle for a full interval are pinged; a failed ping
// tears the connection down so the next call redials instead of timing
// out on a dead socket. A recently-used live connection counts as
// healthy without a ping. With no live connection at all, the probe
// dial-pings — that round trip is what re-admits a recovered replica to
// routing.
func (t *wireTransport) healthCheck(ctx context.Context) error {
	if t.closed.Load() {
		return errClosed
	}
	idleBefore := time.Now().Add(-t.opts.HealthCheckEvery).UnixNano()
	live := false
	for i := range t.slots {
		wc := t.slots[i].conn.Load()
		if wc == nil || wc.dead.Load() {
			continue
		}
		if wc.lastUsed.Load() > idleBefore {
			live = true
			continue
		}
		_, rp, err := wc.roundTrip(ctx, wire.OpPing, wire.PingReq{}.Append(nil))
		putPayloadBuf(rp)
		if err != nil {
			wc.fail(fmt.Errorf("client: health check: %w", err))
			continue
		}
		live = true
	}
	if live {
		return nil
	}
	return t.ping(ctx, wire.Meta{})
}

// roundTrip sends one request on any pooled connection and returns the
// response payload in a pooled buffer the caller must release with
// putPayloadBuf after decoding, converting error frames to *APIError.
func (t *wireTransport) roundTrip(ctx context.Context, op wire.Op, payload []byte) (*[]byte, error) {
	wc, err := t.conn(ctx)
	if err != nil {
		return nil, err
	}
	rop, rp, err := wc.roundTrip(ctx, op, payload)
	if err != nil {
		return nil, err
	}
	switch rop {
	case op | wire.RespFlag:
		return rp, nil
	case wire.OpError:
		er, derr := wire.DecodeErrorRes(*rp)
		putPayloadBuf(rp)
		if derr != nil {
			wc.fail(derr)
			return nil, derr
		}
		return nil, &APIError{
			Code:       Code(er.Code),
			Message:    er.Message,
			RetryAfter: time.Duration(er.RetryAfterMs) * time.Millisecond,
		}
	default:
		putPayloadBuf(rp)
		err := fmt.Errorf("%w: response op %s to request %s", wire.ErrProtocol, rop, op)
		wc.fail(err)
		return nil, err
	}
}

func (t *wireTransport) estimate(ctx context.Context, meta wire.Meta, tenant, attr string, lo, hi float64, fresh bool) (Result, error) {
	req := wire.EstimateReq{Meta: meta, Tenant: tenant, Attr: attr, Lo: lo, Hi: hi, Fresh: fresh}
	pb := getPayloadBuf()
	*pb = req.Append((*pb)[:0])
	rp, err := t.roundTrip(ctx, wire.OpEstimate, *pb)
	putPayloadBuf(pb)
	if err != nil {
		return Result{}, err
	}
	res, err := wire.DecodeEstimateRes(*rp)
	putPayloadBuf(rp)
	if err != nil {
		return Result{}, err
	}
	return resultFromWire(res), nil
}

func (t *wireTransport) estimateBatch(ctx context.Context, meta wire.Meta, tenant, attr string, queries []Range, fresh bool) ([]Result, error) {
	req := wire.EstimateBatchReq{Meta: meta, Tenant: tenant, Attr: attr, Fresh: fresh, Queries: make([]wire.Range, len(queries))}
	for i, q := range queries {
		req.Queries[i] = wire.Range{Lo: q.Lo, Hi: q.Hi}
	}
	pb := getPayloadBuf()
	*pb = req.Append((*pb)[:0])
	rp, err := t.roundTrip(ctx, wire.OpEstimateBatch, *pb)
	putPayloadBuf(pb)
	if err != nil {
		return nil, err
	}
	res, err := wire.DecodeEstimateBatchRes(*rp)
	putPayloadBuf(rp)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(res.Results))
	for i, r := range res.Results {
		out[i] = resultFromWire(r)
	}
	return out, nil
}

func (t *wireTransport) ingest(ctx context.Context, meta wire.Meta, tenant, attr string, values []float64) (IngestResult, error) {
	req := wire.IngestReq{Meta: meta, Tenant: tenant, Attr: attr, Values: values}
	pb := getPayloadBuf()
	*pb = req.Append((*pb)[:0])
	rp, err := t.roundTrip(ctx, wire.OpIngest, *pb)
	putPayloadBuf(pb)
	if err != nil {
		return IngestResult{}, err
	}
	res, err := wire.DecodeIngestRes(*rp)
	putPayloadBuf(rp)
	if err != nil {
		return IngestResult{}, err
	}
	return IngestResult{Queued: int(res.Queued), Shed: int(res.Shed)}, nil
}

func (t *wireTransport) createAttr(ctx context.Context, meta wire.Meta, tenant, attr string, cfgJSON []byte) error {
	req := wire.CreateAttrReq{Meta: meta, Tenant: tenant, Attr: attr, Config: cfgJSON}
	rp, err := t.roundTrip(ctx, wire.OpCreateAttr, req.Append(nil))
	putPayloadBuf(rp)
	return err
}

func (t *wireTransport) ping(ctx context.Context, meta wire.Meta) error {
	pb := getPayloadBuf()
	*pb = wire.PingReq{Meta: meta}.Append((*pb)[:0])
	rp, err := t.roundTrip(ctx, wire.OpPing, *pb)
	putPayloadBuf(pb)
	putPayloadBuf(rp)
	return err
}

// snapshotFetch pulls the server's full snapshot envelope. The response
// payload is the raw SELS byte stream — no wrapper to decode — copied
// out of the pooled buffer because the caller keeps it.
func (t *wireTransport) snapshotFetch(ctx context.Context, meta wire.Meta) ([]byte, error) {
	rp, err := t.roundTrip(ctx, wire.OpSnapshotFetch, wire.SnapshotFetchReq{Meta: meta}.Append(nil))
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), *rp...)
	putPayloadBuf(rp)
	return out, nil
}

func resultFromWire(r wire.EstimateRes) Result {
	return Result{
		Selectivity: r.Selectivity,
		Rows:        r.Rows,
		Rung:        r.Rung,
		Generation:  r.Generation,
		Degraded:    r.Degraded,
	}
}

// wireConn is one pipelined connection: callers register a response
// channel under a fresh request id, write their frame (serialised by
// wmu), and wait; the reader goroutine routes response frames to their
// channels by id. Any read or write error fails the whole connection —
// pending channels close, the pool redials on next use.
type wireConn struct {
	c  net.Conn
	bw *bufio.Writer

	wmu  sync.Mutex // serialises write+flush
	wbuf []byte     // frame-encode scratch, owned by wmu

	mu      sync.Mutex
	pending map[uint64]chan wireResp
	isDead  bool
	err     error

	nextID     atomic.Uint64
	dead       atomic.Bool
	lastUsed   atomic.Int64
	maxPayload uint32
}

func (wc *wireConn) touch() { wc.lastUsed.Store(time.Now().UnixNano()) }

// fail marks the connection dead, closes the socket, and closes every
// pending response channel (waiters see a conn-broken error).
func (wc *wireConn) fail(err error) {
	wc.mu.Lock()
	if wc.isDead {
		wc.mu.Unlock()
		return
	}
	wc.isDead = true
	wc.err = err
	wc.dead.Store(true)
	pending := wc.pending
	wc.pending = nil
	wc.mu.Unlock()
	_ = wc.c.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// readLoop routes response frames to their waiters until the stream
// errors (peer hang-up, corruption, or our own Close).
func (wc *wireConn) readLoop() {
	br := bufio.NewReaderSize(wc.c, 64<<10)
	var buf []byte
	for {
		fr, b, err := wire.ReadFrame(br, wc.maxPayload, buf)
		if err != nil {
			wc.fail(fmt.Errorf("client: connection read: %w", err))
			return
		}
		buf = b
		wc.mu.Lock()
		ch, ok := wc.pending[fr.ID]
		if ok {
			delete(wc.pending, fr.ID)
		}
		wc.mu.Unlock()
		if ok {
			// The payload aliases the read buffer; copy into a pooled
			// buffer before handing it across the channel (the waiter
			// releases it after decoding).
			pb := getPayloadBuf()
			*pb = append((*pb)[:0], fr.Payload...)
			ch <- wireResp{op: fr.Op, buf: pb}
		}
		// An unmatched id is a response whose waiter gave up (context
		// cancel); drop it.
	}
}

// roundTrip registers a waiter, writes the frame through the per-conn
// encode scratch (no per-call frame allocation), and waits. The returned
// payload buffer is pooled — the caller releases it after decoding.
func (wc *wireConn) roundTrip(ctx context.Context, op wire.Op, payload []byte) (wire.Op, *[]byte, error) {
	wc.touch()
	if len(payload) > wire.MaxPayload {
		return 0, nil, wire.ErrTooLarge
	}
	id := wc.nextID.Add(1)
	ch := make(chan wireResp, 1)
	wc.mu.Lock()
	if wc.isDead {
		err := wc.err
		wc.mu.Unlock()
		return 0, nil, err
	}
	wc.pending[id] = ch
	wc.mu.Unlock()

	wc.wmu.Lock()
	wc.wbuf = wire.AppendFrame(wc.wbuf[:0], wire.Frame{Op: op, ID: id, Payload: payload})
	_, err := wc.bw.Write(wc.wbuf)
	if err == nil {
		err = wc.bw.Flush()
	}
	wc.wmu.Unlock()
	if err != nil {
		wc.forget(id)
		wc.fail(fmt.Errorf("client: connection write: %w", err))
		return 0, nil, err
	}

	select {
	case r, ok := <-ch:
		if !ok {
			wc.mu.Lock()
			err := wc.err
			wc.mu.Unlock()
			return 0, nil, err
		}
		wc.touch()
		return r.op, r.buf, nil
	case <-ctx.Done():
		wc.forget(id)
		return 0, nil, ctx.Err()
	}
}

// forget abandons a pending request (its response, if it ever arrives,
// is dropped by readLoop).
func (wc *wireConn) forget(id uint64) {
	wc.mu.Lock()
	if wc.pending != nil {
		delete(wc.pending, id)
	}
	wc.mu.Unlock()
}
