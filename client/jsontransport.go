// The HTTP/JSON transport: the same typed API over the daemon's HTTP
// listener. Request bodies and error envelopes are exactly the server's
// JSON shapes; the per-attempt deadline and retry number travel as the
// X-Selest-Timeout-Ms / X-Selest-Retry headers (the untyped form of
// wire.Meta), so the server cannot tell the transports' intents apart.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"selest/internal/errcode"
	"selest/internal/wire"
)

type jsonTransport struct {
	base     string
	hc       *http.Client
	maxFetch int64 // snapshot download bound, from Options.MaxPayload
}

func newJSONTransport(opts Options) *jsonTransport {
	return &jsonTransport{
		base:     "http://" + opts.Addr,
		maxFetch: int64(opts.MaxPayload),
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        opts.Conns,
				MaxIdleConnsPerHost: opts.Conns,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

func (t *jsonTransport) close() error {
	t.hc.CloseIdleConnections()
	return nil
}

// do posts one JSON body and decodes the response into out (when
// non-nil). Non-2xx responses decode the shared error envelope into an
// *APIError carrying the Retry-After hint.
func (t *jsonTransport) do(ctx context.Context, meta wire.Meta, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if meta.TimeoutMs > 0 {
		req.Header.Set(wire.HeaderTimeoutMs, strconv.FormatUint(uint64(meta.TimeoutMs), 10))
	}
	if meta.Retry > 0 {
		req.Header.Set(wire.HeaderRetry, strconv.Itoa(int(meta.Retry)))
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return apiErrorFromResponse(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// apiErrorFromResponse rebuilds the typed error from the JSON envelope.
// A body that is not the envelope (a proxy's error page, say) degrades
// to the catch-all code derived from the status line.
func apiErrorFromResponse(resp *http.Response) error {
	ae := &APIError{Code: errcode.CodeInternal}
	var body errcode.ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil && body.Error.Code != "" {
		ae.Code, _ = errcode.Parse(body.Error.Code)
		ae.Message = body.Error.Message
	} else {
		ae.Message = fmt.Sprintf("http status %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

func (t *jsonTransport) estimate(ctx context.Context, meta wire.Meta, tenant, attr string, lo, hi float64, fresh bool) (Result, error) {
	body := struct {
		Tenant string  `json:"tenant"`
		Attr   string  `json:"attr"`
		Lo     float64 `json:"lo"`
		Hi     float64 `json:"hi"`
		Fresh  bool    `json:"fresh,omitempty"`
	}{tenant, attr, lo, hi, fresh}
	var out Result
	err := t.do(ctx, meta, "/v1/estimate", body, &out)
	return out, err
}

func (t *jsonTransport) estimateBatch(ctx context.Context, meta wire.Meta, tenant, attr string, queries []Range, fresh bool) ([]Result, error) {
	body := struct {
		Tenant  string  `json:"tenant"`
		Attr    string  `json:"attr"`
		Queries []Range `json:"queries"`
		Fresh   bool    `json:"fresh,omitempty"`
	}{tenant, attr, queries, fresh}
	var out struct {
		Results []Result `json:"results"`
	}
	if err := t.do(ctx, meta, "/v1/estimate/batch", body, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

func (t *jsonTransport) ingest(ctx context.Context, meta wire.Meta, tenant, attr string, values []float64) (IngestResult, error) {
	body := struct {
		Tenant string    `json:"tenant"`
		Attr   string    `json:"attr"`
		Values []float64 `json:"values"`
	}{tenant, attr, values}
	var out IngestResult
	err := t.do(ctx, meta, "/v1/ingest", body, &out)
	return out, err
}

func (t *jsonTransport) createAttr(ctx context.Context, meta wire.Meta, tenant, attr string, cfgJSON []byte) error {
	body := struct {
		Tenant string          `json:"tenant"`
		Attr   string          `json:"attr"`
		Config json.RawMessage `json:"config"`
	}{tenant, attr, json.RawMessage(cfgJSON)}
	return t.do(ctx, meta, "/v1/attrs", body, nil)
}

// snapshotFetch GETs /v1/snapshot — the raw SELS envelope, streamed
// with a Content-Length. The download is bounded by Options.MaxPayload
// so a misbehaving peer cannot balloon the joiner's memory.
func (t *jsonTransport) snapshotFetch(ctx context.Context, meta wire.Meta) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/v1/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if meta.TimeoutMs > 0 {
		req.Header.Set(wire.HeaderTimeoutMs, strconv.FormatUint(uint64(meta.TimeoutMs), 10))
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorFromResponse(resp)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, t.maxFetch+1))
	if err != nil {
		return nil, fmt.Errorf("client: snapshot download: %w", err)
	}
	if int64(len(b)) > t.maxFetch {
		return nil, fmt.Errorf("client: snapshot exceeds MaxPayload %d", t.maxFetch)
	}
	return b, nil
}

// healthCheck round-trips the health endpoint; the client's health loop
// uses the answer to drive this replica's routing state.
func (t *jsonTransport) healthCheck(ctx context.Context) error {
	return t.ping(ctx, wire.Meta{})
}

// ping uses the health endpoint — the closest JSON analogue to an
// OpPing frame. It is a GET, so it bypasses do.
func (t *jsonTransport) ping(ctx context.Context, meta wire.Meta) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return apiErrorFromResponse(resp)
	}
	return nil
}
