// Replica routing: the client-side half of the scale-out story
// (DESIGN.md §15). Every replica gets its own transport (its own
// pipelined connection pool); a rendezvous-hash ring maps each tenant to
// an ordered preference list over them; and a jittered background
// health checker maintains per-replica up/down state so routing walks
// past a dead replica instead of paying its dial timeout on every call.
//
// Failure classification is deliberately narrow:
//
//   - connErr (transport-level failures: dial refused, connection reset,
//     read/write errors — everything that is not a typed server answer
//     and not the caller's own context) both fails the call over AND
//     marks the replica down. The server did not answer; assume the
//     process is gone until a health probe says otherwise.
//   - failsOver additionally covers server answers that mean "this
//     replica cannot serve you but another might": internal errors,
//     draining, timeouts. The replica is alive (it answered!), so it is
//     not marked down — the next attempt just prefers its neighbour.
//   - Everything else (bad request, not found, conflict, over-quota)
//     stays put. Caller mistakes fail identically everywhere, and an
//     over-quota refusal carries a Retry-After hint that jumping
//     replicas would dodge without the tenant's bucket getting any
//     emptier where it counts.
package client

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"selest/internal/cluster"
)

// replica is one fleet member: its address, its transport (lazy
// connection pool), and the routing health bit.
type replica struct {
	addr string
	t    transport
	down atomic.Bool
}

// markUp clears the down bit, cheaply: the read avoids a contended
// store on every successful call.
func (r *replica) markUp() {
	if r.down.Load() {
		r.down.Store(false)
	}
}

// routeFor returns tenant's preference list: the ring's top Replication
// replicas, best first. With one replica there is nothing to rank.
func (c *Client) routeFor(tenant string) []*replica {
	if len(c.reps) == 1 {
		return c.reps
	}
	addrs := c.ring.Replicas(tenant)
	pref := make([]*replica, len(addrs))
	for i, a := range addrs {
		pref[i] = c.byAddr[a]
	}
	return pref
}

// pick returns the replica for a (possibly failed-over) attempt: the
// first up replica at or after offset fo in preference order. With the
// whole preference list down it returns pref[fo%len] anyway — when
// everyone looks dead the only useful move is to try one and let the
// attempt be the probe.
func pick(pref []*replica, fo int) *replica {
	n := len(pref)
	for i := 0; i < n; i++ {
		if rep := pref[(fo+i)%n]; !rep.down.Load() {
			return rep
		}
	}
	return pref[fo%n]
}

// connErr reports a transport-level failure: no typed server answer came
// back and the caller did not give up on its own. These mark the replica
// down.
func connErr(err error) bool {
	var ae *APIError
	return err != nil && !errors.As(err, &ae) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// failsOver reports whether the next ring replica might answer where
// this one could not — connection-class failures plus the 5xx-class
// server answers (internal, draining, timeout).
func failsOver(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Code {
		case CodeInternal, CodeDraining, CodeTimeout:
			return true
		}
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// healthJitter spreads one health-check wait over U(every/2, 3·every/2):
// the mean stays at HealthCheckEvery, but a fleet of clients booted by
// the same deploy never synchronises its pings against one daemon.
func healthJitter(every time.Duration, rng *rand.Rand) time.Duration {
	if every <= 0 {
		return every
	}
	return every/2 + time.Duration(rng.Int63n(int64(every)+1))
}

// healthLoop drives every replica's up/down bit: each (jittered) cycle
// probes each transport — the wire transport pings idle pooled
// connections and dial-probes when it has none, the JSON transport GETs
// /healthz. A clean probe re-admits the replica to routing; a
// connection-class failure ejects it; a typed server answer (draining,
// say) leaves the bit alone — the process is alive, and the routing
// classification in do/doAll already knows what to do with its answers.
func (c *Client) healthLoop() {
	defer close(c.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		t := time.NewTimer(healthJitter(c.opts.HealthCheckEvery, rng))
		select {
		case <-c.stop:
			t.Stop()
			return
		case <-t.C:
		}
		for _, rep := range c.reps {
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.DialTimeout)
			err := rep.t.healthCheck(ctx)
			cancel()
			switch {
			case err == nil:
				rep.markUp()
			case connErr(err):
				if !rep.down.Swap(true) {
					c.ejected.Add(1)
				}
			}
		}
	}
}

// newRing builds the routing ring over the (already validated,
// defaulted) option addresses.
func newRing(opts Options) (*cluster.Ring, error) {
	return cluster.New(opts.Addrs, opts.Replication)
}
