// Client configuration and per-call options. Options follows the same
// validate-at-construction pattern as selest.Options and
// server.Options: every field has a working default, and New rejects
// out-of-range values with typed ErrBadOption errors.
package client

import (
	"fmt"
	"math"
	"time"

	"selest/internal/errs"
)

// Protocol selects the transport the client speaks.
type Protocol string

const (
	// ProtoWire is the selestwire binary protocol: persistent pipelined
	// TCP connections, CRC-framed binary payloads (DESIGN.md §13). The
	// default, and the fast path.
	ProtoWire Protocol = "wire"
	// ProtoJSON is the HTTP/JSON transport — the same API over the
	// daemon's HTTP listener, for environments where only HTTP passes.
	ProtoJSON Protocol = "json"
)

// Options configures a Client. Exactly one of Addr (a single server) or
// Addrs (a replica fleet) is required; everything else defaults
// sensibly.
type Options struct {
	// Addr is the server address (host:port). For ProtoJSON it is the
	// HTTP listener's address; a scheme prefix is not accepted — the
	// client builds its own URLs.
	Addr string
	// Addrs lists every replica of a scaled-out fleet (host:port each,
	// all speaking Protocol). The client routes each tenant to
	// Replication of them by rendezvous hash (DESIGN.md §15): reads go
	// to the tenant's primary and fail over down the preference list on
	// connection- and 5xx-class errors; writes fan out to the whole
	// replica set. Setting both Addr and Addrs, or neither, is an error.
	Addrs []string
	// Replication is how many ring replicas own each tenant. Zero
	// defaults to 1 (pure sharding: each tenant lives on one replica);
	// values above len(Addrs) are clamped. With Replication > 1 reads
	// survive a replica death and writes are best-effort fan-out —
	// success when at least one replica accepts (DESIGN.md §15 spells
	// out the consistency contract).
	Replication int
	// Protocol selects the transport. Empty defaults to ProtoWire.
	Protocol Protocol
	// Conns is the connection-pool size for ProtoWire (calls are
	// pipelined, so a handful of connections carries deep concurrency)
	// and the idle-pool hint for ProtoJSON. Zero defaults to 4.
	Conns int
	// DialTimeout bounds one connection attempt. Zero defaults to 5s.
	DialTimeout time.Duration
	// RequestTimeout is the per-attempt deadline applied when neither
	// the call's context nor a WithTimeout option names one. It is also
	// what the server hears (wire Meta.TimeoutMs / X-Selest-Timeout-Ms),
	// so the server-side degradation ladder sees the same budget the
	// client enforces. Zero defaults to 5s.
	RequestTimeout time.Duration
	// MaxRetries bounds retries after the first attempt for retryable
	// failures (transport errors, over-quota with the server's hint,
	// draining, internal). Negative disables retries; zero defaults
	// to 3.
	MaxRetries int
	// RetryBaseDelay seeds the full-jitter exponential backoff:
	// attempt n sleeps U(0, RetryBaseDelay·2ⁿ) capped at RetryMaxDelay.
	// Zero defaults to 10ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps one backoff sleep (and a server throttle hint).
	// Zero defaults to 2s.
	RetryMaxDelay time.Duration
	// HealthCheckEvery is the wire pool's background ping cadence: a
	// persistent connection idle for a full interval is pinged, and one
	// that fails its ping is torn down so the next call redials instead
	// of inheriting a dead socket. Zero defaults to 15s; negative
	// disables the checker.
	HealthCheckEvery time.Duration
	// MaxPayload bounds a received frame's payload (wire only). Zero
	// defaults to the protocol's 16 MiB.
	MaxPayload int
}

func (o Options) withDefaults() Options {
	if len(o.Addrs) == 0 {
		o.Addrs = []string{o.Addr}
	}
	o.Addr = ""
	if o.Replication == 0 {
		o.Replication = 1
	}
	if o.Replication > len(o.Addrs) {
		o.Replication = len(o.Addrs)
	}
	if o.Protocol == "" {
		o.Protocol = ProtoWire
	}
	if o.Conns == 0 {
		o.Conns = 4
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBaseDelay == 0 {
		o.RetryBaseDelay = 10 * time.Millisecond
	}
	if o.RetryMaxDelay == 0 {
		o.RetryMaxDelay = 2 * time.Second
	}
	if o.HealthCheckEvery == 0 {
		o.HealthCheckEvery = 15 * time.Second
	}
	if o.MaxPayload == 0 {
		o.MaxPayload = 16 << 20
	}
	return o
}

// Validate reports the first invalid field as a typed ErrBadOption
// error.
func (o *Options) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("client: %s: %w", fmt.Sprintf(format, args...), errs.ErrBadOption)
	}
	if o.Addr == "" && len(o.Addrs) == 0 {
		return bad("Addr or Addrs is required")
	}
	if o.Addr != "" && len(o.Addrs) > 0 {
		return bad("set Addr or Addrs, not both")
	}
	seen := make(map[string]bool, len(o.Addrs))
	for _, a := range o.Addrs {
		if a == "" {
			return bad("empty address in Addrs")
		}
		if seen[a] {
			return bad("duplicate address %q in Addrs", a)
		}
		seen[a] = true
	}
	if o.Replication < 0 {
		return bad("Replication %d must be non-negative", o.Replication)
	}
	switch o.Protocol {
	case "", ProtoWire, ProtoJSON:
	default:
		return bad("unknown protocol %q (valid: wire, json)", o.Protocol)
	}
	if o.Conns < 0 {
		return bad("Conns %d must be non-negative", o.Conns)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"DialTimeout", o.DialTimeout},
		{"RequestTimeout", o.RequestTimeout},
		{"RetryBaseDelay", o.RetryBaseDelay},
		{"RetryMaxDelay", o.RetryMaxDelay},
	} {
		if d.v < 0 {
			return bad("%s %v must be non-negative", d.name, d.v)
		}
	}
	if o.MaxPayload < 0 {
		return bad("MaxPayload %d must be non-negative", o.MaxPayload)
	}
	return nil
}

// ParseProtocol resolves a protocol name as written on a command line —
// case-sensitive, matching the constants. The error wraps ErrBadOption.
func ParseProtocol(s string) (Protocol, error) {
	switch Protocol(s) {
	case ProtoWire, ProtoJSON:
		return Protocol(s), nil
	case "":
		return ProtoWire, nil
	}
	return "", fmt.Errorf("client: unknown protocol %q (valid: wire, json): %w", s, errs.ErrBadOption)
}

// Range is one [Lo, Hi] query.
type Range struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Result is one answered range query — the client-side twin of the
// service's EstimateResult, identical across transports.
type Result struct {
	// Selectivity is the estimated fraction of the stream in [Lo, Hi].
	Selectivity float64 `json:"selectivity"`
	// Rows scales the selectivity by the attribute's ingested count.
	Rows float64 `json:"rows"`
	// Rung names the degradation-ladder level that answered
	// (fresh | snapshot | reservoir | uniform).
	Rung string `json:"rung"`
	// Generation is the serving snapshot's generation (0 = no fit yet).
	Generation uint64 `json:"generation"`
	// Degraded reports an answer from a lower rung than requested.
	Degraded bool `json:"degraded,omitempty"`
}

// IngestResult reports what happened to an ingest payload.
type IngestResult struct {
	// Queued values entered the attribute's ingest queue.
	Queued int `json:"queued"`
	// Shed values (the oldest queued) were dropped to make room.
	Shed int `json:"shed"`
}

// AttrConfig is an attribute's estimator configuration, the public twin
// of the server's: the JSON encoding here is the single config schema
// shared by the HTTP body, the wire CreateAttr payload, and the snapshot
// manifest.
type AttrConfig struct {
	// DomainLo/DomainHi bound the attribute. Required, finite, Lo < Hi.
	DomainLo float64 `json:"domain_lo"`
	DomainHi float64 `json:"domain_hi"`
	// Method/Rule/Boundary/Bins/Bandwidth mirror selest.Options for the
	// primary builder. Empty method defaults to kernel.
	Method    string  `json:"method,omitempty"`
	Rule      string  `json:"rule,omitempty"`
	Boundary  int     `json:"boundary,omitempty"`
	Bins      int     `json:"bins,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// ReservoirSize/RefitEvery/Shards/Seed parameterise the online
	// engine (zeroes take the server defaults).
	ReservoirSize int    `json:"reservoir_size,omitempty"`
	RefitEvery    int    `json:"refit_every,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	// DegradeAfter/PromoteAfter shape the builder ladder.
	DegradeAfter int `json:"degrade_after,omitempty"`
	PromoteAfter int `json:"promote_after,omitempty"`
}

func (c *AttrConfig) validate() error {
	if math.IsNaN(c.DomainLo) || math.IsInf(c.DomainLo, 0) ||
		math.IsNaN(c.DomainHi) || math.IsInf(c.DomainHi, 0) || !(c.DomainHi > c.DomainLo) {
		return fmt.Errorf("client: attr domain [%v, %v]: %w", c.DomainLo, c.DomainHi, errs.ErrBadOption)
	}
	return nil
}

// callOptions is the resolved per-call state; CallOption values mutate
// it.
type callOptions struct {
	timeout    time.Duration // per-attempt budget; 0 = Options.RequestTimeout
	fresh      bool
	maxRetries int // -1 = Options.MaxRetries
}

// CallOption customises one call.
type CallOption func(*callOptions)

// WithTimeout names the per-attempt deadline budget for this call — the
// typed replacement for setting the X-Selest-Timeout-Ms header by hand.
// The same value travels to the server (header on JSON, Meta field on
// the wire) so both sides enforce one budget.
func WithTimeout(d time.Duration) CallOption {
	return func(o *callOptions) { o.timeout = d }
}

// WithFresh asks the estimate to flush pending inserts into a refit
// before answering (the server degrades to the snapshot rung under
// overload or a tight deadline rather than failing).
func WithFresh() CallOption {
	return func(o *callOptions) { o.fresh = true }
}

// WithMaxRetries overrides Options.MaxRetries for this call; 0 disables
// retries entirely.
func WithMaxRetries(n int) CallOption {
	return func(o *callOptions) { o.maxRetries = n }
}
