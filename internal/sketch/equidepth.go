package sketch

import (
	"fmt"
	"math"
)

// EquiDepth is a streaming equi-depth selectivity estimator: bin
// boundaries come from a GK sketch's quantiles and bin masses from the
// sketch's rank estimates, so it maintains the paper's equi-depth
// histogram over an insert stream with O((1/ε)·log n) memory instead of a
// stored sample.
type EquiDepth struct {
	bounds []float64
	masses []float64 // per-bin mass fractions, summing to ~1
}

// EquiDepthFromSketch extracts a k-bin equi-depth estimator from the
// sketch's current state. On heavy-duplicate streams quantile boundaries
// collapse and the surviving bins carry unequal masses; masses therefore
// come from the sketch's rank estimates rather than the equal-depth
// assumption.
func EquiDepthFromSketch(g *GK, k int) (*EquiDepth, error) {
	if k < 1 {
		return nil, fmt.Errorf("sketch: bin count must be >= 1, got %d", k)
	}
	n := g.Count()
	if n == 0 {
		return nil, fmt.Errorf("sketch: empty sketch")
	}
	bounds := make([]float64, 0, k+1)
	for i := 0; i <= k; i++ {
		q := g.Quantile(float64(i) / float64(k))
		if len(bounds) == 0 || q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	if len(bounds) < 2 {
		return nil, fmt.Errorf("sketch: degenerate quantiles (constant stream?)")
	}
	masses := make([]float64, len(bounds)-1)
	total := 0.0
	prevRank := int64(0)
	for i := 1; i < len(bounds); i++ {
		rank := g.Rank(bounds[i])
		if rank < prevRank {
			rank = prevRank
		}
		masses[i-1] = float64(rank-prevRank) / float64(n)
		total += masses[i-1]
		prevRank = rank
	}
	// Mass below bounds[0] (≈0) and rank error can leave total slightly
	// off one; renormalise so the estimator integrates to one.
	if total <= 0 {
		return nil, fmt.Errorf("sketch: rank estimates degenerate")
	}
	for i := range masses {
		masses[i] /= total
	}
	return &EquiDepth{bounds: bounds, masses: masses}, nil
}

// Bins returns the number of bins.
func (e *EquiDepth) Bins() int { return len(e.bounds) - 1 }

// Selectivity estimates the fraction of stream values in [a, b]: each
// bin's (rank-estimated) mass is spread uniformly over its interval.
func (e *EquiDepth) Selectivity(a, b float64) float64 {
	if b < a {
		return 0
	}
	sum := 0.0
	for i := 0; i+1 < len(e.bounds); i++ {
		lo, hi := e.bounds[i], e.bounds[i+1]
		overlap := math.Min(b, hi) - math.Max(a, lo)
		if overlap <= 0 {
			continue
		}
		sum += e.masses[i] * overlap / (hi - lo)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Name identifies the estimator in experiment output.
func (e *EquiDepth) Name() string { return "equi-depth(sketch)" }
