// Package sketch provides streaming summaries: the Greenwald–Khanna
// ε-approximate quantile sketch and a streaming equi-depth histogram
// built on it. Together they let a system maintain the paper's equi-depth
// estimator over an insert stream in sublinear memory, instead of
// resampling the table — the practical deployment mode of
// histogram statistics in a database engine.
package sketch

import (
	"fmt"
	"math"
	"sort"
)

// gkEntry is one tuple of the GK summary: value v, g = rmin(v) − rmin(prev),
// and delta = rmax(v) − rmin(v).
type gkEntry struct {
	v     float64
	g     int64
	delta int64
}

// GK is a Greenwald–Khanna quantile sketch with additive rank error
// ε·n. Memory is O((1/ε)·log(ε·n)). The zero value is unusable; construct
// with NewGK. GK is not safe for concurrent use; wrap it externally.
type GK struct {
	eps     float64
	entries []gkEntry
	n       int64
	// buffer batches inserts; merging sorted batches amortises the
	// insertion cost.
	buffer []float64
}

// NewGK returns a sketch with rank error ε ∈ (0, 0.5).
func NewGK(eps float64) (*GK, error) {
	if !(eps > 0 && eps < 0.5) {
		return nil, fmt.Errorf("sketch: epsilon %v outside (0, 0.5)", eps)
	}
	return &GK{eps: eps}, nil
}

// Insert adds one value to the sketch.
func (g *GK) Insert(v float64) {
	if math.IsNaN(v) {
		return // NaN has no rank on a metric domain
	}
	g.buffer = append(g.buffer, v)
	if len(g.buffer) >= g.bufferCap() {
		g.flush()
	}
}

// bufferCap keeps the buffer proportional to the summary's natural block
// size 1/(2ε).
func (g *GK) bufferCap() int {
	c := int(1 / (2 * g.eps))
	if c < 16 {
		c = 16
	}
	return c
}

// flush merges the buffered values into the summary.
func (g *GK) flush() {
	if len(g.buffer) == 0 {
		return
	}
	sort.Float64s(g.buffer)
	merged := make([]gkEntry, 0, len(g.entries)+len(g.buffer))
	bi := 0
	for _, e := range g.entries {
		for bi < len(g.buffer) && g.buffer[bi] <= e.v {
			merged = append(merged, g.newEntry(g.buffer[bi], len(merged) == 0, false))
			bi++
		}
		merged = append(merged, e)
	}
	for bi < len(g.buffer) {
		merged = append(merged, g.newEntry(g.buffer[bi], len(merged) == 0, bi == len(g.buffer)-1))
		bi++
	}
	g.entries = merged
	g.n += int64(len(g.buffer))
	g.buffer = g.buffer[:0]
	g.compress()
}

// newEntry builds the tuple for a freshly inserted value. First/last
// elements carry delta = 0 by the GK invariant; interior insertions carry
// delta = ⌊2εn⌋.
func (g *GK) newEntry(v float64, first, last bool) gkEntry {
	delta := int64(2 * g.eps * float64(g.n))
	if first || last || g.n == 0 {
		delta = 0
	}
	return gkEntry{v: v, g: 1, delta: delta}
}

// compress merges adjacent tuples whose combined uncertainty stays within
// the 2εn budget.
func (g *GK) compress() {
	if len(g.entries) < 3 {
		return
	}
	budget := int64(2 * g.eps * float64(g.n))
	out := g.entries[:0]
	out = append(out, g.entries[0])
	for i := 1; i < len(g.entries)-1; i++ {
		e := g.entries[i]
		next := g.entries[i+1]
		if e.g+next.g+next.delta <= budget {
			// Merge e into its successor.
			g.entries[i+1].g += e.g
			continue
		}
		out = append(out, e)
	}
	out = append(out, g.entries[len(g.entries)-1])
	g.entries = out
}

// Count returns the number of inserted values.
func (g *GK) Count() int64 {
	return g.n + int64(len(g.buffer))
}

// Summary returns the number of stored tuples (after flushing), for
// memory diagnostics.
func (g *GK) Summary() int {
	g.flush()
	return len(g.entries)
}

// Quantile returns an ε-approximate p-quantile: a value whose rank is
// within ε·n of ⌈p·n⌉. It returns NaN on an empty sketch.
func (g *GK) Quantile(p float64) float64 {
	g.flush()
	if g.n == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(g.n)))
	if target < 1 {
		target = 1
	}
	budget := int64(g.eps * float64(g.n))
	var rmin int64
	for i, e := range g.entries {
		rmin += e.g
		rmax := rmin + e.delta
		if target-rmin <= budget && rmax-target <= budget {
			return e.v
		}
		if i == len(g.entries)-1 {
			break
		}
	}
	return g.entries[len(g.entries)-1].v
}

// Rank returns the ε-approximate rank of v: the estimated number of
// inserted values <= v.
func (g *GK) Rank(v float64) int64 {
	g.flush()
	if g.n == 0 {
		return 0
	}
	var rmin int64
	for _, e := range g.entries {
		if e.v > v {
			// v falls before this entry: the best estimate is the
			// midpoint of the previous entry's rank range.
			return rmin
		}
		rmin += e.g
	}
	return g.n
}
