package sketch

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"selest/internal/xrand"
)

func TestNewGKValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 0.5, 1} {
		if _, err := NewGK(eps); err == nil {
			t.Fatalf("eps=%v should error", eps)
		}
	}
}

func TestGKEmpty(t *testing.T) {
	g, err := NewGK(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(g.Quantile(0.5)) {
		t.Fatal("empty sketch quantile should be NaN")
	}
	if g.Count() != 0 || g.Rank(5) != 0 {
		t.Fatal("empty sketch counts wrong")
	}
}

func TestGKExactOnSmallInput(t *testing.T) {
	g, err := NewGK(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		g.Insert(float64(i))
	}
	if g.Count() != 10 {
		t.Fatalf("Count = %d", g.Count())
	}
	if q := g.Quantile(0.5); q < 4 || q > 6 {
		t.Fatalf("median = %v, want ~5", q)
	}
	if q := g.Quantile(0); q != 1 {
		t.Fatalf("min = %v", q)
	}
	if q := g.Quantile(1); q != 10 {
		t.Fatalf("max = %v", q)
	}
}

func TestGKRankErrorBound(t *testing.T) {
	const (
		eps = 0.01
		n   = 200000
	)
	g, err := NewGK(eps)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	values := make([]float64, n)
	for i := range values {
		values[i] = r.Float64() * 1e6
		g.Insert(values[i])
	}
	sort.Float64s(values)
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		q := g.Quantile(p)
		// True rank of the returned value.
		rank := sort.SearchFloat64s(values, q)
		err := math.Abs(float64(rank)/n - p)
		if err > 2*eps {
			t.Fatalf("quantile %v: returned value has rank error %v > 2ε", p, err)
		}
	}
}

func TestGKMemorySublinear(t *testing.T) {
	g, err := NewGK(0.01)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	for i := 0; i < 100000; i++ {
		g.Insert(r.Float64())
	}
	if s := g.Summary(); s > 4000 {
		t.Fatalf("summary holds %d tuples for 100k inserts at ε=0.01; not compressing", s)
	}
}

func TestGKRank(t *testing.T) {
	g, err := NewGK(0.005)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 1000; i++ {
		g.Insert(float64(i))
	}
	for _, v := range []float64{100, 500, 900} {
		rank := g.Rank(v)
		if math.Abs(float64(rank)-v) > 0.02*1000 {
			t.Fatalf("Rank(%v) = %d", v, rank)
		}
	}
	if g.Rank(0) != 0 {
		t.Fatalf("Rank below min = %d", g.Rank(0))
	}
	if g.Rank(2000) != 1000 {
		t.Fatalf("Rank above max = %d", g.Rank(2000))
	}
}

func TestGKSkipsNaN(t *testing.T) {
	g, err := NewGK(0.1)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(math.NaN())
	g.Insert(1)
	if g.Count() != 1 {
		t.Fatalf("Count = %d, NaN should be skipped", g.Count())
	}
}

func TestGKSortedAndReversedStreams(t *testing.T) {
	// Adversarial insert orders must stay within the error bound.
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(100000 - i) },
	} {
		g, err := NewGK(0.01)
		if err != nil {
			t.Fatal(err)
		}
		const n = 100000
		for i := 0; i < n; i++ {
			g.Insert(gen(i))
		}
		for _, p := range []float64{0.1, 0.5, 0.9} {
			q := g.Quantile(p)
			if math.Abs(q/n-p) > 0.02 {
				t.Fatalf("%s: quantile %v = %v", name, p, q)
			}
		}
	}
}

func TestEquiDepthFromSketch(t *testing.T) {
	g, err := NewGK(0.005)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	for i := 0; i < 100000; i++ {
		g.Insert(r.Float64() * 1000)
	}
	ed, err := EquiDepthFromSketch(g, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ed.Bins() < 15 || ed.Bins() > 20 {
		t.Fatalf("Bins = %d", ed.Bins())
	}
	if ed.Name() != "equi-depth(sketch)" {
		t.Fatalf("Name = %q", ed.Name())
	}
	// Uniform stream: selectivity ≈ width fraction.
	for _, q := range [][2]float64{{0, 100}, {250, 500}, {900, 1000}} {
		want := (q[1] - q[0]) / 1000
		got := ed.Selectivity(q[0], q[1])
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("σ̂(%v,%v) = %v, want ~%v", q[0], q[1], got, want)
		}
	}
	if ed.Selectivity(5, 2) != 0 {
		t.Fatal("inverted query should be 0")
	}
}

func TestEquiDepthFromSketchSkewed(t *testing.T) {
	g, err := NewGK(0.005)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(4)
	for i := 0; i < 100000; i++ {
		g.Insert(r.Exponential(0.01)) // mean 100, long tail
	}
	ed, err := EquiDepthFromSketch(g, 30)
	if err != nil {
		t.Fatal(err)
	}
	// P(X <= 100) = 1 − e^{−1} ≈ 0.632.
	got := ed.Selectivity(0, 100)
	if math.Abs(got-0.632) > 0.05 {
		t.Fatalf("σ̂(0,100) = %v, want ~0.632", got)
	}
}

func TestEquiDepthValidation(t *testing.T) {
	g, _ := NewGK(0.01)
	if _, err := EquiDepthFromSketch(g, 10); err == nil {
		t.Fatal("empty sketch should error")
	}
	g.Insert(5)
	if _, err := EquiDepthFromSketch(g, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	// Constant stream: degenerate quantiles.
	for i := 0; i < 100; i++ {
		g.Insert(5)
	}
	if _, err := EquiDepthFromSketch(g, 10); err == nil {
		t.Fatal("constant stream should error")
	}
}

// Property: quantiles are monotone in p.
func TestQuickGKQuantileMonotone(t *testing.T) {
	g, err := NewGK(0.02)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(5)
	for i := 0; i < 20000; i++ {
		g.Insert(r.Normal() * 100)
	}
	prop := func(raw uint8) bool {
		p := float64(raw) / 260
		return g.Quantile(p) <= g.Quantile(p+0.02)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
