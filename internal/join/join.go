// Package join estimates equi-join result sizes from per-column density
// estimators — the query-optimisation problem the paper's introduction
// motivates (System R's "sizes of intermediate results of a query are
// estimated to evaluate execution plans").
//
// For relations R and S joined on metric attributes R.a = S.b, modelling
// the attributes as continuous densities f_R and f_S gives
//
//	|R ⋈ S| ≈ |R|·|S|·∫ f_R(x)·f_S(x) dx · w
//
// where w is the width of the value-matching granule — on the integer
// domains of the paper's data files, w = 1 (two records join when their
// integer values are equal). The integral is evaluated numerically from
// any two density estimators (kernel, histogram, hybrid, …).
package join

import (
	"fmt"
	"math"

	"selest/internal/fsort"
	"selest/internal/xmath"
)

// Density is the estimator surface join estimation needs: a density and
// the ability to integrate it (for band joins).
type Density interface {
	Density(x float64) float64
}

// Estimate approximates the equi-join size |R ⋈_{a=b} S|.
//
// fR and fS are density estimators of the join attributes; nR and nS the
// relation cardinalities; lo/hi the shared value domain; granule the
// value-matching width (1 for integer attributes). gridN controls the
// quadrature resolution (0 defaults to 2048).
func Estimate(fR, fS Density, nR, nS int64, lo, hi, granule float64, gridN int) (float64, error) {
	if fR == nil || fS == nil {
		return 0, fmt.Errorf("join: nil density estimator")
	}
	if nR < 0 || nS < 0 {
		return 0, fmt.Errorf("join: negative cardinalities %d, %d", nR, nS)
	}
	if !(hi > lo) {
		return 0, fmt.Errorf("join: domain [%v, %v] is empty", lo, hi)
	}
	if granule <= 0 {
		return 0, fmt.Errorf("join: granule must be positive, got %v", granule)
	}
	if gridN <= 0 {
		gridN = 2048
	}
	overlap := xmath.Simpson(func(x float64) float64 {
		return fR.Density(x) * fS.Density(x)
	}, lo, hi, gridN)
	if overlap < 0 {
		overlap = 0 // boundary kernels can dip negative locally
	}
	return float64(nR) * float64(nS) * overlap * granule, nil
}

// EstimateBand approximates the band-join size
// |{(r, s) : |r.a − s.b| <= band}| by integrating f_S's mass within the
// band around each point of f_R. selS must expose range selectivity.
func EstimateBand(fR Density, selS interface {
	Selectivity(a, b float64) float64
}, nR, nS int64, lo, hi, band float64, gridN int) (float64, error) {
	if fR == nil || selS == nil {
		return 0, fmt.Errorf("join: nil estimator")
	}
	if !(hi > lo) {
		return 0, fmt.Errorf("join: domain [%v, %v] is empty", lo, hi)
	}
	if band < 0 {
		return 0, fmt.Errorf("join: negative band %v", band)
	}
	if gridN <= 0 {
		gridN = 2048
	}
	expect := xmath.Simpson(func(x float64) float64 {
		return fR.Density(x) * selS.Selectivity(x-band, x+band)
	}, lo, hi, gridN)
	if expect < 0 {
		expect = 0
	}
	return float64(nR) * float64(nS) * expect, nil
}

// ExactEquiJoin computes the exact equi-join size of two integer-valued
// columns by frequency matching — the ground truth the estimates are
// judged against.
func ExactEquiJoin(r, s []float64) int64 {
	freq := make(map[float64]int64, len(r))
	for _, v := range r {
		freq[v]++
	}
	var total int64
	for _, v := range s {
		total += freq[v]
	}
	return total
}

// ExactBandJoin computes the exact band-join size |r.a − s.b| <= band of
// two columns via sort + sliding window, in O(|r|log|r| + |s|log|s|).
func ExactBandJoin(r, s []float64, band float64) int64 {
	if band < 0 {
		return 0
	}
	rs := append([]float64(nil), r...)
	ss := append([]float64(nil), s...)
	fsort.Float64s(rs)
	fsort.Float64s(ss)
	var total int64
	loIdx, hiIdx := 0, 0
	for _, v := range rs {
		for loIdx < len(ss) && ss[loIdx] < v-band {
			loIdx++
		}
		if hiIdx < loIdx {
			hiIdx = loIdx
		}
		for hiIdx < len(ss) && ss[hiIdx] <= v+band {
			hiIdx++
		}
		total += int64(hiIdx - loIdx)
	}
	return total
}

// RelativeError returns |est − exact| / exact, or NaN when exact is 0.
func RelativeError(est float64, exact int64) float64 {
	if exact == 0 {
		return math.NaN()
	}
	return math.Abs(est-float64(exact)) / float64(exact)
}
