package join

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/bandwidth"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/sample"
	"selest/internal/xrand"
)

// intColumn draws n integer values from a Normal clipped to [0, 1000].
func intColumn(n int, mean, std float64, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		v := math.Round(r.NormalMeanStd(mean, std))
		if v < 0 {
			v = 0
		} else if v > 1000 {
			v = 1000
		}
		out[i] = v
	}
	return out
}

func kdeFor(t *testing.T, samples []float64) *kde.Estimator {
	t.Helper()
	h, err := bandwidth.NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := kde.New(samples, kde.Config{Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestExactEquiJoin(t *testing.T) {
	r := []float64{1, 2, 2, 3}
	s := []float64{2, 2, 3, 9}
	// value 2: 2×2 = 4 pairs; value 3: 1×1 = 1 pair.
	if got := ExactEquiJoin(r, s); got != 5 {
		t.Fatalf("ExactEquiJoin = %d, want 5", got)
	}
	if ExactEquiJoin(nil, s) != 0 || ExactEquiJoin(r, nil) != 0 {
		t.Fatal("empty side should join to 0")
	}
}

func TestExactBandJoin(t *testing.T) {
	r := []float64{0, 10}
	s := []float64{1, 5, 11}
	// band 2: 0 matches {1}; 10 matches {11} → 2 pairs.
	if got := ExactBandJoin(r, s, 2); got != 2 {
		t.Fatalf("ExactBandJoin = %d, want 2", got)
	}
	// band 0 equals equi-join on exact values.
	if got := ExactBandJoin([]float64{5, 5}, []float64{5}, 0); got != 2 {
		t.Fatalf("band-0 join = %d, want 2", got)
	}
	if ExactBandJoin(r, s, -1) != 0 {
		t.Fatal("negative band should be 0")
	}
}

func TestExactBandJoinMatchesBruteForce(t *testing.T) {
	rng := xrand.New(1)
	r := make([]float64, 300)
	s := make([]float64, 400)
	for i := range r {
		r[i] = rng.Float64() * 100
	}
	for i := range s {
		s[i] = rng.Float64() * 100
	}
	for _, band := range []float64{0.5, 3, 20} {
		var brute int64
		for _, a := range r {
			for _, b := range s {
				if math.Abs(a-b) <= band {
					brute++
				}
			}
		}
		if got := ExactBandJoin(r, s, band); got != brute {
			t.Fatalf("band %v: %d, brute force %d", band, got, brute)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	est := kdeFor(t, intColumn(500, 500, 100, 2))
	if _, err := Estimate(nil, est, 1, 1, 0, 1, 1, 0); err == nil {
		t.Fatal("nil density should error")
	}
	if _, err := Estimate(est, est, -1, 1, 0, 1, 1, 0); err == nil {
		t.Fatal("negative cardinality should error")
	}
	if _, err := Estimate(est, est, 1, 1, 5, 5, 1, 0); err == nil {
		t.Fatal("empty domain should error")
	}
	if _, err := Estimate(est, est, 1, 1, 0, 1, 0, 0); err == nil {
		t.Fatal("zero granule should error")
	}
}

func TestEquiJoinEstimateAccuracy(t *testing.T) {
	// Two overlapping normal columns; the kernel-density estimate of the
	// join size should land within a modest factor of the truth.
	rCol := intColumn(50000, 450, 80, 3)
	sCol := intColumn(40000, 550, 90, 4)
	exact := ExactEquiJoin(rCol, sCol)

	rng := xrand.New(5)
	rSmp, err := sample.WithoutReplacement(rng, rCol, 2000)
	if err != nil {
		t.Fatal(err)
	}
	sSmp, err := sample.WithoutReplacement(rng, sCol, 2000)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(kdeFor(t, rSmp), kdeFor(t, sSmp), int64(len(rCol)), int64(len(sCol)), 0, 1000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := RelativeError(est, exact); relErr > 0.15 {
		t.Fatalf("equi-join estimate %v vs exact %d: rel err %v", est, exact, relErr)
	}
}

func TestEquiJoinDisjointColumns(t *testing.T) {
	// Non-overlapping value ranges: the join is empty and the estimate
	// must be near zero relative to |R|·|S|.
	rCol := intColumn(20000, 200, 30, 6)
	sCol := intColumn(20000, 800, 30, 7)
	if exact := ExactEquiJoin(rCol, sCol); exact != 0 {
		t.Fatalf("test setup: expected empty join, got %d", exact)
	}
	rng := xrand.New(8)
	rSmp, _ := sample.WithoutReplacement(rng, rCol, 1000)
	sSmp, _ := sample.WithoutReplacement(rng, sCol, 1000)
	est, err := Estimate(kdeFor(t, rSmp), kdeFor(t, sSmp), 20000, 20000, 0, 1000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// |R|·|S| = 4e8; anything below 1e-5 of that is "empty" for planning.
	if est > 4000 {
		t.Fatalf("disjoint-join estimate %v should be ~0", est)
	}
}

func TestBandJoinEstimateAccuracy(t *testing.T) {
	rCol := intColumn(30000, 500, 100, 9)
	sCol := intColumn(30000, 500, 100, 10)
	const band = 5
	exact := ExactBandJoin(rCol, sCol, band)

	rng := xrand.New(11)
	rSmp, _ := sample.WithoutReplacement(rng, rCol, 2000)
	sSmp, _ := sample.WithoutReplacement(rng, sCol, 2000)
	est, err := EstimateBand(kdeFor(t, rSmp), kdeFor(t, sSmp), 30000, 30000, 0, 1000, band, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := RelativeError(est, exact); relErr > 0.15 {
		t.Fatalf("band-join estimate %v vs exact %d: rel err %v", est, exact, relErr)
	}
}

func TestEstimateBandValidation(t *testing.T) {
	est := kdeFor(t, intColumn(500, 500, 100, 12))
	if _, err := EstimateBand(nil, est, 1, 1, 0, 1, 1, 0); err == nil {
		t.Fatal("nil estimator should error")
	}
	if _, err := EstimateBand(est, est, 1, 1, 0, 1, -1, 0); err == nil {
		t.Fatal("negative band should error")
	}
	if _, err := EstimateBand(est, est, 1, 1, 1, 0, 1, 0); err == nil {
		t.Fatal("empty domain should error")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(90, 100); got != 0.1 {
		t.Fatalf("RelativeError = %v", got)
	}
	if !math.IsNaN(RelativeError(5, 0)) {
		t.Fatal("zero exact should give NaN")
	}
}

// Property: the exact band join is monotone in the band width.
func TestQuickBandJoinMonotone(t *testing.T) {
	rng := xrand.New(13)
	r := make([]float64, 200)
	s := make([]float64, 200)
	for i := range r {
		r[i] = rng.Float64() * 50
		s[i] = rng.Float64() * 50
	}
	prop := func(raw uint8) bool {
		band := float64(raw) / 16
		return ExactBandJoin(r, s, band) <= ExactBandJoin(r, s, band+1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
