package errcode

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"selest/internal/errs"
)

// TestCodeRegistryFrozen pins the numeric values and string names: they
// are wire format, and a renumbering would silently break every client
// that compiled against the old registry.
func TestCodeRegistryFrozen(t *testing.T) {
	frozen := []struct {
		code Code
		num  uint16
		name string
		http int
	}{
		{CodeOK, 0, "ok", 200},
		{CodeInternal, 1, "internal", 500},
		{CodeBadRequest, 2, "bad_request", 400},
		{CodeNotFound, 3, "not_found", 404},
		{CodeOverQuota, 4, "over_quota", 429},
		{CodeDraining, 5, "draining", 503},
		{CodeConflict, 6, "conflict", 409},
		{CodeTimeout, 7, "timeout", 504},
		{CodeMethodNotAllowed, 8, "method_not_allowed", 405},
	}
	for _, f := range frozen {
		if uint16(f.code) != f.num {
			t.Errorf("%s renumbered: %d, want %d", f.name, f.code, f.num)
		}
		if f.code.String() != f.name {
			t.Errorf("code %d named %q, want %q", f.code, f.code.String(), f.name)
		}
		if f.code.HTTPStatus() != f.http {
			t.Errorf("%s maps to HTTP %d, want %d", f.name, f.code.HTTPStatus(), f.http)
		}
		if f.code != CodeOK {
			got, ok := Parse(f.name)
			if !ok || got != f.code {
				t.Errorf("Parse(%q) = %v, %v; want %v, true", f.name, got, ok, f.code)
			}
		}
	}
}

func TestParseUnknown(t *testing.T) {
	for _, s := range []string{"", "bogus", "ok", "BAD_REQUEST"} {
		if c, ok := Parse(s); ok || c != CodeInternal {
			t.Errorf("Parse(%q) = %v, %v; want CodeInternal, false", s, c, ok)
		}
	}
	if Code(9999).String() != "internal" {
		t.Errorf("unknown code renders %q, want internal", Code(9999).String())
	}
	if !errors.Is(Code(9999).Sentinel(), ErrInternal) {
		t.Error("unknown code sentinel is not ErrInternal")
	}
}

// TestClassifyRoundTrip pins the client-side contract: wrapping a code's
// sentinel and classifying it recovers the same code, through arbitrary
// %w nesting.
func TestClassifyRoundTrip(t *testing.T) {
	for c := range sentinels {
		wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", c.Sentinel()))
		if got := Classify(wrapped); got != c {
			t.Errorf("Classify(wrap(%v.Sentinel())) = %v, want %v", c, got, c)
		}
	}
}

func TestClassifySpecials(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{nil, CodeOK},
		{context.DeadlineExceeded, CodeTimeout},
		{fmt.Errorf("validate: %w", errs.ErrBadOption), CodeBadRequest},
		{fmt.Errorf("build: %w", errs.ErrInvalidDomain), CodeBadRequest},
		{fmt.Errorf("build: %w", errs.ErrEmptySample), CodeBadRequest},
		{errors.New("mystery"), CodeInternal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
