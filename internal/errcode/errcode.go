// Package errcode is the transport-neutral error surface of the
// estimator service: one registry of stable numeric codes, one set of
// %w-wrapped sentinels, and one classifier, shared verbatim by the
// HTTP/JSON transport (internal/server's JSON bodies), the binary wire
// protocol (internal/wire's error frames), and the native client
// (selest/client re-exports the sentinels). The rule the package
// enforces: the same failure carries the same code and the same message
// on every transport — only the envelope (JSON object vs binary frame)
// is transport-specific.
//
// Codes are wire format: their numeric values are frozen (DESIGN.md §13
// error-code registry). New codes append; existing values never change
// meaning or disappear.
//
// It is a leaf package (imports only stdlib and internal/errs) so both
// transports and the client can depend on it without cycles — the same
// layering argument as internal/errs itself.
package errcode

import (
	"context"
	"errors"

	"selest/internal/errs"
)

// Code is a stable numeric error identifier carried by the wire
// protocol's error frames and, via String, by the HTTP JSON error
// bodies. The zero value CodeOK never appears in an error.
type Code uint16

const (
	// CodeOK is the absence of an error; it never appears in an error
	// envelope and exists so the zero Code is unmistakably "no error".
	CodeOK Code = 0
	// CodeInternal is the catch-all for contained panics and unclassified
	// failures — the transport's 500.
	CodeInternal Code = 1
	// CodeBadRequest covers every malformed input: NaN/inverted ranges,
	// non-finite values, empty payloads, invalid attribute options.
	CodeBadRequest Code = 2
	// CodeNotFound is an unknown tenant or attribute.
	CodeNotFound Code = 3
	// CodeOverQuota is admission-control refusal; the envelope carries a
	// retry-after hint (header on HTTP, field on the wire).
	CodeOverQuota Code = 4
	// CodeDraining is graceful shutdown refusing new work.
	CodeDraining Code = 5
	// CodeConflict is an attribute re-created with a different
	// configuration.
	CodeConflict Code = 6
	// CodeTimeout is a request that ran out of its deadline budget.
	CodeTimeout Code = 7
	// CodeMethodNotAllowed is an HTTP verb other than the endpoint's
	// (HTTP-only in practice; registered here so the code space has a
	// single owner).
	CodeMethodNotAllowed Code = 8
)

// Typed service sentinels. Transports and the service core wrap these
// with %w; Classify maps any error chain containing one back to its
// numeric code, so the client can rebuild an errors.Is-compatible error
// from the code alone.
var (
	// ErrBadRequest is the root of every malformed-input error.
	// internal/server's more specific ErrBadRange/ErrBadValue wrap it.
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound reports an unknown tenant or attribute.
	ErrNotFound = errors.New("unknown tenant or attribute")
	// ErrOverQuota reports admission-control refusal.
	ErrOverQuota = errors.New("tenant over quota")
	// ErrDraining reports a server refusing new work during graceful
	// shutdown.
	ErrDraining = errors.New("server shutting down")
	// ErrConflict reports an attribute that exists with a different
	// configuration.
	ErrConflict = errors.New("attribute exists with different configuration")
	// ErrTimeout reports an exhausted request deadline.
	ErrTimeout = errors.New("deadline exceeded")
	// ErrInternal reports a contained panic or unclassified failure.
	ErrInternal = errors.New("internal error")
	// ErrMethodNotAllowed reports a wrong HTTP verb.
	ErrMethodNotAllowed = errors.New("method not allowed")
)

// names holds the stable string form of each code — the `code` field of
// the HTTP JSON error body. Frozen alongside the numeric values.
var names = map[Code]string{
	CodeOK:               "ok",
	CodeInternal:         "internal",
	CodeBadRequest:       "bad_request",
	CodeNotFound:         "not_found",
	CodeOverQuota:        "over_quota",
	CodeDraining:         "draining",
	CodeConflict:         "conflict",
	CodeTimeout:          "timeout",
	CodeMethodNotAllowed: "method_not_allowed",
}

var sentinels = map[Code]error{
	CodeInternal:         ErrInternal,
	CodeBadRequest:       ErrBadRequest,
	CodeNotFound:         ErrNotFound,
	CodeOverQuota:        ErrOverQuota,
	CodeDraining:         ErrDraining,
	CodeConflict:         ErrConflict,
	CodeTimeout:          ErrTimeout,
	CodeMethodNotAllowed: ErrMethodNotAllowed,
}

// String returns the stable machine-readable name ("bad_request",
// "over_quota", …). Unknown codes — a newer peer's — render as
// "internal" rather than inventing a name the registry never issued.
func (c Code) String() string {
	if s, ok := names[c]; ok {
		return s
	}
	return names[CodeInternal]
}

// Parse resolves a stable code name back to its Code. Unknown names
// (including "ok") come back as (CodeInternal, false) so a client
// talking to a newer server degrades to the catch-all instead of
// misclassifying.
func Parse(s string) (Code, bool) {
	for c, name := range names {
		if name == s && c != CodeOK {
			return c, true
		}
	}
	return CodeInternal, false
}

// Sentinel returns the canonical typed error for a code — what the
// client wraps so errors.Is works identically on both sides of either
// transport. Unknown codes map to ErrInternal.
func (c Code) Sentinel() error {
	if err, ok := sentinels[c]; ok {
		return err
	}
	return ErrInternal
}

// HTTPStatus maps a code onto the HTTP transport's status line.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK:
		return 200
	case CodeBadRequest:
		return 400
	case CodeNotFound:
		return 404
	case CodeMethodNotAllowed:
		return 405
	case CodeConflict:
		return 409
	case CodeOverQuota:
		return 429
	case CodeDraining:
		return 503
	case CodeTimeout:
		return 504
	default:
		return 500
	}
}

// Classify maps an error chain to its stable code. Option-validation
// failures from the estimator core (errs.ErrBadOption and friends) are
// client mistakes, not server faults, so they classify as bad_request —
// a contained panic or anything unrecognised is internal.
func Classify(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, errs.ErrBadOption),
		errors.Is(err, errs.ErrInvalidDomain),
		errors.Is(err, errs.ErrEmptySample):
		return CodeBadRequest
	case errors.Is(err, ErrOverQuota):
		return CodeOverQuota
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrConflict):
		return CodeConflict
	case errors.Is(err, ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, ErrMethodNotAllowed):
		return CodeMethodNotAllowed
	default:
		return CodeInternal
	}
}

// APIError is the transport-neutral error payload: the JSON object the
// HTTP transport nests under "error", and the (code, message) pair the
// wire protocol's error frame carries. Code is the stable string form.
type APIError struct {
	// Code is the stable machine-readable identifier from this
	// package's registry.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// ErrorBody is the HTTP transport's error envelope: every non-2xx
// response body is exactly this shape.
type ErrorBody struct {
	Error APIError `json:"error"`
}
