// Package faultinject is a test-time fault-injection registry: production
// code calls Check at named sites ("bandwidth.lscv", "core.build.kernel",
// "hybrid.changepoints", …) and tests force a failure at any site with
// Enable or EnablePanic. This is how the graceful-degradation ladder of
// internal/robust is exercised rung by rung — a test injects a fault into
// the kernel fit and asserts the ladder lands on equi-depth, and so on.
//
// When no fault is registered, Check costs a single atomic load, so the
// hooks can stay compiled into serving paths.
//
// The registry is process-global. Tests that enable faults must Reset (or
// Disable each site) before finishing, and must not run in parallel with
// tests that exercise the same sites; the helper
//
//	t.Cleanup(faultinject.Reset)
//
// is the expected idiom.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// fault is one registered failure: a non-nil err makes Check return it; a
// panic message makes Check panic instead (exercising recover paths).
type fault struct {
	err      error
	panicMsg string
	// remaining > 0 limits how many times the fault fires before it
	// disables itself; 0 means it fires every time until Disabled.
	remaining int
}

var (
	mu     sync.Mutex
	faults map[string]*fault
	// active mirrors len(faults) so Check's fast path is one atomic load.
	active atomic.Int64
)

// Enable registers err to be returned by Check(site) until Disable or
// Reset. A nil err disables the site.
func Enable(site string, err error) {
	if err == nil {
		Disable(site)
		return
	}
	set(site, &fault{err: err})
}

// EnableOnce registers err to be returned by the next n Check(site) calls,
// after which the site self-disables. Useful for "fail K refits, then
// recover" scenarios.
func EnableOnce(site string, err error, n int) {
	if err == nil || n <= 0 {
		Disable(site)
		return
	}
	set(site, &fault{err: err, remaining: n})
}

// EnablePanic makes Check(site) panic with msg, exercising recover()
// containment in the caller.
func EnablePanic(site string, msg string) {
	set(site, &fault{panicMsg: msg})
}

func set(site string, f *fault) {
	mu.Lock()
	defer mu.Unlock()
	if faults == nil {
		faults = make(map[string]*fault)
	}
	if _, ok := faults[site]; !ok {
		active.Add(1)
	}
	faults[site] = f
}

// Disable removes the fault at site, if any.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := faults[site]; ok {
		delete(faults, site)
		active.Add(-1)
	}
}

// Reset removes every registered fault.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int64(len(faults)))
	faults = nil
}

// Check reports the fault registered at site: nil when none, the injected
// error when one is enabled, or a panic when EnablePanic was used. The
// no-fault fast path is a single atomic load.
func Check(site string) error {
	if active.Load() == 0 {
		return nil
	}
	mu.Lock()
	f, ok := faults[site]
	if ok && f.remaining > 0 {
		f.remaining--
		if f.remaining == 0 {
			delete(faults, site)
			active.Add(-1)
		}
	}
	mu.Unlock()
	if !ok {
		return nil
	}
	if f.panicMsg != "" {
		panic("faultinject: " + f.panicMsg)
	}
	return f.err
}

// Sites returns the currently faulted site names, for diagnostics.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(faults))
	for s := range faults {
		out = append(out, s)
	}
	return out
}
