package faultinject

import (
	"errors"
	"testing"
)

func TestCheckCleanByDefault(t *testing.T) {
	t.Cleanup(Reset)
	if err := Check("nowhere"); err != nil {
		t.Fatalf("clean registry returned %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	t.Cleanup(Reset)
	want := errors.New("boom")
	Enable("site.a", want)
	if err := Check("site.a"); !errors.Is(err, want) {
		t.Fatalf("Check = %v, want %v", err, want)
	}
	// A second check still fires (persistent fault).
	if err := Check("site.a"); !errors.Is(err, want) {
		t.Fatalf("second Check = %v, want %v", err, want)
	}
	// Other sites are unaffected.
	if err := Check("site.b"); err != nil {
		t.Fatalf("unfaulted site returned %v", err)
	}
	Disable("site.a")
	if err := Check("site.a"); err != nil {
		t.Fatalf("disabled site returned %v", err)
	}
}

func TestEnableNilDisables(t *testing.T) {
	t.Cleanup(Reset)
	Enable("site.a", errors.New("boom"))
	Enable("site.a", nil)
	if err := Check("site.a"); err != nil {
		t.Fatalf("Enable(nil) should disable, got %v", err)
	}
}

func TestEnableOnce(t *testing.T) {
	t.Cleanup(Reset)
	want := errors.New("transient")
	EnableOnce("site.once", want, 2)
	for i := 0; i < 2; i++ {
		if err := Check("site.once"); !errors.Is(err, want) {
			t.Fatalf("fire %d = %v, want %v", i, err, want)
		}
	}
	if err := Check("site.once"); err != nil {
		t.Fatalf("after n fires, Check = %v, want nil", err)
	}
	if n := len(Sites()); n != 0 {
		t.Fatalf("self-disabled fault left %d sites", n)
	}
}

func TestEnablePanic(t *testing.T) {
	t.Cleanup(Reset)
	EnablePanic("site.p", "induced")
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Check should panic")
		}
	}()
	Check("site.p")
}

func TestReset(t *testing.T) {
	Enable("site.a", errors.New("a"))
	Enable("site.b", errors.New("b"))
	Reset()
	if err := Check("site.a"); err != nil {
		t.Fatalf("after Reset, Check = %v", err)
	}
	if n := len(Sites()); n != 0 {
		t.Fatalf("after Reset, %d sites remain", n)
	}
}
