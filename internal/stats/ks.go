package stats

import (
	"math"
	"sort"
)

// KolmogorovSmirnov returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F̂₁(x) − F̂₂(x)|: the largest gap between the empirical CDFs
// of the two samples. D ∈ [0, 1]; 0 means identical empirical
// distributions. Empty input yields NaN.
//
// The online-estimation layer uses D to detect distribution drift between
// the sample an estimator was fitted on and the current reservoir.
func KolmogorovSmirnov(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return math.NaN()
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		// Advance past ties together so the CDFs are compared just after
		// each distinct value.
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		if gap := math.Abs(float64(i)/na - float64(j)/nb); gap > d {
			d = gap
		}
	}
	return d
}

// KSCriticalValue returns the approximate two-sample KS critical value at
// significance level alpha for sample sizes n and m:
//
//	c(α)·√((n+m)/(n·m)),  c(α) = √(−ln(α/2)/2)
//
// D above this value rejects "same distribution" at level alpha.
func KSCriticalValue(alpha float64, n, m int) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}
