package stats

import (
	"math"
	"testing"

	"selest/internal/xrand"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(xs, xs); d != 0 {
		t.Fatalf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	if d := KolmogorovSmirnov(xs, ys); d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	// xs = {1, 3}, ys = {2, 4}: after value 1, F1=0.5, F2=0 → D = 0.5.
	xs := []float64{1, 3}
	ys := []float64{2, 4}
	if d := KolmogorovSmirnov(xs, ys); d != 0.5 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSSymmetric(t *testing.T) {
	r := xrand.New(1)
	xs := make([]float64, 100)
	ys := make([]float64, 150)
	for i := range xs {
		xs[i] = r.Normal()
	}
	for i := range ys {
		ys[i] = r.Normal() + 0.3
	}
	if d1, d2 := KolmogorovSmirnov(xs, ys), KolmogorovSmirnov(ys, xs); d1 != d2 {
		t.Fatalf("KS not symmetric: %v vs %v", d1, d2)
	}
}

func TestKSEmpty(t *testing.T) {
	if !math.IsNaN(KolmogorovSmirnov(nil, []float64{1})) {
		t.Fatal("empty sample should give NaN")
	}
}

func TestKSDetectsShift(t *testing.T) {
	r := xrand.New(2)
	const n = 500
	same1 := make([]float64, n)
	same2 := make([]float64, n)
	shifted := make([]float64, n)
	for i := 0; i < n; i++ {
		same1[i] = r.Normal()
		same2[i] = r.Normal()
		shifted[i] = r.Normal() + 1
	}
	crit := KSCriticalValue(0.01, n, n)
	if d := KolmogorovSmirnov(same1, same2); d > crit {
		t.Fatalf("same-distribution KS %v above critical %v", d, crit)
	}
	if d := KolmogorovSmirnov(same1, shifted); d <= crit {
		t.Fatalf("shifted-distribution KS %v below critical %v", d, crit)
	}
}

func TestKSCriticalValue(t *testing.T) {
	// For alpha=0.05, n=m=100: c(0.05) = 1.358…, scale = √(200/10000).
	got := KSCriticalValue(0.05, 100, 100)
	want := 1.3581015157406195 * math.Sqrt(0.02)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("critical value = %v, want %v", got, want)
	}
	if !math.IsNaN(KSCriticalValue(0, 10, 10)) || !math.IsNaN(KSCriticalValue(0.05, 0, 10)) {
		t.Fatal("invalid inputs should give NaN")
	}
	// Critical value falls with sample size.
	if KSCriticalValue(0.05, 1000, 1000) >= KSCriticalValue(0.05, 100, 100) {
		t.Fatal("critical value should shrink with n")
	}
}

func TestKSWithTies(t *testing.T) {
	// Heavy ties must not trip the pointer walk.
	xs := []float64{1, 1, 1, 2, 2}
	ys := []float64{1, 2, 2, 2, 3}
	d := KolmogorovSmirnov(xs, ys)
	// After value 1: F1 = 0.6, F2 = 0.2 → gap 0.4.
	// After value 2: F1 = 1.0, F2 = 0.8 → gap 0.2.
	if math.Abs(d-0.4) > 1e-12 {
		t.Fatalf("KS with ties = %v, want 0.4", d)
	}
}
