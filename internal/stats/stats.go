// Package stats provides the descriptive statistics the estimators need:
// moments, quantiles, the interquartile range, the robust scale estimate
// s = min(stddev, IQR/1.348) that the paper's normal scale rules plug into
// their smoothing-parameter formulas, and the empirical CDF.
package stats

import (
	"math"
	"sort"
)

// iqrToSigma converts an interquartile range to a normal-equivalent
// standard deviation: for N(0,σ²), IQR = 1.348·σ (paper §4.1/§4.2).
const iqrToSigma = 1.348

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator), or NaN
// for fewer than two observations. A two-pass algorithm avoids catastrophic
// cancellation on the large-magnitude integer domains the paper uses.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the p-quantile of xs using linear interpolation between
// order statistics (Hyndman–Fan type 7, the R and NumPy default). The input
// need not be sorted; a sorted copy is made. Empty input yields NaN.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted is Quantile for already-sorted input, avoiding the copy.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// IQR returns the interquartile range Q(0.75) − Q(0.25).
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, 0.75) - QuantileSorted(sorted, 0.25)
}

// Scale returns the paper's robust scale estimate for the normal scale
// rules: min(sample standard deviation, IQR/1.348). Using the minimum
// hedges against the oversmoothing that a heavy-tailed or multi-modal
// sample inflicts on the raw standard deviation (paper §4.1).
//
// If one of the two estimates is zero or NaN (constant or near-constant
// samples), the other is used; if both degenerate, Scale returns 0 and the
// caller must treat the sample as degenerate.
func Scale(xs []float64) float64 {
	return combineScale(StdDev(xs), IQR(xs)/iqrToSigma)
}

// ScaleSorted is Scale for already-sorted input: the quartiles come
// straight from the order statistics with no sorting copy. The standard
// deviation is accumulated in sorted order, so the result can differ from
// Scale on the same (unsorted) sample by a few ulps of summation
// rounding — the fit-path engine's callers tolerate 1e-12.
func ScaleSorted(sorted []float64) float64 {
	iqr := QuantileSorted(sorted, 0.75) - QuantileSorted(sorted, 0.25)
	return combineScale(StdDev(sorted), iqr/iqrToSigma)
}

// combineScale applies the paper's min(sd, IQR/1.348) rule with the
// degenerate-estimate fallbacks documented on Scale.
func combineScale(sd, iqrS float64) float64 {
	sdOK := !math.IsNaN(sd) && sd > 0
	iqrOK := !math.IsNaN(iqrS) && iqrS > 0
	switch {
	case sdOK && iqrOK:
		return math.Min(sd, iqrS)
	case sdOK:
		return sd
	case iqrOK:
		return iqrS
	default:
		return 0
	}
}

// ECDF is the empirical cumulative distribution function of a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns F̂(x) = (#samples <= x) / n. An empty sample yields 0.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Q25, Q50, Q75  float64
	IQR, ScaleEst  float64
	DistinctValues int
}

// Summarize computes a Summary in one pass over a sorted copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{N: 0, Mean: math.NaN(), Std: math.NaN(), Min: math.NaN(), Max: math.NaN(), Q25: math.NaN(), Q50: math.NaN(), Q75: math.NaN(), IQR: math.NaN()}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	q25 := QuantileSorted(sorted, 0.25)
	q75 := QuantileSorted(sorted, 0.75)
	return Summary{
		N:              len(xs),
		Mean:           Mean(xs),
		Std:            StdDev(xs),
		Min:            sorted[0],
		Max:            sorted[len(sorted)-1],
		Q25:            q25,
		Q50:            QuantileSorted(sorted, 0.5),
		Q75:            q75,
		IQR:            q75 - q25,
		ScaleEst:       Scale(xs),
		DistinctValues: distinct,
	}
}
