package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n−1 denominator: 32/7.
	if got, want := Variance(xs), 32.0/7.0; !xmath.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !xmath.AlmostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of single observation should be NaN")
	}
}

func TestVarianceLargeMagnitude(t *testing.T) {
	// Catastrophic-cancellation guard: values near 2^20 with tiny spread.
	base := math.Pow(2, 20)
	xs := []float64{base, base + 1, base + 2}
	if got := Variance(xs); !xmath.AlmostEqual(got, 1, 1e-9) {
		t.Fatalf("Variance at large magnitude = %v, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for p, want := range cases {
		if got := Quantile(xs, p); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestIQRNormalConsistency(t *testing.T) {
	// For a large N(0,1) sample, IQR/1.348 ≈ 1.
	r := xrand.New(42)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.Normal()
	}
	if got := IQR(xs) / 1.348; math.Abs(got-1) > 0.02 {
		t.Fatalf("IQR/1.348 on N(0,1) = %v, want ~1", got)
	}
}

func TestScalePicksMinimum(t *testing.T) {
	// Outlier-contaminated sample: the stddev is inflated by the tail, the
	// IQR-based scale is what the paper's min rule should select.
	r := xrand.New(7)
	xs := make([]float64, 20000)
	for i := range xs {
		if i%100 == 0 {
			xs[i] = r.NormalMeanStd(0, 500)
		} else {
			xs[i] = r.Normal()
		}
	}
	s := Scale(xs)
	sd := StdDev(xs)
	if s >= sd {
		t.Fatalf("Scale = %v should be below inflated stddev %v", s, sd)
	}
}

func TestScaleDegenerate(t *testing.T) {
	if got := Scale([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Scale of constant sample = %v, want 0", got)
	}
	// Half constant: IQR is 0 but stddev is positive -> use stddev.
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 100}
	if got := Scale(xs); got <= 0 {
		t.Fatalf("Scale with zero IQR = %v, want stddev fallback > 0", got)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := map[float64]float64{
		0.5: 0,
		1:   0.25,
		2:   0.75,
		2.5: 0.75,
		3:   1,
		9:   1,
	}
	for x, want := range cases {
		if got := e.At(x); got != want {
			t.Fatalf("ECDF(%v) = %v, want %v", x, got, want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d, want 4", e.N())
	}
	empty := NewECDF(nil)
	if empty.At(0) != 0 {
		t.Fatal("empty ECDF should be 0 everywhere")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 2, 3, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 4 || s.DistinctValues != 4 {
		t.Fatalf("Summary basics wrong: %+v", s)
	}
	if s.Q50 != 2 {
		t.Fatalf("median = %v, want 2", s.Q50)
	}
	if !xmath.AlmostEqual(s.IQR, s.Q75-s.Q25, 1e-12) {
		t.Fatal("IQR inconsistent with quartiles")
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty Summary wrong: %+v", empty)
	}
}

// Property: quantile is monotone in p and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	r := xrand.New(11)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	prop := func(raw uint16) bool {
		p1 := float64(raw%1000) / 1000
		p2 := p1 + 0.001
		q1 := QuantileSorted(sorted, p1)
		q2 := QuantileSorted(sorted, p2)
		return q1 <= q2 && q1 >= sorted[0] && q2 <= sorted[len(sorted)-1]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ECDF is monotone.
func TestQuickECDFMonotone(t *testing.T) {
	r := xrand.New(13)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Normal()
	}
	e := NewECDF(xs)
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
