// Package categorical estimates selectivities on categorical domains —
// the other branch of the paper's domain taxonomy (§1: "for a categorical
// domain, estimation methods are only able to estimate the probability
// that a record will be in one of the categories"). Categorical attributes
// have no ordering, so the supported predicates are equality and set
// membership, not ranges.
//
// The estimator is a sample frequency table with two refinements:
//
//   - optional Laplace (add-α) smoothing, so categories absent from the
//     sample do not estimate to exactly zero (a zero selectivity makes an
//     optimiser pick plans that explode when the estimate is wrong); and
//   - an unseen-mass model: the leftover probability of never-sampled
//     categories is spread over the declared remainder of the domain,
//     following the Good–Turing intuition that the number of
//     singleton sample categories estimates the unseen mass.
package categorical

// Estimator is a categorical-domain selectivity estimator. Construct with
// New; immutable afterwards and safe for concurrent use.
type Estimator struct {
	freq       map[string]int
	n          int
	alpha      float64
	domainSize int
	singletons int
}

// Config parameterises New.
type Config struct {
	// Alpha is the Laplace smoothing constant; 0 disables smoothing.
	Alpha float64
	// DomainSize is the number of distinct categories in the attribute's
	// domain, when known. 0 means "unknown": unseen categories estimate
	// via the Good–Turing singleton mass spread over nothing specific,
	// i.e. a single pooled unseen estimate.
	DomainSize int
}

// New builds the estimator from a sample of category values.
func New(samples []string, cfg Config) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, errEmpty
	}
	if cfg.Alpha < 0 {
		return nil, errAlpha
	}
	e := &Estimator{
		freq:       make(map[string]int, len(samples)),
		n:          len(samples),
		alpha:      cfg.Alpha,
		domainSize: cfg.DomainSize,
	}
	for _, s := range samples {
		e.freq[s]++
	}
	for _, c := range e.freq {
		if c == 1 {
			e.singletons++
		}
	}
	return e, nil
}

// sentinel errors; var-based so callers can compare with errors.Is.
var (
	errEmpty = constError("categorical: empty sample set")
	errAlpha = constError("categorical: negative smoothing constant")
)

// constError is a string-backed error usable in const-like declarations.
type constError string

func (e constError) Error() string { return string(e) }

// Selectivity returns the estimated fraction of records equal to the
// category.
func (e *Estimator) Selectivity(category string) float64 {
	count, seen := e.freq[category]
	distinct := len(e.freq)
	switch {
	case seen:
		if e.alpha > 0 {
			d := e.effectiveDomain()
			return (float64(count) + e.alpha) / (float64(e.n) + e.alpha*float64(d))
		}
		return float64(count) / float64(e.n)
	case e.alpha > 0:
		d := e.effectiveDomain()
		return e.alpha / (float64(e.n) + e.alpha*float64(d))
	default:
		// Good–Turing: the total unseen mass ≈ singletons/n, spread over
		// the unseen part of the domain when its size is known.
		unseenMass := float64(e.singletons) / float64(e.n)
		if e.domainSize > distinct {
			return unseenMass / float64(e.domainSize-distinct)
		}
		if e.domainSize > 0 {
			return 0 // domain fully observed: the category does not exist
		}
		return unseenMass // pooled estimate for "some unseen category"
	}
}

// effectiveDomain returns the domain size used for smoothing: the declared
// size when known, otherwise the observed distinct count.
func (e *Estimator) effectiveDomain() int {
	if e.domainSize > 0 {
		return e.domainSize
	}
	return len(e.freq)
}

// SelectivityIn returns the estimated fraction of records whose category
// is in the given set (an IN-list predicate). Duplicates in the list are
// counted once.
func (e *Estimator) SelectivityIn(categories []string) float64 {
	seen := make(map[string]bool, len(categories))
	sum := 0.0
	for _, c := range categories {
		if seen[c] {
			continue
		}
		seen[c] = true
		sum += e.Selectivity(c)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Distinct returns the number of distinct categories observed.
func (e *Estimator) Distinct() int { return len(e.freq) }

// SampleSize returns the number of samples.
func (e *Estimator) SampleSize() int { return e.n }

// UnseenMass returns the Good–Turing estimate of the total probability of
// categories absent from the sample.
func (e *Estimator) UnseenMass() float64 {
	return float64(e.singletons) / float64(e.n)
}

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string { return "categorical" }
