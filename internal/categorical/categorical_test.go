package categorical

import (
	"fmt"
	"math"
	"testing"

	"selest/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := New([]string{"a"}, Config{Alpha: -1}); err == nil {
		t.Fatal("negative alpha should error")
	}
}

func TestPlainFrequencies(t *testing.T) {
	e, err := New([]string{"a", "a", "b", "c"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity("a"); got != 0.5 {
		t.Fatalf("σ̂(a) = %v, want 0.5", got)
	}
	if got := e.Selectivity("b"); got != 0.25 {
		t.Fatalf("σ̂(b) = %v, want 0.25", got)
	}
	if e.Distinct() != 3 || e.SampleSize() != 4 {
		t.Fatalf("Distinct/SampleSize = %d/%d", e.Distinct(), e.SampleSize())
	}
	if e.Name() != "categorical" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestUnseenWithKnownDomain(t *testing.T) {
	// 4 samples over domain of 10 categories; "b" and "c" are singletons.
	e, err := New([]string{"a", "a", "b", "c"}, Config{DomainSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Unseen mass = 2/4 = 0.5, spread over 7 unseen categories.
	want := 0.5 / 7
	if got := e.Selectivity("z"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("unseen σ̂ = %v, want %v", got, want)
	}
	if got := e.UnseenMass(); got != 0.5 {
		t.Fatalf("UnseenMass = %v", got)
	}
}

func TestUnseenFullyObservedDomain(t *testing.T) {
	e, err := New([]string{"a", "b", "a", "b"}, Config{DomainSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity("z"); got != 0 {
		t.Fatalf("nonexistent category σ̂ = %v, want 0", got)
	}
}

func TestLaplaceSmoothing(t *testing.T) {
	e, err := New([]string{"a", "a", "b"}, Config{Alpha: 1, DomainSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// (2+1)/(3+1·4) for a; (0+1)/(3+4) for unseen.
	if got := e.Selectivity("a"); math.Abs(got-3.0/7) > 1e-12 {
		t.Fatalf("smoothed σ̂(a) = %v", got)
	}
	if got := e.Selectivity("z"); math.Abs(got-1.0/7) > 1e-12 {
		t.Fatalf("smoothed unseen σ̂ = %v", got)
	}
	// Smoothed probabilities over the whole domain sum to 1.
	total := 2*e.Selectivity("z") + e.Selectivity("a") + e.Selectivity("b")
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("domain total = %v, want 1", total)
	}
}

func TestSelectivityIn(t *testing.T) {
	e, err := New([]string{"a", "a", "b", "c"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.SelectivityIn([]string{"a", "b"}); got != 0.75 {
		t.Fatalf("IN σ̂ = %v, want 0.75", got)
	}
	// Duplicates in the list count once.
	if got := e.SelectivityIn([]string{"a", "a"}); got != 0.5 {
		t.Fatalf("IN with dups σ̂ = %v, want 0.5", got)
	}
	if got := e.SelectivityIn(nil); got != 0 {
		t.Fatalf("empty IN σ̂ = %v", got)
	}
}

func TestAccuracyOnZipfCategories(t *testing.T) {
	// Zipf-distributed categories: sampled frequencies must track the true
	// ones for the common categories.
	r := xrand.New(1)
	z := xrand.NewZipf(r, 1.5, 1, 999)
	const popN = 200000
	pop := make([]string, popN)
	trueFreq := make(map[string]int)
	for i := range pop {
		c := fmt.Sprintf("cat%d", z.Uint64())
		pop[i] = c
		trueFreq[c]++
	}
	// Sample the first 2000 (the population order is already random).
	e, err := New(pop[:2000], Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"cat0", "cat1", "cat2"} {
		truth := float64(trueFreq[c]) / popN
		got := e.Selectivity(c)
		if math.Abs(got-truth)/truth > 0.2 {
			t.Fatalf("%s: σ̂ %v vs truth %v", c, got, truth)
		}
	}
}

func TestUnseenPooledWithoutDomain(t *testing.T) {
	e, err := New([]string{"a", "b", "c", "c"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Two singletons of four samples: pooled unseen estimate 0.5.
	if got := e.Selectivity("z"); got != 0.5 {
		t.Fatalf("pooled unseen σ̂ = %v", got)
	}
}
