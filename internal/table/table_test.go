package table

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/xrand"
)

func mustColumn(t *testing.T, values []float64) *Column {
	t.Helper()
	c, err := NewColumn(values)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColumnRejectsNaN(t *testing.T) {
	if _, err := NewColumn([]float64{1, math.NaN(), 3}); err == nil {
		t.Fatal("NaN should be rejected")
	}
}

func TestColumnBasics(t *testing.T) {
	c := mustColumn(t, []float64{5, 1, 3, 3, 9})
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.At(0) != 5 || c.At(4) != 9 {
		t.Fatal("At does not preserve insertion order")
	}
	if c.Min() != 1 || c.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if c.DistinctCount() != 4 {
		t.Fatalf("DistinctCount = %d, want 4", c.DistinctCount())
	}
}

func TestRangeCount(t *testing.T) {
	c := mustColumn(t, []float64{1, 2, 2, 3, 5, 8})
	cases := []struct {
		a, b float64
		want int
	}{
		{2, 2, 2},   // duplicates, inclusive both ends
		{1, 8, 6},   // full range
		{0, 0.5, 0}, // below all
		{9, 99, 0},  // above all
		{2.5, 4, 1}, // interior
		{5, 1, 0},   // inverted
		{-1e9, 1e9, 6},
	}
	for _, tc := range cases {
		if got := c.RangeCount(tc.a, tc.b); got != tc.want {
			t.Errorf("RangeCount(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSelectivity(t *testing.T) {
	c := mustColumn(t, []float64{1, 2, 3, 4})
	if got := c.Selectivity(2, 3); got != 0.5 {
		t.Fatalf("Selectivity = %v, want 0.5", got)
	}
	empty := mustColumn(t, nil)
	if empty.Selectivity(0, 1) != 0 {
		t.Fatal("empty column selectivity should be 0")
	}
}

func TestRangeCountMatchesScan(t *testing.T) {
	r := xrand.New(3)
	values := make([]float64, 5000)
	for i := range values {
		values[i] = math.Floor(r.Float64() * 100) // lots of duplicates
	}
	c := mustColumn(t, values)
	for trial := 0; trial < 200; trial++ {
		a := r.Float64() * 100
		b := a + r.Float64()*20
		want := 0
		for _, v := range values {
			if v >= a && v <= b {
				want++
			}
		}
		if got := c.RangeCount(a, b); got != want {
			t.Fatalf("RangeCount(%v,%v) = %d, scan says %d", a, b, got, want)
		}
	}
}

func TestRelationValidation(t *testing.T) {
	if _, err := NewRelation("r", nil); err == nil {
		t.Fatal("empty relation should error")
	}
	if _, err := NewRelation("r", map[string][]float64{"a": {1, 2}, "b": {1}}); err == nil {
		t.Fatal("ragged columns should error")
	}
	if _, err := NewRelation("r", map[string][]float64{"a": {math.NaN()}}); err == nil {
		t.Fatal("NaN column should error")
	}
}

func TestRelationAccess(t *testing.T) {
	r, err := NewRelation("pts", map[string][]float64{
		"x": {0, 1, 2, 3},
		"y": {0, 10, 20, 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "pts" || r.Len() != 4 {
		t.Fatalf("Name/Len = %v/%v", r.Name(), r.Len())
	}
	cols := r.Columns()
	if len(cols) != 2 || cols[0] != "x" || cols[1] != "y" {
		t.Fatalf("Columns = %v", cols)
	}
	if _, ok := r.Column("z"); ok {
		t.Fatal("missing column lookup should fail")
	}
	x, ok := r.Column("x")
	if !ok || x.Len() != 4 {
		t.Fatal("column lookup failed")
	}
}

func TestRangeCount2D(t *testing.T) {
	r, err := NewRelation("pts", map[string][]float64{
		"x": {0, 1, 2, 3, 4},
		"y": {0, 1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.RangeCount2D("x", "y", 1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 { // rows (1,1) and (2,2)
		t.Fatalf("RangeCount2D = %d, want 2", got)
	}
	if _, err := r.RangeCount2D("x", "nope", 0, 1, 0, 1); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := r.RangeCount2D("nope", "y", 0, 1, 0, 1); err == nil {
		t.Fatal("unknown column should error")
	}
}

// Property: RangeCount is additive over a partition at any split point.
func TestQuickRangeCountAdditive(t *testing.T) {
	r := xrand.New(17)
	values := make([]float64, 1000)
	for i := range values {
		values[i] = r.Float64() * 50
	}
	c := mustColumn(t, values)
	prop := func(seed uint16) bool {
		a := float64(seed%50) - 1
		m := a + 7
		b := a + 20
		// [a,b] = [a,m] + (m,b]: use nextafter to make the halves disjoint.
		left := c.RangeCount(a, m)
		right := c.RangeCount(math.Nextafter(m, math.Inf(1)), b)
		return left+right == c.RangeCount(a, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RangeCount is monotone in the interval: widening never shrinks.
func TestQuickRangeCountMonotone(t *testing.T) {
	r := xrand.New(19)
	values := make([]float64, 500)
	for i := range values {
		values[i] = r.Normal() * 10
	}
	c := mustColumn(t, values)
	prop := func(seed uint16) bool {
		a := float64(seed%60) - 30
		b := a + 5
		return c.RangeCount(a, b) <= c.RangeCount(a-1, b+1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
