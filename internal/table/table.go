// Package table is the miniature relation substrate the estimators
// approximate: immutable columns of metric attribute values with exact
// range-count queries. The exact counts are the ground truth ("instance
// selectivity") against which every estimator's error is measured, exactly
// as the paper measures |Q(a,b)| against σ̂·|D|.
package table

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/fsort"
)

// Column is an immutable column of float64 attribute values. A sorted copy
// is kept alongside the insertion order so that exact range counts cost
// O(log n) — cheap enough to evaluate thousands of ground-truth queries per
// experiment over 100k+ record files.
type Column struct {
	values []float64
	sorted []float64
}

// NewColumn builds a column from values (copied). NaN values are rejected:
// a NaN attribute value has no place on a metric domain and would silently
// corrupt the sorted index.
func NewColumn(values []float64) (*Column, error) {
	for i, v := range values {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("table: NaN value at row %d", i)
		}
	}
	c := &Column{
		values: append([]float64(nil), values...),
		sorted: append([]float64(nil), values...),
	}
	fsort.Float64s(c.sorted)
	return c, nil
}

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.values) }

// At returns the value of row i in insertion order.
func (c *Column) At(i int) float64 { return c.values[i] }

// Values returns the column's values in insertion order. The returned slice
// is shared with the column and must not be modified.
func (c *Column) Values() []float64 { return c.values }

// Sorted returns the column's values in ascending order. The returned slice
// is shared with the column and must not be modified.
func (c *Column) Sorted() []float64 { return c.sorted }

// Min returns the smallest value; it panics on an empty column.
func (c *Column) Min() float64 { return c.sorted[0] }

// Max returns the largest value; it panics on an empty column.
func (c *Column) Max() float64 { return c.sorted[len(c.sorted)-1] }

// RangeCount returns the exact number of rows with a <= value <= b —
// the result size of the range query Q(a,b). Inverted ranges count zero.
func (c *Column) RangeCount(a, b float64) int {
	if b < a {
		return 0
	}
	lo := sort.SearchFloat64s(c.sorted, a)
	hi := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > b })
	return hi - lo
}

// Selectivity returns the instance selectivity of Q(a,b): RangeCount / Len.
// An empty column yields 0.
func (c *Column) Selectivity(a, b float64) float64 {
	if len(c.values) == 0 {
		return 0
	}
	return float64(c.RangeCount(a, b)) / float64(len(c.values))
}

// DistinctCount returns the number of distinct values in the column.
func (c *Column) DistinctCount() int {
	if len(c.sorted) == 0 {
		return 0
	}
	n := 1
	for i := 1; i < len(c.sorted); i++ {
		if c.sorted[i] != c.sorted[i-1] {
			n++
		}
	}
	return n
}

// Relation is a named collection of equal-length columns.
type Relation struct {
	name  string
	order []string
	cols  map[string]*Column
	rows  int
}

// NewRelation builds a relation from named value slices. All columns must
// have the same length and at least one column is required.
func NewRelation(name string, columns map[string][]float64) (*Relation, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("table: relation %q needs at least one column", name)
	}
	r := &Relation{name: name, cols: make(map[string]*Column, len(columns))}
	rows := -1
	// Deterministic column order for iteration and printing.
	names := make([]string, 0, len(columns))
	for cn := range columns {
		names = append(names, cn)
	}
	sort.Strings(names)
	for _, cn := range names {
		vals := columns[cn]
		if rows == -1 {
			rows = len(vals)
		} else if len(vals) != rows {
			return nil, fmt.Errorf("table: column %q has %d rows, want %d", cn, len(vals), rows)
		}
		col, err := NewColumn(vals)
		if err != nil {
			return nil, fmt.Errorf("table: column %q: %w", cn, err)
		}
		r.cols[cn] = col
		r.order = append(r.order, cn)
	}
	r.rows = rows
	return r, nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Len returns the number of rows.
func (r *Relation) Len() int { return r.rows }

// Columns returns the column names in deterministic (sorted) order.
func (r *Relation) Columns() []string {
	return append([]string(nil), r.order...)
}

// Column returns the named column.
func (r *Relation) Column(name string) (*Column, bool) {
	c, ok := r.cols[name]
	return c, ok
}

// RangeCount2D returns the exact number of rows with
// ax <= xcol <= bx and ay <= ycol <= by, by full scan. It supports the
// two-dimensional kernel-estimation extension.
func (r *Relation) RangeCount2D(xcol, ycol string, ax, bx, ay, by float64) (int, error) {
	cx, ok := r.cols[xcol]
	if !ok {
		return 0, fmt.Errorf("table: relation %q has no column %q", r.name, xcol)
	}
	cy, ok := r.cols[ycol]
	if !ok {
		return 0, fmt.Errorf("table: relation %q has no column %q", r.name, ycol)
	}
	count := 0
	xs, ys := cx.values, cy.values
	for i := range xs {
		if xs[i] >= ax && xs[i] <= bx && ys[i] >= ay && ys[i] <= by {
			count++
		}
	}
	return count, nil
}
