package online

import (
	"math"
	"sync"
	"testing"

	"selest/internal/kde"
	"selest/internal/xrand"
)

// TestClosedFormBuilderFits pins the builder's contract: a fit over the
// snapshot it owns, correct selectivities, and hull-domain defaulting.
func TestClosedFormBuilderFits(t *testing.T) {
	r := xrand.New(17)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = r.Float64() * 1000
	}
	fit, err := ClosedFormBuilder(0, 0)(append([]float64(nil), xs...))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fit.(*kde.BetaEstimator); !ok {
		t.Fatalf("builder fitted %T, want *kde.BetaEstimator", fit)
	}
	if s := fit.Selectivity(0, 500); math.Abs(s-0.5) > 0.05 {
		t.Fatalf("Selectivity(0, 500) = %v, want ≈0.5", s)
	}
	// A fixed domain is honoured too: the upper half holds no data, so
	// only the one-bandwidth kernel spill past the hull lands there.
	fit, err = ClosedFormBuilder(0, 2000)(append([]float64(nil), xs...))
	if err != nil {
		t.Fatal(err)
	}
	if s := fit.Selectivity(1000, 2000); s > 0.05 {
		t.Fatalf("empty upper half has selectivity %v", s)
	}
	if s := fit.Selectivity(1200, 2000); s != 0 {
		t.Fatalf("region beyond kernel reach has selectivity %v", s)
	}
}

// TestClosedFormShardDeterminism pins the closed-form refit as a pure
// function of the reservoir multiset: with the stream length equal to
// the reservoir capacity no shard ever evicts, so every shard count and
// any concurrent insert interleaving retains the same records — and the
// builder (which sorts before fitting) must answer bit-identically.
// Run under -race this also exercises the ingest/refit paths for data
// races (the race-refit make target).
func TestClosedFormShardDeterminism(t *testing.T) {
	const K = 4096
	r := xrand.New(31)
	stream := make([]float64, K)
	for i := range stream {
		stream[i] = r.Float64() * 1e6
	}
	queries := [][2]float64{{0, 1e5}, {1e5, 9e5}, {4.2e5, 4.7e5}, {9.99e5, 1e6}, {0, 1e6}}

	var want []float64
	for _, shards := range []int{1, 2, 8} {
		e, err := New(ClosedFormBuilder(0, 0), Config{
			ReservoirSize: K, RefitEvery: -1, Shards: shards, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		const workers = 4
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(part []float64) {
				defer wg.Done()
				for _, x := range part {
					e.Insert(x)
				}
			}(stream[w*K/workers : (w+1)*K/workers])
		}
		wg.Wait()
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(queries))
		for i, q := range queries {
			got[i] = e.Selectivity(q[0], q[1])
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d query %v: %v != %v (bit-identity broken)", shards, queries[i], got[i], want[i])
			}
		}
	}
}
