package online

// The closed-form refit path: a Builder whose whole fit is one radix
// sort plus O(1) arithmetic. The serving engine hands each builder a
// private copy of the reservoir (Snapshot allocates), so the builder may
// sort it in place — the engine keeps the slice afterwards only as the
// drift baseline, and the Kolmogorov–Smirnov check is order-invariant.
// With the search stage gone, refit wall time is the sort plus the
// moment-index build; the refit bench pins the ratio against the DPI
// builder.

import (
	"selest/internal/bandwidth"
	"selest/internal/fsort"
	"selest/internal/kde"
)

// ClosedFormBuilder returns a Builder that fits a beta-kernel estimator
// under the closed-form beta-reference rule. A zero lo and hi leave the
// domain to each refit's sample hull — the right choice for a drifting
// stream, where a fixed domain would eventually reject the reservoir.
func ClosedFormBuilder(lo, hi float64) Builder {
	return func(samples []float64) (Fitted, error) {
		fsort.Float64s(samples)
		ctx, err := kde.NewFitContextSorted(samples)
		if err != nil {
			return nil, err
		}
		h, err := bandwidth.BetaClosedFormContext(ctx)
		if err != nil {
			return nil, err
		}
		return ctx.NewBetaEstimator(kde.BetaConfig{Bandwidth: h, DomainLo: lo, DomainHi: hi})
	}
}
