package online

import (
	"errors"
	"strings"
	"testing"

	"selest/internal/sample"
	"selest/internal/telemetry"
	"selest/internal/xrand"
)

// TestServingMetricsStructural drives the serving engine through refits
// and a degradation, then checks the serving-engine series — the stall
// histogram, the swap and coalesced counters, and the builder-rung
// gauge — through the same snapshot/exposition surface the /metrics
// endpoint serves. Values are compared as deltas: the registry is the
// process-global Default shared with every other test in the binary.
func TestServingMetricsStructural(t *testing.T) {
	before := telemetry.Default.Snapshot()

	builds := 0
	primary := func(samples []float64) (Fitted, error) {
		builds++
		if builds == 2 || builds == 3 { // fill fit ok, then two strikes
			return nil, errors.New("primary down")
		}
		return sample.NewPureEstimator(samples), nil
	}
	fallback := func(samples []float64) (Fitted, error) {
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(primary, Config{
		ReservoirSize: 32, RefitEvery: 32, Seed: 1,
		DegradeAfter: 2, Fallbacks: []Builder{fallback},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	for i := 0; i < 300; i++ {
		e.Insert(r.Float64()) // refit failures expected
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.DegradationLevel() != 1 {
		t.Fatalf("ladder never degraded (level %d); the rung gauge has nothing to show", e.DegradationLevel())
	}

	after := telemetry.Default.Snapshot()

	stall, ok := after.Histograms["selest_online_refit_stall_ns"]
	if !ok {
		t.Fatal("selest_online_refit_stall_ns histogram not registered")
	}
	stallBefore := before.Histograms["selest_online_refit_stall_ns"]
	if stall.Count <= stallBefore.Count {
		t.Fatalf("refit stall histogram did not move: %d -> %d", stallBefore.Count, stall.Count)
	}
	swaps := after.Counters["selest_online_snapshot_swaps_total"]
	if delta := swaps - before.Counters["selest_online_snapshot_swaps_total"]; delta != int64(e.Refits()) {
		t.Fatalf("snapshot swaps delta %d, want one per refit (%d)", delta, e.Refits())
	}
	if _, ok := after.Counters["selest_online_refit_coalesced_total"]; !ok {
		t.Fatal("selest_online_refit_coalesced_total not registered")
	}
	if rung := after.Gauges["selest_online_builder_rung"]; rung != 1 {
		t.Fatalf("builder rung gauge = %v, want 1 after degradation", rung)
	}

	// The exposition surface must render every serving series with its
	// type line, exactly as a scraper would see them.
	var sb strings.Builder
	if err := telemetry.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE selest_online_refit_stall_ns histogram",
		"selest_online_refit_stall_ns_count",
		"# TYPE selest_online_snapshot_swaps_total counter",
		"# TYPE selest_online_refit_coalesced_total counter",
		"# TYPE selest_online_builder_rung gauge",
		"selest_online_builder_rung 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}
