package online

import (
	"fmt"
	"sync"

	"selest/internal/sample"
	"selest/internal/stats"
	"selest/internal/xrand"
)

// lockedEstimator is the pre-serving-engine implementation, preserved
// verbatim as the oracle and benchmark baseline: every query takes the
// RWMutex read lock, every insert the write lock, and refits run while
// holding it — so a refit stalls all readers for the whole build. The
// equivalence tests pin that the snapshot engine answers bit-for-bit the
// same on the same stream; the serve benches measure what retiring this
// design buys.
type lockedEstimator struct {
	builder Builder
	cfg     Config

	mu         sync.RWMutex
	reservoir  *sample.Reservoir
	fit        Fitted
	fitSample  []float64
	sinceRefit int
	sinceCheck int
	refits     int
	inserts    int
}

func newLocked(build Builder, cfg Config) *lockedEstimator {
	cfg.applyDefaults()
	return &lockedEstimator{
		builder:   build,
		cfg:       cfg,
		reservoir: sample.NewReservoir(xrand.New(cfg.Seed), cfg.ReservoirSize),
	}
}

func (e *lockedEstimator) Insert(v float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reservoir.Add(v)
	e.inserts++
	e.sinceRefit++
	e.sinceCheck++
	switch {
	case e.fit == nil && e.reservoir.Len() >= e.cfg.ReservoirSize:
		return e.refitLocked()
	case e.fit != nil && e.cfg.RefitEvery > 0 && e.sinceRefit >= e.cfg.RefitEvery:
		return e.refitLocked()
	case e.fit != nil && e.cfg.DriftAlpha > 0 && e.sinceCheck >= e.cfg.DriftCheckEvery:
		e.sinceCheck = 0
		current := e.reservoir.Snapshot()
		d := stats.KolmogorovSmirnov(e.fitSample, current)
		if d > stats.KSCriticalValue(e.cfg.DriftAlpha, len(e.fitSample), len(current)) {
			return e.refitLocked()
		}
	}
	return nil
}

func (e *lockedEstimator) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reservoir.Len() == 0 {
		return fmt.Errorf("online: no records to fit")
	}
	return e.refitLocked()
}

// refitLocked rebuilds the fit while holding the write lock — the stall
// the snapshot engine exists to remove.
func (e *lockedEstimator) refitLocked() error {
	smp := e.reservoir.Snapshot()
	fit, err := e.builder(smp)
	if err != nil {
		e.sinceRefit = 0
		e.sinceCheck = 0
		return fmt.Errorf("online: refit (fit kept serving): %w", err)
	}
	e.fit = fit
	e.fitSample = smp
	e.sinceRefit = 0
	e.sinceCheck = 0
	e.refits++
	return nil
}

func (e *lockedEstimator) Selectivity(a, b float64) float64 {
	e.mu.RLock()
	fit := e.fit
	e.mu.RUnlock()
	if fit == nil {
		return 0
	}
	return fit.Selectivity(a, b)
}

func (e *lockedEstimator) Refits() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.refits
}
