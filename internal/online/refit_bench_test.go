package online

// BenchmarkRefit* — the committed evidence for the closed-form refit
// path (BENCH_refit.json via `make bench-refit`). Two views:
//
//   - Refit measures one end-to-end builder invocation per rule on a
//     fresh snapshot copy — exactly what the serving engine pays inside
//     refit() after the reservoir copy. The sort dominates every rule
//     here; the closed-form win is the gap to the dpi row.
//   - RefitSelector isolates the bandwidth stage on a prebuilt context:
//     the part the closed-form engine collapses from a pilot cascade to
//     O(1) arithmetic (≥10× at n = 10⁶; in practice ~10⁴×).
//   - RefitSortBaseline is the copy+sort+index floor no builder can
//     beat, for the "total refit ≤ 1.5× the sort alone" claim.
//   - RefitQuery pins the query path of the freshly refitted beta
//     estimator at zero allocations.

import (
	"fmt"
	"testing"

	"selest/internal/bandwidth"
	"selest/internal/core"
	"selest/internal/fsort"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/xrand"
)

func refitBenchSamples(n int) []float64 {
	r := xrand.New(uint64(n) + 3)
	xs := make([]float64, n)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = 1e5 + r.Float64()*5e4
		case 1:
			xs[i] = 4e5 + r.Float64()*1e4
		default:
			xs[i] = 5e5 + r.Float64()*5e5
		}
	}
	return xs
}

var refitSizes = []int{10_000, 100_000, 1_000_000}

// refitBuilders are the rules a refit can run under, each as the Builder
// the serving engine would invoke. The core-built rows go through
// core.Build (sort + rule + estimator), the closed-form row through
// ClosedFormBuilder (in-place sort + O(1) rule + estimator).
func refitBuilders() []struct {
	name string
	mk   Builder
} {
	coreBuilder := func(opts core.Options) Builder {
		return func(samples []float64) (Fitted, error) {
			return core.Build(samples, opts)
		}
	}
	return []struct {
		name string
		mk   Builder
	}{
		{"beta-closed-form", ClosedFormBuilder(0, 0)},
		{"exact-mise", coreBuilder(core.Options{Method: core.BetaKernel, Rule: core.ExactMISE, DomainLo: 0, DomainHi: 1e6})},
		{"normal-scale", coreBuilder(core.Options{Method: core.Kernel, Rule: core.NormalScale, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1e6})},
		{"dpi", coreBuilder(core.Options{Method: core.Kernel, Rule: core.DPI, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1e6})},
	}
}

func BenchmarkRefit(b *testing.B) {
	for _, builder := range refitBuilders() {
		for _, n := range refitSizes {
			samples := refitBenchSamples(n)
			snap := make([]float64, n)
			b.Run(fmt.Sprintf("rule=%s/n=%d", builder.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// The engine hands each builder a fresh Snapshot copy;
					// reproduce that so in-place sorting stays honest.
					copy(snap, samples)
					if _, err := builder.mk(snap); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRefitSelector isolates the bandwidth stage on a context the
// refit has already built (the sort is sunk cost either way).
func BenchmarkRefitSelector(b *testing.B) {
	selectors := []struct {
		name string
		fn   func(ctx *kde.FitContext) (float64, error)
	}{
		{"beta-closed-form", bandwidth.BetaClosedFormContext},
		{"exact-mise", bandwidth.ExactMISECDFContext},
		{"dpi", func(ctx *kde.FitContext) (float64, error) {
			return bandwidth.DPIBandwidthContext(ctx, kernel.Epanechnikov{}, 2, 0, 1e6)
		}},
	}
	for _, sel := range selectors {
		for _, n := range refitSizes {
			ctx, err := kde.NewFitContext(refitBenchSamples(n))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("rule=%s/n=%d", sel.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sel.fn(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRefitSortBaseline is the refit floor: the snapshot copy, the
// radix sort, and the prefix-moment index — everything below the
// bandwidth rule.
func BenchmarkRefitSortBaseline(b *testing.B) {
	for _, n := range refitSizes {
		samples := refitBenchSamples(n)
		snap := make([]float64, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(snap, samples)
				fsort.Float64s(snap)
				if _, err := kde.NewFitContextSorted(snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefitQuery pins the query path of the closed-form fit at
// zero allocations (the b.ReportAllocs line in BENCH_refit is the pin).
func BenchmarkRefitQuery(b *testing.B) {
	fit, err := ClosedFormBuilder(0, 0)(refitBenchSamples(100_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += fit.Selectivity(2e5, 6e5)
	}
	_ = sink
}
