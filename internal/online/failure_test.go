package online

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"selest/internal/sample"
)

// flake is a builder that succeeds until failAfter successful builds have
// happened, then fails every attempt (optionally by panicking) until
// recoverAt total attempts, after which it succeeds again.
type flake struct {
	mu        sync.Mutex
	builds    int // successful builds
	attempts  int
	failAfter int
	panics    bool
	err       error
}

func (f *flake) build(samples []float64) (Fitted, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts++
	if f.builds >= f.failAfter {
		if f.panics {
			panic("flaky builder bug")
		}
		return nil, f.err
	}
	f.builds++
	return sample.NewPureEstimator(samples), nil
}

func feed(t *testing.T, e *Estimator, lo, n int) (lastErr error) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Insert(float64(lo + i)); err != nil {
			lastErr = err
		}
	}
	return lastErr
}

// TestRefitErrorKeepsServing fails every refit after the first and checks
// the stale-but-valid fit keeps answering.
func TestRefitErrorKeepsServing(t *testing.T) {
	fl := &flake{failAfter: 1, err: errors.New("fit diverged")}
	e, err := New(fl.build, Config{ReservoirSize: 50, RefitEvery: 50, DegradeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, 0, 50) // first fit
	if e.Refits() != 1 {
		t.Fatalf("refits = %d, want 1", e.Refits())
	}
	before := e.Selectivity(0, 49)
	if before == 0 {
		t.Fatal("first fit should answer")
	}
	lastErr := feed(t, e, 50, 200) // every further refit fails
	if lastErr == nil || !strings.Contains(lastErr.Error(), "fit diverged") {
		t.Fatalf("Insert should surface the refit failure, got %v", lastErr)
	}
	if got := e.Selectivity(0, 49); got != before {
		t.Fatalf("failed refit changed the serving fit: %v -> %v", before, got)
	}
	if e.FailedRefits() == 0 {
		t.Fatal("failed refits not counted")
	}
	if err := e.LastError(); err == nil || !strings.Contains(err.Error(), "fit diverged") {
		t.Fatalf("LastError = %v", err)
	}
	if e.Refits() != 1 {
		t.Fatalf("refits = %d, want still 1", e.Refits())
	}
}

// TestBuilderPanicContained panics inside the builder mid-stream and
// checks Insert reports an error instead of crashing, with the previous
// fit still serving.
func TestBuilderPanicContained(t *testing.T) {
	fl := &flake{failAfter: 1, panics: true}
	e, err := New(fl.build, Config{ReservoirSize: 50, RefitEvery: 50, DegradeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, 0, 50)
	before := e.Selectivity(0, 49)
	lastErr := feed(t, e, 50, 100)
	if lastErr == nil || !strings.Contains(lastErr.Error(), "builder panic") {
		t.Fatalf("panic should surface as an error, got %v", lastErr)
	}
	if got := e.Selectivity(0, 49); got != before {
		t.Fatalf("panicking refit changed the serving fit: %v -> %v", before, got)
	}
}

// TestDegradeAfterStrikes checks that DegradeAfter consecutive failures
// of the primary builder move the estimator to the fallback, which then
// serves fresh fits again.
func TestDegradeAfterStrikes(t *testing.T) {
	fl := &flake{failAfter: 1, err: errors.New("primary down")}
	fallbackBuilds := 0
	fallback := func(samples []float64) (Fitted, error) {
		fallbackBuilds++
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(fl.build, Config{
		ReservoirSize: 50,
		RefitEvery:    50,
		DegradeAfter:  3,
		Fallbacks:     []Builder{fallback},
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, 0, 50) // first fit via primary
	// Strikes 1 and 2: failures surface, still on the primary.
	for strike := 1; strike <= 2; strike++ {
		if err := feed(t, e, 0, 50); err == nil {
			t.Fatalf("strike %d should surface an error", strike)
		}
		if lvl := e.DegradationLevel(); lvl != 0 {
			t.Fatalf("degraded after %d strikes (level %d)", strike, lvl)
		}
	}
	if e.ConsecutiveFailures() != 2 {
		t.Fatalf("consecutive failures = %d, want 2", e.ConsecutiveFailures())
	}
	// Strike 3 degrades and immediately retries on the fallback.
	if err := feed(t, e, 0, 50); err != nil {
		t.Fatalf("degraded refit should succeed, got %v", err)
	}
	if lvl := e.DegradationLevel(); lvl != 1 {
		t.Fatalf("degradation level = %d, want 1", lvl)
	}
	if fallbackBuilds == 0 {
		t.Fatal("fallback builder never ran")
	}
	if e.ConsecutiveFailures() != 0 {
		t.Fatalf("successful degraded refit should clear the streak, got %d", e.ConsecutiveFailures())
	}
	// Further refits stay on the fallback and succeed.
	if err := feed(t, e, 0, 50); err != nil {
		t.Fatalf("fallback refit failed: %v", err)
	}
	if e.Refits() < 3 {
		t.Fatalf("refits = %d, want >= 3", e.Refits())
	}
}

// TestDegradationLadderExhausted keeps failing on every rung: the last
// rung's failures surface but serving continues from the stale fit.
func TestDegradationLadderExhausted(t *testing.T) {
	fl := &flake{failAfter: 1, err: errors.New("primary down")}
	badFallback := func(samples []float64) (Fitted, error) {
		return nil, errors.New("fallback also down")
	}
	e, err := New(fl.build, Config{
		ReservoirSize: 50,
		RefitEvery:    50,
		DegradeAfter:  2,
		Fallbacks:     []Builder{badFallback},
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, 0, 50)
	before := e.Selectivity(0, 49)
	for i := 0; i < 6; i++ {
		feed(t, e, 0, 50)
	}
	if lvl := e.DegradationLevel(); lvl != 1 {
		t.Fatalf("degradation level = %d, want 1 (ladder exhausted)", lvl)
	}
	if got := e.Selectivity(0, 49); got != before {
		t.Fatalf("serving fit changed across a failing ladder: %v -> %v", before, got)
	}
}

// TestDriftRefitDrainedReservoir drains the reservoir mid-stream and then
// lets the drift detector trigger a refit from the few post-drain
// records: the builder rejects the tiny sample, and the old fit serves.
func TestDriftRefitDrainedReservoir(t *testing.T) {
	build := func(samples []float64) (Fitted, error) {
		if len(samples) < 32 {
			return nil, fmt.Errorf("need >= 32 samples, got %d", len(samples))
		}
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(build, Config{
		ReservoirSize:   64,
		RefitEvery:      -1, // drift-only refits
		DriftAlpha:      0.5,
		DriftCheckEvery: 4,
		DegradeAfter:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, e, 0, 64) // first fit from values 0..63
	if e.Refits() != 1 {
		t.Fatalf("refits = %d, want 1", e.Refits())
	}
	before := e.Selectivity(0, 63)

	e.ResetReservoir()
	// Far-shifted records: the KS statistic against the old fit sample is
	// 1, far above any critical value, forcing a refit from the drained
	// (tiny) reservoir.
	lastErr := feed(t, e, 100000, 8)
	if lastErr == nil || !strings.Contains(lastErr.Error(), "need >= 32 samples") {
		t.Fatalf("drift refit on drained reservoir should fail in the builder, got %v", lastErr)
	}
	if got := e.Selectivity(0, 63); got != before {
		t.Fatalf("drained-reservoir refit changed the serving fit: %v -> %v", before, got)
	}
	// Once the reservoir refills past the builder's minimum, the next
	// drift-triggered refit succeeds and adopts the new distribution.
	feed(t, e, 100008, 56)
	if e.Refits() < 2 {
		t.Fatalf("refits = %d, want >= 2 after reservoir refilled", e.Refits())
	}
	if s := e.Selectivity(100000, 200000); s != 1 {
		t.Fatalf("post-recovery fit should cover the new range, got %v", s)
	}
}

// TestConcurrentServeThroughFailures hammers Selectivity from readers
// while writers insert through a builder that alternates panics and
// errors — the race detector target for the panic-safe serving path.
func TestConcurrentServeThroughFailures(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	build := func(samples []float64) (Fitted, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		switch {
		case n == 1:
			return sample.NewPureEstimator(samples), nil
		case n%2 == 0:
			return nil, errors.New("even refit down")
		default:
			panic("odd refit bug")
		}
	}
	fallback := func(samples []float64) (Fitted, error) {
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(build, Config{
		ReservoirSize: 32,
		RefitEvery:    16,
		DegradeAfter:  2,
		Fallbacks:     []Builder{fallback},
	})
	if err != nil {
		t.Fatal(err)
	}

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s := e.Selectivity(0, 1000); s < 0 || s > 1 {
					t.Errorf("Selectivity out of range: %v", s)
					return
				}
				e.Name()
				e.DegradationLevel()
			}
		}()
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				e.Insert(float64(w*2000 + i)) // errors expected; serving must survive
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if e.Inserts() != 4000 {
		t.Fatalf("inserts = %d, want 4000", e.Inserts())
	}
	if s := e.Selectivity(0, 4000); s <= 0 || s > 1 {
		t.Fatalf("final Selectivity = %v, want in (0, 1]", s)
	}
}
