// Package online maintains a selectivity estimator over a live stream of
// records — the infrastructure behind the paper's second future-work item
// (applying kernel estimators to online aggregate processing).
//
// An Estimator owns a reservoir sample of the stream and a fitted base
// estimator built from it. Refits happen on a configurable cadence and,
// independently, whenever a two-sample Kolmogorov–Smirnov test says the
// reservoir has drifted away from the sample the current fit was built
// on. Between refits, queries are answered by the existing fit, so the
// insert path stays O(1) amortised.
package online

import (
	"fmt"
	"sync"

	"selest/internal/sample"
	"selest/internal/stats"
	"selest/internal/xrand"
)

// Fitted is the estimator surface a fit must provide.
type Fitted interface {
	Selectivity(a, b float64) float64
	Name() string
}

// Builder constructs a fresh estimator from the current sample.
type Builder func(samples []float64) (Fitted, error)

// Config parameterises an online estimator.
type Config struct {
	// ReservoirSize is the maintained sample size. Zero defaults to 2000
	// (the paper's sample size).
	ReservoirSize int
	// RefitEvery triggers a refit after this many inserts. Zero defaults
	// to 10× the reservoir size; negative disables cadence-based refits.
	RefitEvery int
	// DriftAlpha, when positive, enables KS drift detection at the given
	// significance level: every DriftCheckEvery inserts the reservoir is
	// compared against the sample behind the current fit and a refit is
	// forced when the KS statistic exceeds the critical value.
	DriftAlpha float64
	// DriftCheckEvery is the cadence of drift checks. Zero defaults to
	// the reservoir size.
	DriftCheckEvery int
	// Seed drives the reservoir's RNG.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.ReservoirSize == 0 {
		c.ReservoirSize = 2000
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 10 * c.ReservoirSize
	}
	if c.DriftCheckEvery == 0 {
		c.DriftCheckEvery = c.ReservoirSize
	}
}

// Estimator is a self-maintaining online selectivity estimator. It is
// safe for concurrent use.
type Estimator struct {
	build Builder
	cfg   Config

	mu         sync.RWMutex
	reservoir  *sample.Reservoir
	fit        Fitted
	fitSample  []float64 // the sample the current fit was built from
	sinceRefit int
	sinceCheck int
	refits     int
	inserts    int
}

// New returns an online estimator that fits with build. The estimator
// answers 0 for every query until the first record arrives.
func New(build Builder, cfg Config) (*Estimator, error) {
	if build == nil {
		return nil, fmt.Errorf("online: nil builder")
	}
	cfg.applyDefaults()
	if cfg.ReservoirSize < 2 {
		return nil, fmt.Errorf("online: reservoir size %d too small", cfg.ReservoirSize)
	}
	if cfg.DriftAlpha < 0 || cfg.DriftAlpha >= 1 {
		return nil, fmt.Errorf("online: drift alpha %v outside [0, 1)", cfg.DriftAlpha)
	}
	return &Estimator{
		build:     build,
		cfg:       cfg,
		reservoir: sample.NewReservoir(xrand.New(cfg.Seed), cfg.ReservoirSize),
	}, nil
}

// Insert offers one stream record, refitting when the cadence or the
// drift detector says so. The first refit happens once the reservoir is
// full (or at the first cadence boundary for short streams).
func (e *Estimator) Insert(v float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reservoir.Add(v)
	e.inserts++
	e.sinceRefit++
	e.sinceCheck++

	switch {
	case e.fit == nil && e.reservoir.Len() >= e.cfg.ReservoirSize:
		return e.refitLocked()
	case e.fit != nil && e.cfg.RefitEvery > 0 && e.sinceRefit >= e.cfg.RefitEvery:
		return e.refitLocked()
	case e.fit != nil && e.cfg.DriftAlpha > 0 && e.sinceCheck >= e.cfg.DriftCheckEvery:
		e.sinceCheck = 0
		current := e.reservoir.Sample()
		d := stats.KolmogorovSmirnov(e.fitSample, current)
		if d > stats.KSCriticalValue(e.cfg.DriftAlpha, len(e.fitSample), len(current)) {
			return e.refitLocked()
		}
	}
	return nil
}

// Flush forces a refit from the current reservoir (e.g. before a batch of
// optimisation decisions, or at end of stream for short streams that
// never filled the reservoir).
func (e *Estimator) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reservoir.Len() == 0 {
		return fmt.Errorf("online: no records to fit")
	}
	return e.refitLocked()
}

// refitLocked rebuilds the fit; the caller holds mu.
func (e *Estimator) refitLocked() error {
	smp := e.reservoir.Sample()
	fit, err := e.build(smp)
	if err != nil {
		return fmt.Errorf("online: refit: %w", err)
	}
	e.fit = fit
	e.fitSample = smp
	e.sinceRefit = 0
	e.sinceCheck = 0
	e.refits++
	return nil
}

// Selectivity answers from the current fit; 0 before the first fit.
func (e *Estimator) Selectivity(a, b float64) float64 {
	e.mu.RLock()
	fit := e.fit
	e.mu.RUnlock()
	if fit == nil {
		return 0
	}
	return fit.Selectivity(a, b)
}

// Refits returns how many times the estimator has been rebuilt.
func (e *Estimator) Refits() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.refits
}

// Inserts returns how many records have been offered.
func (e *Estimator) Inserts() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.inserts
}

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.fit == nil {
		return "online(unfitted)"
	}
	return "online(" + e.fit.Name() + ")"
}
