// Package online maintains a selectivity estimator over a live stream of
// records — the infrastructure behind the paper's second future-work item
// (applying kernel estimators to online aggregate processing).
//
// An Estimator owns a reservoir sample of the stream and a fitted base
// estimator built from it. Refits happen on a configurable cadence and,
// independently, whenever a two-sample Kolmogorov–Smirnov test says the
// reservoir has drifted away from the sample the current fit was built
// on. Between refits, queries are answered by the existing fit, so the
// insert path stays O(1) amortised.
//
// # Serving engine
//
// The serve path is lock-free: the current fit, the sample it was built
// from, and a generation counter live together in one immutable snapshot
// published through an atomic.Pointer. A query is one atomic load plus
// the fit's own Selectivity — no locks, no allocations, and no way to
// observe a fit paired with another fit's sample. Refits build the
// replacement estimator entirely off-lock from a copy of the reservoir
// and publish it with a single pointer swap; Go's garbage collector
// retires the old snapshot once the last in-flight reader drops it,
// which is the whole memory-reclamation story RCU schemes labour over.
// A single-flight guard coalesces concurrent refit triggers into one
// build (Flush still waits for and then supersedes an in-flight build;
// FlushContext bounds that wait with a deadline and abandons a stuck
// build to the background), and the reservoir itself stripes inserts over
// independently locked shards so writers stop serializing on one mutex.
// See DESIGN.md §11.
package online

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"selest/internal/sample"
	"selest/internal/stats"
	"selest/internal/telemetry"
)

// Fitted is the estimator surface a fit must provide.
type Fitted interface {
	Selectivity(a, b float64) float64
	Name() string
}

// Builder constructs a fresh estimator from the current sample.
type Builder func(samples []float64) (Fitted, error)

// Config parameterises an online estimator.
type Config struct {
	// ReservoirSize is the maintained sample size. Zero defaults to 2000
	// (the paper's sample size).
	ReservoirSize int
	// RefitEvery triggers a refit after this many inserts. Zero defaults
	// to 10× the reservoir size; negative disables cadence-based refits.
	RefitEvery int
	// DriftAlpha, when positive, enables KS drift detection at the given
	// significance level: every DriftCheckEvery inserts the reservoir is
	// compared against the sample behind the current fit and a refit is
	// forced when the KS statistic exceeds the critical value.
	DriftAlpha float64
	// DriftCheckEvery is the cadence of drift checks. Zero defaults to
	// the reservoir size.
	DriftCheckEvery int
	// Seed drives the reservoir's RNG.
	Seed uint64
	// Shards stripes reservoir ingest over this many independently
	// locked shards, so concurrent Inserts stop serializing on one
	// mutex. Zero and one keep the single reservoir (and its exact
	// seeded sampling behaviour); heavy parallel ingest should set this
	// near GOMAXPROCS. Sharding keeps the sample uniform (each shard is
	// a uniform reservoir over a round-robin 1-in-Shards slice of the
	// stream) but changes which individual records a given seed retains.
	Shards int

	// DegradeAfter is the strike count of the degradation ladder: after
	// this many consecutive refit failures the estimator moves to the
	// next Fallbacks builder. Zero defaults to 3; negative disables
	// degradation.
	DegradeAfter int
	// Fallbacks are builders tried in order once the current builder has
	// accumulated DegradeAfter consecutive failures — typically simpler,
	// harder-to-break fits (an equi-depth histogram, pure sampling).
	Fallbacks []Builder
	// PromoteAfter, when positive, lets the ladder recover: after this
	// many consecutive successful refits on a fallback rung the estimator
	// climbs one rung back toward the primary builder and tries it at the
	// next refit. Zero (the default) keeps the historical behaviour —
	// degradation is one-way. DegradeAfter strikes on the promoted rung
	// demote it again, so a still-broken primary flaps at a bounded,
	// configurable rate rather than on every refit.
	PromoteAfter int
}

func (c *Config) applyDefaults() {
	if c.ReservoirSize == 0 {
		c.ReservoirSize = 2000
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 10 * c.ReservoirSize
	}
	if c.DriftCheckEvery == 0 {
		c.DriftCheckEvery = c.ReservoirSize
	}
	if c.DegradeAfter == 0 {
		c.DegradeAfter = 3
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
}

// snapshot is the immutable unit of publication: a fit, the sample it
// was built from, and the generation that produced it. Snapshots are
// never mutated after the atomic swap, so a reader holding one sees a
// consistent (fit, fitSample, generation) triple no matter how many
// refits land while it works.
type snapshot struct {
	fit        Fitted
	fitSample  []float64
	generation uint64
}

// Estimator is a self-maintaining online selectivity estimator. It is
// safe for concurrent use: queries read the current snapshot through an
// atomic pointer (no locks, no allocations), inserts stripe over the
// sharded reservoir, and refits run off-lock behind a single-flight
// guard.
//
// Refit failures never take down the query path: the previous snapshot
// keeps serving, builder panics are contained into errors, and after
// Config.DegradeAfter consecutive failures the estimator degrades to the
// next Config.Fallbacks builder.
type Estimator struct {
	builders []Builder
	cfg      Config

	// snap is the serving state. nil until the first successful fit.
	snap atomic.Pointer[snapshot]

	reservoir *sample.ShardedReservoir

	inserts    atomic.Int64
	sinceRefit atomic.Int64
	sinceCheck atomic.Int64

	// refitSlot is the single-flight guard: a 1-slot semaphore whose
	// holder is the one goroutine building a replacement snapshot.
	// Insert-path triggers try-acquire and coalesce when a build is
	// already in flight; Flush blocks until the in-flight build finishes,
	// then builds again so its caller observes a fit of the current
	// reservoir. It is a channel rather than a mutex so FlushContext can
	// select the acquisition against a context deadline and abandon a
	// stuck build instead of blocking forever. The ladder state below is
	// written only while holding the slot but read via atomics so
	// accessors never block behind a slow build.
	refitSlot    chan struct{}
	refits       atomic.Int64
	failedRefits atomic.Int64
	consecFails  atomic.Int64
	consecOK     atomic.Int64
	builderIdx   atomic.Int64
	lastErr      atomic.Pointer[error]
}

// New returns an online estimator that fits with build. The estimator
// answers 0 for every query until the first record arrives.
func New(build Builder, cfg Config) (*Estimator, error) {
	if build == nil {
		return nil, fmt.Errorf("online: nil builder")
	}
	cfg.applyDefaults()
	if cfg.ReservoirSize < 2 {
		return nil, fmt.Errorf("online: reservoir size %d too small", cfg.ReservoirSize)
	}
	if cfg.DriftAlpha < 0 || cfg.DriftAlpha >= 1 {
		return nil, fmt.Errorf("online: drift alpha %v outside [0, 1)", cfg.DriftAlpha)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("online: negative shard count %d", cfg.Shards)
	}
	builders := make([]Builder, 0, 1+len(cfg.Fallbacks))
	builders = append(builders, build)
	for _, fb := range cfg.Fallbacks {
		if fb == nil {
			return nil, fmt.Errorf("online: nil fallback builder")
		}
		builders = append(builders, fb)
	}
	return &Estimator{
		builders:  builders,
		cfg:       cfg,
		reservoir: sample.NewSharded(cfg.Seed, cfg.ReservoirSize, cfg.Shards),
		refitSlot: make(chan struct{}, 1),
	}, nil
}

// Insert offers one stream record, refitting when the cadence or the
// drift detector says so. The first refit happens once the reservoir is
// full (or at the first cadence boundary for short streams). The insert
// that crosses a refit boundary runs the build itself — off-lock, so
// concurrent inserts and queries proceed underneath it — and returns any
// build error; inserts that cross a boundary while a build is already in
// flight coalesce into it and return nil.
func (e *Estimator) Insert(v float64) error {
	_, evicted := e.reservoir.Add(v)
	e.inserts.Add(1)
	since := e.sinceRefit.Add(1)
	checks := e.sinceCheck.Add(1)
	if telemetry.Enabled() {
		onlineInserts.Inc()
		if evicted {
			onlineEvictions.Inc()
		}
	}

	snap := e.snap.Load()
	switch {
	case snap == nil:
		if e.reservoir.Len() >= e.cfg.ReservoirSize {
			return e.tryRefit()
		}
	case e.cfg.RefitEvery > 0 && since >= int64(e.cfg.RefitEvery):
		return e.tryRefit()
	case e.cfg.DriftAlpha > 0 && checks >= int64(e.cfg.DriftCheckEvery):
		e.sinceCheck.Store(0)
		current := e.reservoir.Snapshot()
		d := stats.KolmogorovSmirnov(snap.fitSample, current)
		if d > stats.KSCriticalValue(e.cfg.DriftAlpha, len(snap.fitSample), len(current)) {
			onlineDriftRefits.Inc()
			return e.tryRefit()
		}
	}
	return nil
}

// InsertBatch offers a batch of stream records and reports the first
// refit error encountered, if any. The per-record work is identical to
// Insert; batching amortises the trigger checks and keeps the caller's
// loop tight for high-throughput ingest.
func (e *Estimator) InsertBatch(vs []float64) error {
	var firstErr error
	for _, v := range vs {
		if err := e.Insert(v); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flush forces a refit from the current reservoir (e.g. before a batch of
// optimisation decisions, or at end of stream for short streams that
// never filled the reservoir). If a coalesced build is already in flight,
// Flush waits for it to finish and then builds again, so on return the
// snapshot reflects a reservoir state no older than the call.
func (e *Estimator) Flush() error {
	return e.FlushContext(context.Background())
}

// FlushContext is Flush with a deadline: the context bounds both the wait
// for an in-flight build's single-flight slot and the refit itself. When
// the context expires mid-build the call returns ctx's error immediately
// and the build keeps running in the background — it publishes its
// snapshot if it eventually succeeds — so a shutdown deadline can abandon
// a stuck refit instead of blocking forever while still never discarding
// a finished fit.
func (e *Estimator) FlushContext(ctx context.Context) error {
	if e.reservoir.Len() == 0 {
		return fmt.Errorf("online: no records to fit")
	}
	select {
	case e.refitSlot <- struct{}{}:
	case <-ctx.Done():
		onlineFlushAbandoned.Inc()
		return fmt.Errorf("online: flush abandoned waiting for in-flight refit: %w", ctx.Err())
	}
	if ctx.Done() == nil {
		// No deadline to race: run the build inline and skip the
		// goroutine handoff.
		defer func() { <-e.refitSlot }()
		return e.refit()
	}
	done := make(chan error, 1)
	go func() {
		done <- e.refit()
		<-e.refitSlot
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		onlineFlushAbandoned.Inc()
		return fmt.Errorf("online: flush abandoned mid-refit (build continues in background): %w", ctx.Err())
	}
}

// tryRefit is the insert path's single-flight entry: run the refit if no
// build is in flight, otherwise coalesce into the one that is.
func (e *Estimator) tryRefit() error {
	select {
	case e.refitSlot <- struct{}{}:
	default:
		onlineRefitCoalesced.Inc()
		return nil
	}
	defer func() { <-e.refitSlot }()
	return e.refit()
}

// refit rebuilds the fit; the caller holds the refitSlot (and nothing
// else — queries and inserts proceed throughout). On failure the previous
// snapshot keeps serving: the failure is counted against the current
// builder and, once the strike budget is spent, the estimator degrades to
// the next fallback builder and retries it immediately so serving
// freshness recovers without waiting out another refit cadence. On
// success, PromoteAfter consecutive clean refits climb one rung back
// toward the primary builder.
func (e *Estimator) refit() error {
	start := time.Now()
	// The reservoir copy is the only section that touches the ingest
	// locks — the sole stall any writer can observe from a refit. Record
	// it as the serving engine's stall number.
	smp := e.reservoir.Snapshot()
	onlineRefitStallNanos.ObserveSince(start)

	degradedThisRefit := false
	fit, err := e.buildSafe(smp)
	for err != nil {
		e.failedRefits.Add(1)
		fails := e.consecFails.Add(1)
		e.consecOK.Store(0)
		e.setLastErr(err)
		onlineRefitFails.Inc()
		if e.cfg.DegradeAfter <= 0 || fails < int64(e.cfg.DegradeAfter) || int(e.builderIdx.Load())+1 >= len(e.builders) {
			// Back off until the next cadence boundary instead of
			// retrying the failed fit on every insert.
			e.sinceRefit.Store(0)
			e.sinceCheck.Store(0)
			onlineBackoffs.Inc()
			return fmt.Errorf("online: refit (fit kept serving): %w", err)
		}
		rung := e.builderIdx.Add(1)
		e.consecFails.Store(0)
		degradedThisRefit = true
		onlineDegradations.Inc()
		onlineBuilderRung.Set(float64(rung))
		fit, err = e.buildSafe(smp)
	}

	old := e.snap.Load()
	var gen uint64 = 1
	if old != nil {
		gen = old.generation + 1
	}
	// One atomic swap publishes the (fit, sample, generation) triple;
	// readers either see the old snapshot whole or the new one whole.
	e.snap.Store(&snapshot{fit: fit, fitSample: smp, generation: gen})
	e.sinceRefit.Store(0)
	e.sinceCheck.Store(0)
	e.refits.Add(1)
	e.consecFails.Store(0)
	onlineRefits.Inc()
	onlineSnapshotSwaps.Inc()
	onlineRefitNanos.ObserveSince(start)
	// Ladder recovery: enough consecutive clean refits on a fallback rung
	// earn one step back toward the primary builder. The rescue build
	// that accompanied a demotion does not count — the streak starts with
	// the first refit that began on the rung — and the climb happens
	// after the publish, so the next refit, not this one, pays the risk
	// of the better builder failing again.
	if e.cfg.PromoteAfter > 0 && e.builderIdx.Load() > 0 {
		if degradedThisRefit {
			e.consecOK.Store(0)
		} else if e.consecOK.Add(1) >= int64(e.cfg.PromoteAfter) {
			rung := e.builderIdx.Add(-1)
			e.consecOK.Store(0)
			onlinePromotions.Inc()
			onlineBuilderRung.Set(float64(rung))
		}
	}
	return nil
}

// buildSafe invokes the current builder with panic containment, so a
// builder bug degrades the refit instead of crashing the insert path.
func (e *Estimator) buildSafe(smp []float64) (fit Fitted, err error) {
	defer func() {
		if r := recover(); r != nil {
			fit, err = nil, fmt.Errorf("builder panic: %v", r)
		}
	}()
	fit, err = e.builders[e.builderIdx.Load()](smp)
	if err == nil && fit == nil {
		err = fmt.Errorf("builder returned no fit")
	}
	return fit, err
}

func (e *Estimator) setLastErr(err error) {
	e.lastErr.Store(&err)
}

// Selectivity answers from the current snapshot; 0 before the first fit.
// It is one atomic load plus the fit's own query — no locks and no
// allocations — so it cannot be stalled by an in-flight refit. Callers
// that must distinguish "no fit yet" from a genuine zero answer should
// use SelectivityOK.
func (e *Estimator) Selectivity(a, b float64) float64 {
	s := e.snap.Load()
	if s == nil {
		return 0
	}
	return s.fit.Selectivity(a, b)
}

// SelectivityOK answers from the current snapshot, reporting whether a
// fit exists: (0, false) before the first fit, (σ̂, true) after — so a
// genuine 0-selectivity answer is distinguishable from "no data yet".
func (e *Estimator) SelectivityOK(a, b float64) (float64, bool) {
	s := e.snap.Load()
	if s == nil {
		return 0, false
	}
	return s.fit.Selectivity(a, b), true
}

// Ready reports whether a fit exists to answer queries.
func (e *Estimator) Ready() bool { return e.snap.Load() != nil }

// Generation returns the serving snapshot's generation: 0 before the
// first fit, then incrementing by one at every published refit. It is
// monotone — the soak tests pin this — so callers can cheaply detect
// whether the model changed between two reads.
func (e *Estimator) Generation() uint64 {
	s := e.snap.Load()
	if s == nil {
		return 0
	}
	return s.generation
}

// Refits returns how many times the estimator has been rebuilt.
func (e *Estimator) Refits() int { return int(e.refits.Load()) }

// Inserts returns how many records have been offered.
func (e *Estimator) Inserts() int { return int(e.inserts.Load()) }

// FailedRefits returns how many refit attempts have failed over the
// estimator's life (the previous fit kept serving through each).
func (e *Estimator) FailedRefits() int { return int(e.failedRefits.Load()) }

// ConsecutiveFailures returns the current builder's unbroken failure
// streak; DegradeAfter of these move the estimator down the ladder.
func (e *Estimator) ConsecutiveFailures() int { return int(e.consecFails.Load()) }

// DegradationLevel returns how many rungs down the fallback ladder the
// estimator currently builds from: 0 is the primary builder.
func (e *Estimator) DegradationLevel() int { return int(e.builderIdx.Load()) }

// LastError returns the most recent refit failure, or nil.
func (e *Estimator) LastError() error {
	if p := e.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// ReservoirValues returns a copy of the current reservoir contents. This
// is the serving path's cheapest data rung: when no fit has been
// published yet (or a caller explicitly wants the raw sample), the
// fraction of reservoir values inside a range is a consistent
// pure-sampling estimate that needs no build at all.
func (e *Estimator) ReservoirValues() []float64 {
	return e.reservoir.Snapshot()
}

// ResetReservoir drops the reservoir contents — e.g. after an upstream
// truncation or schema change invalidates the accumulated sample — while
// the current snapshot keeps serving until fresh records arrive.
func (e *Estimator) ResetReservoir() {
	e.reservoir.Reset()
}

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string {
	s := e.snap.Load()
	if s == nil {
		return "online(unfitted)"
	}
	return "online(" + s.fit.Name() + ")"
}
