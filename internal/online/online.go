// Package online maintains a selectivity estimator over a live stream of
// records — the infrastructure behind the paper's second future-work item
// (applying kernel estimators to online aggregate processing).
//
// An Estimator owns a reservoir sample of the stream and a fitted base
// estimator built from it. Refits happen on a configurable cadence and,
// independently, whenever a two-sample Kolmogorov–Smirnov test says the
// reservoir has drifted away from the sample the current fit was built
// on. Between refits, queries are answered by the existing fit, so the
// insert path stays O(1) amortised.
package online

import (
	"fmt"
	"sync"
	"time"

	"selest/internal/sample"
	"selest/internal/stats"
	"selest/internal/telemetry"
	"selest/internal/xrand"
)

// Fitted is the estimator surface a fit must provide.
type Fitted interface {
	Selectivity(a, b float64) float64
	Name() string
}

// Builder constructs a fresh estimator from the current sample.
type Builder func(samples []float64) (Fitted, error)

// Config parameterises an online estimator.
type Config struct {
	// ReservoirSize is the maintained sample size. Zero defaults to 2000
	// (the paper's sample size).
	ReservoirSize int
	// RefitEvery triggers a refit after this many inserts. Zero defaults
	// to 10× the reservoir size; negative disables cadence-based refits.
	RefitEvery int
	// DriftAlpha, when positive, enables KS drift detection at the given
	// significance level: every DriftCheckEvery inserts the reservoir is
	// compared against the sample behind the current fit and a refit is
	// forced when the KS statistic exceeds the critical value.
	DriftAlpha float64
	// DriftCheckEvery is the cadence of drift checks. Zero defaults to
	// the reservoir size.
	DriftCheckEvery int
	// Seed drives the reservoir's RNG.
	Seed uint64

	// DegradeAfter is the strike count of the degradation ladder: after
	// this many consecutive refit failures the estimator moves to the
	// next Fallbacks builder. Zero defaults to 3; negative disables
	// degradation.
	DegradeAfter int
	// Fallbacks are builders tried in order once the current builder has
	// accumulated DegradeAfter consecutive failures — typically simpler,
	// harder-to-break fits (an equi-depth histogram, pure sampling).
	Fallbacks []Builder
}

func (c *Config) applyDefaults() {
	if c.ReservoirSize == 0 {
		c.ReservoirSize = 2000
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 10 * c.ReservoirSize
	}
	if c.DriftCheckEvery == 0 {
		c.DriftCheckEvery = c.ReservoirSize
	}
	if c.DegradeAfter == 0 {
		c.DegradeAfter = 3
	}
}

// Estimator is a self-maintaining online selectivity estimator. It is
// safe for concurrent use.
//
// Refit failures never take down the query path: the previous fit keeps
// serving, builder panics are contained into errors, and after
// Config.DegradeAfter consecutive failures the estimator degrades to the
// next Config.Fallbacks builder.
type Estimator struct {
	builders []Builder // primary builder followed by the fallbacks
	cfg      Config

	mu           sync.RWMutex
	reservoir    *sample.Reservoir
	fit          Fitted
	fitSample    []float64 // the sample the current fit was built from
	sinceRefit   int
	sinceCheck   int
	refits       int
	inserts      int
	builderIdx   int   // current rung into builders
	consecFails  int   // consecutive failures of the current builder
	failedRefits int   // total refit failures over the estimator's life
	lastErr      error // most recent refit failure
}

// New returns an online estimator that fits with build. The estimator
// answers 0 for every query until the first record arrives.
func New(build Builder, cfg Config) (*Estimator, error) {
	if build == nil {
		return nil, fmt.Errorf("online: nil builder")
	}
	cfg.applyDefaults()
	if cfg.ReservoirSize < 2 {
		return nil, fmt.Errorf("online: reservoir size %d too small", cfg.ReservoirSize)
	}
	if cfg.DriftAlpha < 0 || cfg.DriftAlpha >= 1 {
		return nil, fmt.Errorf("online: drift alpha %v outside [0, 1)", cfg.DriftAlpha)
	}
	builders := make([]Builder, 0, 1+len(cfg.Fallbacks))
	builders = append(builders, build)
	for _, fb := range cfg.Fallbacks {
		if fb == nil {
			return nil, fmt.Errorf("online: nil fallback builder")
		}
		builders = append(builders, fb)
	}
	return &Estimator{
		builders:  builders,
		cfg:       cfg,
		reservoir: sample.NewReservoir(xrand.New(cfg.Seed), cfg.ReservoirSize),
	}, nil
}

// Insert offers one stream record, refitting when the cadence or the
// drift detector says so. The first refit happens once the reservoir is
// full (or at the first cadence boundary for short streams).
func (e *Estimator) Insert(v float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	wasFull := e.reservoir.Len() == e.cfg.ReservoirSize
	kept := e.reservoir.Add(v)
	e.inserts++
	e.sinceRefit++
	e.sinceCheck++
	if telemetry.Enabled() {
		onlineInserts.Inc()
		if wasFull && kept {
			onlineEvictions.Inc()
		}
	}

	switch {
	case e.fit == nil && e.reservoir.Len() >= e.cfg.ReservoirSize:
		return e.refitLocked()
	case e.fit != nil && e.cfg.RefitEvery > 0 && e.sinceRefit >= e.cfg.RefitEvery:
		return e.refitLocked()
	case e.fit != nil && e.cfg.DriftAlpha > 0 && e.sinceCheck >= e.cfg.DriftCheckEvery:
		e.sinceCheck = 0
		current := e.reservoir.Sample()
		d := stats.KolmogorovSmirnov(e.fitSample, current)
		if d > stats.KSCriticalValue(e.cfg.DriftAlpha, len(e.fitSample), len(current)) {
			onlineDriftRefits.Inc()
			return e.refitLocked()
		}
	}
	return nil
}

// Flush forces a refit from the current reservoir (e.g. before a batch of
// optimisation decisions, or at end of stream for short streams that
// never filled the reservoir).
func (e *Estimator) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reservoir.Len() == 0 {
		return fmt.Errorf("online: no records to fit")
	}
	return e.refitLocked()
}

// refitLocked rebuilds the fit; the caller holds mu. On failure the
// previous fit keeps serving: the failure is counted against the current
// builder and, once the strike budget is spent, the estimator degrades to
// the next fallback builder and retries it immediately so serving
// freshness recovers without waiting out another refit cadence.
func (e *Estimator) refitLocked() error {
	start := time.Now()
	smp := e.reservoir.Sample()
	fit, err := e.buildSafe(smp)
	for err != nil {
		e.failedRefits++
		e.consecFails++
		e.lastErr = err
		onlineRefitFails.Inc()
		if e.cfg.DegradeAfter <= 0 || e.consecFails < e.cfg.DegradeAfter || e.builderIdx+1 >= len(e.builders) {
			// Back off until the next cadence boundary instead of
			// retrying the failed fit on every insert.
			e.sinceRefit = 0
			e.sinceCheck = 0
			onlineBackoffs.Inc()
			return fmt.Errorf("online: refit (fit kept serving): %w", err)
		}
		e.builderIdx++
		e.consecFails = 0
		onlineDegradations.Inc()
		fit, err = e.buildSafe(smp)
	}
	e.fit = fit
	e.fitSample = smp
	e.sinceRefit = 0
	e.sinceCheck = 0
	e.refits++
	e.consecFails = 0
	onlineRefits.Inc()
	onlineRefitNanos.ObserveSince(start)
	return nil
}

// buildSafe invokes the current builder with panic containment, so a
// builder bug degrades the refit instead of crashing the insert path.
func (e *Estimator) buildSafe(smp []float64) (fit Fitted, err error) {
	defer func() {
		if r := recover(); r != nil {
			fit, err = nil, fmt.Errorf("builder panic: %v", r)
		}
	}()
	fit, err = e.builders[e.builderIdx](smp)
	if err == nil && fit == nil {
		err = fmt.Errorf("builder returned no fit")
	}
	return fit, err
}

// Selectivity answers from the current fit; 0 before the first fit.
func (e *Estimator) Selectivity(a, b float64) float64 {
	e.mu.RLock()
	fit := e.fit
	e.mu.RUnlock()
	if fit == nil {
		return 0
	}
	return fit.Selectivity(a, b)
}

// Refits returns how many times the estimator has been rebuilt.
func (e *Estimator) Refits() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.refits
}

// Inserts returns how many records have been offered.
func (e *Estimator) Inserts() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.inserts
}

// FailedRefits returns how many refit attempts have failed over the
// estimator's life (the previous fit kept serving through each).
func (e *Estimator) FailedRefits() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.failedRefits
}

// ConsecutiveFailures returns the current builder's unbroken failure
// streak; DegradeAfter of these move the estimator down the ladder.
func (e *Estimator) ConsecutiveFailures() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.consecFails
}

// DegradationLevel returns how many rungs down the fallback ladder the
// estimator currently builds from: 0 is the primary builder.
func (e *Estimator) DegradationLevel() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.builderIdx
}

// LastError returns the most recent refit failure, or nil.
func (e *Estimator) LastError() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lastErr
}

// ResetReservoir drops the reservoir contents — e.g. after an upstream
// truncation or schema change invalidates the accumulated sample — while
// the current fit keeps serving until fresh records arrive.
func (e *Estimator) ResetReservoir() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.reservoir.Reset()
}

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.fit == nil {
		return "online(unfitted)"
	}
	return "online(" + e.fit.Name() + ")"
}
