package online

import (
	"sort"
	"sync"
	"testing"
	"time"

	"selest/internal/core"
	"selest/internal/kde"
	"selest/internal/telemetry"
	"selest/internal/xrand"
)

// The serving benchmark suite: the committed evidence (BENCH_serve.json,
// `make bench-serve`) that the atomic-snapshot engine beats the RWMutex
// design it replaced. Three axes:
//
//   - BenchmarkServeQuery*: steady-state parallel query throughput, the
//     RLock cache-line bounce vs one atomic load. Run at -cpu 1,8.
//   - BenchmarkServeQueryDuringRefit*: p99 query latency while an
//     n=1e6 DPI refit runs underneath — the stall number. The mutex
//     design holds the write lock for the whole build; the snapshot
//     design publishes with one pointer swap.
//   - BenchmarkServeInsert* / BenchmarkServeMixed*: ingest and mixed
//     workloads, sharded striping vs one mutex.
//
// The locked baseline is lockedEstimator (locked_ref_test.go), the
// pre-engine implementation preserved verbatim.

// benchFit is a trivial fit so the query benchmarks measure the serving
// path itself, not the estimator math behind it.
type benchFit struct{ frac float64 }

func (f *benchFit) Selectivity(a, b float64) float64 { return f.frac }
func (f *benchFit) Name() string                     { return "bench" }

func benchBuilder(samples []float64) (Fitted, error) {
	return &benchFit{frac: 1 / float64(1+len(samples))}, nil
}

// dpiBuilder is the heavy refit: the paper-recommended kernel estimator
// with the direct plug-in bandwidth, ~56 ms at n = 1e6 on the fit-path
// engine (BENCH_fit.json).
func dpiBuilder(samples []float64) (Fitted, error) {
	return core.Build(samples, core.Options{
		Method: core.Kernel, Rule: core.DPI, Boundary: kde.BoundaryKernels,
		DomainLo: 0, DomainHi: 1000,
	})
}

func fillEngine(b *testing.B, build Builder, cfg Config, n int) *Estimator {
	b.Helper()
	e, err := New(build, cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(99)
	for i := 0; i < n; i++ {
		e.Insert(r.Float64() * 1000)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	return e
}

func fillLocked(b *testing.B, build Builder, cfg Config, n int) *lockedEstimator {
	b.Helper()
	e := newLocked(build, cfg)
	r := xrand.New(99)
	for i := 0; i < n; i++ {
		e.Insert(r.Float64() * 1000)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	return e
}

// serveQueryCfg disables every refit trigger so the steady-state query
// benchmarks never build mid-run.
var serveQueryCfg = Config{ReservoirSize: 2000, RefitEvery: -1, Seed: 1}

func BenchmarkServeQuerySnapshot(b *testing.B) {
	e := fillEngine(b, benchBuilder, serveQueryCfg, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if s := e.Selectivity(100, 300); s < 0 {
				panic("bad selectivity")
			}
		}
	})
}

func BenchmarkServeQueryMutex(b *testing.B) {
	e := fillLocked(b, benchBuilder, serveQueryCfg, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if s := e.Selectivity(100, 300); s < 0 {
				panic("bad selectivity")
			}
		}
	})
}

// refitLoop keeps rebuilding the estimator in the background until stop
// closes, pausing briefly between builds so readers can interleave — the
// "statistics refresh storm" a serving system sees.
func refitLoop(flush func() error, stop chan struct{}, done *sync.WaitGroup) {
	done.Add(1)
	go func() {
		defer done.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := flush(); err != nil {
					panic(err)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
}

// latencyRecorder collects per-query wall times across the parallel
// reader goroutines and reports the p50/p99/max to the benchmark.
type latencyRecorder struct {
	mu  sync.Mutex
	all []time.Duration
}

func (l *latencyRecorder) add(batch []time.Duration) {
	l.mu.Lock()
	l.all = append(l.all, batch...)
	l.mu.Unlock()
}

func (l *latencyRecorder) report(b *testing.B) {
	if len(l.all) == 0 {
		return
	}
	sort.Slice(l.all, func(i, j int) bool { return l.all[i] < l.all[j] })
	pct := func(q float64) float64 {
		i := int(q * float64(len(l.all)-1))
		return float64(l.all[i])
	}
	b.ReportMetric(pct(0.50), "p50-ns")
	b.ReportMetric(pct(0.99), "p99-ns")
	b.ReportMetric(float64(l.all[len(l.all)-1]), "max-ns")
}

// duringRefitCfg holds the n=1e6 reservoir the DPI refit rebuilds from.
const duringRefitReservoir = 1_000_000

var duringRefitCfg = Config{ReservoirSize: duringRefitReservoir, RefitEvery: -1, Shards: 8, Seed: 1}

func benchQueryDuringRefit(b *testing.B, query func(a, bq float64) float64, flush func() error) {
	var rec latencyRecorder
	stop := make(chan struct{})
	var done sync.WaitGroup
	refitLoop(flush, stop, &done)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		lat := make([]time.Duration, 0, 1<<16)
		for pb.Next() {
			t0 := time.Now()
			if s := query(100, 300); s < 0 {
				panic("bad selectivity")
			}
			lat = append(lat, time.Since(t0))
		}
		rec.add(lat)
	})
	b.StopTimer()
	close(stop)
	done.Wait()
	rec.report(b)
}

func BenchmarkServeQueryDuringRefitSnapshot(b *testing.B) {
	e := fillEngine(b, dpiBuilder, duringRefitCfg, duringRefitReservoir)
	benchQueryDuringRefit(b, e.Selectivity, e.Flush)
}

func BenchmarkServeQueryDuringRefitMutex(b *testing.B) {
	cfg := duringRefitCfg
	cfg.Shards = 1
	e := fillLocked(b, dpiBuilder, cfg, duringRefitReservoir)
	benchQueryDuringRefit(b, e.Selectivity, e.Flush)
}

// serveInsertCfg disables refits so the insert benchmarks measure pure
// reservoir ingest: striped shards vs the single write lock.
func BenchmarkServeInsertSharded(b *testing.B) {
	cfg := Config{ReservoirSize: 8192, RefitEvery: -1, Shards: 8, Seed: 1}
	e, err := New(benchBuilder, cfg)
	if err != nil {
		b.Fatal(err)
	}
	telemetry.Disable()
	defer telemetry.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(7)
		for pb.Next() {
			e.Insert(r.Float64() * 1000)
		}
	})
}

func BenchmarkServeInsertMutex(b *testing.B) {
	e := newLocked(benchBuilder, Config{ReservoirSize: 8192, RefitEvery: -1, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(7)
		for pb.Next() {
			e.Insert(r.Float64() * 1000)
		}
	})
}

// The mixed workload: 1 insert per 8 queries per goroutine with cadence
// refits live, the closest shape to the online-aggregation serving loop.
func BenchmarkServeMixedSnapshot(b *testing.B) {
	cfg := Config{ReservoirSize: 2000, RefitEvery: 20000, Shards: 8, Seed: 1}
	e := fillEngine(b, benchBuilder, cfg, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(7)
		i := 0
		for pb.Next() {
			if i%8 == 0 {
				e.Insert(r.Float64() * 1000)
			} else {
				e.Selectivity(100, 300)
			}
			i++
		}
	})
}

func BenchmarkServeMixedMutex(b *testing.B) {
	cfg := Config{ReservoirSize: 2000, RefitEvery: 20000, Seed: 1}
	e := fillLocked(b, benchBuilder, cfg, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(7)
		i := 0
		for pb.Next() {
			if i%8 == 0 {
				e.Insert(r.Float64() * 1000)
			} else {
				e.Selectivity(100, 300)
			}
			i++
		}
	})
}
