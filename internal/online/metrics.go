package online

import "selest/internal/telemetry"

// Stream-maintenance telemetry. The insert path is the online
// estimator's hot loop, so its counters sit behind the Enabled gate like
// the kde query hooks; refit events are cold and record unconditionally.
// Together the series expose the refit economy the workload-aware
// literature presupposes: how often fits refresh, what triggers them
// (cadence vs. drift), how often they fail and back off, how far down
// the fallback ladder serving has degraded, and how hard the reservoir
// is churning.
var (
	onlineInserts      = telemetry.Default.Counter("selest_online_inserts_total")
	onlineEvictions    = telemetry.Default.Counter("selest_online_reservoir_evictions_total")
	onlineRefits       = telemetry.Default.Counter("selest_online_refits_total")
	onlineDriftRefits  = telemetry.Default.Counter("selest_online_drift_refits_total")
	onlineRefitFails   = telemetry.Default.Counter("selest_online_refit_failures_total")
	onlineBackoffs     = telemetry.Default.Counter("selest_online_backoffs_total")
	onlineDegradations = telemetry.Default.Counter("selest_online_degradations_total")
	onlineRefitNanos   = telemetry.Default.Histogram("selest_online_refit_nanos")
)

// Serving-engine telemetry. A refit "stall" is the reservoir-copy
// critical section — the only interval where a refit holds any lock an
// inserter can contend on; queries never stall at all, which is the
// point. Swaps count published snapshots, coalesced counts insert-path
// triggers absorbed by an in-flight build, and the rung gauge mirrors
// DegradationLevel so dashboards see ladder position without polling.
var (
	onlineRefitStallNanos = telemetry.Default.Histogram("selest_online_refit_stall_ns")
	onlineSnapshotSwaps   = telemetry.Default.Counter("selest_online_snapshot_swaps_total")
	onlineRefitCoalesced  = telemetry.Default.Counter("selest_online_refit_coalesced_total")
	onlineBuilderRung     = telemetry.Default.Gauge("selest_online_builder_rung")
	// Promotions count rung recoveries (PromoteAfter climbs); abandoned
	// flushes count FlushContext calls that hit their deadline while a
	// build was still running — the shutdown path's "gave up waiting"
	// signal.
	onlinePromotions     = telemetry.Default.Counter("selest_online_promotions_total")
	onlineFlushAbandoned = telemetry.Default.Counter("selest_online_flush_abandoned_total")
)
