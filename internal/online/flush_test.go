package online

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"selest/internal/sample"
	"selest/internal/xrand"
)

func fillEstimator(t *testing.T, e *Estimator, n int) {
	t.Helper()
	r := xrand.New(7)
	for i := 0; i < n; i++ {
		if err := e.Insert(r.Float64()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFlushContextAbandonsStuckRefit pins the shutdown property: a
// deadline'd FlushContext returns once the context expires even though
// the builder is wedged, and the abandoned build still publishes its
// snapshot when it eventually finishes.
func TestFlushContextAbandonsStuckRefit(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	build := func(samples []float64) (Fitted, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release // wedged until the test releases it
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(build, Config{ReservoirSize: 16, RefitEvery: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	for i := 0; i < 8; i++ { // below capacity: no auto refit
		if err := e.Insert(r.Float64()); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = e.FlushContext(ctx)
	if err == nil {
		t.Fatal("FlushContext returned nil while the builder was wedged")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned flush error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("FlushContext blocked %v past its 30ms deadline", elapsed)
	}
	if e.Ready() {
		t.Fatal("snapshot published before the builder finished")
	}

	// The abandoned build continues in the background: releasing the
	// builder must let it publish.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for !e.Ready() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !e.Ready() {
		t.Fatal("abandoned build never published its snapshot")
	}
	// And the single-flight slot was released: a fresh Flush succeeds.
	if err := e.Flush(); err != nil {
		t.Fatalf("flush after abandoned build: %v", err)
	}
}

// TestFlushContextWaitsOutInFlightBuild pins that a second FlushContext
// whose deadline expires while another flush holds the single-flight slot
// gives up with the context error instead of queueing forever.
func TestFlushContextTimesOutWaitingForSlot(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	build := func(samples []float64) (Fitted, error) {
		once.Do(func() { close(entered) })
		<-release
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(build, Config{ReservoirSize: 16, RefitEvery: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillEstimator(t, e, 8)

	go e.Flush() // takes the slot and wedges
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.FlushContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slot wait error = %v, want context.DeadlineExceeded", err)
	}
	close(release)
}

// TestFlushBackwardsCompatible pins that the wrapper keeps the old
// blocking semantics: no deadline, build runs inline, errors surface.
func TestFlushBackwardsCompatible(t *testing.T) {
	boom := errors.New("boom")
	builds := 0
	build := func(samples []float64) (Fitted, error) {
		builds++
		if builds == 1 {
			return nil, boom
		}
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(build, Config{ReservoirSize: 16, RefitEvery: -1, Seed: 1, DegradeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillEstimator(t, e, 8)
	if err := e.Flush(); !errors.Is(err, boom) {
		t.Fatalf("first flush error = %v, want wrapped boom", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("second flush: %v", err)
	}
	if !e.Ready() {
		t.Fatal("flush did not publish")
	}
}

// TestPromoteAfterClimbsLadder drives the estimator down a rung with
// failures, then heals the primary builder and pins that PromoteAfter
// consecutive clean refits climb back to rung 0 — the "descends and
// recovers" half of the service degradation story.
func TestPromoteAfterClimbsLadder(t *testing.T) {
	primaryHealthy := false
	primary := func(samples []float64) (Fitted, error) {
		if !primaryHealthy {
			return nil, errors.New("primary down")
		}
		return sample.NewPureEstimator(samples), nil
	}
	fallback := func(samples []float64) (Fitted, error) {
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(primary, Config{
		ReservoirSize: 16, RefitEvery: -1, Seed: 1,
		DegradeAfter: 2, PromoteAfter: 2,
		Fallbacks: []Builder{fallback},
	})
	if err != nil {
		t.Fatal(err)
	}
	fillEstimator(t, e, 15) // below capacity: no auto refit on fill

	// Two failing flushes spend the strike budget and land on rung 1
	// (the second failure degrades and retries the fallback inline).
	if err := e.Flush(); err == nil {
		t.Fatal("first flush should report the primary failure")
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("second flush should degrade and succeed on the fallback: %v", err)
	}
	if got := e.DegradationLevel(); got != 1 {
		t.Fatalf("degradation level = %d, want 1", got)
	}

	// One clean refit on the fallback is not enough to promote...
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e.DegradationLevel(); got != 1 {
		t.Fatalf("promoted after 1 clean refit (level %d), want PromoteAfter=2", got)
	}
	// ...the second is. (The degrading flush's successful fallback build
	// reset the streak, so these two flushes are the streak.)
	primaryHealthy = true
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e.DegradationLevel(); got != 0 {
		t.Fatalf("degradation level after promotion = %d, want 0", got)
	}
	// The promoted primary now serves the refits again.
	if err := e.Flush(); err != nil {
		t.Fatalf("flush on promoted primary: %v", err)
	}
	if got := e.DegradationLevel(); got != 0 {
		t.Fatalf("healthy primary demoted itself (level %d)", got)
	}
}

// TestPromoteAfterZeroKeepsOneWayLadder pins the default: without
// PromoteAfter the ladder never climbs back.
func TestPromoteAfterZeroKeepsOneWayLadder(t *testing.T) {
	primary := func(samples []float64) (Fitted, error) {
		return nil, errors.New("always down")
	}
	fallback := func(samples []float64) (Fitted, error) {
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(primary, Config{
		ReservoirSize: 16, RefitEvery: -1, Seed: 1,
		DegradeAfter: 1, Fallbacks: []Builder{fallback},
	})
	if err != nil {
		t.Fatal(err)
	}
	fillEstimator(t, e, 15) // below capacity: no auto refit on fill
	for i := 0; i < 5; i++ {
		if err := e.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	if got := e.DegradationLevel(); got != 1 {
		t.Fatalf("degradation level = %d, want a permanent 1", got)
	}
}

// TestReservoirValues pins the raw-sample accessor the service's cheapest
// answer rung reads from.
func TestReservoirValues(t *testing.T) {
	e, err := New(func(samples []float64) (Fitted, error) {
		return sample.NewPureEstimator(samples), nil
	}, Config{ReservoirSize: 32, RefitEvery: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.ReservoirValues(); len(got) != 0 {
		t.Fatalf("empty estimator returned %d reservoir values", len(got))
	}
	fillEstimator(t, e, 10)
	got := e.ReservoirValues()
	if len(got) != 10 {
		t.Fatalf("reservoir values = %d, want 10", len(got))
	}
	// The copy is private: mutating it must not corrupt the reservoir.
	for i := range got {
		got[i] = -1
	}
	if again := e.ReservoirValues(); again[0] == -1 {
		t.Fatal("ReservoirValues aliases the reservoir")
	}
}
