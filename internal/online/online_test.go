package online

import (
	"errors"
	"math"
	"sync"
	"testing"

	"selest/internal/core"
	"selest/internal/kde"
	"selest/internal/xrand"
)

// kernelBuilder fits the paper's recommended kernel estimator (boundary
// kernels) over [0, 1000].
func kernelBuilder(samples []float64) (Fitted, error) {
	return core.Build(samples, core.Options{
		Method: core.Kernel, Boundary: kde.BoundaryKernels,
		DomainLo: 0, DomainHi: 1000,
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil builder should error")
	}
	if _, err := New(kernelBuilder, Config{ReservoirSize: 1}); err == nil {
		t.Fatal("tiny reservoir should error")
	}
	if _, err := New(kernelBuilder, Config{DriftAlpha: 1.5}); err == nil {
		t.Fatal("bad alpha should error")
	}
}

func TestUnfittedAnswersZero(t *testing.T) {
	e, err := New(kernelBuilder, Config{ReservoirSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if e.Selectivity(0, 1000) != 0 {
		t.Fatal("unfitted estimator should answer 0")
	}
	if e.Name() != "online(unfitted)" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestFitsWhenReservoirFills(t *testing.T) {
	e, err := New(kernelBuilder, Config{ReservoirSize: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	for i := 0; i < 99; i++ {
		if err := e.Insert(r.Float64() * 1000); err != nil {
			t.Fatal(err)
		}
	}
	if e.Refits() != 0 {
		t.Fatal("fitted before the reservoir filled")
	}
	if err := e.Insert(500); err != nil {
		t.Fatal(err)
	}
	if e.Refits() != 1 {
		t.Fatalf("Refits = %d after fill", e.Refits())
	}
	if s := e.Selectivity(0, 1000); math.Abs(s-1) > 0.05 {
		t.Fatalf("whole-domain σ̂ = %v", s)
	}
	if e.Name() == "online(unfitted)" {
		t.Fatal("Name should include the fit")
	}
}

func TestCadenceRefits(t *testing.T) {
	e, err := New(kernelBuilder, Config{ReservoirSize: 50, RefitEvery: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(4)
	for i := 0; i < 1000; i++ {
		if err := e.Insert(r.Float64() * 1000); err != nil {
			t.Fatal(err)
		}
	}
	// Fill refit at 50 inserts, then every 100: 1 + floor((1000-50)/100).
	if e.Refits() < 8 || e.Refits() > 12 {
		t.Fatalf("Refits = %d, want ~10", e.Refits())
	}
	if e.Inserts() != 1000 {
		t.Fatalf("Inserts = %d", e.Inserts())
	}
}

func TestDriftTriggersRefit(t *testing.T) {
	// Cadence disabled; only drift detection may refit.
	e, err := New(kernelBuilder, Config{
		ReservoirSize: 200, RefitEvery: -1,
		DriftAlpha: 0.01, DriftCheckEvery: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(6)
	// Phase 1: uniform on [0, 500].
	for i := 0; i < 2000; i++ {
		if err := e.Insert(r.Float64() * 500); err != nil {
			t.Fatal(err)
		}
	}
	afterPhase1 := e.Refits()
	if afterPhase1 < 1 {
		t.Fatal("no initial fit")
	}
	// Phase 2: distribution jumps to [500, 1000] — drift must fire.
	for i := 0; i < 4000; i++ {
		if err := e.Insert(500 + r.Float64()*500); err != nil {
			t.Fatal(err)
		}
	}
	if e.Refits() <= afterPhase1 {
		t.Fatalf("drift did not trigger a refit (refits %d)", e.Refits())
	}
	// The drift refit fires early in phase 2 while the reservoir is still
	// mostly old data, so force one final fit and check the estimate now
	// reflects the stream mix (4000 of 6000 records in [500, 1000]).
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if hi := e.Selectivity(500, 1000); math.Abs(hi-2.0/3.0) > 0.12 {
		t.Fatalf("post-drift σ̂(500,1000) = %v, want ~2/3", hi)
	}
}

func TestNoDriftNoExtraRefits(t *testing.T) {
	e, err := New(kernelBuilder, Config{
		ReservoirSize: 200, RefitEvery: -1,
		DriftAlpha: 0.001, DriftCheckEvery: 100, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(8)
	for i := 0; i < 10000; i++ {
		if err := e.Insert(r.Float64() * 1000); err != nil {
			t.Fatal(err)
		}
	}
	// A stationary stream should produce the initial fit and (almost) no
	// drift refits at alpha = 0.1%.
	if e.Refits() > 3 {
		t.Fatalf("stationary stream caused %d refits", e.Refits())
	}
}

func TestFlush(t *testing.T) {
	e, err := New(kernelBuilder, Config{ReservoirSize: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err == nil {
		t.Fatal("flush of empty estimator should error")
	}
	r := xrand.New(10)
	for i := 0; i < 50; i++ { // far below the reservoir size
		if err := e.Insert(r.Float64() * 1000); err != nil {
			t.Fatal(err)
		}
	}
	if e.Refits() != 0 {
		t.Fatal("should not have fitted yet")
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Refits() != 1 || e.Selectivity(0, 1000) == 0 {
		t.Fatal("flush did not fit")
	}
}

func TestBuilderErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	e, err := New(func([]float64) (Fitted, error) { return nil, boom }, Config{ReservoirSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(11)
	var sawErr bool
	for i := 0; i < 10; i++ {
		if err := e.Insert(r.Float64()); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("wrong error: %v", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("builder error swallowed")
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	e, err := New(kernelBuilder, Config{ReservoirSize: 100, RefitEvery: 500, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 5000; i++ {
				if err := e.Insert(r.Float64() * 1000); err != nil {
					panic(err)
				}
			}
		}(uint64(g))
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed + 50)
			for i := 0; i < 5000; i++ {
				a := r.Float64() * 900
				if s := e.Selectivity(a, a+100); s < 0 || s > 1 {
					panic("selectivity out of range")
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if e.Inserts() != 20000 {
		t.Fatalf("Inserts = %d", e.Inserts())
	}
}
