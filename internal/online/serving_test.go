package online

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selest/internal/sample"
	"selest/internal/xrand"
)

func TestSelectivityOKAndReady(t *testing.T) {
	e, err := New(kernelBuilder, Config{ReservoirSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if e.Ready() {
		t.Fatal("fresh estimator claims Ready")
	}
	if s, ok := e.SelectivityOK(0, 1000); ok || s != 0 {
		t.Fatalf("unfitted SelectivityOK = (%v, %v), want (0, false)", s, ok)
	}
	if e.Generation() != 0 {
		t.Fatalf("unfitted Generation = %d", e.Generation())
	}
	r := xrand.New(1)
	for i := 0; i < 50; i++ {
		if err := e.Insert(r.Float64() * 1000); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Ready() {
		t.Fatal("estimator not Ready after the reservoir filled")
	}
	if e.Generation() != 1 {
		t.Fatalf("Generation = %d after first fit", e.Generation())
	}
	s, ok := e.SelectivityOK(0, 1000)
	if !ok || s <= 0 {
		t.Fatalf("fitted SelectivityOK = (%v, %v)", s, ok)
	}
	// A genuinely empty range now answers (0, true) — distinguishable
	// from the unfitted (0, false).
	if s, ok := e.SelectivityOK(5000, 6000); !ok || s != 0 {
		t.Fatalf("out-of-domain SelectivityOK = (%v, %v), want (0, true)", s, ok)
	}
}

// TestSnapshotMatchesLockedBitForBit drives the snapshot engine and the
// preserved RWMutex implementation through the same drifting stream
// (same seed, one shard) and pins that every probed answer is identical
// bit for bit — the snapshot design changes the concurrency story, not
// one bit of the estimate.
func TestSnapshotMatchesLockedBitForBit(t *testing.T) {
	cfg := Config{
		ReservoirSize: 200, RefitEvery: 300,
		DriftAlpha: 0.05, DriftCheckEvery: 70, Seed: 42,
	}
	engine, err := New(kernelBuilder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	locked := newLocked(kernelBuilder, cfg)

	r := xrand.New(7)
	probes := []struct{ a, b float64 }{{0, 1000}, {100, 250}, {400, 401}, {900, 1000}, {0, 0}}
	for i := 0; i < 6000; i++ {
		// A drifting mixture so cadence AND drift refits both fire.
		v := r.Float64() * 1000
		if i > 3000 {
			v = 500 + r.NormalMeanStd(0, 1)*80
		}
		errA := engine.Insert(v)
		errB := locked.Insert(v)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("insert %d: error mismatch: %v vs %v", i, errA, errB)
		}
		if i%37 == 0 {
			for _, p := range probes {
				a := engine.Selectivity(p.a, p.b)
				b := locked.Selectivity(p.a, p.b)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("insert %d probe (%g,%g): %v != %v", i, p.a, p.b, a, b)
				}
			}
		}
	}
	if engine.Refits() != locked.Refits() {
		t.Fatalf("refit counts diverged: %d vs %d", engine.Refits(), locked.Refits())
	}
	if engine.Refits() < 5 {
		t.Fatalf("stream exercised only %d refits", engine.Refits())
	}
	if err := engine.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := locked.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, p := range probes {
		a, b := engine.Selectivity(p.a, p.b), locked.Selectivity(p.a, p.b)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("post-flush probe (%g,%g): %v != %v", p.a, p.b, a, b)
		}
	}
}

// checksumFit pairs a fit with the exact sum of the sample it was built
// from, so readers can detect a torn (fit, fitSample) pair.
type checksumFit struct {
	sum float64
	n   int
}

func (c *checksumFit) Selectivity(a, b float64) float64 { return 0.5 }
func (c *checksumFit) Name() string                     { return "checksum" }

// TestNoTornSnapshotPair hammers refits while readers load the snapshot
// and verify the fit they got belongs to the fitSample they got: the sum
// the builder recorded must equal the sum over the published sample. A
// torn pair (new fit with old sample or vice versa) fails immediately;
// under the old two-field design this is exactly what a reader between
// the two writes could observe without the lock.
func TestNoTornSnapshotPair(t *testing.T) {
	build := func(samples []float64) (Fitted, error) {
		sum := 0.0
		for _, v := range samples {
			sum += v
		}
		return &checksumFit{sum: sum, n: len(samples)}, nil
	}
	e, err := New(build, Config{ReservoirSize: 64, RefitEvery: 64, Shards: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.snap.Load()
				if s == nil {
					continue
				}
				if s.generation < lastGen {
					panic("generation went backwards")
				}
				lastGen = s.generation
				sum := 0.0
				for _, v := range s.fitSample {
					sum += v
				}
				cf := s.fit.(*checksumFit)
				if cf.n != len(s.fitSample) || math.Float64bits(cf.sum) != math.Float64bits(sum) {
					panic("torn snapshot: fit does not match fitSample")
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := xrand.New(uint64(w))
			for i := 0; i < 20000; i++ {
				e.Insert(r.Float64() * 1000)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if e.Refits() < 2 {
		t.Fatalf("only %d refits exercised", e.Refits())
	}
}

// TestCoalesceAndFlushWaits gates a builder on a channel to hold a build
// in flight, then pins the single-flight contract: cadence triggers that
// land during the build coalesce into it (no second build starts, the
// trigger returns nil), while Flush blocks until the in-flight build
// publishes and then builds again itself.
func TestCoalesceAndFlushWaits(t *testing.T) {
	gate := make(chan struct{})
	inFlight := make(chan struct{}, 8)
	var builds atomic.Int32
	build := func(samples []float64) (Fitted, error) {
		if builds.Add(1) > 1 {
			inFlight <- struct{}{}
			<-gate
		}
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(build, Config{ReservoirSize: 10, RefitEvery: 10, DegradeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // build 1: the fill fit, ungated
		if err := e.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if e.Generation() != 1 {
		t.Fatalf("Generation = %d after fill fit", e.Generation())
	}

	// Cross the next cadence boundary from a goroutine; its build blocks
	// on the gate while holding only the single-flight guard.
	var trigger sync.WaitGroup
	trigger.Add(1)
	go func() {
		defer trigger.Done()
		for i := 0; i < 10; i++ {
			e.Insert(float64(i))
		}
	}()
	<-inFlight

	// Inserts during the in-flight build keep crossing the boundary:
	// they must coalesce — nil error, no extra build, query path live.
	coalescedBefore := onlineRefitCoalesced.Value()
	for i := 0; i < 25; i++ {
		if err := e.Insert(float64(i)); err != nil {
			t.Fatalf("coalesced insert returned %v", err)
		}
		if s, ok := e.SelectivityOK(0, 9); !ok || s <= 0 {
			t.Fatal("query path stalled during in-flight build")
		}
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("%d builds started during in-flight build, want 2", got)
	}
	if onlineRefitCoalesced.Value() == coalescedBefore {
		t.Fatal("coalesced triggers not counted")
	}
	if e.Generation() != 1 {
		t.Fatalf("Generation = %d before the gated build published", e.Generation())
	}

	// Flush must wait on the in-flight build, then build again.
	flushed := make(chan error, 1)
	go func() { flushed <- e.Flush() }()
	select {
	case err := <-flushed:
		t.Fatalf("Flush returned %v while a build was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	trigger.Wait()
	if err := <-flushed; err != nil {
		t.Fatal(err)
	}
	// Build 2 published generation 2; Flush's own build published 3.
	if e.Generation() != 3 {
		t.Fatalf("Generation = %d after flush, want 3", e.Generation())
	}
	if got := builds.Load(); got != 3 {
		t.Fatalf("builds = %d after flush, want 3", got)
	}
}

// TestServeSoakThroughDegradation is the -race soak: writers insert,
// flushers force refits, and readers hammer the query surface while the
// primary builder fails permanently partway through and serving degrades
// to the fallback. Pinned invariants: generations are monotone from
// every reader's viewpoint, and after the first fit no query ever
// regresses to the unfitted (0, false) answer.
func TestServeSoakThroughDegradation(t *testing.T) {
	var okBuilds atomic.Int32
	primary := func(samples []float64) (Fitted, error) {
		if okBuilds.Add(1) > 3 {
			return nil, errors.New("primary down")
		}
		return sample.NewPureEstimator(samples), nil
	}
	fallback := func(samples []float64) (Fitted, error) {
		return sample.NewPureEstimator(samples), nil
	}
	e, err := New(primary, Config{
		ReservoirSize: 64, RefitEvery: 128, Shards: 4, Seed: 9,
		DegradeAfter: 2, Fallbacks: []Builder{fallback},
	})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	perWriter := 30000
	if testing.Short() {
		perWriter = 5000
	}
	var writersWG sync.WaitGroup
	stop := make(chan struct{})
	ready := make(chan struct{})
	var readyOnce sync.Once

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			r := xrand.New(uint64(w + 1))
			for i := 0; i < perWriter; i++ {
				e.Insert(r.Float64() * 1000) // failures expected mid-soak
				if e.Ready() {
					readyOnce.Do(func() { close(ready) })
				}
			}
		}(w)
	}
	var auxWG sync.WaitGroup
	auxWG.Add(1)
	go func() { // flusher
		defer auxWG.Done()
		<-ready
		for {
			select {
			case <-stop:
				return
			default:
				e.Flush() // errors expected while the ladder degrades
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var readersWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		readersWG.Add(1)
		go func(g int) {
			defer readersWG.Done()
			<-ready
			r := xrand.New(uint64(100 + g))
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen := e.Generation()
				if gen < lastGen {
					panic("generation went backwards")
				}
				lastGen = gen
				a := r.Float64() * 900
				s, ok := e.SelectivityOK(a, a+100)
				if !ok {
					panic("query regressed to unfitted after first fit")
				}
				if s < 0 || s > 1 || math.IsNaN(s) {
					panic("selectivity out of range")
				}
				e.Name()
				e.DegradationLevel()
			}
		}(g)
	}

	wgDone := make(chan struct{})
	go func() { writersWG.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(120 * time.Second):
		t.Fatal("soak wedged")
	}
	close(stop)
	auxWG.Wait()
	readersWG.Wait()

	if e.Inserts() != writers*perWriter {
		t.Fatalf("Inserts = %d, want %d", e.Inserts(), writers*perWriter)
	}
	if e.DegradationLevel() != 1 {
		t.Fatalf("DegradationLevel = %d, want 1 (fallback serving)", e.DegradationLevel())
	}
	if e.FailedRefits() == 0 {
		t.Fatal("soak never exercised a failed refit")
	}
	if s, ok := e.SelectivityOK(0, 1000); !ok || s <= 0 {
		t.Fatalf("final SelectivityOK = (%v, %v)", s, ok)
	}
}

// TestInsertBatch pins that the batch entry point feeds every record and
// surfaces the first refit error.
func TestInsertBatch(t *testing.T) {
	e, err := New(kernelBuilder, Config{ReservoirSize: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]float64, 500)
	r := xrand.New(3)
	for i := range batch {
		batch[i] = r.Float64() * 1000
	}
	if err := e.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if e.Inserts() != len(batch) {
		t.Fatalf("Inserts = %d, want %d", e.Inserts(), len(batch))
	}
	if !e.Ready() {
		t.Fatal("batch insert never fitted")
	}

	boom := errors.New("boom")
	bad, err := New(func([]float64) (Fitted, error) { return nil, boom }, Config{ReservoirSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.InsertBatch(batch[:20]); !errors.Is(err, boom) {
		t.Fatalf("InsertBatch error = %v, want %v", err, boom)
	}
}
