// Package errs holds the typed sentinel errors shared across the
// estimator layers. It exists as a leaf package so that the parameter
// packages (bandwidth, hybrid) can wrap the same sentinels that
// internal/core re-exports without creating an import cycle — core
// imports bandwidth and hybrid, so the sentinels cannot live in core
// alone. core keeps aliases, so errors.Is against core.ErrBadOption and
// errs.ErrBadOption are interchangeable.
package errs

import "errors"

var (
	// ErrEmptySample reports a sample set with nothing to estimate from:
	// empty, or (through the robust ladder) containing no finite value.
	ErrEmptySample = errors.New("empty sample set")
	// ErrInvalidDomain reports a domain that is not a proper finite
	// interval (DomainHi must exceed DomainLo).
	ErrInvalidDomain = errors.New("invalid domain")
	// ErrBadOption reports an option outside its valid range: an unknown
	// method or rule, a negative count, a non-finite bandwidth, or a
	// rule/method combination that cannot work.
	ErrBadOption = errors.New("bad option")
)
