package xrand

import (
	"math"
	"testing"
)

func TestMixtureRejectsBadInput(t *testing.T) {
	if _, err := NewMixture(nil); err == nil {
		t.Fatal("empty mixture should error")
	}
	if _, err := NewMixture([]MixtureComponent{{Weight: -1, Draw: func(*RNG) float64 { return 0 }}}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := NewMixture([]MixtureComponent{{Weight: 1, Draw: nil}}); err == nil {
		t.Fatal("nil sampler should error")
	}
	if _, err := NewMixture([]MixtureComponent{{Weight: math.NaN(), Draw: func(*RNG) float64 { return 0 }}}); err == nil {
		t.Fatal("NaN weight should error")
	}
}

func TestMixtureWeights(t *testing.T) {
	// Two point masses with weights 3:1 — the empirical split must match.
	mix, err := NewMixture([]MixtureComponent{
		{Weight: 3, Draw: func(*RNG) float64 { return 0 }},
		{Weight: 1, Draw: func(*RNG) float64 { return 1 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := New(17)
	const n = 100000
	ones := 0
	for i := 0; i < n; i++ {
		if mix.Draw(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("component-2 fraction = %v, want ~0.25", frac)
	}
}

func TestMixtureComponentsCount(t *testing.T) {
	mix, err := NewMixture([]MixtureComponent{
		{Weight: 1, Draw: func(*RNG) float64 { return 0 }},
		{Weight: 1, Draw: func(*RNG) float64 { return 1 }},
		{Weight: 1, Draw: func(*RNG) float64 { return 2 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mix.Components() != 3 {
		t.Fatalf("Components() = %d, want 3", mix.Components())
	}
}

func TestClusterProcessValidation(t *testing.T) {
	if _, err := NewClusterProcess(ClusterConfig{Clusters: 0, Lo: 0, Hi: 1}); err == nil {
		t.Fatal("0 clusters should error")
	}
	if _, err := NewClusterProcess(ClusterConfig{Clusters: 3, Lo: 1, Hi: 1}); err == nil {
		t.Fatal("empty support should error")
	}
}

func TestClusterProcessIsClumpy(t *testing.T) {
	p, err := NewClusterProcess(ClusterConfig{Clusters: 20, Lo: 0, Hi: 1000, SpreadFrac: 0.001, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := New(8)
	const n = 50000
	// Histogram into 100 cells; a clumpy process concentrates most points in
	// few cells, while a uniform one spreads them evenly.
	cells := make([]int, 100)
	for i := 0; i < n; i++ {
		v := p.Draw(r)
		idx := int(v / 10)
		if idx >= 0 && idx < len(cells) {
			cells[idx]++
		}
	}
	occupied := 0
	for _, c := range cells {
		if c > 0 {
			occupied++
		}
	}
	if occupied > 60 {
		t.Fatalf("cluster process occupies %d/100 cells; expected clumpiness", occupied)
	}
}

func TestClusterProcessDeterministic(t *testing.T) {
	mk := func() []float64 {
		p, err := NewClusterProcess(ClusterConfig{Clusters: 5, Lo: 0, Hi: 100, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		r := New(99)
		out := make([]float64, 50)
		for i := range out {
			out[i] = p.Draw(r)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cluster process not deterministic at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClusterProcessDefaults(t *testing.T) {
	p, err := NewClusterProcess(ClusterConfig{Clusters: 2, Lo: 0, Hi: 10, SpreadFrac: 0, WeightDecay: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := New(2)
	v := p.Draw(r)
	if math.IsNaN(v) {
		t.Fatal("draw produced NaN")
	}
}
