package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 8000 {
			t.Fatalf("value %d badly under-represented: %d/60000", k, seen[k])
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestForkDecorrelates(t *testing.T) {
	r := New(9)
	f := r.Fork()
	matches := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("forked stream matched parent %d times", matches)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(xs)
	got := 0.0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: sum %v -> %v", sum, got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(21)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(23)
	const n, rate = 200000, 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(rate)
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean = %v, want %v", mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) should panic")
		}
	}()
	New(1).Exponential(0)
}

func TestUniformRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.UniformRange(-3, 8)
		if v < -3 || v >= 8 {
			t.Fatalf("UniformRange out of bounds: %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 1.5, 1, 999)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		v := z.Uint64()
		if v > 999 {
			t.Fatalf("Zipf variate out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 1, which must dominate rank 10.
	if !(counts[0] > counts[1] && counts[1] > counts[10]) {
		t.Fatalf("Zipf not skewed: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(q<=1) should panic")
		}
	}()
	NewZipf(New(1), 1.0, 1, 10)
}

// Property: Intn(n) stays within [0, n) for arbitrary small n.
func TestQuickIntnInRange(t *testing.T) {
	r := New(99)
	prop := func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
