package xrand

import (
	"fmt"
	"math"
	"sort"
)

// MixtureComponent is one component of a finite mixture: a sampler drawn
// with probability proportional to Weight.
type MixtureComponent struct {
	Weight float64
	Draw   func(*RNG) float64
}

// Mixture draws from a finite mixture of samplers. Construct with
// NewMixture; the zero value is unusable.
type Mixture struct {
	components []MixtureComponent
	cum        []float64 // cumulative normalised weights
}

// NewMixture builds a mixture sampler from the given components. Weights
// are normalised; non-positive weights or an empty component list are
// rejected.
func NewMixture(components []MixtureComponent) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("xrand: mixture needs at least one component")
	}
	total := 0.0
	for i, c := range components {
		if c.Weight <= 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) {
			return nil, fmt.Errorf("xrand: mixture component %d has invalid weight %v", i, c.Weight)
		}
		if c.Draw == nil {
			return nil, fmt.Errorf("xrand: mixture component %d has nil sampler", i)
		}
		total += c.Weight
	}
	m := &Mixture{
		components: append([]MixtureComponent(nil), components...),
		cum:        make([]float64, len(components)),
	}
	run := 0.0
	for i, c := range components {
		run += c.Weight / total
		m.cum[i] = run
	}
	m.cum[len(m.cum)-1] = 1 // kill accumulated round-off
	return m, nil
}

// Draw samples one value from the mixture.
func (m *Mixture) Draw(r *RNG) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Draw(r)
}

// Components returns the number of mixture components.
func (m *Mixture) Components() int { return len(m.components) }

// ClusterProcess generates the clumpy one-dimensional point process we use
// as a stand-in for coordinate data extracted from TIGER/Line files (see
// DESIGN.md §4): k cluster centres placed by a parent process, each centre
// carrying a narrow Gaussian of points, with power-law cluster weights so a
// few clusters dominate — the signature of road/river endpoint data.
type ClusterProcess struct {
	mix *Mixture
}

// ClusterConfig parameterises a ClusterProcess.
type ClusterConfig struct {
	Clusters    int     // number of cluster centres (>= 1)
	Lo, Hi      float64 // support of the parent process
	SpreadFrac  float64 // cluster stddev as a fraction of (Hi−Lo); e.g. 0.002
	WeightDecay float64 // power-law exponent for cluster weights; e.g. 1.1
	Seed        uint64  // placement seed (independent of the draw RNG)
}

// NewClusterProcess places cluster centres and returns the process.
func NewClusterProcess(cfg ClusterConfig) (*ClusterProcess, error) {
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("xrand: cluster process needs >= 1 cluster, got %d", cfg.Clusters)
	}
	if cfg.Hi <= cfg.Lo {
		return nil, fmt.Errorf("xrand: cluster support [%v, %v] is empty", cfg.Lo, cfg.Hi)
	}
	if cfg.SpreadFrac <= 0 {
		cfg.SpreadFrac = 0.002
	}
	if cfg.WeightDecay <= 0 {
		cfg.WeightDecay = 1.1
	}
	placement := New(cfg.Seed)
	width := cfg.Hi - cfg.Lo
	std := cfg.SpreadFrac * width
	comps := make([]MixtureComponent, cfg.Clusters)
	for i := range comps {
		centre := cfg.Lo + width*placement.Float64()
		// Power-law weights: cluster ranks follow w_i ∝ (i+1)^(−decay).
		weight := math.Pow(float64(i+1), -cfg.WeightDecay)
		comps[i] = MixtureComponent{
			Weight: weight,
			Draw: func(r *RNG) float64 {
				return r.NormalMeanStd(centre, std)
			},
		}
	}
	mix, err := NewMixture(comps)
	if err != nil {
		return nil, err
	}
	return &ClusterProcess{mix: mix}, nil
}

// Draw samples one point. Values can fall slightly outside [Lo, Hi]; the
// dataset layer clips to the integer domain exactly as the paper clips
// records that fall outside the mapped domain.
func (p *ClusterProcess) Draw(r *RNG) float64 { return p.mix.Draw(r) }
