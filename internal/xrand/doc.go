// Package xrand provides the deterministic random-variate substrate for
// selest: a small, fast PRNG (xoshiro256** seeded via splitmix64) plus
// samplers for the distributions the paper's evaluation uses — uniform,
// normal, exponential, Zipf, finite mixtures, and the clustered spatial
// process that stands in for the TIGER/Line data files.
//
// Every generator in this package is fully determined by its seed, so data
// files, sample sets and query workloads are reproducible across runs and
// machines. The package deliberately does not use math/rand's global state.
package xrand
