package xrand

import "math"

// Normal returns a standard normal variate via the Marsaglia polar method.
// The polar method produces two variates per accepted pair; we deliberately
// discard the spare so that each call is a pure function of the PRNG stream,
// which keeps generated datasets stable under code refactoring.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalMeanStd returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormalMeanStd(mean, std float64) float64 {
	return mean + std*r.Normal()
}

// Exponential returns an Exp(rate) variate via inversion. rate must be
// positive; it panics otherwise.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exponential with non-positive rate")
	}
	// 1−U avoids log(0); U ∈ [0,1) so 1−U ∈ (0,1].
	return -math.Log(1-r.Float64()) / rate
}

// UniformRange returns a uniform variate in [lo, hi).
func (r *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Zipf draws from a Zipf distribution with P(k) ∝ (v+k)^(−q) for k in
// {0, …, imax} using rejection-inversion (Hörmann–Derflinger). This mirrors
// the standard library's generator but runs against our own PRNG so data
// generation stays deterministic and dependency-free.
type Zipf struct {
	rng              *RNG
	imax             float64
	v                float64
	q                float64
	s                float64
	oneminusQ        float64
	oneminusQinv     float64
	hxm, hx0minusHxm float64
}

// NewZipf returns a Zipf generator over {0, …, imax} with exponent q and
// shift v. It panics if q <= 1 or v < 1.
func NewZipf(rng *RNG, q, v float64, imax uint64) *Zipf {
	if q <= 1 || v < 1 {
		panic("xrand: NewZipf requires q > 1 and v >= 1")
	}
	z := &Zipf{rng: rng, imax: float64(imax), v: v, q: q}
	z.oneminusQ = 1 - q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(v)*(-q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-q*math.Log(v+1)))
	return z
}

// h is the integral of the hat function used by rejection-inversion.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

// hinv is the inverse of h.
func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Uint64 returns a Zipf variate in {0, …, imax}.
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
