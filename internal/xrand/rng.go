package xrand

import "math/bits"

// RNG is a xoshiro256** pseudo-random number generator. The zero value is
// not usable; construct instances with New.
//
// xoshiro256** passes BigCrush, has a 2^256−1 period, and needs only four
// words of state, which keeps per-dataset generators cheap. Seeding runs the
// 64-bit seed through splitmix64 so that nearby seeds yield uncorrelated
// streams.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// All-zero state is the one forbidden state of xoshiro; splitmix64
	// cannot produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// splitmix64 advances the splitmix64 state and returns (next state, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Int63 returns a uniform non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Fork returns a new RNG whose stream is decorrelated from r's, for
// splitting one seed into independent per-purpose generators (data vs.
// samples vs. queries).
func (r *RNG) Fork() *RNG {
	return New(r.Uint64() ^ 0x6a09e667f3bcc909)
}

// Perm returns a uniformly random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place with Fisher–Yates.
func (r *RNG) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
