// HTTP/JSON transport: a mux over the service core with the robustness
// middleware every endpoint shares — per-request panic containment,
// deadline propagation from the X-Selest-Timeout-Ms header (defaulted
// from Config.DefaultTimeout), per-tenant admission control, inflight and
// latency telemetry, and a drain gate that 503s new work during graceful
// shutdown. Every error is a typed JSON body, never a bare string and
// never a panic escaping to the connection.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"selest/internal/errcode"
	"selest/internal/faultinject"
	"selest/internal/telemetry"
	"selest/internal/wire"

	"context"
)

// The typed error body every non-2xx response carries is the
// transport-neutral envelope from internal/errcode: the wire transport
// sends the same (code, message) pair in its error frames.
type (
	apiError  = errcode.APIError
	errorBody = errcode.ErrorBody
)

// writeError maps a service error to its HTTP status and typed body via
// the shared errcode registry — the single classification both
// transports use.
func writeError(w http.ResponseWriter, err error) {
	code := errcode.Classify(err)
	writeJSON(w, code.HTTPStatus(), errorBody{Error: apiError{Code: code.String(), Message: err.Error()}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Request payloads. Ranges and values are validated at decode time so a
// malformed request is rejected before it touches any estimator state.

type estimateRequest struct {
	Tenant string  `json:"tenant"`
	Attr   string  `json:"attr"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Fresh  bool    `json:"fresh,omitempty"`
}

type batchEstimateRequest struct {
	Tenant  string       `json:"tenant"`
	Attr    string       `json:"attr"`
	Queries []RangeQuery `json:"queries"`
	Fresh   bool         `json:"fresh,omitempty"`
}

type ingestRequest struct {
	Tenant string    `json:"tenant"`
	Attr   string    `json:"attr"`
	Values []float64 `json:"values"`
}

type createAttrRequest struct {
	Tenant string     `json:"tenant"`
	Attr   string     `json:"attr"`
	Config AttrConfig `json:"config"`
}

// decodeJSON decodes one JSON document from r, rejecting trailing garbage
// and non-JSON with a typed bad-value error. JSON cannot carry NaN or
// Inf, so any non-finite float arriving here came from a malformed body
// the decoder already rejected — range/value semantics are checked by the
// per-endpoint decode* wrappers below.
func decodeJSON(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrBadValue, err)
	}
	// A second document (or trailing garbage) is malformed.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadValue)
	}
	return nil
}

func decodeEstimate(r io.Reader) (estimateRequest, error) {
	var req estimateRequest
	if err := decodeJSON(r, &req); err != nil {
		return req, err
	}
	if req.Tenant == "" || req.Attr == "" {
		return req, fmt.Errorf("%w: tenant and attr are required", ErrBadValue)
	}
	if err := validRange(req.Lo, req.Hi); err != nil {
		return req, err
	}
	return req, nil
}

func (s *Server) decodeBatchEstimate(r io.Reader) (batchEstimateRequest, error) {
	var req batchEstimateRequest
	if err := decodeJSON(r, &req); err != nil {
		return req, err
	}
	if req.Tenant == "" || req.Attr == "" {
		return req, fmt.Errorf("%w: tenant and attr are required", ErrBadValue)
	}
	if len(req.Queries) == 0 {
		return req, fmt.Errorf("%w: empty queries", ErrBadRange)
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		return req, fmt.Errorf("%w: batch of %d exceeds limit %d", ErrBadValue, len(req.Queries), s.cfg.MaxBatch)
	}
	for _, q := range req.Queries {
		if err := validRange(q.Lo, q.Hi); err != nil {
			return req, err
		}
	}
	return req, nil
}

func (s *Server) decodeIngest(r io.Reader) (ingestRequest, error) {
	var req ingestRequest
	if err := decodeJSON(r, &req); err != nil {
		return req, err
	}
	if req.Tenant == "" || req.Attr == "" {
		return req, fmt.Errorf("%w: tenant and attr are required", ErrBadValue)
	}
	if len(req.Values) == 0 {
		return req, fmt.Errorf("%w: empty values", ErrBadValue)
	}
	if len(req.Values) > s.cfg.MaxBatch {
		return req, fmt.Errorf("%w: ingest of %d exceeds limit %d", ErrBadValue, len(req.Values), s.cfg.MaxBatch)
	}
	for _, v := range req.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return req, fmt.Errorf("%w: %v", ErrBadValue, v)
		}
	}
	return req, nil
}

func decodeCreateAttr(r io.Reader) (createAttrRequest, error) {
	var req createAttrRequest
	if err := decodeJSON(r, &req); err != nil {
		return req, err
	}
	if req.Tenant == "" || req.Attr == "" {
		return req, fmt.Errorf("%w: tenant and attr are required", ErrBadValue)
	}
	return req, nil
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/attrs          — create an attribute (idempotent)
//	POST /v1/estimate       — one range query
//	POST /v1/estimate/batch — many range queries, one attribute
//	POST /v1/ingest         — enqueue stream values (backpressured)
//	GET  /v1/snapshot       — the crash-safe snapshot envelope (snapshot
//	                          shipping: how a joining replica warm-boots)
//	GET  /healthz           — liveness + drain state
//	GET  /metrics           — Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/attrs", s.wrap(s.handleCreateAttr))
	mux.HandleFunc("/v1/estimate", s.wrap(s.handleEstimate))
	mux.HandleFunc("/v1/estimate/batch", s.wrap(s.handleEstimateBatch))
	mux.HandleFunc("/v1/ingest", s.wrap(s.handleIngest))
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("/metrics", telemetry.Handler())
	return mux
}

// handleSnapshot serves the SELS envelope to a joining replica. It is a
// GET registered outside wrap (which gates POSTs), but keeps the drain
// gate: a draining daemon is about to write its final snapshot, and
// shipping a pre-drain one would hand the newcomer a state the survivor
// is already past. The envelope's own CRCs make the transfer
// self-verifying; a torn download fails the joiner's recovery as
// catalog.ErrTornSnapshot, never a silent partial boot.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: apiError{
			Code: errcode.CodeMethodNotAllowed.String(), Message: "use GET",
		}})
		return
	}
	if s.draining.Load() {
		writeError(w, ErrDraining)
		return
	}
	b, err := s.SnapshotBytes()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	_, _ = w.Write(b)
}

// wrap is the shared robustness middleware: drain gate, deadline
// propagation, inflight/latency accounting, retry visibility, and panic
// containment. A handler panic — including an injected FaultHandler
// panic — becomes a typed 500 on this request alone; the daemon keeps
// serving every other connection.
func (s *Server) wrap(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		srvInflight.Set(float64(s.inflight.Add(1)))
		defer func() {
			srvInflight.Set(float64(s.inflight.Add(-1)))
			srvLatencyNanos.ObserveSince(start)
			if rec := recover(); rec != nil {
				srvPanics.Inc()
				writeError(w, fmt.Errorf("panic contained: %v", rec))
			}
		}()
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: apiError{
				Code: errcode.CodeMethodNotAllowed.String(), Message: "use POST",
			}})
			return
		}
		if s.draining.Load() {
			writeError(w, ErrDraining)
			return
		}
		if retries := r.Header.Get(wire.HeaderRetry); retries != "" && retries != "0" {
			srvRetried.Inc()
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxPayloadBytes)

		// Deadline propagation: the client names its budget (the typed
		// form is wire.Meta.TimeoutMs / client.WithTimeout); the server
		// defaults one so no request can wait forever.
		timeout := s.cfg.DefaultTimeout
		if ms := r.Header.Get(wire.HeaderTimeoutMs); ms != "" {
			if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
				timeout = time.Duration(v) * time.Millisecond
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		if err := faultinject.Check(FaultHandler); err != nil {
			writeError(w, err)
			return
		}
		h(w, r.WithContext(ctx))
	}
}

// admit charges the tenant's bucket and writes the 429 (with Retry-After)
// itself; callers stop on false.
func (s *Server) admit(w http.ResponseWriter, tenant string, cost int) bool {
	retry, err := s.Admit(tenant, cost)
	if err != nil {
		secs := int64(retry / time.Second)
		if retry%time.Second != 0 {
			secs++ // ceil: retrying early would just 429 again
		}
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeError(w, err)
		return false
	}
	return true
}

func (s *Server) handleCreateAttr(w http.ResponseWriter, r *http.Request) {
	req, err := decodeCreateAttr(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.admit(w, req.Tenant, 1) {
		return
	}
	if err := s.CreateAttr(req.Tenant, req.Attr, req.Config); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeEstimate(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.admit(w, req.Tenant, 1) {
		return
	}
	res, err := s.Estimate(r.Context(), req.Tenant, req.Attr, req.Lo, req.Hi, req.Fresh)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeBatchEstimate(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.admit(w, req.Tenant, len(req.Queries)) {
		return
	}
	results, err := s.EstimateBatch(r.Context(), req.Tenant, req.Attr, req.Queries, req.Fresh)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeIngest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	if !s.admit(w, req.Tenant, len(req.Values)) {
		return
	}
	res, err := s.Ingest(req.Tenant, req.Attr, req.Values)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
