package server

import "selest/internal/telemetry"

// Service telemetry. Admission is the front door (admitted vs rejected,
// with retried counting requests that announce themselves as client
// retries via X-Selest-Retry); the ingest queues expose their shed count
// and aggregate depth; the request path records one latency observation
// and, per answer, which rung of the degradation ladder produced it.
// Recovery counters distinguish a warm start from a cold one and surface
// torn snapshots explicitly — availability over silence.
var (
	srvAdmitted  = telemetry.Default.Counter("selest_server_admitted_total")
	srvRejected  = telemetry.Default.Counter("selest_server_rejected_total")
	srvRetried   = telemetry.Default.Counter("selest_server_retried_total")
	srvShed      = telemetry.Default.Counter("selest_server_shed_total")
	srvPanics    = telemetry.Default.Counter("selest_server_panics_total")
	srvDrainDrop = telemetry.Default.Counter("selest_server_drain_errors_total")

	srvQueueDepth = telemetry.Default.Gauge("selest_server_queue_depth")
	srvInflight   = telemetry.Default.Gauge("selest_server_inflight_requests")
	srvAnswerRung = telemetry.Default.Gauge("selest_server_answer_rung")

	srvLatencyNanos = telemetry.Default.Histogram("selest_server_request_nanos")

	srvRecoveries    = telemetry.Default.Counter("selest_server_recoveries_total")
	srvTornSnapshots = telemetry.Default.Counter("selest_server_torn_snapshots_total")
	srvSnapshotSaves = telemetry.Default.Counter("selest_server_snapshot_saves_total")

	// Scale-out telemetry: snapshots shipped to joining peers, and
	// refusals from the box-wide (all-tenant) admission bucket — the
	// capacity signal an operator watches to decide when to add replicas.
	srvSnapshotFetches = telemetry.Default.Counter("selest_server_snapshot_fetches_total")
	srvGlobalRejected  = telemetry.Default.Counter("selest_server_global_rejected_total")
)

// Wire-transport telemetry, kept as its own series (rather than folded
// into the HTTP ones) so a dual-listener daemon can compare transports
// directly — the JSON-vs-wire latency gap is the whole point of the
// binary protocol.
var (
	srvWireRequests    = telemetry.Default.Counter("selest_server_wire_requests_total")
	srvWireProtoErrors = telemetry.Default.Counter("selest_server_wire_protocol_errors_total")
	srvWireReadErrors  = telemetry.Default.Counter("selest_server_wire_read_errors_total")
	srvWireWriteErrors = telemetry.Default.Counter("selest_server_wire_write_errors_total")

	// Fast-path telemetry (DESIGN.md §16): requests served inline on the
	// reader goroutine (no dispatch goroutine, no payload copy) and
	// response flushes deferred by the coalescing state machine (each one
	// is a write syscall the pipelined burst did not pay).
	srvWireInlineServed     = telemetry.Default.Counter("selest_server_wire_inline_served_total")
	srvWireFlushesCoalesced = telemetry.Default.Counter("selest_server_wire_flushes_coalesced_total")

	srvWireConns = telemetry.Default.Gauge("selest_server_wire_connections")

	srvWireLatencyNanos = telemetry.Default.Histogram("selest_server_wire_request_nanos")
)

// Per-rung answer counters, one labeled series per ladder rung, captured
// once so the answer path stays allocation-free.
var srvAnswersByRung = func() map[rung]*telemetry.Counter {
	m := make(map[rung]*telemetry.Counter, len(rungNames))
	for r, name := range rungNames {
		m[r] = telemetry.Default.Counter(telemetry.Label("selest_server_answers_total", "rung", name))
	}
	return m
}()
