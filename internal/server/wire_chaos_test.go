// The wire-transport chaos suite: the binary listener under the same
// deliberate failures the HTTP chaos suite pins — panicking refits,
// shutdown under load, throttled tenants, injected handler panics, and
// raw protocol garbage — driven through the real client package over
// real TCP, under -race via `make race-wire`.
package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selest/client"
	"selest/internal/faultinject"
	"selest/internal/telemetry"
	"selest/internal/wire"
)

// startWireServer boots the binary listener on an ephemeral port and
// tears it down with the test.
func startWireServer(t *testing.T, s *Server) (*WireServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := s.NewWireServer()
	go func() { _ = ws.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ws.Shutdown(ctx)
	})
	return ws, ln.Addr().String()
}

// wireClient builds a native client against addr with retries disabled
// (chaos pins want to see every failure, not have it absorbed).
func wireClient(t *testing.T, addr string, mutate ...func(*client.Options)) *client.Client {
	t.Helper()
	opts := client.Options{Addr: addr, MaxRetries: -1, HealthCheckEvery: -1}
	for _, m := range mutate {
		m(&opts)
	}
	c, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestWireChaosRefitPanicSoak is the refit-panic soak through the binary
// listener: pipelined mixed load runs over real TCP while the primary
// builder panics. The pins are the HTTP soak's: the rung descends,
// recovers once the fault clears, and not one query errors — panics
// degrade estimate quality, never availability, on this transport too.
func TestWireChaosRefitPanicSoak(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := New(Config{})
	cfg := testAttrCfg()
	cfg.DegradeAfter = 2
	cfg.PromoteAfter = 2
	if err := s.CreateAttr("acme", "price", cfg); err != nil {
		t.Fatal(err)
	}
	a, err := s.attr("acme", "price")
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startWireServer(t, s)
	c := wireClient(t, addr)
	ctx := context.Background()

	// Prime a healthy fit so the soak starts at rung 0 with a snapshot.
	if _, err := c.Ingest(ctx, "acme", "price", seq(64)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 64)
	if _, err := c.Estimate(ctx, "acme", "price", 0, 1, client.WithFresh()); err != nil {
		t.Fatal(err)
	}
	if a.est.DegradationLevel() != 0 {
		t.Fatalf("soak must start on the primary rung, at %d", a.est.DegradationLevel())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, queryErrs atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := float64(i%10) / 20
				var err error
				if i%4 == 0 {
					_, err = c.Estimate(ctx, "acme", "price", lo, lo+0.5, client.WithFresh())
				} else {
					_, err = c.Estimate(ctx, "acme", "price", lo, lo+0.5)
				}
				if err != nil {
					queryErrs.Add(1)
					t.Errorf("wire query errored during chaos: %v", err)
				}
				queries.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := seq(64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Ingest(ctx, "acme", "price", batch); err != nil {
				t.Errorf("wire ingest errored during chaos: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	faultinject.EnablePanic(FaultRefitPrimary, "chaos: primary refit panic")
	waitCond(t, "builder rung to descend", 15*time.Second, func() bool {
		return a.est.DegradationLevel() >= 1
	})
	faultinject.Disable(FaultRefitPrimary)
	waitCond(t, "builder rung to recover", 15*time.Second, func() bool {
		return a.est.DegradationLevel() == 0
	})

	close(stop)
	wg.Wait()
	if queryErrs.Load() != 0 {
		t.Fatalf("%d of %d wire queries errored; the ladder must absorb refit panics", queryErrs.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("soak ran no queries")
	}
}

// TestWireChaosShutdownConservation pins the conservation law under the
// binary listener: every value accepted over the wire before and during
// Close either reaches its reservoir engine or was shed with the shed
// reported in the response — inserted == accepted − shed exactly. During
// the drain, refusals are typed ErrDraining frames, never dropped
// connections.
func TestWireChaosShutdownConservation(t *testing.T) {
	s := New(Config{QueueCap: 1 << 16})
	for _, attr := range []string{"price", "weight"} {
		if err := s.CreateAttr("acme", attr, testAttrCfg()); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startWireServer(t, s)
	c := wireClient(t, addr)
	ctx := context.Background()

	var accepted, shed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			attr := "price"
			if w%2 == 1 {
				attr = "weight"
			}
			batch := seq(32)
			<-start
			for {
				res, err := c.Ingest(ctx, "acme", attr, batch)
				if err != nil {
					if errors.Is(err, client.ErrDraining) {
						return
					}
					t.Errorf("wire ingest: %v", err)
					return
				}
				accepted.Add(int64(res.Queued))
				shed.Add(int64(res.Shed))
			}
		}(w)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let load build up
	ctxClose, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctxClose, ""); err != nil {
		t.Fatalf("graceful shutdown under wire load: %v", err)
	}
	wg.Wait()

	var inserted int64
	for _, name := range []string{"price", "weight"} {
		a, err := s.attr("acme", name)
		if err != nil {
			t.Fatal(err)
		}
		inserted += int64(a.est.Inserts())
	}
	if inserted != accepted.Load()-shed.Load() {
		t.Fatalf("wire shutdown dropped accepted values untracked: %d accepted, %d shed, %d reached the reservoir (want accepted-shed)",
			accepted.Load(), shed.Load(), inserted)
	}
}

// TestWireChaosSlowTenantIsolation pins admission isolation over the
// wire: a tenant exhausting its quota gets typed ErrOverQuota frames
// carrying a usable retry hint while another tenant keeps its full
// budget — on the same listener, over concurrently-open connections.
func TestWireChaosSlowTenantIsolation(t *testing.T) {
	s := New(Config{QuotaRate: 1, QuotaBurst: 5})
	for _, tn := range []string{"slow", "fast"} {
		if err := s.CreateAttr(tn, "price", testAttrCfg()); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startWireServer(t, s)
	c := wireClient(t, addr)
	ctx := context.Background()

	// The slow tenant hammers: burst of 5 admitted, everything after a
	// typed over-quota frame with a retry hint.
	var rejected int
	for i := 0; i < 50; i++ {
		_, err := c.Estimate(ctx, "slow", "price", 0.1, 0.9)
		switch {
		case err == nil:
		case errors.Is(err, client.ErrOverQuota):
			rejected++
			var ae *client.APIError
			if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
				t.Fatalf("over-quota frame without a usable retry hint: %v", err)
			}
		default:
			t.Fatalf("slow tenant got %v", err)
		}
	}
	if rejected < 40 {
		t.Fatalf("slow tenant was rejected only %d of 50 times at burst 5", rejected)
	}
	// The fast tenant's bucket is untouched: its full burst still admits.
	for i := 0; i < 5; i++ {
		if _, err := c.Estimate(ctx, "fast", "price", 0.1, 0.9); err != nil {
			t.Fatalf("fast tenant degraded by slow tenant: %v on request %d", err, i+1)
		}
	}
}

// TestWireChaosPanicContainment pins per-request panic containment on
// the binary listener: an injected handler panic becomes a typed
// internal-error frame on that request alone — the connection survives
// and the next request on it succeeds.
func TestWireChaosPanicContainment(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	_, addr := startWireServer(t, s)
	c := wireClient(t, addr, func(o *client.Options) { o.Conns = 1 })
	ctx := context.Background()

	if _, err := c.Estimate(ctx, "acme", "price", 0.1, 0.9); err != nil {
		t.Fatal(err)
	}
	panicsBefore := telemetry.Default.Snapshot().Counters["selest_server_panics_total"]

	faultinject.EnablePanic(FaultHandler, "chaos: wire handler panic")
	_, err := c.Estimate(ctx, "acme", "price", 0.1, 0.9)
	if !errors.Is(err, client.ErrInternal) {
		t.Fatalf("panicked request: got %v, want typed ErrInternal", err)
	}
	faultinject.Disable(FaultHandler)

	// Same connection, next request: the panic was contained to one frame.
	if _, err := c.Estimate(ctx, "acme", "price", 0.1, 0.9); err != nil {
		t.Fatalf("request after contained panic: %v", err)
	}
	if d := c.Stats().Dials; d != 1 {
		t.Fatalf("connection was dropped by a contained panic: %d dials", d)
	}
	if after := telemetry.Default.Snapshot().Counters["selest_server_panics_total"]; after <= panicsBefore {
		t.Fatalf("panic counter did not move: %v -> %v", panicsBefore, after)
	}
}

// TestWireChaosProtocolGarbage pins the corrupt-stream posture with raw
// sockets: garbage bytes, an unknown opcode, and an oversized length
// each get one typed error frame (or a summary hang-up) and the
// connection is closed — while the listener keeps serving well-behaved
// connections untouched.
func TestWireChaosProtocolGarbage(t *testing.T) {
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	_, addr := startWireServer(t, s)
	good := wireClient(t, addr)
	ctx := context.Background()

	send := func(t *testing.T, raw []byte, hangup bool) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
		// The server answers with at most one error frame; on a stream
		// fault (hangup=true) it then closes the connection.
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		fr, _, err := wire.ReadFrame(conn, wire.MaxPayload, nil)
		if err == nil {
			if fr.Op != wire.OpError {
				t.Fatalf("garbage answered with op %s, want error frame", fr.Op)
			}
			er, derr := wire.DecodeErrorRes(fr.Payload)
			if derr != nil {
				t.Fatalf("undecodable error frame: %v", derr)
			}
			if er.Code == 0 {
				t.Fatal("error frame with code 0 (ok)")
			}
			if hangup {
				if _, _, err := wire.ReadFrame(conn, wire.MaxPayload, nil); err == nil {
					t.Fatal("connection stayed open after protocol error")
				}
			}
		} else if !hangup {
			t.Fatalf("per-request fault got no error frame: %v", err)
		}
	}

	t.Run("garbage bytes", func(t *testing.T) {
		send(t, []byte("GET / HTTP/1.1\r\nHost: nope\r\n\r\n"), true)
	})
	t.Run("unknown opcode", func(t *testing.T) {
		send(t, wire.AppendFrame(nil, wire.Frame{Op: 0x7E, ID: 9}), true)
	})
	t.Run("oversized length", func(t *testing.T) {
		raw := wire.AppendFrame(nil, wire.Frame{Op: wire.OpPing, ID: 1})
		// Inflate the length field past the server's bound; the CRC no
		// longer matters because the length check fires first.
		raw[12], raw[13], raw[14], raw[15] = 0xFF, 0xFF, 0xFF, 0xFF
		send(t, raw, true)
	})
	t.Run("corrupt crc", func(t *testing.T) {
		raw := wire.AppendFrame(nil, wire.Frame{Op: wire.OpPing, ID: 1, Payload: wire.PingReq{}.Append(nil)})
		raw[len(raw)-1] ^= 0xFF
		send(t, raw, true)
	})
	t.Run("malformed payload", func(t *testing.T) {
		// Well-framed estimate whose payload is junk: a typed
		// bad-request frame, but the stream is still healthy, so the
		// connection stays open for the next request.
		send(t, wire.AppendFrame(nil, wire.Frame{Op: wire.OpEstimate, ID: 3, Payload: []byte{0xFF, 0xFF}}), false)
	})

	// Throughout all of it, a well-behaved client on the same listener
	// never noticed.
	if _, err := good.Estimate(ctx, "acme", "price", 0.1, 0.9); err != nil {
		t.Fatalf("well-behaved connection disturbed by garbage peers: %v", err)
	}
}
