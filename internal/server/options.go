// Service construction: the validated Options struct and the NewServer
// constructor — the server-side mirror of selest.Options.Validate. Every
// limit, queue size, snapshot path, and listener config lives here so a
// daemon's whole shape is one declarative value, and a bad value is a
// typed core.ErrBadOption at construction time instead of a surprise at
// request time.
package server

import (
	"fmt"
	"math"
	"strings"
	"time"

	"selest/internal/errs"
)

// Options parameterises the service. The zero value is a working
// server: every limit takes the documented default. Validate rejects
// values outside their range with typed errs.ErrBadOption errors
// (errors.Is-compatible with core.ErrBadOption).
type Options struct {
	// QuotaRate/QuotaBurst set every tenant's token bucket: QuotaRate
	// tokens refill per second up to QuotaBurst, and each request costs
	// its payload size (one per estimate query, one per ingested value).
	// QuotaRate <= 0 disables admission control.
	QuotaRate, QuotaBurst float64
	// GlobalRate/GlobalBurst cap the whole box's admitted request rate
	// (requests per second, regardless of tenant or payload size) with
	// one shared token bucket checked before any per-tenant quota.
	// Refusals are ErrOverQuota with an exact Retry-After, identical to a
	// tenant-quota refusal. This is overload protection for the process —
	// the knob an operator sets to what one replica's hardware sustains —
	// and the capacity model scripts/bench_cluster.sh uses to measure
	// replica scaling on a shared host. Pings and health checks bypass
	// it, so a saturated replica still answers "alive". GlobalRate <= 0
	// disables the cap.
	GlobalRate, GlobalBurst float64
	// QueueCap bounds each attribute's ingest queue; overflow sheds the
	// oldest queued values. Zero defaults to 8192.
	QueueCap int
	// DefaultTimeout is applied to requests that carry no deadline of
	// their own. Zero defaults to 5s.
	DefaultTimeout time.Duration
	// DegradeDeadline is the remaining-deadline threshold below which a
	// fresh=true estimate skips its flush and answers from the current
	// snapshot instead of racing the clock. Zero defaults to 25ms.
	DegradeDeadline time.Duration
	// MaxInflight is the overload threshold: while more requests than
	// this are in flight, fresh=true estimates degrade to the snapshot
	// rung. Zero defaults to 1024.
	MaxInflight int64
	// MaxBatch bounds queries per batch-estimate and values per ingest
	// request. Zero defaults to 4096.
	MaxBatch int
	// MaxAttrs bounds the total number of attributes across tenants.
	// Zero defaults to 4096.
	MaxAttrs int
	// MaxPayloadBytes bounds a request body (HTTP) or frame payload
	// (wire): payloads beyond it are a typed error, not an OOM. Zero
	// defaults to 16 MiB.
	MaxPayloadBytes int64

	// SnapshotPath, when non-empty, names the crash-safe snapshot file
	// the daemon recovers on boot and writes on shutdown. The Server
	// itself only reads it as documentation of intent; cmd/selestd
	// drives Recover/SaveSnapshot with it.
	SnapshotPath string
	// HTTPAddr/WireAddr are the daemon's listener configs: the HTTP/JSON
	// transport address and the selestwire binary-protocol address
	// (empty disables the wire listener). Like SnapshotPath these are
	// carried for the daemon; the Server serves whatever listeners it is
	// handed.
	HTTPAddr, WireAddr string
}

// withDefaults returns o with every zero limit replaced by its default.
func (o Options) withDefaults() Options {
	if o.QueueCap == 0 {
		o.QueueCap = 8192
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 5 * time.Second
	}
	if o.DegradeDeadline == 0 {
		o.DegradeDeadline = 25 * time.Millisecond
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 1024
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 4096
	}
	if o.MaxAttrs == 0 {
		o.MaxAttrs = 4096
	}
	if o.MaxPayloadBytes == 0 {
		o.MaxPayloadBytes = 16 << 20
	}
	return o
}

// Validate reports the first option outside its valid range as a typed
// errs.ErrBadOption error. Zero values are valid everywhere (they mean
// "use the default"); negatives, NaNs, and inconsistent pairs are not.
func (o *Options) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("server: %s: %w", fmt.Sprintf(format, args...), errs.ErrBadOption)
	}
	if math.IsNaN(o.QuotaRate) || math.IsInf(o.QuotaRate, 0) {
		return bad("QuotaRate %v must be finite", o.QuotaRate)
	}
	if math.IsNaN(o.QuotaBurst) || math.IsInf(o.QuotaBurst, 0) || o.QuotaBurst < 0 {
		return bad("QuotaBurst %v must be finite and non-negative", o.QuotaBurst)
	}
	if o.QuotaRate > 0 && o.QuotaBurst == 0 {
		return bad("QuotaRate %v needs a positive QuotaBurst", o.QuotaRate)
	}
	if math.IsNaN(o.GlobalRate) || math.IsInf(o.GlobalRate, 0) {
		return bad("GlobalRate %v must be finite", o.GlobalRate)
	}
	if math.IsNaN(o.GlobalBurst) || math.IsInf(o.GlobalBurst, 0) || o.GlobalBurst < 0 {
		return bad("GlobalBurst %v must be finite and non-negative", o.GlobalBurst)
	}
	if o.QueueCap < 0 {
		return bad("QueueCap %d must be non-negative", o.QueueCap)
	}
	if o.DefaultTimeout < 0 {
		return bad("DefaultTimeout %v must be non-negative", o.DefaultTimeout)
	}
	if o.DegradeDeadline < 0 {
		return bad("DegradeDeadline %v must be non-negative", o.DegradeDeadline)
	}
	if o.MaxInflight < 0 {
		return bad("MaxInflight %d must be non-negative", o.MaxInflight)
	}
	if o.MaxBatch < 0 {
		return bad("MaxBatch %d must be non-negative", o.MaxBatch)
	}
	if o.MaxAttrs < 0 {
		return bad("MaxAttrs %d must be non-negative", o.MaxAttrs)
	}
	if o.MaxPayloadBytes < 0 {
		return bad("MaxPayloadBytes %d must be non-negative", o.MaxPayloadBytes)
	}
	// Two listeners on one address can never both bind — except port 0,
	// where the kernel hands each its own ephemeral port.
	if o.HTTPAddr != "" && o.HTTPAddr == o.WireAddr && !strings.HasSuffix(o.HTTPAddr, ":0") {
		return bad("HTTPAddr and WireAddr are both %q", o.HTTPAddr)
	}
	return nil
}

// NewServer validates o and returns a server configured by it. This is
// the constructor; New is the deprecated unvalidated shim.
func NewServer(o Options) (*Server, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return newServer(o.withDefaults()), nil
}

func newServer(cfg Options) *Server {
	s := &Server{cfg: cfg, tenants: make(map[string]*tenant)}
	if cfg.GlobalRate > 0 {
		burst := cfg.GlobalBurst
		if burst <= 0 {
			burst = cfg.GlobalRate // default: one second of headroom
		}
		s.global = newTokenBucket(cfg.GlobalRate, burst)
	}
	return s
}

// Config is the pre-Options name for the service configuration.
//
// Deprecated: use Options with NewServer, which validates. Config
// remains an alias so existing construction sites keep compiling.
type Config = Options

// New returns an empty server without validating cfg — out-of-range
// values are silently defaulted or carried, matching the pre-Options
// behaviour.
//
// Deprecated: use NewServer, which rejects invalid options with typed
// errs.ErrBadOption errors.
func New(cfg Config) *Server {
	return newServer(cfg.withDefaults())
}
