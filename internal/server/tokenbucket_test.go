package server

import (
	"testing"
	"time"
)

func TestTokenBucketStartsFull(t *testing.T) {
	b := newTokenBucket(1, 5)
	now := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		if ok, _ := b.take(1, now); !ok {
			t.Fatalf("take %d refused on a full bucket of burst 5", i+1)
		}
	}
	ok, retry := b.take(1, now)
	if ok {
		t.Fatal("6th take admitted past the burst")
	}
	if retry != time.Second {
		t.Fatalf("Retry-After %v, want exactly 1s (deficit 1 token at 1/s)", retry)
	}
}

func TestTokenBucketRefills(t *testing.T) {
	b := newTokenBucket(10, 2)
	now := time.Unix(0, 0)
	b.take(2, now) // empty it
	if ok, _ := b.take(1, now); ok {
		t.Fatal("admitted from an empty bucket with no time passed")
	}
	if ok, _ := b.take(1, now.Add(100*time.Millisecond)); !ok {
		t.Fatal("100ms at 10 tokens/s refills 1 token; take refused")
	}
	// Refill caps at burst: a long idle period does not bank extra tokens.
	later := now.Add(time.Hour)
	b.take(2, later)
	if ok, _ := b.take(1, later); ok {
		t.Fatal("bucket banked more than burst over an idle hour")
	}
}

func TestTokenBucketUnlimitedWhenRateZero(t *testing.T) {
	b := newTokenBucket(0, 1)
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.take(100, now); !ok {
			t.Fatal("rate<=0 must disable limiting")
		}
	}
}

func TestTokenBucketClampsCost(t *testing.T) {
	b := newTokenBucket(1, 4)
	now := time.Unix(0, 0)
	// A cost above the burst is charged as a full burst: admitted once
	// from a full bucket, then the tenant is drained.
	if ok, _ := b.take(1000, now); !ok {
		t.Fatal("oversized request refused on a full bucket")
	}
	if ok, _ := b.take(1, now); ok {
		t.Fatal("oversized request did not drain the bucket")
	}
	// Cost below 1 still charges one token.
	b2 := newTokenBucket(1, 1)
	b2.take(0, now)
	if ok, _ := b2.take(1, now); ok {
		t.Fatal("zero-cost take charged nothing")
	}
}
