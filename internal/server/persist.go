// Snapshot persistence: the server's crash-safe on-disk state is a small
// envelope — a JSON manifest of every attribute's serving configuration —
// followed by a standard catalog stream carrying each attribute's
// reservoir sample. Both halves are independently checksummed (CRC32 for
// the manifest, the catalog's own footer for the sample data) and the
// whole file is written through catalog.AtomicWriteFile, so a kill at any
// instant leaves either the previous snapshot whole or the new one whole.
//
// Determinism is a design requirement, not an accident: attributes are
// serialised in sorted (tenant, attr) order and reservoir samples are
// sorted before persisting, so saving, restarting, and saving again
// yields bit-identical files — the property the chaos suite's
// kill-and-restart check pins.
package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"selest/internal/catalog"
	"selest/internal/core"
)

var snapshotMagic = [4]byte{'S', 'E', 'L', 'S'}

const snapshotVersion = 1

// manifestAttr is one attribute's persisted identity: enough to rebuild
// its serving machinery (the AttrConfig) plus the stream cardinality the
// reservoir alone cannot recall.
type manifestAttr struct {
	Tenant string     `json:"tenant"`
	Attr   string     `json:"attr"`
	Config AttrConfig `json:"config"`
	Rows   int64      `json:"rows"`
}

// SaveSnapshot persists the whole service crash-safely to path. It is
// safe to call while serving: each attribute's reservoir is snapshotted
// independently (the file is per-attribute consistent, not a cross-
// attribute barrier — the same contract the lock-free catalog gives).
func (s *Server) SaveSnapshot(path string) error {
	attrs := s.attributes()
	err := catalog.AtomicWriteFile(path, func(w io.Writer) error {
		return s.writeSnapshot(w, attrs)
	})
	if err == nil {
		srvSnapshotSaves.Inc()
	}
	return err
}

// SnapshotBytes serialises the whole service into the same SELS envelope
// SaveSnapshot writes to disk, in memory. This is the payload of
// snapshot shipping (OpSnapshotFetch / GET /v1/snapshot): because the
// envelope is deterministic — sorted attributes, sorted samples — the
// bytes a peer fetches are identical to the bytes a local SaveSnapshot
// would have written, and the chaos suite pins that with bytes.Equal.
func (s *Server) SnapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.writeSnapshot(&buf, s.attributes()); err != nil {
		return nil, err
	}
	srvSnapshotFetches.Inc()
	return buf.Bytes(), nil
}

func (s *Server) writeSnapshot(w io.Writer, attrs []*attribute) error {
	man := make([]manifestAttr, 0, len(attrs))
	cat := catalog.New()
	for _, a := range attrs {
		rows := a.rows.Load()
		man = append(man, manifestAttr{
			Tenant: a.tenant,
			Attr:   a.name,
			Config: a.cfg,
			Rows:   rows,
		})
		smp := a.est.ReservoirValues()
		if len(smp) == 0 {
			// Cold attribute: config survives via the manifest; there is
			// no sample to store.
			continue
		}
		sort.Float64s(smp) // canonical order: re-saves are bit-identical
		entry := &catalog.Entry{
			Table:     a.tenant,
			Column:    a.name,
			Samples:   smp,
			DomainLo:  a.cfg.DomainLo,
			DomainHi:  a.cfg.DomainHi,
			Method:    a.cfg.methodOrDefault(),
			Rule:      a.cfg.Rule,
			Boundary:  a.cfg.Boundary,
			Bins:      a.cfg.Bins,
			Bandwidth: a.cfg.Bandwidth,
			RowCount:  rows,
		}
		if err := cat.Put(entry); err != nil {
			// The configured method cannot rebuild from this sample
			// (degenerate data, tiny sample). Samples must still
			// survive: store them under the always-buildable sampling
			// method — recovery rebuilds serving from the manifest's
			// config regardless of the entry's method.
			entry.Method = core.Sampling
			entry.Rule = ""
			entry.Bandwidth = 0
			if err := cat.Put(entry); err != nil {
				return fmt.Errorf("server: snapshot %s/%s: %w", a.tenant, a.name, err)
			}
		}
	}
	manifest, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("server: snapshot manifest: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(snapshotVersion)); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(manifest))); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if _, err := bw.Write(manifest); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(manifest)); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := cat.Save(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// readSnapshot parses a snapshot stream into its manifest and catalog,
// diagnosing partial writes as catalog.ErrTornSnapshot.
func readSnapshot(r io.Reader) ([]manifestAttr, *catalog.Catalog, error) {
	br := bufio.NewReader(r)
	torn := func(err error) error {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: %v", catalog.ErrTornSnapshot, err)
		}
		return err
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("server: read snapshot magic: %w", torn(err))
	}
	if magic != snapshotMagic {
		return nil, nil, fmt.Errorf("server: bad snapshot magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, nil, fmt.Errorf("server: %w", torn(err))
	}
	if version != snapshotVersion {
		return nil, nil, fmt.Errorf("server: unsupported snapshot version %d", version)
	}
	var manLen uint32
	if err := binary.Read(br, binary.LittleEndian, &manLen); err != nil {
		return nil, nil, fmt.Errorf("server: %w", torn(err))
	}
	const maxManifest = 64 << 20
	if manLen > maxManifest {
		return nil, nil, fmt.Errorf("server: manifest length %d exceeds limit", manLen)
	}
	manifest := make([]byte, manLen)
	if _, err := io.ReadFull(br, manifest); err != nil {
		return nil, nil, fmt.Errorf("server: read manifest: %w", torn(err))
	}
	var sum uint32
	if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
		return nil, nil, fmt.Errorf("server: %w", torn(err))
	}
	if got := crc32.ChecksumIEEE(manifest); got != sum {
		return nil, nil, fmt.Errorf("server: %w: manifest checksum mismatch (file %08x, computed %08x)", catalog.ErrTornSnapshot, sum, got)
	}
	var man []manifestAttr
	if err := json.Unmarshal(manifest, &man); err != nil {
		return nil, nil, fmt.Errorf("server: decode manifest: %w", err)
	}
	cat, err := catalog.Load(br)
	if err != nil {
		return nil, nil, err
	}
	return man, cat, nil
}

// Recover warm-starts the server from a snapshot file: every manifest
// attribute is recreated with its persisted configuration, its reservoir
// is refilled from the catalog sample, its estimator is rebuilt
// immediately (queries answer from the fit rung right away, not from
// uniform), and its row count is restored. Missing files return
// os.ErrNotExist for the caller to treat as a cold start; torn files
// return catalog.ErrTornSnapshot so the caller can decide between
// failing loudly and serving cold.
func (s *Server) Recover(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.RecoverReader(f)
}

// RecoverReader warm-starts the server from a snapshot stream — the same
// recovery as Recover, minus the file. It is how `selestd -join` boots
// from a peer's shipped snapshot: the envelope's CRCs verify the
// transfer (a truncated or corrupted stream is catalog.ErrTornSnapshot,
// never a silent partial recovery), so shipping needs no checksum of its
// own.
func (s *Server) RecoverReader(r io.Reader) error {
	man, cat, err := readSnapshot(r)
	if err != nil {
		if errors.Is(err, catalog.ErrTornSnapshot) {
			srvTornSnapshots.Inc()
		}
		return err
	}
	for _, m := range man {
		if err := s.CreateAttr(m.Tenant, m.Attr, m.Config); err != nil {
			return fmt.Errorf("server: recover %s/%s: %w", m.Tenant, m.Attr, err)
		}
		a, err := s.attr(m.Tenant, m.Attr)
		if err != nil {
			return err
		}
		if entry, err := cat.Entry(m.Tenant, m.Attr); err == nil {
			// The sample is at most one reservoir, so every value is
			// kept deterministically — no RNG is consumed and a re-save
			// reproduces the file byte for byte. Refit errors here are
			// not fatal: the values are in the reservoir, the ladder
			// owns builder failures, and the reservoir rung answers
			// until a fit lands — recovery restores state, availability
			// is the ladder's job.
			if err := a.est.InsertBatch(entry.Samples); err != nil {
				srvDrainDrop.Inc()
			} else if err := a.est.Flush(); err != nil {
				srvDrainDrop.Inc()
			}
		}
		a.rows.Store(m.Rows)
	}
	srvRecoveries.Inc()
	return nil
}
