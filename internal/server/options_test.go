package server

import (
	"errors"
	"math"
	"testing"
	"time"

	"selest/internal/core"
)

// TestOptionsValidate pins the typed-rejection contract (ISSUE satellite
// 2): every out-of-range field is a core.ErrBadOption at construction
// time, and the zero value is a working server.
func TestOptionsValidate(t *testing.T) {
	good := []Options{
		{},
		{QuotaRate: 10, QuotaBurst: 100},
		{QueueCap: 1, MaxBatch: 1, MaxAttrs: 1, MaxInflight: 1, MaxPayloadBytes: 1024},
		{DefaultTimeout: time.Second, DegradeDeadline: time.Millisecond},
		{HTTPAddr: ":8765", WireAddr: ":8766", SnapshotPath: "/tmp/snap"},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("good[%d] rejected: %v", i, err)
		}
		if _, err := NewServer(o); err != nil {
			t.Errorf("good[%d]: NewServer: %v", i, err)
		}
	}

	bad := []Options{
		{QuotaRate: math.NaN()},
		{QuotaRate: math.Inf(1)},
		{QuotaBurst: -1},
		{QuotaBurst: math.NaN()},
		{QuotaRate: 5}, // positive rate with zero burst can never admit
		{QueueCap: -1},
		{DefaultTimeout: -time.Second},
		{DegradeDeadline: -time.Millisecond},
		{MaxInflight: -1},
		{MaxBatch: -1},
		{MaxAttrs: -1},
		{MaxPayloadBytes: -1},
		{HTTPAddr: ":1", WireAddr: ":1"},
	}
	for i, o := range bad {
		err := o.Validate()
		if err == nil {
			t.Errorf("bad[%d] %+v accepted", i, o)
			continue
		}
		if !errors.Is(err, core.ErrBadOption) {
			t.Errorf("bad[%d]: error %v is not core.ErrBadOption", i, err)
		}
		if _, err := NewServer(o); err == nil {
			t.Errorf("bad[%d]: NewServer accepted %+v", i, o)
		}
	}
}

// TestDeprecatedNewShim pins that the old constructor still works
// unvalidated — existing construction sites must keep their behaviour.
func TestDeprecatedNewShim(t *testing.T) {
	s := New(Config{QueueCap: 16})
	if s.cfg.QueueCap != 16 || s.cfg.MaxBatch != 4096 || s.cfg.MaxPayloadBytes != 16<<20 {
		t.Fatalf("shim defaults wrong: %+v", s.cfg)
	}
	if err := s.CreateAttr("t", "a", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestNewServerDefaults pins that NewServer applies the same defaults
// the shim does.
func TestNewServerDefaults(t *testing.T) {
	s, err := NewServer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.QueueCap != 8192 || s.cfg.DefaultTimeout != 5*time.Second ||
		s.cfg.DegradeDeadline != 25*time.Millisecond || s.cfg.MaxInflight != 1024 ||
		s.cfg.MaxBatch != 4096 || s.cfg.MaxAttrs != 4096 || s.cfg.MaxPayloadBytes != 16<<20 {
		t.Fatalf("defaults wrong: %+v", s.cfg)
	}
}
