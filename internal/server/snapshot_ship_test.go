// Snapshot-shipping pins: the bytes a peer fetches must be the bytes a
// local SaveSnapshot writes (byte-identical warm boot — the determinism
// contract PR 6 established, extended over the network), a shipped
// stream must recover into a replica that answers from the snapshot rung
// on its first request, and a torn transfer must fail recovery as the
// typed catalog.ErrTornSnapshot rather than booting a silently partial
// replica.
package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"selest/internal/catalog"
)

// shippedServer builds a server with one fitted attribute and returns
// its shipped snapshot bytes.
func shippedServer(t *testing.T) (*Server, []byte) {
	t.Helper()
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(128)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 128)
	a, err := s.attr("acme", "price")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.est.Flush(); err != nil {
		t.Fatal(err)
	}
	shipped, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	return s, shipped
}

func TestSnapshotShipBytesIdenticalToDisk(t *testing.T) {
	s, shipped := shippedServer(t)
	path := filepath.Join(t.TempDir(), "snap.selest")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shipped, disk) {
		t.Fatalf("shipped snapshot differs from disk: %d vs %d bytes (envelope must be deterministic)",
			len(shipped), len(disk))
	}

	// A replica recovered from the shipped bytes must re-serialise to the
	// same bytes: join, save, and the fleet's snapshots are interchangeable.
	joined := New(Config{})
	if err := joined.RecoverReader(bytes.NewReader(shipped)); err != nil {
		t.Fatal(err)
	}
	reshipped, err := joined.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shipped, reshipped) {
		t.Fatalf("joined replica re-serialises differently: %d vs %d bytes", len(shipped), len(reshipped))
	}
}

func TestSnapshotShipWarmBootServesSnapshotRung(t *testing.T) {
	_, shipped := shippedServer(t)
	joined := New(Config{})
	if err := joined.RecoverReader(bytes.NewReader(shipped)); err != nil {
		t.Fatal(err)
	}
	res, err := joined.Estimate(context.Background(), "acme", "price", 0.25, 0.75, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung == "uniform" || res.Generation == 0 {
		t.Fatalf("first request after join answered rung %q generation %d; want a fitted rung",
			res.Rung, res.Generation)
	}
	if res.Rung != "snapshot" {
		t.Fatalf("first request after join answered rung %q, want snapshot", res.Rung)
	}
}

func TestSnapshotShipTornTransfer(t *testing.T) {
	_, shipped := shippedServer(t)
	// Cut the transfer at several depths: inside the magic, inside the
	// manifest, inside the catalog stream, and one byte short of whole.
	for _, cut := range []int{2, len(shipped) / 4, len(shipped) / 2, len(shipped) - 1} {
		joined := New(Config{})
		err := joined.RecoverReader(bytes.NewReader(shipped[:cut]))
		if !errors.Is(err, catalog.ErrTornSnapshot) {
			t.Fatalf("transfer cut at %d/%d bytes: err = %v, want ErrTornSnapshot",
				cut, len(shipped), err)
		}
	}
	// A flipped byte inside the manifest region must also refuse (CRC).
	flipped := append([]byte(nil), shipped...)
	flipped[12] ^= 0x40
	joined := New(Config{})
	if err := joined.RecoverReader(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupted transfer recovered silently")
	}
}
