// The chaos suite: every test here breaks the service on purpose —
// panicking refits, kill-and-restart, shutdown under load, drained
// tenants, torn snapshot files — and pins the robustness contracts the
// package documents: accepted work is never dropped, recovery is
// bit-identical, and failures degrade estimate quality, never
// availability. Run under -race via `make race-service`.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selest/internal/catalog"
	"selest/internal/faultinject"
	"selest/internal/telemetry"
)

// waitCond polls cond until it holds or the deadline expires.
func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosRefitPanicSoak is the degradation-ladder soak (ISSUE satellite
// 3): mixed query/ingest load runs while the primary builder is made to
// panic via faultinject. The pins: the builder rung descends to a
// fallback, recovers to the primary once the fault clears (PromoteAfter),
// and not a single query errors at any point.
func TestChaosRefitPanicSoak(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := New(Config{})
	cfg := testAttrCfg()
	cfg.DegradeAfter = 2
	cfg.PromoteAfter = 2
	if err := s.CreateAttr("acme", "price", cfg); err != nil {
		t.Fatal(err)
	}
	a, err := s.attr("acme", "price")
	if err != nil {
		t.Fatal(err)
	}
	// Prime a healthy fit so the soak starts at rung 0 with a snapshot.
	if _, err := s.Ingest("acme", "price", seq(64)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 64)
	if _, err := s.Estimate(context.Background(), "acme", "price", 0, 1, true); err != nil {
		t.Fatal(err)
	}
	if a.est.DegradationLevel() != 0 {
		t.Fatalf("soak must start on the primary rung, at %d", a.est.DegradationLevel())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, queryErrs atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := float64(i%10) / 20
				if _, err := s.Estimate(context.Background(), "acme", "price", lo, lo+0.5, i%4 == 0); err != nil {
					queryErrs.Add(1)
					t.Errorf("query errored during chaos: %v", err)
				}
				queries.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := seq(64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Ingest("acme", "price", batch); err != nil {
				t.Errorf("ingest errored during chaos: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	faultinject.EnablePanic(FaultRefitPrimary, "chaos: primary refit panic")
	waitCond(t, "builder rung to descend", 15*time.Second, func() bool {
		return a.est.DegradationLevel() >= 1
	})
	// With PromoteAfter set the rung legitimately flaps (promote → strike
	// → demote) while the fault holds, so the gauge is polled, not
	// spot-checked.
	waitCond(t, "rung gauge to descend", 15*time.Second, func() bool {
		return telemetry.Default.Snapshot().Gauges["selest_online_builder_rung"] >= 1
	})

	faultinject.Disable(FaultRefitPrimary)
	waitCond(t, "builder rung to recover", 15*time.Second, func() bool {
		return a.est.DegradationLevel() == 0
	})

	close(stop)
	wg.Wait()
	if queryErrs.Load() != 0 {
		t.Fatalf("%d of %d queries errored; the ladder must absorb refit panics", queryErrs.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("soak ran no queries")
	}
	if g := telemetry.Default.Snapshot().Gauges["selest_online_builder_rung"]; g != 0 {
		t.Errorf("rung gauge %v after recovery, want 0", g)
	}
}

// TestChaosKillAndRestart pins crash-safe recovery: a server killed
// without any shutdown (no Close, no flush) recovers from its last
// snapshot into an identical service — and re-saving immediately yields a
// bit-identical file, the strongest statement that no state was lost or
// reordered.
func TestChaosKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	path1 := filepath.Join(dir, "snap1.selest")
	path2 := filepath.Join(dir, "snap2.selest")

	s1 := New(Config{})
	cfgA, cfgB := testAttrCfg(), testAttrCfg()
	cfgB.ReservoirSize = 32
	cfgB.RefitEvery = 32
	for _, c := range []struct {
		tenant, attr string
		cfg          AttrConfig
		n            int
	}{
		{"acme", "price", cfgA, 200},
		{"acme", "weight", cfgB, 40},
		{"zeta", "latency", cfgA, 100},
	} {
		if err := s1.CreateAttr(c.tenant, c.attr, c.cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.Ingest(c.tenant, c.attr, seq(c.n)); err != nil {
			t.Fatal(err)
		}
		waitInserted(t, s1, c.tenant, c.attr, c.n)
	}
	// A cold attribute: config must survive with no sample at all.
	if err := s1.CreateAttr("zeta", "empty", cfgA); err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveSnapshot(path1); err != nil {
		t.Fatal(err)
	}
	// s1 is now "killed": no Close, its goroutines simply stop mattering.

	s2 := New(Config{})
	if err := s2.Recover(path1); err != nil {
		t.Fatal(err)
	}
	if err := s2.SaveSnapshot(path2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("recovered snapshot differs from pre-crash snapshot: %d vs %d bytes", len(b1), len(b2))
	}

	// The recovered service answers from a real fit immediately (warm
	// start), with the row counts it had before the crash.
	res, err := s2.Estimate(context.Background(), "acme", "price", 0, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "snapshot" {
		t.Fatalf("warm start answered from rung %q, want snapshot", res.Rung)
	}
	a, err := s2.attr("acme", "price")
	if err != nil {
		t.Fatal(err)
	}
	if a.rows.Load() != 200 {
		t.Fatalf("recovered rows %d, want 200", a.rows.Load())
	}
	if _, err := s2.Estimate(context.Background(), "zeta", "empty", 0, 0.5, false); err != nil {
		t.Fatalf("cold attribute did not survive recovery: %v", err)
	}
}

// TestChaosShutdownUnderLoad pins the graceful-shutdown conservation
// law: every value the server accepted before and during shutdown either
// reaches its reservoir engine or was shed with the shed reported back to
// the caller — accepted == inserted + shed exactly; nothing vanishes
// untracked.
func TestChaosShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.selest")
	s := New(Config{QueueCap: 1 << 16})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateAttr("acme", "weight", testAttrCfg()); err != nil {
		t.Fatal(err)
	}

	var accepted, shed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			attr := "price"
			if w%2 == 1 {
				attr = "weight"
			}
			batch := seq(32)
			<-start
			for {
				res, err := s.Ingest("acme", attr, batch)
				if err != nil {
					if errors.Is(err, ErrDraining) {
						return
					}
					t.Errorf("ingest: %v", err)
					return
				}
				accepted.Add(int64(res.Queued))
				shed.Add(int64(res.Shed))
			}
		}(w)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let load build up
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx, path); err != nil {
		t.Fatalf("graceful shutdown under load: %v", err)
	}
	wg.Wait()

	var inserted int64
	for _, name := range []string{"price", "weight"} {
		a, err := s.attr("acme", name)
		if err != nil {
			t.Fatal(err)
		}
		inserted += int64(a.est.Inserts())
	}
	if inserted != accepted.Load()-shed.Load() {
		t.Fatalf("shutdown dropped accepted values untracked: %d accepted, %d shed, %d reached the reservoir (want accepted-shed)",
			accepted.Load(), shed.Load(), inserted)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("shutdown did not persist a snapshot: %v", err)
	}
	// And the snapshot is recoverable.
	s2 := New(Config{})
	if err := s2.Recover(path); err != nil {
		t.Fatalf("recovering the shutdown snapshot: %v", err)
	}
}

// TestChaosShutdownInflightHTTP pins that requests already past the drain
// gate complete normally during Close: every HTTP request gets a real
// response — 200 before the gate, typed 503 after — never a dropped
// connection, never a 5xx panic.
func TestChaosShutdownInflightHTTP(t *testing.T) {
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(64)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 64)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := []byte(`{"tenant":"acme","attr":"price","lo":0.1,"hi":0.9}`)
	var wg sync.WaitGroup
	var transport, badStatus atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					transport.Add(1)
					continue
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					var eb errorBody
					if json.Unmarshal(b, &eb) != nil || eb.Error.Code != "draining" {
						badStatus.Add(1)
					}
				default:
					badStatus.Add(1)
					t.Errorf("status %d body %s", resp.StatusCode, b)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx, ""); err != nil {
		t.Fatalf("Close under HTTP load: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // a beat of post-drain traffic: all 503
	close(stop)
	wg.Wait()
	if transport.Load() != 0 {
		t.Fatalf("%d requests lost their connection during shutdown", transport.Load())
	}
	if badStatus.Load() != 0 {
		t.Fatalf("%d requests got a non-contract response during shutdown", badStatus.Load())
	}
}

// TestChaosSlowTenantIsolation pins admission-control isolation: a tenant
// that exhausts its quota is rejected with an exact Retry-After while
// every other tenant keeps its full budget and latency path.
func TestChaosSlowTenantIsolation(t *testing.T) {
	s := New(Config{QuotaRate: 1, QuotaBurst: 5})
	for _, tn := range []string{"slow", "fast"} {
		if err := s.CreateAttr(tn, "price", testAttrCfg()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post := func(tenant string) *http.Response {
		body := fmt.Sprintf(`{"tenant":%q,"attr":"price","lo":0.1,"hi":0.9}`, tenant)
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	// The slow tenant hammers: burst of 5 admitted, everything after 429.
	var rejected int
	for i := 0; i < 50; i++ {
		resp := post("slow")
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			rejected++
			if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
				t.Fatalf("429 without a usable Retry-After (%q)", ra)
			}
		default:
			t.Fatalf("slow tenant got status %d", resp.StatusCode)
		}
	}
	if rejected < 40 {
		t.Fatalf("slow tenant was rejected only %d of 50 times at burst 5", rejected)
	}
	// The fast tenant's bucket is untouched: its full burst still admits.
	for i := 0; i < 5; i++ {
		if resp := post("fast"); resp.StatusCode != http.StatusOK {
			t.Fatalf("fast tenant degraded by slow tenant: status %d on request %d", resp.StatusCode, i+1)
		}
	}
}

// TestChaosTornSnapshot pins crash-safety of the snapshot file format:
// a snapshot truncated at any tested point, or corrupted by a bit flip,
// is diagnosed as catalog.ErrTornSnapshot — and the server then serves
// cold rather than loading garbage.
func TestChaosTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.selest")
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(100)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 100)
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cuts := []int{0, 3, 5, 9, len(whole) / 2, len(whole) - 1}
	for _, cut := range cuts {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.selest", cut))
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := New(Config{})
		if err := s2.Recover(torn); !errors.Is(err, catalog.ErrTornSnapshot) {
			t.Fatalf("truncation at byte %d of %d: %v, want ErrTornSnapshot", cut, len(whole), err)
		}
	}

	// A bit flip inside the manifest trips its CRC.
	flipped := append([]byte(nil), whole...)
	flipped[12] ^= 0x40
	flippedPath := filepath.Join(dir, "flipped.selest")
	if err := os.WriteFile(flippedPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	before := telemetry.Default.Snapshot().Counters["selest_server_torn_snapshots_total"]
	s3 := New(Config{})
	if err := s3.Recover(flippedPath); !errors.Is(err, catalog.ErrTornSnapshot) {
		t.Fatalf("bit flip: %v, want ErrTornSnapshot", err)
	}
	after := telemetry.Default.Snapshot().Counters["selest_server_torn_snapshots_total"]
	if after <= before {
		t.Fatalf("torn-snapshot counter did not move: %d -> %d", before, after)
	}

	// The server that failed recovery still serves cold.
	if err := s3.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	res, err := s3.Estimate(context.Background(), "acme", "price", 0, 0.5, false)
	if err != nil {
		t.Fatalf("cold serving after torn recovery: %v", err)
	}
	if res.Rung != "uniform" {
		t.Fatalf("cold attribute rung %q, want uniform", res.Rung)
	}

	// A missing file is a cold start, not a torn snapshot.
	if err := New(Config{}).Recover(filepath.Join(dir, "nope.selest")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v, want os.ErrNotExist", err)
	}
}
