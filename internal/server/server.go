// Package server is the fault-tolerant multi-tenant estimator service
// behind cmd/selestd: the serving-path counterpart of the fit path's
// graceful-degradation ladder (DESIGN.md §7). The engine underneath
// answers a range query from a lock-free snapshot in nanoseconds; this
// package adds everything a daemon needs for that answer to survive the
// network — per-tenant token-bucket admission control (429 + Retry-After
// on breach), bounded ingest queues that shed oldest under pressure
// instead of blocking, per-request deadline propagation with a
// degradation ladder (fresh → snapshot → reservoir → uniform), panic
// containment per request, graceful shutdown that drains every accepted
// request and flushes a crash-safe snapshot, and warm-start recovery that
// replays the persisted catalog on boot.
//
// The design rule throughout: overload, crashes, and slow tenants degrade
// estimate *quality* (a staler snapshot, a cheaper rung), never
// *availability* — a registered attribute always produces an answer.
package server

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selest/internal/core"
	"selest/internal/errcode"
	"selest/internal/faultinject"
	"selest/internal/kde"
	"selest/internal/online"
	"selest/internal/sample"
)

// Fault-injection sites: the chaos suite wedges or panics these to prove
// the failure behaviour (see faultinject).
const (
	// FaultRefitPrimary fails an attribute's primary (rung-0) builder,
	// driving the online ladder down to its fallbacks.
	FaultRefitPrimary = "server.refit.primary"
	// FaultHandler fires inside the request path, proving per-request
	// panic containment keeps the daemon serving.
	FaultHandler = "server.handler"
)

// Typed service errors, rooted in the transport-neutral registry
// (internal/errcode) both the HTTP and wire layers map from — same
// stable code, same message, regardless of the envelope. The quota,
// drain, conflict, and not-found sentinels are the registry's own; the
// two request-shape sentinels are service-specific refinements that wrap
// errcode.ErrBadRequest, so errors.Is matches either level.
var (
	ErrNotFound  = errcode.ErrNotFound
	ErrBadRange  = fmt.Errorf("%w: invalid range (NaN or inverted bounds)", errcode.ErrBadRequest)
	ErrBadValue  = fmt.Errorf("%w: non-finite value", errcode.ErrBadRequest)
	ErrOverQuota = errcode.ErrOverQuota
	ErrDraining  = errcode.ErrDraining
	ErrConflict  = errcode.ErrConflict
)

// AttrConfig is one attribute's estimator configuration — the unit the
// manifest persists, so a restart rebuilds identical serving machinery.
type AttrConfig struct {
	// DomainLo/DomainHi bound the attribute. Required, finite, Lo < Hi;
	// the uniform rung answers over this interval.
	DomainLo float64 `json:"domain_lo"`
	DomainHi float64 `json:"domain_hi"`
	// Method/Rule/Boundary/Bins/Bandwidth mirror core.Options for the
	// primary (rung-0) builder. Empty method defaults to kernel.
	Method    core.Method        `json:"method,omitempty"`
	Rule      core.BandwidthRule `json:"rule,omitempty"`
	Boundary  kde.BoundaryMode   `json:"boundary,omitempty"`
	Bins      int                `json:"bins,omitempty"`
	Bandwidth float64            `json:"bandwidth,omitempty"`
	// ReservoirSize/RefitEvery/Shards/Seed parameterise the online
	// engine. Zeroes take the online package defaults (2000 / 10× / 1).
	ReservoirSize int    `json:"reservoir_size,omitempty"`
	RefitEvery    int    `json:"refit_every,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	// DegradeAfter/PromoteAfter shape the builder ladder: strikes before
	// demotion, clean refits before promotion. Zero PromoteAfter
	// defaults to 4 — the service wants rungs to recover.
	DegradeAfter int `json:"degrade_after,omitempty"`
	PromoteAfter int `json:"promote_after,omitempty"`
}

func (c *AttrConfig) validate() error {
	if math.IsNaN(c.DomainLo) || math.IsInf(c.DomainLo, 0) ||
		math.IsNaN(c.DomainHi) || math.IsInf(c.DomainHi, 0) {
		return fmt.Errorf("%w: non-finite domain", ErrBadValue)
	}
	if !(c.DomainHi > c.DomainLo) {
		return fmt.Errorf("%w: empty domain [%v, %v]", ErrBadRange, c.DomainLo, c.DomainHi)
	}
	if c.ReservoirSize < 0 || c.RefitEvery < -1 || c.Shards < 0 || c.Bins < 0 {
		return fmt.Errorf("%w: negative size parameter", ErrBadValue)
	}
	if math.IsNaN(c.Bandwidth) || c.Bandwidth < 0 {
		return fmt.Errorf("%w: bandwidth %v", ErrBadValue, c.Bandwidth)
	}
	opts := c.options()
	opts.Method = c.methodOrDefault()
	if err := opts.Validate(); err != nil {
		return err
	}
	return nil
}

func (c *AttrConfig) methodOrDefault() core.Method {
	if c.Method == "" {
		return core.Kernel
	}
	return c.Method
}

func (c *AttrConfig) options() core.Options {
	return core.Options{
		Method:    c.Method,
		DomainLo:  c.DomainLo,
		DomainHi:  c.DomainHi,
		Bins:      c.Bins,
		Bandwidth: c.Bandwidth,
		Rule:      c.Rule,
		Boundary:  c.Boundary,
	}
}

// rung identifies which level of the answer ladder produced an estimate.
// Lower is better; every query is answerable at some rung.
type rung int

const (
	// rungFresh flushed a refit before answering: the estimate reflects
	// every drained insert.
	rungFresh rung = iota
	// rungSnapshot answered from the current lock-free snapshot without
	// waiting on any in-flight refit — the steady-state rung.
	rungSnapshot
	// rungReservoir had no fit yet and answered with the raw reservoir
	// fraction — a pure-sampling estimate needing no build.
	rungReservoir
	// rungUniform had no data at all and answered with the uniform
	// assumption over the attribute domain.
	rungUniform
)

var rungNames = map[rung]string{
	rungFresh:     "fresh",
	rungSnapshot:  "snapshot",
	rungReservoir: "reservoir",
	rungUniform:   "uniform",
}

// attribute is one (tenant, name) estimator: the online engine, its
// bounded ingest queue, and the stream-cardinality counter used to scale
// selectivities into row estimates.
type attribute struct {
	tenant, name string
	cfg          AttrConfig
	est          *online.Estimator
	queue        *ingestQueue
	rows         atomic.Int64
}

type tenant struct {
	name   string
	bucket *tokenBucket
	mu     sync.RWMutex
	attrs  map[string]*attribute
}

// Server is the multi-tenant estimator service. All methods are safe for
// concurrent use.
type Server struct {
	cfg Options

	// global is the box-wide admission bucket (nil when GlobalRate is
	// unset): one token per admitted request, any tenant, checked before
	// the per-tenant quota.
	global *tokenBucket

	mu      sync.RWMutex
	tenants map[string]*tenant
	nAttrs  int

	inflight   atomic.Int64
	queueTotal atomic.Int64
	draining   atomic.Bool
	wg         sync.WaitGroup
}

// builders assembles an attribute's degradation ladder: the configured
// primary method, then an equi-depth histogram, then pure sampling — the
// same Kernel→EquiDepth→Sampling order the fit path's robust ladder uses,
// each simpler and harder to break than the one above. The primary rung
// carries the FaultRefitPrimary injection site so the chaos suite can
// break it on demand.
func (c *AttrConfig) builders() (primary online.Builder, fallbacks []online.Builder) {
	opts := c.options()
	opts.Method = c.methodOrDefault()
	primary = func(samples []float64) (online.Fitted, error) {
		if err := faultinject.Check(FaultRefitPrimary); err != nil {
			return nil, err
		}
		return core.Build(samples, opts)
	}
	equiDepth := opts
	equiDepth.Method = core.EquiDepth
	equiDepth.Bandwidth = 0
	fallbacks = []online.Builder{
		func(samples []float64) (online.Fitted, error) {
			return core.Build(samples, equiDepth)
		},
		func(samples []float64) (online.Fitted, error) {
			return sample.NewPureEstimator(samples), nil
		},
	}
	return primary, fallbacks
}

// CreateAttr registers an attribute under a tenant, spawning its ingest
// drainer. Creating an attribute that already exists with an identical
// configuration is a no-op (so clients and recovery can be idempotent);
// a differing configuration is ErrConflict.
func (s *Server) CreateAttr(tenantName, attrName string, cfg AttrConfig) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if tenantName == "" || attrName == "" {
		return fmt.Errorf("%w: empty tenant or attribute name", ErrBadValue)
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.PromoteAfter == 0 {
		cfg.PromoteAfter = 4
	}
	primary, fallbacks := cfg.builders()
	est, err := online.New(primary, online.Config{
		ReservoirSize: cfg.ReservoirSize,
		RefitEvery:    cfg.RefitEvery,
		Shards:        cfg.Shards,
		Seed:          cfg.Seed,
		DegradeAfter:  cfg.DegradeAfter,
		PromoteAfter:  cfg.PromoteAfter,
		Fallbacks:     fallbacks,
	})
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	tn, ok := s.tenants[tenantName]
	if !ok {
		tn = &tenant{
			name:   tenantName,
			bucket: newTokenBucket(s.cfg.QuotaRate, s.cfg.QuotaBurst),
			attrs:  make(map[string]*attribute),
		}
		s.tenants[tenantName] = tn
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if existing, ok := tn.attrs[attrName]; ok {
		if existing.cfg == cfg {
			return nil
		}
		return fmt.Errorf("%w: %s/%s", ErrConflict, tenantName, attrName)
	}
	if s.nAttrs >= s.cfg.MaxAttrs {
		return fmt.Errorf("%w: attribute limit %d reached", ErrOverQuota, s.cfg.MaxAttrs)
	}
	a := &attribute{
		tenant: tenantName,
		name:   attrName,
		cfg:    cfg,
		est:    est,
		queue:  newIngestQueue(s.cfg.QueueCap),
	}
	tn.attrs[attrName] = a
	s.nAttrs++
	s.wg.Add(1)
	go s.drainLoop(a)
	return nil
}

// tenantFor returns the tenant, creating nothing.
func (s *Server) tenantFor(name string) (*tenant, error) {
	s.mu.RLock()
	tn, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: tenant %q", ErrNotFound, name)
	}
	return tn, nil
}

func (s *Server) attr(tenantName, attrName string) (*attribute, error) {
	tn, err := s.tenantFor(tenantName)
	if err != nil {
		return nil, err
	}
	tn.mu.RLock()
	a, ok := tn.attrs[attrName]
	tn.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: attribute %q/%q", ErrNotFound, tenantName, attrName)
	}
	return a, nil
}

// Admit charges a tenant's token bucket for a request of the given cost
// (payload size). On refusal it returns ErrOverQuota and the Retry-After
// duration the HTTP layer surfaces. Unknown tenants are admitted — they
// fail with ErrNotFound downstream, which should not consume quota state.
func (s *Server) Admit(tenantName string, cost int) (time.Duration, error) {
	tn, _ := s.tenantFor(tenantName)
	return s.admitBucket(tn, cost)
}

// admitBucket is the bucket-charging core shared by Admit and the wire
// fast path (which resolved the tenant from byte views already). A nil
// tenant is admitted after the box-wide charge — it fails with
// ErrNotFound downstream.
func (s *Server) admitBucket(tn *tenant, cost int) (time.Duration, error) {
	// The box-wide bucket charges one token per request whoever sent it:
	// it models what the process can serve, so payload size (the
	// per-tenant fairness dimension) does not enter.
	if s.global != nil {
		if ok, retry := s.global.take(1, time.Now()); !ok {
			srvGlobalRejected.Inc()
			srvRejected.Inc()
			return retry, fmt.Errorf("%w: server at capacity", ErrOverQuota)
		}
	}
	if tn == nil {
		return 0, nil
	}
	ok, retry := tn.bucket.take(float64(cost), time.Now())
	if !ok {
		srvRejected.Inc()
		return retry, fmt.Errorf("%w: tenant %q", ErrOverQuota, tn.name)
	}
	srvAdmitted.Inc()
	return 0, nil
}

// lookupView resolves a (tenant, attribute) pair from byte views without
// allocating: indexing a map by string(bytes) is the compiler's no-copy
// special case, which is what lets the wire fast path run an entire
// estimate round trip at zero allocations.
func (s *Server) lookupView(tenantName, attrName []byte) (*tenant, *attribute, error) {
	s.mu.RLock()
	tn, ok := s.tenants[string(tenantName)]
	s.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: tenant %q", ErrNotFound, tenantName)
	}
	tn.mu.RLock()
	a, ok := tn.attrs[string(attrName)]
	tn.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: attribute %q/%q", ErrNotFound, tenantName, attrName)
	}
	return tn, a, nil
}

// validRange rejects NaN and inverted bounds — the request is malformed,
// not degradable.
func validRange(lo, hi float64) error {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return fmt.Errorf("%w: NaN bound", ErrBadRange)
	}
	if lo > hi {
		return fmt.Errorf("%w: lo %v > hi %v", ErrBadRange, lo, hi)
	}
	return nil
}

// EstimateResult is one answered range query.
type EstimateResult struct {
	// Selectivity is the estimated fraction of the stream in [Lo, Hi].
	Selectivity float64 `json:"selectivity"`
	// Rows scales the selectivity by the attribute's ingested count.
	Rows float64 `json:"rows"`
	// Rung names the ladder level that produced the answer
	// (fresh | snapshot | reservoir | uniform).
	Rung string `json:"rung"`
	// Generation is the serving snapshot's generation (0 = no fit yet).
	Generation uint64 `json:"generation"`
	// Degraded reports that the answer came from a lower rung than the
	// request asked for (e.g. fresh=true answered from the snapshot).
	Degraded bool `json:"degraded,omitempty"`
}

// overloaded reports whether the server should shed optional work.
func (s *Server) overloaded() bool {
	return s.inflight.Load() > s.cfg.MaxInflight
}

// tightDeadline reports whether ctx has too little budget left to spend
// on a flush.
func (s *Server) tightDeadline(ctx context.Context) bool {
	dl, ok := ctx.Deadline()
	return ok && time.Until(dl) < s.cfg.DegradeDeadline
}

// Estimate answers one range query through the degradation ladder:
//
//	fresh     — fresh=true and the budget allows: flush a refit (bounded
//	            by ctx), then answer — the estimate reflects every
//	            drained insert.
//	snapshot  — answer from the current lock-free snapshot without
//	            waiting on any in-flight refit. This is the steady-state
//	            rung, and where fresh=true lands under overload, a tight
//	            deadline, or a failed flush.
//	reservoir — no fit published yet: answer the raw reservoir fraction.
//	uniform   — no data at all: answer the uniform assumption over the
//	            attribute's domain.
//
// Malformed ranges and unknown attributes error; nothing else does.
func (s *Server) Estimate(ctx context.Context, tenantName, attrName string, lo, hi float64, fresh bool) (EstimateResult, error) {
	a, err := s.attr(tenantName, attrName)
	if err != nil {
		return EstimateResult{}, err
	}
	if err := validRange(lo, hi); err != nil {
		return EstimateResult{}, err
	}
	requested := rungSnapshot
	if fresh {
		requested = rungFresh
	}
	r := rungSnapshot
	if fresh && !s.overloaded() && !s.tightDeadline(ctx) {
		if err := a.est.FlushContext(ctx); err == nil {
			r = rungFresh
		}
		// A failed or abandoned flush is not an error: the ladder serves
		// the snapshot it has.
	}
	return s.answer(a, lo, hi, r, requested), nil
}

// answer serves the snapshot → reservoir → uniform tail of the ladder
// from rung r — the never-blocking, never-failing, zero-allocation part
// shared by Estimate and the wire fast path (which skips the fresh rung
// entirely and so needs no context).
func (s *Server) answer(a *attribute, lo, hi float64, r, requested rung) EstimateResult {
	sel, ok := a.est.SelectivityOK(lo, hi)
	if !ok {
		if vals := a.est.ReservoirValues(); len(vals) > 0 {
			sel = reservoirFraction(vals, lo, hi)
			r = rungReservoir
		} else {
			sel = uniformFraction(a.cfg.DomainLo, a.cfg.DomainHi, lo, hi)
			r = rungUniform
		}
	}
	srvAnswersByRung[r].Inc()
	srvAnswerRung.Set(float64(r))
	return EstimateResult{
		Selectivity: sel,
		Rows:        sel * float64(a.rows.Load()),
		Rung:        rungNames[r],
		Generation:  a.est.Generation(),
		Degraded:    r > requested,
	}
}

// RangeQuery is one [Lo, Hi] range.
type RangeQuery struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// EstimateBatch answers a batch of queries against one attribute,
// amortising admission, lookup, and (with fresh) at most one flush over
// the whole batch. Any malformed query rejects the batch.
func (s *Server) EstimateBatch(ctx context.Context, tenantName, attrName string, queries []RangeQuery, fresh bool) ([]EstimateResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRange)
	}
	for _, q := range queries {
		if err := validRange(q.Lo, q.Hi); err != nil {
			return nil, err
		}
	}
	out := make([]EstimateResult, len(queries))
	for i, q := range queries {
		res, err := s.Estimate(ctx, tenantName, attrName, q.Lo, q.Hi, fresh && i == 0)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// reservoirFraction is the pure-sampling rung: the fraction of reservoir
// values inside [lo, hi].
func reservoirFraction(vals []float64, lo, hi float64) float64 {
	n := 0
	for _, v := range vals {
		if v >= lo && v <= hi {
			n++
		}
	}
	return float64(n) / float64(len(vals))
}

// uniformFraction is the bottom rung: the covered fraction of the domain
// under the uniform assumption, clipped to [0, 1].
func uniformFraction(dLo, dHi, lo, hi float64) float64 {
	if lo < dLo {
		lo = dLo
	}
	if hi > dHi {
		hi = dHi
	}
	if hi <= lo {
		return 0
	}
	return (hi - lo) / (dHi - dLo)
}

// IngestResult reports what happened to an ingest payload.
type IngestResult struct {
	// Queued values entered the attribute's queue.
	Queued int `json:"queued"`
	// Shed values (the oldest queued) were dropped to make room.
	Shed int `json:"shed"`
}

// Ingest validates and enqueues a batch of stream values. The call
// returns as soon as the values are queued — reservoir insertion and any
// refit happen on the attribute's drainer goroutine — so ingest latency
// is bounded by the queue push, not by a fit. Under pressure the queue
// sheds its oldest values and the count comes back to the client (and
// telemetry) instead of blocking.
func (s *Server) Ingest(tenantName, attrName string, values []float64) (IngestResult, error) {
	if s.draining.Load() {
		return IngestResult{}, ErrDraining
	}
	a, err := s.attr(tenantName, attrName)
	if err != nil {
		return IngestResult{}, err
	}
	if len(values) == 0 {
		return IngestResult{}, fmt.Errorf("%w: empty values", ErrBadValue)
	}
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return IngestResult{}, fmt.Errorf("%w: %v", ErrBadValue, v)
		}
	}
	queued, shed := a.queue.push(values)
	a.rows.Add(int64(queued))
	if shed > 0 {
		srvShed.Add(int64(shed))
	}
	srvQueueDepth.Set(float64(s.queueTotal.Add(int64(queued - shed))))
	return IngestResult{Queued: queued, Shed: shed}, nil
}

// drainBatch bounds how many queued values one InsertBatch takes; small
// enough to keep shutdown drains responsive, large enough to amortise the
// per-batch trigger checks.
const drainBatch = 512

// drainLoop is an attribute's single consumer: it moves queued values
// into the reservoir until the queue is closed *and* empty, so graceful
// shutdown never strands an accepted value.
func (s *Server) drainLoop(a *attribute) {
	defer s.wg.Done()
	buf := make([]float64, 0, drainBatch)
	for {
		vals, ok := a.queue.popWait(buf, drainBatch)
		if !ok {
			return
		}
		buf = vals
		srvQueueDepth.Set(float64(s.queueTotal.Add(-int64(len(vals)))))
		if err := a.est.InsertBatch(vals); err != nil {
			// A refit failure: the values are in the reservoir and the
			// previous fit keeps serving — count it, keep draining.
			srvDrainDrop.Inc()
		}
	}
}

// attributes snapshots every attribute sorted by (tenant, name) — the
// deterministic order persistence and shutdown iterate in.
func (s *Server) attributes() []*attribute {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*attribute
	for _, tn := range s.tenants {
		tn.mu.RLock()
		for _, a := range tn.attrs {
			out = append(out, a)
		}
		tn.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].tenant != out[j].tenant {
			return out[i].tenant < out[j].tenant
		}
		return out[i].name < out[j].name
	})
	return out
}

// Draining reports whether Close has begun; the HTTP layer refuses new
// work with 503 once it has.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close shuts the service down gracefully: stop admitting new work,
// close every ingest queue and wait (bounded by ctx) for the drainers to
// move every accepted value into its reservoir, flush each estimator
// (abandoning, not awaiting, any build the deadline cuts off), and — when
// snapshotPath is non-empty — persist a crash-safe snapshot. Close is
// idempotent; concurrent calls after the first return immediately.
func (s *Server) Close(ctx context.Context, snapshotPath string) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	attrs := s.attributes()
	for _, a := range attrs {
		a.queue.close()
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var firstErr error
	select {
	case <-drained:
	case <-ctx.Done():
		firstErr = fmt.Errorf("server: shutdown drain abandoned: %w", ctx.Err())
	}
	for _, a := range attrs {
		if len(a.est.ReservoirValues()) == 0 {
			continue
		}
		if err := a.est.FlushContext(ctx); err != nil && firstErr == nil && ctx.Err() != nil {
			firstErr = fmt.Errorf("server: shutdown flush %s/%s: %w", a.tenant, a.name, err)
		}
	}
	if snapshotPath != "" {
		if err := s.SaveSnapshot(snapshotPath); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats is the health-endpoint summary.
type Stats struct {
	Tenants    int   `json:"tenants"`
	Attributes int   `json:"attributes"`
	QueueDepth int64 `json:"queue_depth"`
	Inflight   int64 `json:"inflight"`
	Draining   bool  `json:"draining"`
}

// Stats summarises the service for /healthz.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	tenants, nAttrs := len(s.tenants), s.nAttrs
	s.mu.RUnlock()
	return Stats{
		Tenants:    tenants,
		Attributes: nAttrs,
		QueueDepth: s.queueTotal.Load(),
		Inflight:   s.inflight.Load(),
		Draining:   s.draining.Load(),
	}
}
