package server

import (
	"sync"
	"testing"
	"time"
)

func drainAll(q *ingestQueue) []float64 {
	var out []float64
	for {
		vals, ok := q.popWait(nil, 1<<20)
		if !ok {
			return out
		}
		out = append(out, vals...)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := newIngestQueue(8)
	queued, shed := q.push([]float64{1, 2, 3})
	if queued != 3 || shed != 0 {
		t.Fatalf("push: queued %d shed %d, want 3, 0", queued, shed)
	}
	vals, ok := q.popWait(nil, 8)
	if !ok {
		t.Fatal("popWait reported closed on an open queue")
	}
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("popWait order: %v, want [1 2 3]", vals)
	}
}

func TestQueueShedsOldest(t *testing.T) {
	q := newIngestQueue(4)
	q.push([]float64{1, 2, 3, 4})
	queued, shed := q.push([]float64{5, 6})
	if queued != 2 || shed != 2 {
		t.Fatalf("overflow push: queued %d shed %d, want 2, 2", queued, shed)
	}
	if got := q.shedCount(); got != 2 {
		t.Fatalf("shedCount %d, want 2", got)
	}
	vals, _ := q.popWait(nil, 8)
	want := []float64{3, 4, 5, 6}
	if len(vals) != len(want) {
		t.Fatalf("after shed: %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("after shed: %v, want %v (oldest must go first)", vals, want)
		}
	}
}

func TestQueueBurstLargerThanCapacity(t *testing.T) {
	q := newIngestQueue(4)
	q.push([]float64{0, 0})
	queued, shed := q.push([]float64{1, 2, 3, 4, 5, 6, 7})
	// The burst overwrites the whole ring: the 2 resident values plus the
	// burst's own oldest 3 are shed; the newest 4 survive.
	if queued != 4 || shed != 5 {
		t.Fatalf("burst push: queued %d shed %d, want 4, 5", queued, shed)
	}
	vals, _ := q.popWait(nil, 8)
	want := []float64{4, 5, 6, 7}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("burst: kept %v, want %v", vals, want)
		}
	}
}

func TestQueueCloseDrainsEverything(t *testing.T) {
	q := newIngestQueue(16)
	q.push([]float64{1, 2, 3, 4, 5})
	q.close()
	q.close() // idempotent
	if queued, _ := q.push([]float64{9}); queued != 0 {
		t.Fatalf("push after close queued %d values", queued)
	}
	got := drainAll(q)
	if len(got) != 5 {
		t.Fatalf("drained %d values after close, want all 5", len(got))
	}
}

func TestQueuePopWaitBlocksUntilPush(t *testing.T) {
	q := newIngestQueue(4)
	var wg sync.WaitGroup
	wg.Add(1)
	got := make(chan []float64, 1)
	go func() {
		defer wg.Done()
		vals, ok := q.popWait(nil, 4)
		if !ok {
			t.Error("popWait returned closed")
		}
		got <- vals
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	q.push([]float64{42})
	select {
	case vals := <-got:
		if len(vals) != 1 || vals[0] != 42 {
			t.Fatalf("woke with %v, want [42]", vals)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("popWait never woke after push")
	}
	wg.Wait()
}

func TestQueueConcurrentProducersDrainExactly(t *testing.T) {
	q := newIngestQueue(1 << 16) // never sheds at this load
	const producers, perProducer = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.push([]float64{float64(p*perProducer + i)})
			}
		}(p)
	}
	done := make(chan []float64, 1)
	go func() { done <- drainAll(q) }()
	wg.Wait()
	q.close()
	got := <-done
	if len(got) != producers*perProducer {
		t.Fatalf("drained %d values, want %d (accepted values must never vanish)",
			len(got), producers*perProducer)
	}
	if q.shedCount() != 0 {
		t.Fatalf("shed %d values in an uncontended queue", q.shedCount())
	}
}
