package server

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// testAttrCfg is a small deterministic attribute: reservoir 64, cadence
// refit every 64 inserts, single shard so sampling is the exact seeded
// Vitter sequence.
func testAttrCfg() AttrConfig {
	return AttrConfig{
		DomainLo:      0,
		DomainHi:      1,
		ReservoirSize: 64,
		RefitEvery:    64,
		Shards:        1,
		Seed:          7,
	}
}

// waitInserted polls until the attribute's drainer has moved at least n
// values into the reservoir engine — the only way an async ingest becomes
// deterministic to observe.
func waitInserted(t *testing.T, s *Server, tenant, attr string, n int) {
	t.Helper()
	a, err := s.attr(tenant, attr)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.est.Inserts() < n {
		if time.Now().After(deadline) {
			t.Fatalf("drainer stuck: %d of %d values inserted", a.est.Inserts(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func seq(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = (float64(i) + 0.5) / float64(n)
	}
	return vs
}

func TestCreateAttrIdempotentAndConflict(t *testing.T) {
	s := New(Config{})
	cfg := testAttrCfg()
	if err := s.CreateAttr("acme", "price", cfg); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateAttr("acme", "price", cfg); err != nil {
		t.Fatalf("identical re-create must be a no-op, got %v", err)
	}
	other := cfg
	other.ReservoirSize = 128
	if err := s.CreateAttr("acme", "price", other); !errors.Is(err, ErrConflict) {
		t.Fatalf("differing re-create: %v, want ErrConflict", err)
	}
	if err := s.CreateAttr("", "x", cfg); !errors.Is(err, ErrBadValue) {
		t.Fatalf("empty tenant: %v, want ErrBadValue", err)
	}
	bad := cfg
	bad.DomainLo, bad.DomainHi = 1, 0
	if err := s.CreateAttr("acme", "y", bad); !errors.Is(err, ErrBadRange) {
		t.Fatalf("inverted domain: %v, want ErrBadRange", err)
	}
	st := s.Stats()
	if st.Tenants != 1 || st.Attributes != 1 {
		t.Fatalf("stats %+v, want 1 tenant / 1 attribute", st)
	}
}

// TestEstimateLadderRungs walks every rung bottom-up: an empty attribute
// answers uniform, queued-but-unfitted data answers the reservoir
// fraction, and a fresh=true estimate flushes a fit and answers fresh.
func TestEstimateLadderRungs(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}

	res, err := s.Estimate(ctx, "acme", "price", 0.25, 0.75, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "uniform" || math.Abs(res.Selectivity-0.5) > 1e-12 {
		t.Fatalf("empty attribute: rung %q sel %v, want uniform 0.5", res.Rung, res.Selectivity)
	}

	// 32 values: below reservoir capacity, so no auto refit fires and the
	// ladder answers from the raw reservoir.
	if _, err := s.Ingest("acme", "price", seq(32)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 32)
	res, err = s.Estimate(ctx, "acme", "price", 0, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "reservoir" {
		t.Fatalf("unfitted attribute: rung %q, want reservoir", res.Rung)
	}
	if math.Abs(res.Selectivity-0.5) > 1e-12 {
		t.Fatalf("reservoir fraction %v, want 0.5 (16 of 32 values in [0, 0.5])", res.Selectivity)
	}
	if res.Rows != res.Selectivity*32 {
		t.Fatalf("rows %v, want selectivity × 32 ingested", res.Rows)
	}

	res, err = s.Estimate(ctx, "acme", "price", 0, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "fresh" || res.Degraded {
		t.Fatalf("fresh estimate: rung %q degraded %v, want fresh false", res.Rung, res.Degraded)
	}
	if res.Generation == 0 {
		t.Fatal("fresh estimate left generation 0: no fit was published")
	}

	// Steady state: fresh=false answers the snapshot without degradation.
	res, err = s.Estimate(ctx, "acme", "price", 0, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "snapshot" || res.Degraded {
		t.Fatalf("steady state: rung %q degraded %v, want snapshot false", res.Rung, res.Degraded)
	}
}

// TestEstimateDegradesOnTightDeadline pins the deadline rung of the
// ladder: fresh=true with less budget than DegradeDeadline answers from
// the snapshot, flagged Degraded, instead of racing a refit.
func TestEstimateDegradesOnTightDeadline(t *testing.T) {
	s := New(Config{DegradeDeadline: 50 * time.Millisecond})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(64)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 64)
	if _, err := s.Estimate(context.Background(), "acme", "price", 0, 1, true); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := s.Estimate(ctx, "acme", "price", 0, 0.5, true)
	if err != nil {
		t.Fatalf("a tight deadline must degrade, not error: %v", err)
	}
	if res.Rung != "snapshot" || !res.Degraded {
		t.Fatalf("tight deadline: rung %q degraded %v, want snapshot true", res.Rung, res.Degraded)
	}
}

func TestEstimateRejectsMalformed(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Estimate(ctx, "acme", "price", math.NaN(), 1, false); !errors.Is(err, ErrBadRange) {
		t.Fatalf("NaN bound: %v, want ErrBadRange", err)
	}
	if _, err := s.Estimate(ctx, "acme", "price", 0.9, 0.1, false); !errors.Is(err, ErrBadRange) {
		t.Fatalf("inverted range: %v, want ErrBadRange", err)
	}
	if _, err := s.Estimate(ctx, "acme", "nope", 0, 1, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown attr: %v, want ErrNotFound", err)
	}
	if _, err := s.Estimate(ctx, "nobody", "price", 0, 1, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown tenant: %v, want ErrNotFound", err)
	}
	if _, err := s.Ingest("acme", "price", []float64{1, math.Inf(1)}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("Inf ingest: %v, want ErrBadValue", err)
	}
	if _, err := s.Ingest("acme", "price", nil); !errors.Is(err, ErrBadValue) {
		t.Fatalf("empty ingest: %v, want ErrBadValue", err)
	}
}

func TestEstimateBatchFlushesOnce(t *testing.T) {
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(32)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 32)
	queries := []RangeQuery{{0, 0.25}, {0.25, 0.5}, {0.5, 1}}
	res, err := s.EstimateBatch(context.Background(), "acme", "price", queries, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].Rung != "fresh" {
		t.Fatalf("first of batch: rung %q, want fresh", res[0].Rung)
	}
	for i := 1; i < 3; i++ {
		if res[i].Rung != "snapshot" {
			t.Fatalf("rest of batch: rung %q, want snapshot (one flush per batch)", res[i].Rung)
		}
	}
	if _, err := s.EstimateBatch(context.Background(), "acme", "price", nil, false); !errors.Is(err, ErrBadRange) {
		t.Fatalf("empty batch: %v, want ErrBadRange", err)
	}
	bad := []RangeQuery{{0, 1}, {math.NaN(), 1}}
	if _, err := s.EstimateBatch(context.Background(), "acme", "price", bad, false); !errors.Is(err, ErrBadRange) {
		t.Fatalf("batch with NaN: %v, want ErrBadRange", err)
	}
}

// TestIngestShedsUnderPressure pins the backpressure contract: a burst
// larger than the queue sheds deterministically, the count comes back to
// the caller, and the newest values are the ones kept.
func TestIngestShedsUnderPressure(t *testing.T) {
	s := New(Config{QueueCap: 8})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	res, err := s.Ingest("acme", "price", seq(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queued != 8 {
		t.Fatalf("queued %d into a cap-8 queue, want 8", res.Queued)
	}
	if res.Shed < 92 {
		t.Fatalf("shed %d, want >= 92 (the burst's own overflow)", res.Shed)
	}
}

func TestAdmissionQuota(t *testing.T) {
	s := New(Config{QuotaRate: 1, QuotaBurst: 2})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	// CreateAttr charged nothing; the bucket holds its burst of 2.
	if _, err := s.Admit("acme", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit("acme", 1); err != nil {
		t.Fatal(err)
	}
	retry, err := s.Admit("acme", 1)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("drained tenant admitted: %v", err)
	}
	if retry <= 0 || retry > 2*time.Second {
		t.Fatalf("Retry-After %v, want (0, 2s] at 1 token/s", retry)
	}
	// Unknown tenants pass admission and fail downstream with not-found,
	// so probing tenant names cannot consume quota state.
	if _, err := s.Admit("stranger", 1); err != nil {
		t.Fatalf("unknown tenant consumed quota: %v", err)
	}
}

func TestCloseIdempotentAndRefusesNewWork(t *testing.T) {
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(16)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx, ""); err != nil {
		t.Fatalf("second Close: %v, want nil (idempotent)", err)
	}
	if !s.Draining() {
		t.Fatal("Draining false after Close")
	}
	if _, err := s.Ingest("acme", "price", seq(4)); !errors.Is(err, ErrDraining) {
		t.Fatalf("ingest after Close: %v, want ErrDraining", err)
	}
	if err := s.CreateAttr("acme", "other", testAttrCfg()); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after Close: %v, want ErrDraining", err)
	}
	// Queries still answer: shutdown stops ingest, not reads.
	if _, err := s.Estimate(context.Background(), "acme", "price", 0, 1, false); err != nil {
		t.Fatalf("estimate after Close errored: %v", err)
	}
}

func TestUniformFractionClipping(t *testing.T) {
	cases := []struct {
		dLo, dHi, lo, hi, want float64
	}{
		{0, 10, 0, 5, 0.5},
		{0, 10, -5, 5, 0.5},  // clip left
		{0, 10, 5, 100, 0.5}, // clip right
		{0, 10, -5, 100, 1},  // superset
		{0, 10, 20, 30, 0},   // disjoint
	}
	for _, c := range cases {
		if got := uniformFraction(c.dLo, c.dHi, c.lo, c.hi); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("uniformFraction(%v,%v,%v,%v) = %v, want %v", c.dLo, c.dHi, c.lo, c.hi, got, c.want)
		}
	}
}
