package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"selest/internal/faultinject"
	"selest/internal/telemetry"
)

// do runs one request through the handler in-process and returns the
// recorded response.
func do(t *testing.T, h http.Handler, method, path, body string, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range header {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeErrorBody(t *testing.T, w *httptest.ResponseRecorder) apiError {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("non-2xx body is not a typed error: %v (%s)", err, w.Body.String())
	}
	if eb.Error.Code == "" {
		t.Fatalf("error body has no code: %s", w.Body.String())
	}
	return eb.Error
}

// newHTTPFixture builds a server with one fitted attribute and returns
// its handler.
func newHTTPFixture(t *testing.T, cfg Config) (*Server, http.Handler) {
	t.Helper()
	s := New(cfg)
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(64)); err != nil {
		t.Fatal(err)
	}
	waitInserted(t, s, "acme", "price", 64)
	return s, s.Handler()
}

func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	w := do(t, h, "POST", "/v1/attrs",
		`{"tenant":"acme","attr":"price","config":{"domain_lo":0,"domain_hi":1,"reservoir_size":64,"refit_every":64,"seed":7}}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("create attr: %d %s", w.Code, w.Body.String())
	}

	var values strings.Builder
	values.WriteString(`{"tenant":"acme","attr":"price","values":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			values.WriteByte(',')
		}
		fmt.Fprintf(&values, "%g", (float64(i)+0.5)/64)
	}
	values.WriteString(`]}`)
	w = do(t, h, "POST", "/v1/ingest", values.String(), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", w.Code, w.Body.String())
	}
	var ir IngestResult
	if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil || ir.Queued != 64 {
		t.Fatalf("ingest result %s (err %v), want 64 queued", w.Body.String(), err)
	}
	waitInserted(t, s, "acme", "price", 64)

	w = do(t, h, "POST", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":0,"hi":0.5,"fresh":true}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("estimate: %d %s", w.Code, w.Body.String())
	}
	var res EstimateResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Rung != "fresh" || res.Selectivity <= 0.3 || res.Selectivity >= 0.7 {
		t.Fatalf("estimate %+v, want rung fresh with selectivity near 0.5", res)
	}

	w = do(t, h, "POST", "/v1/estimate/batch",
		`{"tenant":"acme","attr":"price","queries":[{"lo":0,"hi":0.25},{"lo":0.25,"hi":1}]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	var batch struct {
		Results []EstimateResult `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &batch); err != nil || len(batch.Results) != 2 {
		t.Fatalf("batch body %s (err %v), want 2 results", w.Body.String(), err)
	}

	w = do(t, h, "GET", "/healthz", "", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"attributes":1`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
	w = do(t, h, "GET", "/metrics", "", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "selest_server_admitted_total") {
		t.Fatalf("/metrics exposition missing service series: %d", w.Code)
	}
}

// TestHTTPPanicContainment pins per-request panic containment: an
// injected handler panic becomes a typed 500 on that request alone, and
// the very next request is served normally.
func TestHTTPPanicContainment(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, h := newHTTPFixture(t, Config{})
	body := `{"tenant":"acme","attr":"price","lo":0,"hi":1}`

	before := telemetry.Default.Snapshot().Counters["selest_server_panics_total"]
	faultinject.EnablePanic(FaultHandler, "chaos: handler panic")
	w := do(t, h, "POST", "/v1/estimate", body, nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: %d, want 500", w.Code)
	}
	if e := decodeErrorBody(t, w); e.Code != "internal" {
		t.Fatalf("panic error code %q, want internal", e.Code)
	}
	after := telemetry.Default.Snapshot().Counters["selest_server_panics_total"]
	if after != before+1 {
		t.Fatalf("panic counter moved %d -> %d, want +1", before, after)
	}

	faultinject.Disable(FaultHandler)
	if w := do(t, h, "POST", "/v1/estimate", body, nil); w.Code != http.StatusOK {
		t.Fatalf("request after contained panic: %d %s", w.Code, w.Body.String())
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, h := newHTTPFixture(t, Config{})
	w := do(t, h, "GET", "/v1/estimate", "", nil)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a POST endpoint: %d, want 405", w.Code)
	}
	decodeErrorBody(t, w)
}

// TestHTTPDeadlineHeaderDegrades pins deadline propagation end to end: a
// client budget below DegradeDeadline turns a fresh=true estimate into a
// degraded snapshot answer instead of a slow or failed request.
func TestHTTPDeadlineHeaderDegrades(t *testing.T) {
	_, h := newHTTPFixture(t, Config{DegradeDeadline: 50 * time.Millisecond})
	// Prime a fit so the snapshot rung has something to serve.
	w := do(t, h, "POST", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":0,"hi":1,"fresh":true}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("priming estimate: %d %s", w.Code, w.Body.String())
	}
	w = do(t, h, "POST", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":0,"hi":0.5,"fresh":true}`,
		map[string]string{"X-Selest-Timeout-Ms": "1"})
	if w.Code != http.StatusOK {
		t.Fatalf("tight-deadline estimate: %d %s", w.Code, w.Body.String())
	}
	var res EstimateResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Rung != "snapshot" || !res.Degraded {
		t.Fatalf("tight deadline: rung %q degraded %v, want snapshot true", res.Rung, res.Degraded)
	}
}

func TestHTTPRetryHeaderCounts(t *testing.T) {
	_, h := newHTTPFixture(t, Config{})
	body := `{"tenant":"acme","attr":"price","lo":0,"hi":1}`
	before := telemetry.Default.Snapshot().Counters["selest_server_retried_total"]
	do(t, h, "POST", "/v1/estimate", body, map[string]string{"X-Selest-Retry": "2"})
	do(t, h, "POST", "/v1/estimate", body, nil) // not a retry
	after := telemetry.Default.Snapshot().Counters["selest_server_retried_total"]
	if after != before+1 {
		t.Fatalf("retried counter moved %d -> %d, want +1", before, after)
	}
}

func TestHTTPQuota429(t *testing.T) {
	_, h := newHTTPFixture(t, Config{QuotaRate: 1, QuotaBurst: 1})
	body := `{"tenant":"acme","attr":"price","lo":0,"hi":1}`
	first := do(t, h, "POST", "/v1/estimate", body, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first request within burst: %d", first.Code)
	}
	second := do(t, h, "POST", "/v1/estimate", body, nil)
	if second.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", second.Code)
	}
	if e := decodeErrorBody(t, second); e.Code != "over_quota" {
		t.Fatalf("429 code %q, want over_quota", e.Code)
	}
	if ra := second.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestHTTPDecodersRejectMalformed is the deterministic companion of the
// fuzz pass: each canonical malformation maps to a typed 400.
func TestHTTPDecodersRejectMalformed(t *testing.T) {
	_, h := newHTTPFixture(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"truncated json", "/v1/estimate", `{"tenant":"acme"`},
		{"trailing garbage", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":0,"hi":1} extra`},
		{"second document", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":0,"hi":1}{}`},
		{"nan literal", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":NaN,"hi":1}`},
		{"overflow to inf", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":0,"hi":1e999}`},
		{"inverted range", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":0.9,"hi":0.1}`},
		{"missing names", "/v1/estimate", `{"lo":0,"hi":1}`},
		{"wrong type", "/v1/estimate", `{"tenant":"acme","attr":"price","lo":"zero","hi":1}`},
		{"array not object", "/v1/estimate", `[1,2,3]`},
		{"empty body", "/v1/estimate", ``},
		{"empty batch", "/v1/estimate/batch", `{"tenant":"acme","attr":"price","queries":[]}`},
		{"batch nan", "/v1/estimate/batch", `{"tenant":"acme","attr":"price","queries":[{"lo":0,"hi":1},{"lo":0.5,"hi":0.2}]}`},
		{"empty values", "/v1/ingest", `{"tenant":"acme","attr":"price","values":[]}`},
		{"ingest inf", "/v1/ingest", `{"tenant":"acme","attr":"price","values":[1,1e999]}`},
		{"attrs missing names", "/v1/attrs", `{"config":{"domain_lo":0,"domain_hi":1}}`},
		{"attrs inverted domain", "/v1/attrs", `{"tenant":"t","attr":"a","config":{"domain_lo":1,"domain_hi":0}}`},
	}
	for _, c := range cases {
		w := do(t, h, "POST", c.path, c.body, nil)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", c.name, w.Code, w.Body.String())
			continue
		}
		if e := decodeErrorBody(t, w); e.Code != "bad_request" {
			t.Errorf("%s: error code %q, want bad_request", c.name, e.Code)
		}
	}
	// A batch beyond MaxBatch is refused before any work happens.
	var big bytes.Buffer
	big.WriteString(`{"tenant":"acme","attr":"price","queries":[`)
	for i := 0; i < 5000; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteString(`{"lo":0,"hi":1}`)
	}
	big.WriteString(`]}`)
	if w := do(t, h, "POST", "/v1/estimate/batch", big.String(), nil); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d, want 400", w.Code)
	}
}
