// Fast-path pins (ISSUE 10): the inline dispatch + flush-coalescing
// request engine must be allocation-free on the estimate round trip,
// latch dead connections on the first write error, and preserve the
// response→request-id mapping and per-conn ordering invariants under
// deep mixed pipelining — checked over real TCP and under -race via
// `make race-wire` (the TestWire name prefix is what that target runs).
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selest/internal/telemetry"
	"selest/internal/wire"
)

// memConn is a net.Conn stub whose writes land in an in-memory buffer —
// the harness for exercising connWriter and fastPath without a socket.
type memConn struct {
	buf    bytes.Buffer
	closed atomic.Bool
}

func (c *memConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (c *memConn) Write(b []byte) (int, error)      { return c.buf.Write(b) }
func (c *memConn) Close() error                     { c.closed.Store(true); return nil }
func (c *memConn) LocalAddr() net.Addr              { return nil }
func (c *memConn) RemoteAddr() net.Addr             { return nil }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// failConn fails every write, counting attempts that reach the socket.
type failConn struct {
	memConn
	writes atomic.Int64
}

func (c *failConn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	return 0, errors.New("socket gone")
}

// primedServer returns a Server with acme/price carrying a published
// snapshot fit, so estimates answer from the steady-state rung.
func primedServer(t testing.TB) *Server {
	s := New(Config{})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("acme", "price", seq(64)); err != nil {
		t.Fatal(err)
	}
	a, err := s.attr("acme", "price")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.est.Inserts() < 64 {
		if time.Now().After(deadline) {
			t.Fatal("drainer stuck priming the benchmark attribute")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := s.Estimate(context.Background(), "acme", "price", 0.25, 0.75, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != "fresh" && res.Rung != "snapshot" {
		t.Fatalf("priming flush landed on rung %q", res.Rung)
	}
	return s
}

// newMemFastPath builds a fastPath over an in-memory conn.
func newMemFastPath(s *Server) (*fastPath, *memConn, *connWriter) {
	mc := &memConn{}
	cw := &connWriter{bw: bufio.NewWriterSize(mc, 64<<10), c: mc}
	return &fastPath{ws: s.NewWireServer(), cw: cw}, mc, cw
}

// readResponse decodes the single frame the fast path just wrote.
func readResponse(t *testing.T, mc *memConn) wire.Frame {
	t.Helper()
	f, _, err := wire.ReadFrame(bytes.NewReader(mc.buf.Bytes()), wire.MaxPayload, nil)
	if err != nil {
		t.Fatalf("reading fast-path response: %v", err)
	}
	return f
}

// TestWireFastPathEstimateZeroAllocs is the tentpole's allocation pin:
// one server-side estimate round trip — decode, admit, ladder answer,
// encode, coalesced write — allocates nothing once the per-conn scratch
// is warm.
func TestWireFastPathEstimateZeroAllocs(t *testing.T) {
	s := primedServer(t)
	fp, mc, _ := newMemFastPath(s)
	payload := wire.EstimateReq{Tenant: "acme", Attr: "price", Lo: 0.25, Hi: 0.75}.Append(nil)

	if !fp.serve(wire.OpEstimate, 1, payload, true) {
		t.Fatal("estimate not served inline")
	}
	f := readResponse(t, mc)
	if f.Op != wire.OpEstimate|wire.RespFlag || f.ID != 1 {
		t.Fatalf("response frame %v id %d", f.Op, f.ID)
	}
	res, err := wire.DecodeEstimateRes(f.Payload)
	if err != nil || res.Rung != "snapshot" {
		t.Fatalf("inline estimate answered %+v, %v (want snapshot rung)", res, err)
	}

	if a := testing.AllocsPerRun(500, func() {
		mc.buf.Reset()
		if !fp.serve(wire.OpEstimate, 2, payload, true) {
			t.Fatal("estimate fell off the fast path")
		}
	}); a != 0 {
		t.Fatalf("inline estimate round trip allocates %v/op, want 0", a)
	}
}

func TestWireFastPathPingAndBatchZeroAllocs(t *testing.T) {
	s := primedServer(t)
	fp, mc, _ := newMemFastPath(s)

	ping := wire.PingReq{}.Append(nil)
	queries := make([]wire.Range, 16)
	for i := range queries {
		queries[i] = wire.Range{Lo: 0, Hi: float64(i+1) / 16}
	}
	batch := wire.EstimateBatchReq{Tenant: "acme", Attr: "price", Queries: queries}.Append(nil)

	// Warm every scratch buffer (frame, payload, query slice) once.
	if !fp.serve(wire.OpPing, 1, ping, true) || !fp.serve(wire.OpEstimateBatch, 2, batch, true) {
		t.Fatal("ping/batch not served inline")
	}

	if a := testing.AllocsPerRun(500, func() {
		mc.buf.Reset()
		if !fp.serve(wire.OpPing, 3, ping, true) {
			t.Fatal("ping fell off the fast path")
		}
	}); a != 0 {
		t.Fatalf("inline ping allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(500, func() {
		mc.buf.Reset()
		if !fp.serve(wire.OpEstimateBatch, 4, batch, true) {
			t.Fatal("batch fell off the fast path")
		}
	}); a != 0 {
		t.Fatalf("inline 16-query batch allocates %v/op, want 0", a)
	}
}

// TestWireFastPathDeclines pins the dispatch rules: anything that may
// block must fall through to the goroutine path.
func TestWireFastPathDeclines(t *testing.T) {
	s := primedServer(t)
	fp, _, _ := newMemFastPath(s)

	fresh := wire.EstimateReq{Tenant: "acme", Attr: "price", Lo: 0, Hi: 1, Fresh: true}.Append(nil)
	if fp.serve(wire.OpEstimate, 1, fresh, true) {
		t.Fatal("fresh estimate served inline; it may block on a refit flush")
	}
	big := wire.EstimateBatchReq{Tenant: "acme", Attr: "price",
		Queries: make([]wire.Range, inlineBatchMax+1)}.Append(nil)
	if fp.serve(wire.OpEstimateBatch, 2, big, true) {
		t.Fatal("oversized batch served inline")
	}
	ingest := wire.IngestReq{Tenant: "acme", Attr: "price", Values: seq(4)}.Append(nil)
	if fp.serve(wire.OpIngest, 3, ingest, true) {
		t.Fatal("ingest served inline")
	}
	if fp.serve(wire.OpSnapshotFetch, 4, wire.SnapshotFetchReq{}.Append(nil), true) {
		t.Fatal("snapshot_fetch served inline")
	}
}

// TestWireConnWriterDeadLatch is ISSUE 10 satellite 1: the first write
// error latches the connection dead, closes the socket (so the reader
// loop reaps it), and suppresses every subsequent write instead of
// letting still-pipelined goroutines feed a dead socket.
func TestWireConnWriterDeadLatch(t *testing.T) {
	before := telemetry.Default.Snapshot()
	fc := &failConn{}
	// A 16-byte buffer forces write-through on every frame, so the first
	// writeFrameSync hits the socket error immediately.
	cw := &connWriter{bw: bufio.NewWriterSize(fc, 16), c: fc}

	cw.writeFrameSync(errorFrame(1, ErrDraining, 0))
	if !fc.closed.Load() {
		t.Fatal("write error did not close the conn for the reader to reap")
	}
	attempts := fc.writes.Load()
	if attempts == 0 {
		t.Fatal("no write reached the socket")
	}

	cw.writeFrameSync(errorFrame(2, ErrDraining, 0))
	cw.writeInline([]byte("frame"), true)
	cw.inflight.Add(1)
	cw.writeFrameAsync(wire.Frame{Op: wire.OpPing | wire.RespFlag, ID: 3})
	if got := fc.writes.Load(); got != attempts {
		t.Fatalf("dead conn still written to: %d attempts after latch (had %d)", got, attempts)
	}
	if n := cw.inflight.Load(); n != 0 {
		t.Fatalf("writeFrameAsync on a dead conn leaked inflight count %d", n)
	}

	after := telemetry.Default.Snapshot()
	name := "selest_server_wire_write_errors_total"
	if after.Counters[name] != before.Counters[name]+1 {
		t.Fatalf("write-error counter moved %d, want exactly 1 (latched)",
			after.Counters[name]-before.Counters[name])
	}
}

// TestWirePipeliningMixedInlineGoroutine is the -race pipelining pin:
// deep bursts mixing inline ops (estimates, pings) with goroutine ops
// (ingests, fresh estimates) on several concurrent connections. Every
// request id is answered exactly once with its own op; inline responses
// arrive in request order relative to each other (goroutine responses
// may interleave anywhere — the id is the correlation); and no response
// is stranded unflushed by the coalescing machine, whatever the
// interleaving of inline writes and in-flight goroutines.
func TestWirePipeliningMixedInlineGoroutine(t *testing.T) {
	before := telemetry.Default.Snapshot()
	s := primedServer(t)
	_, addr := startWireServer(t, s)

	const conns = 4
	const bursts = 8
	const burstLen = 48

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for cn := 0; cn < conns; cn++ {
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			errs <- drivePipelinedConn(addr, bursts, burstLen)
		}(cn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	after := telemetry.Default.Snapshot()
	counterMoved := func(name string) {
		t.Helper()
		if after.Counters[name] <= before.Counters[name] {
			t.Fatalf("counter %s did not move: %d -> %d",
				name, before.Counters[name], after.Counters[name])
		}
	}
	counterMoved("selest_server_wire_inline_served_total")
	counterMoved("selest_server_wire_flushes_coalesced_total")

	var buf bytes.Buffer
	if err := telemetry.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"selest_server_wire_inline_served_total",
		"selest_server_wire_flushes_coalesced_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
}

// drivePipelinedConn writes bursts of mixed requests in a single
// conn.Write each and verifies the response stream's invariants.
func drivePipelinedConn(addr string, bursts, burstLen int) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(conn)

	const (
		kindEstimate = iota // inline
		kindPing            // inline
		kindIngest          // goroutine
		kindFresh           // goroutine (fresh estimate)
	)
	var (
		nextID uint64
		out    []byte
		rbuf   []byte
	)
	for b := 0; b < bursts; b++ {
		out = out[:0]
		kinds := map[uint64]int{}
		var inlineOrder []uint64
		for i := 0; i < burstLen; i++ {
			nextID++
			id := nextID
			var kind int
			switch i % 8 {
			case 3:
				kind = kindIngest
			case 5:
				kind = kindFresh
			case 6:
				kind = kindPing
			default:
				kind = kindEstimate
			}
			kinds[id] = kind
			var f wire.Frame
			switch kind {
			case kindEstimate:
				f = wire.Frame{Op: wire.OpEstimate, ID: id, Payload: wire.EstimateReq{
					Tenant: "acme", Attr: "price", Lo: 0.1, Hi: 0.9}.Append(nil)}
			case kindPing:
				f = wire.Frame{Op: wire.OpPing, ID: id, Payload: wire.PingReq{}.Append(nil)}
			case kindIngest:
				f = wire.Frame{Op: wire.OpIngest, ID: id, Payload: wire.IngestReq{
					Tenant: "acme", Attr: "price", Values: []float64{0.5}}.Append(nil)}
			case kindFresh:
				f = wire.Frame{Op: wire.OpEstimate, ID: id, Payload: wire.EstimateReq{
					Tenant: "acme", Attr: "price", Lo: 0.1, Hi: 0.9, Fresh: true}.Append(nil)}
			}
			if kind == kindEstimate || kind == kindPing {
				inlineOrder = append(inlineOrder, id)
			}
			out = wire.AppendFrame(out, f)
		}
		if _, err := conn.Write(out); err != nil {
			return fmt.Errorf("burst %d write: %w", b, err)
		}

		seen := map[uint64]bool{}
		var inlineSeen []uint64
		for len(seen) < burstLen {
			var f wire.Frame
			f, rbuf, err = wire.ReadFrame(br, wire.MaxPayload, rbuf)
			if err != nil {
				return fmt.Errorf("burst %d after %d responses: %w", b, len(seen), err)
			}
			kind, ok := kinds[f.ID]
			if !ok {
				return fmt.Errorf("burst %d: response for unknown id %d", b, f.ID)
			}
			if seen[f.ID] {
				return fmt.Errorf("burst %d: id %d answered twice", b, f.ID)
			}
			seen[f.ID] = true
			var wantOp wire.Op
			switch kind {
			case kindEstimate, kindFresh:
				wantOp = wire.OpEstimate | wire.RespFlag
			case kindPing:
				wantOp = wire.OpPing | wire.RespFlag
			case kindIngest:
				wantOp = wire.OpIngest | wire.RespFlag
			}
			if f.Op != wantOp {
				return fmt.Errorf("burst %d id %d: op %s, want %s", b, f.ID, f.Op, wantOp)
			}
			if kind == kindEstimate || kind == kindPing {
				inlineSeen = append(inlineSeen, f.ID)
			}
			if kind == kindEstimate {
				res, derr := wire.DecodeEstimateRes(f.Payload)
				if derr != nil || res.Rung != "snapshot" {
					return fmt.Errorf("burst %d id %d: inline estimate %+v, %v", b, f.ID, res, derr)
				}
			}
		}
		// Inline responses are written by the one reader goroutine, so
		// their relative order is the request order.
		if len(inlineSeen) != len(inlineOrder) {
			return fmt.Errorf("burst %d: %d inline responses, want %d", b, len(inlineSeen), len(inlineOrder))
		}
		for i := range inlineOrder {
			if inlineSeen[i] != inlineOrder[i] {
				return fmt.Errorf("burst %d: inline response order %v, want %v", b, inlineSeen, inlineOrder)
			}
		}
	}
	return nil
}
