// The selestwire binary transport: a TCP listener speaking the
// length-prefixed, CRC-framed, request-id-pipelined protocol from
// internal/wire, over the same Server core as the HTTP/JSON transport —
// same admission buckets, same degradation ladder, same drain gate, same
// per-request panic containment, same errcode registry. Only the
// envelope differs: a binary frame instead of an HTTP response.
//
// Concurrency model (DESIGN.md §16): one reader goroutine per
// connection decodes frames and serves cheap read-only requests —
// pings, non-fresh estimates, small non-fresh batches — *inline*, with
// every buffer reused across frames, so the steady-state estimate round
// trip spawns no goroutine, copies no payload, and allocates nothing.
// Requests that may block (ingest, create_attr, snapshot_fetch, fresh
// estimates, oversized batches) are dispatched onto their own goroutine
// (bounded per connection), so a slow fresh-estimate never
// head-of-line-blocks the pipelined requests behind it; responses are
// written under a per-connection mutex and may interleave in any order —
// the request id is the correlation, exactly as DESIGN.md §13 specifies.
// Response flushes are coalesced: a burst of K pipelined requests is
// answered with one write syscall, not K.
//
// Failure posture mirrors the HTTP transport: a malformed payload inside
// a well-framed request is a typed error response on that request alone;
// a framing error (bad magic, CRC mismatch, oversized length) is
// unrecoverable — the server sends a final error frame and hangs up,
// because a corrupt stream cannot be re-synchronised.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selest/internal/errcode"
	"selest/internal/faultinject"
	"selest/internal/wire"
)

// maxConnPipelined bounds the requests in flight on one connection; a
// client pipelining deeper than this blocks in the reader until a slot
// frees, which backpressures the TCP window instead of growing
// goroutines without bound.
const maxConnPipelined = 128

// WireServer serves the binary protocol over a Server. Create one with
// Server.NewWireServer, hand it listeners via Serve, and stop it with
// Shutdown (the wire twin of http.Server.Shutdown).
type WireServer struct {
	s *Server

	mu      sync.Mutex
	lns     map[net.Listener]struct{}
	conns   map[net.Conn]struct{}
	reqs    sync.WaitGroup
	closing atomic.Bool
}

// NewWireServer returns a wire-protocol front over s.
func (s *Server) NewWireServer() *WireServer {
	return &WireServer{
		s:     s,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until the listener closes (usually via
// Shutdown). It returns nil after a Shutdown-initiated close and the
// accept error otherwise.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	if ws.closing.Load() {
		ws.mu.Unlock()
		ln.Close()
		return errors.New("server: wire listener after shutdown")
	}
	ws.lns[ln] = struct{}{}
	ws.mu.Unlock()
	defer func() {
		ws.mu.Lock()
		delete(ws.lns, ln)
		ws.mu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			if ws.closing.Load() {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		if ws.closing.Load() {
			ws.mu.Unlock()
			c.Close()
			return nil
		}
		ws.conns[c] = struct{}{}
		ws.mu.Unlock()
		go ws.serveConn(c)
	}
}

// Shutdown stops the wire transport gracefully: close every listener
// (no new connections), wait — bounded by ctx — for requests already
// dispatched to finish and their responses to flush, then close the
// connections. Requests arriving while the Server is draining receive
// typed draining errors rather than dropped connections, so a client
// sees the same contract as HTTP's 503-during-drain.
func (ws *WireServer) Shutdown(ctx context.Context) error {
	ws.closing.Store(true)
	ws.mu.Lock()
	for ln := range ws.lns {
		ln.Close()
	}
	ws.mu.Unlock()

	done := make(chan struct{})
	go func() {
		ws.reqs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: wire shutdown abandoned in-flight requests: %w", ctx.Err())
	}
	ws.mu.Lock()
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	return err
}

// CloseConns forcibly closes every live connection without touching the
// listeners — a dead-peer hook for tests and operators: clients must
// detect the broken socket and redial.
func (ws *WireServer) CloseConns() {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for c := range ws.conns {
		c.Close()
	}
}

// connWriter serialises response frames from the reader goroutine's
// inline fast path and concurrent request goroutines onto one
// connection, and owns the flush-coalescing state machine (DESIGN.md
// §16): an inline response is flushed immediately only when nothing else
// is guaranteed to flush it sooner, so a pipelined burst of K requests
// costs one write syscall instead of K.
type connWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
	c  net.Conn

	// dead latches on the first write or flush error: the socket is
	// closed so the reader loop reaps the connection promptly, and every
	// subsequent write is skipped instead of feeding a dead socket from
	// still-pipelined goroutines.
	dead bool

	// inflight counts dispatched request goroutines whose response frame
	// has not been written yet. The inline path may defer its flush while
	// this is non-zero — the goroutine's own write, which always flushes,
	// carries the buffered bytes out — because the count is decremented
	// under mu together with that flush, so a non-zero observation under
	// mu guarantees a future flush.
	inflight atomic.Int64

	// frame is the goroutine path's frame-encode scratch, reused under mu
	// so async responses allocate nothing for framing either.
	frame []byte
}

// die latches the write-error flag and closes the socket so the reader
// loop's next ReadFrame fails and reaps the connection instead of
// leaving it half-dead. Caller holds mu.
func (cw *connWriter) die() {
	if cw.dead {
		return
	}
	cw.dead = true
	// A write error leaves the connection for the reader loop to reap;
	// there is no one to report it to but telemetry.
	srvWireWriteErrors.Inc()
	_ = cw.c.Close()
}

// writeLocked buffers one encoded frame, reporting whether the
// connection is still usable. Caller holds mu.
func (cw *connWriter) writeLocked(b []byte) bool {
	if cw.dead {
		return false
	}
	if _, err := cw.bw.Write(b); err != nil {
		cw.die()
		return false
	}
	return true
}

// flushLocked pushes buffered responses to the socket. Caller holds mu.
func (cw *connWriter) flushLocked() {
	if cw.dead {
		return
	}
	if err := cw.bw.Flush(); err != nil {
		cw.die()
	}
}

// writeInline writes a pre-encoded response frame from the reader
// goroutine's fast path. readerIdle reports that the reader found no
// further frame already buffered (it is about to block on the socket).
// The flush is deferred — counted as coalesced — when more requests are
// waiting (the burst's last response will flush for everyone) or a
// request goroutine is still in flight (its always-flushing write
// carries these bytes out).
func (cw *connWriter) writeInline(b []byte, readerIdle bool) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if !cw.writeLocked(b) {
		return
	}
	if readerIdle && cw.inflight.Load() == 0 {
		cw.flushLocked()
	} else {
		srvWireFlushesCoalesced.Inc()
	}
}

// writeFrameAsync encodes and writes f from a request goroutine, always
// flushing, and releases the goroutine's inflight slot under the same
// lock as the flush — the ordering writeInline's deferred flushes rely
// on. Every dispatched goroutine writes exactly one response through
// here (handle guarantees it, including on panic).
func (cw *connWriter) writeFrameAsync(f wire.Frame) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	defer cw.inflight.Add(-1)
	cw.frame = wire.AppendFrame(cw.frame[:0], f)
	if cw.writeLocked(cw.frame) {
		cw.flushLocked()
	}
}

// writeFrameSync writes a reader-loop-emitted frame (protocol errors)
// and flushes immediately.
func (cw *connWriter) writeFrameSync(f wire.Frame) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.frame = wire.AppendFrame(cw.frame[:0], f)
	if cw.writeLocked(cw.frame) {
		cw.flushLocked()
	}
}

// finalFlush pushes out anything the coalescing machine was still
// holding when the reader loop exited — a client that pipelined
// requests and half-closed its write side still gets every response.
func (cw *connWriter) finalFlush() {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.flushLocked()
}

func (ws *WireServer) serveConn(c net.Conn) {
	srvWireConns.Set(float64(ws.wireConnCount(c, +1)))
	cw := &connWriter{bw: bufio.NewWriterSize(c, 64<<10), c: c}
	defer func() {
		srvWireConns.Set(float64(ws.wireConnCount(c, -1)))
		cw.finalFlush()
		c.Close()
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	fp := &fastPath{ws: ws, cw: cw}
	sem := make(chan struct{}, maxConnPipelined)
	var buf []byte
	for {
		var f wire.Frame
		var err error
		f, buf, err = wire.ReadFrame(br, uint32(ws.s.cfg.MaxPayloadBytes), buf)
		if err != nil {
			if errors.Is(err, wire.ErrProtocol) {
				// The stream is corrupt: answer once (id 0 — after a
				// framing error no id is trustworthy) and hang up.
				srvWireProtoErrors.Inc()
				cw.writeFrameSync(errorFrame(0, fmt.Errorf("%w: %v", ErrBadValue, err), 0))
			} else if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				srvWireReadErrors.Inc()
			}
			return
		}
		if !f.Op.IsRequest() {
			srvWireProtoErrors.Inc()
			cw.writeFrameSync(errorFrame(f.ID, fmt.Errorf("%w: %v", ErrBadValue, wire.ErrUnknownOp), 0))
			return
		}
		// Cheap read-only requests are served right here on the reader
		// goroutine; the payload is consumed before the next ReadFrame
		// reuses its buffer, so no copy is needed either.
		if fp.serve(f.Op, f.ID, f.Payload, br.Buffered() == 0) {
			continue
		}
		// Everything else may block, so it gets its own goroutine — and
		// since the frame's payload aliases the read buffer, a copy
		// before handing it over.
		payload := append([]byte(nil), f.Payload...)
		cw.inflight.Add(1)
		sem <- struct{}{}
		ws.reqs.Add(1)
		go func(op wire.Op, id uint64, payload []byte) {
			defer func() { <-sem; ws.reqs.Done() }()
			ws.handle(cw, op, id, payload)
		}(f.Op, f.ID, payload)
	}
}

// inlineBatchMax bounds the estimate_batch size served inline on the
// reader goroutine: past it, the time spent answering under the ladder
// would head-of-line-delay pipelined frames enough to matter, so larger
// batches take the goroutine path.
const inlineBatchMax = 64

// fastPath is the reader goroutine's per-connection inline dispatcher:
// cheap read-only ops — pings, non-fresh estimates, non-fresh batches up
// to inlineBatchMax — are decoded, admitted, served, and encoded on the
// reader goroutine itself, with every buffer reused across frames. No
// goroutine handoff, no payload copy (the payload is consumed before the
// next ReadFrame reuses its buffer), no context allocation (the rungs it
// serves never block, so the deadline is a plain value checked as the
// batch progresses), and no per-response allocation: the steady-state
// estimate round trip is zero allocations server-side.
//
// A fresh estimate may flush a refit — that can block for a build — so
// the fresh bit sends a request to the goroutine path no matter how
// cheap it looks. Panic containment, the drain gate, admission, fault
// injection, and telemetry are all replicated here: inline service must
// be observationally identical to the goroutine path apart from speed.
type fastPath struct {
	ws *WireServer
	cw *connWriter

	payload []byte             // response-payload encode scratch
	frame   []byte             // full-frame encode scratch
	queries []wire.Range       // batch-decode scratch
	results []wire.EstimateRes // batch-response scratch
}

// serve handles one request frame inline when it is cheap and safe to,
// reporting whether the frame was consumed. Frames it declines go to the
// goroutine path, which re-decodes from its own copy of the payload.
func (fp *fastPath) serve(op wire.Op, id uint64, payload []byte, readerIdle bool) bool {
	s := fp.ws.s
	// Peek the fresh bit (and batch size) before committing: only
	// requests whose every rung is non-blocking may run on the reader.
	var (
		est   wire.EstimateReqView
		batch wire.EstimateBatchReqView
		derr  error
	)
	switch op {
	case wire.OpPing:
	case wire.OpEstimate:
		est, derr = wire.DecodeEstimateReqView(payload)
		if derr == nil && est.Fresh {
			return false
		}
	case wire.OpEstimateBatch:
		batch, fp.queries, derr = wire.DecodeEstimateBatchReqView(payload, s.cfg.MaxBatch, fp.queries)
		if derr == nil && (batch.Fresh || len(batch.Queries) > inlineBatchMax) {
			return false
		}
	default:
		return false
	}

	start := time.Now()
	srvWireRequests.Inc()
	srvWireInlineServed.Inc()
	srvInflight.Set(float64(s.inflight.Add(1)))
	defer func() {
		srvInflight.Set(float64(s.inflight.Add(-1)))
		srvWireLatencyNanos.ObserveSince(start)
		if rec := recover(); rec != nil {
			srvPanics.Inc()
			fp.respondErr(id, fmt.Errorf("panic contained: %v", rec), 0, readerIdle)
		}
	}()
	if s.draining.Load() {
		fp.respondErr(id, ErrDraining, 0, readerIdle)
		return true
	}
	if err := faultinject.Check(FaultHandler); err != nil {
		fp.respondErr(id, err, 0, readerIdle)
		return true
	}
	if derr != nil {
		fp.respondErr(id, fmt.Errorf("%w: %v", ErrBadValue, derr), 0, readerIdle)
		return true
	}

	switch op {
	case wire.OpPing:
		// Pings bypass admission (a saturated replica still answers
		// "alive") but not the drain gate above — same as the goroutine
		// path before them.
		if _, err := wire.DecodePingReq(payload); err != nil {
			fp.respondErr(id, fmt.Errorf("%w: %v", ErrBadValue, err), 0, readerIdle)
			return true
		}
		fp.respond(op, id, nil, readerIdle)
	case wire.OpEstimate:
		fp.serveEstimate(est, id, readerIdle, start)
	case wire.OpEstimateBatch:
		fp.serveEstimateBatch(batch, id, readerIdle, start)
	}
	return true
}

// budget mirrors the goroutine path's timeout selection as a plain
// duration — the inline rungs never block, so a deadline *value* checked
// as work progresses replaces the per-request context allocation.
func (fp *fastPath) budget(m wire.Meta) time.Duration {
	if m.TimeoutMs > 0 {
		return time.Duration(m.TimeoutMs) * time.Millisecond
	}
	return fp.ws.s.cfg.DefaultTimeout
}

func (fp *fastPath) serveEstimate(req wire.EstimateReqView, id uint64, readerIdle bool, start time.Time) {
	s := fp.ws.s
	if len(req.Tenant) == 0 || len(req.Attr) == 0 {
		fp.respondErr(id, fmt.Errorf("%w: %v", ErrBadValue, errNameRequired), 0, readerIdle)
		return
	}
	if req.Retry > 0 {
		srvRetried.Inc()
	}
	tn, a, err := s.lookupView(req.Tenant, req.Attr)
	if err != nil {
		fp.respondErr(id, err, 0, readerIdle)
		return
	}
	if retry, err := s.admitBucket(tn, 1); err != nil {
		fp.respondErr(id, err, retry, readerIdle)
		return
	}
	if err := validRange(req.Lo, req.Hi); err != nil {
		fp.respondErr(id, err, 0, readerIdle)
		return
	}
	if time.Since(start) >= fp.budget(req.Meta) {
		fp.respondErr(id, errcode.ErrTimeout, 0, readerIdle)
		return
	}
	res := s.answer(a, req.Lo, req.Hi, rungSnapshot, rungSnapshot)
	fp.payload = estimateRes(res).Append(fp.payload[:0])
	fp.respond(wire.OpEstimate, id, fp.payload, readerIdle)
}

func (fp *fastPath) serveEstimateBatch(req wire.EstimateBatchReqView, id uint64, readerIdle bool, start time.Time) {
	s := fp.ws.s
	if len(req.Tenant) == 0 || len(req.Attr) == 0 {
		fp.respondErr(id, fmt.Errorf("%w: %v", ErrBadValue, errNameRequired), 0, readerIdle)
		return
	}
	if req.Retry > 0 {
		srvRetried.Inc()
	}
	tn, a, err := s.lookupView(req.Tenant, req.Attr)
	if err != nil {
		fp.respondErr(id, err, 0, readerIdle)
		return
	}
	if retry, err := s.admitBucket(tn, len(req.Queries)); err != nil {
		fp.respondErr(id, err, retry, readerIdle)
		return
	}
	// Batch semantics as in EstimateBatch: empty batches and any
	// malformed query reject the whole batch.
	if len(req.Queries) == 0 {
		fp.respondErr(id, fmt.Errorf("%w: empty batch", ErrBadRange), 0, readerIdle)
		return
	}
	for _, q := range req.Queries {
		if err := validRange(q.Lo, q.Hi); err != nil {
			fp.respondErr(id, err, 0, readerIdle)
			return
		}
	}
	budget := fp.budget(req.Meta)
	fp.results = fp.results[:0]
	for i, q := range req.Queries {
		// The deadline value is checked between rungs — the inline twin
		// of the context the goroutine path would have watched.
		if i&15 == 0 && time.Since(start) >= budget {
			fp.respondErr(id, errcode.ErrTimeout, 0, readerIdle)
			return
		}
		fp.results = append(fp.results, estimateRes(s.answer(a, q.Lo, q.Hi, rungSnapshot, rungSnapshot)))
	}
	fp.payload = wire.EstimateBatchRes{Results: fp.results}.Append(fp.payload[:0])
	fp.respond(wire.OpEstimateBatch, id, fp.payload, readerIdle)
}

// respond frames a success payload into the per-conn scratch and hands
// it to the coalescing writer.
func (fp *fastPath) respond(op wire.Op, id uint64, payload []byte, readerIdle bool) {
	fp.frame = wire.AppendFrame(fp.frame[:0], wire.Frame{Op: op | wire.RespFlag, ID: id, Payload: payload})
	fp.cw.writeInline(fp.frame, readerIdle)
}

// respondErr frames a typed error response. Error paths are off the
// zero-alloc contract (errorFrame allocates its message).
func (fp *fastPath) respondErr(id uint64, err error, retry time.Duration, readerIdle bool) {
	fp.frame = wire.AppendFrame(fp.frame[:0], errorFrame(id, err, retry))
	fp.cw.writeInline(fp.frame, readerIdle)
}

var errNameRequired = errors.New("tenant and attr are required")

// wireConnCount registers or unregisters a connection and returns the
// new count for the gauge.
func (ws *WireServer) wireConnCount(c net.Conn, delta int) int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if delta > 0 {
		// Serve already registered the conn; nothing to add.
	} else {
		delete(ws.conns, c)
	}
	return len(ws.conns)
}

// errorFrame builds the OpError response for err, carrying the stable
// errcode and the retry-after throttle hint.
func errorFrame(id uint64, err error, retryAfter time.Duration) wire.Frame {
	res := wire.ErrorRes{
		Code:    uint16(errcode.Classify(err)),
		Message: err.Error(),
	}
	if retryAfter > 0 {
		ms := retryAfter.Milliseconds()
		if ms < 1 {
			ms = 1 // ceil: retrying earlier would just be refused again
		}
		res.RetryAfterMs = uint32(ms)
	}
	return wire.Frame{Op: wire.OpError, ID: id, Payload: res.Append(nil)}
}

// handle is the wire twin of the HTTP wrap middleware plus endpoint
// dispatch: inflight/latency accounting, drain gate, retry visibility,
// deadline propagation from the request meta, admission control, panic
// containment, and the op-specific decode → serve → encode.
func (ws *WireServer) handle(cw *connWriter, op wire.Op, id uint64, payload []byte) {
	start := time.Now()
	s := ws.s
	srvInflight.Set(float64(s.inflight.Add(1)))
	defer func() {
		srvInflight.Set(float64(s.inflight.Add(-1)))
		srvWireLatencyNanos.ObserveSince(start)
		if rec := recover(); rec != nil {
			srvPanics.Inc()
			cw.writeFrameAsync(errorFrame(id, fmt.Errorf("panic contained: %v", rec), 0))
		}
	}()
	srvWireRequests.Inc()
	if s.draining.Load() {
		cw.writeFrameAsync(errorFrame(id, ErrDraining, 0))
		return
	}
	if err := faultinject.Check(FaultHandler); err != nil {
		cw.writeFrameAsync(errorFrame(id, err, 0))
		return
	}

	reply := func(meta wire.Meta, tenant string, cost int, serve func(ctx context.Context) ([]byte, error)) {
		if meta.Retry > 0 {
			srvRetried.Inc()
		}
		timeout := s.cfg.DefaultTimeout
		if meta.TimeoutMs > 0 {
			timeout = time.Duration(meta.TimeoutMs) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if retry, err := s.Admit(tenant, cost); err != nil {
			cw.writeFrameAsync(errorFrame(id, err, retry))
			return
		}
		out, err := serve(ctx)
		if err != nil {
			cw.writeFrameAsync(errorFrame(id, err, 0))
			return
		}
		cw.writeFrameAsync(wire.Frame{Op: op | wire.RespFlag, ID: id, Payload: out})
	}
	badReq := func(err error) {
		cw.writeFrameAsync(errorFrame(id, fmt.Errorf("%w: %v", ErrBadValue, err), 0))
	}

	switch op {
	case wire.OpEstimate:
		req, err := wire.DecodeEstimateReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errNameRequired)
			return
		}
		reply(req.Meta, req.Tenant, 1, func(ctx context.Context) ([]byte, error) {
			res, err := s.Estimate(ctx, req.Tenant, req.Attr, req.Lo, req.Hi, req.Fresh)
			if err != nil {
				return nil, err
			}
			return estimateRes(res).Append(nil), nil
		})

	case wire.OpEstimateBatch:
		req, err := wire.DecodeEstimateBatchReq(payload, s.cfg.MaxBatch)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errNameRequired)
			return
		}
		reply(req.Meta, req.Tenant, len(req.Queries), func(ctx context.Context) ([]byte, error) {
			queries := make([]RangeQuery, len(req.Queries))
			for i, q := range req.Queries {
				queries[i] = RangeQuery{Lo: q.Lo, Hi: q.Hi}
			}
			results, err := s.EstimateBatch(ctx, req.Tenant, req.Attr, queries, req.Fresh)
			if err != nil {
				return nil, err
			}
			out := wire.EstimateBatchRes{Results: make([]wire.EstimateRes, len(results))}
			for i, r := range results {
				out.Results[i] = estimateRes(r)
			}
			return out.Append(nil), nil
		})

	case wire.OpIngest:
		req, err := wire.DecodeIngestReq(payload, s.cfg.MaxBatch)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errNameRequired)
			return
		}
		reply(req.Meta, req.Tenant, len(req.Values), func(ctx context.Context) ([]byte, error) {
			res, err := s.Ingest(req.Tenant, req.Attr, req.Values)
			if err != nil {
				return nil, err
			}
			return wire.IngestRes{Queued: uint32(res.Queued), Shed: uint32(res.Shed)}.Append(nil), nil
		})

	case wire.OpCreateAttr:
		req, err := wire.DecodeCreateAttrReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errNameRequired)
			return
		}
		var cfg AttrConfig
		if err := decodeJSON(bytes.NewReader(req.Config), &cfg); err != nil {
			badReq(err)
			return
		}
		reply(req.Meta, req.Tenant, 1, func(ctx context.Context) ([]byte, error) {
			if err := s.CreateAttr(req.Tenant, req.Attr, cfg); err != nil {
				return nil, err
			}
			return nil, nil
		})

	case wire.OpPing:
		req, err := wire.DecodePingReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		_ = req
		cw.writeFrameAsync(wire.Frame{Op: op | wire.RespFlag, ID: id})

	case wire.OpSnapshotFetch:
		req, err := wire.DecodeSnapshotFetchReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		// Tenant "" admits free: the fetcher is a joining replica, not a
		// tenant, and throttling a warm boot only prolongs the window the
		// newcomer answers from uniform.
		reply(req.Meta, "", 1, func(ctx context.Context) ([]byte, error) {
			return s.SnapshotBytes()
		})
	}
}

// estimateRes converts the service result to its wire twin.
func estimateRes(r EstimateResult) wire.EstimateRes {
	return wire.EstimateRes{
		Selectivity: r.Selectivity,
		Rows:        r.Rows,
		Generation:  r.Generation,
		Rung:        r.Rung,
		Degraded:    r.Degraded,
	}
}
