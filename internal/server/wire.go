// The selestwire binary transport: a TCP listener speaking the
// length-prefixed, CRC-framed, request-id-pipelined protocol from
// internal/wire, over the same Server core as the HTTP/JSON transport —
// same admission buckets, same degradation ladder, same drain gate, same
// per-request panic containment, same errcode registry. Only the
// envelope differs: a binary frame instead of an HTTP response.
//
// Concurrency model: one reader goroutine per connection decodes frames
// and dispatches each request onto its own goroutine (bounded per
// connection), so a slow fresh-estimate never head-of-line-blocks the
// pipelined requests behind it; responses are written under a per-
// connection mutex and may interleave in any order — the request id is
// the correlation, exactly as DESIGN.md §13 specifies.
//
// Failure posture mirrors the HTTP transport: a malformed payload inside
// a well-framed request is a typed error response on that request alone;
// a framing error (bad magic, CRC mismatch, oversized length) is
// unrecoverable — the server sends a final error frame and hangs up,
// because a corrupt stream cannot be re-synchronised.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selest/internal/errcode"
	"selest/internal/faultinject"
	"selest/internal/wire"
)

// maxConnPipelined bounds the requests in flight on one connection; a
// client pipelining deeper than this blocks in the reader until a slot
// frees, which backpressures the TCP window instead of growing
// goroutines without bound.
const maxConnPipelined = 128

// WireServer serves the binary protocol over a Server. Create one with
// Server.NewWireServer, hand it listeners via Serve, and stop it with
// Shutdown (the wire twin of http.Server.Shutdown).
type WireServer struct {
	s *Server

	mu      sync.Mutex
	lns     map[net.Listener]struct{}
	conns   map[net.Conn]struct{}
	reqs    sync.WaitGroup
	closing atomic.Bool
}

// NewWireServer returns a wire-protocol front over s.
func (s *Server) NewWireServer() *WireServer {
	return &WireServer{
		s:     s,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until the listener closes (usually via
// Shutdown). It returns nil after a Shutdown-initiated close and the
// accept error otherwise.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	if ws.closing.Load() {
		ws.mu.Unlock()
		ln.Close()
		return errors.New("server: wire listener after shutdown")
	}
	ws.lns[ln] = struct{}{}
	ws.mu.Unlock()
	defer func() {
		ws.mu.Lock()
		delete(ws.lns, ln)
		ws.mu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			if ws.closing.Load() {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		if ws.closing.Load() {
			ws.mu.Unlock()
			c.Close()
			return nil
		}
		ws.conns[c] = struct{}{}
		ws.mu.Unlock()
		go ws.serveConn(c)
	}
}

// Shutdown stops the wire transport gracefully: close every listener
// (no new connections), wait — bounded by ctx — for requests already
// dispatched to finish and their responses to flush, then close the
// connections. Requests arriving while the Server is draining receive
// typed draining errors rather than dropped connections, so a client
// sees the same contract as HTTP's 503-during-drain.
func (ws *WireServer) Shutdown(ctx context.Context) error {
	ws.closing.Store(true)
	ws.mu.Lock()
	for ln := range ws.lns {
		ln.Close()
	}
	ws.mu.Unlock()

	done := make(chan struct{})
	go func() {
		ws.reqs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: wire shutdown abandoned in-flight requests: %w", ctx.Err())
	}
	ws.mu.Lock()
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	return err
}

// CloseConns forcibly closes every live connection without touching the
// listeners — a dead-peer hook for tests and operators: clients must
// detect the broken socket and redial.
func (ws *WireServer) CloseConns() {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for c := range ws.conns {
		c.Close()
	}
}

// connWriter serialises response frames from concurrent request
// goroutines onto one connection.
type connWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
	c  net.Conn
}

func (cw *connWriter) writeFrame(f wire.Frame) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	// A write error leaves the connection for the reader loop to reap;
	// there is no one to report it to but telemetry.
	if err := wire.WriteFrame(cw.bw, f); err == nil {
		if err := cw.bw.Flush(); err != nil {
			srvWireWriteErrors.Inc()
		}
	} else {
		srvWireWriteErrors.Inc()
	}
}

func (ws *WireServer) serveConn(c net.Conn) {
	srvWireConns.Set(float64(ws.wireConnCount(c, +1)))
	defer func() {
		srvWireConns.Set(float64(ws.wireConnCount(c, -1)))
		c.Close()
	}()

	cw := &connWriter{bw: bufio.NewWriterSize(c, 64<<10), c: c}
	br := bufio.NewReaderSize(c, 64<<10)
	sem := make(chan struct{}, maxConnPipelined)
	var buf []byte
	for {
		var f wire.Frame
		var err error
		f, buf, err = wire.ReadFrame(br, uint32(ws.s.cfg.MaxPayloadBytes), buf)
		if err != nil {
			if errors.Is(err, wire.ErrProtocol) {
				// The stream is corrupt: answer once (id 0 — after a
				// framing error no id is trustworthy) and hang up.
				srvWireProtoErrors.Inc()
				cw.writeFrame(errorFrame(0, fmt.Errorf("%w: %v", ErrBadValue, err), 0))
			} else if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				srvWireReadErrors.Inc()
			}
			return
		}
		if !f.Op.IsRequest() {
			srvWireProtoErrors.Inc()
			cw.writeFrame(errorFrame(f.ID, fmt.Errorf("%w: %v", ErrBadValue, wire.ErrUnknownOp), 0))
			return
		}
		// The frame's payload aliases the read buffer, which the next
		// ReadFrame reuses — copy before handing it to a goroutine.
		payload := append([]byte(nil), f.Payload...)
		sem <- struct{}{}
		ws.reqs.Add(1)
		go func(op wire.Op, id uint64, payload []byte) {
			defer func() { <-sem; ws.reqs.Done() }()
			ws.handle(cw, op, id, payload)
		}(f.Op, f.ID, payload)
	}
}

// wireConnCount registers or unregisters a connection and returns the
// new count for the gauge.
func (ws *WireServer) wireConnCount(c net.Conn, delta int) int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if delta > 0 {
		// Serve already registered the conn; nothing to add.
	} else {
		delete(ws.conns, c)
	}
	return len(ws.conns)
}

// errorFrame builds the OpError response for err, carrying the stable
// errcode and the retry-after throttle hint.
func errorFrame(id uint64, err error, retryAfter time.Duration) wire.Frame {
	res := wire.ErrorRes{
		Code:    uint16(errcode.Classify(err)),
		Message: err.Error(),
	}
	if retryAfter > 0 {
		ms := retryAfter.Milliseconds()
		if ms < 1 {
			ms = 1 // ceil: retrying earlier would just be refused again
		}
		res.RetryAfterMs = uint32(ms)
	}
	return wire.Frame{Op: wire.OpError, ID: id, Payload: res.Append(nil)}
}

// handle is the wire twin of the HTTP wrap middleware plus endpoint
// dispatch: inflight/latency accounting, drain gate, retry visibility,
// deadline propagation from the request meta, admission control, panic
// containment, and the op-specific decode → serve → encode.
func (ws *WireServer) handle(cw *connWriter, op wire.Op, id uint64, payload []byte) {
	start := time.Now()
	s := ws.s
	srvInflight.Set(float64(s.inflight.Add(1)))
	defer func() {
		srvInflight.Set(float64(s.inflight.Add(-1)))
		srvWireLatencyNanos.ObserveSince(start)
		if rec := recover(); rec != nil {
			srvPanics.Inc()
			cw.writeFrame(errorFrame(id, fmt.Errorf("panic contained: %v", rec), 0))
		}
	}()
	srvWireRequests.Inc()
	if s.draining.Load() {
		cw.writeFrame(errorFrame(id, ErrDraining, 0))
		return
	}
	if err := faultinject.Check(FaultHandler); err != nil {
		cw.writeFrame(errorFrame(id, err, 0))
		return
	}

	reply := func(meta wire.Meta, tenant string, cost int, serve func(ctx context.Context) ([]byte, error)) {
		if meta.Retry > 0 {
			srvRetried.Inc()
		}
		timeout := s.cfg.DefaultTimeout
		if meta.TimeoutMs > 0 {
			timeout = time.Duration(meta.TimeoutMs) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if retry, err := s.Admit(tenant, cost); err != nil {
			cw.writeFrame(errorFrame(id, err, retry))
			return
		}
		out, err := serve(ctx)
		if err != nil {
			cw.writeFrame(errorFrame(id, err, 0))
			return
		}
		cw.writeFrame(wire.Frame{Op: op | wire.RespFlag, ID: id, Payload: out})
	}
	badReq := func(err error) {
		cw.writeFrame(errorFrame(id, fmt.Errorf("%w: %v", ErrBadValue, err), 0))
	}

	switch op {
	case wire.OpEstimate:
		req, err := wire.DecodeEstimateReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errors.New("tenant and attr are required"))
			return
		}
		reply(req.Meta, req.Tenant, 1, func(ctx context.Context) ([]byte, error) {
			res, err := s.Estimate(ctx, req.Tenant, req.Attr, req.Lo, req.Hi, req.Fresh)
			if err != nil {
				return nil, err
			}
			return estimateRes(res).Append(nil), nil
		})

	case wire.OpEstimateBatch:
		req, err := wire.DecodeEstimateBatchReq(payload, s.cfg.MaxBatch)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errors.New("tenant and attr are required"))
			return
		}
		reply(req.Meta, req.Tenant, len(req.Queries), func(ctx context.Context) ([]byte, error) {
			queries := make([]RangeQuery, len(req.Queries))
			for i, q := range req.Queries {
				queries[i] = RangeQuery{Lo: q.Lo, Hi: q.Hi}
			}
			results, err := s.EstimateBatch(ctx, req.Tenant, req.Attr, queries, req.Fresh)
			if err != nil {
				return nil, err
			}
			out := wire.EstimateBatchRes{Results: make([]wire.EstimateRes, len(results))}
			for i, r := range results {
				out.Results[i] = estimateRes(r)
			}
			return out.Append(nil), nil
		})

	case wire.OpIngest:
		req, err := wire.DecodeIngestReq(payload, s.cfg.MaxBatch)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errors.New("tenant and attr are required"))
			return
		}
		reply(req.Meta, req.Tenant, len(req.Values), func(ctx context.Context) ([]byte, error) {
			res, err := s.Ingest(req.Tenant, req.Attr, req.Values)
			if err != nil {
				return nil, err
			}
			return wire.IngestRes{Queued: uint32(res.Queued), Shed: uint32(res.Shed)}.Append(nil), nil
		})

	case wire.OpCreateAttr:
		req, err := wire.DecodeCreateAttrReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		if req.Tenant == "" || req.Attr == "" {
			badReq(errors.New("tenant and attr are required"))
			return
		}
		var cfg AttrConfig
		if err := decodeJSON(bytes.NewReader(req.Config), &cfg); err != nil {
			badReq(err)
			return
		}
		reply(req.Meta, req.Tenant, 1, func(ctx context.Context) ([]byte, error) {
			if err := s.CreateAttr(req.Tenant, req.Attr, cfg); err != nil {
				return nil, err
			}
			return nil, nil
		})

	case wire.OpPing:
		req, err := wire.DecodePingReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		_ = req
		cw.writeFrame(wire.Frame{Op: op | wire.RespFlag, ID: id})

	case wire.OpSnapshotFetch:
		req, err := wire.DecodeSnapshotFetchReq(payload)
		if err != nil {
			badReq(err)
			return
		}
		// Tenant "" admits free: the fetcher is a joining replica, not a
		// tenant, and throttling a warm boot only prolongs the window the
		// newcomer answers from uniform.
		reply(req.Meta, "", 1, func(ctx context.Context) ([]byte, error) {
			return s.SnapshotBytes()
		})
	}
}

// estimateRes converts the service result to its wire twin.
func estimateRes(r EstimateResult) wire.EstimateRes {
	return wire.EstimateRes{
		Selectivity: r.Selectivity,
		Rows:        r.Rows,
		Generation:  r.Generation,
		Rung:        r.Rung,
		Degraded:    r.Degraded,
	}
}
