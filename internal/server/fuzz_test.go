package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzHTTPDecoders throws arbitrary bytes at every POST endpoint and pins
// the decoder contract (ISSUE satellite 6): malformed JSON, NaN/Inf
// spellings, inverted ranges, wrong types, truncations — whatever the
// fuzzer finds — always yield a 4xx with a typed JSON error body. Never a
// panic (a contained panic would surface as a 500, so "no 5xx" pins both
// halves at once).
func FuzzHTTPDecoders(f *testing.F) {
	seeds := []string{
		`{"tenant":"acme","attr":"price","lo":0,"hi":1}`,
		`{"tenant":"acme","attr":"price","lo":0.9,"hi":0.1}`,
		`{"tenant":"acme","attr":"price","lo":NaN,"hi":Infinity}`,
		`{"tenant":"acme","attr":"price","lo":0,"hi":1e999}`,
		`{"tenant":"acme","attr":"price","values":[1,2,3]}`,
		`{"tenant":"acme","attr":"price","values":[]}`,
		`{"tenant":"acme","attr":"price","queries":[{"lo":0,"hi":1}]}`,
		`{"tenant":"a","attr":"b","config":{"domain_lo":0,"domain_hi":1}}`,
		`{"tenant":"a","attr":"b","config":{"domain_lo":1,"domain_hi":0}}`,
		`{"tenant":"acme","attr":"price","lo":0,"hi":1}{}`,
		`{"tenant":"acme"`,
		`[]`,
		`null`,
		`"string"`,
		``,
		"\x00\x01\x02",
		`{"tenant":" ","attr":"\n","lo":-1e308,"hi":1e308}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	paths := []string{"/v1/estimate", "/v1/estimate/batch", "/v1/ingest", "/v1/attrs"}

	// One long-lived server for the whole fuzz run: decoders must hold
	// regardless of accumulated state. MaxAttrs is small so fuzzer-created
	// attributes cannot grow without bound.
	s := New(Config{MaxAttrs: 8, MaxBatch: 64, QueueCap: 64})
	if err := s.CreateAttr("acme", "price", testAttrCfg()); err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		for _, path := range paths {
			req := httptest.NewRequest("POST", path, strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code >= 500 {
				t.Fatalf("%s: body %q produced status %d: %s", path, body, w.Code, w.Body.String())
			}
			if w.Code != http.StatusOK {
				var eb errorBody
				if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
					t.Fatalf("%s: body %q produced untyped %d error: %s", path, body, w.Code, w.Body.String())
				}
			}
		}
	})
}
