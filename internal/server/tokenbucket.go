package server

import (
	"sync"
	"time"
)

// tokenBucket is a classic leaky token bucket: Rate tokens refill per
// second up to Burst, and a request costing n tokens is admitted only
// when n are available. It is the per-tenant admission-control primitive:
// cheap (one mutex, no goroutines, lazy refill on the clock of the
// caller), and it answers the question a 429 needs answered — how long
// until this request would fit — so Retry-After is exact rather than a
// guess.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket returns a bucket starting full. rate <= 0 disables
// limiting; burst < 1 is clamped to 1 so a full bucket always admits at
// least one unit-cost request.
func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take attempts to spend cost tokens at time now. On refusal it reports
// how long the caller must wait before the same request would be
// admitted. A cost above the burst can never be admitted whole; it is
// charged as a full burst so oversized requests still drain the tenant's
// budget instead of bypassing it.
func (b *tokenBucket) take(cost float64, now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if cost < 1 {
		cost = 1
	}
	if cost > b.burst {
		cost = b.burst
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	deficit := cost - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}
