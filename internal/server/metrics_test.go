package server

import (
	"bytes"
	"strings"
	"testing"

	"selest/internal/telemetry"
)

// TestServiceMetricsStructural drives the service through admission,
// ingest with shedding, every answer rung, a client retry, and a quota
// rejection, then checks the new service series through the same
// snapshot/exposition surface /metrics serves (ISSUE satellite 5). Values
// are deltas: the registry is the process-global Default shared with
// every other test in the binary.
func TestServiceMetricsStructural(t *testing.T) {
	before := telemetry.Default.Snapshot()

	_, h := newHTTPFixture(t, Config{})
	body := `{"tenant":"acme","attr":"price","lo":0,"hi":0.5}`
	do(t, h, "POST", "/v1/estimate", body, nil)                                      // snapshot or fresh rung
	do(t, h, "POST", "/v1/estimate", body, map[string]string{"X-Selest-Retry": "1"}) // retried

	// A second server with a tiny queue sheds into the same registry.
	s2 := New(Config{QueueCap: 8})
	if err := s2.CreateAttr("flood", "x", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if res, err := s2.Ingest("flood", "x", seq(100)); err != nil || res.Shed == 0 {
		t.Fatalf("shedding ingest: %+v, %v", res, err)
	}

	// And a third with a drained tenant moves the rejected counter.
	s3 := New(Config{QuotaRate: 1, QuotaBurst: 1})
	if err := s3.CreateAttr("broke", "x", testAttrCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Admit("broke", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Admit("broke", 1); err == nil {
		t.Fatal("drained tenant admitted")
	}

	after := telemetry.Default.Snapshot()
	counterMoved := func(name string) {
		t.Helper()
		if _, ok := after.Counters[name]; !ok {
			t.Fatalf("counter %s not registered", name)
		}
		if after.Counters[name] <= before.Counters[name] {
			t.Fatalf("counter %s did not move: %d -> %d", name, before.Counters[name], after.Counters[name])
		}
	}
	counterMoved("selest_server_admitted_total")
	counterMoved("selest_server_rejected_total")
	counterMoved("selest_server_retried_total")
	counterMoved("selest_server_shed_total")

	if _, ok := after.Gauges["selest_server_queue_depth"]; !ok {
		t.Fatal("queue-depth gauge not registered")
	}
	if _, ok := after.Gauges["selest_server_inflight_requests"]; !ok {
		t.Fatal("inflight gauge not registered")
	}

	lat, ok := after.Histograms["selest_server_request_nanos"]
	if !ok {
		t.Fatal("request-latency histogram not registered")
	}
	if lat.Count <= before.Histograms["selest_server_request_nanos"].Count {
		t.Fatalf("latency histogram did not move: %d -> %d",
			before.Histograms["selest_server_request_nanos"].Count, lat.Count)
	}

	// At least one per-rung answer series moved.
	var rungAnswers int64
	for _, name := range rungNames {
		rungAnswers += after.Counters[telemetry.Label("selest_server_answers_total", "rung", name)] -
			before.Counters[telemetry.Label("selest_server_answers_total", "rung", name)]
	}
	if rungAnswers <= 0 {
		t.Fatal("no selest_server_answers_total{rung=...} series moved")
	}

	// The Prometheus exposition renders the labeled family exactly once,
	// with the service series present.
	var buf bytes.Buffer
	if err := telemetry.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"selest_server_admitted_total",
		"selest_server_shed_total",
		"selest_server_queue_depth",
		"selest_server_request_nanos",
		`selest_server_answers_total{rung="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
}
