package server

import "sync"

// ingestQueue is the bounded buffer between the HTTP ingest handler and
// an attribute's reservoir: a fixed-capacity ring of values with
// shed-oldest overflow. The handler pushes and returns immediately —
// ingest latency never includes a reservoir lock — and a per-attribute
// drainer goroutine pops batches into online.Estimator.InsertBatch.
//
// Backpressure policy: when the producer outruns the drainer the ring
// sheds its *oldest* values (the ones a reservoir sample is least likely
// to miss — newer data carries the drift signal) and counts every shed in
// telemetry, so overload degrades sample freshness visibly instead of
// blocking the request path or growing without bound.
type ingestQueue struct {
	mu     sync.Mutex
	buf    []float64
	head   int // index of the oldest queued value
	size   int
	shed   int64
	closed bool
	// notify wakes the drainer; capacity 1 makes sends non-blocking and
	// coalesces bursts into one wakeup.
	notify chan struct{}
}

func newIngestQueue(capacity int) *ingestQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &ingestQueue{buf: make([]float64, capacity), notify: make(chan struct{}, 1)}
}

// push enqueues vs, shedding the oldest queued values when the ring is
// full. It reports how many of vs were queued and how many *old* values
// were shed to make room (a burst larger than the ring also sheds the
// burst's own oldest prefix). Pushing to a closed queue queues nothing.
func (q *ingestQueue) push(vs []float64) (queued, shed int) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, 0
	}
	cap := len(q.buf)
	if len(vs) >= cap {
		// The burst alone overwrites the whole ring: everything resident
		// plus the burst's own prefix is shed.
		shed = q.size + (len(vs) - cap)
		vs = vs[len(vs)-cap:]
		q.head, q.size = 0, 0
	}
	for _, v := range vs {
		if q.size == cap {
			q.head = (q.head + 1) % cap
			q.size--
			shed++
		}
		q.buf[(q.head+q.size)%cap] = v
		q.size++
	}
	queued = len(vs)
	q.shed += int64(shed)
	q.mu.Unlock()
	if queued > 0 {
		select {
		case q.notify <- struct{}{}:
		default:
		}
	}
	return queued, shed
}

// popWait moves up to max values into dst (reusing its capacity),
// blocking until values arrive or the queue is closed. It returns
// (nil, false) only when the queue is closed *and* empty, so a drainer
// looping on popWait drains every queued value before exiting — the
// graceful-shutdown guarantee.
func (q *ingestQueue) popWait(dst []float64, max int) ([]float64, bool) {
	for {
		q.mu.Lock()
		if q.size > 0 {
			n := q.size
			if n > max {
				n = max
			}
			dst = dst[:0]
			for i := 0; i < n; i++ {
				dst = append(dst, q.buf[q.head])
				q.head = (q.head + 1) % len(q.buf)
				q.size--
			}
			q.mu.Unlock()
			return dst, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.mu.Unlock()
		<-q.notify
	}
}

// close marks the queue closed and wakes the drainer. Idempotent.
func (q *ingestQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// depth returns how many values are queued.
func (q *ingestQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// shedCount returns how many values this queue has shed.
func (q *ingestQueue) shedCount() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shed
}
