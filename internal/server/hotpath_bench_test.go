// Request-path hot-path benchmarks (ISSUE 10): the inline dispatch
// engine measured in isolation (decode → admit → answer → encode →
// coalesced write, no socket) and end-to-end over real TCP with deep
// pipelining. Run via `make bench-hotpath`; committed baselines live in
// BENCH_hotpath.json and the before/after story in README's perf table.
package server

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"selest/internal/wire"
)

// BenchmarkHotpathEstimateInline is the tentpole's headline number: one
// server-side estimate round trip on the fast path. The allocs/op
// column is the zero-alloc contract (also pinned by
// TestWireFastPathEstimateZeroAllocs).
func BenchmarkHotpathEstimateInline(b *testing.B) {
	s := primedServer(b)
	fp, mc, _ := newMemFastPath(s)
	payload := wire.EstimateReq{Tenant: "acme", Attr: "price", Lo: 0.25, Hi: 0.75}.Append(nil)
	if !fp.serve(wire.OpEstimate, 0, payload, true) {
		b.Fatal("estimate not served inline")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.buf.Reset()
		if !fp.serve(wire.OpEstimate, uint64(i), payload, true) {
			b.Fatal("estimate fell off the fast path")
		}
	}
}

func BenchmarkHotpathEstimateBatchInline16(b *testing.B) {
	s := primedServer(b)
	fp, mc, _ := newMemFastPath(s)
	queries := make([]wire.Range, 16)
	for i := range queries {
		queries[i] = wire.Range{Lo: 0, Hi: float64(i+1) / 16}
	}
	payload := wire.EstimateBatchReq{Tenant: "acme", Attr: "price", Queries: queries}.Append(nil)
	if !fp.serve(wire.OpEstimateBatch, 0, payload, true) {
		b.Fatal("batch not served inline")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.buf.Reset()
		if !fp.serve(wire.OpEstimateBatch, uint64(i), payload, true) {
			b.Fatal("batch fell off the fast path")
		}
	}
}

func BenchmarkHotpathPingInline(b *testing.B) {
	s := primedServer(b)
	fp, mc, _ := newMemFastPath(s)
	payload := wire.PingReq{}.Append(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.buf.Reset()
		if !fp.serve(wire.OpPing, uint64(i), payload, true) {
			b.Fatal("ping fell off the fast path")
		}
	}
}

// BenchmarkHotpathEstimateWirePipelined is the end-to-end number: raw
// TCP, 64 estimates in flight, one ns/op per request. This is the
// single-conn analogue of the selestload wire benchmark in
// BENCH_service.json.
func BenchmarkHotpathEstimateWirePipelined(b *testing.B) {
	const depth = 64
	s := primedServer(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ws := s.NewWireServer()
	go func() { _ = ws.Serve(ln) }()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ws.Shutdown(ctx)
	})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)

	// One pre-encoded block of `depth` requests; ids repeat across
	// blocks, which the server does not mind — correlation is per frame.
	payload := wire.EstimateReq{Tenant: "acme", Attr: "price", Lo: 0.25, Hi: 0.75}.Append(nil)
	var block []byte
	for id := uint64(1); id <= depth; id++ {
		block = wire.AppendFrame(block, wire.Frame{Op: wire.OpEstimate, ID: id, Payload: payload})
	}
	frameLen := len(block) / depth

	var rbuf []byte
	readN := func(n int) {
		for j := 0; j < n; j++ {
			var f wire.Frame
			f, rbuf, err = wire.ReadFrame(br, wire.MaxPayload, rbuf)
			if err != nil {
				b.Fatal(err)
			}
			if f.Op != wire.OpEstimate|wire.RespFlag {
				b.Fatalf("response op %s", f.Op)
			}
		}
	}
	// Warm the path end to end before timing.
	if _, err := conn.Write(block[:frameLen]); err != nil {
		b.Fatal(err)
	}
	readN(1)

	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := depth
		if b.N-done < depth {
			n = b.N - done
		}
		if _, err := conn.Write(block[:n*frameLen]); err != nil {
			b.Fatal(err)
		}
		readN(n)
		done += n
	}
}
