// Package fsort provides a fast ascending sort for float64 slices.
//
// The fit path is dominated by sorting: the profile of a DPI fit at
// n = 10⁶ spends ~90% of its time in the comparison sort that feeds the
// shared fit context. An LSD radix sort over the IEEE-754 bit patterns
// replaces the O(n log n) comparison sort with at most eight O(n)
// counting passes (fewer in practice: passes whose byte is constant
// across the slice — common for data of limited range — are skipped),
// which is several times faster at the sample sizes the experiments run.
//
// Ordering is identical to sort.Float64s for every slice free of NaNs:
// the key transform (flip the sign bit of non-negatives, flip every bit
// of negatives) makes unsigned byte order agree with float order,
// including -Inf, +Inf and signed zeros (-0 and +0 compare equal, so
// either placement is a valid sort). Slices containing NaNs fall back to
// sort.Float64s to preserve its NaNs-first convention, as do short
// slices where the counting passes cannot pay for themselves.
package fsort

import (
	"math"
	"sort"
)

// radixMin is the slice length below which the comparison sort wins:
// the radix passes touch 256-entry count tables and two n-word buffers
// regardless of n.
const radixMin = 256

// Float64s sorts xs in ascending order. It is a drop-in replacement for
// sort.Float64s (same ordering, NaNs first), faster for large slices.
func Float64s(xs []float64) {
	if len(xs) < radixMin {
		sort.Float64s(xs)
		return
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			sort.Float64s(xs)
			return
		}
	}
	radixSortFloat64s(xs)
}

// radixSortFloat64s sorts a NaN-free slice by LSD radix passes over the
// order-preserving key transform of the IEEE-754 bit patterns.
func radixSortFloat64s(xs []float64) {
	n := len(xs)
	keys := make([]uint64, n)
	for i, x := range xs {
		b := math.Float64bits(x)
		// Non-negative: flip the sign bit. Negative: flip all bits.
		keys[i] = b ^ (uint64(int64(b)>>63) | 1<<63)
	}

	// All eight byte histograms in one pass over the keys.
	var hist [8][256]int
	for _, k := range keys {
		hist[0][k&0xff]++
		hist[1][k>>8&0xff]++
		hist[2][k>>16&0xff]++
		hist[3][k>>24&0xff]++
		hist[4][k>>32&0xff]++
		hist[5][k>>40&0xff]++
		hist[6][k>>48&0xff]++
		hist[7][k>>56&0xff]++
	}

	buf := make([]uint64, n)
	src, dst := keys, buf
	for pass := 0; pass < 8; pass++ {
		h := &hist[pass]
		// A pass whose byte is constant is the identity permutation.
		if h[src[0]>>(uint(pass)*8)&0xff] == n {
			continue
		}
		offset := 0
		for b := 0; b < 256; b++ {
			c := h[b]
			h[b] = offset
			offset += c
		}
		shift := uint(pass) * 8
		for _, k := range src {
			b := k >> shift & 0xff
			dst[h[b]] = k
			h[b]++
		}
		src, dst = dst, src
	}

	for i, k := range src {
		// Invert the key transform: the top bit tells which branch the
		// encoder took.
		xs[i] = math.Float64frombits(k ^ ((k>>63-1)&^(1<<63) | 1<<63))
	}
}
