package fsort

import (
	"math"
	"sort"
	"testing"

	"selest/internal/xrand"
)

// checkMatchesSort pins Float64s to sort.Float64s: identical multiset in
// identical order (bit-for-bit, except that -0/+0 and duplicate values
// are interchangeable — which == treats as equal anyway).
func checkMatchesSort(t *testing.T, xs []float64) {
	t.Helper()
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	got := append([]float64(nil), xs...)
	Float64s(got)
	if len(got) != len(want) {
		t.Fatalf("length changed: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("index %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFloat64sMatchesSort(t *testing.T) {
	r := xrand.New(1)
	cases := map[string][]float64{
		"empty":  {},
		"single": {3.5},
		"small":  {5, -2, 0, 11, -7, 3, 3, 1},
	}

	uniform := make([]float64, 10_000)
	for i := range uniform {
		uniform[i] = (r.Float64() - 0.5) * 2e6
	}
	cases["uniform"] = uniform

	// Limited-range data: high key bytes are constant, exercising the
	// skipped-pass path.
	narrow := make([]float64, 5_000)
	for i := range narrow {
		narrow[i] = 1e5 + r.Float64()
	}
	cases["narrow"] = narrow

	dups := make([]float64, 4_000)
	for i := range dups {
		dups[i] = float64(i % 17)
	}
	cases["duplicates"] = dups

	sortedIn := append([]float64(nil), uniform...)
	sort.Float64s(sortedIn)
	cases["already-sorted"] = sortedIn

	reversed := make([]float64, len(sortedIn))
	for i, x := range sortedIn {
		reversed[len(reversed)-1-i] = x
	}
	cases["reversed"] = reversed

	specials := make([]float64, 0, 2_000)
	for i := 0; i < 1_990; i++ {
		specials = append(specials, (r.Float64()-0.5)*1e300)
	}
	specials = append(specials, math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		-math.SmallestNonzeroFloat64, 1e-300, -1e-300)
	cases["specials"] = specials

	nans := append([]float64(nil), uniform[:1000]...)
	nans = append(nans, math.NaN(), math.NaN())
	cases["nan-fallback"] = nans

	for name, xs := range cases {
		t.Run(name, func(t *testing.T) { checkMatchesSort(t, xs) })
	}
}

func FuzzFloat64s(f *testing.F) {
	f.Add(uint64(7), 1000)
	f.Add(uint64(42), 300)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 || n > 20_000 {
			t.Skip()
		}
		r := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			// Bit-pattern-random floats: covers denormals, infinities,
			// and wildly mixed magnitudes. NaN patterns are skipped so
			// the radix path (not the fallback) is what's fuzzed.
			x := math.Float64frombits(r.Uint64())
			if math.IsNaN(x) {
				x = r.Float64()
			}
			xs[i] = x
		}
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		Float64s(xs)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("index %d: got %v, want %v", i, xs[i], want[i])
			}
		}
	})
}

func BenchmarkFitSortRadix(b *testing.B) {
	r := xrand.New(3)
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = r.Float64() * 1e6
	}
	scratch := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, xs)
		Float64s(scratch)
	}
}

func BenchmarkFitSortStdlib(b *testing.B) {
	r := xrand.New(3)
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = r.Float64() * 1e6
	}
	scratch := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, xs)
		sort.Float64s(scratch)
	}
}
