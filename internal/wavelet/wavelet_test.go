package wavelet

import (
	"math"

	"testing"
	"testing/quick"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func uniformSamples(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 1000
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{DomainHi: 1}); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := New([]float64{1}, Config{DomainLo: 1, DomainHi: 1}); err == nil {
		t.Fatal("empty domain should error")
	}
}

func TestFullCoefficientsReconstructExactly(t *testing.T) {
	// Keeping every coefficient must reproduce the per-cell mass fractions
	// exactly (the Haar transform is orthogonal).
	samples := uniformSamples(500, 1)
	const grid = 64
	e, err := New(samples, Config{Grid: grid, Coefficients: grid, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(samples))
	width := 1000.0 / grid
	want := make([]float64, grid)
	for _, x := range samples {
		i := int(x / width)
		if i >= grid {
			i = grid - 1
		}
		want[i] += 1 / n
	}
	for cell := 0; cell < grid; cell++ {
		if got := e.freqAt(cell); !xmath.AlmostEqual(got, want[cell], 1e-9) {
			t.Fatalf("cell %d: reconstructed mass %v, want %v", cell, got, want[cell])
		}
	}
}

func TestThresholdedBlockAveraging(t *testing.T) {
	// With only the average coefficient kept, every cell reconstructs to
	// the global mean mass — the flattest possible histogram, not zero.
	samples := uniformSamples(1000, 8)
	const grid = 32
	e, err := New(samples, Config{Grid: grid, Coefficients: 1, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < grid; cell++ {
		if got := e.freqAt(cell); math.Abs(got-1.0/grid) > 1e-9 {
			t.Fatalf("cell %d: mass %v, want uniform %v", cell, got, 1.0/grid)
		}
	}
}

func TestGridRoundsToPowerOfTwo(t *testing.T) {
	e, err := New(uniformSamples(100, 2), Config{Grid: 100, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if e.Grid() != 128 {
		t.Fatalf("Grid = %d, want 128", e.Grid())
	}
}

func TestSelectivityAccuracyUniform(t *testing.T) {
	samples := uniformSamples(2000, 3)
	e, err := New(samples, Config{DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{0, 100}, {250, 500}, {450, 550}, {900, 1000}} {
		want := (q[1] - q[0]) / 1000
		got := e.Selectivity(q[0], q[1])
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("σ̂(%v,%v) = %v, want ~%v", q[0], q[1], got, want)
		}
	}
	if e.Selectivity(10, 5) != 0 {
		t.Fatal("inverted query should be 0")
	}
}

func TestSelectivityAccuracySkewed(t *testing.T) {
	// Exponential data: the synopsis must track the skew with few
	// coefficients (this is the wavelet histogram's selling point).
	r := xrand.New(4)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = math.Min(r.Exponential(0.01), 1000)
	}
	e, err := New(samples, Config{Coefficients: 64, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// P(X <= 100) = 1 − e^{−1} ≈ 0.632 for Exp(0.01).
	if got := e.Selectivity(0, 100); math.Abs(got-0.632) > 0.05 {
		t.Fatalf("σ̂(0,100) = %v, want ~0.632", got)
	}
	// Deep tail nearly empty.
	if got := e.Selectivity(800, 1000); got > 0.02 {
		t.Fatalf("tail σ̂ = %v, want ~0", got)
	}
}

func TestMoreCoefficientsResolveStructure(t *testing.T) {
	// On skewed data the density has real structure: a tiny synopsis
	// over-smooths it and a larger one must reduce the error. (On uniform
	// data the opposite holds — fewer coefficients mean beneficial
	// smoothing of sampling noise — which is the classic bias/variance
	// trade, not a defect.)
	r := xrand.New(5)
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = math.Min(r.Exponential(0.02), 1000) // mean 50, sharp left peak
	}
	errAt := func(m int) float64 {
		e, err := New(samples, Config{Coefficients: m, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for a := 0.0; a < 290; a += 10 {
			got := e.Selectivity(a, a+10)
			want := math.Exp(-0.02*a) - math.Exp(-0.02*(a+10))
			total += math.Abs(got - want)
		}
		return total
	}
	if e2, e64 := errAt(2), errAt(64); e64 >= e2 {
		t.Fatalf("structure not resolved: m=2 err %v, m=64 err %v", e2, e64)
	}
}

func TestCoefficientsAccessor(t *testing.T) {
	e, err := New(uniformSamples(100, 6), Config{Coefficients: 16, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if e.Coefficients() > 16 || e.Coefficients() < 1 {
		t.Fatalf("Coefficients = %d", e.Coefficients())
	}
	if e.Name() != "wavelet" {
		t.Fatalf("Name = %q", e.Name())
	}
}

// Property: CDF is monotone and selectivity within [0,1].
func TestQuickWaveletInvariants(t *testing.T) {
	samples := uniformSamples(500, 7)
	e, err := New(samples, Config{Coefficients: 32, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawA, rawW uint8) bool {
		a := float64(rawA) / 255 * 900
		w := float64(rawW) / 255 * 100
		s := e.Selectivity(a, a+w)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
