// Package wavelet implements a Haar-wavelet synopsis estimator for range
// selectivities, after Matias, Vitter & Wang, "Wavelet-Based Histograms
// for Selectivity Estimation" (SIGMOD 1998) — reference [4] of the paper
// and its closest contemporary competitor.
//
// The sample's frequency vector over a dyadic grid is Haar-transformed and
// only the m largest-magnitude (orthonormally scaled) coefficients are
// kept. Dropping a fine detail coefficient replaces the two halves of its
// block by their average, so the reconstruction behaves like an
// equi-width histogram whose resolution adapts to where the density has
// structure — coarse where it is flat, fine where the retained
// coefficients say it varies. A range query reconstructs each overlapped
// cell's frequency in O(log G).
package wavelet

import (
	"fmt"
	"math"
	"sort"
)

// Estimator is a wavelet-synopsis selectivity estimator. Construct with
// New; immutable afterwards and safe for concurrent use.
type Estimator struct {
	lo, hi float64
	grid   int // power of two
	levels int
	// coeffs holds the retained Haar coefficients of the per-cell
	// frequency vector, in the standard decomposition layout (index 0 =
	// scaled overall average, details of level l at [2^l, 2^{l+1})).
	coeffs map[int]float64
	kept   int
}

// Config parameterises the estimator.
type Config struct {
	// Grid is the dyadic grid resolution; rounded up to a power of two.
	// Zero defaults to 1024.
	Grid int
	// Coefficients is the synopsis size m (number of retained wavelet
	// coefficients). Zero defaults to 64 — comparable to a 64-bin
	// histogram's footprint.
	Coefficients int
	// DomainLo/DomainHi bound the attribute domain. Required.
	DomainLo, DomainHi float64
}

// New builds the estimator from a sample set.
func New(samples []float64, cfg Config) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("wavelet: empty sample set")
	}
	if !(cfg.DomainHi > cfg.DomainLo) {
		return nil, fmt.Errorf("wavelet: domain [%v, %v] is empty", cfg.DomainLo, cfg.DomainHi)
	}
	grid := cfg.Grid
	if grid <= 0 {
		grid = 1024
	}
	grid = nextPow2(grid)
	m := cfg.Coefficients
	if m <= 0 {
		m = 64
	}

	// Per-cell mass fractions of the sample.
	n := float64(len(samples))
	width := (cfg.DomainHi - cfg.DomainLo) / float64(grid)
	freq := make([]float64, grid)
	for _, x := range samples {
		if x < cfg.DomainLo || x > cfg.DomainHi {
			continue
		}
		i := int((x - cfg.DomainLo) / width)
		if i >= grid {
			i = grid - 1
		}
		freq[i] += 1 / n
	}

	// In-place Haar decomposition with orthonormal (1/√2) scaling so
	// coefficient magnitudes are comparable across levels, making "keep
	// the m largest" the L2-optimal thresholding rule.
	work := append([]float64(nil), freq...)
	length := grid
	levels := 0
	for length > 1 {
		half := length / 2
		tmp := make([]float64, length)
		for i := 0; i < half; i++ {
			a, b := work[2*i], work[2*i+1]
			tmp[i] = (a + b) / math.Sqrt2
			tmp[half+i] = (a - b) / math.Sqrt2
		}
		copy(work[:length], tmp)
		length = half
		levels++
	}

	// Keep the m largest-magnitude coefficients; always keep index 0 (the
	// total mass — dropping it rescales everything).
	type ic struct {
		i int
		v float64
	}
	all := make([]ic, 0, grid)
	for i, v := range work {
		if v != 0 {
			all = append(all, ic{i, v})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].i == 0 {
			return true
		}
		if all[b].i == 0 {
			return false
		}
		return math.Abs(all[a].v) > math.Abs(all[b].v)
	})
	if m > len(all) {
		m = len(all)
	}
	e := &Estimator{
		lo: cfg.DomainLo, hi: cfg.DomainHi,
		grid: grid, levels: levels,
		coeffs: make(map[int]float64, m),
		kept:   m,
	}
	for _, c := range all[:m] {
		e.coeffs[c.i] = c.v
	}
	return e, nil
}

// nextPow2 rounds up to a power of two.
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// freqAt reconstructs the synopsis mass fraction of one grid cell from
// the sparse coefficients in O(levels). Thresholding can produce small
// negative values; callers clamp.
func (e *Estimator) freqAt(cell int) float64 {
	// Inverse Haar walk from the root: at each level the running value v
	// splits into (v+d)/√2 (left half) and (v−d)/√2 (right half).
	v := e.coeffs[0]
	pos := 0 // block index within the current level
	for level := 0; level < e.levels; level++ {
		size := 1 << level // number of detail coefficients at this level
		d := e.coeffs[size+pos]
		shift := e.levels - level - 1
		bit := (cell >> shift) & 1
		if bit == 0 {
			v = (v + d) / math.Sqrt2
		} else {
			v = (v - d) / math.Sqrt2
		}
		pos = pos*2 + bit
	}
	return v
}

// Selectivity returns the estimated selectivity σ̂(a,b) ∈ [0,1]: the sum
// of the overlapped cells' reconstructed masses, partial cells prorated
// under the uniform-spread assumption.
func (e *Estimator) Selectivity(a, b float64) float64 {
	if b < a {
		return 0
	}
	a = math.Max(a, e.lo)
	b = math.Min(b, e.hi)
	if b < a {
		return 0
	}
	width := (e.hi - e.lo) / float64(e.grid)
	c0 := int((a - e.lo) / width)
	c1 := int((b - e.lo) / width)
	if c0 >= e.grid {
		c0 = e.grid - 1
	}
	if c1 >= e.grid {
		c1 = e.grid - 1
	}
	sum := 0.0
	for c := c0; c <= c1; c++ {
		f := e.freqAt(c)
		if f <= 0 {
			continue
		}
		cellLo := e.lo + float64(c)*width
		overlap := math.Min(b, cellLo+width) - math.Max(a, cellLo)
		if overlap <= 0 {
			continue
		}
		sum += f * overlap / width
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Coefficients returns the number of retained wavelet coefficients.
func (e *Estimator) Coefficients() int { return e.kept }

// Grid returns the dyadic grid resolution.
func (e *Estimator) Grid() int { return e.grid }

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string { return "wavelet" }
