package errmetrics

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/query"
)

func TestQError(t *testing.T) {
	cases := []struct{ est, truth, floor, want float64 }{
		{100, 100, 1, 1}, // perfect
		{200, 100, 1, 2}, // 2× over
		{50, 100, 1, 2},  // 2× under — symmetric
		{0, 100, 1, 100}, // zero estimate floored to 1
		{100, 0, 1, 100}, // empty truth floored to 1
		{0, 0, 1, 1},     // both empty: perfect
		{10, 100, 20, 5}, // floor raises the estimate side
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth, c.floor); !almostEq(got, c.want) {
			t.Errorf("QError(%v, %v, %v) = %v, want %v", c.est, c.truth, c.floor, got, c.want)
		}
	}
	if got := QError(50, 100, 0); got != 2 {
		t.Errorf("default floor: %v", got)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestQErrorsSummary(t *testing.T) {
	w := &query.Workload{
		Queries:    []query.Query{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 4}},
		TrueCounts: []int{100, 100, 100, 100},
		N:          1000,
	}
	// Constant σ̂ = 0.1 → est 100 → q-error exactly 1 everywhere.
	s := QErrors(constEstimator(0.1), w)
	if s.Mean != 1 || s.Median != 1 || s.P90 != 1 || s.P99 != 1 || s.Max != 1 {
		t.Fatalf("perfect estimator summary = %+v", s)
	}
	// Constant σ̂ = 0.2 → est 200 → q-error 2 everywhere.
	s = QErrors(constEstimator(0.2), w)
	if s.Mean != 2 || s.Max != 2 {
		t.Fatalf("2× estimator summary = %+v", s)
	}
}

func TestQErrorsEmptyWorkload(t *testing.T) {
	s := QErrors(constEstimator(0.1), &query.Workload{N: 10})
	if s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty workload summary = %+v", s)
	}
}

func TestQErrorsOrdering(t *testing.T) {
	w := &query.Workload{
		Queries:    []query.Query{{A: 0, B: 1}, {A: 1, B: 2}},
		TrueCounts: []int{100, 400},
		N:          1000,
	}
	s := QErrors(constEstimator(0.2), w) // est 200: q-errors 2 and 2
	if s.Median > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
}

// Property: q-error is symmetric in est/true and always >= 1.
func TestQuickQErrorInvariants(t *testing.T) {
	prop := func(rawA, rawB uint16) bool {
		a := float64(rawA) + 1
		b := float64(rawB) + 1
		qe := QError(a, b, 1)
		return qe >= 1 && almostEq(qe, QError(b, a, 1))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
