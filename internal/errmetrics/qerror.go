package errmetrics

import (
	"math"
	"sort"

	"selest/internal/query"
)

// QError returns the q-error of one estimate against a truth:
// max(est/true, true/est), the multiplicative error measure used in the
// modern cardinality-estimation literature. Both sides are floored at
// floor (in records) so empty results and zero estimates yield finite,
// comparable values; floor <= 0 defaults to 1 record.
func QError(estRecords, trueRecords, floor float64) float64 {
	if floor <= 0 {
		floor = 1
	}
	e := math.Max(estRecords, floor)
	tr := math.Max(trueRecords, floor)
	return math.Max(e/tr, tr/e)
}

// QErrorSummary aggregates q-errors over a workload.
type QErrorSummary struct {
	// Mean, Median, P90, P99 and Max summarise the per-query q-error
	// distribution. A perfect estimator scores 1 everywhere.
	Mean, Median, P90, P99, Max float64
}

// QErrors evaluates the estimator on every query of the workload and
// returns the summary. An empty workload yields a zero summary.
func QErrors(e Estimator, w *query.Workload) QErrorSummary {
	if len(w.Queries) == 0 {
		return QErrorSummary{}
	}
	qs := make([]float64, len(w.Queries))
	sum := 0.0
	for i, q := range w.Queries {
		est := e.Selectivity(q.A, q.B) * float64(w.N)
		qs[i] = QError(est, float64(w.TrueCounts[i]), 1)
		sum += qs[i]
	}
	sort.Float64s(qs)
	pick := func(p float64) float64 {
		i := int(p * float64(len(qs)-1))
		return qs[i]
	}
	return QErrorSummary{
		Mean:   sum / float64(len(qs)),
		Median: pick(0.5),
		P90:    pick(0.9),
		P99:    pick(0.99),
		Max:    qs[len(qs)-1],
	}
}
