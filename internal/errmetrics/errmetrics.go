// Package errmetrics evaluates selectivity estimators against query
// workloads with known ground truth: the mean relative error (the paper's
// MRE, §5.1.2), the mean absolute error, and the error-versus-position
// curves behind figures 3 and 10.
package errmetrics

import (
	"math"

	"selest/internal/query"
)

// Estimator is the minimal estimator surface this package needs; every
// selectivity estimator in the repository satisfies it.
type Estimator interface {
	Selectivity(a, b float64) float64
}

// MRE returns the mean relative error of the estimator over the workload:
//
//	MRE = (1/|F|) Σ_Q | |Q| − σ̂·N | / |Q|
//
// exactly as paper §5.1.2 defines it. Queries with an empty true result
// are skipped (the relative error is undefined there); skipped reports how
// many. If every query is empty, MRE returns NaN.
func MRE(e Estimator, w *query.Workload) (mre float64, skipped int) {
	sum, used := 0.0, 0
	for i, q := range w.Queries {
		trueCount := float64(w.TrueCounts[i])
		if trueCount == 0 {
			skipped++
			continue
		}
		est := e.Selectivity(q.A, q.B) * float64(w.N)
		sum += math.Abs(trueCount-est) / trueCount
		used++
	}
	if used == 0 {
		return math.NaN(), skipped
	}
	return sum / float64(used), skipped
}

// MAE returns the mean absolute error in records:
// (1/|F|) Σ_Q | |Q| − σ̂·N |. All queries count, including empty ones.
func MAE(e Estimator, w *query.Workload) float64 {
	if len(w.Queries) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i, q := range w.Queries {
		est := e.Selectivity(q.A, q.B) * float64(w.N)
		sum += math.Abs(float64(w.TrueCounts[i]) - est)
	}
	return sum / float64(len(w.Queries))
}

// PositionError is one point of an error-versus-position curve.
type PositionError struct {
	// Pos is the query's left edge.
	Pos float64
	// Signed is the signed absolute error in records, σ̂·N − |Q|
	// (Fig. 3 plots this).
	Signed float64
	// Relative is |σ̂·N − |Q|| / |Q|, or NaN for empty queries
	// (Fig. 10 plots this).
	Relative float64
}

// ByPosition evaluates the estimator on a position-sweep workload and
// returns one point per query, in sweep order.
func ByPosition(e Estimator, w *query.Workload) []PositionError {
	out := make([]PositionError, len(w.Queries))
	for i, q := range w.Queries {
		est := e.Selectivity(q.A, q.B) * float64(w.N)
		trueCount := float64(w.TrueCounts[i])
		pe := PositionError{Pos: q.A, Signed: est - trueCount}
		if trueCount > 0 {
			pe.Relative = math.Abs(est-trueCount) / trueCount
		} else {
			pe.Relative = math.NaN()
		}
		out[i] = pe
	}
	return out
}

// MaxAbsSigned returns the largest |Signed| over the curve — the headline
// number of Fig. 3 ("an absolute error of up to 500 occurs").
func MaxAbsSigned(points []PositionError) float64 {
	worst := 0.0
	for _, p := range points {
		if a := math.Abs(p.Signed); a > worst {
			worst = a
		}
	}
	return worst
}

// MeanRelative averages the finite Relative values of a curve.
func MeanRelative(points []PositionError) float64 {
	sum, n := 0.0, 0
	for _, p := range points {
		if !math.IsNaN(p.Relative) {
			sum += p.Relative
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
