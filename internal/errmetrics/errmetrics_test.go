package errmetrics

import (
	"math"
	"testing"

	"selest/internal/query"
)

// constEstimator returns a fixed selectivity for every query.
type constEstimator float64

func (c constEstimator) Selectivity(a, b float64) float64 { return float64(c) }

// exactEstimator returns the true selectivity from a workload lookup.
type exactEstimator struct{ w *query.Workload }

func (e exactEstimator) Selectivity(a, b float64) float64 {
	for i, q := range e.w.Queries {
		if q.A == a && q.B == b {
			return e.w.TrueSelectivity(i)
		}
	}
	return 0
}

func makeWorkload() *query.Workload {
	return &query.Workload{
		Queries:    []query.Query{{A: 0, B: 10}, {A: 10, B: 20}, {A: 20, B: 30}},
		TrueCounts: []int{100, 50, 0},
		SizeFrac:   0.1,
		N:          1000,
	}
}

func TestMREPerfectEstimator(t *testing.T) {
	w := makeWorkload()
	mre, skipped := MRE(exactEstimator{w}, w)
	if mre != 0 {
		t.Fatalf("perfect estimator MRE = %v, want 0", mre)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the empty query)", skipped)
	}
}

func TestMREConstEstimator(t *testing.T) {
	w := makeWorkload()
	// σ̂ = 0.1 → est counts 100: errors |100−100|/100 = 0, |50−100|/50 = 1.
	mre, skipped := MRE(constEstimator(0.1), w)
	if math.Abs(mre-0.5) > 1e-12 {
		t.Fatalf("MRE = %v, want 0.5", mre)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d", skipped)
	}
}

func TestMREAllEmpty(t *testing.T) {
	w := &query.Workload{
		Queries:    []query.Query{{A: 0, B: 1}},
		TrueCounts: []int{0},
		N:          10,
	}
	mre, skipped := MRE(constEstimator(0), w)
	if !math.IsNaN(mre) || skipped != 1 {
		t.Fatalf("all-empty workload: MRE=%v skipped=%d", mre, skipped)
	}
}

func TestMAE(t *testing.T) {
	w := makeWorkload()
	// est counts: 100, 100, 100 → abs errors 0, 50, 100.
	mae := MAE(constEstimator(0.1), w)
	if math.Abs(mae-50) > 1e-12 {
		t.Fatalf("MAE = %v, want 50", mae)
	}
	if !math.IsNaN(MAE(constEstimator(0), &query.Workload{N: 10})) {
		t.Fatal("empty workload MAE should be NaN")
	}
}

func TestByPosition(t *testing.T) {
	w := makeWorkload()
	points := ByPosition(constEstimator(0.1), w)
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if points[0].Pos != 0 || points[0].Signed != 0 {
		t.Fatalf("point 0 = %+v", points[0])
	}
	if points[1].Signed != 50 {
		t.Fatalf("point 1 signed = %v, want 50", points[1].Signed)
	}
	if points[1].Relative != 1 {
		t.Fatalf("point 1 relative = %v, want 1", points[1].Relative)
	}
	if !math.IsNaN(points[2].Relative) {
		t.Fatal("empty-query relative error must be NaN")
	}
	if points[2].Signed != 100 {
		t.Fatalf("point 2 signed = %v, want 100", points[2].Signed)
	}
}

func TestMaxAbsSigned(t *testing.T) {
	pts := []PositionError{{Signed: -30}, {Signed: 10}, {Signed: 25}}
	if got := MaxAbsSigned(pts); got != 30 {
		t.Fatalf("MaxAbsSigned = %v, want 30", got)
	}
	if MaxAbsSigned(nil) != 0 {
		t.Fatal("empty curve should give 0")
	}
}

func TestMeanRelative(t *testing.T) {
	pts := []PositionError{{Relative: 0.2}, {Relative: 0.4}, {Relative: math.NaN()}}
	if got := MeanRelative(pts); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MeanRelative = %v, want 0.3", got)
	}
	if !math.IsNaN(MeanRelative([]PositionError{{Relative: math.NaN()}})) {
		t.Fatal("all-NaN curve should give NaN")
	}
}
