package histogram

import "fmt"

// ASH is the average shifted histogram (paper §3.1): m equi-width
// histograms with identical bin width but starting points offset by
// width/m, whose estimates are averaged. Averaging smooths away most of
// the jump-point artefacts of a single histogram at the cost of m-fold
// build work.
type ASH struct {
	shifts []*Histogram
	lo, hi float64
}

// BuildASH builds an average shifted histogram over [lo, hi] with k bins
// per shift and m shifts.
func BuildASH(samples []float64, k, m int, lo, hi float64) (*ASH, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("histogram: ASH needs k >= 1 bins and m >= 1 shifts, got k=%d m=%d", k, m)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("histogram: domain [%v, %v] is empty", lo, hi)
	}
	width := (hi - lo) / float64(k)
	sorted := sortedCopy(samples)
	a := &ASH{lo: lo, hi: hi, shifts: make([]*Histogram, 0, m)}
	for s := 0; s < m; s++ {
		offset := width * float64(s) / float64(m)
		// Each shifted histogram extends one bin beyond the domain on the
		// left so that every sample stays covered; the extra bin is clipped
		// by Selectivity's query range anyway.
		bounds := make([]float64, k+2)
		for i := range bounds {
			bounds[i] = lo - width + offset + float64(i)*width
		}
		h, err := newHistogram("equi-width", bounds, sorted)
		if err != nil {
			return nil, err
		}
		a.shifts = append(a.shifts, h)
	}
	return a, nil
}

// Selectivity averages the shifted histograms' estimates.
func (a *ASH) Selectivity(qa, qb float64) float64 {
	if qb < qa {
		return 0
	}
	sum := 0.0
	for _, h := range a.shifts {
		sum += h.Selectivity(qa, qb)
	}
	return sum / float64(len(a.shifts))
}

// Density averages the shifted histograms' density estimates.
func (a *ASH) Density(x float64) float64 {
	sum := 0.0
	for _, h := range a.shifts {
		sum += h.Density(x)
	}
	return sum / float64(len(a.shifts))
}

// Shifts returns the number of component histograms m.
func (a *ASH) Shifts() int { return len(a.shifts) }

// Name identifies the estimator in experiment output.
func (a *ASH) Name() string { return "ash" }
