package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func TestBuildGrid2DValidation(t *testing.T) {
	if _, err := BuildGrid2D(nil, nil, 2, 2, 0, 1, 0, 1); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := BuildGrid2D([]float64{1}, []float64{1, 2}, 2, 2, 0, 1, 0, 1); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := BuildGrid2D([]float64{1}, []float64{1}, 0, 2, 0, 1, 0, 1); err == nil {
		t.Fatal("kx=0 should error")
	}
	if _, err := BuildGrid2D([]float64{1}, []float64{1}, 2, 2, 1, 1, 0, 1); err == nil {
		t.Fatal("empty domain should error")
	}
}

func TestGrid2DExactCells(t *testing.T) {
	// Four points, one per quadrant of [0,2]².
	xs := []float64{0.5, 1.5, 0.5, 1.5}
	ys := []float64{0.5, 0.5, 1.5, 1.5}
	g, err := BuildGrid2D(xs, ys, 2, 2, 0, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kx, ky := g.Cells(); kx != 2 || ky != 2 {
		t.Fatalf("Cells = %d×%d", kx, ky)
	}
	// One full quadrant = 1/4 of the mass.
	if got := g.Selectivity(0, 1, 0, 1); !xmath.AlmostEqual(got, 0.25, 1e-12) {
		t.Fatalf("quadrant σ̂ = %v", got)
	}
	// Whole domain.
	if got := g.Selectivity(0, 2, 0, 2); !xmath.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("whole σ̂ = %v", got)
	}
	// Half a quadrant in x: uniform spread halves the cell mass.
	if got := g.Selectivity(0, 0.5, 0, 1); !xmath.AlmostEqual(got, 0.125, 1e-12) {
		t.Fatalf("half-cell σ̂ = %v", got)
	}
	if g.Selectivity(1, 0, 0, 1) != 0 {
		t.Fatal("inverted window should be 0")
	}
}

func TestGrid2DAccuracyUniform(t *testing.T) {
	r := xrand.New(1)
	n := 20000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 100
		ys[i] = r.Float64() * 100
	}
	g, err := BuildGrid2D(xs, ys, 10, 10, 0, 100, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 30×30 window on uniform data: σ = 0.09.
	if got := g.Selectivity(20, 50, 40, 70); math.Abs(got-0.09) > 0.01 {
		t.Fatalf("window σ̂ = %v, want ~0.09", got)
	}
}

func TestGrid2DIgnoresOutOfDomain(t *testing.T) {
	xs := []float64{0.5, 99}
	ys := []float64{0.5, 99}
	g, err := BuildGrid2D(xs, ys, 2, 2, 0, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only the in-domain point counts; n stays 2 so mass outside is lost
	// (documented behaviour: ignored samples dilute, like the paper's
	// truncation of out-of-domain records).
	if got := g.Selectivity(0, 1, 0, 1); !xmath.AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("σ̂ = %v, want 0.5", got)
	}
}

// Property: selectivity is within [0,1], monotone under window growth, and
// additive over an x-split.
func TestQuickGrid2DInvariants(t *testing.T) {
	r := xrand.New(2)
	n := 3000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.NormalMeanStd(50, 20)
		ys[i] = r.NormalMeanStd(50, 20)
	}
	g, err := BuildGrid2D(xs, ys, 8, 8, 0, 100, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawA, rawW uint8) bool {
		ax := float64(rawA) / 255 * 80
		w := float64(rawW) / 255 * 20
		mx := ax + w/2
		s := g.Selectivity(ax, ax+w, 30, 70)
		parts := g.Selectivity(ax, mx, 30, 70) + g.Selectivity(mx, ax+w, 30, 70)
		grown := g.Selectivity(ax-1, ax+w+1, 29, 71)
		return s >= 0 && s <= 1 && grown >= s-1e-12 && xmath.AlmostEqual(s, parts, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
