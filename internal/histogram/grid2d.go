package histogram

import (
	"fmt"
	"math"
)

// Grid2D is a two-dimensional equi-width grid histogram over paired
// attributes — the histogram counterpart of the 2-D product-kernel
// estimator in internal/kde, and the classical multidimensional
// statistics structure in database systems. Each cell assumes uniform
// spread, exactly like the 1-D bins of paper §3.1.
type Grid2D struct {
	loX, hiX, loY, hiY float64
	kx, ky             int
	counts             []int // row-major: counts[iy*kx + ix]
	n                  int
}

// BuildGrid2D builds a kx×ky grid over [loX,hiX]×[loY,hiY] from paired
// samples. Samples outside the domain are ignored.
func BuildGrid2D(xs, ys []float64, kx, ky int, loX, hiX, loY, hiY float64) (*Grid2D, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("histogram: need equal, non-zero sample slices, got %d/%d", len(xs), len(ys))
	}
	if kx < 1 || ky < 1 {
		return nil, fmt.Errorf("histogram: grid dimensions must be >= 1, got %d×%d", kx, ky)
	}
	if !(hiX > loX) || !(hiY > loY) {
		return nil, fmt.Errorf("histogram: empty grid domain")
	}
	g := &Grid2D{
		loX: loX, hiX: hiX, loY: loY, hiY: hiY,
		kx: kx, ky: ky,
		counts: make([]int, kx*ky),
		n:      len(xs),
	}
	wx := (hiX - loX) / float64(kx)
	wy := (hiY - loY) / float64(ky)
	for i := range xs {
		x, y := xs[i], ys[i]
		if x < loX || x > hiX || y < loY || y > hiY {
			continue
		}
		ix := int((x - loX) / wx)
		if ix >= kx {
			ix = kx - 1
		}
		iy := int((y - loY) / wy)
		if iy >= ky {
			iy = ky - 1
		}
		g.counts[iy*kx+ix]++
	}
	return g, nil
}

// Selectivity estimates the fraction of records in the window
// [ax,bx]×[ay,by] under the per-cell uniform-spread assumption.
func (g *Grid2D) Selectivity(ax, bx, ay, by float64) float64 {
	if bx < ax || by < ay || g.n == 0 {
		return 0
	}
	wx := (g.hiX - g.loX) / float64(g.kx)
	wy := (g.hiY - g.loY) / float64(g.ky)
	// Cell index ranges overlapping the window.
	ix0 := clampIdx(int((ax-g.loX)/wx), g.kx)
	ix1 := clampIdx(int(math.Ceil((bx-g.loX)/wx))-1, g.kx)
	iy0 := clampIdx(int((ay-g.loY)/wy), g.ky)
	iy1 := clampIdx(int(math.Ceil((by-g.loY)/wy))-1, g.ky)

	sum := 0.0
	for iy := iy0; iy <= iy1; iy++ {
		cellLoY := g.loY + float64(iy)*wy
		fy := overlapFrac(ay, by, cellLoY, cellLoY+wy)
		if fy == 0 {
			continue
		}
		for ix := ix0; ix <= ix1; ix++ {
			c := g.counts[iy*g.kx+ix]
			if c == 0 {
				continue
			}
			cellLoX := g.loX + float64(ix)*wx
			fx := overlapFrac(ax, bx, cellLoX, cellLoX+wx)
			sum += float64(c) * fx * fy
		}
	}
	s := sum / float64(g.n)
	if s > 1 {
		return 1
	}
	return s
}

// overlapFrac returns the fraction of [cellLo, cellHi] covered by [a, b].
func overlapFrac(a, b, cellLo, cellHi float64) float64 {
	o := math.Min(b, cellHi) - math.Max(a, cellLo)
	if o <= 0 {
		return 0
	}
	return o / (cellHi - cellLo)
}

func clampIdx(i, k int) int {
	if i < 0 {
		return 0
	}
	if i >= k {
		return k - 1
	}
	return i
}

// Cells returns the grid dimensions.
func (g *Grid2D) Cells() (kx, ky int) { return g.kx, g.ky }

// SampleSize returns the number of samples.
func (g *Grid2D) SampleSize() int { return g.n }

// Name identifies the estimator in experiment output.
func (g *Grid2D) Name() string { return "grid2d" }
