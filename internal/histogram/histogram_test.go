package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func TestBuildEquiWidthValidation(t *testing.T) {
	if _, err := BuildEquiWidth(nil, 0, 0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := BuildEquiWidth(nil, 3, 1, 1); err == nil {
		t.Fatal("empty domain should error")
	}
}

func TestEquiWidthBasics(t *testing.T) {
	h, err := BuildEquiWidth([]float64{0.5, 1.5, 1.6, 2.5, 3.5}, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 4 || h.SampleSize() != 5 || h.Kind() != "equi-width" {
		t.Fatalf("basics wrong: bins=%d n=%d kind=%s", h.Bins(), h.SampleSize(), h.Kind())
	}
	counts := h.Counts()
	want := []int{1, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestEquiWidthSelectivityExactBins(t *testing.T) {
	h, err := BuildEquiWidth([]float64{0.5, 1.5, 1.6, 2.5}, 4, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Query exactly covering bin 1 ((1,2], 2 samples of 4).
	if got := h.Selectivity(1, 2); !xmath.AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("bin query = %v, want 0.5", got)
	}
	// Half a bin: uniform-spread assumption gives half the bin's mass.
	if got := h.Selectivity(1, 1.5); !xmath.AlmostEqual(got, 0.25, 1e-12) {
		t.Fatalf("half-bin query = %v, want 0.25", got)
	}
	// Whole domain.
	if got := h.Selectivity(0, 4); !xmath.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("whole domain = %v, want 1", got)
	}
	// Outside.
	if h.Selectivity(10, 20) != 0 || h.Selectivity(2, 1) != 0 {
		t.Fatal("outside/inverted queries should be 0")
	}
}

func TestBoundaryValueAssignment(t *testing.T) {
	// A sample exactly on an interior boundary belongs to the left bin
	// ((c_i, c_{i+1}] convention); a sample on c0 belongs to bin 0.
	h, err := BuildEquiWidth([]float64{0, 1, 2}, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := h.Counts()
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("boundary assignment wrong: %v", counts)
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	r := xrand.New(1)
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = r.Float64() * 10
	}
	h, err := BuildEquiWidth(samples, 13, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	mass := xmath.Simpson(h.Density, 0, 10, 20000)
	if !xmath.AlmostEqual(mass, 1, 1e-2) {
		t.Fatalf("density mass = %v, want ~1", mass)
	}
}

func TestSelectivityMatchesDensityIntegral(t *testing.T) {
	r := xrand.New(2)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.Normal()*2 + 5
	}
	h, err := BuildEquiWidth(samples, 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{0, 3}, {2.5, 7.1}, {9, 10}} {
		want := xmath.Simpson(h.Density, q[0], q[1], 20000)
		got := h.Selectivity(q[0], q[1])
		if !xmath.AlmostEqual(got, want, 1e-2) {
			t.Fatalf("σ̂(%v,%v) = %v, ∫f̂ = %v", q[0], q[1], got, want)
		}
	}
}

func TestEquiDepthBalancedCounts(t *testing.T) {
	r := xrand.New(3)
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = r.Normal()
	}
	h, err := BuildEquiDepth(samples, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind() != "equi-depth" {
		t.Fatalf("kind = %s", h.Kind())
	}
	for i, c := range h.Counts() {
		if math.Abs(float64(c)-1000) > 60 {
			t.Fatalf("bin %d count %d far from balanced 1000", i, c)
		}
	}
}

func TestEquiDepthHeavyDuplicates(t *testing.T) {
	// 90% of mass on one value: quantile boundaries collapse; the builder
	// must still produce a valid histogram with fewer bins.
	samples := make([]float64, 100)
	for i := range samples {
		if i < 90 {
			samples[i] = 5
		} else {
			samples[i] = float64(i)
		}
	}
	h, err := BuildEquiDepth(samples, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() < 1 || h.Bins() > 10 {
		t.Fatalf("bins = %d", h.Bins())
	}
	total := 0
	for _, c := range h.Counts() {
		total += c
	}
	if total != 100 {
		t.Fatalf("samples lost: counted %d of 100", total)
	}
}

func TestEquiDepthDegenerate(t *testing.T) {
	if _, err := BuildEquiDepth([]float64{7, 7, 7}, 4); err == nil {
		t.Fatal("constant sample should error")
	}
	if _, err := BuildEquiDepth(nil, 4); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestMaxDiffSplitsAtLargestGaps(t *testing.T) {
	// Two tight clusters with a huge gap: a 2-bin max-diff histogram must
	// put its boundary inside the gap.
	samples := []float64{1, 1.1, 1.2, 9, 9.1, 9.2}
	h, err := BuildMaxDiff(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	bounds := h.Bounds()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	if bounds[1] < 1.2 || bounds[1] > 9 {
		t.Fatalf("max-diff boundary %v not inside the gap", bounds[1])
	}
	counts := h.Counts()
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("counts = %v, want [3 3]", counts)
	}
}

func TestMaxDiffDegenerate(t *testing.T) {
	if _, err := BuildMaxDiff([]float64{2, 2, 2}, 3); err == nil {
		t.Fatal("constant sample should error")
	}
	if _, err := BuildMaxDiff(nil, 3); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestUniformEstimator(t *testing.T) {
	h, err := BuildUniform([]float64{1, 2, 3}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind() != "uniform" || h.Bins() != 1 {
		t.Fatalf("uniform kind/bins = %s/%d", h.Kind(), h.Bins())
	}
	// Uniform assumption: σ̂ proportional to range width.
	if got := h.Selectivity(0, 5); !xmath.AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("uniform σ̂ = %v, want 0.5", got)
	}
}

func TestASH(t *testing.T) {
	r := xrand.New(4)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = r.Float64() * 100
	}
	a, err := BuildASH(samples, 20, 10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Shifts() != 10 || a.Name() != "ash" {
		t.Fatalf("Shifts/Name = %d/%s", a.Shifts(), a.Name())
	}
	// 10% interior query on uniform data.
	if got := a.Selectivity(40, 50); math.Abs(got-0.1) > 0.02 {
		t.Fatalf("ASH σ̂ = %v, want ~0.1", got)
	}
	// Density integrates to ~1 over the domain.
	mass := xmath.Simpson(a.Density, 0, 100, 20000)
	if math.Abs(mass-1) > 0.02 {
		t.Fatalf("ASH density mass = %v", mass)
	}
	if a.Selectivity(5, 2) != 0 {
		t.Fatal("inverted query should be 0")
	}
}

func TestASHValidation(t *testing.T) {
	if _, err := BuildASH(nil, 0, 1, 0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := BuildASH(nil, 1, 0, 0, 1); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := BuildASH(nil, 1, 1, 1, 0); err == nil {
		t.Fatal("empty domain should error")
	}
}

func TestASHSmootherThanSingleHistogram(t *testing.T) {
	// ASH should reduce the jump-point artefacts: the max density jump
	// across a fine grid must be smaller than the single histogram's.
	r := xrand.New(5)
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = r.Normal()*10 + 50
	}
	h, err := BuildEquiWidth(samples, 15, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildASH(samples, 15, 10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	maxJump := func(f func(float64) float64) float64 {
		prev := f(0.0)
		worst := 0.0
		for _, x := range xmath.Linspace(0.01, 100, 5000) {
			cur := f(x)
			if j := math.Abs(cur - prev); j > worst {
				worst = j
			}
			prev = cur
		}
		return worst
	}
	if maxJump(a.Density) >= maxJump(h.Density) {
		t.Fatalf("ASH max jump %v not below histogram %v", maxJump(a.Density), maxJump(h.Density))
	}
}

func TestVOptimal(t *testing.T) {
	// Step density: 80% of samples in [0,1], 20% in [9,10]. V-optimal with
	// few bins must isolate the two regions.
	r := xrand.New(6)
	samples := make([]float64, 1000)
	for i := range samples {
		if i < 800 {
			samples[i] = r.Float64()
		} else {
			samples[i] = 9 + r.Float64()
		}
	}
	h, err := BuildVOptimal(samples, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind() != "v-optimal" {
		t.Fatalf("kind = %s", h.Kind())
	}
	// The empty middle should be carved out: selectivity of (2, 8) ≈ 0.
	if got := h.Selectivity(2, 8); got > 0.02 {
		t.Fatalf("empty-region σ̂ = %v, want ~0", got)
	}
	if got := h.Selectivity(0, 1.2); math.Abs(got-0.8) > 0.05 {
		t.Fatalf("dense-region σ̂ = %v, want ~0.8", got)
	}
}

func TestVOptimalValidation(t *testing.T) {
	if _, err := BuildVOptimal(nil, 3, 10); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := BuildVOptimal([]float64{1}, 0, 10); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := BuildVOptimal([]float64{1, 1}, 2, 10); err == nil {
		t.Fatal("constant samples should error")
	}
}

// Property: selectivity is within [0,1], monotone under widening, additive
// over adjacent ranges.
func TestQuickHistogramInvariants(t *testing.T) {
	r := xrand.New(7)
	samples := make([]float64, 800)
	for i := range samples {
		samples[i] = r.Normal()*15 + 50
	}
	builders := map[string]func() (interface {
		Selectivity(a, b float64) float64
	}, error){
		"equi-width": func() (interface {
			Selectivity(a, b float64) float64
		}, error) {
			return BuildEquiWidth(samples, 17, 0, 100)
		},
		"equi-depth": func() (interface {
			Selectivity(a, b float64) float64
		}, error) {
			return BuildEquiDepth(samples, 17)
		},
		"max-diff": func() (interface {
			Selectivity(a, b float64) float64
		}, error) {
			return BuildMaxDiff(samples, 17)
		},
		"ash": func() (interface {
			Selectivity(a, b float64) float64
		}, error) {
			return BuildASH(samples, 17, 8, 0, 100)
		},
	}
	for name, build := range builders {
		est, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prop := func(rawA, rawW uint8) bool {
			a := float64(rawA) / 255 * 90
			w := float64(rawW) / 255 * 10
			m := a + w/3
			s := est.Selectivity(a, a+w)
			parts := est.Selectivity(a, m) + est.Selectivity(m, a+w)
			wide := est.Selectivity(a-1, a+w+1)
			return s >= 0 && s <= 1 &&
				wide >= s-1e-12 &&
				xmath.AlmostEqual(s, parts, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
