package histogram

import (
	"fmt"
	"sort"
)

// FrequencyPolygon is the classical repair for the paper's histogram
// critique (§3.1: "discontinuous jump points can be observed in the
// boundary of two adjacent bins"): the density estimate interpolates
// linearly between the bin midpoints of an equi-width histogram. Scott
// (1985) showed the frequency polygon's MISE converges at O(n^{−4/5}) —
// the kernel estimator's rate — at histogram cost.
type FrequencyPolygon struct {
	hist *Histogram
	// xs/ys are the polygon's knots: bin midpoints (plus half-bin
	// extensions at both ends, where the density falls to zero) and the
	// bin densities at them.
	xs, ys []float64
}

// BuildFrequencyPolygon builds the polygon over an equi-width histogram
// with k bins on [lo, hi].
func BuildFrequencyPolygon(samples []float64, k int, lo, hi float64) (*FrequencyPolygon, error) {
	h, err := BuildEquiWidth(samples, k, lo, hi)
	if err != nil {
		return nil, err
	}
	if h.n == 0 {
		return nil, fmt.Errorf("histogram: frequency polygon needs samples")
	}
	fp := &FrequencyPolygon{hist: h}
	width := (hi - lo) / float64(k)
	// Knots: zero at lo−width/2, bin densities at midpoints, zero at
	// hi+width/2 — the standard construction, which preserves unit mass.
	fp.xs = append(fp.xs, lo-width/2)
	fp.ys = append(fp.ys, 0)
	for i := 0; i < k; i++ {
		mid := lo + (float64(i)+0.5)*width
		fp.xs = append(fp.xs, mid)
		fp.ys = append(fp.ys, float64(h.counts[i])/(float64(h.n)*width))
	}
	fp.xs = append(fp.xs, hi+width/2)
	fp.ys = append(fp.ys, 0)
	return fp, nil
}

// Density returns the polygon density at x.
func (fp *FrequencyPolygon) Density(x float64) float64 {
	if x <= fp.xs[0] || x >= fp.xs[len(fp.xs)-1] {
		return 0
	}
	// First knot strictly right of x.
	i := sort.SearchFloat64s(fp.xs, x)
	if i == 0 {
		return fp.ys[0]
	}
	if fp.xs[i-1] == x {
		return fp.ys[i-1]
	}
	t := (x - fp.xs[i-1]) / (fp.xs[i] - fp.xs[i-1])
	return fp.ys[i-1] + t*(fp.ys[i]-fp.ys[i-1])
}

// Selectivity integrates the polygon over [a, b] exactly (it is piecewise
// linear, so each segment contributes a trapezoid).
func (fp *FrequencyPolygon) Selectivity(a, b float64) float64 {
	if b < a {
		return 0
	}
	lo, hi := fp.xs[0], fp.xs[len(fp.xs)-1]
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	sum := 0.0
	for i := 0; i+1 < len(fp.xs); i++ {
		segLo, segHi := fp.xs[i], fp.xs[i+1]
		l := a
		if segLo > l {
			l = segLo
		}
		r := b
		if segHi < r {
			r = segHi
		}
		if r <= l {
			continue
		}
		sum += (fp.Density(l) + fp.Density(r)) / 2 * (r - l)
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Bins returns the number of underlying histogram bins.
func (fp *FrequencyPolygon) Bins() int { return fp.hist.Bins() }

// SampleSize returns the number of samples.
func (fp *FrequencyPolygon) SampleSize() int { return fp.hist.SampleSize() }

// Name identifies the estimator in experiment output.
func (fp *FrequencyPolygon) Name() string { return "frequency-polygon" }
