package histogram

import (
	"fmt"
	"math"
	"sort"
)

// BuildVOptimal builds a v-optimal histogram with (up to) k bins: bin
// boundaries are chosen by dynamic programming to minimise the total
// within-bin variance of the sample values (the weighted variance
// objective of Jagadish et al., VLDB 1998 — reference [7] of the paper).
// It is included as an extension baseline beyond the paper's comparison.
//
// The DP runs on the distinct sorted values with their multiplicities and
// costs O(v²·k) for v distinct values; to keep construction tractable on
// large samples the values are first coalesced onto a grid of at most
// maxCells cells (a standard approximation).
func BuildVOptimal(samples []float64, k int, maxCells int) (*Histogram, error) {
	if k < 1 {
		return nil, fmt.Errorf("histogram: bin count must be >= 1, got %d", k)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("histogram: v-optimal needs samples")
	}
	if maxCells < k {
		maxCells = 4 * k
	}
	sorted := sortedCopy(samples)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, fmt.Errorf("histogram: all samples identical; no interval structure")
	}

	// Coalesce samples onto at most maxCells equi-width cells; each cell
	// carries a count. The DP then partitions cells into k bins.
	lo, hi := sorted[0], sorted[len(sorted)-1]
	cells := maxCells
	cellWidth := (hi - lo) / float64(cells)
	counts := make([]float64, cells)
	for _, x := range sorted {
		i := int((x - lo) / cellWidth)
		if i >= cells {
			i = cells - 1
		}
		counts[i]++
	}

	// Prefix sums for O(1) segment cost: cost(i,j) = Σ c² − (Σ c)²/(j−i)
	// over cells i..j−1 (variance×len of the cell counts, the classic
	// v-optimal frequency-variance objective).
	prefix := make([]float64, cells+1)
	prefixSq := make([]float64, cells+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + c
		prefixSq[i+1] = prefixSq[i] + c*c
	}
	segCost := func(i, j int) float64 {
		n := float64(j - i)
		s := prefix[j] - prefix[i]
		sq := prefixSq[j] - prefixSq[i]
		return sq - s*s/n
	}

	if k > cells {
		k = cells
	}
	const inf = math.MaxFloat64
	// dp[b][j]: minimal cost of covering cells [0, j) with b bins.
	dp := make([][]float64, k+1)
	arg := make([][]int, k+1)
	for b := range dp {
		dp[b] = make([]float64, cells+1)
		arg[b] = make([]int, cells+1)
		for j := range dp[b] {
			dp[b][j] = inf
		}
	}
	dp[0][0] = 0
	for b := 1; b <= k; b++ {
		for j := b; j <= cells; j++ {
			for i := b - 1; i < j; i++ {
				if dp[b-1][i] == inf {
					continue
				}
				if c := dp[b-1][i] + segCost(i, j); c < dp[b][j] {
					dp[b][j] = c
					arg[b][j] = i
				}
			}
		}
	}

	// Recover boundaries.
	cuts := make([]int, 0, k+1)
	j := cells
	for b := k; b >= 1; b-- {
		cuts = append(cuts, j)
		j = arg[b][j]
	}
	cuts = append(cuts, 0)
	sort.Ints(cuts)

	bounds := make([]float64, 0, len(cuts))
	for _, c := range cuts {
		bounds = append(bounds, lo+float64(c)*cellWidth)
	}
	bounds[len(bounds)-1] = hi
	bounds = dedupe(bounds)
	if len(bounds) < 2 {
		return nil, fmt.Errorf("histogram: degenerate v-optimal boundaries")
	}
	h, err := newHistogram("v-optimal", bounds, sorted)
	if err != nil {
		return nil, err
	}
	return h, nil
}
