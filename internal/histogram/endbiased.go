package histogram

import (
	"fmt"
	"sort"
)

// EndBiased is an end-biased histogram (in the spirit of Ioannidis &
// Christodoulakis, the paper's reference [2]): the k most frequent values
// are stored exactly as singleton buckets and the remaining mass falls
// into one equi-width "rest" histogram. On heavy-duplicate attributes
// (the paper's iw/ci file) the frequent values carry most of the answer
// and the singletons remove their error entirely.
type EndBiased struct {
	singles map[float64]float64 // value → mass fraction
	rest    *Histogram          // nil when every sample is a singleton
	restPor float64             // mass fraction of the rest histogram
	n       int
}

// BuildEndBiased builds an end-biased histogram with k singleton buckets
// and restBins equi-width bins for the remainder over [lo, hi].
func BuildEndBiased(samples []float64, k, restBins int, lo, hi float64) (*EndBiased, error) {
	if k < 1 {
		return nil, fmt.Errorf("histogram: singleton count must be >= 1, got %d", k)
	}
	if restBins < 1 {
		return nil, fmt.Errorf("histogram: rest bin count must be >= 1, got %d", restBins)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("histogram: end-biased needs samples")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("histogram: domain [%v, %v] is empty", lo, hi)
	}

	freq := make(map[float64]int, len(samples))
	for _, v := range samples {
		freq[v]++
	}
	type vc struct {
		v float64
		c int
	}
	byCount := make([]vc, 0, len(freq))
	for v, c := range freq {
		byCount = append(byCount, vc{v, c})
	}
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].c != byCount[j].c {
			return byCount[i].c > byCount[j].c
		}
		return byCount[i].v < byCount[j].v // deterministic ties
	})
	if k > len(byCount) {
		k = len(byCount)
	}

	e := &EndBiased{singles: make(map[float64]float64, k), n: len(samples)}
	isSingle := make(map[float64]bool, k)
	for _, t := range byCount[:k] {
		e.singles[t.v] = float64(t.c) / float64(len(samples))
		isSingle[t.v] = true
	}
	var rest []float64
	for _, v := range samples {
		if !isSingle[v] {
			rest = append(rest, v)
		}
	}
	e.restPor = float64(len(rest)) / float64(len(samples))
	if len(rest) > 0 {
		h, err := BuildEquiWidth(rest, restBins, lo, hi)
		if err != nil {
			return nil, err
		}
		e.rest = h
	}
	return e, nil
}

// Selectivity returns σ̂(a,b): exact singleton masses plus the rest
// histogram's (scaled) estimate.
func (e *EndBiased) Selectivity(a, b float64) float64 {
	if b < a {
		return 0
	}
	sum := 0.0
	for v, mass := range e.singles {
		if v >= a && v <= b {
			sum += mass
		}
	}
	if e.rest != nil {
		sum += e.restPor * e.rest.Selectivity(a, b)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Singletons returns the number of singleton buckets.
func (e *EndBiased) Singletons() int { return len(e.singles) }

// SampleSize returns the number of samples.
func (e *EndBiased) SampleSize() int { return e.n }

// Name identifies the estimator in experiment output.
func (e *EndBiased) Name() string { return "end-biased" }

// SingletonMass returns the total mass fraction held by singletons — a
// diagnostic for how duplicate-heavy the attribute is.
func (e *EndBiased) SingletonMass() float64 {
	return 1 - e.restPor
}
