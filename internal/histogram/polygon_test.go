package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func TestBuildFrequencyPolygonValidation(t *testing.T) {
	if _, err := BuildFrequencyPolygon(nil, 0, 0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := BuildFrequencyPolygon([]float64{1}, 4, 2, 2); err == nil {
		t.Fatal("empty domain should error")
	}
}

func TestPolygonDensityContinuous(t *testing.T) {
	r := xrand.New(1)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = r.NormalMeanStd(500, 100)
	}
	fp, err := BuildFrequencyPolygon(samples, 20, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildEquiWidth(samples, 20, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// The polygon removes the jump points: its max step across a fine grid
	// must be far below the raw histogram's.
	maxJump := func(f func(float64) float64) float64 {
		worst, prev := 0.0, f(0.0)
		for _, x := range xmath.Linspace(0.2, 1000, 5000) {
			cur := f(x)
			if j := math.Abs(cur - prev); j > worst {
				worst = j
			}
			prev = cur
		}
		return worst
	}
	if pj, hj := maxJump(fp.Density), maxJump(h.Density); pj > hj/5 {
		t.Fatalf("polygon max jump %v not ≪ histogram %v", pj, hj)
	}
}

func TestPolygonUnitMass(t *testing.T) {
	r := xrand.New(2)
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = r.Float64() * 100
	}
	fp, err := BuildFrequencyPolygon(samples, 10, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The polygon construction preserves unit mass over its extended
	// support [lo−w/2, hi+w/2].
	mass := xmath.Simpson(fp.Density, -10, 110, 20000)
	if !xmath.AlmostEqual(mass, 1, 1e-3) {
		t.Fatalf("polygon mass = %v", mass)
	}
	// And Selectivity over the whole extended support agrees.
	if got := fp.Selectivity(-10, 110); !xmath.AlmostEqual(got, 1, 1e-9) {
		t.Fatalf("whole-support σ̂ = %v", got)
	}
}

func TestPolygonSelectivityMatchesDensityIntegral(t *testing.T) {
	r := xrand.New(3)
	samples := make([]float64, 800)
	for i := range samples {
		samples[i] = r.Exponential(0.05)
	}
	fp, err := BuildFrequencyPolygon(samples, 15, 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{0, 10}, {5, 40}, {60, 120}} {
		want := xmath.Simpson(fp.Density, q[0], q[1], 8000)
		got := fp.Selectivity(q[0], q[1])
		if !xmath.AlmostEqual(got, want, 1e-4) {
			t.Fatalf("σ̂(%v,%v) = %v, ∫f̂ = %v", q[0], q[1], got, want)
		}
	}
}

func TestPolygonMoreAccurateThanHistogramOnSmoothData(t *testing.T) {
	// Scott's result in practice: at equal bins on smooth data, the
	// polygon's density error beats the histogram's.
	r := xrand.New(4)
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = r.NormalMeanStd(500, 100)
	}
	truth := func(x float64) float64 {
		z := (x - 500) / 100
		return math.Exp(-z*z/2) / (100 * math.Sqrt(2*math.Pi))
	}
	ise := func(f func(float64) float64) float64 {
		return xmath.Simpson(func(x float64) float64 {
			d := f(x) - truth(x)
			return d * d
		}, 100, 900, 4000)
	}
	fp, err := BuildFrequencyPolygon(samples, 25, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildEquiWidth(samples, 25, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if pe, he := ise(fp.Density), ise(h.Density); pe >= he {
		t.Fatalf("polygon ISE %v not below histogram ISE %v", pe, he)
	}
}

func TestPolygonAccessors(t *testing.T) {
	fp, err := BuildFrequencyPolygon([]float64{1, 2, 3}, 4, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Bins() != 4 || fp.SampleSize() != 3 {
		t.Fatal("accessors wrong")
	}
	if fp.Name() != "frequency-polygon" {
		t.Fatalf("Name = %q", fp.Name())
	}
	if fp.Selectivity(5, 2) != 0 {
		t.Fatal("inverted query should be 0")
	}
}

// Property: polygon selectivity invariants.
func TestQuickPolygonInvariants(t *testing.T) {
	r := xrand.New(5)
	samples := make([]float64, 600)
	for i := range samples {
		samples[i] = r.Float64() * 100
	}
	fp, err := BuildFrequencyPolygon(samples, 12, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawA, rawW uint8) bool {
		a := float64(rawA) / 255 * 90
		w := float64(rawW) / 255 * 10
		m := a + w/2
		s := fp.Selectivity(a, a+w)
		parts := fp.Selectivity(a, m) + fp.Selectivity(m, a+w)
		return s >= 0 && s <= 1 && xmath.AlmostEqual(s, parts, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
