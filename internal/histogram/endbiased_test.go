package histogram

import (
	"math"
	"testing"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

// duplicateHeavy builds a sample where value 100 holds 50% of the mass,
// value 200 holds 25%, and the rest is uniform on [0, 1000].
func duplicateHeavy(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		u := r.Float64()
		switch {
		case u < 0.5:
			out[i] = 100
		case u < 0.75:
			out[i] = 200
		default:
			out[i] = math.Floor(r.Float64() * 1000)
		}
	}
	return out
}

func TestBuildEndBiasedValidation(t *testing.T) {
	if _, err := BuildEndBiased(nil, 1, 1, 0, 1); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := BuildEndBiased([]float64{1}, 0, 1, 0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := BuildEndBiased([]float64{1}, 1, 0, 0, 1); err == nil {
		t.Fatal("restBins=0 should error")
	}
	if _, err := BuildEndBiased([]float64{1}, 1, 1, 5, 5); err == nil {
		t.Fatal("empty domain should error")
	}
}

func TestEndBiasedSingletonsExact(t *testing.T) {
	samples := duplicateHeavy(4000, 1)
	e, err := BuildEndBiased(samples, 2, 20, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Singletons() != 2 {
		t.Fatalf("Singletons = %d", e.Singletons())
	}
	if e.SingletonMass() < 0.7 {
		t.Fatalf("SingletonMass = %v, want ~0.75", e.SingletonMass())
	}
	// A point query on the heavy value is answered exactly from the sample.
	var exact float64
	for _, v := range samples {
		if v == 100 {
			exact++
		}
	}
	exact /= float64(len(samples))
	if got := e.Selectivity(100, 100); !xmath.AlmostEqual(got, exact, 1e-12) {
		t.Fatalf("singleton point query = %v, want exactly %v", got, exact)
	}
	// A range excluding both heavy values sees only the rest mass.
	if got := e.Selectivity(300, 400); got > 0.1 {
		t.Fatalf("rest-range σ̂ = %v, want small", got)
	}
}

func TestEndBiasedBeatsEquiWidthOnHeavyDuplicates(t *testing.T) {
	samples := duplicateHeavy(4000, 2)
	eb, err := BuildEndBiased(samples, 5, 20, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := BuildEquiWidth(samples, 25, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from a much larger draw of the same process.
	ref := duplicateHeavy(400000, 3)
	trueSel := func(a, b float64) float64 {
		c := 0
		for _, v := range ref {
			if v >= a && v <= b {
				c++
			}
		}
		return float64(c) / float64(len(ref))
	}
	// Narrow queries around the heavy values are where end-biasing pays.
	var ebErr, ewErr float64
	for _, q := range [][2]float64{{95, 105}, {195, 205}, {90, 110}, {190, 210}} {
		ts := trueSel(q[0], q[1])
		ebErr += math.Abs(eb.Selectivity(q[0], q[1])-ts) / ts
		ewErr += math.Abs(ew.Selectivity(q[0], q[1])-ts) / ts
	}
	if ebErr >= ewErr/2 {
		t.Fatalf("end-biased error %v not well below equi-width %v around heavy values", ebErr, ewErr)
	}
}

func TestEndBiasedAllSingletons(t *testing.T) {
	// k larger than the number of distinct values: everything is a
	// singleton and there is no rest histogram.
	samples := []float64{1, 1, 2, 2, 3}
	e, err := BuildEndBiased(samples, 10, 5, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e.Singletons() != 3 {
		t.Fatalf("Singletons = %d, want 3", e.Singletons())
	}
	if got := e.Selectivity(0, 10); !xmath.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("whole-domain σ̂ = %v", got)
	}
	if got := e.Selectivity(1, 2); !xmath.AlmostEqual(got, 0.8, 1e-12) {
		t.Fatalf("σ̂(1,2) = %v, want 0.8", got)
	}
}

func TestEndBiasedAccessors(t *testing.T) {
	e, err := BuildEndBiased([]float64{1, 1, 2}, 1, 4, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "end-biased" || e.SampleSize() != 3 {
		t.Fatalf("accessors: %s %d", e.Name(), e.SampleSize())
	}
	if e.Selectivity(5, 1) != 0 {
		t.Fatal("inverted query should be 0")
	}
}

func TestEndBiasedDeterministicTies(t *testing.T) {
	// Equal frequencies: the singleton choice must be deterministic
	// (smallest values win ties).
	samples := []float64{3, 3, 1, 1, 2, 2, 9}
	a, err := BuildEndBiased(samples, 2, 4, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEndBiased(samples, 2, 4, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{1, 1}, {2, 2}, {3, 3}, {0, 10}} {
		if a.Selectivity(q[0], q[1]) != b.Selectivity(q[0], q[1]) {
			t.Fatal("tie-breaking not deterministic")
		}
	}
	// Values 1 and 2 (smallest among the tied {1,2,3}) are the singletons.
	if got := a.Selectivity(1, 1); !xmath.AlmostEqual(got, 2.0/7.0, 1e-12) {
		t.Fatalf("σ̂(1,1) = %v", got)
	}
}
