// Package histogram implements the histogram selectivity estimators of the
// paper's comparison: equi-width, equi-depth, max-diff, the trivial uniform
// estimator (one bin), the average shifted histogram (ASH), and — as an
// extension baseline — the v-optimal histogram.
//
// All histograms share one representation: bin boundaries c₀ < … < c_k and
// per-bin sample counts n_i. Selectivity follows paper eq. 4 under the
// uniform-spread assumption inside each bin.
package histogram

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/fsort"
)

// Histogram is a bucketised density estimate over samples. Construct with
// one of the Build* functions; the zero value is unusable. Histograms are
// immutable and safe for concurrent use.
type Histogram struct {
	kind   string
	bounds []float64 // k+1 boundaries, strictly increasing
	counts []int     // k per-bin sample counts
	n      int       // total number of samples
}

// newHistogram validates and assembles a histogram from boundaries and the
// sorted sample set, counting samples per bin. The first bin is
// [c0, c1]; subsequent bins are (c_i, c_{i+1}] following the paper's bin
// definition.
func newHistogram(kind string, bounds []float64, sorted []float64) (*Histogram, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("histogram: need at least 2 boundaries, got %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("histogram: boundaries not strictly increasing at %d: %v >= %v", i, bounds[i-1], bounds[i])
		}
	}
	h := &Histogram{
		kind:   kind,
		bounds: bounds,
		counts: make([]int, len(bounds)-1),
		n:      len(sorted),
	}
	for _, x := range sorted {
		i := h.binOf(x)
		if i >= 0 {
			h.counts[i]++
		}
	}
	return h, nil
}

// binOf returns the bin index of x, or −1 if x lies outside the histogram.
func (h *Histogram) binOf(x float64) int {
	if x < h.bounds[0] || x > h.bounds[len(h.bounds)-1] {
		return -1
	}
	// First boundary strictly greater than x; bin i covers (c_i, c_{i+1}]
	// except bin 0, which is closed on the left.
	i := sort.SearchFloat64s(h.bounds, x)
	if i < len(h.bounds) && h.bounds[i] == x {
		// x sits exactly on boundary i: it belongs to bin i−1 (the bin
		// whose right edge it is), except x == c0, which belongs to bin 0.
		if i == 0 {
			return 0
		}
		return i - 1
	}
	return i - 1
}

// Kind returns the histogram policy name ("equi-width", …).
func (h *Histogram) Kind() string { return h.kind }

// Name identifies the estimator in experiment output.
func (h *Histogram) Name() string { return h.kind }

// Bins returns the number of bins k.
func (h *Histogram) Bins() int { return len(h.counts) }

// SampleSize returns the number of samples the histogram was built from.
func (h *Histogram) SampleSize() int { return h.n }

// Bounds returns a copy of the bin boundaries.
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	return append([]int(nil), h.counts...)
}

// Selectivity returns the estimated selectivity σ̂_H(a,b) per paper eq. 4:
// each bin contributes its count scaled by the overlapped fraction of its
// width.
func (h *Histogram) Selectivity(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a || h.n == 0 {
		return 0
	}
	sum := 0.0
	// Bins are sorted; restrict the scan to those overlapping [a,b].
	first := sort.SearchFloat64s(h.bounds, a) - 1
	if first < 0 {
		first = 0
	}
	for i := first; i < len(h.counts); i++ {
		lo, hi := h.bounds[i], h.bounds[i+1]
		if lo > b {
			break
		}
		if h.counts[i] == 0 {
			continue
		}
		overlap := math.Min(b, hi) - math.Max(a, lo)
		if overlap <= 0 {
			continue
		}
		sum += float64(h.counts[i]) * overlap / (hi - lo)
	}
	s := sum / float64(h.n)
	if s > 1 {
		return 1
	}
	return s
}

// Density returns the histogram density estimate f̂_H(x) (paper §3.1).
func (h *Histogram) Density(x float64) float64 {
	i := h.binOf(x)
	if i < 0 || h.n == 0 {
		return 0
	}
	width := h.bounds[i+1] - h.bounds[i]
	return float64(h.counts[i]) / (float64(h.n) * width)
}

// BuildEquiWidth builds an equi-width histogram with k bins over the
// domain [lo, hi]. Samples outside the domain are ignored.
func BuildEquiWidth(samples []float64, k int, lo, hi float64) (*Histogram, error) {
	if k < 1 {
		return nil, fmt.Errorf("histogram: bin count must be >= 1, got %d", k)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("histogram: domain [%v, %v] is empty", lo, hi)
	}
	bounds := make([]float64, k+1)
	width := (hi - lo) / float64(k)
	for i := range bounds {
		bounds[i] = lo + float64(i)*width
	}
	bounds[k] = hi
	sorted := sortedCopy(samples)
	return newHistogram("equi-width", bounds, sorted)
}

// BuildUniform builds the one-bin "uniform assumption" estimator over
// [lo, hi] — System R's model, the paper's worst-case baseline.
func BuildUniform(samples []float64, lo, hi float64) (*Histogram, error) {
	h, err := BuildEquiWidth(samples, 1, lo, hi)
	if err != nil {
		return nil, err
	}
	h.kind = "uniform"
	return h, nil
}

// BuildEquiDepth builds an equi-depth histogram with (up to) k bins: bin
// boundaries sit at the sample quantiles so every bin holds about the same
// number of samples. Duplicate quantiles (heavy duplicate values) collapse,
// so the result may have fewer than k bins.
func BuildEquiDepth(samples []float64, k int) (*Histogram, error) {
	if k < 1 {
		return nil, fmt.Errorf("histogram: bin count must be >= 1, got %d", k)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("histogram: equi-depth needs samples")
	}
	sorted := sortedCopy(samples)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, fmt.Errorf("histogram: all samples identical; no interval structure")
	}
	bounds := make([]float64, 0, k+1)
	bounds = append(bounds, sorted[0])
	for i := 1; i < k; i++ {
		q := quantileSorted(sorted, float64(i)/float64(k))
		if q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	if top := sorted[len(sorted)-1]; top > bounds[len(bounds)-1] {
		bounds = append(bounds, top)
	}
	if len(bounds) < 2 {
		return nil, fmt.Errorf("histogram: degenerate equi-depth boundaries")
	}
	return newHistogram("equi-depth", bounds, sorted)
}

// BuildMaxDiff builds a max-diff histogram with (up to) k bins: the k−1
// largest gaps between adjacent distinct sample values become bin
// boundaries (paper §3.1, following Poosala et al.).
func BuildMaxDiff(samples []float64, k int) (*Histogram, error) {
	if k < 1 {
		return nil, fmt.Errorf("histogram: bin count must be >= 1, got %d", k)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("histogram: max-diff needs samples")
	}
	sorted := sortedCopy(samples)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, fmt.Errorf("histogram: all samples identical; no interval structure")
	}

	// Gaps between adjacent distinct values.
	type gap struct {
		mid  float64
		size float64
	}
	var gaps []gap
	for i := 1; i < len(sorted); i++ {
		if d := sorted[i] - sorted[i-1]; d > 0 {
			gaps = append(gaps, gap{mid: 0.5 * (sorted[i-1] + sorted[i]), size: d})
		}
	}
	// Largest k−1 gaps become boundaries.
	sort.Slice(gaps, func(i, j int) bool { return gaps[i].size > gaps[j].size })
	if len(gaps) > k-1 {
		gaps = gaps[:k-1]
	}
	bounds := make([]float64, 0, len(gaps)+2)
	bounds = append(bounds, sorted[0])
	for _, g := range gaps {
		bounds = append(bounds, g.mid)
	}
	bounds = append(bounds, sorted[len(sorted)-1])
	sort.Float64s(bounds)
	bounds = dedupe(bounds)
	if len(bounds) < 2 {
		return nil, fmt.Errorf("histogram: degenerate max-diff boundaries")
	}
	return newHistogram("max-diff", bounds, sorted)
}

// sortedCopy returns the samples sorted ascending without mutating the
// input.
func sortedCopy(samples []float64) []float64 {
	s := append([]float64(nil), samples...)
	fsort.Float64s(s)
	return s
}

// quantileSorted is the type-7 quantile on sorted data (shared with the
// stats package's definition; duplicated here to keep histogram free of
// that dependency).
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// dedupe removes exact duplicates from a sorted slice, in place.
func dedupe(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
