package telemetry

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition of a deterministic
// registry, line by line: family grouping, label rendering, cumulative
// buckets, sum/count, and sort order.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("selest_fit_total", "method", "kernel")).Add(3)
	r.Counter(Label("selest_fit_total", "method", "equi-depth")).Add(1)
	r.Counter("selest_kde_queries_total").Add(42)
	r.Gauge(Label("selest_fit_bandwidth", "method", "kernel")).Set(1234.5)
	h := r.Histogram(Label("selest_query_nanos", "estimator", "kernel(epanechnikov,none)"))
	h.Observe(1)    // upper 1
	h.Observe(3)    // upper 3
	h.Observe(3)    // upper 3
	h.Observe(1000) // upper 1023

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	want := []string{
		`# TYPE selest_fit_total counter`,
		`selest_fit_total{method="equi-depth"} 1`,
		`selest_fit_total{method="kernel"} 3`,
		`# TYPE selest_kde_queries_total counter`,
		`selest_kde_queries_total 42`,
		`# TYPE selest_fit_bandwidth gauge`,
		`selest_fit_bandwidth{method="kernel"} 1234.5`,
		`# TYPE selest_query_nanos histogram`,
		`selest_query_nanos_bucket{estimator="kernel(epanechnikov,none)",le="1"} 1`,
		`selest_query_nanos_bucket{estimator="kernel(epanechnikov,none)",le="3"} 3`,
		`selest_query_nanos_bucket{estimator="kernel(epanechnikov,none)",le="1023"} 4`,
		`selest_query_nanos_bucket{estimator="kernel(epanechnikov,none)",le="+Inf"} 4`,
		`selest_query_nanos_sum{estimator="kernel(epanechnikov,none)"} 1007`,
		`selest_query_nanos_count{estimator="kernel(epanechnikov,none)"} 4`,
	}
	if len(got) != len(want) {
		t.Fatalf("exposition has %d lines, want %d:\n%s", len(got), len(want), sb.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d:\n got %q\nwant %q", i+1, got[i], want[i])
		}
	}
}

var (
	typeLineRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleLineRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+Inf-]+)$`)
)

// parseExposition validates an exposition line by line and returns the
// sample count per family, failing the test on any malformed line.
func parseExposition(t *testing.T, text string) map[string]int {
	t.Helper()
	families := map[string]string{} // family → declared type
	samples := map[string]int{}
	var lastBucketCum = map[string]int64{} // series labels → last cumulative bucket
	sc := bufio.NewScanner(strings.NewReader(text))
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			m := typeLineRE.FindStringSubmatch(s)
			if m == nil {
				t.Fatalf("line %d: malformed comment %q", line, s)
			}
			if _, dup := families[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", line, m[1])
			}
			families[m[1]] = m[2]
			continue
		}
		m := sampleLineRE.FindStringSubmatch(s)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", line, s)
		}
		name := m[1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && families[base] == "histogram" {
				family = base
			}
		}
		typ, ok := families[family]
		if !ok {
			t.Fatalf("line %d: sample %q before its TYPE line", line, s)
		}
		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			// Bucket series must be cumulative and non-decreasing.
			v, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", line, m[3], err)
			}
			key := stripLe(m[2])
			if v < lastBucketCum[name+key] {
				t.Fatalf("line %d: bucket series %s%s not cumulative", line, name, key)
			}
			lastBucketCum[name+key] = v
		}
		if typ == "counter" {
			if _, err := strconv.ParseInt(m[3], 10, 64); err != nil {
				t.Fatalf("line %d: counter value %q: %v", line, m[3], err)
			}
		}
		samples[family]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// stripLe removes the le label from a rendered label set so bucket
// series of one histogram share a key.
var leRE = regexp.MustCompile(`,?le="[^"]*"`)

func stripLe(labels string) string { return leRE.ReplaceAllString(labels, "") }

// TestPrometheusParses runs the structural parser over a registry
// exercising every metric kind, including awkward label values.
func TestPrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Counter(Label("b_total", "method", "max-diff")).Add(7)
	r.Gauge("g").Set(0.125)
	r.Gauge(Label("g2", "rule", "normal-scale")).Set(-3)
	h := r.Histogram(Label("lat_nanos", "estimator", "robust(kernel(epanechnikov,boundary-kernels))"))
	for i := int64(1); i < 1<<20; i *= 3 {
		h.Observe(i)
	}
	r.Histogram("empty_nanos") // no observations: only +Inf/sum/count

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, sb.String())
	if samples["a_total"] != 1 || samples["b_total"] != 1 || samples["g"] != 1 || samples["g2"] != 1 {
		t.Fatalf("sample counts = %v", samples)
	}
	if samples["lat_nanos"] < 3 {
		t.Fatalf("histogram rendered %d samples, want buckets+sum+count", samples["lat_nanos"])
	}
}
