// Package telemetry is the zero-dependency metrics core behind the
// library's observability surface: atomic counters, gauges, and
// fixed-log-bucket latency histograms collected into a Registry that
// supports snapshot, reset, and Prometheus-style text exposition.
//
// The hot-path contract is strict: once a metric handle exists, Inc, Add,
// Set, and Observe are single atomic operations with zero allocations, so
// the estimator query path can be instrumented without perturbing the
// latencies it measures (the Benchmark pairs in bench_test.go and the
// root package's BenchmarkTelemetryKernelQuery keep this honest).
//
// Hot layers additionally gate their hooks on Enabled(), a single atomic
// load, so telemetry can be switched off entirely for
// allocation/latency-critical deployments. Cold paths (fits, bandwidth
// rules, refits) record unconditionally — their cost is microseconds
// against millisecond builds.
//
// Metric names follow Prometheus conventions. A name may carry one
// label pair inline — Label("selest_fit_total", "method", "kernel")
// yields `selest_fit_total{method="kernel"}` — which the exposition
// writer renders as a labeled series of the base family.
package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates the hot-path hooks; it defaults to on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns the hot-path telemetry hooks on (the default).
func Enable() { enabled.Store(true) }

// Disable turns the hot-path telemetry hooks off. Cold-path metrics
// (fit counts, refit events) keep recording.
func Disable() { enabled.Store(false) }

// Enabled reports whether hot-path hooks should record. It is a single
// atomic load, cheap enough for a per-query check.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotone;
// this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge (last-set value wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last-set value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histogramBuckets is the fixed bucket count: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 65 buckets cover the whole non-negative int64 range (0 and ~292 years
// of nanoseconds included), so Observe never branches on bucket layout.
const histogramBuckets = 65

// Histogram is a fixed-log-bucket histogram for non-negative integer
// observations — typically latencies in nanoseconds. Buckets are powers
// of two, so Observe is two atomic adds and a bit-length, with no
// allocation and no locks.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histogramBuckets]atomic.Int64
}

// Observe records one observation. Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket in a snapshot. Upper is the
// bucket's inclusive upper bound (2^i − 1); Count is the number of
// observations in this bucket alone (not cumulative).
type Bucket struct {
	Upper uint64
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []Bucket // non-empty buckets in increasing Upper order
}

// Mean returns the average observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from
// the bucket boundaries — exact to within one power of two.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Upper
		}
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}

// snapshot copies the histogram's live state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histogramBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
	}
	return s
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << uint(i)) - 1
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Registry owns a namespace of metrics. Handle lookup is get-or-create
// under a mutex (cold path); the returned handles are stable across
// Reset, so hot paths capture them once and never touch the registry
// again.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the registry behind the package-level hooks and the root
// package's selest.Metrics.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics, keyed by
// full metric name (including any inline label).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every metric in place. Existing handles stay valid — hot
// paths holding a *Counter keep recording into the same cell.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// names returns every registered full metric name, sorted, for the
// exposition writer.
func (r *Registry) names() (counters, gauges, histograms []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.counters {
		counters = append(counters, name)
	}
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	for name := range r.histograms {
		histograms = append(histograms, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return counters, gauges, histograms
}

// Label attaches one label pair to a metric name:
// Label("selest_fit_total", "method", "kernel") →
// `selest_fit_total{method="kernel"}`. The exposition writer splits the
// result back into family and label set. Quotes and backslashes in value
// are escaped per the Prometheus text format.
func Label(name, key, value string) string {
	return name + "{" + key + "=\"" + escapeLabelValue(value) + "\"}"
}

// escapeLabelValue escapes backslash, double quote and newline.
func escapeLabelValue(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// splitName splits a full metric name into its family and label part:
// `f{k="v"}` → ("f", `k="v"`); an unlabeled name returns ("f", "").
func splitName(full string) (family, labels string) {
	for i := 0; i < len(full); i++ {
		if full[i] == '{' {
			return full[:i], full[i+1 : len(full)-1]
		}
	}
	return full, ""
}
