package telemetry

import "time"

// Estimator is the estimator surface Instrument wraps. It is
// structurally identical to core.Estimator; telemetry declares its own
// copy so the metrics core stays dependency-free.
type Estimator interface {
	Selectivity(a, b float64) float64
	Name() string
}

// Instrumented wraps an estimator and records, per query, a count and a
// latency observation into per-estimator series of the registry it was
// built against. The handles are captured at wrap time, so the query
// path is the wrapped call plus two clock reads and two atomic
// operations — no locks, no allocation, no registry lookups.
type Instrumented struct {
	inner   Estimator
	queries *Counter
	latency *Histogram
}

// Instrument wraps est with query telemetry recorded into Default.
// Wrapping an already-instrumented estimator returns it unchanged.
func Instrument(est Estimator) *Instrumented { return InstrumentInto(Default, est) }

// InstrumentInto wraps est with query telemetry recorded into r.
func InstrumentInto(r *Registry, est Estimator) *Instrumented {
	if i, ok := est.(*Instrumented); ok {
		return i
	}
	name := est.Name()
	return &Instrumented{
		inner:   est,
		queries: r.Counter(Label("selest_queries_total", "estimator", name)),
		latency: r.Histogram(Label("selest_query_nanos", "estimator", name)),
	}
}

// Selectivity answers from the wrapped estimator, recording the query
// count and latency when telemetry is enabled.
func (i *Instrumented) Selectivity(a, b float64) float64 {
	if !Enabled() {
		return i.inner.Selectivity(a, b)
	}
	start := time.Now()
	s := i.inner.Selectivity(a, b)
	i.latency.ObserveSince(start)
	i.queries.Inc()
	return s
}

// Name identifies the wrapped estimator in experiment output.
func (i *Instrumented) Name() string { return i.inner.Name() }

// Unwrap returns the estimator behind the instrumentation.
func (i *Instrumented) Unwrap() Estimator { return i.inner }

// Queries returns how many queries this wrapper has recorded.
func (i *Instrumented) Queries() int64 { return i.queries.Value() }
