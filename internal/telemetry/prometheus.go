// Prometheus text exposition (version 0.0.4) for a Registry: counters
// and gauges render as single samples, histograms render as cumulative
// `_bucket{le="..."}` series with `_sum` and `_count`, one `# TYPE` line
// per family. Output order is deterministic (families and series sorted
// by name) so the golden test can compare line-by-line.
package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	counters, gauges, histograms := r.names()
	snap := r.Snapshot()

	var lastFamily string
	for _, name := range counters {
		family, labels := splitName(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(family, labels, ""), snap.Counters[name]); err != nil {
			return err
		}
	}
	lastFamily = ""
	for _, name := range gauges {
		family, labels := splitName(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(family, labels, ""), formatFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}
	lastFamily = ""
	for _, name := range histograms {
		family, labels := splitName(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		h := snap.Histograms[name]
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := strconv.FormatUint(b.Upper, 10)
			if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(family, labels, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(family, labels, "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(family+"_sum", labels, ""), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(family+"_count", labels, ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// seriesName renders family plus an optional pre-rendered label set.
func seriesName(family, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return family
	case labels == "":
		return family + "{" + extra + "}"
	case extra == "":
		return family + "{" + labels + "}"
	default:
		return family + "{" + labels + "," + extra + "}"
	}
}

// bucketSeries renders a histogram bucket sample name with the le label
// appended to any existing labels.
func bucketSeries(family, labels, le string) string {
	return seriesName(family+"_bucket", labels, `le="`+le+`"`)
}

// formatFloat renders a gauge value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
