package telemetry

import (
	"io"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRegistry hammers one registry from parallel writers
// (instrumented queries, raw counter/gauge/histogram traffic, handle
// creation) while readers snapshot, reset, and render concurrently.
// Run under -race this is the registry's data-race proof; the final
// consistency check is deliberately weak because Reset may interleave.
func TestConcurrentRegistry(t *testing.T) {
	defer Enable()
	Enable()
	r := NewRegistry()
	inst := InstrumentInto(r, fixedEstimator{v: 0.5})

	const (
		writers = 8
		queries = 2000
	)
	var wg sync.WaitGroup

	// Instrumented query traffic.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				if got := inst.Selectivity(0, 1); got != 0.5 {
					panic("wrong answer under concurrency")
				}
			}
		}()
	}
	// Raw metric traffic plus concurrent handle creation.
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_nanos")
			for i := 0; i < queries; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(int64(i))
				if i%100 == 0 {
					r.Counter(Label("dyn_total", "writer", string(rune('a'+w)))).Inc()
				}
			}
		}()
	}
	// Concurrent snapshot / reset / exposition readers.
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := r.Snapshot()
				if s.Counters["shared_total"] < 0 {
					panic("negative counter")
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil && err != io.EOF {
					panic(err)
				}
				if i%50 == 0 {
					r.Reset()
				}
			}
		}()
	}
	wg.Wait()

	// After the dust settles the registry must still be coherent: handles
	// work, exposition renders, and a final known write is visible.
	r.Reset()
	r.Counter("shared_total").Add(5)
	if got := r.Snapshot().Counters["shared_total"]; got != 5 {
		t.Fatalf("post-storm counter = %d, want 5", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shared_total 5") {
		t.Fatalf("exposition missing final value:\n%s", sb.String())
	}
}
