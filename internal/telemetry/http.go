// HTTP and expvar exposure of the Default registry, used by the
// -metrics-addr flags of cmd/selest and cmd/experiments. Kept in its own
// file so the metrics core itself stays free of net/http.
package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar publishes the Default registry's snapshot as the expvar
// variable "selest", visible at /debug/vars on any server using
// http.DefaultServeMux. Safe to call more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("selest", expvar.Func(func() any { return Default.Snapshot() }))
	})
}

// Handler returns an http.Handler serving the Default registry in the
// Prometheus text format.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WritePrometheus(w)
	})
}

var serveOnce sync.Once

// StartServer binds addr and serves /metrics (Prometheus text) and
// /debug/vars (expvar JSON, including the registry snapshot) in a
// background goroutine. The bind happens synchronously so a bad address
// fails fast; the returned listener closes the server.
func StartServer(addr string) (net.Listener, error) {
	PublishExpvar()
	serveOnce.Do(func() { http.Handle("/metrics", Handler()) })
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln, nil
}
