package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total"); again != c {
		t.Fatal("get-or-create returned a different counter handle")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_nanos")
	h.Observe(0)    // bucket len=0 → upper 0
	h.Observe(1)    // len=1 → upper 1
	h.Observe(1)    // len=1
	h.Observe(1000) // len=10 → upper 1023
	h.Observe(-7)   // clamped to 0
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1002 {
		t.Fatalf("sum = %d, want 1002", s.Sum)
	}
	want := []Bucket{{Upper: 0, Count: 2}, {Upper: 1, Count: 2}, {Upper: 1023, Count: 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	if q := s.Quantile(1); q != 1023 {
		t.Fatalf("p100 = %d, want 1023", q)
	}
	if m := s.Mean(); math.Abs(m-1002.0/5) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(3)
	g.Set(9)
	h.Observe(100)

	s := r.Snapshot()
	if s.Counters["c_total"] != 3 || s.Gauges["g"] != 9 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}

	r.Reset()
	s = r.Snapshot()
	if s.Counters["c_total"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("post-reset snapshot = %+v", s)
	}
	// Handles captured before Reset must keep recording into the registry.
	c.Inc()
	if got := r.Snapshot().Counters["c_total"]; got != 1 {
		t.Fatalf("stale handle recorded %d, want 1", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := Label("f_total", "method", "kernel"); got != `f_total{method="kernel"}` {
		t.Fatalf("Label = %s", got)
	}
	got := Label("f", "k", "a\"b\\c\nd")
	if !strings.Contains(got, `a\"b\\c\nd`) {
		t.Fatalf("escaped label = %s", got)
	}
	family, labels := splitName(`f_total{method="kernel"}`)
	if family != "f_total" || labels != `method="kernel"` {
		t.Fatalf("splitName = %q, %q", family, labels)
	}
	family, labels = splitName("plain")
	if family != "plain" || labels != "" {
		t.Fatalf("splitName plain = %q, %q", family, labels)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Enable()
	Enable()
	if !Enabled() {
		t.Fatal("Enabled() = false after Enable")
	}
	Disable()
	if Enabled() {
		t.Fatal("Enabled() = true after Disable")
	}
}

type fixedEstimator struct{ v float64 }

func (f fixedEstimator) Selectivity(a, b float64) float64 { return f.v }
func (f fixedEstimator) Name() string                     { return "fixed" }

func TestInstrumentRecordsQueries(t *testing.T) {
	defer Enable()
	Enable()
	r := NewRegistry()
	inst := InstrumentInto(r, fixedEstimator{v: 0.25})
	if again := InstrumentInto(r, inst); again != inst {
		t.Fatal("instrumenting an Instrumented should be a no-op")
	}
	for i := 0; i < 10; i++ {
		if got := inst.Selectivity(0, 1); got != 0.25 {
			t.Fatalf("selectivity = %v", got)
		}
	}
	if inst.Queries() != 10 {
		t.Fatalf("queries = %d, want 10", inst.Queries())
	}
	s := r.Snapshot()
	name := Label("selest_query_nanos", "estimator", "fixed")
	if s.Histograms[name].Count != 10 {
		t.Fatalf("latency count = %d, want 10", s.Histograms[name].Count)
	}

	// Disabled: the answer flows, nothing records.
	Disable()
	_ = inst.Selectivity(0, 1)
	if inst.Queries() != 10 {
		t.Fatalf("disabled query recorded: %d", inst.Queries())
	}
	if inst.Name() != "fixed" || inst.Unwrap().(fixedEstimator).v != 0.25 {
		t.Fatal("wrapper identity broken")
	}
}

func TestObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() < int64(time.Millisecond) {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
}
