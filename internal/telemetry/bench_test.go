package telemetry

import (
	"testing"
	"time"
)

// The allocation-free contract: every hot-path operation must report
// 0 allocs/op under -benchmem. `make bench` records these next to the
// instrumented-vs-bare estimator pairs in BENCH_telemetry.json.

func BenchmarkTelemetryCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTelemetryEnabledCheck(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		if Enabled() {
			n++
		}
	}
	_ = n
}

// BenchmarkTelemetryInstrumentedCall prices the full wrapper around a
// no-op estimator: two clock reads plus two atomics.
func BenchmarkTelemetryInstrumentedCall(b *testing.B) {
	defer Enable()
	Enable()
	inst := InstrumentInto(NewRegistry(), fixedEstimator{v: 0.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inst.Selectivity(0, 1)
	}
}

func BenchmarkTelemetryObserveSince(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}
