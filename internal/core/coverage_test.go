package core

import (
	"testing"

	"selest/internal/kde"
)

// Degenerate-input branches of Build and the parameter resolvers.

func TestBuildDegenerateSamplesPerMethod(t *testing.T) {
	constSamples := []float64{5, 5, 5, 5}
	for _, m := range Methods() {
		_, err := Build(constSamples, Options{Method: m, DomainLo: 0, DomainHi: 10})
		// Constant samples break rule-derived parameters for most methods;
		// whichever way each method resolves, it must not panic, and
		// methods that need interval structure must error.
		switch m {
		case Sampling, Uniform, Wavelet, Hybrid:
			if err != nil {
				t.Fatalf("%s should tolerate constant samples: %v", m, err)
			}
		default:
			if err == nil {
				t.Logf("%s accepted constant samples (fixed-parameter path)", m)
			}
		}
	}
}

func TestBuildFixedBinsBypassesRules(t *testing.T) {
	// With Bins set, histogram methods accept constant-scale samples that
	// would break the normal scale rule.
	samples := []float64{1, 1, 1, 1, 2}
	est, err := Build(samples, Options{Method: EquiWidth, Bins: 4, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s := est.Selectivity(0, 10); s < 0.99 {
		t.Fatalf("whole-domain σ̂ = %v", s)
	}
}

func TestBuildDPIRuleForHistogram(t *testing.T) {
	samples := testSamples(1000, 20)
	est, err := Build(samples, Options{Method: EquiWidth, Rule: DPI, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s := est.Selectivity(450, 550); s < 0.05 || s > 0.15 {
		t.Fatalf("DPI-binned EWH σ̂ = %v", s)
	}
}

func TestBuildMaxBinsCap(t *testing.T) {
	samples := testSamples(2000, 21)
	est, err := Build(samples, Options{Method: EquiWidth, MaxBins: 5, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	type binned interface{ Bins() int }
	if b := est.(binned).Bins(); b > 5 {
		t.Fatalf("MaxBins not honoured: %d bins", b)
	}
}

func TestBuildVariableKernelBoundary(t *testing.T) {
	samples := testSamples(500, 22)
	// BoundaryKernels maps to reflection for the variable-kernel method
	// (the Simonoff–Dong family is fixed-bandwidth-only).
	est, err := Build(samples, Options{Method: VariableKernel, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s := est.Selectivity(0, 1000); s < 0.95 {
		t.Fatalf("whole-domain σ̂ = %v", s)
	}
}

func TestBuildEndBiasedSingletons(t *testing.T) {
	samples := append(testSamples(500, 23), 777, 777, 777, 777, 777)
	est, err := Build(samples, Options{Method: EndBiased, Singletons: 3, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	type single interface{ Singletons() int }
	if s := est.(single).Singletons(); s != 3 {
		t.Fatalf("Singletons = %d, want 3", s)
	}
}

func TestBuildWaveletCoefficients(t *testing.T) {
	samples := testSamples(500, 24)
	est, err := Build(samples, Options{Method: Wavelet, WaveletCoefficients: 16, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	type coeff interface{ Coefficients() int }
	if c := est.(coeff).Coefficients(); c > 16 {
		t.Fatalf("Coefficients = %d", c)
	}
}

func TestKernelBandwidthLSCVPath(t *testing.T) {
	samples := testSamples(400, 25)
	h, err := kernelBandwidth(samples, Options{Rule: LSCV, DomainLo: 0, DomainHi: 1000}, Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Fatalf("LSCV bandwidth = %v", h)
	}
}
