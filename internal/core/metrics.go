package core

import (
	"time"

	"selest/internal/telemetry"
)

// Telemetry hooks for the fit path. Builds are cold relative to queries
// (milliseconds against nanoseconds), so these record unconditionally:
// the per-method registry lookup and the clock reads are noise against
// any fit. The series answer the capacity questions the ROADMAP's
// production framing raises — which methods are being fitted, how long a
// fit costs, and what smoothing parameter the rules actually derived.

// recordFit records one Build outcome for a method: a success counter
// plus a duration histogram, or a failure counter.
func recordFit(method Method, start time.Time, err error) {
	r := telemetry.Default
	if err != nil {
		r.Counter(telemetry.Label("selest_fit_failures_total", "method", string(method))).Inc()
		return
	}
	r.Counter(telemetry.Label("selest_fit_total", "method", string(method))).Inc()
	r.Histogram(telemetry.Label("selest_fit_nanos", "method", string(method))).ObserveSince(start)
}

// recordBins records the bin count a histogram method resolved to —
// fixed by the caller or derived from the bin-width rule.
func recordBins(method Method, bins int) {
	telemetry.Default.Gauge(telemetry.Label("selest_fit_bins", "method", string(method))).Set(float64(bins))
}

// recordBandwidth records the kernel bandwidth a method resolved to.
func recordBandwidth(method Method, h float64) {
	telemetry.Default.Gauge(telemetry.Label("selest_fit_bandwidth", "method", string(method))).Set(h)
}
