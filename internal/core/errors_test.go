package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func validOpts() Options {
	return Options{DomainLo: 0, DomainHi: 1000}
}

func TestValidateAcceptsZeroValuePlusDomain(t *testing.T) {
	if err := validOpts().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	o := validOpts()
	o.Method = Kernel
	o.Rule = DPI
	o.Bins = 50
	o.Bandwidth = 2.5
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateDomainErrors(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
	}{
		{"nan-lo", math.NaN(), 1},
		{"nan-hi", 0, math.NaN()},
		{"inf-lo", math.Inf(-1), 1},
		{"inf-hi", 0, math.Inf(1)},
		{"inverted", 10, 5},
		{"empty", 7, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Options{DomainLo: tc.lo, DomainHi: tc.hi}.Validate()
			if !errors.Is(err, ErrInvalidDomain) {
				t.Fatalf("Validate() = %v, want ErrInvalidDomain", err)
			}
		})
	}
}

func TestValidateOptionErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"unknown-method", func(o *Options) { o.Method = "bogus" }},
		{"unknown-rule", func(o *Options) { o.Rule = "bogus" }},
		{"negative-bins", func(o *Options) { o.Bins = -1 }},
		{"negative-max-bins", func(o *Options) { o.MaxBins = -1 }},
		{"negative-ash-shifts", func(o *Options) { o.ASHShifts = -1 }},
		{"negative-singletons", func(o *Options) { o.Singletons = -1 }},
		{"negative-wavelet", func(o *Options) { o.WaveletCoefficients = -1 }},
		{"negative-dpi-steps", func(o *Options) { o.DPISteps = -1 }},
		{"negative-bandwidth", func(o *Options) { o.Bandwidth = -1 }},
		{"nan-bandwidth", func(o *Options) { o.Bandwidth = math.NaN() }},
		{"lscv-histogram", func(o *Options) { o.Rule = LSCV; o.Method = EquiWidth }},
		{"hybrid-negative-changepoints", func(o *Options) { o.Method = Hybrid; o.HybridConfig.MaxChangePoints = -1 }},
		{"hybrid-negative-minbinfraction", func(o *Options) { o.Method = Hybrid; o.HybridConfig.MinBinFraction = -0.1 }},
		{"hybrid-minbinfraction-one", func(o *Options) { o.Method = Hybrid; o.HybridConfig.MinBinFraction = 1 }},
		{"hybrid-negative-gridsize", func(o *Options) { o.Method = Hybrid; o.HybridConfig.GridSize = -4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOpts()
			tc.mutate(&o)
			err := o.Validate()
			if !errors.Is(err, ErrBadOption) {
				t.Fatalf("Validate() = %v, want ErrBadOption", err)
			}
		})
	}
}

func TestBuildWrapsSentinels(t *testing.T) {
	if _, err := Build(nil, validOpts()); !errors.Is(err, ErrEmptySample) {
		t.Fatalf("Build(nil) = %v, want ErrEmptySample", err)
	}
	if _, err := Build([]float64{1, 2, 3}, Options{DomainLo: 5, DomainHi: 1}); !errors.Is(err, ErrInvalidDomain) {
		t.Fatalf("Build(inverted domain) = %v, want ErrInvalidDomain", err)
	}
	o := validOpts()
	o.Method = "bogus"
	if _, err := Build([]float64{1, 2, 3}, o); !errors.Is(err, ErrBadOption) {
		t.Fatalf("Build(unknown method) = %v, want ErrBadOption", err)
	}
}

func TestParseMethod(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod("  " + strings.ToUpper(string(m)) + " ")
		if err != nil || got != m {
			t.Fatalf("ParseMethod(%q) = %v, %v; want %v", m, got, err, m)
		}
	}
	_, err := ParseMethod("histogramish")
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("ParseMethod(unknown) = %v, want ErrBadOption", err)
	}
	// The error must teach the valid vocabulary.
	for _, m := range Methods() {
		if !strings.Contains(err.Error(), string(m)) {
			t.Fatalf("ParseMethod error %q does not list %q", err, m)
		}
	}
}

func TestParseBandwidthRule(t *testing.T) {
	for _, r := range BandwidthRules() {
		got, err := ParseBandwidthRule(strings.ToUpper(string(r)))
		if err != nil || got != r {
			t.Fatalf("ParseBandwidthRule(%q) = %v, %v; want %v", r, got, err, r)
		}
	}
	_, err := ParseBandwidthRule("silverman")
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("ParseBandwidthRule(unknown) = %v, want ErrBadOption", err)
	}
	for _, r := range BandwidthRules() {
		if !strings.Contains(err.Error(), string(r)) {
			t.Fatalf("ParseBandwidthRule error %q does not list %q", err, r)
		}
	}
}
