package core

// Registration suite for the closed-form bandwidth engine: the
// beta-kernel method and the beta-closed-form/exact-mise rules must be
// reachable through every declarative surface (Build, Validate, the
// parsers) and rejected with typed errors everywhere they cannot work.

import (
	"errors"
	"testing"

	"selest/internal/kde"
	"selest/internal/kernel"
)

func TestBuildBetaKernel(t *testing.T) {
	samples := testSamples(2000, 11)
	for _, rule := range []BandwidthRule{"", BetaClosedForm, ExactMISE, NormalScale, DPI, LSCV} {
		est, err := Build(samples, Options{Method: BetaKernel, Rule: rule, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatalf("rule %q: %v", rule, err)
		}
		be, ok := est.(*kde.BetaEstimator)
		if !ok {
			t.Fatalf("rule %q: built %T, want *kde.BetaEstimator", rule, est)
		}
		if h := be.Bandwidth(); !(h > 0) {
			t.Fatalf("rule %q: bandwidth %v", rule, h)
		}
		s := est.Selectivity(100, 900)
		if !(s > 0 && s <= 1) {
			t.Fatalf("rule %q: selectivity %v", rule, s)
		}
	}
}

func TestBuildKernelWithClosedFormRules(t *testing.T) {
	samples := testSamples(2000, 12)
	for _, rule := range []BandwidthRule{BetaClosedForm, ExactMISE} {
		est, err := Build(samples, Options{Method: Kernel, Rule: rule, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatalf("rule %s: %v", rule, err)
		}
		h := est.(*kde.Estimator).Bandwidth()
		if h <= 0 || h > 500 {
			t.Fatalf("rule %s: implausible bandwidth %v", rule, h)
		}
	}
}

func TestClosedFormRulesRejectHistograms(t *testing.T) {
	samples := testSamples(200, 13)
	for _, rule := range []BandwidthRule{BetaClosedForm, ExactMISE} {
		_, err := Build(samples, Options{Method: EquiDepth, Rule: rule, DomainLo: 0, DomainHi: 1000})
		if !errors.Is(err, ErrBadOption) {
			t.Fatalf("rule %s on histogram: err = %v, want ErrBadOption", rule, err)
		}
	}
}

func TestBetaKernelRejectsOtherKernels(t *testing.T) {
	samples := testSamples(200, 14)
	_, err := Build(samples, Options{Method: BetaKernel, Kernel: kernel.Biweight{}, DomainLo: 0, DomainHi: 1000})
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("beta-kernel with biweight: err = %v, want ErrBadOption", err)
	}
	// The explicit Epanechnikov spelling stays valid.
	if _, err := Build(samples, Options{Method: BetaKernel, Kernel: kernel.Epanechnikov{}, DomainLo: 0, DomainHi: 1000}); err != nil {
		t.Fatalf("beta-kernel with explicit epanechnikov: %v", err)
	}
}

func TestParseClosedFormRegistrations(t *testing.T) {
	// Forward: every registered name round-trips through its parser.
	m, err := ParseMethod(" Beta-Kernel ")
	if err != nil || m != BetaKernel {
		t.Fatalf("ParseMethod(beta-kernel) = %v, %v", m, err)
	}
	for _, want := range []BandwidthRule{BetaClosedForm, ExactMISE} {
		r, err := ParseBandwidthRule(string(want))
		if err != nil || r != want {
			t.Fatalf("ParseBandwidthRule(%s) = %v, %v", want, r, err)
		}
	}
	// Reverse: unknown names stay typed ErrBadOption and the message
	// advertises the new rules.
	_, err = ParseBandwidthRule("beta-closed")
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("unknown rule err = %v, want ErrBadOption", err)
	}
	for _, rule := range BandwidthRules() {
		if _, perr := ParseBandwidthRule(string(rule)); perr != nil {
			t.Fatalf("listed rule %s does not parse: %v", rule, perr)
		}
	}
	if got := ruleNames(); !containsAll(got, "beta-closed-form", "exact-mise") {
		t.Fatalf("ruleNames() = %q missing new rules", got)
	}
}

func TestKernelOnlyRule(t *testing.T) {
	for rule, want := range map[BandwidthRule]bool{
		NormalScale: false, DPI: false,
		LSCV: true, BetaClosedForm: true, ExactMISE: true,
	} {
		if KernelOnlyRule(rule) != want {
			t.Fatalf("KernelOnlyRule(%s) = %v, want %v", rule, !want, want)
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
