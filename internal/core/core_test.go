package core

import (
	"math"
	"testing"

	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/xrand"
)

func testSamples(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Floor(r.Float64() * 1000)
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{DomainHi: 1}); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := Build([]float64{1}, Options{}); err == nil {
		t.Fatal("empty domain should error")
	}
	if _, err := Build([]float64{1}, Options{Method: "bogus", DomainHi: 1}); err == nil {
		t.Fatal("unknown method should error")
	}
	if _, err := Build(testSamples(100, 1), Options{Method: EquiWidth, Rule: "bogus", DomainHi: 1000}); err == nil {
		t.Fatal("unknown rule should error")
	}
	if _, err := Build(testSamples(100, 1), Options{Method: EquiWidth, Rule: LSCV, DomainHi: 1000}); err == nil {
		t.Fatal("LSCV for histograms should error")
	}
}

func TestBuildEveryMethod(t *testing.T) {
	samples := testSamples(2000, 2)
	for _, m := range Methods() {
		est, err := Build(samples, Options{Method: m, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if est.Name() == "" {
			t.Fatalf("%s: empty Name", m)
		}
		// 10% interior query on uniform data: every method should land
		// within a loose tolerance of 0.1.
		got := est.Selectivity(450, 550)
		if math.Abs(got-0.1) > 0.05 {
			t.Fatalf("%s: σ̂(450,550) = %v, want ~0.1", m, got)
		}
		// Basic sanity.
		if s := est.Selectivity(0, 1000); s < 0.9 || s > 1 {
			t.Fatalf("%s: whole-domain σ̂ = %v", m, s)
		}
		if est.Selectivity(900, 100) != 0 {
			t.Fatalf("%s: inverted query should be 0", m)
		}
	}
}

func TestBuildDefaultsToKernel(t *testing.T) {
	est, err := Build(testSamples(500, 3), Options{DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := est.(*kde.Estimator); !ok {
		t.Fatalf("default method built %T, want *kde.Estimator", est)
	}
}

func TestBuildFixedParameters(t *testing.T) {
	samples := testSamples(1000, 4)
	est, err := Build(samples, Options{Method: EquiWidth, Bins: 7, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	type binned interface{ Bins() int }
	if b, ok := est.(binned); !ok || b.Bins() != 7 {
		t.Fatalf("fixed bins not honoured: %T", est)
	}

	kest, err := Build(samples, Options{Method: Kernel, Bandwidth: 42, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if kest.(*kde.Estimator).Bandwidth() != 42 {
		t.Fatal("fixed bandwidth not honoured")
	}
}

func TestBuildRules(t *testing.T) {
	samples := testSamples(2000, 5)
	for _, rule := range []BandwidthRule{NormalScale, DPI, LSCV} {
		est, err := Build(samples, Options{Method: Kernel, Rule: rule, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatalf("rule %s: %v", rule, err)
		}
		h := est.(*kde.Estimator).Bandwidth()
		if h <= 0 || h > 500 {
			t.Fatalf("rule %s: implausible bandwidth %v", rule, h)
		}
	}
}

func TestBuildKernelChoice(t *testing.T) {
	samples := testSamples(500, 6)
	est, err := Build(samples, Options{Method: Kernel, Kernel: kernel.Biweight{}, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if est.(*kde.Estimator).Kernel().Name() != "biweight" {
		t.Fatal("kernel choice not honoured")
	}
}

func TestBuildASHShifts(t *testing.T) {
	samples := testSamples(500, 7)
	est, err := Build(samples, Options{Method: ASH, ASHShifts: 4, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	type shifted interface{ Shifts() int }
	if s, ok := est.(shifted); !ok || s.Shifts() != 4 {
		t.Fatal("ASH shifts not honoured")
	}
}

func TestMethodsComplete(t *testing.T) {
	if len(Methods()) != 14 {
		t.Fatalf("Methods() lists %d methods", len(Methods()))
	}
}
