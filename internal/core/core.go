// Package core ties the estimator substrates together: it defines the
// common Estimator interface and a single Build entry point that
// constructs any of the paper's estimation methods from a sample set and a
// declarative Options value, applying the paper's smoothing-parameter
// rules when the caller does not fix the parameter explicitly.
package core

import (
	"fmt"
	"time"

	"selest/internal/bandwidth"
	"selest/internal/faultinject"
	"selest/internal/histogram"
	"selest/internal/hybrid"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/sample"
	"selest/internal/wavelet"
)

// Estimator is a one-dimensional range-selectivity estimator: Selectivity
// returns the estimated fraction of records in [a, b], in [0, 1]. The
// contract is total over the query plane: an inverted range (a > b) or a
// NaN bound yields 0, never NaN — degraded queries must degrade the
// answer, not poison downstream cardinality arithmetic.
type Estimator interface {
	Selectivity(a, b float64) float64
	// Name identifies the estimator in experiment output.
	Name() string
}

// Method selects an estimation technique.
type Method string

// The estimation methods of the paper's comparison, plus the v-optimal
// extension.
const (
	// Sampling is the pure-sampling baseline (paper §2).
	Sampling Method = "sampling"
	// Uniform is the one-bin uniform-assumption estimator (System R).
	Uniform Method = "uniform"
	// EquiWidth is the equi-width histogram (paper §3.1).
	EquiWidth Method = "equi-width"
	// EquiDepth is the equi-depth histogram (paper §3.1).
	EquiDepth Method = "equi-depth"
	// MaxDiff is the max-diff histogram (paper §3.1).
	MaxDiff Method = "max-diff"
	// VOptimal is the v-optimal histogram (extension baseline).
	VOptimal Method = "v-optimal"
	// EndBiased is the end-biased histogram (extension): exact singleton
	// buckets for the most frequent values plus an equi-width rest.
	EndBiased Method = "end-biased"
	// Wavelet is the Haar-wavelet synopsis estimator of Matias, Vitter &
	// Wang (the paper's reference [4]; extension comparator).
	Wavelet Method = "wavelet"
	// ASH is the average shifted histogram (paper §3.1).
	ASH Method = "ash"
	// FrequencyPolygon interpolates an equi-width histogram's bin
	// densities linearly (extension): kernel-class convergence at
	// histogram cost, and no jump points.
	FrequencyPolygon Method = "frequency-polygon"
	// Kernel is kernel selectivity estimation (paper §3.2).
	Kernel Method = "kernel"
	// BetaKernel is the beta-kernel estimator (extension): a renormalized
	// Epanechnikov estimator on the bounded domain whose closed-form
	// bandwidth rules make refits sort-dominated. Epanechnikov only.
	BetaKernel Method = "beta-kernel"
	// VariableKernel is sample-point adaptive kernel estimation
	// (Abramson's square-root law; extension beyond the paper).
	VariableKernel Method = "variable-kernel"
	// Hybrid is the paper's histogram/kernel hybrid (§3.3).
	Hybrid Method = "hybrid"
)

// Methods lists every method Build accepts, in comparison order.
func Methods() []Method {
	return []Method{Sampling, Uniform, EquiWidth, EquiDepth, MaxDiff, VOptimal, EndBiased, Wavelet, ASH, FrequencyPolygon, Kernel, BetaKernel, VariableKernel, Hybrid}
}

// BandwidthRule selects how the smoothing parameter is chosen when the
// caller does not fix it (paper §4).
type BandwidthRule string

// The smoothing-parameter selection rules.
const (
	// NormalScale is the paper's normal scale rule (§4.1/§4.2 — the
	// default).
	NormalScale BandwidthRule = "normal-scale"
	// DPI is the direct plug-in rule (§4.3); Options.DPISteps sets the
	// iteration count (default 2, the paper's choice).
	DPI BandwidthRule = "dpi"
	// LSCV is least-squares cross-validation (extension).
	LSCV BandwidthRule = "lscv"
	// BetaClosedForm is the closed-form beta-reference plug-in (extension):
	// O(1) off the fit context's prefix moments, no pilot cascade.
	BetaClosedForm BandwidthRule = "beta-closed-form"
	// ExactMISE is the closed-form CDF-targeted selector (extension): the
	// exact minimiser of the kernel-CDF MISE under the beta reference.
	ExactMISE BandwidthRule = "exact-mise"
)

// Options configures Build. The zero value plus a domain builds a kernel
// estimator with Epanechnikov kernel, boundary kernels, and the normal
// scale rule — the paper's recommended default for smooth data.
type Options struct {
	// Method selects the estimator; empty defaults to Kernel.
	Method Method
	// DomainLo/DomainHi bound the attribute domain. Required.
	DomainLo, DomainHi float64

	// Bins fixes the number of histogram bins; 0 derives it from the
	// bin-width rule. Ignored by non-histogram methods.
	Bins int
	// MaxBins caps rule-derived bin counts (0 = 8192, a safety net for
	// degenerate scale estimates). Ignored when Bins is set.
	MaxBins int
	// ASHShifts sets the number of shifted histograms for ASH
	// (0 = 10, the paper's figure-12 configuration).
	ASHShifts int
	// Singletons sets the number of exact singleton buckets for the
	// end-biased histogram (0 = 16).
	Singletons int
	// WaveletCoefficients sets the synopsis size of the wavelet estimator
	// (0 = 64).
	WaveletCoefficients int

	// Bandwidth fixes the kernel bandwidth; 0 derives it from Rule.
	Bandwidth float64
	// Rule selects the smoothing-parameter rule when Bins/Bandwidth are
	// derived; empty defaults to NormalScale.
	Rule BandwidthRule
	// DPISteps is the DPI iteration count; 0 defaults to 2.
	DPISteps int
	// Kernel selects the kernel function; nil defaults to Epanechnikov.
	Kernel kernel.Kernel
	// Boundary selects the kernel boundary treatment; the zero value is
	// kde.BoundaryNone. The paper's best kernel configuration uses
	// kde.BoundaryKernels.
	Boundary kde.BoundaryMode

	// HybridConfig tunes the hybrid estimator; the zero value applies the
	// defaults of package hybrid.
	HybridConfig hybrid.Config

	// Robust routes construction through the graceful-degradation ladder
	// of internal/robust: inputs are sanitized, fit failures step down the
	// ladder (kernel → equi-depth → sampling → uniform), and every
	// estimate is guarded to be finite and in [0, 1]. The flag is
	// interpreted by the top-level selest.Build (and cmd/selest's -robust
	// flag); core.Build itself always performs the strict single-method
	// fit.
	Robust bool
}

// Build constructs the estimator described by opts from the sample set.
// Structural failures wrap the typed sentinel errors (ErrEmptySample,
// ErrInvalidDomain, ErrBadOption) so callers can branch with errors.Is.
// Every successful fit records its method, duration, and derived
// smoothing parameter into the telemetry registry.
func Build(samples []float64, opts Options) (Estimator, error) {
	method := opts.Method
	if method == "" {
		method = Kernel
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: build %s: %w", method, ErrEmptySample)
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: build %s: %w", method, err)
	}
	start := time.Now()
	est, err := dispatch(samples, opts, method)
	recordFit(method, start, err)
	return est, err
}

// dispatch routes the validated option set to the method's builder.
func dispatch(samples []float64, opts Options, method Method) (Estimator, error) {
	if err := faultinject.Check("core.build." + string(method)); err != nil {
		return nil, fmt.Errorf("core: build %s: %w", method, err)
	}
	switch method {
	case Sampling:
		return sample.NewPureEstimator(samples), nil
	case Uniform:
		return histogram.BuildUniform(samples, opts.DomainLo, opts.DomainHi)
	case EquiWidth:
		k, err := binCount(samples, opts, method)
		if err != nil {
			return nil, err
		}
		return histogram.BuildEquiWidth(samples, k, opts.DomainLo, opts.DomainHi)
	case EquiDepth:
		k, err := binCount(samples, opts, method)
		if err != nil {
			return nil, err
		}
		return histogram.BuildEquiDepth(samples, k)
	case MaxDiff:
		k, err := binCount(samples, opts, method)
		if err != nil {
			return nil, err
		}
		return histogram.BuildMaxDiff(samples, k)
	case VOptimal:
		k, err := binCount(samples, opts, method)
		if err != nil {
			return nil, err
		}
		return histogram.BuildVOptimal(samples, k, 0)
	case EndBiased:
		k, err := binCount(samples, opts, method)
		if err != nil {
			return nil, err
		}
		singles := opts.Singletons
		if singles == 0 {
			singles = 16
		}
		return histogram.BuildEndBiased(samples, singles, k, opts.DomainLo, opts.DomainHi)
	case Wavelet:
		return wavelet.New(samples, wavelet.Config{
			Coefficients: opts.WaveletCoefficients,
			DomainLo:     opts.DomainLo,
			DomainHi:     opts.DomainHi,
		})
	case ASH:
		k, err := binCount(samples, opts, method)
		if err != nil {
			return nil, err
		}
		shifts := opts.ASHShifts
		if shifts == 0 {
			shifts = 10
		}
		return histogram.BuildASH(samples, k, shifts, opts.DomainLo, opts.DomainHi)
	case FrequencyPolygon:
		k, err := binCount(samples, opts, method)
		if err != nil {
			return nil, err
		}
		return histogram.BuildFrequencyPolygon(samples, k, opts.DomainLo, opts.DomainHi)
	case Kernel:
		// One fit context serves the bandwidth rule (every DPI pilot, every
		// LSCV grid point) and the final estimator: the sample is sorted and
		// moment-indexed exactly once per Build.
		ctx, err := kde.NewFitContext(samples)
		if err != nil {
			return nil, err
		}
		h, err := kernelBandwidthCtx(ctx, opts, method)
		if err != nil {
			return nil, err
		}
		return ctx.NewEstimator(kde.Config{
			Kernel:    opts.Kernel,
			Bandwidth: h,
			Boundary:  opts.Boundary,
			DomainLo:  opts.DomainLo,
			DomainHi:  opts.DomainHi,
		})
	case BetaKernel:
		// Same shared-context discipline as Kernel: one sort and one moment
		// index serve the closed-form rule and the estimator. The default
		// rule here is BetaClosedForm — the rule the method exists for.
		ctx, err := kde.NewFitContext(samples)
		if err != nil {
			return nil, err
		}
		betaOpts := opts
		if betaOpts.Rule == "" {
			betaOpts.Rule = BetaClosedForm
		}
		h, err := kernelBandwidthCtx(ctx, betaOpts, method)
		if err != nil {
			return nil, err
		}
		return ctx.NewBetaEstimator(kde.BetaConfig{
			Bandwidth: h,
			DomainLo:  opts.DomainLo,
			DomainHi:  opts.DomainHi,
		})
	case VariableKernel:
		h, err := kernelBandwidth(samples, opts, method)
		if err != nil {
			return nil, err
		}
		return kde.NewVariable(samples, kde.VariableConfig{
			Kernel:         opts.Kernel,
			PilotBandwidth: h,
			Reflect:        opts.Boundary != kde.BoundaryNone,
			DomainLo:       opts.DomainLo,
			DomainHi:       opts.DomainHi,
		})
	case Hybrid:
		return hybrid.New(samples, opts.DomainLo, opts.DomainHi, opts.HybridConfig)
	default:
		return nil, fmt.Errorf("core: unknown method %q (valid: %s): %w", method, methodNames(), ErrBadOption)
	}
}

// binCount resolves the histogram bin count from Options, recording the
// derived count for the method in the telemetry registry.
func binCount(samples []float64, opts Options, method Method) (int, error) {
	if opts.Bins > 0 {
		recordBins(method, opts.Bins)
		return opts.Bins, nil
	}
	maxBins := opts.MaxBins
	if maxBins == 0 {
		maxBins = 8192
	}
	rule := opts.Rule
	if rule == "" {
		rule = NormalScale
	}
	var (
		width float64
		err   error
	)
	switch rule {
	case NormalScale:
		width, err = bandwidth.NormalScaleBinWidth(samples)
	case DPI:
		steps := opts.DPISteps
		if steps == 0 {
			steps = 2
		}
		width, err = bandwidth.DPIBinWidth(samples, steps, opts.DomainLo, opts.DomainHi)
	case LSCV, BetaClosedForm, ExactMISE:
		return 0, fmt.Errorf("core: %s selects kernel bandwidths, not bin counts: %w", rule, ErrBadOption)
	default:
		return 0, fmt.Errorf("core: unknown bandwidth rule %q (valid: %s): %w", rule, ruleNames(), ErrBadOption)
	}
	if err != nil {
		return 0, err
	}
	k := bandwidth.BinsForWidth(width, opts.DomainLo, opts.DomainHi, maxBins)
	recordBins(method, k)
	return k, nil
}

// kernelBandwidth resolves the kernel bandwidth from Options, recording
// the derived bandwidth for the method in the telemetry registry.
func kernelBandwidth(samples []float64, opts Options, method Method) (float64, error) {
	if opts.Bandwidth > 0 {
		recordBandwidth(method, opts.Bandwidth)
		return opts.Bandwidth, nil
	}
	ctx, err := kde.NewFitContext(samples)
	if err != nil {
		return 0, err
	}
	return kernelBandwidthCtx(ctx, opts, method)
}

// kernelBandwidthCtx is kernelBandwidth over a pre-built fit context, so
// the Kernel build path shares one sorted copy between rule and estimator.
func kernelBandwidthCtx(ctx *kde.FitContext, opts Options, method Method) (float64, error) {
	if opts.Bandwidth > 0 {
		recordBandwidth(method, opts.Bandwidth)
		return opts.Bandwidth, nil
	}
	k := opts.Kernel
	if k == nil {
		k = kernel.Epanechnikov{}
	}
	rule := opts.Rule
	if rule == "" {
		rule = NormalScale
	}
	var (
		h   float64
		err error
	)
	switch rule {
	case NormalScale:
		h, err = bandwidth.NormalScaleBandwidthSorted(ctx.Sorted(), k)
	case DPI:
		steps := opts.DPISteps
		if steps == 0 {
			steps = 2
		}
		h, err = bandwidth.DPIBandwidthContext(ctx, k, steps, opts.DomainLo, opts.DomainHi)
	case LSCV:
		span := opts.DomainHi - opts.DomainLo
		h, err = bandwidth.LSCVBandwidthSorted(ctx.Sorted(), k, span/1e4, span/2, 48, 0)
	case BetaClosedForm:
		h, err = bandwidth.BetaClosedFormContext(ctx)
	case ExactMISE:
		h, err = bandwidth.ExactMISECDFContext(ctx)
	default:
		return 0, fmt.Errorf("core: unknown bandwidth rule %q (valid: %s): %w", rule, ruleNames(), ErrBadOption)
	}
	if err != nil {
		return 0, err
	}
	recordBandwidth(method, h)
	return h, nil
}
