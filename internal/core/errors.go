package core

import (
	"fmt"
	"math"
	"strings"

	"selest/internal/errs"
	"selest/internal/kernel"
)

// The typed build errors. Build and the robust ladder wrap these with
// %w, so callers branch with errors.Is instead of matching message
// strings:
//
//	if _, err := selest.Build(nil, opts); errors.Is(err, selest.ErrEmptySample) { ... }
//
// The sentinels themselves live in the leaf package internal/errs so the
// parameter packages (bandwidth, hybrid) can wrap the same values without
// importing core; these aliases keep the public surface unchanged.
var (
	// ErrEmptySample reports a sample set with nothing to estimate from:
	// empty, or (through the robust ladder) containing no finite value.
	ErrEmptySample = errs.ErrEmptySample
	// ErrInvalidDomain reports a domain that is not a proper finite
	// interval (DomainHi must exceed DomainLo).
	ErrInvalidDomain = errs.ErrInvalidDomain
	// ErrBadOption reports an Options field outside its valid range: an
	// unknown method or rule, a negative count, a non-finite bandwidth,
	// or a rule/method combination that cannot work.
	ErrBadOption = errs.ErrBadOption
)

// Validate checks the option set for structural errors — the caller
// bugs no estimator could fit around. Every failure wraps one of the
// sentinel errors above. A zero Method or Rule is valid (it means the
// documented default); Validate does not require samples, which Build
// checks separately against ErrEmptySample.
func (o Options) Validate() error {
	if math.IsNaN(o.DomainLo) || math.IsNaN(o.DomainHi) {
		return fmt.Errorf("domain [%v, %v] has NaN bounds: %w", o.DomainLo, o.DomainHi, ErrInvalidDomain)
	}
	if math.IsInf(o.DomainLo, 0) || math.IsInf(o.DomainHi, 0) {
		return fmt.Errorf("domain [%v, %v] has infinite bounds: %w", o.DomainLo, o.DomainHi, ErrInvalidDomain)
	}
	if !(o.DomainHi > o.DomainLo) {
		return fmt.Errorf("domain [%v, %v] is empty: %w", o.DomainLo, o.DomainHi, ErrInvalidDomain)
	}
	if o.Method != "" && !knownMethod(o.Method) {
		return fmt.Errorf("unknown method %q (valid: %s): %w", o.Method, methodNames(), ErrBadOption)
	}
	if o.Rule != "" && !knownRule(o.Rule) {
		return fmt.Errorf("unknown bandwidth rule %q (valid: %s): %w", o.Rule, ruleNames(), ErrBadOption)
	}
	if o.Bins < 0 {
		return fmt.Errorf("bins %d is negative: %w", o.Bins, ErrBadOption)
	}
	if o.MaxBins < 0 {
		return fmt.Errorf("max bins %d is negative: %w", o.MaxBins, ErrBadOption)
	}
	if o.ASHShifts < 0 {
		return fmt.Errorf("ASH shifts %d is negative: %w", o.ASHShifts, ErrBadOption)
	}
	if o.Singletons < 0 {
		return fmt.Errorf("singletons %d is negative: %w", o.Singletons, ErrBadOption)
	}
	if o.WaveletCoefficients < 0 {
		return fmt.Errorf("wavelet coefficients %d is negative: %w", o.WaveletCoefficients, ErrBadOption)
	}
	if o.DPISteps < 0 {
		return fmt.Errorf("DPI steps %d is negative: %w", o.DPISteps, ErrBadOption)
	}
	if o.Bandwidth < 0 || math.IsNaN(o.Bandwidth) || math.IsInf(o.Bandwidth, 0) {
		return fmt.Errorf("bandwidth %v is not a non-negative finite value: %w", o.Bandwidth, ErrBadOption)
	}
	if KernelOnlyRule(o.Rule) && o.Bins == 0 && isHistogramMethod(o.Method) {
		return fmt.Errorf("%s selects kernel bandwidths, not bin counts (method %s): %w", o.Rule, o.Method, ErrBadOption)
	}
	if o.Method == BetaKernel {
		if _, ok := o.Kernel.(kernel.Epanechnikov); o.Kernel != nil && !ok {
			return fmt.Errorf("beta-kernel serves the Epanechnikov kernel only (got %s): %w", o.Kernel.Name(), ErrBadOption)
		}
	}
	if o.Method == Hybrid {
		if err := o.HybridConfig.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// knownMethod reports whether m is one of the dispatchable methods.
func knownMethod(m Method) bool {
	for _, k := range Methods() {
		if k == m {
			return true
		}
	}
	return false
}

// isHistogramMethod reports whether m resolves its smoothing parameter
// through a bin-width rule rather than a kernel bandwidth.
func isHistogramMethod(m Method) bool {
	switch m {
	case EquiWidth, EquiDepth, MaxDiff, VOptimal, EndBiased, ASH, FrequencyPolygon:
		return true
	}
	return false
}

// BandwidthRules lists every rule Build accepts.
func BandwidthRules() []BandwidthRule {
	return []BandwidthRule{NormalScale, DPI, LSCV, BetaClosedForm, ExactMISE}
}

// knownRule reports whether r is one of the dispatchable rules.
func knownRule(r BandwidthRule) bool {
	for _, k := range BandwidthRules() {
		if k == r {
			return true
		}
	}
	return false
}

// KernelOnlyRule reports whether r selects kernel bandwidths exclusively
// — it cannot derive a histogram bin count. LSCV cross-validates a kernel
// estimator; the closed-form rules target kernel AMISE/CDF-MISE directly.
func KernelOnlyRule(r BandwidthRule) bool {
	switch r {
	case LSCV, BetaClosedForm, ExactMISE:
		return true
	}
	return false
}

// methodNames renders the valid method list for error messages.
func methodNames() string {
	ms := Methods()
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = string(m)
	}
	return strings.Join(parts, ", ")
}

// ruleNames renders the valid rule list for error messages.
func ruleNames() string {
	rs := BandwidthRules()
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = string(r)
	}
	return strings.Join(parts, ", ")
}

// ParseMethod resolves a method name as written on a command line or in
// a config file: case-insensitive, surrounding space ignored. The error
// for an unknown name lists every valid method and wraps ErrBadOption.
func ParseMethod(s string) (Method, error) {
	norm := Method(strings.ToLower(strings.TrimSpace(s)))
	if knownMethod(norm) {
		return norm, nil
	}
	return "", fmt.Errorf("unknown method %q (valid: %s): %w", s, methodNames(), ErrBadOption)
}

// ParseBandwidthRule resolves a smoothing-rule name the same way
// ParseMethod resolves methods.
func ParseBandwidthRule(s string) (BandwidthRule, error) {
	norm := BandwidthRule(strings.ToLower(strings.TrimSpace(s)))
	for _, r := range BandwidthRules() {
		if r == norm {
			return r, nil
		}
	}
	return "", fmt.Errorf("unknown bandwidth rule %q (valid: %s): %w", s, ruleNames(), ErrBadOption)
}
