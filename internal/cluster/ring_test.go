package cluster

import (
	"errors"
	"fmt"
	"testing"

	"selest/internal/errs"
)

func mustRing(t *testing.T, members []string, rf int) *Ring {
	t.Helper()
	r, err := New(members, rf)
	if err != nil {
		t.Fatalf("New(%v, %d): %v", members, rf, err)
	}
	return r
}

func fleet(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("10.0.0.%d:7655", i+1)
	}
	return m
}

func keys(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return out
}

// Removing a member must reassign exactly the keys that member owned —
// every other key keeps its primary. This is THE rendezvous property:
// movement ≈ K/n, not the ~K reshuffle a modulo router suffers.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	const n, k = 8, 4096
	r := mustRing(t, fleet(n), 1)
	victim := r.Members()[3]
	shrunk, err := r.Remove(victim)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, key := range keys(k) {
		before, after := r.Primary(key), shrunk.Primary(key)
		if before == victim {
			moved++
			if after == victim {
				t.Fatalf("key %q still routed to removed member", key)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %s → %s though %s was not removed",
				key, before, after, victim)
		}
	}
	// The victim owned ≈ K/n keys; allow a generous 2× band around the
	// expectation so the test pins the property, not the hash's luck.
	lo, hi := k/(2*n), 2*k/n
	if moved < lo || moved > hi {
		t.Fatalf("remove moved %d keys, want ≈ K/n = %d (band [%d, %d])", moved, k/n, lo, hi)
	}
}

// Adding a member must steal ≈ K/(n+1) keys, all of which land on the
// new member; nobody else's keys move anywhere.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	const n, k = 8, 4096
	r := mustRing(t, fleet(n), 1)
	newcomer := "10.0.1.1:7655"
	grown, err := r.Add(newcomer)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, key := range keys(k) {
		before, after := r.Primary(key), grown.Primary(key)
		if after == before {
			continue
		}
		moved++
		if after != newcomer {
			t.Fatalf("key %q moved %s → %s, but only %s joined", key, before, after, newcomer)
		}
	}
	lo, hi := k/(2*(n+1)), 2*k/(n+1)
	if moved < lo || moved > hi {
		t.Fatalf("add moved %d keys, want ≈ K/(n+1) = %d (band [%d, %d])", moved, k/(n+1), lo, hi)
	}
}

// With rf > 1, removing a member must leave each key's surviving
// replicas in their old relative order: the filtered old preference list
// is a prefix of the new one, and exactly one fresh member fills the
// hole. Failover order is stable under membership change.
func TestRingReplicaSetStableUnderRemove(t *testing.T) {
	const n, k = 6, 2048
	r := mustRing(t, fleet(n), 2)
	victim := r.Members()[1]
	shrunk, err := r.Remove(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys(k) {
		before := r.Replicas(key)
		after := shrunk.Replicas(key)
		if len(after) != 2 {
			t.Fatalf("key %q: %d replicas after remove, want 2", key, len(after))
		}
		var kept []string
		for _, m := range before {
			if m != victim {
				kept = append(kept, m)
			}
		}
		for i, m := range kept {
			if after[i] != m {
				t.Fatalf("key %q: survivors reordered: before %v, after %v", key, before, after)
			}
		}
		for _, m := range after {
			if m == victim {
				t.Fatalf("key %q: removed member still in replica set %v", key, after)
			}
		}
	}
}

// Preference lists are deterministic across independently built rings
// and insensitive to member input order — the property that lets every
// client route without coordination.
func TestRingDeterminism(t *testing.T) {
	members := fleet(5)
	shuffled := []string{members[3], members[0], members[4], members[2], members[1]}
	a := mustRing(t, members, 3)
	b := mustRing(t, shuffled, 3)
	for _, key := range keys(512) {
		pa, pb := a.Replicas(key), b.Replicas(key)
		if len(pa) != len(pb) {
			t.Fatalf("length mismatch for %q", key)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("key %q: rings disagree: %v vs %v", key, pa, pb)
			}
		}
	}
}

// Ownership must stay within a constant factor of the fair share K/n.
func TestRingBalance(t *testing.T) {
	const n, k = 8, 65536
	r := mustRing(t, fleet(n), 1)
	counts := map[string]int{}
	for _, key := range keys(k) {
		counts[r.Primary(key)]++
	}
	fair := float64(k) / n
	for _, m := range r.Members() {
		share := float64(counts[m]) / fair
		if share < 0.5 || share > 1.7 {
			t.Fatalf("member %s owns %d keys (%.2f× fair share %v); distribution skewed: %v",
				m, counts[m], share, fair, counts)
		}
	}
}

// Replica sets never repeat a member, and the first entry is Primary.
func TestRingReplicasDistinct(t *testing.T) {
	r := mustRing(t, fleet(4), 3)
	for _, key := range keys(512) {
		reps := r.Replicas(key)
		if len(reps) != 3 {
			t.Fatalf("key %q: %d replicas, want 3", key, len(reps))
		}
		if reps[0] != r.Primary(key) {
			t.Fatalf("key %q: Replicas()[0] %s != Primary() %s", key, reps[0], r.Primary(key))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("key %q: duplicate member %s in %v", key, m, reps)
			}
			seen[m] = true
		}
	}
}

func TestRingConstructionErrors(t *testing.T) {
	if _, err := New(nil, 1); !errors.Is(err, errs.ErrBadOption) {
		t.Fatalf("empty member list: got %v, want ErrBadOption", err)
	}
	if _, err := New([]string{"a", ""}, 1); !errors.Is(err, errs.ErrBadOption) {
		t.Fatalf("empty member name: got %v, want ErrBadOption", err)
	}
	if _, err := New([]string{"a"}, 0); !errors.Is(err, errs.ErrBadOption) {
		t.Fatalf("rf 0: got %v, want ErrBadOption", err)
	}
	r := mustRing(t, []string{"a", "a", "b"}, 5)
	if r.Len() != 2 {
		t.Fatalf("dedup: Len() = %d, want 2", r.Len())
	}
	if r.RF() != 2 {
		t.Fatalf("rf clamp: RF() = %d, want 2", r.RF())
	}
	only := mustRing(t, []string{"a"}, 1)
	if _, err := only.Remove("a"); !errors.Is(err, errs.ErrBadOption) {
		t.Fatalf("removing last member: got %v, want ErrBadOption", err)
	}
}

func BenchmarkClusterReplicas(b *testing.B) {
	r, err := New(fleet(8), 2)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]string, 0, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = r.AppendReplicas(dst[:0], "tenant-0042")
	}
}
