// Package cluster is the tenant→replica placement layer for a
// scaled-out selestd fleet: a rendezvous-hash (highest-random-weight)
// ring mapping every key to an ordered preference list of members.
//
// Rendezvous hashing was chosen over a virtual-node consistent-hash
// circle because the fleet is small (single digits to low tens of
// replicas) and the properties the routing client needs fall out of it
// directly, with no tuning knobs:
//
//   - Minimal movement: removing a member reassigns only the keys that
//     member owned (≈ K/n of them); adding one steals ≈ K/(n+1) keys,
//     evenly from everyone. No other key moves. The property tests pin
//     both bounds.
//   - Ordered preference: each key scores every member and ranks them;
//     the top RF members are its replica set, and the ranking below the
//     cut is exactly the failover order. Membership change never reorders
//     the survivors — a member's score for a key depends on nothing but
//     the pair itself.
//   - Determinism: every client with the same member list routes every
//     key identically, with no coordination and no shared state. The
//     hash is a fixed FNV-1a/splitmix64 composition, never Go's
//     seed-randomised maphash, so two processes agree.
//
// A Ring is immutable; Add and Remove return new rings. That makes a
// ring safe to share across goroutines with no locking, and membership
// change an atomic pointer swap in the caller.
package cluster

import (
	"fmt"
	"sort"

	"selest/internal/errs"
)

// Ring maps keys to an ordered preference list over a fixed member set.
// The zero value is not usable; construct with New.
type Ring struct {
	members []string // sorted, deduplicated
	rf      int      // replicas per key, clamped to len(members)
}

// New builds a ring over members with rf replicas per key. Members are
// deduplicated and sorted (input order never matters); empty member
// names and rf < 1 are typed errs.ErrBadOption errors. rf larger than
// the member count is clamped — a 2-member ring with rf=3 simply
// replicates everywhere.
func New(members []string, rf int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list: %w", errs.ErrBadOption)
	}
	if rf < 1 {
		return nil, fmt.Errorf("cluster: replication factor %d must be >= 1: %w", rf, errs.ErrBadOption)
	}
	sorted := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name: %w", errs.ErrBadOption)
		}
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)
	uniq := sorted[:1]
	for _, m := range sorted[1:] {
		if m != uniq[len(uniq)-1] {
			uniq = append(uniq, m)
		}
	}
	if rf > len(uniq) {
		rf = len(uniq)
	}
	return &Ring{members: uniq, rf: rf}, nil
}

// Members returns the member list (sorted) as a fresh slice.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Len is the member count.
func (r *Ring) Len() int { return len(r.members) }

// RF is the effective replication factor (after clamping).
func (r *Ring) RF() int { return r.rf }

// Add returns a new ring with member added (a no-op copy if already
// present). The original rf request is re-clamped against the grown set.
func (r *Ring) Add(member string) (*Ring, error) {
	return New(append(r.Members(), member), r.rf)
}

// Remove returns a new ring without member. Removing the last member is
// an error — an empty ring routes nothing.
func (r *Ring) Remove(member string) (*Ring, error) {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("cluster: removing %q empties the ring: %w", member, errs.ErrBadOption)
	}
	return New(kept, r.rf)
}

// score is the rendezvous weight of (member, key): FNV-1a over
// member\x00key, then a splitmix64 finalizer. FNV alone correlates
// nearby strings ("replica-1" vs "replica-2" differ in one octet late in
// the stream); the avalanche step decorrelates them so the balance bound
// holds on realistic member names.
func score(member, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= prime64
	}
	h ^= 0 // the separator octet: "ab"+"c" never collides with "a"+"bc"
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// AppendReplicas appends key's preference list — the rf highest-scoring
// members, best first — to dst and returns it. Ties (astronomically
// rare with a 64-bit score) break toward the lexically smaller member so
// the order stays total and every client agrees.
//
// Selection is repeated argmax over the member slice: O(members · rf)
// with no allocation beyond dst, which at fleet sizes this package
// targets beats building and sorting a scored copy.
func (r *Ring) AppendReplicas(dst []string, key string) []string {
	base := len(dst)
	for k := 0; k < r.rf; k++ {
		best := ""
		var bestScore uint64
		for _, m := range r.members {
			taken := false
			for _, chosen := range dst[base:] {
				if chosen == m {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if s := score(m, key); best == "" || s > bestScore {
				// First-wins on a tied score: members iterate in sorted
				// order, so the lexically smaller one sticks.
				best, bestScore = m, s
			}
		}
		dst = append(dst, best)
	}
	return dst
}

// Replicas returns key's preference list as a fresh slice.
func (r *Ring) Replicas(key string) []string {
	return r.AppendReplicas(make([]string, 0, r.rf), key)
}

// Primary returns the single best member for key — Replicas(key)[0]
// without the slice.
func (r *Ring) Primary(key string) string {
	best := r.members[0]
	bestScore := score(best, key)
	for _, m := range r.members[1:] {
		if s := score(m, key); s > bestScore {
			best, bestScore = m, s
		}
	}
	return best
}
