package query

import (
	"math"
	"testing"

	"selest/internal/xrand"
)

func uniformRecords(n int, hi float64, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Floor(r.Float64() * hi)
	}
	return out
}

func TestGenerateValidation(t *testing.T) {
	r := xrand.New(1)
	recs := uniformRecords(100, 1000, 1)
	if _, err := Generate(nil, 0, 1000, 0.01, 10, r); err == nil {
		t.Fatal("no records should error")
	}
	if _, err := Generate(recs, 5, 5, 0.01, 10, r); err == nil {
		t.Fatal("empty domain should error")
	}
	if _, err := Generate(recs, 0, 1000, 0, 10, r); err == nil {
		t.Fatal("zero size should error")
	}
	if _, err := Generate(recs, 0, 1000, 1.5, 10, r); err == nil {
		t.Fatal("size >= 1 should error")
	}
	if _, err := Generate(recs, 0, 1000, 0.01, 0, r); err == nil {
		t.Fatal("zero count should error")
	}
}

func TestGenerateBasics(t *testing.T) {
	recs := uniformRecords(10000, 1000, 2)
	w, err := Generate(recs, 0, 1000, 0.05, 500, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 500 || len(w.TrueCounts) != 500 {
		t.Fatalf("workload sizes: %d/%d", len(w.Queries), len(w.TrueCounts))
	}
	if w.N != 10000 || w.SizeFrac != 0.05 {
		t.Fatalf("metadata: N=%d size=%v", w.N, w.SizeFrac)
	}
	for i, q := range w.Queries {
		if q.A < 0 || q.B > 1000 {
			t.Fatalf("query %d outside domain: %+v", i, q)
		}
		if math.Abs(q.Width()-50) > 1e-9 {
			t.Fatalf("query %d width %v, want 50", i, q.Width())
		}
	}
}

func TestGenerateGroundTruthExact(t *testing.T) {
	recs := uniformRecords(5000, 100, 4)
	w, err := Generate(recs, 0, 100, 0.1, 50, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		want := 0
		for _, v := range recs {
			if v >= q.A && v <= q.B {
				want++
			}
		}
		if w.TrueCounts[i] != want {
			t.Fatalf("query %d: TrueCounts=%d scan=%d", i, w.TrueCounts[i], want)
		}
		if got := w.TrueSelectivity(i); got != float64(want)/5000 {
			t.Fatalf("TrueSelectivity mismatch at %d", i)
		}
	}
}

func TestGeneratePositionsFollowData(t *testing.T) {
	// Records concentrated at the left: query centres must concentrate
	// there too.
	r := xrand.New(6)
	recs := make([]float64, 10000)
	for i := range recs {
		recs[i] = math.Floor(r.Exponential(1.0/50) + 100) // bulk in [100, ~400]
	}
	w, err := Generate(recs, 0, 1000, 0.01, 1000, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	left := 0
	for _, q := range w.Queries {
		if q.A+q.Width()/2 < 500 {
			left++
		}
	}
	if left < 900 {
		t.Fatalf("only %d/1000 queries in the data-dense half", left)
	}
}

func TestGenerateRejectsUnplaceable(t *testing.T) {
	// All records hug the left boundary; 50%-width queries centred there
	// always stick out, so generation must fail instead of spinning.
	recs := []float64{0, 1, 2}
	if _, err := Generate(recs, 0, 1000, 0.5, 10, xrand.New(8)); err == nil {
		t.Fatal("unplaceable workload should error")
	}
}

func TestGenerateAll(t *testing.T) {
	recs := uniformRecords(10000, 1000, 9)
	ws, err := GenerateAll(recs, 0, 1000, 100, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != len(StandardSizes) {
		t.Fatalf("got %d workloads", len(ws))
	}
	for _, s := range StandardSizes {
		w, ok := ws[s]
		if !ok {
			t.Fatalf("missing size %v", s)
		}
		if len(w.Queries) != 100 {
			t.Fatalf("size %v: %d queries", s, len(w.Queries))
		}
	}
}

func TestPositionSweep(t *testing.T) {
	recs := uniformRecords(10000, 1000, 11)
	w, err := PositionSweep(recs, 0, 1000, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 100 {
		t.Fatalf("%d queries", len(w.Queries))
	}
	if w.Queries[0].A != 0 {
		t.Fatalf("first query at %v, want 0", w.Queries[0].A)
	}
	last := w.Queries[len(w.Queries)-1]
	if math.Abs(last.B-1000) > 1e-9 {
		t.Fatalf("last query ends at %v, want 1000", last.B)
	}
	// Monotone positions.
	for i := 1; i < len(w.Queries); i++ {
		if w.Queries[i].A <= w.Queries[i-1].A {
			t.Fatal("sweep positions not increasing")
		}
	}
}

func TestPositionSweepValidation(t *testing.T) {
	recs := uniformRecords(10, 10, 12)
	if _, err := PositionSweep(nil, 0, 10, 0.1, 10); err == nil {
		t.Fatal("no records should error")
	}
	if _, err := PositionSweep(recs, 0, 10, 0, 10); err == nil {
		t.Fatal("zero size should error")
	}
	if _, err := PositionSweep(recs, 0, 10, 0.1, 1); err == nil {
		t.Fatal("single step should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	recs := uniformRecords(1000, 100, 13)
	w1, err := Generate(recs, 0, 100, 0.05, 50, xrand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(recs, 0, 100, 0.05, 50, xrand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Queries {
		if w1.Queries[i] != w2.Queries[i] {
			t.Fatalf("queries differ at %d", i)
		}
	}
}
