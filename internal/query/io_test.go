package query

import (
	"bytes"
	"testing"

	"selest/internal/xrand"
)

func TestWorkloadSaveLoadRoundTrip(t *testing.T) {
	recs := uniformRecords(5000, 1000, 20)
	w, err := Generate(recs, 0, 1000, 0.05, 200, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != w.N || g.SizeFrac != w.SizeFrac || len(g.Queries) != len(w.Queries) {
		t.Fatalf("metadata mismatch: %+v", g)
	}
	for i := range w.Queries {
		if g.Queries[i] != w.Queries[i] || g.TrueCounts[i] != w.TrueCounts[i] {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	recs := uniformRecords(1000, 100, 22)
	w, err := Generate(recs, 0, 100, 0.1, 50, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/q.selq"
	if err := w.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Queries) != 50 {
		t.Fatalf("loaded %d queries", len(g.Queries))
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestWorkloadLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a query file"))); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
	var buf bytes.Buffer
	buf.Write(queryMagic[:])
	buf.Write([]byte{7, 0}) // bad version
	if _, err := Load(&buf); err == nil {
		t.Fatal("bad version should fail")
	}
	// Truncated body.
	buf.Reset()
	buf.Write(queryMagic[:])
	buf.Write([]byte{1, 0})
	buf.Write(make([]byte, 10)) // not enough for the header
	if _, err := Load(&buf); err == nil {
		t.Fatal("truncated header should fail")
	}
}

func TestWorkloadLoadRejectsInvalidQueries(t *testing.T) {
	// Craft a file whose single query is inverted.
	w := &Workload{
		Queries:    []Query{{A: 10, B: 5}},
		TrueCounts: []int{1},
		SizeFrac:   0.01,
		N:          100,
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("inverted query should fail validation on load")
	}
}
