// Package query generates the evaluation's range-query workloads and their
// ground truth. Following paper §5.1.2, a query file holds queries of one
// fixed size (1%, 2%, 5% or 10% of the domain); query positions follow the
// data distribution (a random record becomes the query centre); positions
// that would push the range outside the domain are rejected.
package query

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/fsort"
	"selest/internal/xrand"
)

// Query is a one-dimensional range query Q(a, b), a <= b.
type Query struct {
	A, B float64
}

// Width returns b − a.
func (q Query) Width() float64 { return q.B - q.A }

// Workload is a size-separated query file with precomputed ground truth
// against the generating data file.
type Workload struct {
	// Queries holds the ranges.
	Queries []Query
	// SizeFrac is the query width as a fraction of the domain.
	SizeFrac float64
	// TrueCounts holds the exact result size |Q(a,b)| of each query
	// against the data file the workload was generated for.
	TrueCounts []int
	// N is the number of records in that data file.
	N int
}

// StandardSizes are the paper's query sizes: 1%, 2%, 5% and 10% of the
// domain.
var StandardSizes = []float64{0.01, 0.02, 0.05, 0.10}

// Generate builds a workload of count queries of width
// sizeFrac·(domainHi−domainLo) whose centres are sampled from the records
// (so positions follow the data distribution). Queries partially outside
// the domain are rejected and redrawn; ground truth is computed exactly
// against the records.
func Generate(records []float64, domainLo, domainHi, sizeFrac float64, count int, rng *xrand.RNG) (*Workload, error) {
	return GenerateAligned(records, domainLo, domainHi, sizeFrac, count, rng, false)
}

// GenerateAligned is Generate with optional integer alignment: when
// alignInt is set, query bounds snap to half-integers so each query covers
// a whole number of integer attribute values. The paper's data files live
// on integer domains, so its query files implicitly have this property; on
// small domains (p ≈ 10, where a 1% query spans only ~10 distinct values)
// unaligned continuous queries would add a spurious discretisation error
// of order 1/span that the paper's setup does not contain.
func GenerateAligned(records []float64, domainLo, domainHi, sizeFrac float64, count int, rng *xrand.RNG, alignInt bool) (*Workload, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("query: no records to position queries on")
	}
	if !(domainHi > domainLo) {
		return nil, fmt.Errorf("query: domain [%v, %v] is empty", domainLo, domainHi)
	}
	if sizeFrac <= 0 || sizeFrac >= 1 {
		return nil, fmt.Errorf("query: size fraction must be in (0,1), got %v", sizeFrac)
	}
	if count <= 0 {
		return nil, fmt.Errorf("query: count must be positive, got %d", count)
	}
	width := sizeFrac * (domainHi - domainLo)
	sorted := append([]float64(nil), records...)
	fsort.Float64s(sorted)

	w := &Workload{
		Queries:    make([]Query, 0, count),
		TrueCounts: make([]int, 0, count),
		SizeFrac:   sizeFrac,
		N:          len(records),
	}
	// Rejection loop with an attempt budget: a pathological file whose
	// records all sit within width/2 of a boundary could otherwise spin
	// forever.
	maxAttempts := 1000 * count
	for attempts := 0; len(w.Queries) < count; attempts++ {
		if attempts >= maxAttempts {
			return nil, fmt.Errorf("query: could not place %d queries of size %v (records too close to the boundaries)", count, sizeFrac)
		}
		centre := records[rng.Intn(len(records))]
		a := centre - width/2
		b := a + width
		if alignInt {
			// Snap to half-integers: the query covers exactly
			// round(width) integer values.
			a = math.Round(a) - 0.5
			b = a + math.Max(math.Round(width), 1)
		}
		if a < domainLo || b > domainHi {
			continue
		}
		w.Queries = append(w.Queries, Query{A: a, B: b})
		w.TrueCounts = append(w.TrueCounts, countRange(sorted, a, b))
	}
	return w, nil
}

// GenerateAll builds one workload per standard size.
func GenerateAll(records []float64, domainLo, domainHi float64, count int, rng *xrand.RNG) (map[float64]*Workload, error) {
	out := make(map[float64]*Workload, len(StandardSizes))
	for _, s := range StandardSizes {
		w, err := Generate(records, domainLo, domainHi, s, count, rng)
		if err != nil {
			return nil, fmt.Errorf("query: size %v: %w", s, err)
		}
		out[s] = w
	}
	return out, nil
}

// PositionSweep builds a workload of fixed-width queries whose left edges
// sweep the domain on an even grid — the workload behind the paper's
// error-versus-position plots (Figs. 3 and 10). Ground truth is exact.
func PositionSweep(records []float64, domainLo, domainHi, sizeFrac float64, steps int) (*Workload, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("query: no records")
	}
	if sizeFrac <= 0 || sizeFrac >= 1 {
		return nil, fmt.Errorf("query: size fraction must be in (0,1), got %v", sizeFrac)
	}
	if steps < 2 {
		return nil, fmt.Errorf("query: need at least 2 sweep steps, got %d", steps)
	}
	width := sizeFrac * (domainHi - domainLo)
	sorted := append([]float64(nil), records...)
	fsort.Float64s(sorted)
	w := &Workload{
		Queries:    make([]Query, 0, steps),
		TrueCounts: make([]int, 0, steps),
		SizeFrac:   sizeFrac,
		N:          len(records),
	}
	span := (domainHi - domainLo) - width
	for i := 0; i < steps; i++ {
		a := domainLo + span*float64(i)/float64(steps-1)
		b := a + width
		w.Queries = append(w.Queries, Query{A: a, B: b})
		w.TrueCounts = append(w.TrueCounts, countRange(sorted, a, b))
	}
	return w, nil
}

// countRange counts sorted values in [a, b].
func countRange(sorted []float64, a, b float64) int {
	lo := sort.SearchFloat64s(sorted, a)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b })
	return hi - lo
}

// TrueSelectivity returns the instance selectivity of query i.
func (w *Workload) TrueSelectivity(i int) float64 {
	return float64(w.TrueCounts[i]) / float64(w.N)
}
