package query

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the workload loader.
func FuzzLoad(f *testing.F) {
	w := &Workload{
		Queries:    []Query{{A: 1, B: 2}, {A: 3, B: 4}},
		TrueCounts: []int{10, 20},
		SizeFrac:   0.01,
		N:          100,
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SELQ"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted workloads must satisfy the structural invariants Load
		// promises.
		if len(loaded.Queries) != len(loaded.TrueCounts) {
			t.Fatal("accepted workload with mismatched slices")
		}
		for i, q := range loaded.Queries {
			if q.B < q.A {
				t.Fatalf("accepted inverted query %d", i)
			}
			if loaded.TrueCounts[i] < 0 {
				t.Fatalf("accepted negative count %d", i)
			}
		}
	})
}
