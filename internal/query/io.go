package query

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary format for query files, mirroring the data-file format so the
// workloads are shareable artifacts like the ones the paper published:
//
//	magic    [4]byte "SELQ"
//	version  uint16
//	sizeFrac float64
//	n        int64   (records in the generating data file)
//	count    uint64
//	per query: a, b float64, trueCount int64

var queryMagic = [4]byte{'S', 'E', 'L', 'Q'}

const queryVersion = 1

// Save writes the workload in the selest query-file format.
func (w *Workload) Save(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := bw.Write(queryMagic[:]); err != nil {
		return fmt.Errorf("query: %w", err)
	}
	header := []any{uint16(queryVersion), w.SizeFrac, int64(w.N), uint64(len(w.Queries))}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("query: %w", err)
		}
	}
	for i, q := range w.Queries {
		rec := []any{q.A, q.B, int64(w.TrueCounts[i])}
		for _, v := range rec {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return fmt.Errorf("query: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Load reads a workload in the selest query-file format.
func Load(in io.Reader) (*Workload, error) {
	br := bufio.NewReader(in)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("query: read magic: %w", err)
	}
	if magic != queryMagic {
		return nil, fmt.Errorf("query: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	if version != queryVersion {
		return nil, fmt.Errorf("query: unsupported version %d", version)
	}
	w := &Workload{}
	var n int64
	var count uint64
	for _, dst := range []any{&w.SizeFrac, &n, &count} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
	}
	w.N = int(n)
	// Grow incrementally so a corrupt header claiming an enormous count
	// fails after the real bytes run out instead of pre-allocating.
	for i := uint64(0); i < count; i++ {
		var q Query
		var tc int64
		for _, dst := range []any{&q.A, &q.B, &tc} {
			if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
				return nil, fmt.Errorf("query: query %d: %w", i, err)
			}
		}
		if q.B < q.A || tc < 0 {
			return nil, fmt.Errorf("query: query %d is invalid", i)
		}
		w.Queries = append(w.Queries, q)
		w.TrueCounts = append(w.TrueCounts, int(tc))
	}
	return w, nil
}

// SaveFile writes the workload to path.
func (w *Workload) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	defer f.Close()
	if err := w.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a workload from path.
func LoadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	defer f.Close()
	return Load(f)
}
