// Opcode-specific payload encodings. Every message uses the same
// primitive vocabulary — big-endian fixed-width integers, IEEE-754 bits
// for floats, uvarint-length-prefixed strings and slices — appended with
// zero reflection and decoded with bounds checks that turn any malformed
// buffer into ErrMalformed, never a panic. Decoders ignore trailing
// bytes so a same-version payload can grow at the tail (the versioning
// rule in the package comment).
package wire

import (
	"encoding/binary"
	"math"
)

// Request/retry headers of the HTTP transport. The wire protocol carries
// the same two facts as typed Meta fields; these constants exist so the
// HTTP server and the client's JSON transport share one spelling — the
// single source of truth the HTTP API contract documents.
const (
	// HeaderTimeoutMs names the client's per-request deadline budget in
	// milliseconds (HTTP transport; Meta.TimeoutMs on the wire).
	HeaderTimeoutMs = "X-Selest-Timeout-Ms"
	// HeaderRetry carries the attempt number of a client retry, 1-based
	// (HTTP transport; Meta.Retry on the wire). "0" or absent means the
	// first attempt.
	HeaderRetry = "X-Selest-Retry"
)

// Meta is the request metadata every request payload leads with: the
// typed form of the HTTP X-Selest-Timeout-Ms and X-Selest-Retry headers.
type Meta struct {
	// TimeoutMs is the client's deadline budget in milliseconds;
	// 0 means "use the server default".
	TimeoutMs uint32
	// Retry is the attempt number, 0 for the first attempt — admission
	// telemetry counts announced retries.
	Retry uint8
}

func (m Meta) append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.TimeoutMs)
	return append(dst, m.Retry)
}

func (d *dec) meta() Meta {
	return Meta{TimeoutMs: d.u32(), Retry: d.u8()}
}

// Range is one [Lo, Hi] query.
type Range struct{ Lo, Hi float64 }

// EstimateReq is OpEstimate's payload.
type EstimateReq struct {
	Meta
	Tenant, Attr string
	Lo, Hi       float64
	Fresh        bool
}

// EstimateRes is one answered query — the wire twin of the service's
// EstimateResult (rung carried as its stable string name).
type EstimateRes struct {
	Selectivity float64
	Rows        float64
	Generation  uint64
	Rung        string
	Degraded    bool
}

// EstimateBatchReq is OpEstimateBatch's payload.
type EstimateBatchReq struct {
	Meta
	Tenant, Attr string
	Fresh        bool
	Queries      []Range
}

// EstimateBatchRes is OpEstimateBatch's response payload.
type EstimateBatchRes struct {
	Results []EstimateRes
}

// IngestReq is OpIngest's payload.
type IngestReq struct {
	Meta
	Tenant, Attr string
	Values       []float64
}

// IngestRes reports what happened to an ingest payload.
type IngestRes struct {
	Queued, Shed uint32
}

// CreateAttrReq is OpCreateAttr's payload. Config is the attribute
// configuration as the same JSON object the HTTP transport and the
// snapshot manifest use — CreateAttr is a rare control-plane call, and
// sharing the JSON encoding keeps exactly one config schema across
// transports and persistence.
type CreateAttrReq struct {
	Meta
	Tenant, Attr string
	Config       []byte
}

// PingReq is OpPing's payload: the meta alone.
type PingReq struct {
	Meta
}

// SnapshotFetchReq is OpSnapshotFetch's payload: the meta alone. The
// response payload is not a message struct — it is the server's SELS
// snapshot envelope verbatim, already self-describing (magic, version,
// CRC-checked manifest, checksummed catalog stream), so wrapping it in
// another encoding would only add a copy.
type SnapshotFetchReq struct {
	Meta
}

// ErrorRes is OpError's payload: the transport-neutral error surface
// (internal/errcode) plus the throttle hint that HTTP carries in
// Retry-After.
type ErrorRes struct {
	// Code is the stable numeric errcode.Code.
	Code uint16
	// RetryAfterMs is the server's throttle hint for over-quota
	// refusals; 0 means none.
	RetryAfterMs uint32
	// Message is the human-readable detail, identical to the JSON
	// transport's message for the same failure.
	Message string
}

// --- encoding ---

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Append encodes the request onto dst.
func (r EstimateReq) Append(dst []byte) []byte {
	dst = r.Meta.append(dst)
	dst = appendString(dst, r.Tenant)
	dst = appendString(dst, r.Attr)
	dst = appendF64(dst, r.Lo)
	dst = appendF64(dst, r.Hi)
	return appendBool(dst, r.Fresh)
}

// Append encodes the response onto dst.
func (r EstimateRes) Append(dst []byte) []byte {
	dst = appendF64(dst, r.Selectivity)
	dst = appendF64(dst, r.Rows)
	dst = binary.BigEndian.AppendUint64(dst, r.Generation)
	dst = appendString(dst, r.Rung)
	return appendBool(dst, r.Degraded)
}

// Append encodes the request onto dst.
func (r EstimateBatchReq) Append(dst []byte) []byte {
	dst = r.Meta.append(dst)
	dst = appendString(dst, r.Tenant)
	dst = appendString(dst, r.Attr)
	dst = appendBool(dst, r.Fresh)
	dst = binary.AppendUvarint(dst, uint64(len(r.Queries)))
	for _, q := range r.Queries {
		dst = appendF64(dst, q.Lo)
		dst = appendF64(dst, q.Hi)
	}
	return dst
}

// Append encodes the response onto dst.
func (r EstimateBatchRes) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Results)))
	for _, res := range r.Results {
		dst = res.Append(dst)
	}
	return dst
}

// Append encodes the request onto dst.
func (r IngestReq) Append(dst []byte) []byte {
	dst = r.Meta.append(dst)
	dst = appendString(dst, r.Tenant)
	dst = appendString(dst, r.Attr)
	dst = binary.AppendUvarint(dst, uint64(len(r.Values)))
	for _, v := range r.Values {
		dst = appendF64(dst, v)
	}
	return dst
}

// Append encodes the response onto dst.
func (r IngestRes) Append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.Queued)
	return binary.BigEndian.AppendUint32(dst, r.Shed)
}

// Append encodes the request onto dst.
func (r CreateAttrReq) Append(dst []byte) []byte {
	dst = r.Meta.append(dst)
	dst = appendString(dst, r.Tenant)
	dst = appendString(dst, r.Attr)
	dst = binary.AppendUvarint(dst, uint64(len(r.Config)))
	return append(dst, r.Config...)
}

// Append encodes the request onto dst.
func (r PingReq) Append(dst []byte) []byte {
	return r.Meta.append(dst)
}

// Append encodes the request onto dst.
func (r SnapshotFetchReq) Append(dst []byte) []byte {
	return r.Meta.append(dst)
}

// Append encodes the error response onto dst.
func (r ErrorRes) Append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, r.Code)
	dst = binary.BigEndian.AppendUint32(dst, r.RetryAfterMs)
	return appendString(dst, r.Message)
}

// --- decoding ---

// dec is a bounds-checked cursor: the first short read poisons it and
// every subsequent read returns zeros, so decoders are written straight-
// line and check d.err once at the end.
type dec struct {
	b   []byte
	bad bool
}

func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || len(d.b) < n {
		d.bad = true
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) bool() bool { return d.u8() != 0 }

// uvarint also rejects lengths that could not possibly fit the remaining
// buffer, so a hostile length prefix cannot drive a huge allocation.
func (d *dec) uvarint() int {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 || v > uint64(len(d.b)) {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return int(v)
}

func (d *dec) str() string {
	n := d.uvarint()
	return string(d.take(n))
}

func (d *dec) bytes() []byte {
	n := d.uvarint()
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// err returns ErrMalformed when any read ran past the payload.
func (d *dec) err() error {
	if d.bad {
		return ErrMalformed
	}
	return nil
}

// strBytes is the zero-copy twin of str: the returned slice aliases the
// payload buffer, valid only as long as the buffer is.
func (d *dec) strBytes() []byte {
	n := d.uvarint()
	return d.take(n)
}

// DecodeEstimateReq decodes an OpEstimate payload.
func DecodeEstimateReq(p []byte) (EstimateReq, error) {
	d := dec{b: p}
	r := EstimateReq{
		Meta:   d.meta(),
		Tenant: d.str(),
		Attr:   d.str(),
		Lo:     d.f64(),
		Hi:     d.f64(),
		Fresh:  d.bool(),
	}
	return r, d.err()
}

// EstimateReqView is EstimateReq with Tenant and Attr as byte views
// aliasing the payload buffer instead of copied into fresh strings — the
// zero-copy decode the server's inline fast path uses so a steady-state
// estimate round trip allocates nothing. The views are valid only until
// the frame buffer is reused by the next ReadFrame.
type EstimateReqView struct {
	Meta
	Tenant, Attr []byte
	Lo, Hi       float64
	Fresh        bool
}

// DecodeEstimateReqView decodes an OpEstimate payload without copying
// the string fields out of p.
func DecodeEstimateReqView(p []byte) (EstimateReqView, error) {
	d := dec{b: p}
	r := EstimateReqView{
		Meta:   d.meta(),
		Tenant: d.strBytes(),
		Attr:   d.strBytes(),
		Lo:     d.f64(),
		Hi:     d.f64(),
		Fresh:  d.bool(),
	}
	return r, d.err()
}

// EstimateBatchReqView is the zero-copy twin of EstimateBatchReq:
// Tenant/Attr alias the payload and Queries live in caller-owned scratch.
type EstimateBatchReqView struct {
	Meta
	Tenant, Attr []byte
	Fresh        bool
	Queries      []Range
}

// DecodeEstimateBatchReqView decodes an OpEstimateBatch payload without
// copying the string fields; the ranges are decoded into queries
// (reused when capacity allows, grown otherwise), which is returned so
// the caller keeps the scratch across frames. maxBatch bounds the count
// as in DecodeEstimateBatchReq.
func DecodeEstimateBatchReqView(p []byte, maxBatch int, queries []Range) (EstimateBatchReqView, []Range, error) {
	d := dec{b: p}
	r := EstimateBatchReqView{
		Meta:   d.meta(),
		Tenant: d.strBytes(),
		Attr:   d.strBytes(),
		Fresh:  d.bool(),
	}
	n := d.uvarint()
	if d.bad {
		return r, queries, ErrMalformed
	}
	if maxBatch > 0 && n > maxBatch {
		return r, queries, ErrTooLarge
	}
	if len(d.b) < 16*n {
		return r, queries, ErrMalformed
	}
	if cap(queries) < n {
		queries = make([]Range, n)
	}
	queries = queries[:n]
	for i := range queries {
		queries[i] = Range{Lo: d.f64(), Hi: d.f64()}
	}
	r.Queries = queries
	return r, queries, d.err()
}

// DecodeEstimateRes decodes an OpEstimate response payload.
func DecodeEstimateRes(p []byte) (EstimateRes, error) {
	d := dec{b: p}
	r := decodeEstimateRes(&d)
	return r, d.err()
}

func decodeEstimateRes(d *dec) EstimateRes {
	return EstimateRes{
		Selectivity: d.f64(),
		Rows:        d.f64(),
		Generation:  d.u64(),
		Rung:        d.str(),
		Degraded:    d.bool(),
	}
}

// DecodeEstimateBatchReq decodes an OpEstimateBatch payload. maxBatch
// bounds the query count (0 = unlimited) so a hostile count cannot
// drive a huge allocation before the server's own limit check.
func DecodeEstimateBatchReq(p []byte, maxBatch int) (EstimateBatchReq, error) {
	d := dec{b: p}
	r := EstimateBatchReq{
		Meta:   d.meta(),
		Tenant: d.str(),
		Attr:   d.str(),
		Fresh:  d.bool(),
	}
	n := d.uvarint()
	if d.bad {
		return r, ErrMalformed
	}
	if maxBatch > 0 && n > maxBatch {
		return r, ErrTooLarge
	}
	if len(d.b) < 16*n {
		return r, ErrMalformed
	}
	r.Queries = make([]Range, n)
	for i := range r.Queries {
		r.Queries[i] = Range{Lo: d.f64(), Hi: d.f64()}
	}
	return r, d.err()
}

// DecodeEstimateBatchRes decodes an OpEstimateBatch response payload.
func DecodeEstimateBatchRes(p []byte) (EstimateBatchRes, error) {
	d := dec{b: p}
	n := d.uvarint()
	if d.bad {
		return EstimateBatchRes{}, ErrMalformed
	}
	r := EstimateBatchRes{Results: make([]EstimateRes, 0, min(n, 4096))}
	for i := 0; i < n; i++ {
		r.Results = append(r.Results, decodeEstimateRes(&d))
		if d.bad {
			return EstimateBatchRes{}, ErrMalformed
		}
	}
	return r, d.err()
}

// DecodeIngestReq decodes an OpIngest payload; maxValues mirrors
// DecodeEstimateBatchReq's bound.
func DecodeIngestReq(p []byte, maxValues int) (IngestReq, error) {
	d := dec{b: p}
	r := IngestReq{
		Meta:   d.meta(),
		Tenant: d.str(),
		Attr:   d.str(),
	}
	n := d.uvarint()
	if d.bad {
		return r, ErrMalformed
	}
	if maxValues > 0 && n > maxValues {
		return r, ErrTooLarge
	}
	if len(d.b) < 8*n {
		return r, ErrMalformed
	}
	r.Values = make([]float64, n)
	for i := range r.Values {
		r.Values[i] = d.f64()
	}
	return r, d.err()
}

// DecodeIngestRes decodes an OpIngest response payload.
func DecodeIngestRes(p []byte) (IngestRes, error) {
	d := dec{b: p}
	r := IngestRes{Queued: d.u32(), Shed: d.u32()}
	return r, d.err()
}

// DecodeCreateAttrReq decodes an OpCreateAttr payload.
func DecodeCreateAttrReq(p []byte) (CreateAttrReq, error) {
	d := dec{b: p}
	r := CreateAttrReq{
		Meta:   d.meta(),
		Tenant: d.str(),
		Attr:   d.str(),
		Config: d.bytes(),
	}
	return r, d.err()
}

// DecodePingReq decodes an OpPing payload.
func DecodePingReq(p []byte) (PingReq, error) {
	d := dec{b: p}
	r := PingReq{Meta: d.meta()}
	return r, d.err()
}

// DecodeSnapshotFetchReq decodes an OpSnapshotFetch payload.
func DecodeSnapshotFetchReq(p []byte) (SnapshotFetchReq, error) {
	d := dec{b: p}
	r := SnapshotFetchReq{Meta: d.meta()}
	return r, d.err()
}

// DecodeErrorRes decodes an OpError payload.
func DecodeErrorRes(p []byte) (ErrorRes, error) {
	d := dec{b: p}
	r := ErrorRes{
		Code:         d.u16(),
		RetryAfterMs: d.u32(),
		Message:      d.str(),
	}
	return r, d.err()
}
