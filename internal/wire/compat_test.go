// The append-only compatibility pin. selestwire's versioning contract
// says a v1 client can always talk to a v1+n server: opcodes and error
// codes are append-only, payloads grow only at the tail, and the version
// byte gates everything else. Nothing enforces that contract but this
// table — a renumbered opcode would still pass every round-trip test,
// because both sides would agree on the wrong number. This test hardcodes
// every wire constant so renumbering breaks the build's test run, not a
// deployed fleet.
package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestWireCompatOpcodes pins the numeric value of every opcode ever
// shipped. Entries may be APPENDED when a new opcode lands; changing or
// removing one breaks deployed clients — don't.
func TestWireCompatOpcodes(t *testing.T) {
	frozen := []struct {
		op   Op
		num  byte
		name string
	}{
		{OpEstimate, 0x01, "estimate"},           // since v1 (PR 7)
		{OpEstimateBatch, 0x02, "estimate_batch"}, // since v1 (PR 7)
		{OpIngest, 0x03, "ingest"},               // since v1 (PR 7)
		{OpCreateAttr, 0x04, "create_attr"},      // since v1 (PR 7)
		{OpPing, 0x05, "ping"},                   // since v1 (PR 7)
		{OpSnapshotFetch, 0x06, "snapshot_fetch"}, // since v1 (PR 9)
		{RespFlag, 0x80, ""},
		{OpError, 0xFF, "error"},
	}
	for _, f := range frozen {
		if byte(f.op) != f.num {
			t.Errorf("opcode %s renumbered: 0x%02x, frozen at 0x%02x", f.name, byte(f.op), f.num)
		}
		if f.name != "" && f.op.String() != f.name {
			t.Errorf("opcode 0x%02x renamed: %q, frozen as %q", f.num, f.op.String(), f.name)
		}
	}
}

// TestWireCompatRequestSpace pins which opcodes are requests: exactly
// the contiguous block [OpEstimate, OpSnapshotFetch]. Appending the next
// opcode extends the block by one; leaving a gap or reusing a response
// bit breaks the serveConn dispatch gate.
func TestWireCompatRequestSpace(t *testing.T) {
	for op := Op(0); op < RespFlag; op++ {
		want := op >= 0x01 && op <= 0x06
		if op.IsRequest() != want {
			t.Errorf("Op(0x%02x).IsRequest() = %v, want %v", byte(op), op.IsRequest(), want)
		}
	}
	for _, op := range []Op{OpEstimate | RespFlag, OpPing | RespFlag, OpSnapshotFetch | RespFlag, OpError} {
		if op.IsRequest() {
			t.Errorf("response opcode 0x%02x classified as request", byte(op))
		}
	}
}

// TestWireCompatFraming pins the frame geometry: magic, version, header
// and trailer sizes, and the default payload bound. These four numbers
// are burned into every deployed binary.
func TestWireCompatFraming(t *testing.T) {
	if Magic != 0x534C {
		t.Errorf("Magic = 0x%04x, frozen at 0x534C", Magic)
	}
	if Version != 1 {
		t.Errorf("Version = %d, frozen at 1 (bump requires a negotiation story)", Version)
	}
	if HeaderSize != 16 || TrailerSize != 4 {
		t.Errorf("frame geometry %d+%d, frozen at 16+4", HeaderSize, TrailerSize)
	}
	if MaxPayload != 16<<20 {
		t.Errorf("MaxPayload = %d, frozen at 16 MiB", MaxPayload)
	}
}

// TestWireCompatVersionNegotiation pins the version rule: a reader
// rejects any version but its own with ErrVersion, on the first frame,
// before trusting anything else in the header.
func TestWireCompatVersionNegotiation(t *testing.T) {
	good := AppendFrame(nil, Frame{Op: OpPing, ID: 1, Payload: PingReq{}.Append(nil)})
	for _, v := range []byte{0, 2, 255} {
		bad := append([]byte(nil), good...)
		bad[2] = v // the version byte
		_, _, err := ReadFrame(bytes.NewReader(bad), MaxPayload, nil)
		if !errors.Is(err, ErrVersion) {
			t.Errorf("version %d accepted: err = %v, want ErrVersion", v, err)
		}
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("ErrVersion must remain an ErrProtocol child")
		}
	}
}

// TestWireCompatTailGrowth pins the payload-growth rule: a decoder must
// ignore bytes past the fields it knows, so a same-version payload can
// grow at the tail without breaking old readers.
func TestWireCompatTailGrowth(t *testing.T) {
	grown := append(EstimateReq{Tenant: "t", Attr: "a", Lo: 0.1, Hi: 0.9}.Append(nil),
		0xDE, 0xAD, 0xBE, 0xEF) // a future field this version doesn't know
	req, err := DecodeEstimateReq(grown)
	if err != nil {
		t.Fatalf("tail-grown payload rejected: %v (the versioning contract requires ignoring trailing bytes)", err)
	}
	if req.Tenant != "t" || req.Attr != "a" {
		t.Fatalf("known fields misdecoded from tail-grown payload: %+v", req)
	}
	for _, p := range [][]byte{
		append(PingReq{}.Append(nil), 0x01),
		append(SnapshotFetchReq{}.Append(nil), 0x01, 0x02),
	} {
		d := dec{b: p}
		d.meta()
		if d.err() != nil {
			t.Fatalf("meta-only payload rejected its tail growth")
		}
	}
}
