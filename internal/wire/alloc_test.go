// Allocation-regression pins for the frame codec (ISSUE 10 satellite 3):
// the building blocks of the server's inline fast path and the client's
// pooled writer must stay allocation-free when their buffers are reused,
// or the zero-alloc round-trip contract silently rots.
package wire

import (
	"bytes"
	"testing"
)

func testEstimatePayload() []byte {
	return EstimateReq{
		Meta:   Meta{TimeoutMs: 250},
		Tenant: "acme",
		Attr:   "price",
		Lo:     0.25,
		Hi:     0.75,
	}.Append(nil)
}

func TestAppendFrameZeroAllocs(t *testing.T) {
	f := Frame{Op: OpEstimate, ID: 7, Payload: testEstimatePayload()}
	buf := AppendFrame(nil, f) // warm the scratch to capacity
	if a := testing.AllocsPerRun(200, func() {
		buf = AppendFrame(buf[:0], f)
	}); a != 0 {
		t.Fatalf("AppendFrame into warm scratch allocates %v/op, want 0", a)
	}
}

func TestReadFrameReusedBufZeroAllocs(t *testing.T) {
	raw := AppendFrame(nil, Frame{Op: OpEstimate, ID: 7, Payload: testEstimatePayload()})
	r := bytes.NewReader(raw)
	var buf []byte
	var err error
	if _, buf, err = ReadFrame(r, MaxPayload, buf); err != nil { // warm buf
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(200, func() {
		r.Reset(raw)
		_, buf, err = ReadFrame(r, MaxPayload, buf)
		if err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("ReadFrame with reused buf allocates %v/op, want 0", a)
	}
}

func TestDecodeEstimateReqViewZeroAllocs(t *testing.T) {
	p := testEstimatePayload()
	if a := testing.AllocsPerRun(200, func() {
		v, err := DecodeEstimateReqView(p)
		if err != nil || string(v.Tenant) != "acme" {
			t.Fatalf("view decode: %+v, %v", v, err)
		}
	}); a != 0 {
		t.Fatalf("DecodeEstimateReqView allocates %v/op, want 0", a)
	}
}

func TestDecodeEstimateBatchReqViewZeroAllocs(t *testing.T) {
	queries := make([]Range, 16)
	for i := range queries {
		queries[i] = Range{Lo: float64(i) / 32, Hi: 0.5 + float64(i)/32}
	}
	p := EstimateBatchReq{Tenant: "acme", Attr: "price", Queries: queries}.Append(nil)
	var scratch []Range
	var err error
	if _, scratch, err = DecodeEstimateBatchReqView(p, 0, scratch); err != nil { // warm scratch
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(200, func() {
		var v EstimateBatchReqView
		v, scratch, err = DecodeEstimateBatchReqView(p, 0, scratch)
		if err != nil || len(v.Queries) != 16 {
			t.Fatalf("batch view decode: %+v, %v", v, err)
		}
	}); a != 0 {
		t.Fatalf("DecodeEstimateBatchReqView with warm scratch allocates %v/op, want 0", a)
	}
}

// TestViewDecodersMatchStringDecoders pins that the zero-copy views see
// exactly what the allocating decoders see, including on malformed and
// oversized payloads — the goroutine path re-decodes frames the fast
// path declined, so the two decoders must never disagree.
func TestViewDecodersMatchStringDecoders(t *testing.T) {
	p := testEstimatePayload()
	want, werr := DecodeEstimateReq(p)
	got, gerr := DecodeEstimateReqView(p)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("error mismatch: %v vs %v", werr, gerr)
	}
	if string(got.Tenant) != want.Tenant || string(got.Attr) != want.Attr ||
		got.Lo != want.Lo || got.Hi != want.Hi || got.Fresh != want.Fresh || got.Meta != want.Meta {
		t.Fatalf("view %+v != struct %+v", got, want)
	}

	for _, bad := range [][]byte{nil, {0xFF}, p[:3], p[:len(p)-1]} {
		_, werr := DecodeEstimateReq(bad)
		_, gerr := DecodeEstimateReqView(bad)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("malformed %x: struct err %v, view err %v", bad, werr, gerr)
		}
	}

	bp := EstimateBatchReq{Tenant: "t", Attr: "a", Queries: make([]Range, 8)}.Append(nil)
	bwant, bwerr := DecodeEstimateBatchReq(bp, 4)
	bgot, _, bgerr := DecodeEstimateBatchReqView(bp, 4, nil)
	if !(bwerr == ErrTooLarge && bgerr == ErrTooLarge) {
		t.Fatalf("maxBatch bound: struct %v/%v, view %v/%v", bwant, bwerr, bgot, bgerr)
	}
}
