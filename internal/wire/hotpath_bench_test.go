// Hot-path microbenchmarks for the frame codec — the per-frame floor
// under every wire request. Run via `make bench-hotpath`; committed
// baselines live in BENCH_hotpath.json.
package wire

import (
	"bytes"
	"testing"
)

func BenchmarkHotpathFrameEncode(b *testing.B) {
	f := Frame{Op: OpEstimate, ID: 7, Payload: testEstimatePayload()}
	buf := AppendFrame(nil, f)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], f)
	}
}

func BenchmarkHotpathFrameDecode(b *testing.B) {
	raw := AppendFrame(nil, Frame{Op: OpEstimate, ID: 7, Payload: testEstimatePayload()})
	r := bytes.NewReader(raw)
	var buf []byte
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		var err error
		_, buf, err = ReadFrame(r, MaxPayload, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotpathDecodeEstimateReqView(b *testing.B) {
	p := testEstimatePayload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEstimateReqView(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotpathEncodeEstimateRes(b *testing.B) {
	res := EstimateRes{Selectivity: 0.5, Rows: 512, Generation: 3, Rung: "snapshot"}
	buf := res.Append(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = res.Append(buf[:0])
	}
}
