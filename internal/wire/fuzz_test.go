package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireCodec throws arbitrary bytes at the frame reader and every
// payload decoder and pins the codec contract (ISSUE satellite 4):
// truncations, bit flips, hostile length prefixes, unknown opcodes —
// whatever the fuzzer finds — yield a typed error or a valid frame,
// never a panic, a hang, or an unbounded allocation. Frames that do
// decode must re-encode to the identical byte string (the codec is
// canonical), so the server can trust a decoded frame completely.
func FuzzWireCodec(f *testing.F) {
	// Seed with one well-formed frame per opcode plus assorted cripples.
	meta := Meta{TimeoutMs: 100, Retry: 1}
	seedFrames := []Frame{
		{Op: OpEstimate, ID: 1, Payload: EstimateReq{Meta: meta, Tenant: "t", Attr: "a", Lo: 0, Hi: 1}.Append(nil)},
		{Op: OpEstimateBatch, ID: 2, Payload: EstimateBatchReq{Meta: meta, Tenant: "t", Attr: "a", Queries: []Range{{0, 1}}}.Append(nil)},
		{Op: OpIngest, ID: 3, Payload: IngestReq{Meta: meta, Tenant: "t", Attr: "a", Values: []float64{1, 2}}.Append(nil)},
		{Op: OpCreateAttr, ID: 4, Payload: CreateAttrReq{Meta: meta, Tenant: "t", Attr: "a", Config: []byte("{}")}.Append(nil)},
		{Op: OpPing, ID: 5, Payload: PingReq{Meta: meta}.Append(nil)},
		{Op: OpError, ID: 6, Payload: ErrorRes{Code: 4, RetryAfterMs: 10, Message: "m"}.Append(nil)},
	}
	for _, fr := range seedFrames {
		f.Add(AppendFrame(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x4C, 1, 0xFF})
	f.Add(bytes.Repeat([]byte{0x53}, 64))

	// The fuzz bound keeps hostile length prefixes from asking the
	// reader for gigabytes per exec.
	const maxFuzzPayload = 1 << 16

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := ReadFrame(bytes.NewReader(data), maxFuzzPayload, nil)
		if err != nil {
			// Must be a typed framing error or a clean/truncated EOF.
			if !errors.Is(err, ErrProtocol) && err != io.EOF && err != io.ErrUnexpectedEOF {
				t.Fatalf("untyped read error: %v", err)
			}
			return
		}
		// A frame that read back must be canonical: re-encoding it
		// reproduces the exact bytes consumed.
		n := HeaderSize + len(fr.Payload) + TrailerSize
		if !bytes.Equal(AppendFrame(nil, fr), data[:n]) {
			t.Fatalf("decode/encode not canonical for %d-byte frame", n)
		}

		// Every payload decoder must hold against this payload, whatever
		// the opcode claims it is: typed error or success, never a panic.
		mustTyped := func(what string, err error) {
			if err != nil && !errors.Is(err, ErrProtocol) {
				t.Fatalf("%s: untyped decode error: %v", what, err)
			}
		}
		p := fr.Payload
		if r, err := DecodeEstimateReq(p); err == nil {
			// Byte-level round-trip (NaN-safe: floats compare as bits).
			enc := r.Append(nil)
			got, err2 := DecodeEstimateReq(enc)
			if err2 != nil || !bytes.Equal(got.Append(nil), enc) {
				t.Fatalf("EstimateReq re-encode mismatch (%v)", err2)
			}
		} else {
			mustTyped("EstimateReq", err)
		}
		_, err = DecodeEstimateBatchReq(p, 4096)
		mustTyped("EstimateBatchReq", err)
		_, err = DecodeIngestReq(p, 4096)
		mustTyped("IngestReq", err)
		_, err = DecodeCreateAttrReq(p)
		mustTyped("CreateAttrReq", err)
		_, err = DecodePingReq(p)
		mustTyped("PingReq", err)
		_, err = DecodeErrorRes(p)
		mustTyped("ErrorRes", err)
		_, err = DecodeEstimateRes(p)
		mustTyped("EstimateRes", err)
		_, err = DecodeEstimateBatchRes(p)
		mustTyped("EstimateBatchRes", err)
		_, err = DecodeIngestRes(p)
		mustTyped("IngestRes", err)
	})
}
