// Package wire is the selest binary protocol ("selestwire"): the
// length-prefixed, CRC-framed, request-id-pipelined encoding the native
// client and selestd's binary listener speak over persistent TCP
// connections. It exists because transport, not estimation, dominates
// the service's per-request cost — the engine answers a range query from
// an atomic snapshot in nanoseconds, while HTTP/JSON framing costs
// microseconds of parsing and allocation on both sides (ROADMAP "scale
// selestd past one process"; DESIGN.md §13 documents the byte layout,
// opcode table, and versioning rules).
//
// Frame layout (all integers big-endian):
//
//	offset size field
//	0      2    magic  0x534C ("SL")
//	2      1    version (currently 1)
//	3      1    opcode
//	4      8    request id (client-chosen; responses echo it)
//	12     4    payload length n (≤ the reader's max)
//	16     n    payload (opcode-specific, see messages.go)
//	16+n   4    CRC32 (IEEE) over bytes [0, 16+n)
//
// Requests and responses share the layout; a response's opcode is the
// request's with the high bit set (OpEstimate → OpEstimate|RespFlag), or
// OpError with an (errcode, retry-after hint, message) payload. Request
// ids let a client pipeline many calls on one connection and match
// responses out of order; the server always echoes the id verbatim.
//
// The CRC closes the frame: a truncated, bit-flipped, or misframed
// stream is detected as a typed protocol error (never a panic, never a
// hang, never a garbage decode) — the same crash-safety posture as the
// snapshot file format's CRC envelope.
//
// Versioning rules: the version byte is checked on every frame; a reader
// rejects versions it does not speak with ErrVersion. Within a version,
// payloads may only grow at the tail — decoders ignore trailing bytes
// they do not understand — and opcodes/error codes are append-only, so a
// v1 client can always talk to a v1+n server.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// Magic opens every frame: "SL" big-endian.
	Magic uint16 = 0x534C
	// Version is the protocol version this package speaks.
	Version byte = 1
	// HeaderSize is the fixed prefix before the payload.
	HeaderSize = 16
	// TrailerSize is the CRC32 after the payload.
	TrailerSize = 4
	// MaxPayload is the default payload bound — the binary twin of the
	// HTTP transport's body cap. Readers may pass a smaller limit.
	MaxPayload = 16 << 20
)

// Op is a frame opcode. Request opcodes are small integers; the matching
// response sets RespFlag; OpError is the error response for any request.
// The opcode space is append-only (DESIGN.md §13).
type Op byte

const (
	// OpEstimate answers one range query (EstimateReq → EstimateRes).
	OpEstimate Op = 0x01
	// OpEstimateBatch answers many queries against one attribute.
	OpEstimateBatch Op = 0x02
	// OpIngest enqueues stream values (IngestReq → IngestRes).
	OpIngest Op = 0x03
	// OpCreateAttr registers an attribute (CreateAttrReq → empty
	// response payload).
	OpCreateAttr Op = 0x04
	// OpPing is the connection health check (empty request and response
	// payloads beyond the request meta).
	OpPing Op = 0x05
	// OpSnapshotFetch streams the server's crash-safe snapshot envelope
	// (SnapshotFetchReq → the raw SELS bytes as the response payload) —
	// the wire leg of snapshot shipping, how `selestd -join` warms a
	// fresh replica from a peer.
	OpSnapshotFetch Op = 0x06

	// RespFlag marks a success response: request opcode | RespFlag.
	RespFlag Op = 0x80
	// OpError is the failure response to any request; its payload is an
	// ErrorRes (stable errcode + retry-after hint + message).
	OpError Op = 0xFF
)

// IsRequest reports whether op is a request opcode this version knows.
func (o Op) IsRequest() bool {
	return o >= OpEstimate && o <= OpSnapshotFetch
}

// String names the opcode for diagnostics.
func (o Op) String() string {
	switch o {
	case OpEstimate:
		return "estimate"
	case OpEstimateBatch:
		return "estimate_batch"
	case OpIngest:
		return "ingest"
	case OpCreateAttr:
		return "create_attr"
	case OpPing:
		return "ping"
	case OpSnapshotFetch:
		return "snapshot_fetch"
	case OpError:
		return "error"
	}
	if o&RespFlag != 0 {
		return (o &^ RespFlag).String() + "_resp"
	}
	return fmt.Sprintf("op(0x%02x)", byte(o))
}

// Typed protocol errors. All of them errors.Is-match ErrProtocol, so a
// transport can branch on "the stream is corrupt, hang up" with one
// check while tests pin the specific failure.
var (
	// ErrProtocol is the root of every framing/decoding error.
	ErrProtocol = errors.New("wire: protocol error")
	// ErrMagic reports a frame that does not open with Magic — the peer
	// is not speaking selestwire (or the stream lost sync).
	ErrMagic = protoErr("bad magic")
	// ErrVersion reports a protocol version this reader does not speak.
	ErrVersion = protoErr("unsupported version")
	// ErrTooLarge reports a payload length beyond the reader's bound.
	ErrTooLarge = protoErr("payload too large")
	// ErrChecksum reports a CRC mismatch: the frame was corrupted in
	// flight or truncated mid-payload.
	ErrChecksum = protoErr("checksum mismatch")
	// ErrUnknownOp reports an opcode outside this version's table.
	ErrUnknownOp = protoErr("unknown opcode")
	// ErrMalformed reports a payload that does not decode as its
	// opcode's message (short buffer, bad string length, …).
	ErrMalformed = protoErr("malformed payload")
)

// protocolError is an errors.Is child of ErrProtocol.
type protocolError struct{ msg string }

func protoErr(msg string) error          { return &protocolError{msg} }
func (e *protocolError) Error() string   { return "wire: " + e.msg }
func (e *protocolError) Unwrap() error   { return ErrProtocol }
func (e *protocolError) Is(t error) bool { return t == ErrProtocol }

// Frame is one decoded protocol frame.
type Frame struct {
	Op Op
	// ID is the request id; responses echo their request's.
	ID uint64
	// Payload is the opcode-specific message body. After ReadFrame it
	// aliases the read buffer and is only valid until the next read.
	Payload []byte
}

var crcTable = crc32.IEEETable

// AppendFrame appends the encoded frame to dst and returns it — the
// allocation-free building block WriteFrame and the client's pipelined
// writer share.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(f.Op))
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.BigEndian.AppendUint32(dst, crc)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return ErrTooLarge
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, HeaderSize+len(f.Payload)+TrailerSize), f))
	return err
}

// ReadFrame reads one frame, enforcing maxPayload and verifying the CRC.
// buf, when non-nil, is reused for the frame bytes (grown as needed);
// the returned Frame's Payload aliases it. Errors:
//
//   - io.EOF cleanly between frames (a closed connection),
//   - io.ErrUnexpectedEOF for a stream cut mid-frame,
//   - ErrMagic/ErrVersion/ErrTooLarge/ErrChecksum for corrupt framing.
//
// A reader must treat any ErrProtocol as fatal for the connection: after
// corruption there is no way to re-synchronise the stream.
func ReadFrame(r io.Reader, maxPayload uint32, buf []byte) (Frame, []byte, error) {
	if cap(buf) < HeaderSize {
		buf = make([]byte, HeaderSize, HeaderSize+1024)
	}
	hdr := buf[:HeaderSize]
	// ReadFull yields io.EOF only on a clean boundary (zero bytes read)
	// and io.ErrUnexpectedEOF on a cut mid-header — exactly the contract
	// documented above, so the error passes through untouched.
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, buf, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return Frame{}, buf, ErrMagic
	}
	if hdr[2] != Version {
		return Frame{}, buf, ErrVersion
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > maxPayload {
		return Frame{}, buf, ErrTooLarge
	}
	total := HeaderSize + int(n) + TrailerSize
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		buf = grown
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf[HeaderSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	want := binary.BigEndian.Uint32(buf[total-TrailerSize:])
	if crc32.Checksum(buf[:total-TrailerSize], crcTable) != want {
		return Frame{}, buf, ErrChecksum
	}
	return Frame{
		Op:      Op(buf[3]),
		ID:      binary.BigEndian.Uint64(buf[4:12]),
		Payload: buf[HeaderSize : total-TrailerSize],
	}, buf, nil
}
