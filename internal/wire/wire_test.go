package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func frameBytes(t *testing.T, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		f := Frame{Op: OpEstimate, ID: 0xDEADBEEFCAFE, Payload: p}
		raw := frameBytes(t, f)
		got, _, err := ReadFrame(bytes.NewReader(raw), MaxPayload, nil)
		if err != nil {
			t.Fatalf("payload len %d: %v", len(p), err)
		}
		if got.Op != f.Op || got.ID != f.ID || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
		}
	}
}

// TestFramePipelining pins that many frames written back to back read
// out in order with their ids intact — the property pipelining rests on.
func TestFramePipelining(t *testing.T) {
	var buf bytes.Buffer
	for id := uint64(1); id <= 100; id++ {
		if err := WriteFrame(&buf, Frame{Op: OpPing, ID: id, Payload: []byte{byte(id)}}); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for id := uint64(1); id <= 100; id++ {
		var f Frame
		var err error
		f, scratch, err = ReadFrame(&buf, MaxPayload, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", id, err)
		}
		if f.ID != id || len(f.Payload) != 1 || f.Payload[0] != byte(id) {
			t.Fatalf("frame %d came back as %+v", id, f)
		}
	}
	if _, _, err := ReadFrame(&buf, MaxPayload, scratch); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	good := frameBytes(t, Frame{Op: OpIngest, ID: 7, Payload: []byte("payload")})

	corrupt := func(mut func(b []byte)) error {
		b := append([]byte(nil), good...)
		mut(b)
		_, _, err := ReadFrame(bytes.NewReader(b), MaxPayload, nil)
		return err
	}

	if err := corrupt(func(b []byte) { b[0] = 'X' }); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if err := corrupt(func(b []byte) { b[2] = 99 }); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
	if err := corrupt(func(b []byte) { b[12] = 0xFF }); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized length: %v", err)
	}
	// A bit flip anywhere in the payload or header body trips the CRC.
	if err := corrupt(func(b []byte) { b[HeaderSize] ^= 0x01 }); !errors.Is(err, ErrChecksum) {
		t.Errorf("payload bit flip: %v", err)
	}
	if err := corrupt(func(b []byte) { b[5] ^= 0x80 }); !errors.Is(err, ErrChecksum) {
		t.Errorf("id bit flip: %v", err)
	}
	// Every protocol error is also ErrProtocol.
	for _, sentinel := range []error{ErrMagic, ErrVersion, ErrTooLarge, ErrChecksum, ErrUnknownOp, ErrMalformed} {
		if !errors.Is(sentinel, ErrProtocol) {
			t.Errorf("%v does not match ErrProtocol", sentinel)
		}
	}

	// Truncation at every byte boundary: clean EOF only at offset 0,
	// ErrUnexpectedEOF (never a hang or panic) anywhere inside.
	for cut := 0; cut < len(good); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(good[:cut]), MaxPayload, nil)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut 0: %v, want io.EOF", err)
			}
			continue
		}
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}

	// A reader-side payload bound below the frame's length refuses it.
	if _, _, err := ReadFrame(bytes.NewReader(good), 3, nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("reader bound: %v", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	meta := Meta{TimeoutMs: 1500, Retry: 2}

	est := EstimateReq{Meta: meta, Tenant: "acme", Attr: "price", Lo: 0.25, Hi: 0.75, Fresh: true}
	if got, err := DecodeEstimateReq(est.Append(nil)); err != nil || got != est {
		t.Fatalf("EstimateReq: %+v, %v", got, err)
	}

	res := EstimateRes{Selectivity: 0.5, Rows: 123.25, Generation: 9, Rung: "snapshot", Degraded: true}
	if got, err := DecodeEstimateRes(res.Append(nil)); err != nil || got != res {
		t.Fatalf("EstimateRes: %+v, %v", got, err)
	}

	batch := EstimateBatchReq{Meta: meta, Tenant: "t", Attr: "a", Fresh: false,
		Queries: []Range{{0, 1}, {0.1, 0.9}, {math.Inf(-1), math.NaN()}}}
	gotB, err := DecodeEstimateBatchReq(batch.Append(nil), 0)
	if err != nil || len(gotB.Queries) != 3 || gotB.Tenant != "t" {
		t.Fatalf("EstimateBatchReq: %+v, %v", gotB, err)
	}
	// NaN round-trips bit-exactly through Float64bits.
	if !math.IsNaN(gotB.Queries[2].Hi) || !math.IsInf(gotB.Queries[2].Lo, -1) {
		t.Fatalf("non-finite floats mangled: %+v", gotB.Queries[2])
	}

	batchRes := EstimateBatchRes{Results: []EstimateRes{res, {Rung: "uniform"}}}
	gotBR, err := DecodeEstimateBatchRes(batchRes.Append(nil))
	if err != nil || len(gotBR.Results) != 2 || gotBR.Results[0] != res {
		t.Fatalf("EstimateBatchRes: %+v, %v", gotBR, err)
	}

	ing := IngestReq{Meta: meta, Tenant: "acme", Attr: "price", Values: []float64{1, 2, 3.5}}
	gotI, err := DecodeIngestReq(ing.Append(nil), 0)
	if err != nil || len(gotI.Values) != 3 || gotI.Values[2] != 3.5 {
		t.Fatalf("IngestReq: %+v, %v", gotI, err)
	}

	ir := IngestRes{Queued: 64, Shed: 3}
	if got, err := DecodeIngestRes(ir.Append(nil)); err != nil || got != ir {
		t.Fatalf("IngestRes: %+v, %v", got, err)
	}

	ca := CreateAttrReq{Meta: meta, Tenant: "acme", Attr: "price", Config: []byte(`{"domain_lo":0,"domain_hi":1}`)}
	gotC, err := DecodeCreateAttrReq(ca.Append(nil))
	if err != nil || gotC.Tenant != "acme" || !bytes.Equal(gotC.Config, ca.Config) {
		t.Fatalf("CreateAttrReq: %+v, %v", gotC, err)
	}

	ping := PingReq{Meta: meta}
	if got, err := DecodePingReq(ping.Append(nil)); err != nil || got != ping {
		t.Fatalf("PingReq: %+v, %v", got, err)
	}

	er := ErrorRes{Code: 4, RetryAfterMs: 2500, Message: "tenant over quota"}
	if got, err := DecodeErrorRes(er.Append(nil)); err != nil || got != er {
		t.Fatalf("ErrorRes: %+v, %v", got, err)
	}
}

// TestMessageBounds pins the decoder-side limits: batch/value counts
// beyond the caller's bound refuse before allocating, and truncated
// payloads are ErrMalformed.
func TestMessageBounds(t *testing.T) {
	big := EstimateBatchReq{Tenant: "t", Attr: "a",
		Queries: make([]Range, 100)}
	if _, err := DecodeEstimateBatchReq(big.Append(nil), 10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("batch over bound: %v", err)
	}
	ing := IngestReq{Tenant: "t", Attr: "a", Values: make([]float64, 100)}
	if _, err := DecodeIngestReq(ing.Append(nil), 10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("ingest over bound: %v", err)
	}

	full := EstimateReq{Tenant: "tenant", Attr: "attr", Lo: 0, Hi: 1}.Append(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeEstimateReq(full[:cut]); !errors.Is(err, ErrMalformed) {
			t.Fatalf("estimate cut %d: %v, want ErrMalformed", cut, err)
		}
	}
	// Trailing bytes are tolerated (tail-growth versioning rule).
	if _, err := DecodeEstimateReq(append(full, 0xAA, 0xBB)); err != nil {
		t.Errorf("trailing bytes must be ignored: %v", err)
	}
}

func TestOpNames(t *testing.T) {
	if !OpEstimate.IsRequest() || !OpPing.IsRequest() {
		t.Error("request opcodes misclassified")
	}
	if OpError.IsRequest() || (OpEstimate | RespFlag).IsRequest() {
		t.Error("non-request opcodes misclassified")
	}
	if s := (OpEstimate | RespFlag).String(); s != "estimate_resp" {
		t.Errorf("response opcode name %q", s)
	}
	if s := Op(0x42).String(); s != "op(0x42)" {
		t.Errorf("unknown opcode name %q", s)
	}
}
