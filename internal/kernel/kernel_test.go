package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/xmath"
)

// TestKernelContract verifies the defining properties of every kernel:
// unit mass, symmetry, zero first moment, and consistency of the published
// SecondMoment/Roughness constants and the CDF with numeric integration.
func TestKernelContract(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			r := k.Support()
			if math.IsInf(r, 1) {
				t.Fatalf("Support must be finite (effective) for fast paths")
			}

			// Unit mass.
			mass := xmath.Simpson(k.Eval, -r, r, 4000)
			if !xmath.AlmostEqual(mass, 1, 1e-6) {
				t.Errorf("∫K = %v, want 1", mass)
			}

			// Symmetry and non-negativity at probe points (symmetric
			// kernels; boundary kernels are deliberately excluded here).
			for _, x := range []float64{0.1, 0.35, 0.77, 0.99} {
				if !xmath.AlmostEqual(k.Eval(x), k.Eval(-x), 1e-12) {
					t.Errorf("K(%v) != K(−%v)", x, x)
				}
				if k.Eval(x) < 0 {
					t.Errorf("K(%v) = %v < 0", x, k.Eval(x))
				}
			}

			// Zero outside support (compact kernels).
			if k.Name() != "gaussian" {
				if k.Eval(r+0.001) != 0 || k.Eval(-r-0.001) != 0 {
					t.Error("kernel leaks outside its support")
				}
			}

			// Published second moment matches ∫t²K.
			k2 := xmath.Simpson(func(x float64) float64 { return x * x * k.Eval(x) }, -r, r, 4000)
			if !xmath.AlmostEqual(k2, k.SecondMoment(), 1e-5) {
				t.Errorf("numeric k2 = %v, published %v", k2, k.SecondMoment())
			}

			// Published roughness matches ∫K².
			rough := xmath.Simpson(func(x float64) float64 { return k.Eval(x) * k.Eval(x) }, -r, r, 4000)
			if !xmath.AlmostEqual(rough, k.Roughness(), 1e-5) {
				t.Errorf("numeric ∫K² = %v, published %v", rough, k.Roughness())
			}

			// CDF agrees with numeric integration of Eval at probe points.
			for _, x := range []float64{-0.9, -0.5, 0, 0.3, 0.8} {
				num := xmath.Simpson(k.Eval, -r, x, 4000)
				if !xmath.AlmostEqual(k.CDF(x), num, 1e-6) {
					t.Errorf("CDF(%v) = %v, numeric %v", x, k.CDF(x), num)
				}
			}

			// CDF limits.
			if k.CDF(-r-1) != 0 && k.Name() != "gaussian" {
				t.Error("CDF below support should be 0")
			}
			if got := k.CDF(r + 1); !xmath.AlmostEqual(got, 1, 1e-12) {
				t.Errorf("CDF above support = %v, want 1", got)
			}
			if !xmath.AlmostEqual(k.CDF(0), 0.5, 1e-12) {
				t.Errorf("CDF(0) = %v, want 0.5 (symmetry)", k.CDF(0))
			}
		})
	}
}

func TestEpanechnikovPaperValues(t *testing.T) {
	// The constants the paper states explicitly: k₂ = 1/5 and the
	// primitive F(t) = ¼(3t−t³) (as CDF(t) − ½).
	e := Epanechnikov{}
	if e.SecondMoment() != 0.2 {
		t.Fatalf("k2 = %v, want 1/5", e.SecondMoment())
	}
	for _, tt := range []float64{-1, -0.5, 0, 0.25, 1} {
		want := 0.25 * (3*tt - tt*tt*tt)
		if got := e.CDF(tt) - 0.5; !xmath.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("F(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	if k := ByName("epanechnikov"); k == nil || k.Name() != "epanechnikov" {
		t.Fatal("ByName(epanechnikov) failed")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown kernel should return nil")
	}
}

func TestBoundaryKernelUnitMass(t *testing.T) {
	// ∫_{−1}^{q} K^(l)(t, q) dt = 1 for every q.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		mass := xmath.Simpson(func(x float64) float64 { return BoundaryEval(x, q) }, -1, q, 4000)
		if !xmath.AlmostEqual(mass, 1, 1e-8) {
			t.Fatalf("boundary kernel mass at q=%v is %v, want 1", q, mass)
		}
	}
}

func TestBoundaryKernelReducesToEpanechnikovAtQ1(t *testing.T) {
	// At q = 1 the family is K(t) = (6−6t²)/8 = ¾(1−t²): Epanechnikov.
	e := Epanechnikov{}
	for _, x := range []float64{-0.9, -0.3, 0, 0.4, 0.99} {
		if !xmath.AlmostEqual(BoundaryEval(x, 1), e.Eval(x), 1e-12) {
			t.Fatalf("K^l(%v, 1) = %v, want Epanechnikov %v", x, BoundaryEval(x, 1), e.Eval(x))
		}
	}
}

func TestBoundaryKernelSupport(t *testing.T) {
	if BoundaryEval(0.6, 0.5) != 0 {
		t.Fatal("kernel must vanish above t = q")
	}
	if BoundaryEval(-1.01, 0.5) != 0 {
		t.Fatal("kernel must vanish below t = −1")
	}
	if BoundaryEvalRight(-0.6, 0.5) != 0 {
		t.Fatal("right kernel must vanish below t = −q")
	}
	if !xmath.AlmostEqual(BoundaryEvalRight(0.3, 0.5), BoundaryEval(-0.3, 0.5), 1e-15) {
		t.Fatal("right kernel must mirror left kernel")
	}
}

func TestBoundaryKernelClampQ(t *testing.T) {
	// q outside [0,1] is clamped rather than producing garbage.
	if got, want := BoundaryEval(0, -0.5), BoundaryEval(0, 0); got != want {
		t.Fatalf("q<0 clamp: %v vs %v", got, want)
	}
	if got, want := BoundaryEval(0, 1.5), BoundaryEval(0, 1); got != want {
		t.Fatalf("q>1 clamp: %v vs %v", got, want)
	}
}

// TestBoundaryStripIntegralMatchesNumeric validates the closed-form
// primitive against direct numeric integration of K^(l)(u−s, u) over u.
func TestBoundaryStripIntegralMatchesNumeric(t *testing.T) {
	cases := []struct{ s, u1, u2 float64 }{
		{0, 0, 1},
		{0.2, 0, 1},
		{0.5, 0.1, 0.9},
		{1.3, 0, 1},  // sample outside the strip but within reach
		{1.95, 0, 1}, // barely reaches
		{2.5, 0, 1},  // out of reach: zero
		{0.7, 0.5, 0.6},
	}
	for _, c := range cases {
		want := xmath.Simpson(func(u float64) float64 {
			return BoundaryEval(u-c.s, u)
		}, math.Max(math.Max(c.u1, 0), c.s-1), math.Min(c.u2, 1), 4000)
		if math.Max(math.Max(c.u1, 0), c.s-1) >= math.Min(c.u2, 1) {
			want = 0
		}
		got := BoundaryStripIntegral(c.s, c.u1, c.u2)
		if !xmath.AlmostEqual(got, want, 1e-7) {
			t.Fatalf("strip integral s=%v [%v,%v]: closed form %v, numeric %v", c.s, c.u1, c.u2, got, want)
		}
	}
}

func TestBoundaryStripIntegralEmpty(t *testing.T) {
	if got := BoundaryStripIntegral(0.5, 0.9, 0.1); got != 0 {
		t.Fatalf("inverted interval = %v, want 0", got)
	}
	if got := BoundaryStripIntegral(3, 0, 1); got != 0 {
		t.Fatalf("unreachable sample = %v, want 0", got)
	}
}

// Property: the strip integral is additive in the u-interval.
func TestQuickBoundaryStripAdditive(t *testing.T) {
	prop := func(rawS, rawM uint8) bool {
		s := float64(rawS) / 128 // s in [0, 2)
		m := float64(rawM) / 255 // split point in [0, 1]
		whole := BoundaryStripIntegral(s, 0, 1)
		parts := BoundaryStripIntegral(s, 0, m) + BoundaryStripIntegral(s, m, 1)
		return xmath.AlmostEqual(whole, parts, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDFs are monotone for all kernels.
func TestQuickKernelCDFMonotone(t *testing.T) {
	for _, k := range All() {
		if k.Name() == "gaussian" {
			continue // trivially monotone; erfc-based
		}
		k := k
		prop := func(raw int8) bool {
			x := float64(raw) / 100
			return k.CDF(x) <= k.CDF(x+0.01)+1e-15
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
	}
}

// Property: the fused CDFDiff equals CDF(tb) − CDF(ta) with both arguments
// clamped to the support, including reversed and far-outside arguments.
func TestEpanechnikovCDFDiff(t *testing.T) {
	var ep Epanechnikov
	prop := func(rawB, rawA int8) bool {
		tb := float64(rawB) / 40 // sweeps well past ±1
		ta := float64(rawA) / 40
		got := ep.CDFDiff(tb, ta)
		want := ep.CDF(tb) - ep.CDF(ta)
		return math.Abs(got-want) <= 1e-15
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if d := ep.CDFDiff(5, -5); d != 1 {
		t.Fatalf("full-support diff = %v, want 1", d)
	}
	if d := ep.CDFDiff(-3, 7); d != -1 {
		t.Fatalf("reversed full-support diff = %v, want -1", d)
	}
	if d := ep.CDFDiff(0.25, 0.25); d != 0 {
		t.Fatalf("zero-width diff = %v, want 0", d)
	}
}
