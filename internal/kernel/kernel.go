// Package kernel provides the kernel functions of kernel density
// estimation: the Epanechnikov kernel the paper uses, a set of alternatives
// (the paper notes the choice of kernel matters far less than the choice of
// bandwidth — our ablation bench verifies that), their primitives, and the
// Simonoff–Dong boundary kernel family used to repair estimation near the
// domain boundaries.
package kernel

import "math"

// Kernel is a symmetric probability density on the real line used as a
// smoothing kernel. Implementations are immutable values.
type Kernel interface {
	// Name identifies the kernel in experiment output.
	Name() string
	// Eval returns K(t).
	Eval(t float64) float64
	// CDF returns ∫_{−∞}^{t} K(u) du. For compactly supported kernels this
	// is 0 below −Support() and 1 above +Support(). This is the primitive
	// the paper's Algorithm 1 evaluates (shifted so CDF(0) = 1/2).
	CDF(t float64) float64
	// Support returns the half-width R of the kernel's support: K(t) = 0
	// for |t| > R. Kernels with unbounded support return +Inf.
	Support() float64
	// SecondMoment returns k₂ = ∫ t² K(t) dt, the constant in the AMISE
	// bias term (paper §4.2 condition (c)).
	SecondMoment() float64
	// Roughness returns ∫ K(t)² dt, the constant in the AMISE variance
	// term (paper eq. 9b).
	Roughness() float64
}

// Epanechnikov is the kernel the paper adopts: K(t) = ¾(1−t²) on [−1,1].
// It minimises the AMISE among all kernels, and its primitive
// F(t) = ¼(3t−t³) is a three-operation polynomial, which is why the paper
// calls it "inexpensive to compute".
type Epanechnikov struct{}

// Name implements Kernel.
func (Epanechnikov) Name() string { return "epanechnikov" }

// Eval implements Kernel.
func (Epanechnikov) Eval(t float64) float64 {
	if t < -1 || t > 1 {
		return 0
	}
	return 0.75 * (1 - t*t)
}

// CDF implements Kernel: ∫_{−1}^{t} K = ½ + ¼(3t−t³) for |t| ≤ 1.
func (Epanechnikov) CDF(t float64) float64 {
	switch {
	case t <= -1:
		return 0
	case t >= 1:
		return 1
	default:
		return 0.5 + 0.25*(3*t-t*t*t)
	}
}

// CDFDiff returns CDF(tb) − CDF(ta) in one fused evaluation. The hot
// evaluation loops of Algorithm 1 compute this difference for every edge
// sample; factoring u³−v³ = (u−v)(u²+uv+v²) after clamping both arguments
// to the support turns six polynomial terms and two branches into one
// product — and callers that type-switch to the concrete Epanechnikov
// avoid the interface dispatch entirely.
func (Epanechnikov) CDFDiff(tb, ta float64) float64 {
	u := tb
	if u < -1 {
		u = -1
	} else if u > 1 {
		u = 1
	}
	v := ta
	if v < -1 {
		v = -1
	} else if v > 1 {
		v = 1
	}
	// CDF(u) − CDF(v) = ¼(3(u−v) − (u³−v³)) = ¼(u−v)(3 − (u²+uv+v²)).
	return 0.25 * (u - v) * (3 - (u*u + u*v + v*v))
}

// Support implements Kernel.
func (Epanechnikov) Support() float64 { return 1 }

// SecondMoment implements Kernel: k₂ = 1/5 (the paper's value).
func (Epanechnikov) SecondMoment() float64 { return 1.0 / 5.0 }

// Roughness implements Kernel: ∫K² = 3/5.
func (Epanechnikov) Roughness() float64 { return 3.0 / 5.0 }

// Biweight (quartic) kernel: K(t) = 15/16 (1−t²)² on [−1,1].
type Biweight struct{}

// Name implements Kernel.
func (Biweight) Name() string { return "biweight" }

// Eval implements Kernel.
func (Biweight) Eval(t float64) float64 {
	if t < -1 || t > 1 {
		return 0
	}
	u := 1 - t*t
	return 15.0 / 16.0 * u * u
}

// CDF implements Kernel.
func (Biweight) CDF(t float64) float64 {
	switch {
	case t <= -1:
		return 0
	case t >= 1:
		return 1
	default:
		// ∫ 15/16 (1−u²)² du = 15/16 (u − 2u³/3 + u⁵/5) + C
		return 0.5 + 15.0/16.0*(t-2*t*t*t/3+t*t*t*t*t/5)
	}
}

// Support implements Kernel.
func (Biweight) Support() float64 { return 1 }

// SecondMoment implements Kernel: k₂ = 1/7.
func (Biweight) SecondMoment() float64 { return 1.0 / 7.0 }

// Roughness implements Kernel: ∫K² = 5/7.
func (Biweight) Roughness() float64 { return 5.0 / 7.0 }

// Triweight kernel: K(t) = 35/32 (1−t²)³ on [−1,1].
type Triweight struct{}

// Name implements Kernel.
func (Triweight) Name() string { return "triweight" }

// Eval implements Kernel.
func (Triweight) Eval(t float64) float64 {
	if t < -1 || t > 1 {
		return 0
	}
	u := 1 - t*t
	return 35.0 / 32.0 * u * u * u
}

// CDF implements Kernel.
func (Triweight) CDF(t float64) float64 {
	switch {
	case t <= -1:
		return 0
	case t >= 1:
		return 1
	default:
		// ∫ (1−u²)³ du = u − u³ + 3u⁵/5 − u⁷/7 + C
		return 0.5 + 35.0/32.0*(t-t*t*t+3*math.Pow(t, 5)/5-math.Pow(t, 7)/7)
	}
}

// Support implements Kernel.
func (Triweight) Support() float64 { return 1 }

// SecondMoment implements Kernel: k₂ = 1/9.
func (Triweight) SecondMoment() float64 { return 1.0 / 9.0 }

// Roughness implements Kernel: ∫K² = 350/429.
func (Triweight) Roughness() float64 { return 350.0 / 429.0 }

// Triangular kernel: K(t) = 1−|t| on [−1,1].
type Triangular struct{}

// Name implements Kernel.
func (Triangular) Name() string { return "triangular" }

// Eval implements Kernel.
func (Triangular) Eval(t float64) float64 {
	a := math.Abs(t)
	if a > 1 {
		return 0
	}
	return 1 - a
}

// CDF implements Kernel.
func (Triangular) CDF(t float64) float64 {
	switch {
	case t <= -1:
		return 0
	case t >= 1:
		return 1
	case t <= 0:
		u := 1 + t
		return 0.5 * u * u
	default:
		u := 1 - t
		return 1 - 0.5*u*u
	}
}

// Support implements Kernel.
func (Triangular) Support() float64 { return 1 }

// SecondMoment implements Kernel: k₂ = 1/6.
func (Triangular) SecondMoment() float64 { return 1.0 / 6.0 }

// Roughness implements Kernel: ∫K² = 2/3.
func (Triangular) Roughness() float64 { return 2.0 / 3.0 }

// Uniform (box) kernel: K(t) = ½ on [−1,1]. A KDE with the uniform kernel
// is a "moving histogram"; it is the bridge between histogram and kernel
// estimation.
type Uniform struct{}

// Name implements Kernel.
func (Uniform) Name() string { return "uniform" }

// Eval implements Kernel.
func (Uniform) Eval(t float64) float64 {
	if t < -1 || t > 1 {
		return 0
	}
	return 0.5
}

// CDF implements Kernel.
func (Uniform) CDF(t float64) float64 {
	switch {
	case t <= -1:
		return 0
	case t >= 1:
		return 1
	default:
		return 0.5 * (t + 1)
	}
}

// Support implements Kernel.
func (Uniform) Support() float64 { return 1 }

// SecondMoment implements Kernel: k₂ = 1/3.
func (Uniform) SecondMoment() float64 { return 1.0 / 3.0 }

// Roughness implements Kernel: ∫K² = 1/2.
func (Uniform) Roughness() float64 { return 0.5 }

// Cosine kernel: K(t) = π/4 · cos(πt/2) on [−1,1].
type Cosine struct{}

// Name implements Kernel.
func (Cosine) Name() string { return "cosine" }

// Eval implements Kernel.
func (Cosine) Eval(t float64) float64 {
	if t < -1 || t > 1 {
		return 0
	}
	return math.Pi / 4 * math.Cos(math.Pi*t/2)
}

// CDF implements Kernel.
func (Cosine) CDF(t float64) float64 {
	switch {
	case t <= -1:
		return 0
	case t >= 1:
		return 1
	default:
		return 0.5 * (1 + math.Sin(math.Pi*t/2))
	}
}

// Support implements Kernel.
func (Cosine) Support() float64 { return 1 }

// SecondMoment implements Kernel: k₂ = 1 − 8/π².
func (Cosine) SecondMoment() float64 { return 1 - 8/(math.Pi*math.Pi) }

// Roughness implements Kernel: ∫K² = π²/16.
func (Cosine) Roughness() float64 { return math.Pi * math.Pi / 16 }

// Gaussian kernel: the standard normal density. Unbounded support means the
// fast paths of Algorithm 1 never take the "contributes exactly 1"
// shortcut; it is included to quantify that cost in the ablation bench.
type Gaussian struct{}

// Name implements Kernel.
func (Gaussian) Name() string { return "gaussian" }

// Eval implements Kernel.
func (Gaussian) Eval(t float64) float64 {
	return 0.3989422804014327 * math.Exp(-0.5*t*t)
}

// CDF implements Kernel.
func (Gaussian) CDF(t float64) float64 {
	return 0.5 * math.Erfc(-t/math.Sqrt2)
}

// Support implements Kernel. The Gaussian has unbounded support, but beyond
// ~8.5 standard deviations the tail mass is below float64 resolution, so we
// report a finite effective support to keep the evaluation fast paths valid.
func (Gaussian) Support() float64 { return 8.5 }

// SecondMoment implements Kernel: k₂ = 1.
func (Gaussian) SecondMoment() float64 { return 1 }

// Roughness implements Kernel: ∫K² = 1/(2√π).
func (Gaussian) Roughness() float64 { return 1 / (2 * math.SqrtPi) }

// All returns one instance of every kernel in this package, for
// enumeration in tests and ablation benches.
func All() []Kernel {
	return []Kernel{
		Epanechnikov{}, Biweight{}, Triweight{}, Triangular{},
		Uniform{}, Cosine{}, Gaussian{},
	}
}

// ByName returns the kernel with the given Name, or nil if unknown.
func ByName(name string) Kernel {
	for _, k := range All() {
		if k.Name() == name {
			return k
		}
	}
	return nil
}
