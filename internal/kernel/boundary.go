package kernel

import "math"

// This file implements the Simonoff–Dong family of boundary kernels the
// paper adopts for repairing kernel estimates near the domain boundaries
// (paper §3.2.1):
//
//	K^(l)(t, q) = (3 + 3q² − 6t²) / (1+q)³ · I_{[−1, q]}(t),  q ∈ [0, 1]
//
// where q = (x − l)/h is the normalised distance of the evaluation point
// from the left boundary l. The family integrates to one for every q and
// smoothly deforms into a one-sided kernel as x approaches the boundary.
// Boundary kernels may take negative values for |t| close to 1; that is by
// construction (it is what restores consistency) and callers clamp final
// selectivities to [0, 1].
//
// For the right boundary the mirrored family K^(r)(t, q) = K^(l)(−t, q)
// applies with q = (r − x)/h.

// BoundaryEval returns K^(l)(t, q), the left-boundary kernel at t for
// boundary parameter q ∈ [0, 1]. Outside [−1, q] the kernel is zero.
func BoundaryEval(t, q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if t < -1 || t > q {
		return 0
	}
	den := (1 + q) * (1 + q) * (1 + q)
	return (3 + 3*q*q - 6*t*t) / den
}

// BoundaryEvalRight returns K^(r)(t, q) = K^(l)(−t, q), the right-boundary
// kernel.
func BoundaryEvalRight(t, q float64) float64 {
	return BoundaryEval(-t, q)
}

// BoundaryStripIntegral computes the selectivity contribution of a single
// sample inside the left boundary strip:
//
//	∫_{u1}^{u2} K^(l)(u − s, u) du
//
// where u = (x − l)/h sweeps the query range inside the strip (u ∈ [0, 1]),
// s = (X_i − l)/h ≥ 0 is the sample's normalised distance from the
// boundary, and the boundary parameter q equals u (the paper's "q is a
// monotone function of x with q(0)=0, q(h)=1").
//
// By symmetry the same function evaluates right-boundary contributions with
// s = (r − X_i)/h, u = (r − x)/h (the integration direction flips but the
// integrand is identical).
//
// The integral has the closed form (v = 1 + u):
//
//	G(v; s) = −3 ln v − (6 + 12s)/v + (6s + 3s²)/v²
//
// derived by expanding the numerator of K^(l)(u−s, u) in v.
func BoundaryStripIntegral(s, u1, u2 float64) float64 {
	if s < 0 {
		s = 0
	}
	// Clip to the strip and to the kernel support t = u−s ≥ −1 ⇒ u ≥ s−1.
	lo := math.Max(math.Max(u1, 0), s-1)
	hi := math.Min(u2, 1)
	if hi <= lo {
		return 0
	}
	return boundaryPrimitive(1+hi, s) - boundaryPrimitive(1+lo, s)
}

// boundaryPrimitive is G(v; s) above.
func boundaryPrimitive(v, s float64) float64 {
	return -3*math.Log(v) - (6+12*s)/v + (6*s+3*s*s)/(v*v)
}
