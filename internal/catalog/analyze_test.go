package catalog

import (
	"math"
	"testing"

	"selest/internal/core"
	"selest/internal/table"
	"selest/internal/xrand"
)

func testRelation(t *testing.T, n int, seed uint64) *table.Relation {
	t.Helper()
	r := xrand.New(seed)
	amounts := make([]float64, n)
	qtys := make([]float64, n)
	for i := range amounts {
		amounts[i] = math.Floor(r.Float64() * 10000)
		qtys[i] = math.Floor(r.Exponential(0.5))
	}
	rel, err := table.NewRelation("orders", map[string][]float64{
		"amount": amounts,
		"qty":    qtys,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestAnalyzeStoresUsableStatistics(t *testing.T) {
	rel := testRelation(t, 50000, 1)
	c := New()
	if err := c.Analyze(rel, "amount", AnalyzeOptions{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Entry("orders", "amount")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Samples) != 2000 {
		t.Fatalf("sample size = %d, want default 2000", len(e.Samples))
	}
	if e.RowCount != 50000 {
		t.Fatalf("RowCount = %d", e.RowCount)
	}
	// Estimated rows for a 10%-of-domain predicate on uniform data.
	rows, err := c.EstimateRows("orders", "amount", 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rows-5000)/5000 > 0.25 {
		t.Fatalf("EstimateRows = %v, want ~5000", rows)
	}
}

func TestAnalyzeSmallColumnClampsToFullScan(t *testing.T) {
	rel := testRelation(t, 100, 3)
	c := New()
	if err := c.Analyze(rel, "amount", AnalyzeOptions{SampleSize: 10000}); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Entry("orders", "amount")
	if len(e.Samples) != 100 {
		t.Fatalf("sample size = %d, want full column", len(e.Samples))
	}
}

func TestAnalyzeMethodConfig(t *testing.T) {
	rel := testRelation(t, 5000, 4)
	c := New()
	err := c.Analyze(rel, "qty", AnalyzeOptions{
		Method: core.EquiWidth, Bins: 12, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := c.Entry("orders", "qty")
	if e.Method != core.EquiWidth || e.Bins != 12 {
		t.Fatalf("config not stored: %+v", e)
	}
	est, err := c.Estimator("orders", "qty")
	if err != nil {
		t.Fatal(err)
	}
	type binned interface{ Bins() int }
	if b, ok := est.(binned); !ok || b.Bins() != 12 {
		t.Fatal("stored estimator does not honour the configuration")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	c := New()
	if err := c.Analyze(nil, "x", AnalyzeOptions{}); err == nil {
		t.Fatal("nil relation should error")
	}
	rel := testRelation(t, 100, 6)
	if err := c.Analyze(rel, "missing", AnalyzeOptions{}); err == nil {
		t.Fatal("unknown column should error")
	}
	constRel, err := table.NewRelation("c", map[string][]float64{"v": {5, 5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze(constRel, "v", AnalyzeOptions{}); err == nil {
		t.Fatal("constant column should error")
	}
}

func TestAnalyzeRefreshReplaces(t *testing.T) {
	rel := testRelation(t, 10000, 7)
	c := New()
	if err := c.Analyze(rel, "amount", AnalyzeOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze(rel, "amount", AnalyzeOptions{Seed: 2, SampleSize: 500}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after refresh", c.Len())
	}
	e, _ := c.Entry("orders", "amount")
	if len(e.Samples) != 500 {
		t.Fatal("refresh did not replace the entry")
	}
}
