package catalog

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"selest/internal/core"
	"selest/internal/kde"
	"selest/internal/xrand"
)

func testEntry(table, column string, seed uint64) *Entry {
	r := xrand.New(seed)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = math.Floor(r.Float64() * 1000)
	}
	return &Entry{
		Table: table, Column: column,
		Samples:  samples,
		DomainLo: 0, DomainHi: 1000,
		Method:   core.Kernel,
		Boundary: kde.BoundaryKernels,
		RowCount: 50000,
	}
}

func TestPutValidation(t *testing.T) {
	c := New()
	if err := c.Put(nil); err == nil {
		t.Fatal("nil entry should error")
	}
	if err := c.Put(&Entry{Column: "c"}); err == nil {
		t.Fatal("missing table should error")
	}
	e := testEntry("t", "c", 1)
	e.Samples = nil
	if err := c.Put(e); err == nil {
		t.Fatal("empty samples should error")
	}
	e = testEntry("t", "c", 1)
	e.DomainHi = e.DomainLo
	if err := c.Put(e); err == nil {
		t.Fatal("empty domain should error")
	}
	e = testEntry("t", "c", 1)
	e.Method = "bogus"
	if err := c.Put(e); err == nil {
		t.Fatal("unbuildable entry should error")
	}
}

func TestPutGetEstimate(t *testing.T) {
	c := New()
	if err := c.Put(testEntry("orders", "amount", 2)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	est, err := c.Estimator("orders", "amount")
	if err != nil {
		t.Fatal(err)
	}
	if s := est.Selectivity(0, 1000); s < 0.9 {
		t.Fatalf("whole-domain σ̂ = %v", s)
	}
	rows, err := c.EstimateRows("orders", "amount", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform data: ~10% of 50,000.
	if math.Abs(rows-5000) > 1500 {
		t.Fatalf("EstimateRows = %v, want ~5000", rows)
	}
	if _, err := c.Estimator("orders", "missing"); err == nil {
		t.Fatal("missing column should error")
	}
	if _, err := c.EstimateRows("nope", "x", 0, 1); err == nil {
		t.Fatal("missing stats should error")
	}
}

func TestEntryCopyIsolation(t *testing.T) {
	c := New()
	src := testEntry("t", "c", 3)
	if err := c.Put(src); err != nil {
		t.Fatal(err)
	}
	src.Samples[0] = -999 // mutate the caller's slice
	got, err := c.Entry("t", "c")
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0] == -999 {
		t.Fatal("catalog shares the caller's sample slice")
	}
	got.Samples[1] = -888 // mutate the returned copy
	again, _ := c.Entry("t", "c")
	if again.Samples[1] == -888 {
		t.Fatal("Entry returns a shared slice")
	}
}

func TestPutReplaces(t *testing.T) {
	c := New()
	if err := c.Put(testEntry("t", "c", 4)); err != nil {
		t.Fatal(err)
	}
	e2 := testEntry("t", "c", 5)
	e2.Method = core.EquiWidth
	if err := c.Put(e2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after replace = %d", c.Len())
	}
	got, _ := c.Entry("t", "c")
	if got.Method != core.EquiWidth {
		t.Fatalf("replace did not take: method %s", got.Method)
	}
}

func TestDrop(t *testing.T) {
	c := New()
	if err := c.Put(testEntry("t", "c", 6)); err != nil {
		t.Fatal(err)
	}
	c.Drop("t", "c")
	if c.Len() != 0 {
		t.Fatal("Drop did not remove the entry")
	}
	c.Drop("t", "c") // idempotent
}

func TestColumnsSorted(t *testing.T) {
	c := New()
	for _, tc := range [][2]string{{"b", "y"}, {"a", "z"}, {"a", "x"}} {
		if err := c.Put(testEntry(tc[0], tc[1], 7)); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Columns()
	want := [][2]string{{"a", "x"}, {"a", "z"}, {"b", "y"}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Columns = %v", got)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New()
	e1 := testEntry("orders", "amount", 8)
	e2 := testEntry("events", "ts", 9)
	e2.Method = core.EquiWidth
	e2.Bins = 40
	e2.Rule = core.DPI
	if err := c.Put(e1); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(e2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
	got, err := loaded.Entry("events", "ts")
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != core.EquiWidth || got.Bins != 40 || got.Rule != core.DPI || got.RowCount != 50000 {
		t.Fatalf("entry fields lost: %+v", got)
	}
	// Loaded estimators answer identically to the originals.
	origEst, _ := c.Estimator("orders", "amount")
	loadEst, _ := loaded.Estimator("orders", "amount")
	for _, q := range [][2]float64{{0, 100}, {300, 700}, {900, 1000}} {
		if a, b := origEst.Selectivity(q[0], q[1]), loadEst.Selectivity(q[0], q[1]); a != b {
			t.Fatalf("estimates diverge after round trip: %v vs %v", a, b)
		}
	}
}

func TestSaveLoadFileOnDisk(t *testing.T) {
	c := New()
	if err := c.Put(testEntry("t", "c", 10)); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/stats.selc"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatal("disk round trip lost entries")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage data here..."))); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
	var buf bytes.Buffer
	buf.Write(catalogMagic[:])
	buf.Write([]byte{9, 9}) // bad version
	if _, err := Load(&buf); err == nil {
		t.Fatal("bad version should fail")
	}
	// Truncated entry body.
	buf.Reset()
	buf.Write(catalogMagic[:])
	buf.Write([]byte{1, 0})       // version 1
	buf.Write([]byte{1, 0, 0, 0}) // one entry
	buf.Write([]byte{3, 0})       // table name length 3, then EOF
	if _, err := Load(&buf); err == nil {
		t.Fatal("truncated entry should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	if err := c.Put(testEntry("t", "c", 11)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := c.Put(testEntry("t", "c", seed)); err != nil {
					panic(err)
				}
			}
		}(uint64(g + 20))
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if _, err := c.EstimateRows("t", "c", 100, 300); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotChurn hammers the lock-free read path (Estimator,
// EstimateRows, Columns, Len, Save) while writers Put and Drop disjoint
// columns — the race-detector target for the atomic-snapshot catalog.
// Readers must always observe a consistent state: any column listed by
// Columns resolves through Entry/Estimator of the SAME loaded state, and
// a pinned column that is never dropped answers on every iteration.
func TestSnapshotChurn(t *testing.T) {
	c := New()
	if err := c.Put(testEntry("t", "pinned", 1)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			col := []string{"a", "b"}[w]
			for i := 0; i < 150; i++ {
				if err := c.Put(testEntry("t", col, uint64(40+i))); err != nil {
					panic(err)
				}
				c.Drop("t", col)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var buf bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.EstimateRows("t", "pinned", 100, 300); err != nil {
					panic("pinned column vanished: " + err.Error())
				}
				for _, tc := range c.Columns() {
					// Columns and Entry load separate states, so a
					// dropped column may legitimately miss — but the
					// pinned one never may.
					if _, err := c.Entry(tc[0], tc[1]); err != nil && tc[1] == "pinned" {
						panic(err)
					}
				}
				if c.Len() < 1 {
					panic("catalog lost its pinned entry")
				}
				buf.Reset()
				if err := c.Save(&buf); err != nil {
					panic(err)
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if _, err := c.Estimator("t", "pinned"); err != nil {
		t.Fatal(err)
	}
}
