package catalog

import (
	"fmt"

	"selest/internal/core"
	"selest/internal/kde"
	"selest/internal/sample"
	"selest/internal/table"
	"selest/internal/xrand"
)

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// SampleSize is the number of records to sample (paper: 2,000).
	// Zero defaults to 2000; larger than the column clamps to a full scan.
	SampleSize int
	// Seed drives the sampling RNG.
	Seed uint64
	// Method, Rule, Boundary, Bins, Bandwidth select the estimator
	// configuration stored with the statistics; the zero value stores the
	// kernel estimator with no boundary treatment and the normal scale
	// rule.
	Method    core.Method
	Rule      core.BandwidthRule
	Boundary  kde.BoundaryMode
	Bins      int
	Bandwidth float64
}

// Analyze samples one column of a relation and stores fresh statistics in
// the catalog under (relation name, column name) — the ANALYZE operation
// of a database system, expressed against this library's table substrate.
func (c *Catalog) Analyze(rel *table.Relation, column string, opts AnalyzeOptions) error {
	if rel == nil {
		return fmt.Errorf("catalog: nil relation")
	}
	col, ok := rel.Column(column)
	if !ok {
		return fmt.Errorf("catalog: relation %q has no column %q", rel.Name(), column)
	}
	if col.Len() == 0 {
		return fmt.Errorf("catalog: column %s.%s is empty", rel.Name(), column)
	}
	n := opts.SampleSize
	if n == 0 {
		n = 2000
	}
	if n > col.Len() {
		n = col.Len()
	}
	smp, err := sample.WithoutReplacement(xrand.New(opts.Seed), col.Values(), n)
	if err != nil {
		return fmt.Errorf("catalog: analyze %s.%s: %w", rel.Name(), column, err)
	}
	entry := &Entry{
		Table:     rel.Name(),
		Column:    column,
		Samples:   smp,
		DomainLo:  col.Min(),
		DomainHi:  col.Max(),
		Method:    opts.Method,
		Rule:      opts.Rule,
		Boundary:  opts.Boundary,
		Bins:      opts.Bins,
		Bandwidth: opts.Bandwidth,
		RowCount:  int64(col.Len()),
	}
	if entry.DomainLo == entry.DomainHi {
		return fmt.Errorf("catalog: column %s.%s is constant; no interval structure to analyse", rel.Name(), column)
	}
	return c.Put(entry)
}
