package catalog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadDetectsTruncation pins the typed partial-write diagnosis: a
// version-2 snapshot truncated at any byte boundary must fail with
// ErrTornSnapshot, never load half a catalog, and never panic.
func TestLoadDetectsTruncation(t *testing.T) {
	c := New()
	if err := c.Put(testEntryForFuzz()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Anything shorter than the magic is torn; anything between the magic
	// and the final byte is torn or bad-magic. Walk every prefix.
	for n := 0; n < len(full); n++ {
		_, err := Load(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded successfully", n, len(full))
		}
		if n >= len(catalogMagic) && !errors.Is(err, ErrTornSnapshot) {
			t.Fatalf("truncation to %d/%d bytes: got %v, want ErrTornSnapshot", n, len(full), err)
		}
	}
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("full snapshot failed to load: %v", err)
	}
}

// TestLoadDetectsCorruption flips one byte inside an entry: the CRC32
// footer must catch it as a torn snapshot even though the structure still
// parses.
func TestLoadDetectsCorruption(t *testing.T) {
	c := New()
	if err := c.Put(testEntryForFuzz()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip a bit in the middle of the sample payload — structurally
	// valid, semantically corrupt.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-20] ^= 0x40
	_, err := Load(bytes.NewReader(corrupt))
	if err == nil {
		t.Fatal("bit-flipped snapshot loaded successfully")
	}
	if !errors.Is(err, ErrTornSnapshot) {
		t.Fatalf("bit flip diagnosed as %v, want ErrTornSnapshot", err)
	}
}

// TestLoadVersion1Compat keeps pre-checksum files readable: a version-1
// stream (the version-2 body without its CRC footer) must load.
func TestLoadVersion1Compat(t *testing.T) {
	c := New()
	if err := c.Put(testEntryForFuzz()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), buf.Bytes()...)
	v1[4] = 1           // version field low byte: 2 → 1
	v1 = v1[:len(v1)-4] // strip the CRC footer v1 never had
	loaded, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 stream failed to load: %v", err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("version-1 stream loaded %d entries, want 1", loaded.Len())
	}
}

// TestSaveFileAtomic pins the crash-safe write protocol: SaveFile leaves
// no temporary residue, the written file round-trips, and overwriting an
// existing snapshot replaces it whole.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stats.selc")
	c := New()
	if err := c.Put(testEntryForFuzz()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second pass overwrites
		if err := c.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary file %q left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d files, want only the snapshot", len(entries))
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatal("disk round trip lost entries")
	}
}

// TestSaveDeterministic pins that two saves of the same state are
// byte-identical — the property the service's kill-and-restart recovery
// check builds on.
func TestSaveDeterministic(t *testing.T) {
	c := New()
	if err := c.Put(testEntryForFuzz()); err != nil {
		t.Fatal(err)
	}
	e2 := testEntryForFuzz()
	e2.Table, e2.Column = "u", "d"
	if err := c.Put(e2); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := c.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same catalog differ")
	}
}
