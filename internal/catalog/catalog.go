// Package catalog is a persistent statistics catalog: it stores, per
// (table, column), everything needed to rebuild a selectivity estimator —
// the sample set, the domain, and the estimator configuration — and
// rebuilds estimators on load. This is the role the paper's estimators
// play inside a database system: statistics are collected once (ANALYZE),
// persisted, and consulted by the optimiser until refreshed.
//
// Persisting the *sample plus configuration* rather than the fitted
// structure keeps the format estimator-agnostic (kernel estimators are
// their samples; histograms rebuild in microseconds) and lets a newer
// binary rebuild stats with improved rules without re-sampling the table.
package catalog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"selest/internal/core"
	"selest/internal/dataset"
	"selest/internal/kde"
)

// ErrTornSnapshot is the typed partial-write diagnosis: Load wraps it when
// a snapshot file ends mid-entry or fails its checksum — the signature a
// crash left mid-Save before SaveFile was made atomic, or of on-disk
// corruption. Callers distinguish "torn file, fall back to cold start"
// (errors.Is(err, ErrTornSnapshot)) from "no snapshot at all"
// (os.IsNotExist) and from a genuinely malformed file.
var ErrTornSnapshot = errors.New("torn snapshot (partial write or corruption)")

// Entry is the persisted statistics record of one column.
type Entry struct {
	// Table and Column name the attribute.
	Table, Column string
	// Samples is the stored sample set.
	Samples []float64
	// DomainLo/DomainHi bound the attribute domain at collection time.
	DomainLo, DomainHi float64
	// Method, Rule, Boundary, Bins, Bandwidth mirror core.Options.
	Method    core.Method
	Rule      core.BandwidthRule
	Boundary  kde.BoundaryMode
	Bins      int
	Bandwidth float64
	// RowCount is the table cardinality at collection time, used to scale
	// selectivities into row estimates.
	RowCount int64
}

// Options converts the entry back to build options.
func (e *Entry) Options() core.Options {
	return core.Options{
		Method:    e.Method,
		DomainLo:  e.DomainLo,
		DomainHi:  e.DomainHi,
		Bins:      e.Bins,
		Bandwidth: e.Bandwidth,
		Rule:      e.Rule,
		Boundary:  e.Boundary,
	}
}

// Build rebuilds the estimator from the entry.
func (e *Entry) Build() (core.Estimator, error) {
	return core.Build(e.Samples, e.Options())
}

// key identifies an entry.
type key struct{ table, column string }

// catState is the immutable unit of publication: both maps are built
// fresh by every writer and never mutated after the atomic swap, so a
// reader holding one sees entries and their built estimators in exact
// correspondence, with no locks on the lookup path. This is the same
// snapshot pattern the online serving engine uses (DESIGN.md §11):
// optimiser lookups are the hot path, ANALYZE-style writes are rare, and
// Go's GC retires superseded states once the last reader drops them.
type catState struct {
	entries map[key]*Entry
	// built caches rebuilt estimators per entry.
	built map[key]core.Estimator
}

// Catalog is an in-memory statistics catalog with binary persistence.
// It is safe for concurrent use: reads (Estimator, EstimateRows, Entry,
// Columns, Save) are lock-free atomic snapshot loads; writes (Put, Drop)
// serialize on a mutex, copy the current state, and publish the
// replacement with one atomic swap.
type Catalog struct {
	mu    sync.Mutex // serializes writers only
	state atomic.Pointer[catState]
}

// New returns an empty catalog.
func New() *Catalog {
	c := &Catalog{}
	c.state.Store(&catState{
		entries: make(map[key]*Entry),
		built:   make(map[key]core.Estimator),
	})
	return c
}

// mutate runs fn over a private copy of the current state under the
// writer mutex and publishes the result. Readers see either the old
// state whole or the new state whole.
func (c *Catalog) mutate(fn func(*catState)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.state.Load()
	next := &catState{
		entries: make(map[key]*Entry, len(old.entries)+1),
		built:   make(map[key]core.Estimator, len(old.built)+1),
	}
	for k, v := range old.entries {
		next.entries[k] = v
	}
	for k, v := range old.built {
		next.built[k] = v
	}
	fn(next)
	c.state.Store(next)
}

// Put validates and stores an entry, replacing any previous statistics for
// the same (table, column). The entry's estimator must build. The build
// runs before the writer lock is taken, so a slow fit never blocks
// concurrent Puts of other columns' readers.
func (c *Catalog) Put(e *Entry) error {
	if e == nil {
		return fmt.Errorf("catalog: nil entry")
	}
	if e.Table == "" || e.Column == "" {
		return fmt.Errorf("catalog: entry needs table and column names")
	}
	if len(e.Samples) == 0 {
		return fmt.Errorf("catalog: entry %s.%s has no samples", e.Table, e.Column)
	}
	if !(e.DomainHi > e.DomainLo) {
		return fmt.Errorf("catalog: entry %s.%s has empty domain", e.Table, e.Column)
	}
	est, err := e.Build()
	if err != nil {
		return fmt.Errorf("catalog: entry %s.%s does not build: %w", e.Table, e.Column, err)
	}
	cp := *e
	cp.Samples = append([]float64(nil), e.Samples...)
	c.mutate(func(st *catState) {
		k := key{e.Table, e.Column}
		st.entries[k] = &cp
		st.built[k] = est
	})
	return nil
}

// Estimator returns the (cached) estimator for a column. The lookup is
// one atomic load and a map read — no locks.
func (c *Catalog) Estimator(table, column string) (core.Estimator, error) {
	if est, ok := c.state.Load().built[key{table, column}]; ok {
		return est, nil
	}
	return nil, fmt.Errorf("catalog: no statistics for %s.%s", table, column)
}

// Entry returns a copy of the stored entry for a column.
func (c *Catalog) Entry(table, column string) (*Entry, error) {
	e, ok := c.state.Load().entries[key{table, column}]
	if !ok {
		return nil, fmt.Errorf("catalog: no statistics for %s.%s", table, column)
	}
	cp := *e
	cp.Samples = append([]float64(nil), e.Samples...)
	return &cp, nil
}

// EstimateRows returns the estimated result size of a range predicate on a
// column, scaled by the recorded row count. One state load covers both
// lookups, so the estimator and row count always belong together even
// when a Put lands mid-call.
func (c *Catalog) EstimateRows(table, column string, a, b float64) (float64, error) {
	st := c.state.Load()
	est, ok := st.built[key{table, column}]
	if !ok {
		return 0, fmt.Errorf("catalog: no statistics for %s.%s", table, column)
	}
	return est.Selectivity(a, b) * float64(st.entries[key{table, column}].RowCount), nil
}

// Drop removes a column's statistics; it is a no-op if absent.
func (c *Catalog) Drop(table, column string) {
	c.mutate(func(st *catState) {
		delete(st.entries, key{table, column})
		delete(st.built, key{table, column})
	})
}

// Len returns the number of entries.
func (c *Catalog) Len() int {
	return len(c.state.Load().entries)
}

// Columns lists the stored (table, column) pairs sorted lexicographically.
func (c *Catalog) Columns() [][2]string {
	return c.state.Load().columns()
}

// columns lists the state's (table, column) pairs sorted
// lexicographically. Save iterates one loaded state through this, so it
// writes a point-in-time snapshot without blocking writers — the
// RWMutex-era deadlock between Save and a queued writer is structurally
// gone.
func (st *catState) columns() [][2]string {
	out := make([][2]string, 0, len(st.entries))
	for k := range st.entries {
		out = append(out, [2]string{k.table, k.column})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Binary format:
//
//	magic   [4]byte "SELC"
//	version uint16
//	count   uint32
//	per entry:
//	  table, column, method, rule:  uint16 len + bytes each
//	  boundary  uint8
//	  bins      int32
//	  bandwidth float64
//	  domainLo, domainHi float64
//	  rowCount  int64
//	  nSamples  uint32, samples []float64
//	crc32 (IEEE) uint32 over everything after the version field
//	  (version ≥ 2 only; version 1 files carry no checksum)

var catalogMagic = [4]byte{'S', 'E', 'L', 'C'}

const catalogVersion = 2

// Save writes the whole catalog — one atomically loaded state, so the
// file is a consistent point-in-time snapshot even while writers land.
// The stream ends with a CRC32 footer, so Load can diagnose a partial
// write (a crash mid-Save, a truncated copy) as ErrTornSnapshot instead
// of silently rebuilding from half a catalog.
func (c *Catalog) Save(w io.Writer) error {
	st := c.state.Load()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(catalogMagic[:]); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(catalogVersion)); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	// Everything after the version flows through the checksum.
	sum := crc32.NewIEEE()
	cw := io.MultiWriter(bw, sum)
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(st.entries))); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	// Deterministic order for reproducible files.
	for _, tc := range st.columns() {
		e := st.entries[key{tc[0], tc[1]}]
		for _, s := range []string{e.Table, e.Column, string(e.Method), string(e.Rule)} {
			if len(s) > math.MaxUint16 {
				return fmt.Errorf("catalog: string too long")
			}
			if err := binary.Write(cw, binary.LittleEndian, uint16(len(s))); err != nil {
				return fmt.Errorf("catalog: %w", err)
			}
			if _, err := io.WriteString(cw, s); err != nil {
				return fmt.Errorf("catalog: %w", err)
			}
		}
		if _, err := cw.Write([]byte{byte(e.Boundary)}); err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		for _, v := range []any{int32(e.Bins), e.Bandwidth, e.DomainLo, e.DomainHi, e.RowCount, uint32(len(e.Samples))} {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return fmt.Errorf("catalog: %w", err)
			}
		}
		if err := binary.Write(cw, binary.LittleEndian, e.Samples); err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, sum.Sum32()); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return bw.Flush()
}

// crcReader hashes every byte read through it, so Load can verify the
// footer checksum without buffering the stream twice.
type crcReader struct {
	r   io.Reader
	sum hash.Hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.sum.Write(p[:n])
	}
	return n, err
}

// torn wraps EOF-shaped read errors as ErrTornSnapshot: a stream that ends
// mid-structure is the signature of a partial write, not of a different
// format.
func torn(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTornSnapshot, err)
	}
	return err
}

// Load reads a catalog and rebuilds every estimator. A stream that ends
// mid-entry or fails its checksum returns an error wrapping
// ErrTornSnapshot, so recovery code can tell a crash-torn file from a
// missing or foreign one. Version-1 files (pre-checksum) still load; their
// truncations are detected structurally only.
func Load(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("catalog: read magic: %w", torn(err))
	}
	if magic != catalogMagic {
		return nil, fmt.Errorf("catalog: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("catalog: %w", torn(err))
	}
	if version != 1 && version != catalogVersion {
		return nil, fmt.Errorf("catalog: unsupported version %d", version)
	}
	// Everything after the version flows through the checksum reader; for
	// version-1 files the sum is computed and discarded.
	cr := &crcReader{r: br, sum: crc32.NewIEEE()}
	var count uint32
	if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("catalog: %w", torn(err))
	}
	const maxEntries = 1 << 20
	if count > maxEntries {
		return nil, fmt.Errorf("catalog: entry count %d exceeds limit", count)
	}
	c := New()
	readString := func() (string, error) {
		var n uint16
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	for i := uint32(0); i < count; i++ {
		var e Entry
		var err error
		var method, rule string
		if e.Table, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, torn(err))
		}
		if e.Column, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, torn(err))
		}
		if method, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, torn(err))
		}
		if rule, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, torn(err))
		}
		e.Method = core.Method(method)
		e.Rule = core.BandwidthRule(rule)
		var boundary [1]byte
		if _, err := io.ReadFull(cr, boundary[:]); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, torn(err))
		}
		e.Boundary = kde.BoundaryMode(boundary[0])
		var bins int32
		var nSamples uint32
		for _, dst := range []any{&bins, &e.Bandwidth, &e.DomainLo, &e.DomainHi, &e.RowCount, &nSamples} {
			if err := binary.Read(cr, binary.LittleEndian, dst); err != nil {
				return nil, fmt.Errorf("catalog: entry %d: %w", i, torn(err))
			}
		}
		e.Bins = int(bins)
		e.Samples, err = dataset.ReadFloats(cr, uint64(nSamples))
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, torn(err))
		}
		if err := c.Put(&e); err != nil {
			return nil, err
		}
	}
	if version >= 2 {
		want := cr.sum.Sum32()
		var got uint32
		if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
			return nil, fmt.Errorf("catalog: read checksum: %w", torn(err))
		}
		if got != want {
			return nil, fmt.Errorf("catalog: %w: checksum mismatch (file %08x, computed %08x)", ErrTornSnapshot, got, want)
		}
	}
	return c, nil
}

// AtomicWriteFile writes a file crash-safely: the content goes to a
// temporary file in the destination directory, is fsynced, and is renamed
// over path in one atomic step, with the directory fsynced afterwards so
// the rename itself survives a crash. Readers therefore see either the
// previous file whole or the new file whole — never a torn hybrid. The
// server's snapshot persistence shares this helper.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := write(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("catalog: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	tmp = "" // renamed; nothing to clean up
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is best-effort: some filesystems refuse it, and
		// the rename is already durable on the common ones.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// SaveFile writes the catalog to path crash-safely: a kill at any point
// leaves either the previous snapshot or the new one, never a torn file.
func (c *Catalog) SaveFile(path string) error {
	return AtomicWriteFile(path, c.Save)
}

// LoadFile reads a catalog from path.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	return Load(f)
}
