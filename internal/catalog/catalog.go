// Package catalog is a persistent statistics catalog: it stores, per
// (table, column), everything needed to rebuild a selectivity estimator —
// the sample set, the domain, and the estimator configuration — and
// rebuilds estimators on load. This is the role the paper's estimators
// play inside a database system: statistics are collected once (ANALYZE),
// persisted, and consulted by the optimiser until refreshed.
//
// Persisting the *sample plus configuration* rather than the fitted
// structure keeps the format estimator-agnostic (kernel estimators are
// their samples; histograms rebuild in microseconds) and lets a newer
// binary rebuild stats with improved rules without re-sampling the table.
package catalog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"selest/internal/core"
	"selest/internal/dataset"
	"selest/internal/kde"
)

// Entry is the persisted statistics record of one column.
type Entry struct {
	// Table and Column name the attribute.
	Table, Column string
	// Samples is the stored sample set.
	Samples []float64
	// DomainLo/DomainHi bound the attribute domain at collection time.
	DomainLo, DomainHi float64
	// Method, Rule, Boundary, Bins, Bandwidth mirror core.Options.
	Method    core.Method
	Rule      core.BandwidthRule
	Boundary  kde.BoundaryMode
	Bins      int
	Bandwidth float64
	// RowCount is the table cardinality at collection time, used to scale
	// selectivities into row estimates.
	RowCount int64
}

// Options converts the entry back to build options.
func (e *Entry) Options() core.Options {
	return core.Options{
		Method:    e.Method,
		DomainLo:  e.DomainLo,
		DomainHi:  e.DomainHi,
		Bins:      e.Bins,
		Bandwidth: e.Bandwidth,
		Rule:      e.Rule,
		Boundary:  e.Boundary,
	}
}

// Build rebuilds the estimator from the entry.
func (e *Entry) Build() (core.Estimator, error) {
	return core.Build(e.Samples, e.Options())
}

// key identifies an entry.
type key struct{ table, column string }

// Catalog is an in-memory statistics catalog with binary persistence.
// It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	entries map[key]*Entry
	// built caches rebuilt estimators per entry.
	built map[key]core.Estimator
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		entries: make(map[key]*Entry),
		built:   make(map[key]core.Estimator),
	}
}

// Put validates and stores an entry, replacing any previous statistics for
// the same (table, column). The entry's estimator must build.
func (c *Catalog) Put(e *Entry) error {
	if e == nil {
		return fmt.Errorf("catalog: nil entry")
	}
	if e.Table == "" || e.Column == "" {
		return fmt.Errorf("catalog: entry needs table and column names")
	}
	if len(e.Samples) == 0 {
		return fmt.Errorf("catalog: entry %s.%s has no samples", e.Table, e.Column)
	}
	if !(e.DomainHi > e.DomainLo) {
		return fmt.Errorf("catalog: entry %s.%s has empty domain", e.Table, e.Column)
	}
	est, err := e.Build()
	if err != nil {
		return fmt.Errorf("catalog: entry %s.%s does not build: %w", e.Table, e.Column, err)
	}
	cp := *e
	cp.Samples = append([]float64(nil), e.Samples...)
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key{e.Table, e.Column}
	c.entries[k] = &cp
	c.built[k] = est
	return nil
}

// Estimator returns the (cached) estimator for a column.
func (c *Catalog) Estimator(table, column string) (core.Estimator, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if est, ok := c.built[key{table, column}]; ok {
		return est, nil
	}
	return nil, fmt.Errorf("catalog: no statistics for %s.%s", table, column)
}

// Entry returns a copy of the stored entry for a column.
func (c *Catalog) Entry(table, column string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[key{table, column}]
	if !ok {
		return nil, fmt.Errorf("catalog: no statistics for %s.%s", table, column)
	}
	cp := *e
	cp.Samples = append([]float64(nil), e.Samples...)
	return &cp, nil
}

// EstimateRows returns the estimated result size of a range predicate on a
// column, scaled by the recorded row count.
func (c *Catalog) EstimateRows(table, column string, a, b float64) (float64, error) {
	c.mu.RLock()
	est, ok := c.built[key{table, column}]
	var rows int64
	if ok {
		rows = c.entries[key{table, column}].RowCount
	}
	c.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("catalog: no statistics for %s.%s", table, column)
	}
	return est.Selectivity(a, b) * float64(rows), nil
}

// Drop removes a column's statistics; it is a no-op if absent.
func (c *Catalog) Drop(table, column string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key{table, column})
	delete(c.built, key{table, column})
}

// Len returns the number of entries.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Columns lists the stored (table, column) pairs sorted lexicographically.
func (c *Catalog) Columns() [][2]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.columnsLocked()
}

// columnsLocked is Columns without locking; the caller holds mu (either
// mode). Save must use this rather than Columns — recursively acquiring
// RLock deadlocks when a writer is queued between the two acquisitions.
func (c *Catalog) columnsLocked() [][2]string {
	out := make([][2]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, [2]string{k.table, k.column})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Binary format:
//
//	magic   [4]byte "SELC"
//	version uint16
//	count   uint32
//	per entry:
//	  table, column, method, rule:  uint16 len + bytes each
//	  boundary  uint8
//	  bins      int32
//	  bandwidth float64
//	  domainLo, domainHi float64
//	  rowCount  int64
//	  nSamples  uint32, samples []float64

var catalogMagic = [4]byte{'S', 'E', 'L', 'C'}

const catalogVersion = 1

// Save writes the whole catalog.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(catalogMagic[:]); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(catalogVersion)); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.entries))); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	// Deterministic order for reproducible files.
	for _, tc := range c.columnsLocked() {
		e := c.entries[key{tc[0], tc[1]}]
		for _, s := range []string{e.Table, e.Column, string(e.Method), string(e.Rule)} {
			if len(s) > math.MaxUint16 {
				return fmt.Errorf("catalog: string too long")
			}
			if err := binary.Write(bw, binary.LittleEndian, uint16(len(s))); err != nil {
				return fmt.Errorf("catalog: %w", err)
			}
			if _, err := bw.WriteString(s); err != nil {
				return fmt.Errorf("catalog: %w", err)
			}
		}
		if err := bw.WriteByte(byte(e.Boundary)); err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		for _, v := range []any{int32(e.Bins), e.Bandwidth, e.DomainLo, e.DomainHi, e.RowCount, uint32(len(e.Samples))} {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return fmt.Errorf("catalog: %w", err)
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, e.Samples); err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
	}
	return bw.Flush()
}

// Load reads a catalog and rebuilds every estimator.
func Load(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("catalog: read magic: %w", err)
	}
	if magic != catalogMagic {
		return nil, fmt.Errorf("catalog: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if version != catalogVersion {
		return nil, fmt.Errorf("catalog: unsupported version %d", version)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	const maxEntries = 1 << 20
	if count > maxEntries {
		return nil, fmt.Errorf("catalog: entry count %d exceeds limit", count)
	}
	c := New()
	readString := func() (string, error) {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	for i := uint32(0); i < count; i++ {
		var e Entry
		var err error
		var method, rule string
		if e.Table, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		if e.Column, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		if method, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		if rule, err = readString(); err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		e.Method = core.Method(method)
		e.Rule = core.BandwidthRule(rule)
		boundary, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		e.Boundary = kde.BoundaryMode(boundary)
		var bins int32
		var nSamples uint32
		for _, dst := range []any{&bins, &e.Bandwidth, &e.DomainLo, &e.DomainHi, &e.RowCount, &nSamples} {
			if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
				return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
			}
		}
		e.Bins = int(bins)
		e.Samples, err = dataset.ReadFloats(br, uint64(nSamples))
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		if err := c.Put(&e); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SaveFile writes the catalog to path.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a catalog from path.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	return Load(f)
}
