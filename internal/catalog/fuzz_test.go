package catalog

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the catalog loader: reject or accept
// without panicking; accepted catalogs must round-trip.
func FuzzLoad(f *testing.F) {
	c := New()
	if err := c.Put(testEntryForFuzz()); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SELC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := loaded.Save(&out); err != nil {
			t.Fatalf("accepted catalog failed to save: %v", err)
		}
		again, err := Load(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != loaded.Len() {
			t.Fatal("round trip changed the catalog")
		}
	})
}

func testEntryForFuzz() *Entry {
	samples := make([]float64, 64)
	for i := range samples {
		samples[i] = float64(i)
	}
	return &Entry{
		Table: "t", Column: "c",
		Samples:  samples,
		DomainLo: 0, DomainHi: 64,
		Method:   "equi-width",
		RowCount: 1000,
	}
}
