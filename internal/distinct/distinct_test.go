package distinct

import (
	"fmt"
	"math"
	"testing"

	"selest/internal/sample"
	"selest/internal/xrand"
)

func TestProfileValidation(t *testing.T) {
	if _, err := Profile(nil); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := Profile([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN should error")
	}
}

func TestProfileCounts(t *testing.T) {
	p, err := Profile([]float64{1, 1, 1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.D != 3 || p.N != 6 {
		t.Fatalf("D/N = %d/%d", p.D, p.N)
	}
	if p.F[1] != 1 || p.F[2] != 1 || p.F[3] != 1 {
		t.Fatalf("F = %v", p.F)
	}
}

func TestFullScanIsExact(t *testing.T) {
	// Sample == table: every estimator returns the true distinct count.
	vals := []float64{1, 2, 2, 3, 3, 3}
	p, err := Profile(vals)
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := p.Goodman(len(vals)); g != 3 {
		t.Fatalf("Goodman full scan = %v", g)
	}
	if g, _ := p.GEE(len(vals)); g != 3 {
		t.Fatalf("GEE full scan = %v", g)
	}
}

func TestEstimatorsOnUniformDuplicates(t *testing.T) {
	// Population: 1000 distinct values, each duplicated 100 times.
	pop := make([]float64, 100000)
	for i := range pop {
		pop[i] = float64(i % 1000)
	}
	r := xrand.New(1)
	smp, err := sample.WithoutReplacement(r, pop, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Profile(smp)
	if err != nil {
		t.Fatal(err)
	}
	const truth = 1000.0
	chao := p.Chao()
	gee, err := p.GEE(len(pop))
	if err != nil {
		t.Fatal(err)
	}
	// With 2000 draws over 1000 equal values most values are seen; Chao's
	// coverage correction must land near the truth.
	if math.Abs(chao-truth)/truth > 0.25 {
		t.Fatalf("Chao = %v, want ~%v", chao, truth)
	}
	// GEE trades accuracy here for its worst-case guarantee: it must stay
	// within its √(N/n) ratio bound of the truth.
	bound := math.Sqrt(float64(len(pop)) / float64(p.N))
	if ratio := math.Max(gee/truth, truth/gee); ratio > bound {
		t.Fatalf("GEE = %v: ratio error %v beyond guarantee %v", gee, ratio, bound)
	}
}

func TestGEERatioGuarantee(t *testing.T) {
	// Population of 100k mostly-distinct values (the paper's large-domain
	// regime): a 2k sample sees almost only singletons. This is GEE's
	// provable worst case — no sampling estimator can beat a √(N/n) ratio
	// error here — so the test asserts the guarantee itself: the estimate
	// stays within a √(N/n) factor of the truth (with slack for sampling
	// noise), and lifts far above the naive sample-distinct count.
	r := xrand.New(2)
	pop := make([]float64, 100000)
	seen := make(map[float64]bool)
	for i := range pop {
		pop[i] = math.Floor(r.Float64() * 1e9)
		seen[pop[i]] = true
	}
	truth := float64(len(seen))
	smp, err := sample.WithoutReplacement(r, pop, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Profile(smp)
	if err != nil {
		t.Fatal(err)
	}
	gee, err := p.GEE(len(pop))
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Sqrt(float64(len(pop)) / float64(p.N))
	if ratio := truth / gee; ratio > bound*1.1 {
		t.Fatalf("GEE = %v: ratio error %v exceeds the √(N/n) guarantee %v", gee, ratio, bound)
	}
	if gee < 5*float64(p.D) {
		t.Fatalf("GEE = %v did not extrapolate beyond the sample-distinct count %d", gee, p.D)
	}
}

func TestGEEBounds(t *testing.T) {
	p, err := Profile([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.GEE(2); err == nil {
		t.Fatal("table smaller than sample should error")
	}
	// Estimate clamps to the table size.
	gee, err := p.GEE(3)
	if err != nil {
		t.Fatal(err)
	}
	if gee != 3 {
		t.Fatalf("GEE = %v, want clamp at 3", gee)
	}
}

func TestChaoNoDoubletons(t *testing.T) {
	p, err := Profile([]float64{1, 2, 3}) // three singletons, no doubletons
	if err != nil {
		t.Fatal(err)
	}
	// Bias-corrected form: 3 + 3·2/2 = 6.
	if got := p.Chao(); got != 6 {
		t.Fatalf("Chao = %v, want 6", got)
	}
}

func TestGoodmanSmallCase(t *testing.T) {
	// Exhaustively checkable case: N=4 records {1,1,2,3} (3 distinct),
	// n=2 samples. Goodman is unbiased: averaging the estimate over all
	// C(4,2)=6 equally likely samples must give exactly 3.
	records := []float64{1, 1, 2, 3}
	sum := 0.0
	count := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			p, err := Profile([]float64{records[i], records[j]})
			if err != nil {
				t.Fatal(err)
			}
			g, err := p.Goodman(4)
			if err != nil {
				t.Fatal(err)
			}
			sum += g
			count++
		}
	}
	mean := sum / float64(count)
	// The clamp to [D, N] breaks exact unbiasedness slightly; the mean
	// must still sit close to the truth.
	if math.Abs(mean-3) > 0.6 {
		t.Fatalf("Goodman mean over all samples = %v, want ~3", mean)
	}
}

func TestGoodmanValidation(t *testing.T) {
	p, err := Profile([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Goodman(1); err == nil {
		t.Fatal("table smaller than sample should error")
	}
}

func TestEstimatorComparisonPrintout(t *testing.T) {
	// Not an assertion-heavy test: exercises the three estimators side by
	// side on a skewed population and checks ordering sanity (all between
	// sample-distinct and table size).
	r := xrand.New(3)
	z := xrand.NewZipf(r, 1.3, 1, 49999)
	pop := make([]float64, 200000)
	for i := range pop {
		pop[i] = float64(z.Uint64())
	}
	smp, err := sample.WithoutReplacement(r, pop, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Profile(smp)
	if err != nil {
		t.Fatal(err)
	}
	gee, _ := p.GEE(len(pop))
	goodman, _ := p.Goodman(len(pop))
	for name, v := range map[string]float64{"chao": p.Chao(), "gee": gee, "goodman": goodman} {
		if v < float64(p.D) || v > float64(len(pop)) {
			t.Fatalf("%s = %v outside [%d, %d]", name, v, p.D, len(pop))
		}
		_ = fmt.Sprintf("%s=%v", name, v)
	}
}
