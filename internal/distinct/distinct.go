// Package distinct estimates the number of distinct values of an
// attribute from a random sample — the companion problem to selectivity
// estimation: System R's join-size formula (|R|·|S|/max(V(R),V(S)))
// consumes exactly this statistic, and the paper's domain-cardinality
// discussion (Fig. 5) turns on how many distinct values an attribute has.
//
// Implemented estimators, all taking a sample of size n from a relation
// of N records:
//
//   - Goodman's unbiased estimator (exact in expectation, erratic for
//     small sampling fractions — included as the classical baseline);
//   - Chao's coverage estimator d + f1²/(2·f2);
//   - GEE, the Guaranteed-Error Estimator of Charikar et al.:
//     √(N/n)·f1 + Σ_{i≥2} f_i.
//
// f_i denotes the number of values appearing exactly i times in the
// sample.
package distinct

import (
	"fmt"
	"math"
)

// FrequencyProfile summarises a sample for distinct-value estimation.
type FrequencyProfile struct {
	// F maps occurrence count i to f_i, the number of distinct sample
	// values seen exactly i times.
	F map[int]int
	// D is the number of distinct values in the sample.
	D int
	// N is the sample size.
	N int
}

// Profile builds the frequency profile of a sample.
func Profile(sample []float64) (*FrequencyProfile, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("distinct: empty sample")
	}
	counts := make(map[float64]int, len(sample))
	for _, v := range sample {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("distinct: NaN sample value")
		}
		counts[v]++
	}
	p := &FrequencyProfile{F: make(map[int]int), D: len(counts), N: len(sample)}
	for _, c := range counts {
		p.F[c]++
	}
	return p, nil
}

// Chao returns Chao's lower-bound estimator d + f1²/(2·f2). With no
// doubletons (f2 = 0) the bias-corrected form d + f1·(f1−1)/2 applies.
func (p *FrequencyProfile) Chao() float64 {
	f1 := float64(p.F[1])
	f2 := float64(p.F[2])
	if f2 == 0 {
		return float64(p.D) + f1*(f1-1)/2
	}
	return float64(p.D) + f1*f1/(2*f2)
}

// GEE returns the Guaranteed-Error Estimator for a sample of size N
// drawn from a relation of tableSize records:
//
//	√(tableSize/n)·f1 + Σ_{i≥2} f_i
//
// GEE's ratio error is within a factor √(tableSize/n) of optimal for
// every input (Charikar, Chaudhuri, Motwani & Narasayya, PODS 2000).
func (p *FrequencyProfile) GEE(tableSize int) (float64, error) {
	if tableSize < p.N {
		return 0, fmt.Errorf("distinct: table size %d below sample size %d", tableSize, p.N)
	}
	rest := 0
	for i, f := range p.F {
		if i >= 2 {
			rest += f
		}
	}
	est := math.Sqrt(float64(tableSize)/float64(p.N))*float64(p.F[1]) + float64(rest)
	// At least every distinct sample value exists; at most every record is
	// distinct.
	if est < float64(p.D) {
		est = float64(p.D)
	}
	if est > float64(tableSize) {
		est = float64(tableSize)
	}
	return est, nil
}

// Goodman returns Goodman's unbiased estimator for sampling without
// replacement. It is exact in expectation but numerically explosive for
// small sampling fractions; callers should prefer GEE when n ≪ N. The
// implementation uses the telescoping-product form to avoid factorial
// overflow, and clamps to [D, tableSize].
func (p *FrequencyProfile) Goodman(tableSize int) (float64, error) {
	if tableSize < p.N {
		return 0, fmt.Errorf("distinct: table size %d below sample size %d", tableSize, p.N)
	}
	N, n := float64(tableSize), float64(p.N)
	if p.N == tableSize {
		return float64(p.D), nil
	}
	// Goodman: D̂ = d + Σ_{i=1..n} (−1)^{i+1} · C(N−n+i−1, i) / C(n, i) · f_i
	// computed with incremental binomial ratios.
	est := float64(p.D)
	for i := 1; i <= p.N; i++ {
		fi, ok := p.F[i]
		if !ok {
			continue
		}
		// term = C(N−n+i−1, i) / C(n, i)
		logTerm := 0.0
		for j := 1; j <= i; j++ {
			logTerm += math.Log(N - n + float64(j) - 1 + 1 - 1) // N−n+j−1 choose parts
			logTerm -= math.Log(n - float64(j) + 1)
		}
		term := math.Exp(logTerm) * float64(fi)
		if i%2 == 1 {
			est += term
		} else {
			est -= term
		}
		// Bail out when terms explode: the estimator is known-unstable and
		// the clamp below will dominate anyway.
		if math.IsInf(term, 0) || term > 1e15 {
			break
		}
	}
	if est < float64(p.D) {
		est = float64(p.D)
	}
	if est > N {
		est = N
	}
	return est, nil
}
