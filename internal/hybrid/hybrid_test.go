package hybrid

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"selest/internal/kde"
	"selest/internal/xmath"
	"selest/internal/xrand"
)

// stepSample draws n points from a density with a hard jump: 80% uniform
// mass on [0, 300], 20% on [700, 1000].
func stepSample(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		if r.Float64() < 0.8 {
			xs[i] = r.Float64() * 300
		} else {
			xs[i] = 700 + r.Float64()*300
		}
	}
	return xs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0, 1, Config{}); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := New([]float64{1}, 5, 5, Config{}); err == nil {
		t.Fatal("empty domain should error")
	}
	if _, err := New([]float64{10}, 0, 1, Config{}); err == nil {
		t.Fatal("samples outside domain should error")
	}
}

func TestPartitionsAtDensityJump(t *testing.T) {
	samples := stepSample(4000, 1)
	e, err := New(samples, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Bins() < 2 {
		t.Fatalf("expected multiple bins on step density, got %d", e.Bins())
	}
	// At least one change point must land in or near the transition
	// regions around x=300 and x=700.
	points := e.ChangePoints()
	near := func(target float64) bool {
		for _, p := range points {
			if math.Abs(p-target) < 120 {
				return true
			}
		}
		return false
	}
	if !near(300) && !near(700) {
		t.Fatalf("no change point near the density jumps; points = %v", points)
	}
}

func TestSelectivityAccuracyOnStepDensity(t *testing.T) {
	samples := stepSample(4000, 2)
	e, err := New(samples, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty middle region.
	if got := e.Selectivity(350, 650); got > 0.03 {
		t.Fatalf("empty-region σ̂ = %v, want ~0", got)
	}
	// Dense region.
	if got := e.Selectivity(0, 300); math.Abs(got-0.8) > 0.05 {
		t.Fatalf("dense-region σ̂ = %v, want ~0.8", got)
	}
	// Whole domain.
	if got := e.Selectivity(0, 1000); got < 0.97 || got > 1 {
		t.Fatalf("whole-domain σ̂ = %v, want ~1", got)
	}
}

func TestHybridBeatsPlainKernelOnJumpData(t *testing.T) {
	// The paper's headline claim: on change-point-rich data the hybrid
	// outperforms a single global kernel estimator. Compare MRE on
	// interior queries around the jump at x=300.
	samples := stepSample(2000, 3)
	hyb, err := New(samples, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Plain kernel with the normal scale bandwidth and boundary kernels.
	plain, err := kde.New(samples, kde.Config{
		Bandwidth: 60, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from a huge reference sample.
	ref := stepSample(400000, 4)
	sort.Float64s(ref)
	trueSel := func(a, b float64) float64 {
		lo := sort.SearchFloat64s(ref, a)
		hi := sort.Search(len(ref), func(i int) bool { return ref[i] > b })
		return float64(hi-lo) / float64(len(ref))
	}
	var hybErr, plainErr float64
	queries := 0
	for a := 250.0; a <= 340; a += 5 {
		b := a + 30
		ts := trueSel(a, b)
		if ts == 0 {
			continue
		}
		hybErr += math.Abs(hyb.Selectivity(a, b)-ts) / ts
		plainErr += math.Abs(plain.Selectivity(a, b)-ts) / ts
		queries++
	}
	if queries == 0 {
		t.Fatal("no usable queries")
	}
	if hybErr >= plainErr {
		t.Fatalf("hybrid MRE %.4f not below plain-kernel MRE %.4f near the jump", hybErr/float64(queries), plainErr/float64(queries))
	}
}

func TestSmoothDataSingleOrFewBins(t *testing.T) {
	// A smooth unimodal density still yields a working estimator whose
	// estimates are sane (bins may legitimately be > 1 — the Gaussian has
	// curvature maxima — but accuracy must not suffer).
	r := xrand.New(5)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = xmath.Clamp(r.NormalMeanStd(500, 100), 0, 1000)
	}
	e, err := New(samples, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Selectivity(400, 600)
	// True mass within ±1σ of a Gaussian ≈ 0.683.
	if math.Abs(got-0.683) > 0.05 {
		t.Fatalf("±1σ σ̂ = %v, want ~0.683", got)
	}
}

func TestDegenerateConstantSample(t *testing.T) {
	samples := []float64{5, 5, 5, 5, 5}
	e, err := New(samples, 0, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Bins() != 1 {
		t.Fatalf("constant sample should give one bin, got %d", e.Bins())
	}
	if got := e.Selectivity(0, 10); !xmath.AlmostEqual(got, 1, 1e-9) {
		t.Fatalf("whole-domain σ̂ = %v, want 1", got)
	}
}

func TestTinySample(t *testing.T) {
	e, err := New([]float64{1, 2, 3}, 0, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity(0, 10); got < 0.9 {
		t.Fatalf("tiny-sample whole-domain σ̂ = %v", got)
	}
}

func TestDensityIntegratesToRoughlyOne(t *testing.T) {
	samples := stepSample(3000, 6)
	e, err := New(samples, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mass := xmath.Simpson(e.Density, 0, 1000, 20000)
	if mass < 0.95 || mass > 1.08 {
		t.Fatalf("hybrid density mass = %v, want ≈1", mass)
	}
}

func TestMinBinFractionMerging(t *testing.T) {
	samples := stepSample(2000, 7)
	// Force aggressive merging: every bin must hold >= 30% of samples.
	e, err := New(samples, 0, 1000, Config{MinBinFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if e.Bins() > 3 {
		t.Fatalf("aggressive merging should leave <= 3 bins, got %d", e.Bins())
	}
}

func TestMergeSmallBinsUnit(t *testing.T) {
	bounds := []float64{0, 1, 2, 3, 4}
	counts := []int{100, 2, 3, 100}
	b, c := mergeSmallBins(bounds, counts, 10)
	total := 0
	for _, v := range c {
		total += v
	}
	if total != 205 {
		t.Fatalf("samples lost in merge: %v", c)
	}
	if len(b) != len(c)+1 {
		t.Fatalf("bounds/counts inconsistent: %v / %v", b, c)
	}
	for _, v := range c {
		if v < 10 {
			t.Fatalf("merge left an under-threshold bin: %v", c)
		}
	}
}

func TestMergeToSingleBin(t *testing.T) {
	bounds := []float64{0, 1, 2}
	counts := []int{1, 1}
	b, c := mergeSmallBins(bounds, counts, 100)
	if len(c) != 1 || c[0] != 2 || len(b) != 2 {
		t.Fatalf("merge to single bin failed: %v / %v", b, c)
	}
}

func TestQueryClipping(t *testing.T) {
	samples := stepSample(1000, 8)
	e, err := New(samples, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Selectivity(-100, 1100), e.Selectivity(0, 1000); !xmath.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("query clipping broken: %v vs %v", got, want)
	}
	if e.Selectivity(700, 600) != 0 {
		t.Fatal("inverted query should be 0")
	}
}

// Property: selectivity stays in [0,1], is monotone under widening, and is
// additive across bin-interior split points.
func TestQuickHybridInvariants(t *testing.T) {
	samples := stepSample(1500, 9)
	e, err := New(samples, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawA, rawW uint8) bool {
		a := float64(rawA) / 255 * 900
		w := float64(rawW) / 255 * 100
		m := a + w/2
		s := e.Selectivity(a, a+w)
		parts := e.Selectivity(a, m) + e.Selectivity(m, a+w)
		wide := e.Selectivity(a-5, a+w+5)
		return s >= 0 && s <= 1 && wide >= s-1e-12 && xmath.AlmostEqual(s, parts, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
