// Package hybrid implements the paper's new estimator (§3.3): a hybrid of
// histogram and kernel estimation. Change points of the density — located
// at the maxima of the estimated second derivative — partition the domain
// into histogram bins; inside each bin an independent kernel estimator runs
// with its own, locally chosen bandwidth and boundary-kernel repair at the
// bin edges. Bins holding too few samples are merged with a neighbour.
//
// The motivation: kernel estimators assume a smooth density and incur high
// error where the true density jumps (spatial data is full of such change
// points), while histograms handle jumps at bin boundaries for free. The
// hybrid spends its bin boundaries exactly where the smoothness assumption
// breaks, and lets the kernel machinery do the work everywhere else.
package hybrid

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/bandwidth"
	"selest/internal/errs"
	"selest/internal/faultinject"
	"selest/internal/fsort"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/parallel"
	"selest/internal/xmath"
)

// Config parameterises the hybrid estimator.
type Config struct {
	// MaxChangePoints bounds the number of detected change points (and so
	// the number of bins, MaxChangePoints+1). Zero defaults to 7.
	MaxChangePoints int
	// MinBinFraction is the minimum fraction of samples a bin must hold;
	// smaller bins are merged with a neighbour. Zero defaults to 0.02.
	// Must be below 1 (a bin cannot be required to hold more than the
	// whole sample).
	MinBinFraction float64
	// GridSize is the resolution of the second-derivative scan.
	// Zero defaults to 512; positive values below 8 are clamped to 8 (a
	// shorter grid cannot carry a second-difference table).
	GridSize int
	// Workers bounds the concurrency of the per-bin estimator fits (≤0
	// means GOMAXPROCS). The assembled estimator is identical at every
	// worker count: each bin is fitted into its own pre-assigned slot
	// from its own disjoint sample segment.
	Workers int
}

// Validate rejects configurations no estimator could be built around.
// The seed's defaulting only replaced zero values, so negative settings
// passed straight through: a negative GridSize panicked inside the
// change-point scan, a negative MinBinFraction disabled bin merging, and
// a negative MaxChangePoints corrupted the separation threshold. Every
// failure wraps errs.ErrBadOption.
func (c Config) Validate() error {
	if c.MaxChangePoints < 0 {
		return fmt.Errorf("hybrid: MaxChangePoints %d is negative: %w", c.MaxChangePoints, errs.ErrBadOption)
	}
	if c.MinBinFraction < 0 || math.IsNaN(c.MinBinFraction) {
		return fmt.Errorf("hybrid: MinBinFraction %v is not a non-negative fraction: %w", c.MinBinFraction, errs.ErrBadOption)
	}
	if c.MinBinFraction >= 1 {
		return fmt.Errorf("hybrid: MinBinFraction %v would require a bin to hold the whole sample: %w", c.MinBinFraction, errs.ErrBadOption)
	}
	if c.GridSize < 0 {
		return fmt.Errorf("hybrid: GridSize %d is negative: %w", c.GridSize, errs.ErrBadOption)
	}
	return nil
}

// normalize validates and then applies the documented defaults in place.
func (c *Config) normalize() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.MaxChangePoints == 0 {
		c.MaxChangePoints = 7
	}
	if c.MinBinFraction == 0 {
		c.MinBinFraction = 0.02
	}
	if c.GridSize == 0 {
		c.GridSize = 512
	}
	if c.GridSize < 8 {
		c.GridSize = 8
	}
	return nil
}

// bin is one partition cell with its local kernel estimator.
type bin struct {
	lo, hi float64
	weight float64 // fraction of samples in the bin
	// est is the local kernel estimator; nil means the bin degenerated
	// (too few or constant samples) and falls back to uniform spread.
	est *kde.Estimator
	// mass is est's unclamped estimate of the whole bin, used to condition
	// the within-bin estimate on the bin (boundary kernels are consistent
	// but not a density, so this is slightly off one).
	mass float64
}

// Estimator is the hybrid histogram/kernel selectivity estimator. It is
// immutable after construction and safe for concurrent use.
type Estimator struct {
	bins   []bin
	lo, hi float64
	points []float64 // accepted change points, for diagnostics
}

// New builds a hybrid estimator over the domain [lo, hi] from a sample set.
func New(samples []float64, lo, hi float64, cfg Config) (*Estimator, error) {
	if err := faultinject.Check("hybrid.build"); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("hybrid: empty sample set")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("hybrid: domain [%v, %v] is empty", lo, hi)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}

	// One sort for the whole build. The fit context carries it (and the
	// prefix-moment index) through the change-point pilot; every bin's
	// local estimator then gets its own zero-copy context over a disjoint
	// sub-slice of the same array.
	sorted := append([]float64(nil), samples...)
	fsort.Float64s(sorted)
	if sorted[0] < lo || sorted[len(sorted)-1] > hi {
		return nil, fmt.Errorf("hybrid: samples fall outside the domain [%v, %v]", lo, hi)
	}
	ctx, err := kde.NewFitContextSorted(sorted)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}

	points, err := changePoints(ctx, lo, hi, cfg)
	if err != nil {
		return nil, err
	}

	bounds := append(append([]float64{lo}, points...), hi)
	counts := binCounts(sorted, bounds)
	bounds, counts = mergeSmallBins(bounds, counts, int(cfg.MinBinFraction*float64(len(sorted))))

	e := &Estimator{lo: lo, hi: hi, points: bounds[1 : len(bounds)-1]}
	n := float64(len(sorted))
	// Segment offsets first, so the per-bin fits are independent: bin i
	// owns sorted[starts[i] : starts[i]+counts[i]] and slot bins[i].
	starts := make([]int, len(counts))
	for i, sum := 0, 0; i < len(counts); i++ {
		starts[i] = sum
		sum += counts[i]
	}
	e.bins = make([]bin, len(counts))
	_ = parallel.ForEach(len(counts), cfg.Workers, func(i int) error {
		count := counts[i]
		blo, bhi := bounds[i], bounds[i+1]
		b := bin{lo: blo, hi: bhi, weight: float64(count) / n}
		if count > 0 {
			b.est = localEstimator(sorted[starts[i]:starts[i]+count], blo, bhi)
			if b.est != nil {
				b.mass = b.est.SelectivityUnclamped(blo, bhi)
				if b.mass <= 0 {
					b.est = nil // pathological local estimate: uniform fallback
				}
			}
		}
		e.bins[i] = b
		return nil
	})
	return e, nil
}

// changePoints locates up to MaxChangePoints maxima of |f̂”| on a grid,
// scanning greedily in decreasing magnitude with a minimum separation so
// one sharp feature does not absorb the entire budget (this realises the
// paper's "further change points are computed recursively").
func changePoints(ctx *kde.FitContext, lo, hi float64, cfg Config) ([]float64, error) {
	if err := faultinject.Check("hybrid.changepoints"); err != nil {
		return nil, fmt.Errorf("hybrid: change-point detection: %w", err)
	}
	h, err := bandwidth.NormalScaleBandwidthSorted(ctx.Sorted(), kernel.Epanechnikov{})
	if err != nil {
		// Degenerate sample (e.g. all duplicates): no smooth structure to
		// split on; a single bin is the correct outcome.
		return nil, nil
	}
	pilot, err := ctx.NewEstimator(kde.Config{
		Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi,
	})
	if err != nil {
		return nil, fmt.Errorf("hybrid: pilot estimate: %w", err)
	}
	xs := xmath.Linspace(lo, hi, cfg.GridSize)
	dx := xs[1] - xs[0]
	ys := pilot.DensityGrid(lo, hi, cfg.GridSize)
	d2 := xmath.SecondDerivativeTable(ys, dx)

	type cand struct {
		x, mag float64
	}
	cands := make([]cand, 0, len(xs))
	// Local maxima of |f''| only; a monotone derivative slope should not
	// spend change points.
	for i := 1; i < len(d2)-1; i++ {
		m := math.Abs(d2[i])
		if m >= math.Abs(d2[i-1]) && m >= math.Abs(d2[i+1]) && m > 0 {
			cands = append(cands, cand{x: xs[i], mag: m})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mag > cands[j].mag })

	minSep := (hi - lo) / float64(4*(cfg.MaxChangePoints+1))
	var accepted []float64
	for _, c := range cands {
		if len(accepted) >= cfg.MaxChangePoints {
			break
		}
		if c.x-lo < minSep || hi-c.x < minSep {
			continue
		}
		ok := true
		for _, a := range accepted {
			if math.Abs(a-c.x) < minSep {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, c.x)
		}
	}
	sort.Float64s(accepted)
	return accepted, nil
}

// binCounts counts sorted samples per (bounds[i], bounds[i+1]] cell (first
// cell closed on the left).
func binCounts(sorted []float64, bounds []float64) []int {
	counts := make([]int, len(bounds)-1)
	for i := range counts {
		lo := sort.Search(len(sorted), func(j int) bool { return sorted[j] > bounds[i] })
		if i == 0 {
			lo = 0
		}
		hi := sort.Search(len(sorted), func(j int) bool { return sorted[j] > bounds[i+1] })
		counts[i] = hi - lo
	}
	return counts
}

// mergeSmallBins repeatedly merges the smallest under-threshold bin into
// its smaller neighbour until every bin meets the threshold or one bin
// remains.
func mergeSmallBins(bounds []float64, counts []int, minCount int) ([]float64, []int) {
	for len(counts) > 1 {
		// Find the smallest bin below threshold.
		idx, min := -1, minCount
		for i, c := range counts {
			if c < min {
				idx, min = i, c
			}
		}
		if idx == -1 {
			break
		}
		// Merge with the smaller neighbour.
		var into int
		switch {
		case idx == 0:
			into = 0 // merge bins 0 and 1
		case idx == len(counts)-1:
			into = idx - 1
		case counts[idx-1] <= counts[idx+1]:
			into = idx - 1
		default:
			into = idx
		}
		counts[into] += counts[into+1]
		counts = append(counts[:into+1], counts[into+2:]...)
		bounds = append(bounds[:into+1], bounds[into+2:]...)
	}
	return bounds, counts
}

// localEstimator builds the per-bin kernel estimator: boundary kernels at
// the bin edges and a bandwidth chosen from the bin's own samples (the
// paper: "the bandwidth of the kernel estimator is individually chosen for
// every bin"). Degenerate segments fall back to nil (uniform spread).
func localEstimator(segment []float64, lo, hi float64) *kde.Estimator {
	if len(segment) < 4 {
		return nil
	}
	// The segment is a contiguous slice of the build's sorted array, so
	// its fit context costs no sort and no copy.
	sctx, err := kde.NewFitContextSorted(segment)
	if err != nil {
		return nil
	}
	h, err := bandwidth.NormalScaleBandwidthSorted(segment, kernel.Epanechnikov{})
	if err != nil || h <= 0 {
		return nil
	}
	// Cap the bandwidth at the bin width: a wider kernel than the bin
	// cannot be repaired by boundary kernels.
	if w := hi - lo; h > w {
		h = w
	}
	est, err := sctx.NewEstimator(kde.Config{
		Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi,
	})
	if err != nil {
		return nil
	}
	return est
}

// Selectivity returns the estimated selectivity σ̂(a,b) ∈ [0,1]: the
// weighted sum of the per-bin estimates over the clipped query range.
func (e *Estimator) Selectivity(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a {
		return 0
	}
	a = math.Max(a, e.lo)
	b = math.Min(b, e.hi)
	if b < a {
		return 0
	}
	sum := 0.0
	for _, bn := range e.bins {
		if bn.weight == 0 || bn.hi < a {
			continue
		}
		if bn.lo > b {
			break
		}
		qa, qb := math.Max(a, bn.lo), math.Min(b, bn.hi)
		if qb < qa {
			continue
		}
		if bn.est != nil {
			sum += bn.weight * bn.est.SelectivityUnclamped(qa, qb) / bn.mass
		} else {
			// Uniform spread inside a degenerate bin.
			sum += bn.weight * (qb - qa) / (bn.hi - bn.lo)
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Density returns the estimated density f̂(x).
func (e *Estimator) Density(x float64) float64 {
	if x < e.lo || x > e.hi {
		return 0
	}
	for _, bn := range e.bins {
		if x > bn.hi {
			continue
		}
		if x < bn.lo {
			return 0
		}
		if bn.weight == 0 {
			return 0
		}
		if bn.est != nil {
			return bn.weight * bn.est.Density(x) / bn.mass
		}
		return bn.weight / (bn.hi - bn.lo)
	}
	return 0
}

// Bins returns the number of partition cells.
func (e *Estimator) Bins() int { return len(e.bins) }

// ChangePoints returns the accepted change points (after merging), for
// diagnostics and tests.
func (e *Estimator) ChangePoints() []float64 {
	return append([]float64(nil), e.points...)
}

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string { return "hybrid" }
