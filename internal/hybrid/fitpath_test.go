package hybrid

import (
	"errors"
	"math"
	"testing"

	"selest/internal/errs"
	"selest/internal/xrand"
)

func clustered(t testing.TB, n int, seed uint64) []float64 {
	t.Helper()
	r := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = 100 + r.Float64()*50
		case 1:
			xs[i] = 400 + r.Float64()*10
		default:
			xs[i] = 700 + r.Float64()*200
		}
	}
	return xs
}

// TestConfigValidateRejectsNegatives covers the defaulting bug: the seed
// only replaced zero values, so negative settings sailed through (a
// negative GridSize panicked inside the change-point scan).
func TestConfigValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative-changepoints", Config{MaxChangePoints: -1}},
		{"negative-minbinfraction", Config{MinBinFraction: -0.5}},
		{"nan-minbinfraction", Config{MinBinFraction: math.NaN()}},
		{"minbinfraction-one", Config{MinBinFraction: 1}},
		{"minbinfraction-above-one", Config{MinBinFraction: 1.5}},
		{"negative-gridsize", Config{GridSize: -100}},
	}
	samples := clustered(t, 500, 1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); !errors.Is(err, errs.ErrBadOption) {
				t.Fatalf("Validate() = %v, want errs.ErrBadOption", err)
			}
			if _, err := New(samples, 0, 1000, tc.cfg); !errors.Is(err, errs.ErrBadOption) {
				t.Fatalf("New() = %v, want errs.ErrBadOption", err)
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate clean, got %v", err)
	}
}

// TestTinyGridSizeClamped pins the clamp: a positive but too-coarse grid
// is raised to 8 points instead of crashing the second-derivative table.
func TestTinyGridSizeClamped(t *testing.T) {
	samples := clustered(t, 500, 2)
	for _, gs := range []int{1, 2, 7} {
		e, err := New(samples, 0, 1000, Config{GridSize: gs})
		if err != nil {
			t.Fatalf("GridSize=%d: %v", gs, err)
		}
		if e.Bins() < 1 {
			t.Fatalf("GridSize=%d: no bins", gs)
		}
	}
}

// TestWorkersBitIdentical is the determinism pin for the parallel bin
// fill: the estimator must be indistinguishable at every worker count —
// same change points, same bins, bit-identical selectivities.
func TestWorkersBitIdentical(t *testing.T) {
	samples := clustered(t, 3000, 3)
	base, err := New(samples, 0, 1000, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(9)
	queries := make([][2]float64, 120)
	for i := range queries {
		a := r.Float64() * 1000
		b := a + r.Float64()*(1000-a)
		queries[i] = [2]float64{a, b}
	}
	for _, workers := range []int{2, 8} {
		e, err := New(samples, 0, 1000, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if e.Bins() != base.Bins() {
			t.Fatalf("workers=%d: %d bins != %d", workers, e.Bins(), base.Bins())
		}
		bp, ep := base.ChangePoints(), e.ChangePoints()
		if len(bp) != len(ep) {
			t.Fatalf("workers=%d: %d change points != %d", workers, len(ep), len(bp))
		}
		for i := range bp {
			if bp[i] != ep[i] {
				t.Fatalf("workers=%d: change point %d: %v != %v", workers, i, ep[i], bp[i])
			}
		}
		for _, q := range queries {
			if a, b := base.Selectivity(q[0], q[1]), e.Selectivity(q[0], q[1]); a != b {
				t.Fatalf("workers=%d: Selectivity(%v,%v) %v != %v", workers, q[0], q[1], b, a)
			}
		}
		for x := 0.0; x <= 1000; x += 13 {
			if a, b := base.Density(x), e.Density(x); a != b {
				t.Fatalf("workers=%d: Density(%v) %v != %v", workers, x, b, a)
			}
		}
	}
}
