package hybrid

// BenchmarkFitHybridBuild vs BenchmarkFitHybridBuildSeed — the hybrid leg
// of the fit-path evidence in BENCH_fit.json. The seed build below is the
// pre-engine implementation kept verbatim: a pointwise change-point scan
// over a kde.New pilot (second sort), scale estimates that copy-and-sort
// per call, and a sequential bin loop whose per-bin kde.New each sorted
// its segment again.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"selest/internal/bandwidth"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/xmath"
	"selest/internal/xrand"
)

func hybridBenchSamples(n int) []float64 {
	r := xrand.New(uint64(n) + 7)
	xs := make([]float64, n)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = 1e5 + r.Float64()*5e4
		case 1:
			xs[i] = 4e5 + r.Float64()*1e4
		default:
			xs[i] = 5e5 + r.Float64()*5e5
		}
	}
	return xs
}

var hybridFitSizes = []int{2_000, 100_000, 1_000_000}

func BenchmarkFitHybridBuild(b *testing.B) {
	for _, n := range hybridFitSizes {
		samples := hybridBenchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := New(samples, 0, 1e6, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFitHybridBuildSeed(b *testing.B) {
	for _, n := range hybridFitSizes {
		samples := hybridBenchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := seedHybridNew(samples, 0, 1e6, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// seedHybridNew is the pre-engine New, reference for the bench pair and
// the equivalence test below.
func seedHybridNew(samples []float64, lo, hi float64, cfg Config) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("hybrid: empty sample set")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	points, err := seedChangePoints(sorted, lo, hi, cfg)
	if err != nil {
		return nil, err
	}
	bounds := append(append([]float64{lo}, points...), hi)
	counts := binCounts(sorted, bounds)
	bounds, counts = mergeSmallBins(bounds, counts, int(cfg.MinBinFraction*float64(len(sorted))))
	e := &Estimator{lo: lo, hi: hi, points: bounds[1 : len(bounds)-1]}
	n := float64(len(sorted))
	start := 0
	for i := 0; i < len(counts); i++ {
		count := counts[i]
		blo, bhi := bounds[i], bounds[i+1]
		segment := sorted[start : start+count]
		start += count
		b := bin{lo: blo, hi: bhi, weight: float64(count) / n}
		if count > 0 {
			b.est = seedLocalEstimator(segment, blo, bhi)
			if b.est != nil {
				b.mass = b.est.SelectivityUnclamped(blo, bhi)
				if b.mass <= 0 {
					b.est = nil
				}
			}
		}
		e.bins = append(e.bins, b)
	}
	return e, nil
}

func seedChangePoints(sorted []float64, lo, hi float64, cfg Config) ([]float64, error) {
	h, err := bandwidth.NormalScaleBandwidth(sorted, kernel.Epanechnikov{})
	if err != nil {
		return nil, nil
	}
	pilot, err := kde.New(sorted, kde.Config{
		Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi,
	})
	if err != nil {
		return nil, err
	}
	xs := xmath.Linspace(lo, hi, cfg.GridSize)
	dx := xs[1] - xs[0]
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = pilot.Density(x)
	}
	d2 := xmath.SecondDerivativeTable(ys, dx)
	type cand struct{ x, mag float64 }
	cands := make([]cand, 0, len(xs))
	for i := 1; i < len(d2)-1; i++ {
		m := math.Abs(d2[i])
		if m >= math.Abs(d2[i-1]) && m >= math.Abs(d2[i+1]) && m > 0 {
			cands = append(cands, cand{x: xs[i], mag: m})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mag > cands[j].mag })
	minSep := (hi - lo) / float64(4*(cfg.MaxChangePoints+1))
	var accepted []float64
	for _, c := range cands {
		if len(accepted) >= cfg.MaxChangePoints {
			break
		}
		if c.x-lo < minSep || hi-c.x < minSep {
			continue
		}
		ok := true
		for _, a := range accepted {
			if math.Abs(a-c.x) < minSep {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, c.x)
		}
	}
	sort.Float64s(accepted)
	return accepted, nil
}

func seedLocalEstimator(segment []float64, lo, hi float64) *kde.Estimator {
	if len(segment) < 4 {
		return nil
	}
	h, err := bandwidth.NormalScaleBandwidth(segment, kernel.Epanechnikov{})
	if err != nil || h <= 0 {
		return nil
	}
	if w := hi - lo; h > w {
		h = w
	}
	est, err := kde.New(segment, kde.Config{
		Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi,
	})
	if err != nil {
		return nil
	}
	return est
}

// TestHybridMatchesSeedBuild holds the engine build to the seed build.
// Exact layout equality is deliberately NOT required: on regions where
// the pilot density is locally quadratic the second-difference table is
// a constant plateau (|d2| ~ 3e-16 on this mixture) and the pointwise
// scan's evaluation noise can mint a spurious local maximum there that
// the smoother closed-form sweep does not reproduce. What IS pinned:
// every change point the engine keeps matches a seed change point within
// the 1e-12 fit-path budget (the engine never invents structure the seed
// didn't see), and the two builds agree as estimators on random range
// queries. Worker-count bit-identity is pinned separately in
// TestWorkersBitIdentical.
func TestHybridMatchesSeedBuild(t *testing.T) {
	samples := hybridBenchSamples(5000)
	got, err := New(samples, 0, 1e6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seedHybridNew(samples, 0, 1e6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Bins() < 2 {
		t.Fatalf("engine found no structure: %d bins", got.Bins())
	}
	for _, g := range got.ChangePoints() {
		matched := false
		for _, w := range want.ChangePoints() {
			if xmath.AlmostEqual(g, w, 1e-12) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("engine change point %v has no seed counterpart in %v", g, want.ChangePoints())
		}
	}
	r := xrand.New(13)
	for i := 0; i < 200; i++ {
		a := r.Float64() * 1e6
		b := a + r.Float64()*(1e6-a)
		ga, wa := got.Selectivity(a, b), want.Selectivity(a, b)
		if math.Abs(ga-wa) > 0.02 {
			t.Fatalf("Selectivity(%v,%v): engine %v, seed %v", a, b, ga, wa)
		}
	}
}
