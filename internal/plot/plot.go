// Package plot renders data series as ASCII charts for terminal output.
// The experiments command uses it to draw the paper's figures — error
// curves over bins/positions/sample sizes — directly in the report text,
// so a reproduction run is visually comparable with the paper without
// leaving the terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Config controls chart geometry.
type Config struct {
	// Width and Height are the plot-area dimensions in characters.
	// Zero defaults to 72×20.
	Width, Height int
	// LogX plots the x axis on a log scale (bins/sample-size sweeps).
	LogX bool
	// YLabel annotates the y axis.
	YLabel string
	// XLabel annotates the x axis.
	XLabel string
}

func (c *Config) applyDefaults() {
	if c.Width <= 0 {
		c.Width = 72
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	if c.Width < 16 {
		c.Width = 16
	}
	if c.Height < 4 {
		c.Height = 4
	}
}

// markers distinguish up to eight overlaid series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series into one chart. Series points with non-finite
// coordinates are skipped. An empty input yields a note instead of a
// chart.
func Render(series []Series, cfg Config) string {
	cfg.applyDefaults()
	// Collect finite points and global ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			if cfg.LogX && x <= 0 {
				continue
			}
			usable++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if usable == 0 {
		return "(no plottable points)\n"
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	xpos := func(x float64) int {
		t := 0.0
		if cfg.LogX {
			t = (math.Log(x) - math.Log(minX)) / (math.Log(maxX) - math.Log(minX))
		} else {
			t = (x - minX) / (maxX - minX)
		}
		i := int(math.Round(t * float64(cfg.Width-1)))
		return clampInt(i, 0, cfg.Width-1)
	}
	ypos := func(y float64) int {
		t := (y - minY) / (maxY - minY)
		i := int(math.Round(t * float64(cfg.Height-1)))
		return clampInt(cfg.Height-1-i, 0, cfg.Height-1) // row 0 at the top
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		var prevC, prevR int
		havePrev := false
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) || (cfg.LogX && x <= 0) {
				havePrev = false
				continue
			}
			col, row := xpos(x), ypos(y)
			// Connect consecutive points with a sparse line so curves
			// read as curves, not scatter.
			if havePrev {
				drawLine(grid, prevC, prevR, col, row, '.')
			}
			grid[row][col] = mark
			prevC, prevR, havePrev = col, row, true
		}
	}

	var b strings.Builder
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", cfg.YLabel)
	}
	for r, rowBytes := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%11.4g |%s\n", maxY, rowBytes)
		case cfg.Height - 1:
			fmt.Fprintf(&b, "%11.4g |%s\n", minY, rowBytes)
		default:
			fmt.Fprintf(&b, "%11s |%s\n", "", rowBytes)
		}
	}
	fmt.Fprintf(&b, "%11s +%s\n", "", strings.Repeat("-", cfg.Width))
	scale := "linear"
	if cfg.LogX {
		scale = "log"
	}
	fmt.Fprintf(&b, "%11s  %-*.4g%*.4g  (x: %s", "", cfg.Width/2, minX, cfg.Width/2-1, maxX, scale)
	if cfg.XLabel != "" {
		fmt.Fprintf(&b, ", %s", cfg.XLabel)
	}
	b.WriteString(")\n")
	for si, s := range series {
		fmt.Fprintf(&b, "%11s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// drawLine writes a sparse Bresenham segment with ch, not overwriting
// existing non-space cells.
func drawLine(grid [][]byte, c0, r0, c1, r1 int, ch byte) {
	dc := abs(c1 - c0)
	dr := abs(r1 - r0)
	sc, sr := 1, 1
	if c0 > c1 {
		sc = -1
	}
	if r0 > r1 {
		sr = -1
	}
	err := dc - dr
	c, r := c0, r0
	for {
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		}
		if c == c1 && r == r1 {
			return
		}
		e2 := 2 * err
		if e2 > -dr {
			err -= dr
			c += sc
		}
		if e2 < dc {
			err += dc
			r += sr
		}
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
