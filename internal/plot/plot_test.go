package plot

import (
	"math"
	"strings"
	"testing"
)

func line(n int, f func(i int) (float64, float64)) Series {
	s := Series{Name: "test"}
	for i := 0; i < n; i++ {
		x, y := f(i)
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	return s
}

func TestRenderBasic(t *testing.T) {
	s := line(20, func(i int) (float64, float64) { return float64(i), float64(i * i) })
	out := Render([]Series{s}, Config{})
	if !strings.Contains(out, "*") {
		t.Fatal("no data markers in output")
	}
	if !strings.Contains(out, "test") {
		t.Fatal("no legend in output")
	}
	if !strings.Contains(out, "361") {
		t.Fatalf("max y label missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 20 {
		t.Fatalf("output too short: %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(nil, Config{}); !strings.Contains(out, "no plottable points") {
		t.Fatalf("empty input: %q", out)
	}
	s := Series{Name: "nan", X: []float64{1, 2}, Y: []float64{math.NaN(), math.Inf(1)}}
	if out := Render([]Series{s}, Config{}); !strings.Contains(out, "no plottable points") {
		t.Fatalf("all-NaN input: %q", out)
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	s := Series{Name: "gap", X: []float64{0, 1, 2, 3}, Y: []float64{1, math.NaN(), 3, 4}}
	out := Render([]Series{s}, Config{})
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into output")
	}
}

func TestRenderLogX(t *testing.T) {
	s := line(5, func(i int) (float64, float64) { return math.Pow(10, float64(i)), float64(i) })
	out := Render([]Series{s}, Config{LogX: true})
	if !strings.Contains(out, "log") {
		t.Fatal("log scale not annotated")
	}
	// Non-positive x is skipped rather than crashing the log transform.
	s2 := Series{Name: "bad", X: []float64{-1, 0, 10, 100}, Y: []float64{1, 2, 3, 4}}
	out2 := Render([]Series{s2}, Config{LogX: true})
	if !strings.Contains(out2, "*") {
		t.Fatal("positive points should still render")
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	a := line(10, func(i int) (float64, float64) { return float64(i), float64(i) })
	a.Name = "up"
	b := line(10, func(i int) (float64, float64) { return float64(i), float64(9 - i) })
	b.Name = "down"
	out := Render([]Series{a, b}, Config{})
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Fatal("legend incomplete")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := line(5, func(i int) (float64, float64) { return float64(i), 7 })
	out := Render([]Series{s}, Config{})
	if out == "" || !strings.Contains(out, "*") {
		t.Fatal("constant series should render")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	s := Series{Name: "pt", X: []float64{5}, Y: []float64{5}}
	out := Render([]Series{s}, Config{})
	if !strings.Contains(out, "*") {
		t.Fatal("single point should render")
	}
}

func TestConfigClamps(t *testing.T) {
	s := line(3, func(i int) (float64, float64) { return float64(i), float64(i) })
	out := Render([]Series{s}, Config{Width: 1, Height: 1})
	if out == "" {
		t.Fatal("degenerate config should still render")
	}
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if len(l) > 140 {
			t.Fatalf("line too long after clamp: %d", len(l))
		}
	}
}

func TestLabels(t *testing.T) {
	s := line(3, func(i int) (float64, float64) { return float64(i), float64(i) })
	out := Render([]Series{s}, Config{XLabel: "bins", YLabel: "MRE"})
	if !strings.Contains(out, "bins") || !strings.Contains(out, "MRE") {
		t.Fatal("labels missing")
	}
}
