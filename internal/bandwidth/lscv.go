package bandwidth

import (
	"fmt"
	"math"
	"time"

	"selest/internal/errs"
	"selest/internal/faultinject"
	"selest/internal/fsort"
	"selest/internal/kernel"
	"selest/internal/parallel"
	"selest/internal/telemetry"
	"selest/internal/xmath"
)

// LSCVBandwidth selects the bandwidth by least-squares cross-validation,
// an extension beyond the paper's rules. LSCV minimises an unbiased
// estimate of the integrated squared error:
//
//	LSCV(h) = ∫f̂² − (2/n)·Σ_i f̂_{−i}(X_i)
//
// over a logarithmic bandwidth grid spanning [hLo, hHi]. It is fully
// data-driven (no normal reference), at the price of O(grid·n·k) work and
// the well-known tendency to undersmooth on heavy-duplicate data.
//
// gridN must be at least 2; smaller values are rejected with an error
// wrapping errs.ErrBadOption (the seed behaviour of silently substituting
// a 32-point grid hid caller bugs).
//
// Grid points are scored concurrently across a bounded worker pool; the
// scores and the selected bandwidth are bit-identical to a sequential
// scan at any worker count (see LSCVBandwidthWorkers).
func LSCVBandwidth(samples []float64, k kernel.Kernel, hLo, hHi float64, gridN int) (float64, error) {
	return LSCVBandwidthWorkers(samples, k, hLo, hHi, gridN, 0)
}

// LSCVBandwidthWorkers is LSCVBandwidth with an explicit worker count for
// the grid scan (≤0 means GOMAXPROCS). Each grid point's score is an
// independent pure function of (sorted samples, h); scores land in
// per-index slots and the argmin is taken sequentially afterwards with
// the same first-wins tie-breaking as xmath.LogGridMin, so the result is
// bit-identical at any worker count.
func LSCVBandwidthWorkers(samples []float64, k kernel.Kernel, hLo, hHi float64, gridN, workers int) (float64, error) {
	defer ruleNanosLSCV.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.lscv"); err != nil {
		return 0, err
	}
	if len(samples) < 2 {
		return 0, fmt.Errorf("bandwidth: LSCV needs at least 2 samples")
	}
	sorted := append([]float64(nil), samples...)
	fsort.Float64s(sorted)
	return lscvSorted(sorted, k, hLo, hHi, gridN, workers)
}

// LSCVBandwidthSorted is LSCVBandwidth over already-sorted input (which
// it only reads): fit-path callers holding a kde.FitContext pass its
// Sorted() slice and skip the copy-and-sort.
func LSCVBandwidthSorted(sorted []float64, k kernel.Kernel, hLo, hHi float64, gridN, workers int) (float64, error) {
	defer ruleNanosLSCV.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.lscv"); err != nil {
		return 0, err
	}
	if len(sorted) < 2 {
		return 0, fmt.Errorf("bandwidth: LSCV needs at least 2 samples")
	}
	return lscvSorted(sorted, k, hLo, hHi, gridN, workers)
}

func lscvSorted(sorted []float64, k kernel.Kernel, hLo, hHi float64, gridN, workers int) (float64, error) {
	if telemetry.Enabled() {
		fitKindSearched.Inc()
	}
	if !(hLo > 0 && hHi > hLo) {
		return 0, fmt.Errorf("bandwidth: LSCV needs 0 < hLo < hHi, got [%v, %v]", hLo, hHi)
	}
	if gridN < 2 {
		return 0, fmt.Errorf("bandwidth: LSCV needs a grid of at least 2 points, got %d: %w", gridN, errs.ErrBadOption)
	}
	hs := logGrid(hLo, hHi, gridN)
	scores := make([]float64, gridN)
	_ = parallel.ForEach(gridN, workers, func(i int) error {
		scores[i] = lscvScore(sorted, k, hs[i])
		return nil
	})
	best, bestScore := hs[0], scores[0]
	for i := 1; i < gridN; i++ {
		if scores[i] < bestScore {
			best, bestScore = hs[i], scores[i]
		}
	}
	return best, nil
}

// logGrid reproduces the evaluation points of xmath.LogGridMin(f, a, b, n)
// exactly: the first point is a itself (not exp(log a)), the rest are
// exp(la + i·step). Keeping the grid bit-identical to the seed's
// sequential minimiser is what lets the parallel scan select the exact
// same bandwidth.
func logGrid(a, b float64, n int) []float64 {
	la, lb := math.Log(a), math.Log(b)
	step := (lb - la) / float64(n-1)
	hs := make([]float64, n)
	hs[0] = a
	for i := 1; i < n; i++ {
		hs[i] = math.Exp(la + float64(i)*step)
	}
	return hs
}

// lscvScore evaluates the LSCV objective for one bandwidth on sorted
// samples. ∫f̂² is computed exactly through the kernel's self-convolution
// evaluated numerically per sample pair within reach; leave-one-out terms
// reuse the same pair walk. The Epanechnikov kernel — the paper's choice
// and the hot path — dispatches to a devirtualised walk with both closed
// forms inlined.
func lscvScore(sorted []float64, k kernel.Kernel, h float64) float64 {
	if _, ok := k.(kernel.Epanechnikov); ok {
		return lscvScoreEpanechnikov(sorted, h)
	}
	n := len(sorted)
	nf := float64(n)
	reach := 2 * h * k.Support() // pairs farther apart interact in neither term

	// Pairwise accumulation: for each i, walk neighbours j > i within
	// reach. conv(d) = ∫K(t)K(t−d/h)dt evaluated by quadrature; loo(d) =
	// K(d/h).
	var convSum, looSum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && sorted[j]-sorted[i] <= reach; j++ {
			d := (sorted[j] - sorted[i]) / h
			convSum += kernelSelfConvolution(k, d)
			looSum += k.Eval(d)
		}
	}
	// Diagonal terms: conv(0) once per sample; K(0) terms are excluded
	// from leave-one-out by construction.
	convDiag := kernelSelfConvolution(k, 0)

	integralF2 := (nf*convDiag + 2*convSum) / (nf * nf * h)
	leaveOneOut := 2 * looSum / (nf * (nf - 1) * h) // Σ_i Σ_{j≠i} counted once per unordered pair ×2
	return integralF2 - 2*leaveOneOut
}

// lscvScoreEpanechnikov is lscvScore with the interface dispatch removed
// from the O(n·k) pair walk: the self-convolution polynomial and the
// kernel evaluation are the exact same floating-point expressions as
// kernelSelfConvolution and kernel.Epanechnikov.Eval, accumulated in the
// same order, so the score is bit-identical to the generic walk.
func lscvScoreEpanechnikov(sorted []float64, h float64) float64 {
	n := len(sorted)
	nf := float64(n)
	reach := 2 * h // Epanechnikov support is 1

	var convSum, looSum float64
	for i := 0; i < n; i++ {
		xi := sorted[i]
		for j := i + 1; j < n && sorted[j]-xi <= reach; j++ {
			d := (sorted[j] - xi) / h
			if d < 2 {
				convSum += 3.0 / 160.0 * (2 - d) * (2 - d) * (2 - d) * (d*d + 6*d + 4)
			}
			if d <= 1 {
				looSum += 0.75 * (1 - d*d)
			}
		}
	}
	convDiag := 3.0 / 160.0 * 2 * 2 * 2 * 4 // the polynomial at d = 0

	integralF2 := (nf*convDiag + 2*convSum) / (nf * nf * h)
	leaveOneOut := 2 * looSum / (nf * (nf - 1) * h)
	return integralF2 - 2*leaveOneOut
}

// kernelSelfConvolution evaluates (K*K)(d) = ∫K(t)K(t−d)dt. For the
// Epanechnikov kernel the closed form is used; other kernels fall back to
// quadrature over the overlap of the supports.
func kernelSelfConvolution(k kernel.Kernel, d float64) float64 {
	d = math.Abs(d)
	if _, ok := k.(kernel.Epanechnikov); ok {
		if d >= 2 {
			return 0
		}
		// ∫ 9/16 (1−t²)(1−(t−d)²) dt over t ∈ [d−1, 1]; expanding gives the
		// classic polynomial in d below.
		return 3.0 / 160.0 * (2 - d) * (2 - d) * (2 - d) * (d*d + 6*d + 4)
	}
	r := k.Support()
	lo, hi := d-r, r
	if hi <= lo {
		return 0
	}
	return xmath.Simpson(func(t float64) float64 { return k.Eval(t) * k.Eval(t-d) }, lo, hi, 64)
}
