package bandwidth

import (
	"fmt"
	"math"
	"sort"
	"time"

	"selest/internal/faultinject"
	"selest/internal/kernel"
	"selest/internal/xmath"
)

// LSCVBandwidth selects the bandwidth by least-squares cross-validation,
// an extension beyond the paper's rules. LSCV minimises an unbiased
// estimate of the integrated squared error:
//
//	LSCV(h) = ∫f̂² − (2/n)·Σ_i f̂_{−i}(X_i)
//
// over a logarithmic bandwidth grid spanning [hLo, hHi]. It is fully
// data-driven (no normal reference), at the price of O(grid·n·k) work and
// the well-known tendency to undersmooth on heavy-duplicate data.
func LSCVBandwidth(samples []float64, k kernel.Kernel, hLo, hHi float64, gridN int) (float64, error) {
	defer ruleNanosLSCV.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.lscv"); err != nil {
		return 0, err
	}
	if len(samples) < 2 {
		return 0, fmt.Errorf("bandwidth: LSCV needs at least 2 samples")
	}
	if !(hLo > 0 && hHi > hLo) {
		return 0, fmt.Errorf("bandwidth: LSCV needs 0 < hLo < hHi, got [%v, %v]", hLo, hHi)
	}
	if gridN < 2 {
		gridN = 32
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	h, _ := xmath.LogGridMin(func(h float64) float64 {
		return lscvScore(sorted, k, h)
	}, hLo, hHi, gridN)
	return h, nil
}

// lscvScore evaluates the LSCV objective for one bandwidth on sorted
// samples. ∫f̂² is computed exactly through the kernel's self-convolution
// evaluated numerically per sample pair within reach; leave-one-out terms
// reuse the same pair walk.
func lscvScore(sorted []float64, k kernel.Kernel, h float64) float64 {
	n := len(sorted)
	nf := float64(n)
	reach := 2 * h * k.Support() // pairs farther apart interact in neither term

	// Pairwise accumulation: for each i, walk neighbours j > i within
	// reach. conv(d) = ∫K(t)K(t−d/h)dt evaluated by quadrature; loo(d) =
	// K(d/h).
	var convSum, looSum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && sorted[j]-sorted[i] <= reach; j++ {
			d := (sorted[j] - sorted[i]) / h
			convSum += kernelSelfConvolution(k, d)
			looSum += k.Eval(d)
		}
	}
	// Diagonal terms: conv(0) once per sample; K(0) terms are excluded
	// from leave-one-out by construction.
	convDiag := kernelSelfConvolution(k, 0)

	integralF2 := (nf*convDiag + 2*convSum) / (nf * nf * h)
	leaveOneOut := 2 * looSum / (nf * (nf - 1) * h) // Σ_i Σ_{j≠i} counted once per unordered pair ×2
	return integralF2 - 2*leaveOneOut
}

// kernelSelfConvolution evaluates (K*K)(d) = ∫K(t)K(t−d)dt. For the
// Epanechnikov kernel the closed form is used; other kernels fall back to
// quadrature over the overlap of the supports.
func kernelSelfConvolution(k kernel.Kernel, d float64) float64 {
	d = math.Abs(d)
	if _, ok := k.(kernel.Epanechnikov); ok {
		if d >= 2 {
			return 0
		}
		// ∫ 9/16 (1−t²)(1−(t−d)²) dt over t ∈ [d−1, 1]; expanding gives the
		// classic polynomial in d below.
		return 3.0 / 160.0 * (2 - d) * (2 - d) * (2 - d) * (d*d + 6*d + 4)
	}
	r := k.Support()
	lo, hi := d-r, r
	if hi <= lo {
		return 0
	}
	return xmath.Simpson(func(t float64) float64 { return k.Eval(t) * k.Eval(t-d) }, lo, hi, 64)
}
