package bandwidth

import (
	"fmt"
	"math"

	"selest/internal/parallel"
)

// Oracle performs the grid search behind the paper's "h-opt" reference
// columns (figures 9 and 11): it scans smoothing parameters on a
// logarithmic grid and returns the one minimising a caller-supplied loss —
// in the experiments, the mean relative error over a query workload with
// known true selectivities. The paper stresses this is "not a practical
// method" (it needs the answers in advance); it exists to judge how close
// the practical rules get.
//
// Grid points are evaluated concurrently, so loss must be safe for
// concurrent invocation (the experiment losses are pure functions of h).
// The selected parameter is bit-identical to the seed's sequential
// xmath.LogGridMin scan: same grid points, same strict-less first-wins
// tie-breaking. Use OracleWorkers to bound (or serialise, workers=1) the
// pool for losses that are expensive or not concurrency-safe.
func Oracle(loss func(h float64) float64, hLo, hHi float64, gridN int) (float64, error) {
	return OracleWorkers(loss, hLo, hHi, gridN, 0)
}

// OracleWorkers is Oracle with an explicit worker count (≤0 means
// GOMAXPROCS; 1 recovers the fully sequential seed behaviour).
func OracleWorkers(loss func(h float64) float64, hLo, hHi float64, gridN, workers int) (float64, error) {
	if !(hLo > 0 && hHi > hLo) {
		return 0, fmt.Errorf("bandwidth: oracle needs 0 < hLo < hHi, got [%v, %v]", hLo, hHi)
	}
	if gridN < 2 {
		gridN = 48
	}
	hs := logGrid(hLo, hHi, gridN)
	losses := make([]float64, gridN)
	_ = parallel.ForEach(gridN, workers, func(i int) error {
		losses[i] = loss(hs[i])
		return nil
	})
	h, lossAt := hs[0], losses[0]
	for i := 1; i < gridN; i++ {
		if losses[i] < lossAt {
			h, lossAt = hs[i], losses[i]
		}
	}
	if math.IsNaN(lossAt) || math.IsInf(lossAt, 0) {
		return 0, fmt.Errorf("bandwidth: oracle loss not finite at minimum h=%v", h)
	}
	return h, nil
}

// OracleBins scans integer bin counts in [kLo, kHi] and returns the count
// minimising the loss. Used for the histogram h-opt columns, where the
// smoothing parameter is discrete. Like Oracle, candidate counts are
// evaluated concurrently (loss must tolerate that) and the selection
// matches the seed's ascending sequential scan exactly.
func OracleBins(loss func(k int) float64, kLo, kHi int) (int, error) {
	return OracleBinsWorkers(loss, kLo, kHi, 0)
}

// OracleBinsWorkers is OracleBins with an explicit worker count (≤0 means
// GOMAXPROCS; 1 recovers the fully sequential seed behaviour).
func OracleBinsWorkers(loss func(k int) float64, kLo, kHi, workers int) (int, error) {
	if kLo < 1 || kHi < kLo {
		return 0, fmt.Errorf("bandwidth: oracle bins needs 1 <= kLo <= kHi, got [%d, %d]", kLo, kHi)
	}
	// Candidate counts scan multiplicatively (×1.25 steps) — error curves
	// over bin counts are smooth on a log scale and the full integer scan
	// is wasteful for kHi in the thousands.
	var ks []int
	for k := kLo; k <= kHi; {
		ks = append(ks, k)
		next := k + k/4
		if next <= k {
			next = k + 1
		}
		k = next
	}
	losses := make([]float64, len(ks))
	_ = parallel.ForEach(len(ks), workers, func(i int) error {
		losses[i] = loss(ks[i])
		return nil
	})
	best, bestLoss := kLo, math.Inf(1)
	for i, k := range ks {
		if losses[i] < bestLoss {
			best, bestLoss = k, losses[i]
		}
	}
	if math.IsInf(bestLoss, 1) {
		return 0, fmt.Errorf("bandwidth: oracle bins found no finite loss")
	}
	return best, nil
}
