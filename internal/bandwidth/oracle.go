package bandwidth

import (
	"fmt"
	"math"

	"selest/internal/xmath"
)

// Oracle performs the grid search behind the paper's "h-opt" reference
// columns (figures 9 and 11): it scans smoothing parameters on a
// logarithmic grid and returns the one minimising a caller-supplied loss —
// in the experiments, the mean relative error over a query workload with
// known true selectivities. The paper stresses this is "not a practical
// method" (it needs the answers in advance); it exists to judge how close
// the practical rules get.
func Oracle(loss func(h float64) float64, hLo, hHi float64, gridN int) (float64, error) {
	if !(hLo > 0 && hHi > hLo) {
		return 0, fmt.Errorf("bandwidth: oracle needs 0 < hLo < hHi, got [%v, %v]", hLo, hHi)
	}
	if gridN < 2 {
		gridN = 48
	}
	h, lossAt := xmath.LogGridMin(loss, hLo, hHi, gridN)
	if math.IsNaN(lossAt) || math.IsInf(lossAt, 0) {
		return 0, fmt.Errorf("bandwidth: oracle loss not finite at minimum h=%v", h)
	}
	return h, nil
}

// OracleBins scans integer bin counts in [kLo, kHi] and returns the count
// minimising the loss. Used for the histogram h-opt columns, where the
// smoothing parameter is discrete.
func OracleBins(loss func(k int) float64, kLo, kHi int) (int, error) {
	if kLo < 1 || kHi < kLo {
		return 0, fmt.Errorf("bandwidth: oracle bins needs 1 <= kLo <= kHi, got [%d, %d]", kLo, kHi)
	}
	best, bestLoss := kLo, math.Inf(1)
	// Scan multiplicatively (×1.25 steps) — error curves over bin counts
	// are smooth on a log scale and the full integer scan is wasteful for
	// kHi in the thousands.
	for k := kLo; k <= kHi; {
		if l := loss(k); l < bestLoss {
			best, bestLoss = k, l
		}
		next := k + k/4
		if next <= k {
			next = k + 1
		}
		k = next
	}
	if math.IsInf(bestLoss, 1) {
		return 0, fmt.Errorf("bandwidth: oracle bins found no finite loss")
	}
	return best, nil
}
