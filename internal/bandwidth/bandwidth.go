// Package bandwidth implements the smoothing-parameter selection rules of
// paper §4: the asymptotically optimal bin width and kernel bandwidth, the
// normal scale rules that approximate them from the sample alone, the
// iterative direct plug-in (DPI) rule, least-squares cross-validation as an
// extension, and the oracle grid search used for the "h-opt" reference
// columns of figures 9 and 11.
package bandwidth

import (
	"fmt"
	"math"
	"time"

	"selest/internal/faultinject"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/stats"
	"selest/internal/xmath"
)

// OptimalBinWidth returns the asymptotically MISE-optimal equi-width bin
// width h_EW = (6 / (n · ∫f'²))^(1/3) (paper eq. 7). roughnessFirst is
// ∫f'(x)²dx of the true density; it must be positive (a zero functional —
// e.g. the uniform density — has no finite optimal width and yields +Inf).
func OptimalBinWidth(n int, roughnessFirst float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	if roughnessFirst <= 0 {
		return math.Inf(1)
	}
	return math.Cbrt(6 / (float64(n) * roughnessFirst))
}

// OptimalBandwidth returns the asymptotically MISE-optimal kernel
// bandwidth h_K = (∫K² / (n·k₂²·∫f”²))^(1/5) (paper §4.2).
func OptimalBandwidth(n int, k kernel.Kernel, roughnessSecond float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	if roughnessSecond <= 0 {
		return math.Inf(1)
	}
	k2 := k.SecondMoment()
	return math.Pow(k.Roughness()/(float64(n)*k2*k2*roughnessSecond), 0.2)
}

// AMISEHistogram evaluates the histogram AMISE(h) = 1/(nh) + h²/12·∫f'²
// (paper §4.1) so experiments can plot the error curve whose minimum
// OptimalBinWidth identifies.
func AMISEHistogram(h float64, n int, roughnessFirst float64) float64 {
	return 1/(float64(n)*h) + h*h/12*roughnessFirst
}

// AMISEKernel evaluates the kernel AMISE(h) = ¼h⁴k₂²∫f”² + ∫K²/(nh)
// (paper eq. 9).
func AMISEKernel(h float64, n int, k kernel.Kernel, roughnessSecond float64) float64 {
	k2 := k.SecondMoment()
	bias2 := 0.25 * h * h * h * h * k2 * k2 * roughnessSecond
	variance := k.Roughness() / (float64(n) * h)
	return bias2 + variance
}

// NormalScaleBinWidth returns the paper's normal scale rule for the
// equi-width bin width (eq. 8): h ≈ (24√π)^(1/3) · s · n^(−1/3), where the
// scale s is estimated as min(stddev, IQR/1.348) by stats.Scale.
func NormalScaleBinWidth(samples []float64) (float64, error) {
	defer ruleNanosNSBinWidth.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.normal-scale-binwidth"); err != nil {
		return 0, err
	}
	n := len(samples)
	if n == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	s := stats.Scale(samples)
	if s <= 0 {
		return 0, fmt.Errorf("bandwidth: degenerate sample (zero scale)")
	}
	return math.Cbrt(24*math.SqrtPi) * s * math.Pow(float64(n), -1.0/3.0), nil
}

// NormalScaleBandwidth returns the paper's normal scale rule for the
// kernel bandwidth: plugging the Gaussian roughness ∫f”² = 3/(8√π s⁵)
// into the optimal-h formula gives
//
//	h ≈ (8√π·∫K² / (3·k₂²))^(1/5) · s · n^(−1/5),
//
// which for the Epanechnikov kernel is the paper's h ≈ 2.345·s·n^(−1/5).
func NormalScaleBandwidth(samples []float64, k kernel.Kernel) (float64, error) {
	defer ruleNanosNormalScale.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.normal-scale"); err != nil {
		return 0, err
	}
	n := len(samples)
	if n == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	s := stats.Scale(samples)
	if s <= 0 {
		return 0, fmt.Errorf("bandwidth: degenerate sample (zero scale)")
	}
	k2 := k.SecondMoment()
	c := math.Pow(8*math.SqrtPi*k.Roughness()/(3*k2*k2), 0.2)
	return c * s * math.Pow(float64(n), -0.2), nil
}

// BinsForWidth converts a bin width into a bin count over [lo, hi],
// clamped to at least 1 bin and at most maxBins (0 means no cap).
func BinsForWidth(h, lo, hi float64, maxBins int) int {
	if !(hi > lo) || h <= 0 || math.IsInf(h, 1) || math.IsNaN(h) {
		return 1
	}
	k := int(math.Ceil((hi - lo) / h))
	if k < 1 {
		k = 1
	}
	if maxBins > 0 && k > maxBins {
		k = maxBins
	}
	return k
}

// NormalScaleBins applies NormalScaleBinWidth and converts to a bin count
// over the domain [lo, hi].
func NormalScaleBins(samples []float64, lo, hi float64, maxBins int) (int, error) {
	h, err := NormalScaleBinWidth(samples)
	if err != nil {
		return 0, err
	}
	return BinsForWidth(h, lo, hi, maxBins), nil
}

// DPIBandwidth implements the paper's direct plug-in rule (§4.3): starting
// from the normal scale bandwidth, each iteration builds a pilot kernel
// density estimate with the current bandwidth, estimates the functional
// ∫f”² from it numerically, and plugs that into the optimal-bandwidth
// formula. Two or three steps suffice (the paper's observation; the
// ablation bench verifies it).
//
// The pilot estimates use reflection at [lo, hi] so the boundary loss does
// not bias the functional.
func DPIBandwidth(samples []float64, k kernel.Kernel, steps int, lo, hi float64) (float64, error) {
	defer ruleNanosDPI.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.dpi"); err != nil {
		return 0, err
	}
	h, err := NormalScaleBandwidth(samples, k)
	if err != nil {
		return 0, err
	}
	if steps <= 0 {
		return h, nil
	}
	if !(hi > lo) {
		return 0, fmt.Errorf("bandwidth: DPI needs a proper domain, got [%v, %v]", lo, hi)
	}
	n := len(samples)
	for step := 0; step < steps; step++ {
		// Functional estimation benefits from a pilot bandwidth somewhat
		// larger than the final one (derivatives amplify noise); the
		// classical inflation factor for ψ₄ estimation is n^(1/5−1/7)
		// relative to the density bandwidth. We use a modest 1.5× pilot,
		// which is robust across our data files.
		pilot := 1.5 * h
		r2, err := estimateRoughnessSecond(samples, k, pilot, lo, hi)
		if err != nil {
			return 0, err
		}
		if r2 <= 0 || math.IsNaN(r2) {
			break // flat estimate: keep the current h
		}
		hNew := OptimalBandwidth(n, k, r2)
		if math.IsInf(hNew, 1) || math.IsNaN(hNew) || hNew <= 0 {
			break
		}
		h = hNew
	}
	return h, nil
}

// DPIBinWidth is the direct plug-in rule for the equi-width bin width:
// iterations estimate ∫f'² from a pilot kernel estimate and plug it into
// eq. 7.
func DPIBinWidth(samples []float64, steps int, lo, hi float64) (float64, error) {
	defer ruleNanosDPIBinWidth.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.dpi-binwidth"); err != nil {
		return 0, err
	}
	h, err := NormalScaleBinWidth(samples)
	if err != nil {
		return 0, err
	}
	if steps <= 0 {
		return h, nil
	}
	if !(hi > lo) {
		return 0, fmt.Errorf("bandwidth: DPI needs a proper domain, got [%v, %v]", lo, hi)
	}
	n := len(samples)
	// Pilot kernel bandwidth from the normal scale rule; iterate on the
	// functional only.
	k := kernel.Epanechnikov{}
	pilotH, err := NormalScaleBandwidth(samples, k)
	if err != nil {
		return 0, err
	}
	for step := 0; step < steps; step++ {
		r1, err := estimateRoughnessFirst(samples, k, pilotH, lo, hi)
		if err != nil {
			return 0, err
		}
		if r1 <= 0 || math.IsNaN(r1) {
			break
		}
		hNew := OptimalBinWidth(n, r1)
		if math.IsInf(hNew, 1) || math.IsNaN(hNew) || hNew <= 0 {
			break
		}
		h = hNew
		// Refine the pilot toward the scale suggested by the new width.
		pilotH = 1.5 * hNew
	}
	return h, nil
}

// functionalGridSize is the grid resolution for numeric functional
// estimation. 512 points keeps the second-difference error well below the
// statistical noise of a 2,000-record sample.
const functionalGridSize = 512

// estimateRoughnessSecond estimates ∫f”² from a pilot KDE on a grid.
func estimateRoughnessSecond(samples []float64, k kernel.Kernel, h, lo, hi float64) (float64, error) {
	e, err := kde.New(samples, kde.Config{Kernel: k, Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return 0, err
	}
	xs := xmath.Linspace(lo, hi, functionalGridSize)
	dx := xs[1] - xs[0]
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = e.Density(x)
	}
	d2 := xmath.SecondDerivativeTable(ys, dx)
	for i, v := range d2 {
		d2[i] = v * v
	}
	return xmath.IntegrateSamples(d2, dx), nil
}

// estimateRoughnessFirst estimates ∫f'² from a pilot KDE on a grid.
func estimateRoughnessFirst(samples []float64, k kernel.Kernel, h, lo, hi float64) (float64, error) {
	e, err := kde.New(samples, kde.Config{Kernel: k, Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return 0, err
	}
	xs := xmath.Linspace(lo, hi, functionalGridSize)
	dx := xs[1] - xs[0]
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = e.Density(x)
	}
	d1 := xmath.GradientTable(ys, dx)
	for i, v := range d1 {
		d1[i] = v * v
	}
	return xmath.IntegrateSamples(d1, dx), nil
}
