// Package bandwidth implements the smoothing-parameter selection rules of
// paper §4: the asymptotically optimal bin width and kernel bandwidth, the
// normal scale rules that approximate them from the sample alone, the
// iterative direct plug-in (DPI) rule, least-squares cross-validation as an
// extension, and the oracle grid search used for the "h-opt" reference
// columns of figures 9 and 11.
package bandwidth

import (
	"fmt"
	"math"
	"time"

	"selest/internal/faultinject"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/stats"
	"selest/internal/telemetry"
	"selest/internal/xmath"
)

// OptimalBinWidth returns the asymptotically MISE-optimal equi-width bin
// width h_EW = (6 / (n · ∫f'²))^(1/3) (paper eq. 7). roughnessFirst is
// ∫f'(x)²dx of the true density; it must be positive (a zero functional —
// e.g. the uniform density — has no finite optimal width and yields +Inf).
func OptimalBinWidth(n int, roughnessFirst float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	if roughnessFirst <= 0 {
		return math.Inf(1)
	}
	return math.Cbrt(6 / (float64(n) * roughnessFirst))
}

// OptimalBandwidth returns the asymptotically MISE-optimal kernel
// bandwidth h_K = (∫K² / (n·k₂²·∫f”²))^(1/5) (paper §4.2).
func OptimalBandwidth(n int, k kernel.Kernel, roughnessSecond float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	if roughnessSecond <= 0 {
		return math.Inf(1)
	}
	k2 := k.SecondMoment()
	return math.Pow(k.Roughness()/(float64(n)*k2*k2*roughnessSecond), 0.2)
}

// AMISEHistogram evaluates the histogram AMISE(h) = 1/(nh) + h²/12·∫f'²
// (paper §4.1) so experiments can plot the error curve whose minimum
// OptimalBinWidth identifies.
func AMISEHistogram(h float64, n int, roughnessFirst float64) float64 {
	return 1/(float64(n)*h) + h*h/12*roughnessFirst
}

// AMISEKernel evaluates the kernel AMISE(h) = ¼h⁴k₂²∫f”² + ∫K²/(nh)
// (paper eq. 9).
func AMISEKernel(h float64, n int, k kernel.Kernel, roughnessSecond float64) float64 {
	k2 := k.SecondMoment()
	bias2 := 0.25 * h * h * h * h * k2 * k2 * roughnessSecond
	variance := k.Roughness() / (float64(n) * h)
	return bias2 + variance
}

// NormalScaleBinWidth returns the paper's normal scale rule for the
// equi-width bin width (eq. 8): h ≈ (24√π)^(1/3) · s · n^(−1/3), where the
// scale s is estimated as min(stddev, IQR/1.348) by stats.Scale.
func NormalScaleBinWidth(samples []float64) (float64, error) {
	defer ruleNanosNSBinWidth.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.normal-scale-binwidth"); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	return nsBinWidthFromScale(len(samples), stats.Scale(samples))
}

// NormalScaleBinWidthSorted is NormalScaleBinWidth over already-sorted
// input: the quartiles behind the scale estimate come straight from the
// order statistics, with no sorting copy. Fit-path callers that hold a
// kde.FitContext pass its Sorted() slice here.
func NormalScaleBinWidthSorted(sorted []float64) (float64, error) {
	defer ruleNanosNSBinWidth.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.normal-scale-binwidth"); err != nil {
		return 0, err
	}
	if len(sorted) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	return nsBinWidthFromScale(len(sorted), stats.ScaleSorted(sorted))
}

func nsBinWidthFromScale(n int, s float64) (float64, error) {
	if s <= 0 {
		return 0, fmt.Errorf("bandwidth: degenerate sample (zero scale)")
	}
	return math.Cbrt(24*math.SqrtPi) * s * math.Pow(float64(n), -1.0/3.0), nil
}

// NormalScaleBandwidth returns the paper's normal scale rule for the
// kernel bandwidth: plugging the Gaussian roughness ∫f”² = 3/(8√π s⁵)
// into the optimal-h formula gives
//
//	h ≈ (8√π·∫K² / (3·k₂²))^(1/5) · s · n^(−1/5),
//
// which for the Epanechnikov kernel is the paper's h ≈ 2.345·s·n^(−1/5).
func NormalScaleBandwidth(samples []float64, k kernel.Kernel) (float64, error) {
	defer ruleNanosNormalScale.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.normal-scale"); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	return nsBandwidthFromScale(len(samples), stats.Scale(samples), k)
}

// NormalScaleBandwidthSorted is NormalScaleBandwidth over already-sorted
// input, avoiding the sorting copy inside the scale estimate.
func NormalScaleBandwidthSorted(sorted []float64, k kernel.Kernel) (float64, error) {
	defer ruleNanosNormalScale.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.normal-scale"); err != nil {
		return 0, err
	}
	if len(sorted) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	return nsBandwidthFromScale(len(sorted), stats.ScaleSorted(sorted), k)
}

func nsBandwidthFromScale(n int, s float64, k kernel.Kernel) (float64, error) {
	if telemetry.Enabled() {
		fitKindClosedForm.Inc()
	}
	if s <= 0 {
		return 0, fmt.Errorf("bandwidth: degenerate sample (zero scale)")
	}
	k2 := k.SecondMoment()
	c := math.Pow(8*math.SqrtPi*k.Roughness()/(3*k2*k2), 0.2)
	return c * s * math.Pow(float64(n), -0.2), nil
}

// BinsForWidth converts a bin width into a bin count over [lo, hi],
// clamped to at least 1 bin and at most maxBins (0 means no cap).
func BinsForWidth(h, lo, hi float64, maxBins int) int {
	if !(hi > lo) || h <= 0 || math.IsInf(h, 1) || math.IsNaN(h) {
		return 1
	}
	k := int(math.Ceil((hi - lo) / h))
	if k < 1 {
		k = 1
	}
	if maxBins > 0 && k > maxBins {
		k = maxBins
	}
	return k
}

// NormalScaleBins applies NormalScaleBinWidth and converts to a bin count
// over the domain [lo, hi].
func NormalScaleBins(samples []float64, lo, hi float64, maxBins int) (int, error) {
	h, err := NormalScaleBinWidth(samples)
	if err != nil {
		return 0, err
	}
	return BinsForWidth(h, lo, hi, maxBins), nil
}

// DPIBandwidth implements the paper's direct plug-in rule (§4.3): starting
// from the normal scale bandwidth, each iteration builds a pilot kernel
// density estimate with the current bandwidth, estimates the functional
// ∫f”² from it numerically, and plugs that into the optimal-bandwidth
// formula. Two or three steps suffice (the paper's observation; the
// ablation bench verifies it).
//
// The pilot estimates use reflection at [lo, hi] so the boundary loss does
// not bias the functional.
func DPIBandwidth(samples []float64, k kernel.Kernel, steps int, lo, hi float64) (float64, error) {
	defer ruleNanosDPI.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.dpi"); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	ctx, err := kde.NewFitContext(samples)
	if err != nil {
		return 0, err
	}
	return dpiBandwidthCtx(ctx, k, steps, lo, hi)
}

// DPIBandwidthContext is DPIBandwidth over a pre-built fit context: the
// sample sort and the prefix-moment index are paid once by the context,
// and every pilot density of every iteration reuses them. Callers fitting
// a final estimator afterwards should fit it from the same context.
func DPIBandwidthContext(ctx *kde.FitContext, k kernel.Kernel, steps int, lo, hi float64) (float64, error) {
	defer ruleNanosDPI.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.dpi"); err != nil {
		return 0, err
	}
	return dpiBandwidthCtx(ctx, k, steps, lo, hi)
}

func dpiBandwidthCtx(ctx *kde.FitContext, k kernel.Kernel, steps int, lo, hi float64) (float64, error) {
	if telemetry.Enabled() {
		fitKindSearched.Inc()
	}
	h, err := NormalScaleBandwidthSorted(ctx.Sorted(), k)
	if err != nil {
		return 0, err
	}
	if steps <= 0 {
		return h, nil
	}
	if !(hi > lo) {
		return 0, fmt.Errorf("bandwidth: DPI needs a proper domain, got [%v, %v]", lo, hi)
	}
	n := ctx.SampleSize()
	for step := 0; step < steps; step++ {
		// Functional estimation benefits from a pilot bandwidth somewhat
		// larger than the final one (derivatives amplify noise); the
		// classical inflation factor for ψ₄ estimation is n^(1/5−1/7)
		// relative to the density bandwidth. We use a modest 1.5× pilot,
		// which is robust across our data files.
		pilot := 1.5 * h
		r2, err := estimateRoughnessSecond(ctx, k, pilot, lo, hi)
		if err != nil {
			return 0, err
		}
		if r2 <= 0 || math.IsNaN(r2) {
			break // flat estimate: keep the current h
		}
		hNew := OptimalBandwidth(n, k, r2)
		if math.IsInf(hNew, 1) || math.IsNaN(hNew) || hNew <= 0 {
			break
		}
		h = hNew
	}
	return h, nil
}

// DPIBinWidth is the direct plug-in rule for the equi-width bin width:
// iterations estimate ∫f'² from a pilot kernel estimate and plug it into
// eq. 7.
func DPIBinWidth(samples []float64, steps int, lo, hi float64) (float64, error) {
	defer ruleNanosDPIBinWidth.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.dpi-binwidth"); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	ctx, err := kde.NewFitContext(samples)
	if err != nil {
		return 0, err
	}
	return dpiBinWidthCtx(ctx, steps, lo, hi)
}

// DPIBinWidthContext is DPIBinWidth over a pre-built fit context (see
// DPIBandwidthContext).
func DPIBinWidthContext(ctx *kde.FitContext, steps int, lo, hi float64) (float64, error) {
	defer ruleNanosDPIBinWidth.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.dpi-binwidth"); err != nil {
		return 0, err
	}
	return dpiBinWidthCtx(ctx, steps, lo, hi)
}

func dpiBinWidthCtx(ctx *kde.FitContext, steps int, lo, hi float64) (float64, error) {
	h, err := NormalScaleBinWidthSorted(ctx.Sorted())
	if err != nil {
		return 0, err
	}
	if steps <= 0 {
		return h, nil
	}
	if !(hi > lo) {
		return 0, fmt.Errorf("bandwidth: DPI needs a proper domain, got [%v, %v]", lo, hi)
	}
	n := ctx.SampleSize()
	// Pilot kernel bandwidth from the normal scale rule; iterate on the
	// functional only.
	k := kernel.Epanechnikov{}
	pilotH, err := NormalScaleBandwidthSorted(ctx.Sorted(), k)
	if err != nil {
		return 0, err
	}
	for step := 0; step < steps; step++ {
		r1, err := estimateRoughnessFirst(ctx, k, pilotH, lo, hi)
		if err != nil {
			return 0, err
		}
		if r1 <= 0 || math.IsNaN(r1) {
			break
		}
		hNew := OptimalBinWidth(n, r1)
		if math.IsInf(hNew, 1) || math.IsNaN(hNew) || hNew <= 0 {
			break
		}
		h = hNew
		// Refine the pilot toward the scale suggested by the new width.
		pilotH = 1.5 * hNew
	}
	return h, nil
}

// functionalGridSize is the grid resolution for numeric functional
// estimation. 512 points keeps the second-difference error well below the
// statistical noise of a 2,000-record sample.
const functionalGridSize = 512

// functionalDX reproduces the grid spacing xs[1]−xs[0] of
// xmath.Linspace(lo, hi, functionalGridSize) without materialising the
// grid: (lo+step)−lo can differ from step in the last bit, and the
// roughness functionals must stay bit-identical to the seed path.
func functionalDX(lo, hi float64) float64 {
	step := (hi - lo) / float64(functionalGridSize-1)
	return (lo + step) - lo
}

// pilotDensityGrid builds one pilot estimate from the fit context and
// evaluates it over the functional grid with a single DensityGrid sweep —
// the seed path paid a fresh sort plus 512 independent windowed scans per
// iteration. Per-pilot build+evaluate durations land in the rule-labeled
// pilot histograms.
func pilotDensityGrid(ctx *kde.FitContext, k kernel.Kernel, h, lo, hi float64, pilotNanos pilotObserver) ([]float64, error) {
	defer pilotNanos.ObserveSince(time.Now())
	e, err := ctx.NewEstimator(kde.Config{Kernel: k, Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return nil, err
	}
	return e.DensityGrid(lo, hi, functionalGridSize), nil
}

// estimateRoughnessSecond estimates ∫f”² from a pilot KDE on a grid.
func estimateRoughnessSecond(ctx *kde.FitContext, k kernel.Kernel, h, lo, hi float64) (float64, error) {
	ys, err := pilotDensityGrid(ctx, k, h, lo, hi, pilotNanosDPI)
	if err != nil {
		return 0, err
	}
	dx := functionalDX(lo, hi)
	d2 := xmath.SecondDerivativeTable(ys, dx)
	for i, v := range d2 {
		d2[i] = v * v
	}
	return xmath.IntegrateSamples(d2, dx), nil
}

// estimateRoughnessFirst estimates ∫f'² from a pilot KDE on a grid.
func estimateRoughnessFirst(ctx *kde.FitContext, k kernel.Kernel, h, lo, hi float64) (float64, error) {
	ys, err := pilotDensityGrid(ctx, k, h, lo, hi, pilotNanosDPIBinWidth)
	if err != nil {
		return 0, err
	}
	dx := functionalDX(lo, hi)
	d1 := xmath.GradientTable(ys, dx)
	for i, v := range d1 {
		d1[i] = v * v
	}
	return xmath.IntegrateSamples(d1, dx), nil
}
