package bandwidth

// BenchmarkFit* — the committed before/after evidence for the fit-path
// engine (BENCH_fit.json via `make bench-fit`). Each pair measures the
// engine path against the seed implementation kept in fitpath_test.go:
//
//	FitDPI vs FitDPISeed          shared context + DensityGrid sweep vs
//	                              sort-per-pilot + pointwise grid scan
//	FitLSCV vs FitLSCVSeed        devirtualised pair walk + parallel grid
//	                              vs interface-dispatched LogGridMin
//	FitOracle vs FitOracleSeed    candidate estimators from one context vs
//	                              a fresh kde.New (sort included) each
//
// The rules are deliberately benchmarked through their public entry
// points, so the DPI numbers include the one sort the engine still pays.

import (
	"fmt"
	"testing"

	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/xrand"
)

// fitBenchSamples draws the clustered mixture used across the fit
// benches: three components of very different scale over [0, 1e6], so
// the DPI iterations actually move and the hybrid has change points to
// find.
func fitBenchSamples(n int) []float64 {
	r := xrand.New(uint64(n) + 1)
	xs := make([]float64, n)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = 1e5 + r.Float64()*5e4
		case 1:
			xs[i] = 4e5 + r.Float64()*1e4
		default:
			xs[i] = 5e5 + r.Float64()*5e5
		}
	}
	return xs
}

var fitSizes = []int{2_000, 100_000, 1_000_000}

func BenchmarkFitDPI(b *testing.B) {
	for _, n := range fitSizes {
		samples := fitBenchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DPIBandwidth(samples, kernel.Epanechnikov{}, 2, 0, 1e6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFitDPISeed(b *testing.B) {
	for _, n := range fitSizes {
		samples := fitBenchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dpiBandwidthRef(samples, kernel.Epanechnikov{}, 2, 0, 1e6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// LSCV is quadratic in the within-reach pairs, so it is benchmarked at
// the sizes the experiments actually run it at.
var lscvSizes = []int{2_000, 10_000}

func BenchmarkFitLSCV(b *testing.B) {
	for _, n := range lscvSizes {
		samples := fitBenchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := LSCVBandwidth(samples, kernel.Epanechnikov{}, 100, 5e4, 25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFitLSCVSeed(b *testing.B) {
	for _, n := range lscvSizes {
		sorted := sortedCopy(fitBenchSamples(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if h := lscvBandwidthRef(sorted, kernel.Epanechnikov{}, 100, 5e4, 25); h <= 0 {
					b.Fatal("no bandwidth")
				}
			}
		})
	}
}

// oracleLoss builds the candidate estimator the way Fig11's MRE loss
// does and probes a fixed query set; newEst is either a context fit or a
// from-scratch kde.New.
func oracleLoss(newEst func(h float64) (*kde.Estimator, error)) func(h float64) float64 {
	return func(h float64) float64 {
		est, err := newEst(h)
		if err != nil {
			return 1e18
		}
		sum := 0.0
		for _, q := range [][2]float64{{1e5, 2e5}, {3.9e5, 4.2e5}, {5e5, 9e5}} {
			sum += est.Selectivity(q[0], q[1])
		}
		return sum
	}
}

var oracleSizes = []int{2_000, 100_000}

func BenchmarkFitOracle(b *testing.B) {
	for _, n := range oracleSizes {
		samples := fitBenchSamples(n)
		ctx, err := kde.NewFitContext(samples)
		if err != nil {
			b.Fatal(err)
		}
		loss := oracleLoss(func(h float64) (*kde.Estimator, error) {
			return ctx.NewEstimator(kde.Config{Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1e6})
		})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Oracle(loss, 1e3, 1e5, 49); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFitOracleSeed(b *testing.B) {
	for _, n := range oracleSizes {
		samples := fitBenchSamples(n)
		loss := oracleLoss(func(h float64) (*kde.Estimator, error) {
			return kde.New(samples, kde.Config{Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1e6})
		})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Workers=1 and a sequential-equivalent scan: the seed had no
				// pool, so pin it out of the comparison.
				if _, err := OracleWorkers(loss, 1e3, 1e5, 49, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitBetaClosedForm / BenchmarkFitExactMISE measure the
// closed-form selectors through their public entry points, symmetric
// with FitDPI — the one sort each still pays is included.
func BenchmarkFitBetaClosedForm(b *testing.B) {
	for _, n := range fitSizes {
		samples := fitBenchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BetaClosedForm(samples); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFitExactMISE(b *testing.B) {
	for _, n := range fitSizes {
		samples := fitBenchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExactMISECDF(samples); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitSelectorOnly isolates the selector stage on a prebuilt
// fit context — the marginal cost a refit pays after the sort it must
// do anyway. This is where the closed forms separate from the searches:
// DPI still sweeps pilot grids, the closed rules are O(1) arithmetic.
func BenchmarkFitSelectorOnly(b *testing.B) {
	selectors := []struct {
		name string
		fn   func(ctx *kde.FitContext) (float64, error)
	}{
		{"dpi", func(ctx *kde.FitContext) (float64, error) {
			return DPIBandwidthContext(ctx, kernel.Epanechnikov{}, 2, 0, 1e6)
		}},
		{"beta-closed-form", BetaClosedFormContext},
		{"exact-mise", ExactMISECDFContext},
	}
	for _, n := range fitSizes {
		ctx, err := kde.NewFitContext(fitBenchSamples(n))
		if err != nil {
			b.Fatal(err)
		}
		for _, sel := range selectors {
			b.Run(fmt.Sprintf("rule=%s/n=%d", sel.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sel.fn(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
