package bandwidth

// Closed-form selector suite: analytic pins for the Beta-roughness
// integrals, finite-positive properties across sample shapes, context
// bit-identity, degenerate-input errors, and the telemetry exposition of
// the new rule histograms and fit-kind counters.

import (
	"math"
	"strings"
	"testing"

	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/telemetry"
	"selest/internal/xrand"
)

// TestBetaRoughnessPins checks the log-space Beta-function evaluation
// against exact values: for Beta(3, 3), f = 30x²(1−x)² gives
// R(f″) = ∫(360x²−360x+60)²dx = 720 exactly and R(f′) = 120/7.
func TestBetaRoughnessPins(t *testing.T) {
	if r := betaRoughnessSecond(3, 3); math.Abs(r-720) > 1e-9*720 {
		t.Fatalf("betaRoughnessSecond(3,3) = %v, want 720", r)
	}
	want1 := 120.0 / 7.0
	if r := betaRoughnessFirst(3, 3); math.Abs(r-want1) > 1e-9*want1 {
		t.Fatalf("betaRoughnessFirst(3,3) = %v, want 120/7", r)
	}
	// Symmetry: swapping the shapes must not change a roughness integral.
	if a, b := betaRoughnessSecond(2.6, 9), betaRoughnessSecond(9, 2.6); math.Abs(a-b) > 1e-9*a {
		t.Fatalf("R(f″) not symmetric: %v vs %v", a, b)
	}
	// Monotonicity sanity: spikier references are rougher.
	if betaRoughnessSecond(50, 50) <= betaRoughnessSecond(3, 3) {
		t.Fatal("sharper Beta reference should have larger R(f″)")
	}
}

// closedFormShapes is the property corpus: varied distributions, sizes,
// and magnitudes that every selector must answer with a finite positive
// bandwidth.
func closedFormShapes(t testing.TB) map[string][]float64 {
	t.Helper()
	r := xrand.New(77)
	shapes := map[string][]float64{}
	uniform := make([]float64, 4096)
	for i := range uniform {
		uniform[i] = r.Float64() * 1e6
	}
	shapes["uniform"] = uniform
	skewed := make([]float64, 2048)
	for i := range skewed {
		u := r.Float64()
		skewed[i] = u * u * u * 100 // heavy left mass → α < β reference
	}
	shapes["skewed"] = skewed
	bimodal := make([]float64, 1000)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = r.Normal() + 10
		} else {
			bimodal[i] = r.Normal() - 10
		}
	}
	shapes["bimodal"] = bimodal
	shapes["tiny"] = []float64{1, 2, 5}
	shapes["offset"] = []float64{1e12, 1e12 + 1, 1e12 + 2, 1e12 + 7}
	huge := make([]float64, 512)
	for i := range huge {
		huge[i] = (r.Float64() - 0.5) * 2e100 // magnitude past the moment-index trust bound
	}
	shapes["extreme-magnitude"] = huge
	return shapes
}

// TestClosedFormFinitePositive pins the core selector property: every
// admissible sample yields 0 < h < ∞, and h never exceeds half the hull
// span (the beta estimator's admissible range).
func TestClosedFormFinitePositive(t *testing.T) {
	selectors := map[string]func([]float64) (float64, error){
		"beta-closed-form": BetaClosedForm,
		"exact-mise":       ExactMISECDF,
	}
	for shapeName, xs := range closedFormShapes(t) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		for selName, sel := range selectors {
			h, err := sel(xs)
			if err != nil {
				t.Fatalf("%s(%s): %v", selName, shapeName, err)
			}
			if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
				t.Fatalf("%s(%s) = %v, want finite positive", selName, shapeName, h)
			}
			if span := hi - lo; h > 0.5*span*(1+1e-12) {
				t.Fatalf("%s(%s) = %v exceeds span/2 = %v", selName, shapeName, h, 0.5*span)
			}
		}
	}
}

// TestClosedFormShrinksWithN pins the rates: b ∝ n^{-1/5} for the
// density-targeted rule and n^{-1/3} for the CDF-targeted rule, so
// doubling n must shrink both bandwidths.
func TestClosedFormShrinksWithN(t *testing.T) {
	r := xrand.New(5)
	big := make([]float64, 1<<14)
	for i := range big {
		big[i] = r.Normal()
	}
	small := big[:1<<10]
	for name, sel := range map[string]func([]float64) (float64, error){
		"beta-closed-form": BetaClosedForm,
		"exact-mise":       ExactMISECDF,
	} {
		hs, err := sel(small)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := sel(big)
		if err != nil {
			t.Fatal(err)
		}
		if hb >= hs {
			t.Fatalf("%s: h(n=%d)=%v not below h(n=%d)=%v", name, len(big), hb, len(small), hs)
		}
	}
}

// TestClosedFormContextBitIdentical pins the Context variants to the
// from-scratch entry points: same samples, same bits.
func TestClosedFormContextBitIdentical(t *testing.T) {
	for shapeName, xs := range closedFormShapes(t) {
		ctx, err := kde.NewFitContext(xs)
		if err != nil {
			t.Fatal(err)
		}
		h1, err1 := BetaClosedForm(xs)
		h2, err2 := BetaClosedFormContext(ctx)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errs %v / %v", shapeName, err1, err2)
		}
		if h1 != h2 {
			t.Fatalf("%s: BetaClosedForm %v != Context %v", shapeName, h1, h2)
		}
		h1, err1 = ExactMISECDF(xs)
		h2, err2 = ExactMISECDFContext(ctx)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errs %v / %v", shapeName, err1, err2)
		}
		if h1 != h2 {
			t.Fatalf("%s: ExactMISECDF %v != Context %v", shapeName, h1, h2)
		}
	}
}

// TestClosedFormDegenerate pins the error surface: empty and
// zero-scale samples fail exactly like the other rules do.
func TestClosedFormDegenerate(t *testing.T) {
	for name, sel := range map[string]func([]float64) (float64, error){
		"beta-closed-form": BetaClosedForm,
		"exact-mise":       ExactMISECDF,
	} {
		if _, err := sel(nil); err == nil {
			t.Fatalf("%s: no error on empty sample", name)
		}
		if _, err := sel([]float64{3, 3, 3, 3}); err == nil {
			t.Fatalf("%s: no error on constant sample", name)
		} else if !strings.Contains(err.Error(), "degenerate") {
			t.Fatalf("%s: constant-sample error %q, want degenerate-scale", name, err)
		}
		if _, err := sel([]float64{5}); err == nil {
			t.Fatalf("%s: no error on single sample", name)
		}
	}
}

// FuzzClosedFormSelectors drives both selectors over arbitrary 4-sample
// seeds extended to a deterministic pseudo-random tail: either an error
// or a finite positive bandwidth, never NaN/Inf/0, never a panic.
func FuzzClosedFormSelectors(f *testing.F) {
	f.Add(0.0, 1.0, 2.0, 3.0, uint64(16))
	f.Add(-1e9, 1e9, 0.0, 1e-9, uint64(1024))
	f.Add(1e300, -1e300, 5.0, 5.0, uint64(3))
	f.Fuzz(func(t *testing.T, a, b, c, d float64, extra uint64) {
		xs := []float64{a, b, c, d}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Skip()
			}
		}
		r := xrand.New(extra)
		for i := uint64(0); i < extra%512; i++ {
			xs = append(xs, a+(b-a)*r.Float64())
		}
		for name, sel := range map[string]func([]float64) (float64, error){
			"beta-closed-form": BetaClosedForm,
			"exact-mise":       ExactMISECDF,
		} {
			h, err := sel(xs)
			if err != nil {
				continue
			}
			if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
				t.Fatalf("%s = %v on %v", name, h, xs)
			}
		}
	})
}

// TestClosedFormMetricsStructural drives closed-form and searched
// selections, then checks the rule histograms and the fit-kind counters
// through the same snapshot/exposition surface the /metrics endpoint
// serves. Deltas only: the registry is process-global.
func TestClosedFormMetricsStructural(t *testing.T) {
	before := telemetry.Default.Snapshot()

	r := xrand.New(9)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Normal()
	}
	if _, err := BetaClosedForm(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := ExactMISECDF(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := NormalScaleBandwidth(xs, kernel.Epanechnikov{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LSCVBandwidth(xs, kernel.Epanechnikov{}, 0.05, 3, 12); err != nil {
		t.Fatal(err)
	}

	after := telemetry.Default.Snapshot()
	for _, rule := range []string{"beta-closed-form", "exact-mise"} {
		name := telemetry.Label("selest_bandwidth_rule_nanos", "rule", rule)
		h, ok := after.Histograms[name]
		if !ok {
			t.Fatalf("%s histogram not registered", name)
		}
		if h.Count <= before.Histograms[name].Count {
			t.Fatalf("%s did not move: %d -> %d", name, before.Histograms[name].Count, h.Count)
		}
	}
	cfName := telemetry.Label("selest_fit_closed_form_total", "kind", "closed-form")
	seName := telemetry.Label("selest_fit_closed_form_total", "kind", "searched")
	// Three closed forms ran (beta, exact-mise, normal-scale) and one search.
	if delta := after.Counters[cfName] - before.Counters[cfName]; delta != 3 {
		t.Fatalf("closed-form counter delta = %d, want 3", delta)
	}
	if delta := after.Counters[seName] - before.Counters[seName]; delta != 1 {
		t.Fatalf("searched counter delta = %d, want 1", delta)
	}

	var sb strings.Builder
	if err := telemetry.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE selest_bandwidth_rule_nanos histogram",
		`selest_bandwidth_rule_nanos_count{rule="beta-closed-form"}`,
		`selest_bandwidth_rule_nanos_count{rule="exact-mise"}`,
		"# TYPE selest_fit_closed_form_total counter",
		`selest_fit_closed_form_total{kind="closed-form"}`,
		`selest_fit_closed_form_total{kind="searched"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}
