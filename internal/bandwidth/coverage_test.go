package bandwidth

import (
	"errors"
	"math"
	"testing"

	"selest/internal/errs"
	"selest/internal/kernel"
	"selest/internal/xmath"
)

// This file targets branches the main suite misses: degenerate inputs to
// the rules and the non-Epanechnikov self-convolution fallback.

func TestOptimalBandwidthDegenerateN(t *testing.T) {
	if !math.IsNaN(OptimalBandwidth(0, kernel.Epanechnikov{}, 1)) {
		t.Fatal("n=0 should give NaN")
	}
}

func TestNormalScaleRulesEmptyInput(t *testing.T) {
	if _, err := NormalScaleBandwidth(nil, kernel.Epanechnikov{}); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := NormalScaleBins(nil, 0, 1, 0); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := NormalScaleBins([]float64{5, 5, 5}, 0, 1, 0); err == nil {
		t.Fatal("degenerate sample should error")
	}
}

func TestBinsForWidthNaN(t *testing.T) {
	if got := BinsForWidth(math.NaN(), 0, 1, 0); got != 1 {
		t.Fatalf("NaN width should give 1 bin, got %d", got)
	}
	if got := BinsForWidth(-1, 0, 1, 0); got != 1 {
		t.Fatalf("negative width should give 1 bin, got %d", got)
	}
}

func TestDPIDegenerateSamples(t *testing.T) {
	if _, err := DPIBandwidth(nil, kernel.Epanechnikov{}, 2, 0, 1); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := DPIBandwidth([]float64{5, 5}, kernel.Epanechnikov{}, 2, 0, 10); err == nil {
		t.Fatal("degenerate sample should error")
	}
	if _, err := DPIBinWidth(nil, 2, 0, 1); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestKernelSelfConvolutionNonEpanechnikov(t *testing.T) {
	// The quadrature fallback must match direct numeric integration for a
	// kernel without a closed form.
	k := kernel.Biweight{}
	for _, d := range []float64{0, 0.5, 1.2, 1.99, 2.5} {
		got := kernelSelfConvolution(k, d)
		want := xmath.Simpson(func(t float64) float64 { return k.Eval(t) * k.Eval(t-d) }, d-1, 1, 2000)
		if d >= 2 {
			want = 0
		}
		if !xmath.AlmostEqual(got, want, 1e-5) {
			t.Fatalf("(K*K)(%v) = %v, numeric %v", d, got, want)
		}
	}
	// Symmetry on the fallback path too.
	if kernelSelfConvolution(k, -0.7) != kernelSelfConvolution(k, 0.7) {
		t.Fatal("fallback self-convolution must be even")
	}
	// At d=0 it equals the kernel's roughness.
	if got := kernelSelfConvolution(k, 0); !xmath.AlmostEqual(got, k.Roughness(), 1e-5) {
		t.Fatalf("(K*K)(0) = %v, want roughness %v", got, k.Roughness())
	}
}

func TestLSCVWithNonEpanechnikovKernel(t *testing.T) {
	samples := normalSamples(t, 200, 0, 1, 40)
	h, err := LSCVBandwidth(samples, kernel.Triangular{}, 0.05, 3, 24)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0.05 || h >= 3 {
		t.Fatalf("LSCV with triangular kernel picked edge h = %v", h)
	}
}

func TestLSCVRejectsDegenerateGrid(t *testing.T) {
	// The seed silently substituted a 32-point grid for gridN < 2; that
	// hid caller bugs, so it is now a typed option error.
	samples := normalSamples(t, 100, 0, 1, 41)
	for _, gridN := range []int{-5, 0, 1} {
		_, err := LSCVBandwidth(samples, kernel.Epanechnikov{}, 0.05, 3, gridN)
		if !errors.Is(err, errs.ErrBadOption) {
			t.Fatalf("gridN=%d: want errs.ErrBadOption, got %v", gridN, err)
		}
	}
}

func TestOracleDefaultGrid(t *testing.T) {
	h, err := Oracle(func(h float64) float64 { return (h - 1) * (h - 1) }, 0.1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.5 || h > 2 {
		t.Fatalf("oracle with default grid found %v", h)
	}
}
