package bandwidth

// Fit-path engine equivalence suite: the shared-context DPI, the batched
// grid evaluation, and the parallel searches must reproduce the seed
// (sort-per-fit, pointwise, sequential) implementations. The seed paths
// are kept here verbatim as references — they are also what the
// before/after benchmarks in fit_bench_test.go measure against.

import (
	"math"
	"testing"

	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/xmath"
)

// fitTol is the DPI equivalence budget: the context path accumulates the
// scale estimate in sorted order and answers pilot grids through the
// double-double closed form, so results may differ from the seed in the
// last few bits but never beyond 1e-12 relative.
const fitTol = 1e-12

// estimateRoughnessSecondRef is the seed implementation: a fresh kde.New
// (with its own sort) per pilot and a pointwise Density scan of the grid.
func estimateRoughnessSecondRef(samples []float64, k kernel.Kernel, h, lo, hi float64) (float64, error) {
	e, err := kde.New(samples, kde.Config{Kernel: k, Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return 0, err
	}
	xs := xmath.Linspace(lo, hi, functionalGridSize)
	dx := xs[1] - xs[0]
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = e.Density(x)
	}
	d2 := xmath.SecondDerivativeTable(ys, dx)
	for i, v := range d2 {
		d2[i] = v * v
	}
	return xmath.IntegrateSamples(d2, dx), nil
}

// estimateRoughnessFirstRef is the seed ∫f'² analogue.
func estimateRoughnessFirstRef(samples []float64, k kernel.Kernel, h, lo, hi float64) (float64, error) {
	e, err := kde.New(samples, kde.Config{Kernel: k, Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return 0, err
	}
	xs := xmath.Linspace(lo, hi, functionalGridSize)
	dx := xs[1] - xs[0]
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = e.Density(x)
	}
	d1 := xmath.GradientTable(ys, dx)
	for i, v := range d1 {
		d1[i] = v * v
	}
	return xmath.IntegrateSamples(d1, dx), nil
}

// dpiBandwidthRef is the seed DPI iteration, kept verbatim.
func dpiBandwidthRef(samples []float64, k kernel.Kernel, steps int, lo, hi float64) (float64, error) {
	h, err := NormalScaleBandwidth(samples, k)
	if err != nil {
		return 0, err
	}
	if steps <= 0 {
		return h, nil
	}
	n := len(samples)
	for step := 0; step < steps; step++ {
		pilot := 1.5 * h
		r2, err := estimateRoughnessSecondRef(samples, k, pilot, lo, hi)
		if err != nil {
			return 0, err
		}
		if r2 <= 0 || math.IsNaN(r2) {
			break
		}
		hNew := OptimalBandwidth(n, k, r2)
		if math.IsInf(hNew, 1) || math.IsNaN(hNew) || hNew <= 0 {
			break
		}
		h = hNew
	}
	return h, nil
}

// dpiBinWidthRef is the seed bin-width DPI iteration, kept verbatim.
func dpiBinWidthRef(samples []float64, steps int, lo, hi float64) (float64, error) {
	h, err := NormalScaleBinWidth(samples)
	if err != nil {
		return 0, err
	}
	if steps <= 0 {
		return h, nil
	}
	n := len(samples)
	k := kernel.Epanechnikov{}
	pilotH, err := NormalScaleBandwidth(samples, k)
	if err != nil {
		return 0, err
	}
	for step := 0; step < steps; step++ {
		r1, err := estimateRoughnessFirstRef(samples, k, pilotH, lo, hi)
		if err != nil {
			return 0, err
		}
		if r1 <= 0 || math.IsNaN(r1) {
			break
		}
		hNew := OptimalBinWidth(n, r1)
		if math.IsInf(hNew, 1) || math.IsNaN(hNew) || hNew <= 0 {
			break
		}
		h = hNew
		pilotH = 1.5 * hNew
	}
	return h, nil
}

// lscvScoreRef is the seed pair walk: interface dispatch and the shared
// self-convolution helper on every pair.
func lscvScoreRef(sorted []float64, k kernel.Kernel, h float64) float64 {
	n := len(sorted)
	nf := float64(n)
	reach := 2 * h * k.Support()
	var convSum, looSum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && sorted[j]-sorted[i] <= reach; j++ {
			d := (sorted[j] - sorted[i]) / h
			convSum += kernelSelfConvolution(k, d)
			looSum += k.Eval(d)
		}
	}
	convDiag := kernelSelfConvolution(k, 0)
	integralF2 := (nf*convDiag + 2*convSum) / (nf * nf * h)
	leaveOneOut := 2 * looSum / (nf * (nf - 1) * h)
	return integralF2 - 2*leaveOneOut
}

// lscvBandwidthRef is the seed selector: sequential xmath.LogGridMin over
// the reference score.
func lscvBandwidthRef(sorted []float64, k kernel.Kernel, hLo, hHi float64, gridN int) float64 {
	h, _ := xmath.LogGridMin(func(h float64) float64 {
		return lscvScoreRef(sorted, k, h)
	}, hLo, hHi, gridN)
	return h
}

func clusteredSamples(t testing.TB, n int, seed uint64) []float64 {
	t.Helper()
	half := normalSamples(t, n/2, 200, 12, seed)
	rest := normalSamples(t, n-n/2, 700, 40, seed+1)
	return append(half, rest...)
}

func TestDPIBandwidthMatchesSeedReference(t *testing.T) {
	for _, steps := range []int{0, 1, 2, 3} {
		for _, mk := range []struct {
			name    string
			samples []float64
		}{
			{"normal", normalSamples(t, 1500, 500, 80, 11)},
			{"bimodal", clusteredSamples(t, 1500, 12)},
		} {
			got, err := DPIBandwidth(mk.samples, kernel.Epanechnikov{}, steps, 0, 1000)
			if err != nil {
				t.Fatalf("%s steps=%d: %v", mk.name, steps, err)
			}
			want, err := dpiBandwidthRef(mk.samples, kernel.Epanechnikov{}, steps, 0, 1000)
			if err != nil {
				t.Fatalf("%s steps=%d ref: %v", mk.name, steps, err)
			}
			if !xmath.AlmostEqual(got, want, fitTol) {
				t.Fatalf("%s steps=%d: context DPI %v, seed %v (rel %v)", mk.name, steps, got, want, math.Abs(got-want)/want)
			}
		}
	}
}

func TestDPIBinWidthMatchesSeedReference(t *testing.T) {
	samples := clusteredSamples(t, 2000, 21)
	for _, steps := range []int{0, 2} {
		got, err := DPIBinWidth(samples, steps, 0, 1000)
		if err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		want, err := dpiBinWidthRef(samples, steps, 0, 1000)
		if err != nil {
			t.Fatalf("steps=%d ref: %v", steps, err)
		}
		if !xmath.AlmostEqual(got, want, fitTol) {
			t.Fatalf("steps=%d: context DPI width %v, seed %v", steps, got, want)
		}
	}
}

// TestDPIBandwidthContextMatchesFreeFunction pins that the exported
// context variant and the samples variant agree exactly (one sorts, the
// other receives sorted — same code underneath).
func TestDPIBandwidthContextMatchesFreeFunction(t *testing.T) {
	samples := normalSamples(t, 1000, 300, 50, 31)
	ctx, err := kde.NewFitContext(samples)
	if err != nil {
		t.Fatal(err)
	}
	hFree, err := DPIBandwidth(samples, kernel.Epanechnikov{}, 2, 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	hCtx, err := DPIBandwidthContext(ctx, kernel.Epanechnikov{}, 2, 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	if hFree != hCtx {
		t.Fatalf("DPIBandwidth %v != DPIBandwidthContext %v", hFree, hCtx)
	}
}

// TestLSCVWorkersBitIdentical is the determinism pin for the parallel
// grid: every worker count must select the exact bandwidth the seed's
// sequential LogGridMin scan selects, for both the devirtualised
// Epanechnikov walk and the generic kernel path.
func TestLSCVWorkersBitIdentical(t *testing.T) {
	samples := clusteredSamples(t, 600, 41)
	sorted := sortedCopy(samples)
	for _, k := range []kernel.Kernel{kernel.Epanechnikov{}, kernel.Triangular{}} {
		want := lscvBandwidthRef(sorted, k, 0.5, 200, 25)
		for _, workers := range []int{1, 2, 8} {
			got, err := LSCVBandwidthWorkers(samples, k, 0.5, 200, 25, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", k.Name(), workers, err)
			}
			if got != want {
				t.Fatalf("%s workers=%d: h %v != seed %v", k.Name(), workers, got, want)
			}
			gotSorted, err := LSCVBandwidthSorted(sorted, k, 0.5, 200, 25, workers)
			if err != nil {
				t.Fatalf("%s sorted workers=%d: %v", k.Name(), workers, err)
			}
			if gotSorted != want {
				t.Fatalf("%s sorted workers=%d: h %v != seed %v", k.Name(), workers, gotSorted, want)
			}
		}
	}
}

// TestLSCVScoreDevirtualisedBitIdentical holds the inlined Epanechnikov
// walk to the generic reference score across the whole grid, not just at
// the selected minimum.
func TestLSCVScoreDevirtualisedBitIdentical(t *testing.T) {
	sorted := sortedCopy(clusteredSamples(t, 400, 43))
	for _, h := range logGrid(0.5, 300, 40) {
		if got, want := lscvScoreEpanechnikov(sorted, h), lscvScoreRef(sorted, kernel.Epanechnikov{}, h); got != want {
			t.Fatalf("h=%v: devirtualised %v != reference %v", h, got, want)
		}
	}
}

func TestOracleWorkersBitIdentical(t *testing.T) {
	loss := func(h float64) float64 {
		lg := math.Log(h)
		return (lg-1)*(lg-1) + 0.3*math.Sin(7*lg)
	}
	want, _ := xmath.LogGridMin(loss, 0.05, 50, 81)
	for _, workers := range []int{1, 2, 8} {
		got, err := OracleWorkers(loss, 0.05, 50, 81, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: h %v != sequential %v", workers, got, want)
		}
	}
}

func TestOracleBinsWorkersBitIdentical(t *testing.T) {
	loss := func(k int) float64 {
		d := math.Log(float64(k)) - math.Log(120)
		return d*d + 0.1*math.Cos(float64(k))
	}
	// Seed semantics: ascending multiplicative scan, strict-less argmin.
	wantBest, wantLoss := 1, math.Inf(1)
	for k := 1; k <= 2000; {
		if l := loss(k); l < wantLoss {
			wantBest, wantLoss = k, l
		}
		next := k + k/4
		if next <= k {
			next = k + 1
		}
		k = next
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := OracleBinsWorkers(loss, 1, 2000, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != wantBest {
			t.Fatalf("workers=%d: k %d != sequential %d", workers, got, wantBest)
		}
	}
}

// TestPilotHistogramRecords is the structural telemetry check for the
// pilot-build histograms: a 2-step DPI fit must land two observations in
// the dpi-labeled histogram.
func TestPilotHistogramRecords(t *testing.T) {
	before := pilotNanosDPI.Count()
	if _, err := DPIBandwidth(normalSamples(t, 400, 100, 10, 51), kernel.Epanechnikov{}, 2, 0, 200); err != nil {
		t.Fatal(err)
	}
	if got := pilotNanosDPI.Count(); got < before+2 {
		t.Fatalf("pilot histogram count moved %d -> %d, want at least +2", before, got)
	}
	beforeBW := pilotNanosDPIBinWidth.Count()
	if _, err := DPIBinWidth(normalSamples(t, 400, 100, 10, 52), 1, 0, 200); err != nil {
		t.Fatal(err)
	}
	if got := pilotNanosDPIBinWidth.Count(); got < beforeBW+1 {
		t.Fatalf("binwidth pilot histogram moved %d -> %d, want at least +1", beforeBW, got)
	}
}
