package bandwidth

import (
	"time"

	"selest/internal/telemetry"
)

// Rule-runtime telemetry. The closed-form-bandwidth-selector literature
// motivates tracking this: at production sample sizes the selector
// dominates fit time (DPI builds pilot densities over a 512-point grid,
// LSCV scans a 48-point bandwidth grid), so the per-rule latency
// histograms show exactly where fit budget goes. Handles are captured at
// init; each rule records one observation per invocation (cold path —
// rules run once per fit, not per query).
var (
	ruleNanosNormalScale    = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_rule_nanos", "rule", "normal-scale"))
	ruleNanosNSBinWidth     = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_rule_nanos", "rule", "normal-scale-binwidth"))
	ruleNanosDPI            = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_rule_nanos", "rule", "dpi"))
	ruleNanosDPIBinWidth    = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_rule_nanos", "rule", "dpi-binwidth"))
	ruleNanosLSCV           = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_rule_nanos", "rule", "lscv"))
	ruleNanosBetaClosedForm = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_rule_nanos", "rule", "beta-closed-form"))
	ruleNanosExactMISE      = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_rule_nanos", "rule", "exact-mise"))

	// Pilot-build histograms: one observation per pilot density built and
	// swept inside a DPI iteration. rule_nanos − Σ pilot_nanos is the
	// non-pilot share of a fit (scale estimation, functional integration),
	// which the fit-path engine drove toward zero.
	pilotNanosDPI         = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_pilot_nanos", "rule", "dpi"))
	pilotNanosDPIBinWidth = telemetry.Default.Histogram(telemetry.Label("selest_bandwidth_pilot_nanos", "rule", "dpi-binwidth"))

	// Fit-kind counters: how many kernel-bandwidth selections were answered
	// by a closed form (normal-scale, beta-closed-form, exact-mise) versus a
	// search (DPI pilot cascade, LSCV grid scan). The ratio is the share of
	// refits running at sort-dominated cost — the closed-form engine's
	// reason to exist.
	fitKindClosedForm = telemetry.Default.Counter(telemetry.Label("selest_fit_closed_form_total", "kind", "closed-form"))
	fitKindSearched   = telemetry.Default.Counter(telemetry.Label("selest_fit_closed_form_total", "kind", "searched"))
)

// pilotObserver is the slice of the telemetry histogram surface the pilot
// builder needs; naming it keeps pilotDensityGrid testable against fakes.
type pilotObserver interface {
	ObserveSince(start time.Time)
}
